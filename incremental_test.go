// Differential harness for the dirty-region incremental physical pipeline:
// an AnalyzeIncremental must be byte-identical — layout, DFM report, fault
// universe, and Table I/II metrics — to a from-scratch analysis of the same
// rebuilt netlist (Env.FullPhysical), in the same contract style as the
// Workers=1/N determinism gates.
package dfmresyn

import (
	"reflect"
	"testing"

	"dfmresyn/internal/bench"
	"dfmresyn/internal/dfm"
	"dfmresyn/internal/flow"
	"dfmresyn/internal/geom"
	"dfmresyn/internal/library"
	"dfmresyn/internal/netlist"
	"dfmresyn/internal/report"
	"dfmresyn/internal/resyn"
	"dfmresyn/internal/route"
	"dfmresyn/internal/synth"
)

// rebuildRegion resynthesizes a small convex region with the same mapper,
// as resyn's attempt loop would, returning the rebuilt circuit.
func rebuildRegion(t *testing.T, env *flow.Env, c *netlist.Circuit, gates int) *netlist.Circuit {
	t.Helper()
	region := netlist.ExtractRegion(netlist.ConvexClosure(c, c.Gates[:gates]))
	rs, err := synth.SynthesizeRegion(c, region, env.Mapper,
		func(*library.Cell) bool { return true }, synth.Delay, nil, "rb_")
	if err != nil {
		t.Fatal(err)
	}
	nc, err := rs.Rebuild(c)
	if err != nil {
		t.Fatal(err)
	}
	return nc
}

// TestIncrementalMatchesFull: one region rebuild per benchmark circuit,
// re-analyzed twice from the same previous design — once incrementally
// (with the built-in diffcheck armed) and once with FullPhysical forcing a
// from-scratch route and DFM scan. Everything observable must match.
func TestIncrementalMatchesFull(t *testing.T) {
	for _, name := range []string{"sparc_spu", "sparc_tlu"} {
		name := name
		t.Run(name, func(t *testing.T) {
			env := flow.NewEnv()
			c := bench.MustBuild(name, env.Lib)
			orig, err := env.Analyze(c, geom.Rect{})
			if err != nil {
				t.Fatal(err)
			}
			nc := rebuildRegion(t, env, c, 4)

			incrEnv := flow.NewEnv()
			incrEnv.DiffCheck = true
			incrD, err := incrEnv.AnalyzeIncremental(nc, orig)
			if err != nil {
				t.Fatal(err)
			}
			fullEnv := flow.NewEnv()
			fullEnv.FullPhysical = true
			fullD, err := fullEnv.AnalyzeIncremental(nc, orig)
			if err != nil {
				t.Fatal(err)
			}

			if incrD.Incr.RouteReused == 0 {
				t.Error("incremental analysis replayed no nets — nothing was incremental")
			}
			if !incrD.Incr.DFMIncremental {
				t.Error("incremental analysis fell back to a full DFM scan")
			}
			if msg := route.DiffLayouts(fullD.Lay, incrD.Lay); msg != "" {
				t.Errorf("layouts differ: %s", msg)
			}
			if msg := dfm.DiffUniverse(fullD.Faults, fullD.DFMRep, incrD.Faults, incrD.DFMRep); msg != "" {
				t.Errorf("fault universes differ: %s", msg)
			}
			if !reflect.DeepEqual(fullD.DFMRep, incrD.DFMRep) {
				t.Error("DFM reports differ")
			}
			if !reflect.DeepEqual(statuses(fullD), statuses(incrD)) {
				t.Error("fault statuses differ between incremental and full analysis")
			}
			if !reflect.DeepEqual(fullD.Result.Tests, incrD.Result.Tests) {
				t.Errorf("test vectors differ (%d vs %d tests)",
					len(fullD.Result.Tests), len(incrD.Result.Tests))
			}
			if rf, ri := report.TableIRow(name, fullD.Metrics()), report.TableIRow(name, incrD.Metrics()); rf != ri {
				t.Errorf("Table I rows differ:\n  full: %s\n  incr: %s", rf, ri)
			}
			if rf, ri := report.TableIIOrigRow(name, fullD.Metrics()), report.TableIIOrigRow(name, incrD.Metrics()); rf != ri {
				t.Errorf("Table II rows differ:\n  full: %s\n  incr: %s", rf, ri)
			}
		})
	}
}

// TestIncrementalMatchesFullSweep runs the whole resynthesis q-sweep in
// both modes. Each side gets its own fresh verdict cache and performs the
// identical sweep sequence, so the rendered Table II row and the Fig. 2
// trace must match exactly.
func TestIncrementalMatchesFullSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("resynthesis sweep is slow under -short")
	}
	for _, name := range []string{"sparc_spu", "sparc_tlu"} {
		name := name
		t.Run(name, func(t *testing.T) {
			run := func(full bool) (string, string, *resyn.Result) {
				env := flow.NewEnv()
				env.FullPhysical = full
				env.DiffCheck = !full
				c := bench.MustBuild(name, env.Lib)
				orig, err := env.Analyze(c, geom.Rect{})
				if err != nil {
					t.Fatal(err)
				}
				r, err := resyn.RunFrom(env, orig, resyn.Options{MaxQ: 5, MaxItersPhase: 2})
				if err != nil {
					t.Fatal(err)
				}
				return report.TableIIResynRow(r, 1.0), report.Fig2Trace(r), r
			}
			rowF, traceF, _ := run(true)
			rowI, traceI, ri := run(false)
			if rowF != rowI {
				t.Errorf("resyn Table II rows differ:\n  full: %s\n  incr: %s", rowF, rowI)
			}
			if traceF != traceI {
				t.Errorf("iteration traces differ:\n  full:\n%s  incr:\n%s", traceF, traceI)
			}
			if ri.Incr.Analyses > 0 && ri.Incr.NetsReused == 0 {
				t.Error("sweep's incremental analyses replayed no nets")
			}
		})
	}
}
