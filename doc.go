// Package dfmresyn reproduces "Resynthesis for Avoiding Undetectable
// Faults Based on Design-for-Manufacturability Guidelines" (Wang, Pomeranz,
// Reddy, Sinha, Venkataraman — DATE 2019).
//
// The implementation lives under internal/: the netlist, standard-cell
// library, switch-level simulator, DFM guideline engine, ATPG, placement
// and routing, clustering analysis, the technology mapper, and the paper's
// two-phase resynthesis procedure. Executables are under cmd/, runnable
// examples under examples/, and the benchmark harness regenerating every
// table and figure of the paper is bench_test.go in this directory.
package dfmresyn
