package sta

import (
	"testing"

	"dfmresyn/internal/library"
	"dfmresyn/internal/netlist"
	"dfmresyn/internal/place"
	"dfmresyn/internal/route"
)

var lib = library.OSU018Like()

// chain builds a linear chain of n inverters.
func chain(t *testing.T, n int) *netlist.Circuit {
	t.Helper()
	c := netlist.New("chain", lib)
	cur := c.AddPI("a")
	for i := 0; i < n; i++ {
		cur = c.AddGate("", lib.ByName("INVX1"), cur)
	}
	c.MarkPO(cur)
	return c
}

func TestChainDelayAdds(t *testing.T) {
	c3 := chain(t, 3)
	c6 := chain(t, 6)
	r3 := Analyze(c3, LoadFromFanout())
	r6 := Analyze(c6, LoadFromFanout())
	if r3.CriticalDelay <= 0 {
		t.Fatal("delay must be positive")
	}
	if r6.CriticalDelay <= r3.CriticalDelay {
		t.Error("longer chain must be slower")
	}
	// Delay of 6-chain should be about double the 3-chain.
	ratio := r6.CriticalDelay / r3.CriticalDelay
	if ratio < 1.7 || ratio > 2.3 {
		t.Errorf("6/3 chain delay ratio = %.2f, want about 2", ratio)
	}
}

func TestCriticalPathExtraction(t *testing.T) {
	c := chain(t, 4)
	r := Analyze(c, LoadFromFanout())
	if len(r.CritPath) != 4 {
		t.Fatalf("critical path has %d gates, want 4", len(r.CritPath))
	}
	// Path must be in PI-to-PO order.
	for i := 1; i < len(r.CritPath); i++ {
		if r.CritPath[i].Fanin[0] != r.CritPath[i-1].Out {
			t.Fatalf("critical path not connected at position %d", i)
		}
	}
}

func TestCriticalPathPicksSlowerBranch(t *testing.T) {
	// Two paths to a NAND: direct (fast) and through 3 inverters (slow).
	c := netlist.New("branch", lib)
	a := c.AddPI("a")
	b := c.AddPI("b")
	slow := b
	for i := 0; i < 3; i++ {
		slow = c.AddGate("", lib.ByName("INVX1"), slow)
	}
	y := c.AddGate("u_y", lib.ByName("NAND2X1"), a, slow)
	c.MarkPO(y)
	r := Analyze(c, LoadFromFanout())
	if len(r.CritPath) != 4 {
		t.Fatalf("critical path gates = %d, want 4 (3 INV + NAND)", len(r.CritPath))
	}
	if r.CritPath[len(r.CritPath)-1].Name != "u_y" {
		t.Error("critical path must end at the NAND")
	}
}

func TestBiggerDriveIsFaster(t *testing.T) {
	// INVX8 driving a heavy load beats INVX1 driving the same load.
	mk := func(drv string) float64 {
		c := netlist.New("d", lib)
		a := c.AddPI("a")
		y := c.AddGate("u_d", lib.ByName(drv), a)
		// Fan out to 6 NAND4 pins for load.
		for i := 0; i < 6; i++ {
			s := c.AddGate("", lib.ByName("NAND4X1"), y, y, y, y)
			c.MarkPO(s)
		}
		return Analyze(c, LoadFromFanout()).CriticalDelay
	}
	if mk("INVX8") >= mk("INVX1") {
		t.Error("INVX8 must be faster than INVX1 under heavy load")
	}
}

func TestLoadFromLayoutAddsWireDelay(t *testing.T) {
	c := chain(t, 10)
	p, err := place.Place(c, 0.70, 1)
	if err != nil {
		t.Fatal(err)
	}
	lay := route.Route(p)
	pre := Analyze(c, LoadFromFanout()).CriticalDelay
	post := Analyze(c, LoadFromLayout(lay)).CriticalDelay
	if post <= pre {
		t.Errorf("post-layout delay %v must exceed pre-layout %v", post, pre)
	}
}

func TestPOLoadCounted(t *testing.T) {
	// A PO net must be slower than the same net without PO marking.
	build := func(markPO bool) float64 {
		c := netlist.New("po", lib)
		a := c.AddPI("a")
		y := c.AddGate("u", lib.ByName("INVX1"), a)
		z := c.AddGate("u2", lib.ByName("INVX1"), y)
		c.MarkPO(z)
		if markPO {
			c.MarkPO(y)
		}
		return Analyze(c, LoadFromFanout()).CriticalDelay
	}
	if build(true) <= build(false) {
		t.Error("PO pin load must increase delay")
	}
}
