// Package sta implements static timing analysis over the placed-and-routed
// design: topological arrival-time propagation with a linear cell delay
// model (intrinsic delay plus drive resistance times capacitive load) and
// wire load taken from routed wirelength.
package sta

import (
	"dfmresyn/internal/netlist"
	"dfmresyn/internal/route"
)

// WireCapPerUnit is the capacitance (fF) per routed grid unit of wire.
const WireCapPerUnit = 0.35

// ViaCap is the capacitance (fF) added per via on a net.
const ViaCap = 0.12

// PinCap models the load of a primary-output pad.
const PinCap = 2.0

// LoadModel returns the capacitive load of each net.
type LoadModel func(n *netlist.Net) float64

// LoadFromLayout builds a load model using routed wirelength and vias.
func LoadFromLayout(lay *route.Layout) LoadModel {
	return func(n *netlist.Net) float64 {
		load := pinLoad(n)
		r := &lay.Routes[n.ID]
		load += float64(r.Length()) * WireCapPerUnit
		load += float64(len(r.Vias)) * ViaCap
		return load
	}
}

// LoadFromFanout builds a pre-layout load model from pin caps only.
func LoadFromFanout() LoadModel {
	return pinLoad
}

func pinLoad(n *netlist.Net) float64 {
	load := 0.0
	for _, p := range n.Fanout {
		load += p.Gate.Type.InputCap[p.Pin]
	}
	if n.IsPO {
		load += PinCap
	}
	return load
}

// Report is the result of timing analysis.
type Report struct {
	CriticalDelay float64
	Arrival       []float64 // per net ID
	// CritPath lists the gates on the critical path, PI side first.
	CritPath []*netlist.Gate
}

// Analyze runs topological arrival propagation and extracts the critical
// path.
func Analyze(c *netlist.Circuit, load LoadModel) Report {
	r := Report{Arrival: make([]float64, len(c.Nets))}
	worstIn := make([]*netlist.Net, len(c.Nets))
	for _, g := range c.Levelize() {
		at := 0.0
		var worst *netlist.Net
		for _, in := range g.Fanin {
			if a := r.Arrival[in.ID]; a >= at {
				at = a
				worst = in
			}
		}
		if worst == nil && len(g.Fanin) > 0 {
			worst = g.Fanin[0]
		}
		delay := g.Type.Intrinsic + g.Type.DriveRes*load(g.Out)
		r.Arrival[g.Out.ID] = at + delay
		worstIn[g.Out.ID] = worst
	}

	var critPO *netlist.Net
	for _, po := range c.POs {
		if r.Arrival[po.ID] >= r.CriticalDelay {
			r.CriticalDelay = r.Arrival[po.ID]
			critPO = po
		}
	}
	// Trace the critical path back to a PI.
	for n := critPO; n != nil && n.Driver != nil; n = worstIn[n.ID] {
		r.CritPath = append([]*netlist.Gate{n.Driver}, r.CritPath...)
	}
	return r
}
