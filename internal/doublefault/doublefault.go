// Package doublefault implements the alternative approach the paper
// discusses (its references [14], [15]): instead of resynthesizing away the
// clusters of undetectable faults, generate *additional* tests for double
// faults — pairs of an undetectable fault and a structurally adjacent
// detectable fault — so that the neighbourhood of every undetectable fault
// is exercised under the conditions that activate it.
//
// The paper's argument is that for DFM-predicted systematic defects this
// needs "a significant number of additional test patterns ... which leads
// to an unacceptable tester time"; this package exists to reproduce that
// comparison: run it against the resynthesis procedure and compare test-set
// growth versus coverage gained.
package doublefault

import (
	"math/rand"

	"dfmresyn/internal/atpg"
	"dfmresyn/internal/fault"
	"dfmresyn/internal/faultsim"
	"dfmresyn/internal/flow"
	"dfmresyn/internal/netlist"
)

// Pair is one double-fault target: a detectable fault adjacent to an
// undetectable one.
type Pair struct {
	Undetectable *fault.Fault
	Detectable   *fault.Fault
}

// Result summarizes the double-fault campaign.
type Result struct {
	Pairs          int // targetable pairs found
	ExtraTests     int // tests appended to T
	CoveredPairs   int // pairs for which a combined test was found
	UncoveredPairs int // pairs with no combined test (activation impossible)
	AbortedPairs   int // search limit exhausted
	BaseTests      int // |T| before the campaign
	TestSetGrowth  float64
	TesterTimeRel  float64 // relative tester time = |T'| / |T|
	TargetedFaults int     // undetectable faults with at least one pair
}

// Pairs enumerates the double-fault targets of a design: for every
// undetectable fault, every detectable fault located on the same or an
// adjacent gate.
func Pairs(d *flow.Design) []Pair {
	// Index detectable faults by corresponding gate.
	byGate := map[*netlist.Gate][]*fault.Fault{}
	for _, f := range d.Faults.Faults {
		if f.Status != fault.Detected {
			continue
		}
		for _, g := range f.CorrespondingGates() {
			byGate[g] = append(byGate[g], f)
		}
	}
	var pairs []Pair
	seen := map[[2]int]bool{}
	for _, fu := range d.Faults.UndetectableFaults() {
		for _, g := range fu.CorrespondingGates() {
			// Same gate and adjacent gates.
			cands := append([]*fault.Fault{}, byGate[g]...)
			for _, p := range g.Out.Fanout {
				cands = append(cands, byGate[p.Gate]...)
			}
			for _, in := range g.Fanin {
				if in.Driver != nil {
					cands = append(cands, byGate[in.Driver]...)
				}
			}
			for _, fd := range cands {
				key := [2]int{fu.ID, fd.ID}
				if fd == fu || seen[key] {
					continue
				}
				seen[key] = true
				pairs = append(pairs, Pair{Undetectable: fu, Detectable: fd})
			}
		}
	}
	return pairs
}

// Run generates one additional test per targetable pair: a test that
// detects the detectable member while the undetectable member's local
// activation condition holds (so the defect neighbourhood is exercised in
// its failing state). Pairs whose combined condition is unsatisfiable are
// counted as uncovered. maxPairsPerFault bounds the campaign per
// undetectable fault (0 = unlimited).
func Run(d *flow.Design, maxPairsPerFault int, seed int64) Result {
	c := d.C
	order := c.Levelize()
	levels := c.Levels()
	rng := rand.New(rand.NewSource(seed))
	gen := atpg.NewGenerator(c, order, levels, d.Env.ATPG.BacktrackLimit)

	res := Result{BaseTests: len(d.Result.Tests)}
	perFault := map[*fault.Fault]int{}
	targeted := map[*fault.Fault]bool{}

	var extra []faultsim.Test
	for _, p := range Pairs(d) {
		if maxPairsPerFault > 0 && perFault[p.Undetectable] >= maxPairsPerFault {
			continue
		}
		perFault[p.Undetectable]++
		res.Pairs++

		out, tv := gen.GenerateWith(p.Detectable, ActivationConditions(p.Undetectable), rng)
		switch out {
		case atpg.FoundTest:
			res.CoveredPairs++
			targeted[p.Undetectable] = true
			t := faultsim.Test{Init: tv.Init, Vec: tv.Vec}
			// Deduplicate: only keep the test if no existing extra
			// test already detects the pair member under the
			// activation (cheap proxy: exact-vector dedup).
			if !containsTest(extra, t) {
				extra = append(extra, t)
			}
		case atpg.ProvenImpossible:
			res.UncoveredPairs++
		case atpg.LimitExceeded:
			res.AbortedPairs++
		}
	}

	res.ExtraTests = len(extra)
	res.TargetedFaults = len(targeted)
	if res.BaseTests > 0 {
		res.TestSetGrowth = float64(res.ExtraTests) / float64(res.BaseTests)
		res.TesterTimeRel = float64(res.BaseTests+res.ExtraTests) / float64(res.BaseTests)
	}
	return res
}

// ActivationConditions extracts the local excitation requirement of a fault
// as net/value conditions (for stuck-at and transition: the site at the
// complement of the stuck value; for bridges: opposite values; for
// cell-aware: one activating assignment's input values).
func ActivationConditions(f *fault.Fault) []atpg.Condition {
	var conds []atpg.Condition
	switch f.Model {
	case fault.StuckAt, fault.Transition:
		conds = append(conds, atpg.Condition{Net: f.Net, Val: f.Value ^ 1})
	case fault.Bridge:
		conds = append(conds,
			atpg.Condition{Net: f.Net, Val: 1},
			atpg.Condition{Net: f.Other, Val: 0})
	case fault.CellAware:
		if f.Behavior == nil {
			return nil
		}
		// First activating assignment (static, else first dynamic
		// column).
		n := uint(1) << uint(f.Behavior.Inputs)
		asg, ok := uint(0), false
		for a := uint(0); a < n; a++ {
			if f.Behavior.StaticMask>>a&1 == 1 {
				asg, ok = a, true
				break
			}
		}
		if !ok {
			for a2 := uint(0); a2 < n && !ok; a2++ {
				for _, pm := range f.Behavior.PairMask {
					if pm>>a2&1 == 1 {
						asg, ok = a2, true
						break
					}
				}
			}
		}
		if !ok {
			return nil
		}
		for i, in := range f.Gate.Fanin {
			conds = append(conds, atpg.Condition{Net: in, Val: uint8(asg >> uint(i) & 1)})
		}
	}
	return conds
}

func containsTest(tests []faultsim.Test, t faultsim.Test) bool {
	eq := func(a, b []uint8) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	for _, have := range tests {
		if eq(have.Vec, t.Vec) && (have.Init == nil) == (t.Init == nil) &&
			(have.Init == nil || eq(have.Init, t.Init)) {
			return true
		}
	}
	return false
}
