package doublefault

import (
	"math/rand"
	"testing"

	"dfmresyn/internal/atpg"
	"dfmresyn/internal/bench"
	"dfmresyn/internal/fault"
	"dfmresyn/internal/flow"
	"dfmresyn/internal/geom"
	"dfmresyn/internal/netlist"
	"dfmresyn/internal/sim"
)

func analyzed(t *testing.T, name string) *flow.Design {
	t.Helper()
	env := flow.NewEnv()
	env.ATPG.RandomBlocks = 4
	env.ATPG.BacktrackLimit = 2000
	c := bench.MustBuild(name, env.Lib)
	d, err := env.Analyze(c, geom.Rect{})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestPairsAreAdjacent(t *testing.T) {
	d := analyzed(t, "sparc_tlu")
	pairs := Pairs(d)
	if len(pairs) == 0 {
		t.Fatal("no double-fault pairs found despite undetectable faults")
	}
	for _, p := range pairs {
		if p.Undetectable.Status != fault.Undetectable {
			t.Fatalf("pair member %v is not undetectable", p.Undetectable)
		}
		if p.Detectable.Status != fault.Detected {
			t.Fatalf("pair member %v is not detected", p.Detectable)
		}
		// Adjacency: some gate of one is the same as or adjacent to
		// some gate of the other.
		ok := false
		for _, gu := range p.Undetectable.CorrespondingGates() {
			for _, gd := range p.Detectable.CorrespondingGates() {
				if gu == gd || netlist.Adjacent(gu, gd) {
					ok = true
				}
			}
		}
		if !ok {
			t.Fatalf("pair (%v, %v) not structurally adjacent", p.Undetectable, p.Detectable)
		}
	}
}

func TestRunProducesExtraTests(t *testing.T) {
	d := analyzed(t, "sparc_tlu")
	res := Run(d, 3, 1)
	if res.Pairs == 0 {
		t.Fatal("no pairs targeted")
	}
	if res.CoveredPairs+res.UncoveredPairs+res.AbortedPairs != res.Pairs {
		t.Errorf("pair accounting broken: %d+%d+%d != %d",
			res.CoveredPairs, res.UncoveredPairs, res.AbortedPairs, res.Pairs)
	}
	if res.CoveredPairs > 0 && res.ExtraTests == 0 {
		t.Error("covered pairs but no extra tests recorded")
	}
	if res.BaseTests != len(d.Result.Tests) {
		t.Errorf("base tests %d, want %d", res.BaseTests, len(d.Result.Tests))
	}
	if res.ExtraTests > 0 && res.TesterTimeRel <= 1 {
		t.Errorf("tester time must grow with extra tests: %v", res.TesterTimeRel)
	}
}

func TestMaxPairsPerFaultBounds(t *testing.T) {
	d := analyzed(t, "sparc_tlu")
	r1 := Run(d, 1, 1)
	r3 := Run(d, 3, 1)
	if r1.Pairs > r3.Pairs {
		t.Errorf("tighter bound produced more pairs: %d vs %d", r1.Pairs, r3.Pairs)
	}
	if r1.Pairs > r1.TargetedFaults+r1.UncoveredPairs+r1.AbortedPairs {
		// With bound 1, each undetectable fault contributes at most one
		// pair.
		t.Errorf("bound 1 violated: %d pairs for %d targeted faults", r1.Pairs, r1.TargetedFaults)
	}
}

func TestActivationConditions(t *testing.T) {
	d := analyzed(t, "sparc_tlu")
	for _, f := range d.Faults.Faults {
		conds := ActivationConditions(f)
		switch f.Model {
		case fault.StuckAt, fault.Transition:
			if len(conds) != 1 || conds[0].Net != f.Net || conds[0].Val != f.Value^1 {
				t.Fatalf("bad conditions for %v: %+v", f, conds)
			}
		case fault.Bridge:
			if len(conds) != 2 {
				t.Fatalf("bridge conditions = %d, want 2", len(conds))
			}
		case fault.CellAware:
			if f.Behavior != nil && f.Behavior.Detectable() && len(conds) != len(f.Gate.Fanin) {
				t.Fatalf("cell-aware conditions = %d, want %d", len(conds), len(f.Gate.Fanin))
			}
		}
	}
}

// TestGenerateWithHonorsConditions: a test produced under extra conditions
// must actually satisfy them in the good circuit.
func TestGenerateWithHonorsConditions(t *testing.T) {
	d := analyzed(t, "sparc_tlu")
	c := d.C
	order := c.Levelize()
	levels := c.Levels()
	gen := atpg.NewGenerator(c, order, levels, 2000)

	pairs := Pairs(d)
	checked := 0
	for _, p := range pairs {
		conds := ActivationConditions(p.Undetectable)
		if conds == nil {
			continue
		}
		out, tv := gen.GenerateWith(p.Detectable, conds, rngFor(7))
		if out != atpg.FoundTest {
			continue
		}
		// Simulate the final vector and verify every condition.
		vals := simSingle(c, tv.Vec)
		for _, cond := range conds {
			if vals[cond.Net.ID] != cond.Val {
				t.Fatalf("condition %s=%d violated by generated test", cond.Net.Name, cond.Val)
			}
		}
		checked++
		if checked >= 10 {
			break
		}
	}
	if checked == 0 {
		t.Skip("no coverable pairs to check")
	}
}

func rngFor(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// simSingle runs one vector through the good circuit.
func simSingle(c *netlist.Circuit, vec []uint8) []uint8 {
	return sim.New(c).RunSingle(vec)
}
