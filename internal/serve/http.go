package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"os"

	"dfmresyn/internal/obs"
	"dfmresyn/internal/vstore"
)

// maxSpecBytes bounds a submission body: circuit text for the benchmark
// suite is well under this, and an unbounded read is a trivial DoS.
const maxSpecBytes = 8 << 20

// Handler mounts the server's API over the standard debug/introspection
// set (obs.DebugMux: /metrics, /spans, /healthz, /readyz, /version,
// /debug/pprof). The server's own endpoints:
//
//	POST /jobs             submit a JobSpec; 202 queued (or resumed), 200
//	                       already known, 400 invalid, 429 queue full,
//	                       503 draining
//	GET  /jobs             all jobs, admission order
//	GET  /jobs/{id}        one job
//	GET  /jobs/{id}/ledger the job's provenance ledger; ?follow=1 streams
//	                       a running job's records live
//	GET  /store            shared verdict-store stats
func (s *Server) Handler() http.Handler {
	mux := obs.DebugMux(s.tracer, s.health, s.done)
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /jobs/{id}/ledger", s.handleJobLedger)
	mux.HandleFunc("GET /store", s.handleStore)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var sp JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sp); err != nil {
		http.Error(w, "bad spec: "+err.Error(), http.StatusBadRequest)
		return
	}
	j, admitted, err := s.Submit(sp)
	switch {
	case errors.Is(err, ErrDraining):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, ErrQueueFull):
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	case err != nil:
		http.Error(w, err.Error(), http.StatusBadRequest)
	case admitted:
		writeJSON(w, http.StatusAccepted, j.Snapshot())
	default:
		writeJSON(w, http.StatusOK, j.Snapshot())
	}
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		http.Error(w, "unknown job", http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, j.Snapshot())
}

// handleJobLedger serves a job's provenance ledger. A running job streams
// from its live flight recorder (?follow=1 until the job or the server
// finishes, exactly the debug server's /ledger semantics); otherwise the
// on-disk segments are concatenated.
func (s *Server) handleJobLedger(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		http.Error(w, "unknown job", http.StatusNotFound)
		return
	}
	if l := j.liveLedger(); l != nil {
		obs.ServeLedger(w, r, l, s.done)
		return
	}
	segs := s.ledgerSegments(j.ID)
	if len(segs) == 0 {
		http.Error(w, "no ledger recorded for job", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	for _, seg := range segs {
		data, err := os.ReadFile(seg)
		if err != nil {
			continue
		}
		w.Write(data)
	}
}

func (s *Server) handleStore(w http.ResponseWriter, _ *http.Request) {
	type storeView struct {
		Entries int          `json:"entries"`
		Stats   vstore.Stats `json:"stats"`
	}
	writeJSON(w, http.StatusOK, storeView{Entries: s.store.Len(), Stats: s.store.Stats()})
}
