// Package serve is the multi-tenant analysis server: a bounded job
// scheduler over the resynthesis pipeline with crash-recoverable jobs and
// a persistent fault-verdict store shared across jobs and processes.
//
// Failure model. Every job state transition is journaled (resilience
// envelope: versioned header, CRC, atomic replacement) to
// <datadir>/jobs/<id>.job before clients can observe it, and every accepted
// sweep iteration writes a resyn checkpoint next to it. A server process
// killed at any instant — SIGKILL included — restarts into a consistent
// fleet: terminal jobs stay terminal, live jobs (queued, running,
// interrupted) are re-admitted and resume from their checkpoints, and the
// resumed runs' stitched provenance ledgers are canonically byte-identical
// to uninterrupted runs'. The shared verdict store (internal/vstore) heals
// its own torn or corrupted segments on open. Job-level panics are retried
// once and then quarantined as failed jobs; they never take down the
// server or its other tenants.
package serve

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"dfmresyn/internal/obs"
	"dfmresyn/internal/par"
	"dfmresyn/internal/resilience"
	"dfmresyn/internal/vstore"
)

// Submission outcomes the HTTP layer maps to status codes.
var (
	// ErrDraining rejects new work while the server shuts down (503).
	ErrDraining = errors.New("serve: draining")
	// ErrQueueFull rejects work beyond the bounded queue (429).
	ErrQueueFull = errors.New("serve: queue full")
)

// errJobPanicked wraps a recovered job-level panic.
var errJobPanicked = errors.New("serve: job panicked")

// Options configures a Server.
type Options struct {
	// DataDir roots the server's persistent state: DataDir/store is the
	// shared verdict store, DataDir/jobs the per-job journals, checkpoints
	// and ledgers.
	DataDir string
	// Slots is the number of concurrently running jobs (0 = NumCPU).
	Slots int
	// QueueCap bounds the pending-job queue (0 = 16). Submissions beyond
	// it are rejected with ErrQueueFull.
	QueueCap int
	// JobTimeout, when positive, bounds each job's wall time. A job that
	// exceeds it fails (it is not re-admitted: a deterministic job that
	// timed out once would time out forever).
	JobTimeout time.Duration
	// ChaosPanic, when positive, injects ATPG worker panics at this rate
	// into every job — the chaos harness knob, exercising the engine's
	// recover/retry/quarantine path under multi-tenant load.
	ChaosPanic float64
	// InjectJobPanic, when non-nil, is consulted before each job execution
	// attempt; returning true panics the whole job (not just one fault) —
	// the test hook for the job-level retry/quarantine guard.
	InjectJobPanic func(id string, attempt int) bool
}

// Server is the analysis server. Create with New, mount Handler on an HTTP
// listener, stop with Drain.
type Server struct {
	opt     Options
	jobsDir string
	store   *vstore.Store
	tracer  *obs.Tracer
	health  *obs.Health
	baseCtx context.Context
	cancel  context.CancelFunc
	done    chan struct{} // closed at drain: releases ledger followers
	queue   chan *Job
	wg      sync.WaitGroup

	mu   sync.Mutex
	jobs map[string]*Job
	seq  int64

	drainOnce sync.Once
	drainErr  error
}

// New opens (or creates) the server state under opt.DataDir, re-admits
// every journaled job that was alive when the previous process died, and
// starts the worker slots. The verdict store's flock makes concurrent
// servers on one DataDir fail fast with vstore.ErrLocked.
func New(opt Options) (*Server, error) {
	if opt.DataDir == "" {
		return nil, errors.New("serve: Options.DataDir is required")
	}
	opt.Slots = par.Count(opt.Slots)
	if opt.QueueCap == 0 {
		opt.QueueCap = 16
	}
	jobsDir := filepath.Join(opt.DataDir, "jobs")
	if err := os.MkdirAll(jobsDir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	store, err := vstore.Open(filepath.Join(opt.DataDir, "store"))
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opt:     opt,
		jobsDir: jobsDir,
		store:   store,
		tracer:  obs.New(),
		health:  &obs.Health{},
		baseCtx: ctx,
		cancel:  cancel,
		done:    make(chan struct{}),
		queue:   make(chan *Job, opt.QueueCap),
		jobs:    make(map[string]*Job),
	}
	st := store.Stats()
	s.tracer.Counter("serve/store_entries_loaded").Add(int64(store.Len()))
	s.tracer.Counter("serve/store_healed_records").Add(int64(st.HealedRecords))
	s.tracer.Counter("serve/store_quarantined_segments").Add(int64(st.QuarantinedSegs))

	recovered, err := s.recoverJobs()
	if err != nil {
		store.Close()
		cancel()
		return nil, err
	}
	for i := 0; i < opt.Slots; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	// Re-admitted jobs may outnumber the queue; feed them from a goroutine
	// so New returns promptly while the backlog drains through the slots.
	if len(recovered) > 0 {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for _, j := range recovered {
				select {
				case s.queue <- j:
				case <-s.baseCtx.Done():
					return
				}
			}
		}()
	}
	return s, nil
}

// recoverJobs loads every journaled job, re-admitting the ones the previous
// process left alive. Corrupt journals are quarantined (renamed), never
// trusted and never fatal.
func (s *Server) recoverJobs() ([]*Job, error) {
	paths, err := filepath.Glob(filepath.Join(s.jobsDir, "*.job"))
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	sort.Strings(paths)
	var recovered []*Job
	for _, path := range paths {
		var rec jobRecord
		if lerr := resilience.LoadJournal(path, jobJournalKind, jobJournalVersion, &rec); lerr != nil {
			// A torn or foreign journal tells us nothing reliable about
			// the job; set it aside for inspection. An identical
			// resubmission will pick up any surviving checkpoint.
			os.Rename(path, path+".quarantine")
			s.tracer.Counter("serve/journals_quarantined").Inc()
			continue
		}
		if rec.ID == "" || rec.ID != rec.Spec.ID() || rec.ID != strings.TrimSuffix(filepath.Base(path), ".job") {
			os.Rename(path, path+".quarantine")
			s.tracer.Counter("serve/journals_quarantined").Inc()
			continue
		}
		j := &Job{ID: rec.ID, Seq: rec.Seq, Spec: rec.Spec, state: rec.State, errMsg: rec.Error, result: rec.Result}
		if rec.Seq > s.seq {
			s.seq = rec.Seq
		}
		s.jobs[j.ID] = j
		switch rec.State {
		case StateDone, StateFailed:
			// Terminal: served from memory, never re-run.
		default:
			// queued, running or interrupted when the process died:
			// re-admit. A checkpoint on disk makes the re-run a resume.
			j.state = StateQueued
			if err := s.saveJob(j); err != nil {
				return nil, err
			}
			s.tracer.Counter("serve/jobs_readmitted").Inc()
			recovered = append(recovered, j)
		}
	}
	sort.Slice(recovered, func(a, b int) bool { return recovered[a].Seq < recovered[b].Seq })
	return recovered, nil
}

// saveJob journals the job's current state (atomic replace).
func (s *Server) saveJob(j *Job) error {
	v := j.Snapshot()
	rec := jobRecord{ID: v.ID, Seq: v.Seq, Spec: v.Spec, State: v.State, Error: v.Error, Result: v.Result}
	path := filepath.Join(s.jobsDir, j.ID+".job")
	if err := resilience.WriteJournal(path, jobJournalKind, jobJournalVersion, rec); err != nil {
		return fmt.Errorf("serve: journaling job %s: %w", j.ID, err)
	}
	return nil
}

// setState transitions the job and journals the transition.
func (s *Server) setState(j *Job, state, errMsg string, res *JobResult) error {
	j.mu.Lock()
	j.state = state
	j.errMsg = errMsg
	if res != nil {
		j.result = res
	}
	j.mu.Unlock()
	return s.saveJob(j)
}

// Submit admits a job. admitted reports whether this call queued work (a
// new job, or the re-admission of an interrupted one); an idempotent hit on
// an existing live or terminal job returns that job with admitted=false.
func (s *Server) Submit(sp JobSpec) (j *Job, admitted bool, err error) {
	if err := sp.Validate(); err != nil {
		return nil, false, err
	}
	if s.health.Draining() {
		s.tracer.Counter("serve/jobs_rejected").Inc()
		return nil, false, ErrDraining
	}
	id := sp.ID()
	s.mu.Lock()
	defer s.mu.Unlock()
	if existing, ok := s.jobs[id]; ok {
		if existing.State() != StateInterrupted {
			return existing, false, nil
		}
		// Interrupted jobs re-admit on resubmission: the journaled
		// checkpoint turns the re-run into a resume.
		if err := s.setState(existing, StateQueued, "", nil); err != nil {
			return nil, false, err
		}
		select {
		case s.queue <- existing:
			s.tracer.Counter("serve/jobs_readmitted").Inc()
			return existing, true, nil
		default:
			s.setState(existing, StateInterrupted, "", nil)
			s.tracer.Counter("serve/jobs_rejected").Inc()
			return nil, false, ErrQueueFull
		}
	}
	s.seq++
	j = &Job{ID: id, Seq: s.seq, Spec: sp, state: StateQueued}
	// Journal before enqueueing: once a client has seen "queued", a crash
	// must not forget the job.
	if err := s.saveJob(j); err != nil {
		s.seq--
		return nil, false, err
	}
	select {
	case s.queue <- j:
		s.jobs[id] = j
		s.tracer.Counter("serve/jobs_submitted").Inc()
		s.tracer.Gauge("serve/queue_depth").Set(float64(len(s.queue)))
		return j, true, nil
	default:
		os.Remove(filepath.Join(s.jobsDir, id+".job"))
		s.seq--
		s.tracer.Counter("serve/jobs_rejected").Inc()
		return nil, false, ErrQueueFull
	}
}

// Job returns a job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs lists all known jobs in admission order.
func (s *Server) Jobs() []JobView {
	s.mu.Lock()
	all := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		all = append(all, j)
	}
	s.mu.Unlock()
	sort.Slice(all, func(a, b int) bool { return all[a].Seq < all[b].Seq })
	views := make([]JobView, len(all))
	for i, j := range all {
		views[i] = j.Snapshot()
	}
	return views
}

// Tracer exposes the server's metrics registry (mounted at /metrics by
// Handler).
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// Health exposes the server's readiness state (mounted at /readyz).
func (s *Server) Health() *obs.Health { return s.health }

// Store exposes the shared verdict store (for stats reporting).
func (s *Server) Store() *vstore.Store { return s.store }

// worker is one job slot: it drains the queue until the server shuts down.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case j := <-s.queue:
			s.tracer.Gauge("serve/queue_depth").Set(float64(len(s.queue)))
			s.runJob(j)
		}
	}
}

// runJob executes one job with the panic quarantine: a panicking job is
// retried once from scratch (transient wounds heal), a second panic marks
// it failed — the tenant is quarantined, the server lives on.
func (s *Server) runJob(j *Job) {
	if s.baseCtx.Err() != nil {
		s.setState(j, StateInterrupted, "", nil)
		return
	}
	if err := s.setState(j, StateRunning, "", nil); err != nil {
		s.setState(j, StateFailed, err.Error(), nil)
		return
	}
	jobCtx := s.baseCtx
	var cancelJob context.CancelFunc
	if s.opt.JobTimeout > 0 {
		jobCtx, cancelJob = context.WithTimeout(jobCtx, s.opt.JobTimeout)
		defer cancelJob()
	}
	var res *JobResult
	var err error
	for attempt := 0; ; attempt++ {
		res, err = s.tryJob(j, jobCtx, attempt)
		if errors.Is(err, errJobPanicked) && attempt == 0 {
			s.tracer.Counter("serve/job_panics_retried").Inc()
			continue
		}
		break
	}
	switch {
	case err == nil:
		s.setState(j, StateDone, "", res)
		s.tracer.Counter("serve/jobs_completed").Inc()
	case errors.Is(err, errJobPanicked):
		s.setState(j, StateFailed, err.Error(), nil)
		s.tracer.Counter("serve/jobs_quarantined").Inc()
	case errors.Is(err, resilience.ErrInterrupted) &&
		jobCtx.Err() == context.DeadlineExceeded && s.baseCtx.Err() == nil:
		// The job's own deadline expired while the server kept running: a
		// deterministic job that timed out once would time out on every
		// resume, so re-admission would crash-loop. Fail it.
		s.setState(j, StateFailed, fmt.Sprintf("serve: job deadline %v exceeded", s.opt.JobTimeout), nil)
		s.tracer.Counter("serve/jobs_deadline_failed").Inc()
	case errors.Is(err, resilience.ErrInterrupted):
		// Drain or StopAfterCommits: the consistent prefix is journaled;
		// the job is re-admittable and resumes where it stopped.
		s.setState(j, StateInterrupted, err.Error(), nil)
		s.tracer.Counter("serve/jobs_interrupted").Inc()
	default:
		s.setState(j, StateFailed, err.Error(), nil)
		s.tracer.Counter("serve/jobs_failed").Inc()
	}
}

// tryJob is one execution attempt under a recover guard.
func (s *Server) tryJob(j *Job, ctx context.Context, attempt int) (res *JobResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: %v", errJobPanicked, r)
		}
	}()
	if hook := s.opt.InjectJobPanic; hook != nil && hook(j.ID, attempt) {
		panic("serve: injected job panic")
	}
	return s.runSpec(j, ctx)
}

// Drain shuts the server down gracefully: readiness flips to draining
// (new submissions get ErrDraining, /readyz reports 503), live ledger
// followers are released, running jobs are interrupted at their next
// deterministic boundary and journaled as re-admittable, and the verdict
// store is closed. ctx bounds the wait; an expired ctx abandons the
// workers (their journals still make their jobs recoverable — that is the
// whole point). Drain is idempotent.
func (s *Server) Drain(ctx context.Context) error {
	s.drainOnce.Do(func() {
		s.health.SetDraining()
		close(s.done)
		s.cancel()
		done := make(chan struct{})
		go func() {
			s.wg.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-ctx.Done():
			s.drainErr = fmt.Errorf("serve: drain: %w", ctx.Err())
		}
		// Jobs still sitting in the queue never started; journal them back
		// to their re-admittable state explicitly for tidiness (recovery
		// would re-admit "queued" anyway).
		for {
			select {
			case j := <-s.queue:
				s.setState(j, StateInterrupted, "", nil)
			default:
				if err := s.store.Close(); err != nil && s.drainErr == nil {
					s.drainErr = err
				}
				return
			}
		}
	})
	return s.drainErr
}
