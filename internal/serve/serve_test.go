package serve

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// testSpec is the suite's workhorse: sparc_spu is the fastest benchmark
// with a non-trivial sweep (it accepts at least one resynthesis commit, so
// checkpoints and resume have something to do).
func testSpec(name string) JobSpec {
	return JobSpec{Name: name, Bench: "sparc_spu"}
}

func newServer(t *testing.T, opt Options) *Server {
	t.Helper()
	if opt.DataDir == "" {
		opt.DataDir = t.TempDir()
	}
	s, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		s.Drain(ctx)
	})
	return s
}

// waitState polls until the job reaches a terminal-enough state.
func waitState(t *testing.T, j *Job, want string) JobView {
	t.Helper()
	deadline := time.Now().Add(3 * time.Minute)
	for time.Now().Before(deadline) {
		v := j.Snapshot()
		if v.State == want {
			return v
		}
		if v.State == StateFailed && want != StateFailed {
			t.Fatalf("job %s failed: %s", v.ID, v.Error)
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s (state %s)", j.ID, want, j.State())
	return JobView{}
}

func submit(t *testing.T, s *Server, sp JobSpec) *Job {
	t.Helper()
	j, _, err := s.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestSpecValidateAndID(t *testing.T) {
	if err := (JobSpec{}).Validate(); err == nil {
		t.Error("empty spec validated")
	}
	if err := (JobSpec{Bench: "x", Circuit: "y"}).Validate(); err == nil {
		t.Error("two-source spec validated")
	}
	if err := (JobSpec{Bench: "x", MaxQ: 101}).Validate(); err == nil {
		t.Error("maxQ 101 validated")
	}
	a, b := testSpec("a").ID(), testSpec("b").ID()
	if a == b {
		t.Error("distinct specs share an ID")
	}
	if a != testSpec("a").ID() {
		t.Error("spec ID is not deterministic")
	}
}

// TestLifecycleDigestIdentity is the acceptance contract: a job interrupted
// mid-sweep (StopAfterCommits — the deterministic stand-in for SIGKILL) and
// resumed — by resubmission onto the same server, or by a fresh server
// instance recovering the journals — completes with a stitched ledger
// digest byte-identical to an uninterrupted run's.
func TestLifecycleDigestIdentity(t *testing.T) {
	// Uninterrupted baseline in its own data directory (empty store, so
	// its run is bit-for-bit the storeless run).
	base := newServer(t, Options{Slots: 1})
	bv := waitState(t, submit(t, base, testSpec("golden")), StateDone)
	if bv.Result == nil || bv.Result.LedgerDigest == "" {
		t.Fatal("baseline job has no ledger digest")
	}
	if bv.Result.Commits == 0 {
		t.Fatal("sparc_spu accepted no commits; the resume paths below would be vacuous")
	}
	golden := bv.Result.LedgerDigest

	// Same spec, interrupted after its first commit, resumed by
	// resubmission onto the same server.
	killed := testSpec("golden")
	killed.StopAfterCommits = 1
	s2 := newServer(t, Options{Slots: 1})
	j := submit(t, s2, killed)
	waitState(t, j, StateInterrupted)
	if _, err := os.Stat(s2.ckptPath(j.ID)); err != nil {
		t.Fatalf("interrupted job left no checkpoint: %v", err)
	}
	j2, admitted, err := s2.Submit(killed)
	if err != nil || !admitted || j2 != j {
		t.Fatalf("resubmission: job=%p/%p admitted=%v err=%v", j2, j, admitted, err)
	}
	rv := waitState(t, j, StateDone)
	if !rv.Result.Resumed || rv.Result.ReplayedCommits == 0 {
		t.Errorf("resumed run did not report resume: %+v", rv.Result)
	}
	if rv.Result.LedgerDigest != golden {
		t.Errorf("resumed digest %s != uninterrupted %s", rv.Result.LedgerDigest, golden)
	}
	if _, err := os.Stat(s2.ckptPath(j.ID)); !os.IsNotExist(err) {
		t.Error("completed job left its checkpoint behind")
	}

	// Same again, but the resume happens in a brand-new server instance
	// recovering the journals — the restart-after-crash path.
	dir := t.TempDir()
	s3 := newServer(t, Options{DataDir: dir, Slots: 1})
	j3 := submit(t, s3, killed)
	waitState(t, j3, StateInterrupted)
	if err := s3.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	s4 := newServer(t, Options{DataDir: dir, Slots: 1})
	j4, ok := s4.Job(j3.ID)
	if !ok {
		t.Fatal("restarted server forgot the interrupted job")
	}
	rv4 := waitState(t, j4, StateDone)
	if !rv4.Result.Resumed {
		t.Error("recovered job did not resume from its checkpoint")
	}
	if rv4.Result.LedgerDigest != golden {
		t.Errorf("recovered digest %s != uninterrupted %s", rv4.Result.LedgerDigest, golden)
	}
}

// TestWarmHitsAcrossRestart is the shared-store contract: a second server
// instance on the same data directory starts cold (fresh process, fresh
// caches) yet its first job reports nonzero warm verdict-cache hits — and a
// torn store tail from the first life is healed, not fatal.
func TestWarmHitsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	s1 := newServer(t, Options{DataDir: dir, Slots: 1})
	v1 := waitState(t, submit(t, s1, testSpec("first")), StateDone)
	if v1.Result.WarmHits != 0 {
		t.Errorf("first job on an empty store reported %d warm hits", v1.Result.WarmHits)
	}
	if err := s1.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Tear the store's tail as a crash mid-append would.
	segs, _ := filepath.Glob(filepath.Join(dir, "store", "seg-*.vseg"))
	if len(segs) == 0 {
		t.Fatal("completed job published nothing to the store")
	}
	last := segs[len(segs)-1]
	data, err := os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(last, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := newServer(t, Options{DataDir: dir, Slots: 1})
	if st := s2.Store().Stats(); st.HealedRecords == 0 {
		t.Errorf("torn store tail was not healed: %+v", st)
	}
	v2 := waitState(t, submit(t, s2, testSpec("second")), StateDone)
	if v2.Result.Prewarmed == 0 {
		t.Error("second life prewarmed nothing from the shared store")
	}
	if v2.Result.WarmHits == 0 {
		t.Error("second life's job reported zero warm hits")
	}
	if v2.Result.U != v1.Result.U || v2.Result.Cov != v1.Result.Cov {
		t.Errorf("warm-started job changed results: U %d/%d Cov %v/%v",
			v2.Result.U, v1.Result.U, v2.Result.Cov, v1.Result.Cov)
	}
}

// TestQueueBoundsAndDrain pins admission control: a held worker slot plus a
// full queue yields ErrQueueFull; draining yields ErrDraining.
func TestQueueBoundsAndDrain(t *testing.T) {
	block := make(chan struct{})
	var once bool
	s := newServer(t, Options{
		Slots:    1,
		QueueCap: 1,
		InjectJobPanic: func(string, int) bool {
			if !once {
				once = true
				<-block // hold the only slot; never panic
			}
			return false
		},
	})
	j1 := submit(t, s, testSpec("q1"))
	waitState(t, j1, StateRunning) // slot held inside the hook
	j2 := submit(t, s, testSpec("q2"))
	if _, _, err := s.Submit(testSpec("q3")); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submission = %v, want ErrQueueFull", err)
	}
	// Idempotent resubmission of known jobs is not an admission.
	if dup, admitted, err := s.Submit(testSpec("q2")); err != nil || admitted || dup != j2 {
		t.Fatalf("duplicate submission = %p/%p admitted=%v err=%v", dup, j2, admitted, err)
	}
	close(block)
	waitState(t, j1, StateDone)
	waitState(t, j2, StateDone)

	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Submit(testSpec("late")); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain submission = %v, want ErrDraining", err)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal("second Drain not idempotent:", err)
	}
}

// TestJobPanicQuarantine pins the job-level panic guard: one panic retries
// from scratch and succeeds; a stubborn panicker is quarantined as failed
// without taking the server down.
func TestJobPanicQuarantine(t *testing.T) {
	stubborn := testSpec("stubborn")
	flaky := testSpec("flaky")
	s := newServer(t, Options{
		Slots: 1,
		InjectJobPanic: func(id string, attempt int) bool {
			switch id {
			case stubborn.ID():
				return true
			case flaky.ID():
				return attempt == 0
			}
			return false
		},
	})
	js := submit(t, s, stubborn)
	v := waitState(t, js, StateFailed)
	if !strings.Contains(v.Error, "panicked") {
		t.Errorf("quarantined job error = %q", v.Error)
	}
	if got := s.Tracer().Counter("serve/jobs_quarantined").Get(); got != 1 {
		t.Errorf("jobs_quarantined = %d, want 1", got)
	}
	jf := submit(t, s, flaky)
	waitState(t, jf, StateDone)
	if got := s.Tracer().Counter("serve/job_panics_retried").Get(); got == 0 {
		t.Error("flaky job's retry was not counted")
	}
	// The failed tenant stayed failed and did not poison the healthy one.
	if js.State() != StateFailed {
		t.Error("quarantined job resurrected")
	}
}

// TestCorruptJobJournalQuarantined: a torn job journal on disk is set aside
// at startup, never trusted, never fatal.
func TestCorruptJobJournalQuarantined(t *testing.T) {
	dir := t.TempDir()
	jobs := filepath.Join(dir, "jobs")
	if err := os.MkdirAll(jobs, 0o755); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(jobs, "deadbeefdeadbeef.job")
	if err := os.WriteFile(bad, []byte("not a journal"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := newServer(t, Options{DataDir: dir, Slots: 1})
	if got := s.Tracer().Counter("serve/journals_quarantined").Get(); got != 1 {
		t.Errorf("journals_quarantined = %d, want 1", got)
	}
	if _, err := os.Stat(bad + ".quarantine"); err != nil {
		t.Errorf("torn journal not preserved: %v", err)
	}
	if len(s.Jobs()) != 0 {
		t.Error("torn journal produced a job")
	}
}

// TestHTTPAPI drives the full wire surface end to end against a live job.
func TestHTTPAPI(t *testing.T) {
	s := newServer(t, Options{Slots: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(body string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, string(b)
	}

	if resp, _ := post(`{"bench":`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body = %d, want 400", resp.StatusCode)
	}
	if resp, _ := post(`{"bench":"sparc_spu","bogus":1}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field = %d, want 400", resp.StatusCode)
	}
	resp, body := post(`{"bench":"sparc_spu","name":"http"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submission = %d %s, want 202", resp.StatusCode, body)
	}
	var view JobView
	if err := json.Unmarshal([]byte(body), &view); err != nil || view.ID == "" {
		t.Fatalf("submission response %q: %v", body, err)
	}
	// Idempotent re-POST of a known job answers 200.
	if resp, _ := post(`{"bench":"sparc_spu","name":"http"}`); resp.StatusCode != http.StatusOK {
		t.Errorf("duplicate submission = %d, want 200", resp.StatusCode)
	}

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(b)
	}

	deadline := time.Now().Add(3 * time.Minute)
	for {
		code, body := get("/jobs/" + view.ID)
		if code != http.StatusOK {
			t.Fatalf("GET job = %d %s", code, body)
		}
		if err := json.Unmarshal([]byte(body), &view); err != nil {
			t.Fatal(err)
		}
		if view.State == StateDone {
			break
		}
		if view.State == StateFailed || time.Now().After(deadline) {
			t.Fatalf("job did not complete over HTTP: %+v", view)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if view.Result == nil || view.Result.LedgerDigest == "" {
		t.Fatalf("done job carries no result: %+v", view)
	}

	if code, body := get("/jobs"); code != http.StatusOK || !strings.Contains(body, view.ID) {
		t.Errorf("GET /jobs = %d, missing job %s", code, view.ID)
	}
	if code, _ := get("/jobs/ffffffffffffffff"); code != http.StatusNotFound {
		t.Errorf("GET unknown job = %d, want 404", code)
	}
	code, ledger := get("/jobs/" + view.ID + "/ledger")
	if code != http.StatusOK || !strings.Contains(ledger, `"t":"stage"`) {
		t.Errorf("GET ledger = %d, body lacks stage records", code)
	}
	if code, body := get("/store"); code != http.StatusOK || !strings.Contains(body, "entries") {
		t.Errorf("GET /store = %d %s", code, body)
	}
	if code, _ := get("/metrics"); code != http.StatusOK {
		t.Errorf("GET /metrics = %d", code)
	}
	if code, body := get("/readyz"); code != http.StatusOK || body != "ready\n" {
		t.Errorf("GET /readyz = %d %q", code, body)
	}

	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable || body != "draining\n" {
		t.Errorf("GET /readyz after drain = %d %q", code, body)
	}
	if resp, _ := post(`{"bench":"sparc_spu","name":"late"}`); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-drain submission = %d, want 503", resp.StatusCode)
	}
}
