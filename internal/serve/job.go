package serve

import (
	"bufio"
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"dfmresyn/internal/bench"
	"dfmresyn/internal/chaos"
	"dfmresyn/internal/fcache"
	"dfmresyn/internal/flow"
	"dfmresyn/internal/geom"
	"dfmresyn/internal/library"
	"dfmresyn/internal/netlist"
	"dfmresyn/internal/obs"
	"dfmresyn/internal/resyn"
	"dfmresyn/internal/verilog"
)

// JobSpec is a client's analysis request: one circuit source plus the sweep
// options that shape the result. The spec IS the job's identity — two
// submissions with identical specs are the same job (idempotent
// resubmission), which is what lets a client whose server crashed mid-run
// simply POST the same body again and land on the recovered job.
type JobSpec struct {
	// Name is an optional display label. It participates in the job ID
	// like every other field, so distinct names are distinct jobs.
	Name string `json:"name,omitempty"`
	// Exactly one circuit source must be set.
	Bench   string `json:"bench,omitempty"`   // built-in benchmark circuit name
	Circuit string `json:"circuit,omitempty"` // .ckt netlist text
	Verilog string `json:"verilog,omitempty"` // structural Verilog module text
	// MaxQ bounds the sweep's delay/power slack percentage (0 selects the
	// paper's 5). Seed is the deterministic run seed (0 selects 1).
	// Workers bounds the job's classification worker pool (0 = NumCPU);
	// any value yields byte-identical results.
	MaxQ    int   `json:"maxQ,omitempty"`
	Seed    int64 `json:"seed,omitempty"`
	Workers int   `json:"workers,omitempty"`
	// StopAfterCommits, when positive, interrupts the sweep after that
	// many accepted iterations exactly like a kill at that point — the
	// chaos/test knob for exercising resume, same as the CLI's -stopafter.
	// The job lands in state interrupted and a resubmission resumes it.
	StopAfterCommits int `json:"stopAfterCommits,omitempty"`
}

// Validate rejects specs the scheduler should never admit.
func (sp JobSpec) Validate() error {
	n := 0
	if sp.Bench != "" {
		n++
	}
	if sp.Circuit != "" {
		n++
	}
	if sp.Verilog != "" {
		n++
	}
	if n != 1 {
		return fmt.Errorf("serve: spec must set exactly one of bench, circuit, verilog (got %d)", n)
	}
	if sp.MaxQ < 0 || sp.MaxQ > 100 {
		return fmt.Errorf("serve: maxQ %d outside 0..100", sp.MaxQ)
	}
	if sp.Workers < 0 || sp.StopAfterCommits < 0 || sp.Seed < 0 {
		return fmt.Errorf("serve: negative option")
	}
	return nil
}

// ID is the job's content address: the truncated SHA-256 of the spec's
// canonical JSON.
func (sp JobSpec) ID() string {
	b, _ := json.Marshal(sp) // fixed field order; cannot fail
	sum := sha256.Sum256(b)
	return fmt.Sprintf("%x", sum[:8])
}

// Job states. queued and running are live; interrupted is re-admittable
// (crash, drain or StopAfterCommits — the checkpoint journal carries the
// completed prefix); done and failed are terminal.
const (
	StateQueued      = "queued"
	StateRunning     = "running"
	StateInterrupted = "interrupted"
	StateDone        = "done"
	StateFailed      = "failed"
)

// JobResult is the terminal outcome of a completed job: the sweep's
// Table II core plus the resilience/caching telemetry that makes fleet
// behaviour observable (was this job resumed, what did the shared store
// contribute).
type JobResult struct {
	BestQ   int     `json:"bestQ"`
	U       int     `json:"u"`
	Smax    int     `json:"smax"`
	F       int     `json:"f"`
	T       int     `json:"t"`
	Cov     float64 `json:"cov"`
	Commits int     `json:"commits"`
	// LedgerDigest / LedgerEvents cover the job's on-disk provenance
	// ledger, all segments stitched: byte-identical for an uninterrupted
	// run and a kill/restart/resume of the same spec.
	LedgerDigest string `json:"ledgerDigest"`
	LedgerEvents int    `json:"ledgerEvents"`
	// Resumed / ReplayedCommits report crash recovery; Prewarmed /
	// WarmHits report what the shared verdict store contributed.
	Resumed         bool           `json:"resumed,omitempty"`
	ReplayedCommits int            `json:"replayedCommits,omitempty"`
	Prewarmed       int            `json:"prewarmed,omitempty"`
	CacheLookups    uint64         `json:"cacheLookups"`
	CacheHits       uint64         `json:"cacheHits"`
	WarmHits        uint64         `json:"warmHits"`
	SATEscalations  int            `json:"satEscalations,omitempty"`
	Quarantined     int            `json:"quarantined,omitempty"`
	Tiers           obs.TierCounts `json:"tiers"`
}

// Job is one admitted analysis. State transitions are journaled to
// jobs/<id>.job before they take effect for clients, so a crash at any
// point leaves a journal the restarted server can act on.
type Job struct {
	ID   string
	Seq  int64
	Spec JobSpec

	mu     sync.Mutex
	state  string
	errMsg string
	result *JobResult
	ledger *obs.Ledger // live flight recorder while running
}

// State returns the job's current state.
func (j *Job) State() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Snapshot returns the job's externally visible state for the HTTP API.
func (j *Job) Snapshot() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobView{ID: j.ID, Seq: j.Seq, Spec: j.Spec, State: j.state, Error: j.errMsg, Result: j.result}
}

// liveLedger returns the in-flight flight recorder, or nil.
func (j *Job) liveLedger() *obs.Ledger {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.ledger
}

// JobView is the JSON shape of a job on the wire.
type JobView struct {
	ID     string     `json:"id"`
	Seq    int64      `json:"seq"`
	Spec   JobSpec    `json:"spec"`
	State  string     `json:"state"`
	Error  string     `json:"error,omitempty"`
	Result *JobResult `json:"result,omitempty"`
}

// jobJournalKind / jobJournalVersion frame the per-job journal under the
// resilience envelope (versioned header, CRC, atomic replacement).
const (
	jobJournalKind    = "serve-job"
	jobJournalVersion = 1
)

// jobRecord is the journaled form of a job.
type jobRecord struct {
	ID     string     `json:"id"`
	Seq    int64      `json:"seq"`
	Spec   JobSpec    `json:"spec"`
	State  string     `json:"state"`
	Error  string     `json:"error,omitempty"`
	Result *JobResult `json:"result,omitempty"`
}

// buildSpecCircuit materializes the spec's circuit source against lib.
// Circuits must be built against the analyzing environment's own library:
// netlist gates reference library cells by pointer.
func buildSpecCircuit(sp JobSpec, lib *library.Library) (*netlist.Circuit, error) {
	switch {
	case sp.Bench != "":
		c, err := bench.Build(sp.Bench, lib)
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		return c, nil
	case sp.Circuit != "":
		c, err := netlist.Read(strings.NewReader(sp.Circuit), lib)
		if err != nil {
			return nil, fmt.Errorf("serve: parsing circuit: %w", err)
		}
		return c, nil
	case sp.Verilog != "":
		c, err := verilog.ReadModule(strings.NewReader(sp.Verilog), lib)
		if err != nil {
			return nil, fmt.Errorf("serve: parsing verilog: %w", err)
		}
		return c, nil
	}
	return nil, errors.New("serve: empty spec")
}

// ckptPath / ledgerSegPath / ledgerSegments name a job's on-disk artifacts.
// Ledger segments exist because a resumed job must truncate the killed
// run's ledger at the checkpoint boundary and then keep appending; each
// process writes its own segment and readers stitch them in order.
func (s *Server) ckptPath(id string) string {
	return filepath.Join(s.jobsDir, id+".ckpt")
}

func (s *Server) ledgerSegPath(id string, n int) string {
	return filepath.Join(s.jobsDir, fmt.Sprintf("%s.ledger.%06d.jsonl", id, n))
}

func (s *Server) ledgerSegments(id string) []string {
	names, _ := filepath.Glob(filepath.Join(s.jobsDir, id+".ledger.*.jsonl"))
	sort.Strings(names)
	return names
}

// segOrdinal parses the segment number out of a segment path.
func segOrdinal(path string) int {
	parts := strings.Split(filepath.Base(path), ".")
	if len(parts) < 2 {
		return 0
	}
	var n int
	fmt.Sscanf(parts[len(parts)-2], "%d", &n)
	return n
}

// readLedgerLines reads one ledger segment leniently: well-formed JSONL
// lines of known record types, stopping (without error) at the first torn
// or foreign line — exactly what a SIGKILL mid-write leaves behind. Records
// come back alongside their raw lines so truncation can rewrite the prefix
// byte-identically.
func readLedgerLines(path string) (lines []string, recs []obs.LedgerRecord) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if len(line) == 0 {
			continue
		}
		var rec obs.LedgerRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			return lines, recs
		}
		switch rec.T {
		case "stage", "verdict", "iter", "summary":
		default:
			return lines, recs
		}
		lines = append(lines, line)
		recs = append(recs, rec)
	}
	return lines, recs
}

// prepareResumeLedger truncates the killed run's on-disk ledger to exactly
// the records up to and including the k-th iter record (the commit the
// checkpoint describes) and deletes everything after — later records belong
// to analyses the resumed continuation re-runs and re-emits, so keeping
// them would duplicate. Returns the next segment ordinal to append under,
// or ok=false when the segments do not contain k iter records (an
// inconsistent pair — the caller falls back to a fresh run, which is always
// correct and only loses work). The ledger's iter-record fsync barrier
// makes the inconsistent case unreachable for a real kill: the k-th iter
// record is durable before the checkpoint naming it can land.
func (s *Server) prepareResumeLedger(id string, k int) (nextSeg int, ok bool) {
	segs := s.ledgerSegments(id)
	iters := 0
	for si, path := range segs {
		lines, recs := readLedgerLines(path)
		for li, rec := range recs {
			if rec.T != "iter" {
				continue
			}
			iters++
			if iters < k {
				continue
			}
			var b strings.Builder
			for _, line := range lines[:li+1] {
				b.WriteString(line)
				b.WriteByte('\n')
			}
			if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
				return 0, false
			}
			for _, later := range segs[si+1:] {
				os.Remove(later)
			}
			return segOrdinal(path) + 1, true
		}
	}
	return 0, false
}

// removeJobArtifacts deletes a job's checkpoint and ledger segments (the
// fresh-run reset).
func (s *Server) removeJobArtifacts(id string) {
	os.Remove(s.ckptPath(id))
	for _, seg := range s.ledgerSegments(id) {
		os.Remove(seg)
	}
}

// collectLedger stitches a finished job's ledger segments into one record
// stream and returns the canonical digest and digested-event count — the
// cross-run identity the acceptance tests compare.
func (s *Server) collectLedger(id string) (digest string, events int, err error) {
	var all []obs.LedgerRecord
	for _, path := range s.ledgerSegments(id) {
		_, recs := readLedgerLines(path)
		for _, rec := range recs {
			if rec.T == "summary" {
				continue
			}
			all = append(all, rec)
		}
	}
	d, err := obs.LedgerDigest(all)
	if err != nil {
		return "", 0, err
	}
	return d, len(all), nil
}

// runSpec executes a job's sweep — fresh, or resumed from its checkpoint —
// inside jobCtx. It owns the digest-identity choreography; the ordering
// here is what makes a killed+resumed job's stitched ledger canonically
// byte-identical to an uninterrupted run's.
func (s *Server) runSpec(j *Job, jobCtx context.Context) (*JobResult, error) {
	sp := j.Spec
	seed := sp.Seed
	if seed == 0 {
		seed = 1
	}
	env := flow.NewEnv()
	env.Seed = seed
	env.ATPG.Seed = seed
	env.Workers = sp.Workers
	env.Ctx = jobCtx
	if s.opt.ChaosPanic > 0 {
		env.ATPG.InjectPanic = chaos.Panics(seed, s.opt.ChaosPanic)
	}
	c, err := buildSpecCircuit(sp, env.Lib)
	if err != nil {
		return nil, err
	}

	ckpt := s.ckptPath(j.ID)
	opt := resyn.Options{MaxQ: sp.MaxQ, Journal: ckpt, StopAfterCommits: sp.StopAfterCommits}

	ck, ckErr := resyn.LoadCheckpoint(ckpt)
	resumed := ckErr == nil
	nextSeg := 1
	if resumed {
		var ok bool
		nextSeg, ok = s.prepareResumeLedger(j.ID, len(ck.Commits))
		if !ok {
			// Checkpoint and ledger disagree (or the ledger is gone):
			// discard both and rerun from scratch — correct, just slower.
			s.tracer.Counter("serve/resume_fallbacks").Inc()
			resumed = false
			nextSeg = 1
		}
	}
	if !resumed {
		s.removeJobArtifacts(j.ID)
	}

	cache := fcache.New()
	env.FaultCache = cache
	prewarmed := 0
	if !resumed {
		// Fresh run: seed the verdict cache from the shared store. On an
		// empty store this is a free no-op, so the first job in a fresh
		// data directory — the uninterrupted baseline the digest tests
		// compare against — is bit-for-bit the storeless run.
		prewarmed = s.store.Prewarm(cache)
		s.tracer.Counter("serve/prewarmed_entries").Add(int64(prewarmed))
	}
	// On resume the checkpoint's journaled CacheEntries are the
	// authoritative warm state (resyn.Resume imports them before replay);
	// prewarming from the since-grown store instead would change tier
	// attribution and break ledger-digest identity with the killed run.

	var ledger *obs.Ledger
	attach := func(n int) error {
		l, cerr := obs.CreateLedger(s.ledgerSegPath(j.ID, n))
		if cerr != nil {
			return cerr
		}
		ledger = l
		env.Ledger = l
		j.mu.Lock()
		j.ledger = l
		j.mu.Unlock()
		return nil
	}
	detach := func() {
		j.mu.Lock()
		j.ledger = nil
		j.mu.Unlock()
		if ledger != nil {
			ledger.Close()
			ledger = nil
		}
	}
	defer detach()

	if !resumed {
		// Fresh: the original analysis is part of the job's ledger.
		if err := attach(1); err != nil {
			return nil, err
		}
	}
	// Resumed: the killed run's segments already carry the original
	// analysis; this process's pre-replay Analyze must stay ledger-silent
	// or the stitched stream would record it twice.
	orig, err := env.Analyze(c, geom.Rect{})
	if err != nil {
		return nil, err
	}

	var res *resyn.Result
	if resumed {
		if err := attach(nextSeg); err != nil {
			return nil, err
		}
		// A re-admitted job runs to completion: StopAfterCommits already
		// fired once (or the process died); carrying it into the
		// continuation would re-interrupt immediately, since the replayed
		// prefix alone satisfies it.
		opt.StopAfterCommits = 0
		res, err = resyn.Resume(env, orig, ckpt, opt)
	} else {
		res, err = resyn.RunFrom(env, orig, opt)
	}
	if err != nil {
		return nil, err
	}

	// Success: close the ledger (durable summary) before digesting from
	// disk, publish this job's verdicts to the shared store, then drop the
	// checkpoint — the job is terminal, nothing will resume it.
	detach()
	digest, events, derr := s.collectLedger(j.ID)
	if derr != nil {
		return nil, fmt.Errorf("serve: stitching ledger: %w", derr)
	}
	if added, merr := s.store.Merge(cache.Export()); merr != nil {
		// The job's own result is sound; a store append failure only
		// costs future warmth. Record it and move on.
		s.tracer.Counter("serve/store_merge_errors").Inc()
	} else {
		s.tracer.Counter("serve/store_appended").Add(int64(added))
	}
	os.Remove(ckpt)

	m := res.Final.Metrics()
	return &JobResult{
		BestQ:           res.BestQ,
		U:               m.U,
		Smax:            m.Smax,
		F:               m.F,
		T:               m.T,
		Cov:             m.Cov,
		Commits:         len(res.Trace),
		LedgerDigest:    digest,
		LedgerEvents:    events,
		Resumed:         res.Resumed,
		ReplayedCommits: res.ReplayedCommits,
		Prewarmed:       prewarmed,
		CacheLookups:    res.Cache.Lookups,
		CacheHits:       res.Cache.Hits,
		WarmHits:        cache.Stats().WarmHits,
		SATEscalations:  res.SATEscalations,
		Quarantined:     res.Quarantined,
		Tiers:           res.Tiers,
	}, nil
}
