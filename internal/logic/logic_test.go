package logic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestV5Not(t *testing.T) {
	cases := map[V5]V5{X: X, Zero: One, One: Zero, D: DBar, DBar: D}
	for v, want := range cases {
		if got := v.Not(); got != want {
			t.Errorf("Not(%v) = %v, want %v", v, got, want)
		}
		if got := v.Not().Not(); got != v {
			t.Errorf("double Not(%v) = %v", v, got)
		}
	}
}

func TestV5Projections(t *testing.T) {
	type proj struct {
		g, f   uint8
		gk, fk bool
	}
	cases := map[V5]proj{
		Zero: {0, 0, true, true},
		One:  {1, 1, true, true},
		D:    {1, 0, true, true},
		DBar: {0, 1, true, true},
		X:    {0, 0, false, false},
	}
	for v, want := range cases {
		g, gk := v.Good()
		f, fk := v.Faulty()
		if gk != want.gk || fk != want.fk || (gk && g != want.g) || (fk && f != want.f) {
			t.Errorf("%v projections: good=(%d,%v) faulty=(%d,%v)", v, g, gk, f, fk)
		}
	}
}

func TestFromBitsRoundTrip(t *testing.T) {
	for g := uint8(0); g <= 1; g++ {
		for f := uint8(0); f <= 1; f++ {
			v := FromBits(g, f)
			gg, _ := v.Good()
			ff, _ := v.Faulty()
			if gg != g || ff != f {
				t.Errorf("FromBits(%d,%d) = %v: round-trip (%d,%d)", g, f, v, gg, ff)
			}
		}
	}
}

func TestIsError(t *testing.T) {
	if !D.IsError() || !DBar.IsError() {
		t.Error("D/DBar must be errors")
	}
	if Zero.IsError() || One.IsError() || X.IsError() {
		t.Error("0/1/X must not be errors")
	}
}

func ttAND(n int) TT {
	return NewTT(n, func(a uint) uint8 {
		if a == 1<<uint(n)-1 {
			return 1
		}
		return 0
	})
}

func ttXOR(n int) TT {
	return NewTT(n, func(a uint) uint8 {
		var p uint8
		for i := 0; i < n; i++ {
			p ^= uint8(a >> uint(i) & 1)
		}
		return p
	})
}

func TestTTEval(t *testing.T) {
	and3 := ttAND(3)
	for a := uint(0); a < 8; a++ {
		want := uint8(0)
		if a == 7 {
			want = 1
		}
		if got := and3.Eval(a); got != want {
			t.Errorf("AND3(%03b) = %d, want %d", a, got, want)
		}
	}
	if and3.Minterms() != 1 {
		t.Errorf("AND3 minterms = %d", and3.Minterms())
	}
	xor2 := ttXOR(2)
	if xor2.Minterms() != 2 {
		t.Errorf("XOR2 minterms = %d", xor2.Minterms())
	}
}

func TestTTIsConst(t *testing.T) {
	zero := NewTT(2, func(uint) uint8 { return 0 })
	one := NewTT(2, func(uint) uint8 { return 1 })
	if v, ok := zero.IsConst(); !ok || v != 0 {
		t.Errorf("const-0 detection: %d %v", v, ok)
	}
	if v, ok := one.IsConst(); !ok || v != 1 {
		t.Errorf("const-1 detection: %d %v", v, ok)
	}
	if _, ok := ttXOR(2).IsConst(); ok {
		t.Error("XOR2 reported constant")
	}
}

func TestTTDependsOn(t *testing.T) {
	// f(a,b,c) = a XOR b ignores c.
	f := NewTT(3, func(a uint) uint8 { return uint8((a ^ a>>1) & 1) })
	if !f.DependsOn(0) || !f.DependsOn(1) {
		t.Error("must depend on inputs 0 and 1")
	}
	if f.DependsOn(2) {
		t.Error("must not depend on input 2")
	}
}

// TestTTEvalWordMatchesScalar is a property test: parallel-pattern
// evaluation must agree with per-pattern scalar evaluation.
func TestTTEvalWordMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(bitsVal uint64, n8 uint8) bool {
		n := int(n8%6) + 1
		tt := TT{Inputs: n, Bits: bitsVal}
		in := make([]Word, n)
		for i := range in {
			in[i] = rng.Uint64()
		}
		out := tt.EvalWord(in)
		for p := uint(0); p < 64; p++ {
			var a uint
			for i := 0; i < n; i++ {
				a |= uint(in[i]>>p&1) << uint(i)
			}
			if uint8(out>>p&1) != tt.Eval(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTTEvalV5NoX(t *testing.T) {
	tt := ttXOR(2)
	cases := []struct {
		in   []V5
		want V5
	}{
		{[]V5{Zero, Zero}, Zero},
		{[]V5{One, Zero}, One},
		{[]V5{D, Zero}, D},
		{[]V5{D, One}, DBar},
		{[]V5{D, D}, Zero},   // error cancels on XOR
		{[]V5{D, DBar}, One}, // opposite errors
		{[]V5{X, Zero}, X},
		{[]V5{X, D}, X},
	}
	for _, c := range cases {
		if got := tt.EvalV5(c.in); got != c.want {
			t.Errorf("XOR2(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestTTEvalV5ControllingValue(t *testing.T) {
	and2 := ttAND(2)
	// A controlling 0 forces the output regardless of X on the other input.
	if got := and2.EvalV5([]V5{Zero, X}); got != Zero {
		t.Errorf("AND2(0,X) = %v, want 0", got)
	}
	if got := and2.EvalV5([]V5{One, X}); got != X {
		t.Errorf("AND2(1,X) = %v, want X", got)
	}
	// D AND 0 = 0 (controlling value masks the error).
	if got := and2.EvalV5([]V5{D, Zero}); got != Zero {
		t.Errorf("AND2(D,0) = %v, want 0", got)
	}
	if got := and2.EvalV5([]V5{D, One}); got != D {
		t.Errorf("AND2(D,1) = %v, want D", got)
	}
}

// TestTTEvalV5AgainstProjections is a property test: for random tables and
// random X-free five-valued inputs, EvalV5 must equal the value built from
// evaluating good and faulty projections separately.
func TestTTEvalV5AgainstProjections(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vals := []V5{Zero, One, D, DBar}
	f := func(bitsVal uint64, n8 uint8, pick uint64) bool {
		n := int(n8%4) + 1
		tt := TT{Inputs: n, Bits: bitsVal}
		in := make([]V5, n)
		var ga, fa uint
		for i := range in {
			in[i] = vals[pick>>(2*uint(i))&3]
			g, _ := in[i].Good()
			fv, _ := in[i].Faulty()
			ga |= uint(g) << uint(i)
			fa |= uint(fv) << uint(i)
		}
		want := FromBits(tt.Eval(ga), tt.Eval(fa))
		return tt.EvalV5(in) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestCubeParseAndString(t *testing.T) {
	c := NewCube("1x0")
	if c.String() != "1x0" {
		t.Errorf("round trip: %q", c.String())
	}
	if c.Specified() != 2 {
		t.Errorf("specified = %d", c.Specified())
	}
	if v, ok := c.Lit(0); !ok || v != 1 {
		t.Errorf("lit 0 = %d,%v", v, ok)
	}
	if _, ok := c.Lit(1); ok {
		t.Error("lit 1 should be unspecified")
	}
	if v, ok := c.Lit(2); !ok || v != 0 {
		t.Errorf("lit 2 = %d,%v", v, ok)
	}
}

func TestCubeMatches(t *testing.T) {
	c := NewCube("1x0") // input0=1, input2=0
	for a := uint(0); a < 8; a++ {
		want := a&1 == 1 && a>>2&1 == 0
		if got := c.Matches(a); got != want {
			t.Errorf("Matches(%03b) = %v, want %v", a, got, want)
		}
	}
}

func TestCubeExpand(t *testing.T) {
	c := NewCube("1x0")
	got := c.Expand()
	if len(got) != 2 {
		t.Fatalf("expand size = %d", len(got))
	}
	seen := map[uint]bool{}
	for _, a := range got {
		if !c.Matches(a) {
			t.Errorf("expanded assignment %03b does not match", a)
		}
		seen[a] = true
	}
	if len(seen) != 2 {
		t.Error("duplicate assignments in Expand")
	}
}

func TestCubeContains(t *testing.T) {
	broad := NewCube("1xx")
	narrow := NewCube("1x0")
	if !broad.Contains(narrow) {
		t.Error("1xx must contain 1x0")
	}
	if narrow.Contains(broad) {
		t.Error("1x0 must not contain 1xx")
	}
	if !broad.Contains(broad) {
		t.Error("cube must contain itself")
	}
	other := NewCube("0xx")
	if broad.Contains(other) || other.Contains(broad) {
		t.Error("conflicting cubes must not contain each other")
	}
}

// TestCubeMatchesWordAgainstScalar: MatchesWord agrees with Matches per slot.
func TestCubeMatchesWordAgainstScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(care, val uint16, n8 uint8) bool {
		n := int(n8%6) + 1
		mask := uint(1)<<uint(n) - 1
		c := Cube{Care: uint(care) & mask, Val: uint(val) & mask, N: n}
		in := make([]Word, n)
		for i := range in {
			in[i] = rng.Uint64()
		}
		m := c.MatchesWord(in)
		for p := uint(0); p < 64; p++ {
			var a uint
			for i := 0; i < n; i++ {
				a |= uint(in[i]>>p&1) << uint(i)
			}
			if (m>>p&1 == 1) != c.Matches(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFullCube(t *testing.T) {
	c := FullCube(3, 0b101)
	if c.String() != "101" {
		t.Errorf("FullCube string = %q", c.String())
	}
	if !c.Matches(0b101) || c.Matches(0b100) {
		t.Error("FullCube matching wrong")
	}
	if got := c.Expand(); len(got) != 1 || got[0] != 0b101 {
		t.Errorf("FullCube expand = %v", got)
	}
}
