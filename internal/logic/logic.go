// Package logic provides the value systems used throughout dfmresyn:
// two-valued 64-bit parallel-pattern words for simulation, the five-valued
// PODEM algebra (0, 1, X, D, DBar) for test generation, input cubes for
// cell-aware fault activation conditions, and small truth tables for
// library-cell functions.
package logic

import (
	"fmt"
	"math/bits"
	"strings"
)

// V5 is a five-valued logic value used by the PODEM test generator.
// D means 1 in the good circuit and 0 in the faulty circuit; DBar is the
// opposite. X is unassigned/unknown.
type V5 uint8

// The five PODEM logic values.
const (
	X V5 = iota
	Zero
	One
	D
	DBar
)

// String returns the conventional textual form of v.
func (v V5) String() string {
	switch v {
	case X:
		return "X"
	case Zero:
		return "0"
	case One:
		return "1"
	case D:
		return "D"
	case DBar:
		return "D'"
	}
	return fmt.Sprintf("V5(%d)", uint8(v))
}

// Good returns the good-circuit binary value of v, and false if v is X.
func (v V5) Good() (bit uint8, known bool) {
	switch v {
	case Zero, DBar:
		return 0, true
	case One, D:
		return 1, true
	}
	return 0, false
}

// Faulty returns the faulty-circuit binary value of v, and false if v is X.
func (v V5) Faulty() (bit uint8, known bool) {
	switch v {
	case Zero, D:
		return 0, true
	case One, DBar:
		return 1, true
	}
	return 0, false
}

// IsError reports whether v carries a fault effect (D or DBar).
func (v V5) IsError() bool { return v == D || v == DBar }

// Not returns the five-valued complement of v.
func (v V5) Not() V5 {
	switch v {
	case Zero:
		return One
	case One:
		return Zero
	case D:
		return DBar
	case DBar:
		return D
	}
	return X
}

// FromBits builds a V5 from separate good and faulty binary values.
func FromBits(good, faulty uint8) V5 {
	switch {
	case good == 0 && faulty == 0:
		return Zero
	case good == 1 && faulty == 1:
		return One
	case good == 1 && faulty == 0:
		return D
	default:
		return DBar
	}
}

// FromBit builds a fault-free V5 (Zero or One) from a binary value.
func FromBit(b uint8) V5 {
	if b == 0 {
		return Zero
	}
	return One
}

// Word is a 64-pattern parallel simulation word: bit i holds the value of
// the signal under pattern i.
type Word = uint64

// AllOnes is the Word with every pattern slot set to 1.
const AllOnes Word = ^Word(0)

// TT is a truth table over up to 6 inputs, stored with one bit per minterm:
// bit j of Bits holds the output for the input assignment whose binary
// encoding is j (input 0 is the least-significant position).
type TT struct {
	Inputs int
	Bits   uint64
}

// NewTT builds a truth table for n inputs from an evaluation function.
func NewTT(n int, eval func(assignment uint) uint8) TT {
	if n < 0 || n > 6 {
		panic(fmt.Sprintf("logic: truth table inputs out of range: %d", n))
	}
	var bits uint64
	for j := uint(0); j < 1<<uint(n); j++ {
		if eval(j)&1 == 1 {
			bits |= 1 << j
		}
	}
	return TT{Inputs: n, Bits: bits}
}

// Eval returns the table output for the given input assignment.
func (t TT) Eval(assignment uint) uint8 {
	return uint8(t.Bits >> (assignment & (1<<uint(t.Inputs) - 1)) & 1)
}

// Minterms returns the number of input assignments producing output 1.
func (t TT) Minterms() int {
	mask := uint64(1)<<(1<<uint(t.Inputs)) - 1
	if t.Inputs == 6 {
		mask = ^uint64(0)
	}
	return bits.OnesCount64(t.Bits & mask)
}

// IsConst reports whether the table is constant, and the constant value.
func (t TT) IsConst() (val uint8, ok bool) {
	m := t.Minterms()
	if m == 0 {
		return 0, true
	}
	if m == 1<<uint(t.Inputs) {
		return 1, true
	}
	return 0, false
}

// DependsOn reports whether the table output depends on input i.
func (t TT) DependsOn(i int) bool {
	n := uint(1) << uint(t.Inputs)
	for j := uint(0); j < n; j++ {
		if t.Eval(j) != t.Eval(j^(1<<uint(i))) {
			return true
		}
	}
	return false
}

// EvalWord evaluates the table on parallel-pattern input words.
func (t TT) EvalWord(in []Word) Word {
	if len(in) != t.Inputs {
		panic(fmt.Sprintf("logic: EvalWord got %d inputs, table has %d", len(in), t.Inputs))
	}
	var out Word
	// Shannon-style evaluation: for each minterm with output 1, AND the
	// matching input literals together and OR into the result. For <=6
	// inputs this is at most 64 minterms; fast enough and branch-free per
	// minterm.
	n := uint(1) << uint(t.Inputs)
	for j := uint(0); j < n; j++ {
		if t.Bits>>j&1 == 0 {
			continue
		}
		term := AllOnes
		for i := 0; i < t.Inputs; i++ {
			if j>>uint(i)&1 == 1 {
				term &= in[i]
			} else {
				term &= ^in[i]
			}
		}
		out |= term
	}
	return out
}

// EvalV5 evaluates the table over five-valued inputs by evaluating the good
// and faulty binary projections separately. If any input needed for the
// result is X in a projection, the corresponding projection is unknown and
// the result is X unless the table output is insensitive to the unknown
// inputs under the known assignment.
func (t TT) EvalV5(in []V5) V5 {
	gb, gok := t.evalProjection(in, true)
	fb, fok := t.evalProjection(in, false)
	if !gok || !fok {
		return X
	}
	return FromBits(gb, fb)
}

// evalProjection evaluates one binary projection (good or faulty) allowing
// unknowns: it enumerates all completions of the X inputs and returns ok
// only if every completion agrees.
func (t TT) evalProjection(in []V5, good bool) (uint8, bool) {
	var base uint
	var xmask uint
	for i, v := range in {
		var b uint8
		var known bool
		if good {
			b, known = v.Good()
		} else {
			b, known = v.Faulty()
		}
		if !known {
			xmask |= 1 << uint(i)
			continue
		}
		base |= uint(b) << uint(i)
	}
	if xmask == 0 {
		return t.Eval(base), true
	}
	// Enumerate completions of the X positions.
	first := t.Eval(base | xmask)
	sub := xmask
	for {
		if t.Eval(base|sub) != first {
			return 0, false
		}
		if sub == 0 {
			break
		}
		sub = (sub - 1) & xmask
	}
	return first, true
}

// V5Table caches EvalV5 over every combination of five-valued inputs for a
// fixed truth table, turning the per-gate implication step of the test
// generator into a single lookup. Inputs are encoded base-5 (input 0 is the
// least-significant digit).
type V5Table struct {
	Inputs int
	vals   []V5
}

// BuildV5Table precomputes the table (5^Inputs entries).
func (t TT) BuildV5Table() *V5Table {
	k := t.Inputs
	size := 1
	for i := 0; i < k; i++ {
		size *= 5
	}
	tab := &V5Table{Inputs: k, vals: make([]V5, size)}
	in := make([]V5, k)
	for code := 0; code < size; code++ {
		c := code
		for i := 0; i < k; i++ {
			in[i] = V5(c % 5)
			c /= 5
		}
		tab.vals[code] = t.EvalV5(in)
	}
	return tab
}

// Eval looks up the cached value for the given five-valued inputs.
func (tab *V5Table) Eval(in []V5) V5 {
	code := 0
	mul := 1
	for i := 0; i < tab.Inputs; i++ {
		code += int(in[i]) * mul
		mul *= 5
	}
	return tab.vals[code]
}

// Cube is a partial assignment over a cell's inputs: for each input, a
// required value or don't-care. It encodes the activation condition of a
// cell-aware fault.
type Cube struct {
	Care uint // bit i set: input i is specified
	Val  uint // bit i (only meaningful when Care bit set): required value
	N    int  // number of inputs
}

// NewCube builds a cube over n inputs from a string like "1x0" where
// position 0 of the string is input 0.
func NewCube(s string) Cube {
	c := Cube{N: len(s)}
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '0':
			c.Care |= 1 << uint(i)
		case '1':
			c.Care |= 1 << uint(i)
			c.Val |= 1 << uint(i)
		case 'x', 'X', '-':
		default:
			panic(fmt.Sprintf("logic: bad cube character %q in %q", s[i], s))
		}
	}
	return c
}

// FullCube builds a fully-specified cube over n inputs from assignment a.
func FullCube(n int, a uint) Cube {
	mask := uint(1)<<uint(n) - 1
	return Cube{Care: mask, Val: a & mask, N: n}
}

// Matches reports whether the fully-specified assignment a satisfies c.
func (c Cube) Matches(a uint) bool {
	return a&c.Care == c.Val&c.Care
}

// MatchesWord returns, for 64 parallel assignments given as per-input words,
// a word with bit p set when pattern p satisfies the cube.
func (c Cube) MatchesWord(in []Word) Word {
	m := AllOnes
	for i := 0; i < c.N; i++ {
		if c.Care>>uint(i)&1 == 0 {
			continue
		}
		if c.Val>>uint(i)&1 == 1 {
			m &= in[i]
		} else {
			m &= ^in[i]
		}
	}
	return m
}

// Specified returns the number of specified (care) inputs.
func (c Cube) Specified() int { return bits.OnesCount(c.Care) }

// Lit returns the required value of input i and whether it is specified.
func (c Cube) Lit(i int) (val uint8, specified bool) {
	if c.Care>>uint(i)&1 == 0 {
		return 0, false
	}
	return uint8(c.Val >> uint(i) & 1), true
}

// Contains reports whether c's care set is a subset of d's with matching
// values, i.e. every assignment matching d also matches c.
func (c Cube) Contains(d Cube) bool {
	if c.Care&^d.Care != 0 {
		return false
	}
	return (c.Val^d.Val)&c.Care == 0
}

// String renders the cube as a 0/1/x string with input 0 first.
func (c Cube) String() string {
	var b strings.Builder
	for i := 0; i < c.N; i++ {
		switch {
		case c.Care>>uint(i)&1 == 0:
			b.WriteByte('x')
		case c.Val>>uint(i)&1 == 1:
			b.WriteByte('1')
		default:
			b.WriteByte('0')
		}
	}
	return b.String()
}

// Expand enumerates all fully-specified assignments matching the cube.
func (c Cube) Expand() []uint {
	free := ^c.Care & (uint(1)<<uint(c.N) - 1)
	out := make([]uint, 0, 1<<uint(bits.OnesCount(free)))
	sub := free
	for {
		out = append(out, (c.Val&c.Care)|sub)
		if sub == 0 {
			break
		}
		sub = (sub - 1) & free
	}
	return out
}
