package flow

import (
	"testing"

	"dfmresyn/internal/bench"
	"dfmresyn/internal/fault"
	"dfmresyn/internal/faultsim"
	"dfmresyn/internal/geom"
	"dfmresyn/internal/library"
	"dfmresyn/internal/lint"
	"dfmresyn/internal/netlist"
	"dfmresyn/internal/route"
	"dfmresyn/internal/synth"
)

func testEnv() *Env {
	e := NewEnv()
	// Keep tests fast: fewer random blocks, smaller limit.
	e.ATPG.RandomBlocks = 4
	e.ATPG.BacktrackLimit = 2000
	return e
}

func TestAnalyzeEndToEnd(t *testing.T) {
	env := testEnv()
	c := bench.MustBuild("sparc_tlu", env.Lib)
	d, err := env.Analyze(c, geom.Rect{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Faults.Len() == 0 {
		t.Fatal("no faults")
	}
	counts := d.Faults.Count()
	if counts.Detected+counts.Undetectable+counts.Aborted != counts.Total {
		t.Error("fault status partition broken")
	}
	if counts.Undetectable == 0 {
		t.Error("expected undetectable faults in sparc_tlu")
	}
	if d.Timing.CriticalDelay <= 0 || d.Power.Total <= 0 {
		t.Error("degenerate timing/power")
	}
	if len(d.Clusters.Sets) == 0 {
		t.Error("no clusters over a non-empty U")
	}

	// The invariant that ties the whole pipeline together: the final
	// test set T detects every fault marked Detected and none marked
	// Undetectable.
	eng := faultsim.New(c)
	for _, f := range d.Faults.Faults {
		det := false
		for start := 0; start < len(d.Result.Tests) && !det; start += 64 {
			end := start + 64
			if end > len(d.Result.Tests) {
				end = len(d.Result.Tests)
			}
			if eng.Detects(f, eng.SimBlock(d.Result.Tests[start:end])) != 0 {
				det = true
			}
		}
		switch f.Status {
		case fault.Detected:
			if !det {
				t.Fatalf("fault %v marked detected, not covered by T", f)
			}
		case fault.Undetectable:
			if det {
				t.Fatalf("fault %v marked undetectable, detected by T", f)
			}
		}
	}
}

func TestMetricsConsistency(t *testing.T) {
	env := testEnv()
	c := bench.MustBuild("sparc_spu", env.Lib)
	d, err := env.Analyze(c, geom.Rect{})
	if err != nil {
		t.Fatal(err)
	}
	m := d.Metrics()
	if m.F != m.FIn+m.FEx {
		t.Errorf("F=%d != FIn+FEx=%d", m.F, m.FIn+m.FEx)
	}
	if m.U != m.UIn+m.UEx {
		t.Errorf("U=%d != UIn+UEx=%d", m.U, m.UIn+m.UEx)
	}
	if m.Smax > m.U {
		t.Errorf("Smax=%d exceeds U=%d", m.Smax, m.U)
	}
	if m.SmaxI > m.Smax {
		t.Errorf("SmaxI=%d exceeds Smax=%d", m.SmaxI, m.Smax)
	}
	wantCov := 1 - float64(m.U)/float64(m.F)
	if m.Cov != wantCov {
		t.Errorf("Cov=%v, want %v", m.Cov, wantCov)
	}
	if m.Gmax > m.GU {
		t.Errorf("Gmax=%d exceeds GU=%d", m.Gmax, m.GU)
	}
}

func TestUndetectableInternalMatchesFullFlow(t *testing.T) {
	// The pre-PD internal screen must agree with the internal share of
	// the full analysis (internal faults are layout-independent).
	env := testEnv()
	c := bench.MustBuild("sparc_ffu", env.Lib)
	d, err := env.Analyze(c, geom.Rect{})
	if err != nil {
		t.Fatal(err)
	}
	screen := env.UndetectableInternal(c)
	full := d.Faults.Count().UndetectableInt
	if screen != full {
		t.Errorf("internal screen %d != full-flow internal undetectable %d", screen, full)
	}
}

func TestAnalyzeIncrementalKeepsLocations(t *testing.T) {
	env := testEnv()
	c := bench.MustBuild("sparc_tlu", env.Lib)
	d, err := env.Analyze(c, geom.Rect{})
	if err != nil {
		t.Fatal(err)
	}
	// Re-analyze the identical netlist incrementally: all locations kept,
	// identical timing.
	d2, err := env.AnalyzeIncremental(c, d)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range c.Gates {
		if d.P.Loc[g.ID] != d2.P.Loc[g.ID] {
			t.Fatalf("gate %s moved in incremental placement of identical netlist", g.Name)
		}
	}
	if d.Timing.CriticalDelay != d2.Timing.CriticalDelay {
		t.Errorf("identical netlist, different delay: %v vs %v",
			d.Timing.CriticalDelay, d2.Timing.CriticalDelay)
	}
}

func TestAnalyzeFixedDieTooSmall(t *testing.T) {
	env := testEnv()
	c := bench.MustBuild("sparc_tlu", env.Lib)
	_, err := env.Analyze(c, geom.Rect{X0: 0, Y0: 0, X1: 6, Y1: 6})
	if err == nil {
		t.Fatal("analysis in a too-small die must fail (area constraint)")
	}
}

func TestInternalFaultListShape(t *testing.T) {
	env := testEnv()
	c := bench.MustBuild("sparc_spu", env.Lib)
	l := env.InternalFaultList(c)
	want := 0
	for _, g := range c.Gates {
		want += env.Prof.InternalFaultCount(g.Type)
	}
	if l.Len() != want {
		t.Errorf("internal list %d faults, want %d", l.Len(), want)
	}
	for _, f := range l.Faults {
		if !f.Internal || f.Model != fault.CellAware {
			t.Fatalf("non-internal fault in internal list: %v", f)
		}
	}
}

// TestMetricsPhysicalOnly: Metrics() on a design without fault analysis
// must not panic (regression: it dereferenced d.Faults unconditionally) and
// must report the physical numbers while the fault columns stay zero.
func TestMetricsPhysicalOnly(t *testing.T) {
	env := testEnv()
	c := bench.MustBuild("sparc_tlu", env.Lib)
	d, err := env.PhysicalOnly(c, geom.Rect{})
	if err != nil {
		t.Fatal(err)
	}
	m := d.Metrics()
	if m.F != 0 || m.U != 0 || m.T != 0 || m.Cov != 0 {
		t.Errorf("physical-only design reports fault metrics: %+v", m)
	}
	if m.Area <= 0 || m.Delay <= 0 || m.Power <= 0 {
		t.Errorf("physical-only design misses physical metrics: area=%v delay=%v power=%v",
			m.Area, m.Delay, m.Power)
	}
}

// TestLintIncrementalSpliceCorruption: the pipe/placement-bounds and
// pipe/route-layers rules must hold on an incrementally produced layout —
// and must catch a corrupted splice when we break one by hand.
func TestLintIncrementalSpliceCorruption(t *testing.T) {
	env := testEnv()
	c := bench.MustBuild("sparc_tlu", env.Lib)
	orig, err := env.Analyze(c, geom.Rect{})
	if err != nil {
		t.Fatal(err)
	}
	region := netlist.ExtractRegion(netlist.ConvexClosure(c, c.Gates[:4]))
	rs, err := synth.SynthesizeRegion(c, region, env.Mapper,
		func(*library.Cell) bool { return true }, synth.Delay, nil, "rb_")
	if err != nil {
		t.Fatal(err)
	}
	nc, err := rs.Rebuild(c)
	if err != nil {
		t.Fatal(err)
	}
	d, err := env.AnalyzeIncremental(nc, orig)
	if err != nil {
		t.Fatal(err)
	}
	if d.Incr == nil || d.Incr.RouteReused == 0 {
		t.Fatal("analysis was not incremental; the lint check would be vacuous")
	}
	ctx := &lint.Context{Circuit: d.C, Placement: d.P, Layout: d.Lay}
	if fs := lint.Run(ctx); lint.CountAtLeast(fs, lint.Error) > 0 {
		t.Fatalf("clean incremental layout has lint errors: %v", fs)
	}
	wantRule := func(fs []lint.Finding, rule string) {
		t.Helper()
		for _, f := range fs {
			if f.Rule == rule {
				return
			}
		}
		t.Errorf("expected a %s finding, got %v", rule, fs)
	}
	// Splice corruption 1: a replayed segment lands on an undeclared layer.
	for i := range d.Lay.Routes {
		if len(d.Lay.Routes[i].Segs) > 0 {
			d.Lay.Routes[i].Segs[0].Layer = route.M1
			break
		}
	}
	wantRule(lint.Run(ctx), "pipe/route-layers")
	// Splice corruption 2: a kept gate's location escapes the die.
	d.P.Loc[d.C.Gates[0].ID] = geom.Pt{X: d.P.Die.X1 + 3, Y: d.P.Die.Y0}
	wantRule(lint.Run(ctx), "pipe/placement-bounds")
}
