// Package flow wires the complete per-circuit pipeline of the paper: the
// netlist is placed and routed into a fixed floorplan, the DFM guideline
// checker translates violations into the fault universe F, ATPG generates
// the test set T and proves the set U undetectable, and the clustering
// analysis computes S_max / G_max. The resulting Design carries everything
// the resynthesis procedure and the table generators need.
package flow

import (
	"context"
	"fmt"
	"time"

	"dfmresyn/internal/atpg"
	"dfmresyn/internal/cluster"
	"dfmresyn/internal/dfm"
	"dfmresyn/internal/fault"
	"dfmresyn/internal/fcache"
	"dfmresyn/internal/geom"
	"dfmresyn/internal/implic"
	"dfmresyn/internal/library"
	"dfmresyn/internal/lint"
	"dfmresyn/internal/netlist"
	"dfmresyn/internal/obs"
	"dfmresyn/internal/place"
	"dfmresyn/internal/power"
	"dfmresyn/internal/resilience"
	"dfmresyn/internal/route"
	"dfmresyn/internal/sta"
	"dfmresyn/internal/synth"
)

// CoreUtilization is the floorplan utilization used for every original
// design, as in the paper's experimental setup.
const CoreUtilization = 0.70

// Env is the shared per-run context: library, its DFM profile, the
// technology mapper, and analysis configuration.
type Env struct {
	Lib    *library.Library
	Prof   *dfm.LibraryProfile
	Mapper *synth.Mapper
	ATPG   atpg.Config
	Seed   int64
	// Lint selects static-analysis enforcement on every design the
	// pipeline produces: off (default), warn (record findings on the
	// Design), or strict (Error findings abort the analysis).
	Lint lint.Mode
	// Workers bounds the fault-classification worker pool (0 = NumCPU).
	// Any value yields byte-identical analysis results.
	Workers int
	// FaultCache, when non-nil, carries fault verdicts across analyses:
	// faults whose support cone is untouched by a rebuild reuse their
	// verdict instead of re-entering PODEM. resyn installs one per run so
	// the whole q-sweep shares it.
	FaultCache *fcache.Cache
	// FullPhysical forces AnalyzeIncremental to re-route and re-check the
	// whole die from scratch instead of splicing the previous layout. It
	// exists as the baseline side of the differential harness: a
	// FullPhysical analysis and an incremental one must produce
	// byte-identical designs.
	FullPhysical bool
	// DiffCheck verifies every incremental route and DFM result against a
	// from-scratch recompute (route.DiffLayouts / dfm.DiffUniverse) and
	// fails the analysis on any divergence. Expensive — it negates the
	// incremental speedup — so it is a debugging/CI mode.
	DiffCheck bool
	// Obs, when non-nil, receives a span per pipeline stage (place, route,
	// dfm, atpg, cluster — and their incremental variants) plus stage
	// counters, giving every analysis per-phase wall-time and allocation
	// attribution. nil is a zero-overhead no-op; tracing never changes any
	// analysis result.
	Obs *obs.Tracer
	// Ctx, when non-nil, cancels every analysis this environment runs.
	// Cancellation is cooperative and only observed at deterministic
	// boundaries (between pipeline stages, between ATPG batches); a
	// cancelled analysis returns an error wrapping resilience.ErrInterrupted
	// and never a partially-classified Design. nil never cancels.
	Ctx context.Context
	// StageTimeout, when positive, bounds the wall time of each fault-
	// classification stage (the pipeline's only unbounded-search stage) by
	// deriving a per-stage deadline from Ctx. The deterministic per-fault
	// budget remains ATPG.BacktrackLimit; the deadline is the backstop for
	// a wedged stage, and expiry aborts the analysis like a cancellation.
	StageTimeout time.Duration
	// StaticProof selects the static implication screen applied before
	// every PODEM phase (implic.ModeOff, ModeScreen or ModeSeed; see
	// atpg.Config.Static). NewEnv defaults to ModeScreen: statically
	// proven undetectable faults skip their searches while all tables
	// stay byte-identical to an unscreened run. A zero-valued Env leaves
	// it off.
	StaticProof implic.Mode
	// SATEscalate enables the CDCL escalation tier behind PODEM (see
	// atpg.Config.SATEscalate): backtrack-limited searches that give up are
	// re-solved to completion, so analyses carry no Aborted faults and
	// every verdict matches an unlimited search. NewEnv defaults it on; a
	// zero-valued Env leaves it off.
	SATEscalate bool
	// Spatial selects the spatial-index backing of the physical hot paths
	// (DFM bridge/density scans, the incremental router's dirty-region
	// test). The zero value is geom.SpatialGrid — the production default;
	// geom.SpatialOff keeps the original full scans as the differential
	// harness's baseline. Every analysis result is byte-identical across
	// modes.
	Spatial geom.SpatialMode
	// Ledger, when non-nil, is the run flight recorder: every fault-
	// classification stage the environment runs appends one stage record
	// plus per-fault verdict provenance (see obs.Ledger and atpg.Config.
	// Ledger). The pre-physical internal screen (UndetectableInternal) does
	// not emit — its analyses are advisory, not verdict stages. nil is off
	// and free.
	Ledger *obs.Ledger
}

// IncrStats summarizes what an AnalyzeIncremental call reused from the
// previous design.
type IncrStats struct {
	// RouteReused / RouteRerouted count nets replayed verbatim from the
	// previous layout vs. routed fresh.
	RouteReused, RouteRerouted int
	// DFMIncremental is true when the fault universe was spliced from the
	// previous scan log rather than rebuilt by a full die scan.
	DFMIncremental bool
}

// atpgConfig resolves the effective test-generation configuration: the
// environment's ATPG settings plus the worker-pool, cache, cancellation and
// tracing plumbing.
func (e *Env) atpgConfig() atpg.Config {
	cfg := e.ATPG
	cfg.Workers = e.Workers
	cfg.Cache = e.FaultCache
	cfg.Obs = e.Obs
	cfg.Ctx = e.Ctx
	cfg.Static = e.StaticProof
	cfg.SATEscalate = e.SATEscalate
	if e.FaultCache != nil {
		e.FaultCache.Instrument(e.Obs)
	}
	return cfg
}

// NewEnv builds the default environment over the OSU-like library.
func NewEnv() *Env {
	lib := library.OSU018Like()
	return &Env{
		Lib:         lib,
		Prof:        dfm.ProfileLibrary(lib),
		Mapper:      synth.NewMapper(lib),
		ATPG:        atpg.DefaultConfig(),
		Seed:        1,
		StaticProof: implic.ModeScreen,
		SATEscalate: true,
	}
}

// Design is a fully analyzed placed-and-routed circuit.
type Design struct {
	Env      *Env
	C        *netlist.Circuit
	Die      geom.Rect
	P        *place.Placement
	Lay      *route.Layout
	Faults   *fault.List
	DFMRep   *dfm.Report
	Result   atpg.Result
	Clusters *cluster.Result
	Timing   sta.Report
	Power    power.Report
	// ATPGTime is the wall time of the test-generation stage (the Rtime
	// numerator the paper's Table II tracks is dominated by it).
	ATPGTime time.Duration
	// LintFindings holds the static-analysis findings recorded when the
	// environment's lint mode is warn or strict (nil when off).
	LintFindings []lint.Finding
	// DFMScan is the replayable geometry-scan log of the DFM check; the
	// next AnalyzeIncremental splices it instead of re-scanning the die.
	DFMScan *dfm.Scan
	// DFMStats reports how much geometry the DFM scan examined versus the
	// naive baselines (candidate-pair and cell reductions). Informational:
	// it varies with Env.Spatial while everything else stays identical.
	DFMStats dfm.ScanStats
	// Incr reports what AnalyzeIncremental reused (nil for full analyses).
	Incr *IncrStats
}

// lintDesign runs the static analyzer over whatever artifacts the design
// carries so far, per e.Lint. In strict mode Error findings become an
// error wrapping lint.ErrFindings.
func (e *Env) lintDesign(d *Design) error {
	if e.Lint == lint.ModeOff {
		return nil
	}
	d.LintFindings = lint.Run(&lint.Context{
		Circuit:   d.C,
		Placement: d.P,
		Layout:    d.Lay,
		Faults:    d.Faults,
		Clusters:  d.Clusters,
	})
	if e.Lint == lint.ModeStrict {
		return lint.Err(d.LintFindings, lint.Error)
	}
	return nil
}

// analyzeFaults is the analysis tail shared by Analyze and
// AnalyzeIncremental: build the DFM fault universe from the layout, then
// classify it.
func (e *Env) analyzeFaults(d *Design, stage string) error {
	sp := obs.Start(e.Obs, "flow/dfm")
	d.Faults, d.DFMRep, d.DFMScan, d.DFMStats = dfm.BuildFaultsScanStats(d.C, d.Lay, e.Prof, e.Spatial)
	sp.Annotate(obs.Int("faults", d.Faults.Len()))
	sp.End()
	e.Obs.Counter("dfm/full_builds").Inc()
	e.publishScanStats(d.DFMStats)
	return e.classifyFaults(d, stage)
}

// publishScanStats exports one DFM build's scan-cost accounting: what the
// spatial index examined versus the naive baselines it replaced.
func (e *Env) publishScanStats(s dfm.ScanStats) {
	if e.Obs == nil {
		return
	}
	e.Obs.Counter("dfm/scan_cells_visited").Add(s.CellsVisited)
	e.Obs.Counter("dfm/scan_cells_naive").Add(s.CellsNaive)
	e.Obs.Counter("dfm/bridge_pairs_examined").Add(s.BridgePairs)
	e.Obs.Counter("dfm/bridge_pairs_naive").Add(s.BridgePairsNaive)
	e.Obs.Counter("dfm/density_cell_reads").Add(s.DensityCellReads)
	e.Obs.Counter("dfm/density_cell_reads_naive").Add(s.DensityCellReadsNaive)
	if r := s.PairReduction(); r > 0 {
		e.Obs.Histogram("dfm/pair_reduction", 1, 3, 10, 30, 100, 300, 1000, 3000).Observe(r)
	}
}

// classifyFaults runs test generation over an already-built fault universe
// (through the worker pool and verdict cache, when configured), clusters
// the undetectable faults, and lints the result. With Env.StageTimeout set,
// the stage runs under its own deadline derived from Env.Ctx; expiry or
// cancellation aborts the analysis with resilience.ErrInterrupted and the
// partially-classified Design is never returned to the caller.
func (e *Env) classifyFaults(d *Design, stage string) error {
	sp := obs.Start(e.Obs, "flow/atpg", obs.Int("faults", d.Faults.Len()))
	cfg := e.atpgConfig()
	cfg.Ledger = e.Ledger
	cfg.Stage = stage
	if e.StageTimeout > 0 {
		base := e.Ctx
		if base == nil {
			base = context.Background()
		}
		ctx, cancel := context.WithTimeout(base, e.StageTimeout)
		defer cancel()
		cfg.Ctx = ctx
	}
	t0 := time.Now()
	d.Result = atpg.Run(d.C, d.Faults, cfg)
	d.ATPGTime = time.Since(t0)
	sp.Annotate(obs.Int("tests", len(d.Result.Tests)),
		obs.Int("undetectable", d.Result.Undetectable))
	sp.End()
	if d.Result.Cancelled {
		e.Obs.Counter("flow/cancelled_analyses").Inc()
		return fmt.Errorf("flow: atpg stage cancelled with %d/%d faults resolved: %w",
			len(d.Result.Resolved), d.Faults.Len(), resilience.ErrInterrupted)
	}
	spc := obs.Start(e.Obs, "flow/cluster")
	d.Clusters = cluster.Build(d.Faults.UndetectableFaults())
	spc.End()
	if err := e.lintDesign(d); err != nil {
		return fmt.Errorf("flow: %w", err)
	}
	return nil
}

// Analyze runs the full pipeline on a netlist. A zero die means "size a
// fresh floorplan at 70% utilization"; otherwise the circuit is placed into
// the given (original) die and an error reports an area violation.
func (e *Env) Analyze(c *netlist.Circuit, die geom.Rect) (*Design, error) {
	sp := obs.Start(e.Obs, "flow/analyze", obs.Int("gates", len(c.Gates)))
	defer sp.End()
	if err := resilience.Err(e.Ctx); err != nil {
		return nil, fmt.Errorf("flow: %w", err)
	}
	e.Obs.Counter("flow/analyses").Inc()
	d, err := e.PhysicalOnly(c, die)
	if err != nil {
		return nil, err
	}
	if err := e.analyzeFaults(d, "analyze"); err != nil {
		return nil, err
	}
	return d, nil
}

// VerifyFaults re-runs fault classification on an already-analyzed design
// with the verdict cache bypassed, sharing the physical results (placement,
// routing, timing, power) untouched. The returned design's test set and
// detected/aborted split are a pure function of the circuit and the ATPG
// seed — not of whatever cache history the caller's sweep accumulated —
// which is what makes a resumed run's signoff row byte-identical to the
// uninterrupted run's. The undetectable set (and hence the clusters) is
// cache-sound either way, so U and S_max cannot move.
func (e *Env) VerifyFaults(d *Design) (*Design, error) {
	sp := obs.Start(e.Obs, "flow/verify_faults", obs.Int("gates", len(d.C.Gates)))
	defer sp.End()
	if err := resilience.Err(e.Ctx); err != nil {
		return nil, fmt.Errorf("flow: %w", err)
	}
	e.Obs.Counter("flow/verify_faults").Inc()
	nd := *d
	cache := e.FaultCache
	e.FaultCache = nil
	err := e.analyzeFaults(&nd, "verify")
	e.FaultCache = cache
	if err != nil {
		return nil, err
	}
	return &nd, nil
}

// AnalyzeIncremental is Analyze with ECO-style physical re-analysis: gates
// shared with the previous design keep their locations and only new gates
// are placed, the router replays every net the placement diff provably did
// not disturb, and the DFM check replays its previous scan log outside the
// router's dirty region. This is how the resynthesis procedure re-runs
// PDesign() so that the unchanged portion of the layout — and its timing —
// stays put, at a cost proportional to the edit rather than the die.
//
// The incremental path is pinned to the full pipeline: with Env.DiffCheck
// it is verified byte-identical against a from-scratch recompute, and with
// Env.FullPhysical it *is* the from-scratch recompute (the differential
// harness runs both and compares).
func (e *Env) AnalyzeIncremental(c *netlist.Circuit, prev *Design) (*Design, error) {
	spAll := obs.Start(e.Obs, "flow/analyze_incr", obs.Int("gates", len(c.Gates)))
	defer spAll.End()
	if err := resilience.Err(e.Ctx); err != nil {
		return nil, fmt.Errorf("flow: %w", err)
	}
	e.Obs.Counter("flow/incremental_analyses").Inc()
	// Canonicalize the rebuilt circuit's net/gate order against the
	// previous one: kept nets keep their relative order, which is the
	// incremental router's reuse precondition. FullPhysical applies the
	// same reorder so both harness sides analyze the same circuit.
	c = netlist.ReorderLike(c, prev.C)
	spPlace := obs.Start(e.Obs, "flow/place_incr")
	p, diff, err := place.PlaceIncremental(c, prev.P, e.Seed)
	spPlace.End()
	if err != nil {
		return nil, fmt.Errorf("flow: %w", err)
	}
	if err := p.VerifyLegal(); err != nil {
		return nil, fmt.Errorf("flow: %w", err)
	}
	d := &Design{Env: e, C: c, Die: p.Die, P: p, Incr: &IncrStats{}}
	var rst *route.IncrStats
	spRoute := obs.Start(e.Obs, "flow/route_incr")
	if e.FullPhysical {
		d.Lay = route.Route(p)
		d.Incr.RouteRerouted = len(d.Lay.Routes)
	} else {
		d.Lay, rst = route.RouteIncrementalMode(p, prev.Lay, diff.Region, e.Spatial)
		d.Incr.RouteReused = rst.Reused
		d.Incr.RouteRerouted = rst.Rerouted
	}
	// The dirty-region net counts: how much of the die each re-analysis
	// actually touched.
	e.Obs.Counter("route/nets_reused").Add(int64(d.Incr.RouteReused))
	e.Obs.Counter("route/nets_rerouted").Add(int64(d.Incr.RouteRerouted))
	spRoute.Annotate(obs.Int("reused", d.Incr.RouteReused),
		obs.Int("rerouted", d.Incr.RouteRerouted))
	spRoute.End()
	if rst != nil && e.DiffCheck {
		if msg := route.DiffLayouts(route.Route(p), d.Lay); msg != "" {
			return nil, fmt.Errorf("flow: diffcheck: incremental route diverges from full route: %s", msg)
		}
	}
	spSTA := obs.Start(e.Obs, "flow/sta_power")
	loads := sta.LoadFromLayout(d.Lay)
	d.Timing = sta.Analyze(c, loads)
	d.Power = power.Estimate(c, loads, 4, e.Seed)
	spSTA.End()
	if rst != nil && rst.OrderStable && prev.DFMScan != nil {
		spDFM := obs.Start(e.Obs, "flow/dfm_incr")
		fl, rep, scan, stats, ok := dfm.BuildFaultsIncrementalStats(c, d.Lay, e.Prof, prev.DFMScan, rst.Remap, rst.Dirty, e.Spatial)
		spDFM.End()
		if ok {
			if e.DiffCheck {
				wl, wr, _ := dfm.BuildFaultsScan(c, d.Lay, e.Prof)
				if msg := dfm.DiffUniverse(wl, wr, fl, rep); msg != "" {
					return nil, fmt.Errorf("flow: diffcheck: incremental fault universe diverges from full build: %s", msg)
				}
			}
			d.Faults, d.DFMRep, d.DFMScan, d.DFMStats = fl, rep, scan, stats
			d.Incr.DFMIncremental = true
			e.Obs.Counter("dfm/incremental_builds").Inc()
			e.publishScanStats(stats)
		}
	}
	if d.Faults == nil {
		spDFM := obs.Start(e.Obs, "flow/dfm")
		d.Faults, d.DFMRep, d.DFMScan, d.DFMStats = dfm.BuildFaultsScanStats(c, d.Lay, e.Prof, e.Spatial)
		spDFM.End()
		e.Obs.Counter("dfm/full_builds").Inc()
		e.publishScanStats(d.DFMStats)
	}
	if err := e.classifyFaults(d, "analyze-incr"); err != nil {
		return nil, err
	}
	return d, nil
}

// PhysicalOnly performs placement, routing, timing and power analysis
// without fault analysis (used for constraint checks during backtracking).
func (e *Env) PhysicalOnly(c *netlist.Circuit, die geom.Rect) (*Design, error) {
	if err := resilience.Err(e.Ctx); err != nil {
		return nil, fmt.Errorf("flow: %w", err)
	}
	spPlace := obs.Start(e.Obs, "flow/place", obs.Int("gates", len(c.Gates)))
	var p *place.Placement
	var err error
	if die.Area() == 0 {
		p, err = place.Place(c, CoreUtilization, e.Seed)
	} else {
		p, err = place.PlaceInDie(c, die, e.Seed)
	}
	spPlace.End()
	if err != nil {
		return nil, fmt.Errorf("flow: %w", err)
	}
	if err := p.VerifyLegal(); err != nil {
		return nil, fmt.Errorf("flow: %w", err)
	}
	spRoute := obs.Start(e.Obs, "flow/route", obs.Int("nets", len(c.Nets)))
	lay := route.Route(p)
	spRoute.End()
	d := &Design{Env: e, C: c, Die: p.Die, P: p, Lay: lay}
	spSTA := obs.Start(e.Obs, "flow/sta_power")
	loads := sta.LoadFromLayout(lay)
	d.Timing = sta.Analyze(c, loads)
	d.Power = power.Estimate(c, loads, 4, e.Seed)
	spSTA.End()
	if err := e.lintDesign(d); err != nil {
		return nil, fmt.Errorf("flow: %w", err)
	}
	return d, nil
}

// InternalFaultList builds the internal-only fault list of a netlist (no
// layout needed: internal faults do not depend on placement and routing).
func (e *Env) InternalFaultList(c *netlist.Circuit) *fault.List {
	l := &fault.List{}
	for _, g := range c.Gates {
		for i := range e.Prof.PerCell[g.Type.Index] {
			cd := &e.Prof.PerCell[g.Type.Index][i]
			l.Add(&fault.Fault{
				Model:     fault.CellAware,
				Internal:  true,
				Gate:      g,
				Defect:    cd.Defect,
				Behavior:  cd.Behavior,
				Guideline: cd.Guideline,
			})
		}
	}
	return l
}

// UndetectableInternal counts the proven-undetectable internal faults of a
// netlist — the pre-physical-design screen the paper uses to decide whether
// PDesign() is worth calling. Under a cancelled Env.Ctx the count is a
// partial lower bound; callers that observe cancellation must discard it
// (resyn does: the screen's result only ever gates an analysis that would
// itself fail with ErrInterrupted).
func (e *Env) UndetectableInternal(c *netlist.Circuit) int {
	sp := obs.Start(e.Obs, "flow/uint_screen")
	defer sp.End()
	l := e.InternalFaultList(c)
	atpg.Run(c, l, e.atpgConfig())
	return l.Count().Undetectable
}

// Metrics are the per-design numbers reported in Tables I and II.
type Metrics struct {
	// Table I columns.
	FIn, FEx, UIn, UEx, GU, Gmax int
	// Shared / Table II columns.
	F, U, T      int
	Cov          float64
	Smax         int
	PctSmaxU     float64 // %Smax_U  (Table I: share of U inside S_max)
	PctSmaxAll   float64 // %Smax_all (Table II: share of F inside S_max)
	SmaxI        int
	PctSmaxI     float64
	Delay, Power float64
	Area         float64
	// Perf columns (the Rtime-style reporting of the parallel engine):
	// ATPG wall seconds and the verdict-cache hit rate of this analysis.
	ATPGSeconds  float64
	CacheHitRate float64
	// StaticProven is the number of faults the static implication screen
	// classified Undetectable without a PODEM search (subset of U).
	StaticProven int
	// Aborted is the number of faults left unproven (neither detected nor
	// undetectable) when the backtrack budget ran out. They count as
	// covered in Cov — the paper's convention — so this column keeps the
	// inflation honest. With Env.SATEscalate on it is always zero.
	Aborted int
	// SATEscalations / SATConflicts report the CDCL escalation tier's
	// work during this analysis (zero when the tier is off or never
	// triggered).
	SATEscalations int
	SATConflicts   int64
}

// Metrics extracts the table numbers from an analyzed design. It also
// works on a PhysicalOnly design (no fault analysis): the fault, coverage
// and cluster columns stay zero while area, delay and power are reported.
func (d *Design) Metrics() Metrics {
	m := Metrics{}
	if d.Faults != nil {
		counts := d.Faults.Count()
		m.F = counts.Total
		m.U = counts.Undetectable
		m.Aborted = counts.Aborted
		m.FIn = counts.Internal
		m.FEx = counts.External
		m.UIn = counts.UndetectableInt
		m.UEx = counts.UndetectableExt
		m.Cov = d.Faults.Coverage()
	}
	m.T = len(d.Result.Tests)
	if d.Clusters != nil {
		smax := d.Clusters.Smax()
		m.Smax = len(smax)
		m.SmaxI = cluster.InternalCount(smax)
		m.GU = len(d.Clusters.GU)
		m.Gmax = len(d.Clusters.Gmax())
		if m.U > 0 {
			m.PctSmaxU = 100 * float64(m.Smax) / float64(m.U)
		}
		if m.F > 0 {
			m.PctSmaxAll = 100 * float64(m.Smax) / float64(m.F)
		}
		if m.Smax > 0 {
			m.PctSmaxI = 100 * float64(m.SmaxI) / float64(m.Smax)
		}
	}
	m.Delay = d.Timing.CriticalDelay
	m.Power = d.Power.Total
	m.Area = d.C.Stats().Area
	m.ATPGSeconds = d.ATPGTime.Seconds()
	m.StaticProven = d.Result.StaticProven
	m.SATEscalations = d.Result.SATEscalations
	m.SATConflicts = d.Result.SATConflicts
	if d.Result.CacheLookups > 0 {
		m.CacheHitRate = float64(d.Result.CacheHits) / float64(d.Result.CacheLookups)
	}
	return m
}
