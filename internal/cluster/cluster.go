// Package cluster partitions undetectable faults into subsets of
// structurally adjacent faults, exactly as in Section II of the paper: two
// gates are adjacent when one directly drives the other; two faults are
// adjacent when they are located on the same gate or on two adjacent gates;
// the subsets S_0, S_1, ... are the transitive closure of fault adjacency.
package cluster

import (
	"sort"

	"dfmresyn/internal/fault"
	"dfmresyn/internal/netlist"
)

// Result holds the clustering of a set of (undetectable) faults.
type Result struct {
	// Sets are the adjacency-closed fault subsets, largest first (ties
	// broken by smallest member fault ID for determinism).
	Sets [][]*fault.Fault
	// GU is the set of gates corresponding to all clustered faults
	// (column G_U of Table I), ordered by gate ID.
	GU []*netlist.Gate
}

// Build clusters the given faults.
func Build(faults []*fault.Fault) *Result {
	n := len(faults)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}

	// Gate -> fault indices corresponding to it.
	gateFaults := map[*netlist.Gate][]int{}
	corresponding := make([][]*netlist.Gate, n)
	for i, f := range faults {
		gs := f.CorrespondingGates()
		corresponding[i] = gs
		for _, g := range gs {
			gateFaults[g] = append(gateFaults[g], i)
		}
	}

	// Faults sharing a gate are adjacent.
	for _, idxs := range gateFaults {
		for k := 1; k < len(idxs); k++ {
			union(idxs[0], idxs[k])
		}
	}
	// Faults on adjacent gates are adjacent: walk each gate's fanout.
	for g, idxs := range gateFaults {
		for _, p := range g.Out.Fanout {
			if other, ok := gateFaults[p.Gate]; ok && len(other) > 0 && len(idxs) > 0 {
				union(idxs[0], other[0])
			}
		}
	}

	// Collect sets.
	groups := map[int][]*fault.Fault{}
	for i, f := range faults {
		r := find(i)
		groups[r] = append(groups[r], f)
	}
	res := &Result{}
	for _, set := range groups {
		sort.Slice(set, func(i, j int) bool { return set[i].ID < set[j].ID })
		res.Sets = append(res.Sets, set)
	}
	sort.Slice(res.Sets, func(i, j int) bool {
		if len(res.Sets[i]) != len(res.Sets[j]) {
			return len(res.Sets[i]) > len(res.Sets[j])
		}
		return res.Sets[i][0].ID < res.Sets[j][0].ID
	})

	// G_U: all gates corresponding to clustered faults.
	seen := map[*netlist.Gate]bool{}
	for i := range faults {
		for _, g := range corresponding[i] {
			if !seen[g] {
				seen[g] = true
				res.GU = append(res.GU, g)
			}
		}
	}
	sort.Slice(res.GU, func(i, j int) bool { return res.GU[i].ID < res.GU[j].ID })
	return res
}

// Smax returns the largest cluster (nil when empty).
func (r *Result) Smax() []*fault.Fault {
	if len(r.Sets) == 0 {
		return nil
	}
	return r.Sets[0]
}

// Gmax returns the gates corresponding to the faults of S_max, ordered by
// gate ID.
func (r *Result) Gmax() []*netlist.Gate {
	return GatesOf(r.Smax())
}

// GatesOf returns the union of gates corresponding to the given faults,
// ordered by gate ID.
func GatesOf(faults []*fault.Fault) []*netlist.Gate {
	seen := map[*netlist.Gate]bool{}
	var out []*netlist.Gate
	for _, f := range faults {
		for _, g := range f.CorrespondingGates() {
			if !seen[g] {
				seen[g] = true
				out = append(out, g)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// InternalCount returns the number of internal faults in the set (column
// Smax_I of Table II).
func InternalCount(faults []*fault.Fault) int {
	n := 0
	for _, f := range faults {
		if f.Internal {
			n++
		}
	}
	return n
}
