package cluster

import (
	"testing"

	"dfmresyn/internal/fault"
	"dfmresyn/internal/library"
	"dfmresyn/internal/netlist"
)

var lib = library.OSU018Like()

// buildLine builds a chain g0 -> g1 -> g2 -> g3 (INVs) plus a detached pair
// g4 -> g5 fed from a separate PI.
func buildLine(t *testing.T) (*netlist.Circuit, []*netlist.Gate) {
	t.Helper()
	c := netlist.New("line", lib)
	a := c.AddPI("a")
	b := c.AddPI("b")
	n := a
	for i := 0; i < 4; i++ {
		n = c.AddGate("", lib.ByName("INVX1"), n)
	}
	c.MarkPO(n)
	m := b
	for i := 0; i < 2; i++ {
		m = c.AddGate("", lib.ByName("INVX1"), m)
	}
	c.MarkPO(m)
	return c, c.Gates
}

func saFault(id int, n *netlist.Net, v uint8) *fault.Fault {
	return &fault.Fault{ID: id, Model: fault.StuckAt, Net: n, Value: v}
}

func caFault(id int, g *netlist.Gate) *fault.Fault {
	return &fault.Fault{ID: id, Model: fault.CellAware, Internal: true, Gate: g}
}

func TestFig1Adjacency(t *testing.T) {
	// Reproduce Fig. 1: gates sharing only a fanin are NOT adjacent (a);
	// gates in a driver-load relation ARE adjacent (c).
	c := netlist.New("fig1", lib)
	x := c.AddPI("x")
	g1 := c.AddGate("g1", lib.ByName("INVX1"), x)
	g2 := c.AddGate("g2", lib.ByName("INVX1"), x)  // shares fanin with g1
	g3 := c.AddGate("g3", lib.ByName("INVX1"), g1) // driven by g1
	c.MarkPO(g2)
	c.MarkPO(g3)
	if netlist.Adjacent(g1.Driver, g2.Driver) {
		t.Error("gates sharing only a fanin must not be adjacent (Fig. 1a)")
	}
	if !netlist.Adjacent(g1.Driver, g3.Driver) {
		t.Error("driver and load must be adjacent (Fig. 1c)")
	}
}

func TestChainFormsSingleCluster(t *testing.T) {
	_, gates := buildLine(t)
	// Internal faults on the four chain gates: all pairwise chained by
	// adjacency -> one cluster. Plus one fault on the detached pair.
	var fs []*fault.Fault
	for i := 0; i < 4; i++ {
		fs = append(fs, caFault(i, gates[i]))
	}
	fs = append(fs, caFault(4, gates[4]))
	r := Build(fs)
	if len(r.Sets) != 2 {
		t.Fatalf("clusters = %d, want 2", len(r.Sets))
	}
	if len(r.Smax()) != 4 {
		t.Errorf("Smax = %d, want 4", len(r.Smax()))
	}
	if len(r.Sets[1]) != 1 {
		t.Errorf("second cluster = %d, want 1", len(r.Sets[1]))
	}
}

func TestExternalFaultBridgesGates(t *testing.T) {
	_, gates := buildLine(t)
	// Fault on the net between g1 and g2 corresponds to both gates; an
	// internal fault on g0 and one on g3 are pulled into one cluster
	// through the chain of adjacencies.
	f0 := caFault(0, gates[0])
	f1 := saFault(1, gates[1].Out, 0) // corresponds to g1 (driver) and g2 (sink)
	f2 := caFault(2, gates[3])
	r := Build([]*fault.Fault{f0, f1, f2})
	// g0 adj g1 (drive), f1 on g1&g2, g2 adj g3 -> all one cluster.
	if len(r.Sets) != 1 {
		t.Fatalf("clusters = %d, want 1 (external fault bridges the chain)", len(r.Sets))
	}
}

func TestGUAndGmax(t *testing.T) {
	_, gates := buildLine(t)
	fs := []*fault.Fault{
		caFault(0, gates[0]),
		caFault(1, gates[1]),
		caFault(2, gates[4]), // detached pair
	}
	r := Build(fs)
	if len(r.GU) != 3 {
		t.Errorf("G_U = %d gates, want 3", len(r.GU))
	}
	gm := r.Gmax()
	if len(gm) != 2 {
		t.Errorf("Gmax = %d gates, want 2", len(gm))
	}
	// Gmax must be the chain gates, not the detached one.
	for _, g := range gm {
		if g == gates[4] {
			t.Error("Gmax contains a gate from the smaller cluster")
		}
	}
}

func TestSameGateFaultsCluster(t *testing.T) {
	_, gates := buildLine(t)
	// Two internal faults on the same gate must share a cluster even
	// with no other faults around.
	fs := []*fault.Fault{caFault(0, gates[2]), caFault(1, gates[2])}
	r := Build(fs)
	if len(r.Sets) != 1 || len(r.Sets[0]) != 2 {
		t.Errorf("same-gate faults must form one cluster: %d sets", len(r.Sets))
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	r := Build(nil)
	if len(r.Sets) != 0 || r.Smax() != nil || len(r.GU) != 0 {
		t.Error("empty input must produce empty result")
	}
	_, gates := buildLine(t)
	r = Build([]*fault.Fault{caFault(0, gates[0])})
	if len(r.Sets) != 1 || len(r.Smax()) != 1 {
		t.Error("singleton clustering wrong")
	}
}

func TestInternalCount(t *testing.T) {
	_, gates := buildLine(t)
	fs := []*fault.Fault{
		caFault(0, gates[0]),
		saFault(1, gates[0].Out, 1),
		caFault(2, gates[1]),
	}
	if got := InternalCount(fs); got != 2 {
		t.Errorf("InternalCount = %d, want 2", got)
	}
}

func TestDeterministicOrdering(t *testing.T) {
	_, gates := buildLine(t)
	fs := []*fault.Fault{
		caFault(0, gates[4]),
		caFault(1, gates[5]),
		caFault(2, gates[0]),
		caFault(3, gates[1]),
	}
	// Two clusters of equal size 2: order must tie-break by smallest ID.
	r1 := Build(fs)
	r2 := Build(fs)
	for i := range r1.Sets {
		if len(r1.Sets[i]) != len(r2.Sets[i]) || r1.Sets[i][0].ID != r2.Sets[i][0].ID {
			t.Fatal("cluster ordering not deterministic")
		}
	}
	if r1.Sets[0][0].ID != 0 {
		t.Errorf("equal-size tie must break by smallest fault ID, got %d", r1.Sets[0][0].ID)
	}
}
