package geom

import (
	"fmt"
	"sort"
)

// SpatialMode selects the geometry engine behind the physical hot paths:
// the uniform grid-bucket index (the default) or the naive linear and
// pairwise scans it replaced, kept as a differential baseline and escape
// hatch (`-spatial=off`). Both modes are exact — they must produce
// byte-identical layouts, fault universes and tables; the root
// spatial_test.go harness enforces that contract.
type SpatialMode int

const (
	// SpatialGrid indexes segments/rects in uniform grid buckets with
	// deterministic, ID-ordered iteration. The zero value, so a
	// zero-valued flow.Env gets the production engine.
	SpatialGrid SpatialMode = iota
	// SpatialOff uses the original linear scans everywhere.
	SpatialOff
)

// String names the mode the way the -spatial flag spells it.
func (m SpatialMode) String() string {
	if m == SpatialOff {
		return "off"
	}
	return "grid"
}

// ParseSpatialMode parses a -spatial flag value.
func ParseSpatialMode(s string) (SpatialMode, error) {
	switch s {
	case "grid":
		return SpatialGrid, nil
	case "off":
		return SpatialOff, nil
	}
	return SpatialGrid, fmt.Errorf("geom: unknown spatial mode %q (want grid or off)", s)
}

// GridItem is one indexed rectangle.
type GridItem struct {
	ID int32
	R  Rect
}

// Grid is a uniform bucket index over axis-aligned rectangles. Each item
// lands in every bucket its rectangle touches; queries gather bucket
// candidates and filter with the exact Rect.Intersects test, so a grid
// query returns exactly the brute-force answer.
//
// Determinism contract: Query results are ascending by ID (duplicates from
// multi-bucket items removed), and Pairs visits pairs in a fixed order
// derived from bucket scan order and per-bucket insertion order — the same
// insert sequence always yields the same visit sequence. No map state is
// involved anywhere.
type Grid struct {
	bounds Rect
	cell   int
	nx, ny int
	bkts   [][]GridItem
	n      int
}

// DefaultGridCell is the bucket edge length used by the physical pipeline:
// large enough that small dies stay in a handful of buckets (near-zero
// overhead), small enough that 10k-gate dies cut candidate sets by orders
// of magnitude. It matches the smaller DFM density window.
const DefaultGridCell = 8

// NewGrid builds an empty index over bounds with the given bucket edge
// length (clamped to >= 1). Items outside bounds are clamped into the edge
// buckets, so nothing is ever lost.
func NewGrid(bounds Rect, cell int) *Grid {
	if cell < 1 {
		cell = 1
	}
	nx := (bounds.W() + cell - 1) / cell
	ny := (bounds.H() + cell - 1) / cell
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}
	return &Grid{bounds: bounds, cell: cell, nx: nx, ny: ny, bkts: make([][]GridItem, nx*ny)}
}

// Len returns the number of inserted items.
func (g *Grid) Len() int { return g.n }

// bucketSpan returns the clamped bucket coordinate range covering r.
func (g *Grid) bucketSpan(r Rect) (bx0, by0, bx1, by1 int) {
	clampDiv := func(v, n int) int {
		b := v / g.cell
		if v < 0 {
			b = 0
		}
		if b < 0 {
			b = 0
		}
		if b >= n {
			b = n - 1
		}
		return b
	}
	bx0 = clampDiv(r.X0-g.bounds.X0, g.nx)
	by0 = clampDiv(r.Y0-g.bounds.Y0, g.ny)
	bx1 = clampDiv(r.X1-1-g.bounds.X0, g.nx)
	by1 = clampDiv(r.Y1-1-g.bounds.Y0, g.ny)
	return
}

// Insert adds the rectangle under the given ID; empty rectangles are
// dropped (matching Region.Add). IDs need not be unique.
func (g *Grid) Insert(id int32, r Rect) {
	if r.Area() <= 0 {
		return
	}
	bx0, by0, bx1, by1 := g.bucketSpan(r)
	it := GridItem{ID: id, R: r}
	for by := by0; by <= by1; by++ {
		for bx := bx0; bx <= bx1; bx++ {
			i := by*g.nx + bx
			g.bkts[i] = append(g.bkts[i], it)
		}
	}
	g.n++
}

// Intersects reports whether any inserted rectangle overlaps r — the
// existence query behind the incremental router's dirty test. Exact: the
// answer equals a brute-force scan over every inserted rectangle.
func (g *Grid) Intersects(r Rect) bool {
	if r.Area() <= 0 || g.n == 0 {
		return false
	}
	bx0, by0, bx1, by1 := g.bucketSpan(r)
	for by := by0; by <= by1; by++ {
		for bx := bx0; bx <= bx1; bx++ {
			for _, it := range g.bkts[by*g.nx+bx] {
				if it.R.Intersects(r) {
					return true
				}
			}
		}
	}
	return false
}

// Query appends the IDs of all rectangles overlapping r to dst and returns
// it, ascending and deduplicated — the ID-ordered iteration the
// determinism contract promises.
func (g *Grid) Query(dst []int32, r Rect) []int32 {
	if r.Area() <= 0 || g.n == 0 {
		return dst
	}
	start := len(dst)
	bx0, by0, bx1, by1 := g.bucketSpan(r)
	for by := by0; by <= by1; by++ {
		for bx := bx0; bx <= bx1; bx++ {
			for _, it := range g.bkts[by*g.nx+bx] {
				if it.R.Intersects(r) {
					dst = append(dst, it.ID)
				}
			}
		}
	}
	tail := dst[start:]
	sort.Slice(tail, func(i, j int) bool { return tail[i] < tail[j] })
	out := dst[:start]
	for i, id := range tail {
		if i == 0 || id != tail[i-1] {
			out = append(out, id)
		}
	}
	return out
}

// Pairs enumerates every overlapping pair of inserted rectangles exactly
// once, in deterministic order, and returns how many candidate pairs it
// examined (the windowed-pair cost an all-pairs scan would inflate to
// n*(n-1)/2). Each intersecting pair is reported from the single bucket
// containing the top-left corner of the pair's intersection, which makes
// the exactly-once guarantee purely arithmetic — no visited-set, no map.
func (g *Grid) Pairs(visit func(a, b GridItem)) int64 {
	var examined int64
	for by := 0; by < g.ny; by++ {
		for bx := 0; bx < g.nx; bx++ {
			bkt := g.bkts[by*g.nx+bx]
			for i := 0; i < len(bkt); i++ {
				for j := i + 1; j < len(bkt); j++ {
					examined++
					a, b := bkt[i], bkt[j]
					if !a.R.Intersects(b.R) {
						continue
					}
					// Canonical bucket of the pair: where the intersection's
					// top-left corner lives.
					cx := max(a.R.X0, b.R.X0)
					cy := max(a.R.Y0, b.R.Y0)
					hx, hy, _, _ := g.bucketSpan(Rect{cx, cy, cx + 1, cy + 1})
					if hx != bx || hy != by {
						continue
					}
					if a.ID > b.ID || (a.ID == b.ID && (b.R.Y0 < a.R.Y0 || (b.R.Y0 == a.R.Y0 && b.R.X0 < a.R.X0))) {
						a, b = b, a
					}
					visit(a, b)
				}
			}
		}
	}
	return examined
}

// CellSet accumulates grid cells and serves them as a sorted, deduplicated
// slice in scan order (row-major: Y, then X) — the occupied-cell set the
// indexed DFM bridge scan iterates instead of the whole die. Adds are O(1)
// appends; normalization is deferred to the first Cells call after a
// mutation. The zero value is an empty set.
type CellSet struct {
	pts    []Pt
	sorted bool
}

// Add records a cell. Duplicates are allowed and removed on read.
func (s *CellSet) Add(p Pt) {
	s.pts = append(s.pts, p)
	s.sorted = false
}

// Len returns the number of distinct cells.
func (s *CellSet) Len() int { return len(s.Cells()) }

// Cells returns the distinct cells sorted by (Y, X). The returned slice is
// owned by the set; callers must not modify it.
func (s *CellSet) Cells() []Pt {
	if !s.sorted {
		sort.Slice(s.pts, func(i, j int) bool {
			if s.pts[i].Y != s.pts[j].Y {
				return s.pts[i].Y < s.pts[j].Y
			}
			return s.pts[i].X < s.pts[j].X
		})
		out := s.pts[:0]
		for i, p := range s.pts {
			if i == 0 || p != s.pts[i-1] {
				out = append(out, p)
			}
		}
		s.pts = out
		s.sorted = true
	}
	return s.pts
}
