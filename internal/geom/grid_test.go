package geom

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// Edge cases the grid and region must agree on: zero-area rects never
// intersect anything, touching edges (half-open) do not overlap, and
// negative coordinates behave like positive ones.
func TestRectEdgeCases(t *testing.T) {
	zero := Rect{3, 3, 3, 3}
	if zero.Area() != 0 {
		t.Fatalf("zero rect area = %d", zero.Area())
	}
	big := Rect{0, 0, 10, 10}
	if zero.Intersects(big) || big.Intersects(zero) {
		t.Error("zero-area rect must not intersect anything")
	}
	inverted := Rect{5, 5, 2, 2}
	if inverted.Intersects(big) || big.Intersects(inverted) {
		t.Error("inverted rect must not intersect anything")
	}
	// Touching edges: [0,4) and [4,8) share only the boundary line.
	a, b := Rect{0, 0, 4, 4}, Rect{4, 0, 8, 4}
	if a.Intersects(b) || b.Intersects(a) {
		t.Error("edge-touching rects must not intersect (half-open)")
	}
	if c := a.Clip(b); c.Area() != 0 {
		t.Errorf("clip of edge-touching rects = %+v", c)
	}
	// Corner-touching.
	c := Rect{4, 4, 8, 8}
	if a.Intersects(c) {
		t.Error("corner-touching rects must not intersect")
	}
	// Negative coordinates.
	n1, n2 := Rect{-6, -6, -2, -2}, Rect{-4, -4, 0, 0}
	if !n1.Intersects(n2) {
		t.Error("negative-coord rects must intersect")
	}
	if got := n1.Clip(n2); got != (Rect{-4, -4, -2, -2}) {
		t.Errorf("negative clip = %+v", got)
	}
	if n1.Intersects(Rect{-2, -6, 2, -2}) {
		t.Error("negative edge-touching rects must not intersect")
	}
	if !n1.Contains(Pt{-6, -6}) || n1.Contains(Pt{-2, -2}) {
		t.Error("negative-coord Contains must stay half-open")
	}
}

func TestRegionEdgeCases(t *testing.T) {
	var r Region
	r.Add(Rect{-5, -5, -1, -1})
	r.Add(Rect{2, 2, 2, 9}) // zero-area: dropped
	if len(r.Rects) != 1 {
		t.Fatalf("zero-area rect not dropped: %+v", r.Rects)
	}
	if !r.Intersects(Rect{-2, -2, 3, 3}) {
		t.Error("negative-coord region intersection missed")
	}
	if r.Intersects(Rect{-1, -5, 4, -1}) {
		t.Error("edge-touching query must not intersect region")
	}
	if r.Intersects(Rect{0, 0, 0, 10}) {
		t.Error("zero-area query must not intersect region")
	}
	if !r.Contains(Pt{-5, -5}) || r.Contains(Pt{-1, -1}) {
		t.Error("region Contains must stay half-open at negative coords")
	}
}

// bruteQuery is the reference the grid must match: scan every item.
func bruteQuery(items []GridItem, r Rect) []int32 {
	var ids []int32
	for _, it := range items {
		if it.R.Intersects(r) {
			ids = append(ids, it.ID)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := ids[:0]
	for i, id := range ids {
		if i == 0 || id != ids[i-1] {
			out = append(out, id)
		}
	}
	return out
}

// randomRect draws a small rect inside (or slightly outside) bounds,
// including degenerate zero-area rects.
func randomRect(rng *rand.Rand, span int) Rect {
	x := rng.Intn(2*span) - span/2
	y := rng.Intn(2*span) - span/2
	w := rng.Intn(span / 4)
	h := rng.Intn(span / 4)
	return Rect{x, y, x + w, y + h}
}

// TestGridQueryMatchesBruteForce: on random geometry (random bucket sizes,
// rects crossing bucket boundaries, negative coordinates, zero-area rects)
// the indexed query set must equal the brute-force scan set exactly.
func TestGridQueryMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		span := 16 + rng.Intn(100)
		bounds := Rect{0, 0, span, span}
		cell := 1 + rng.Intn(13)
		g := NewGrid(bounds, cell)
		var items []GridItem
		for i := 0; i < 5+rng.Intn(120); i++ {
			r := randomRect(rng, span)
			g.Insert(int32(i), r)
			if r.Area() > 0 {
				items = append(items, GridItem{ID: int32(i), R: r})
			}
		}
		if g.Len() != len(items) {
			t.Fatalf("trial %d: Len = %d, want %d (empty rects must be dropped)", trial, g.Len(), len(items))
		}
		for q := 0; q < 40; q++ {
			probe := randomRect(rng, span)
			want := bruteQuery(items, probe)
			got := g.Query(nil, probe)
			if len(want) == 0 && len(got) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d probe %+v (cell %d): grid %v != brute %v", trial, probe, cell, got, want)
			}
			if g.Intersects(probe) != (len(want) > 0) {
				t.Fatalf("trial %d probe %+v: Intersects disagrees with Query", trial, probe)
			}
		}
	}
}

// TestGridQueryAppend: Query must append after existing dst content.
func TestGridQueryAppend(t *testing.T) {
	g := NewGrid(Rect{0, 0, 16, 16}, 4)
	g.Insert(7, Rect{1, 1, 3, 3})
	got := g.Query([]int32{99}, Rect{0, 0, 16, 16})
	if !reflect.DeepEqual(got, []int32{99, 7}) {
		t.Fatalf("Query append = %v", got)
	}
}

// TestGridPairsMatchesBruteForce: Pairs must visit each intersecting pair
// exactly once (regardless of how many buckets the pair shares), and the
// candidate count must not exceed the all-pairs bound.
func TestGridPairsMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		span := 20 + rng.Intn(80)
		cell := 1 + rng.Intn(11)
		g := NewGrid(Rect{0, 0, span, span}, cell)
		var items []GridItem
		for i := 0; i < 4+rng.Intn(60); i++ {
			r := randomRect(rng, span)
			g.Insert(int32(i), r)
			if r.Area() > 0 {
				items = append(items, GridItem{ID: int32(i), R: r})
			}
		}
		want := map[[2]int32]int{}
		for i := 0; i < len(items); i++ {
			for j := i + 1; j < len(items); j++ {
				if items[i].R.Intersects(items[j].R) {
					want[[2]int32{items[i].ID, items[j].ID}]++
				}
			}
		}
		got := map[[2]int32]int{}
		examined := g.Pairs(func(a, b GridItem) {
			if a.ID > b.ID {
				t.Fatalf("trial %d: pair (%d,%d) not ID-ordered", trial, a.ID, b.ID)
			}
			got[[2]int32{a.ID, b.ID}]++
		})
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d pairs != brute %d", trial, len(got), len(want))
		}
		for k, n := range got {
			if n != 1 {
				t.Fatalf("trial %d: pair %v visited %d times", trial, k, n)
			}
			if want[k] == 0 {
				t.Fatalf("trial %d: spurious pair %v", trial, k)
			}
		}
		n := int64(len(items))
		if examined < 0 || (n > 1 && examined > 10*n*(n-1)/2+int64(len(items))) {
			// Multi-bucket items inflate candidates; just sanity-bound it.
			t.Fatalf("trial %d: examined %d candidates for %d items", trial, examined, n)
		}
	}
}

// TestGridDeterministicOrder: two grids built with the same insert
// sequence visit identical pair sequences and query results.
func TestGridDeterministicOrder(t *testing.T) {
	build := func() *Grid {
		g := NewGrid(Rect{0, 0, 40, 40}, 6)
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 50; i++ {
			g.Insert(int32(i), randomRect(rng, 40))
		}
		return g
	}
	g1, g2 := build(), build()
	var s1, s2 [][2]int32
	g1.Pairs(func(a, b GridItem) { s1 = append(s1, [2]int32{a.ID, b.ID}) })
	g2.Pairs(func(a, b GridItem) { s2 = append(s2, [2]int32{a.ID, b.ID}) })
	if !reflect.DeepEqual(s1, s2) {
		t.Error("pair visit order differs across identical builds")
	}
	q1 := g1.Query(nil, Rect{5, 5, 30, 30})
	q2 := g2.Query(nil, Rect{5, 5, 30, 30})
	if !reflect.DeepEqual(q1, q2) {
		t.Error("query results differ across identical builds")
	}
}

func TestGridEmptyBounds(t *testing.T) {
	g := NewGrid(Rect{}, 8)
	g.Insert(1, Rect{0, 0, 2, 2}) // clamped into the single bucket
	if got := g.Query(nil, Rect{-1, -1, 3, 3}); !reflect.DeepEqual(got, []int32{1}) {
		t.Fatalf("empty-bounds grid query = %v", got)
	}
}

func TestCellSet(t *testing.T) {
	var s CellSet
	if s.Len() != 0 {
		t.Fatal("zero CellSet must be empty")
	}
	s.Add(Pt{3, 1})
	s.Add(Pt{0, 2})
	s.Add(Pt{3, 1}) // duplicate
	s.Add(Pt{1, 1})
	want := []Pt{{1, 1}, {3, 1}, {0, 2}}
	if got := s.Cells(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Cells = %v, want %v (scan order, deduped)", got, want)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	// Mutation after a read re-normalizes.
	s.Add(Pt{0, 0})
	if got := s.Cells(); got[0] != (Pt{0, 0}) {
		t.Fatalf("Cells after second Add = %v", got)
	}
}

func TestSpatialModeParse(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SpatialMode
		err  bool
	}{{"grid", SpatialGrid, false}, {"off", SpatialOff, false}, {"rtree", SpatialGrid, true}} {
		got, err := ParseSpatialMode(tc.in)
		if (err != nil) != tc.err || got != tc.want {
			t.Errorf("ParseSpatialMode(%q) = %v, %v", tc.in, got, err)
		}
	}
	if SpatialGrid.String() != "grid" || SpatialOff.String() != "off" {
		t.Error("String round-trip wrong")
	}
	var zero SpatialMode
	if zero != SpatialGrid {
		t.Error("zero SpatialMode must be the grid (production default)")
	}
}
