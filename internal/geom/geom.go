// Package geom provides the small geometric vocabulary shared by placement,
// routing and the DFM guideline checker: grid points, rectangles, and
// sliding density windows.
package geom

// Pt is a point on the routing grid.
type Pt struct {
	X, Y int
}

// Add returns p translated by (dx, dy).
func (p Pt) Add(dx, dy int) Pt { return Pt{p.X + dx, p.Y + dy} }

// Manhattan returns the L1 distance between two points.
func (p Pt) Manhattan(q Pt) int {
	return abs(p.X-q.X) + abs(p.Y-q.Y)
}

// Rect is a half-open axis-aligned rectangle [X0,X1) x [Y0,Y1).
type Rect struct {
	X0, Y0, X1, Y1 int
}

// W returns the rectangle width.
func (r Rect) W() int { return r.X1 - r.X0 }

// H returns the rectangle height.
func (r Rect) H() int { return r.Y1 - r.Y0 }

// Area returns the rectangle area.
func (r Rect) Area() int { return r.W() * r.H() }

// Contains reports whether p lies in the rectangle.
func (r Rect) Contains(p Pt) bool {
	return p.X >= r.X0 && p.X < r.X1 && p.Y >= r.Y0 && p.Y < r.Y1
}

// Intersects reports whether two rectangles share positive area. Empty
// (zero-area or inverted) rectangles intersect nothing — the half-open
// convention leaves them no interior to share.
func (r Rect) Intersects(o Rect) bool {
	return r.X0 < r.X1 && r.Y0 < r.Y1 && o.X0 < o.X1 && o.Y0 < o.Y1 &&
		r.X0 < o.X1 && o.X0 < r.X1 && r.Y0 < o.Y1 && o.Y0 < r.Y1
}

// Clip returns the intersection of two rectangles (empty if disjoint).
func (r Rect) Clip(o Rect) Rect {
	c := Rect{max(r.X0, o.X0), max(r.Y0, o.Y0), min(r.X1, o.X1), min(r.Y1, o.Y1)}
	if c.X1 < c.X0 {
		c.X1 = c.X0
	}
	if c.Y1 < c.Y0 {
		c.Y1 = c.Y0
	}
	return c
}

// BBox returns the bounding rectangle of a point set, with each point
// occupying its own grid cell (so a single point yields a 1x1 rectangle).
// An empty point set yields the empty rectangle.
func BBox(pts []Pt) Rect {
	if len(pts) == 0 {
		return Rect{}
	}
	r := Rect{pts[0].X, pts[0].Y, pts[0].X + 1, pts[0].Y + 1}
	for _, p := range pts[1:] {
		r.X0 = min(r.X0, p.X)
		r.Y0 = min(r.Y0, p.Y)
		r.X1 = max(r.X1, p.X+1)
		r.Y1 = max(r.Y1, p.Y+1)
	}
	return r
}

// Region is a set of rectangles — the incremental pipeline's dirty area:
// the part of the die whose placement, routing or occupancy may differ from
// a previous analysis. The zero value is the empty region.
type Region struct {
	Rects []Rect
}

// Add appends a rectangle to the region; empty rectangles are dropped.
func (r *Region) Add(rc Rect) {
	if rc.Area() > 0 {
		r.Rects = append(r.Rects, rc)
	}
}

// Empty reports whether the region covers no area.
func (r *Region) Empty() bool { return len(r.Rects) == 0 }

// Intersects reports whether any rectangle of the region overlaps rc.
func (r *Region) Intersects(rc Rect) bool {
	for _, o := range r.Rects {
		if o.Intersects(rc) {
			return true
		}
	}
	return false
}

// Contains reports whether the point lies inside the region.
func (r *Region) Contains(p Pt) bool {
	for _, o := range r.Rects {
		if o.Contains(p) {
			return true
		}
	}
	return false
}

// Mask rasterizes the region over bounds into a row-major bitmap of size
// bounds.W()*bounds.H(): index (y-Y0)*W + (x-X0) is true when the cell lies
// inside the region. Scans over large areas test cells through the mask in
// O(1) instead of O(len(Rects)).
func (r *Region) Mask(bounds Rect) []bool {
	w, h := bounds.W(), bounds.H()
	if w <= 0 || h <= 0 {
		return nil
	}
	m := make([]bool, w*h)
	for _, rc := range r.Rects {
		c := rc.Clip(bounds)
		for y := c.Y0; y < c.Y1; y++ {
			row := (y - bounds.Y0) * w
			for x := c.X0; x < c.X1; x++ {
				m[row+x-bounds.X0] = true
			}
		}
	}
	return m
}

// HPWL returns the half-perimeter wirelength of a point set.
func HPWL(pts []Pt) int {
	if len(pts) == 0 {
		return 0
	}
	minX, maxX := pts[0].X, pts[0].X
	minY, maxY := pts[0].Y, pts[0].Y
	for _, p := range pts[1:] {
		minX = min(minX, p.X)
		maxX = max(maxX, p.X)
		minY = min(minY, p.Y)
		maxY = max(maxY, p.Y)
	}
	return (maxX - minX) + (maxY - minY)
}

// Windows enumerates wnd x wnd sliding windows covering the rectangle with
// the given stride, calling f for each window.
func Windows(bounds Rect, wnd, stride int, f func(Rect)) {
	if wnd <= 0 || stride <= 0 {
		return
	}
	for y := bounds.Y0; y < bounds.Y1; y += stride {
		for x := bounds.X0; x < bounds.X1; x += stride {
			w := Rect{x, y, x + wnd, y + wnd}.Clip(bounds)
			if w.Area() > 0 {
				f(w)
			}
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
