// Package geom provides the small geometric vocabulary shared by placement,
// routing and the DFM guideline checker: grid points, rectangles, and
// sliding density windows.
package geom

// Pt is a point on the routing grid.
type Pt struct {
	X, Y int
}

// Add returns p translated by (dx, dy).
func (p Pt) Add(dx, dy int) Pt { return Pt{p.X + dx, p.Y + dy} }

// Manhattan returns the L1 distance between two points.
func (p Pt) Manhattan(q Pt) int {
	return abs(p.X-q.X) + abs(p.Y-q.Y)
}

// Rect is a half-open axis-aligned rectangle [X0,X1) x [Y0,Y1).
type Rect struct {
	X0, Y0, X1, Y1 int
}

// W returns the rectangle width.
func (r Rect) W() int { return r.X1 - r.X0 }

// H returns the rectangle height.
func (r Rect) H() int { return r.Y1 - r.Y0 }

// Area returns the rectangle area.
func (r Rect) Area() int { return r.W() * r.H() }

// Contains reports whether p lies in the rectangle.
func (r Rect) Contains(p Pt) bool {
	return p.X >= r.X0 && p.X < r.X1 && p.Y >= r.Y0 && p.Y < r.Y1
}

// Intersects reports whether two rectangles overlap.
func (r Rect) Intersects(o Rect) bool {
	return r.X0 < o.X1 && o.X0 < r.X1 && r.Y0 < o.Y1 && o.Y0 < r.Y1
}

// Clip returns the intersection of two rectangles (empty if disjoint).
func (r Rect) Clip(o Rect) Rect {
	c := Rect{max(r.X0, o.X0), max(r.Y0, o.Y0), min(r.X1, o.X1), min(r.Y1, o.Y1)}
	if c.X1 < c.X0 {
		c.X1 = c.X0
	}
	if c.Y1 < c.Y0 {
		c.Y1 = c.Y0
	}
	return c
}

// HPWL returns the half-perimeter wirelength of a point set.
func HPWL(pts []Pt) int {
	if len(pts) == 0 {
		return 0
	}
	minX, maxX := pts[0].X, pts[0].X
	minY, maxY := pts[0].Y, pts[0].Y
	for _, p := range pts[1:] {
		minX = min(minX, p.X)
		maxX = max(maxX, p.X)
		minY = min(minY, p.Y)
		maxY = max(maxY, p.Y)
	}
	return (maxX - minX) + (maxY - minY)
}

// Windows enumerates wnd x wnd sliding windows covering the rectangle with
// the given stride, calling f for each window.
func Windows(bounds Rect, wnd, stride int, f func(Rect)) {
	if wnd <= 0 || stride <= 0 {
		return
	}
	for y := bounds.Y0; y < bounds.Y1; y += stride {
		for x := bounds.X0; x < bounds.X1; x += stride {
			w := Rect{x, y, x + wnd, y + wnd}.Clip(bounds)
			if w.Area() > 0 {
				f(w)
			}
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
