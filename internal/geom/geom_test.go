package geom

import "testing"

func TestPtOps(t *testing.T) {
	p := Pt{2, 3}
	if q := p.Add(1, -1); q != (Pt{3, 2}) {
		t.Errorf("Add = %v", q)
	}
	if d := p.Manhattan(Pt{5, 1}); d != 5 {
		t.Errorf("Manhattan = %d, want 5", d)
	}
	if d := p.Manhattan(p); d != 0 {
		t.Errorf("self distance = %d", d)
	}
}

func TestRectBasics(t *testing.T) {
	r := Rect{0, 0, 4, 3}
	if r.W() != 4 || r.H() != 3 || r.Area() != 12 {
		t.Errorf("dims wrong: %dx%d area %d", r.W(), r.H(), r.Area())
	}
	if !r.Contains(Pt{0, 0}) || !r.Contains(Pt{3, 2}) {
		t.Error("Contains must include lower corner and interior")
	}
	if r.Contains(Pt{4, 0}) || r.Contains(Pt{0, 3}) {
		t.Error("Contains must exclude upper bounds (half-open)")
	}
}

func TestRectIntersectClip(t *testing.T) {
	a := Rect{0, 0, 4, 4}
	b := Rect{2, 2, 6, 6}
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Error("must intersect")
	}
	c := a.Clip(b)
	if c != (Rect{2, 2, 4, 4}) {
		t.Errorf("Clip = %+v", c)
	}
	d := Rect{10, 10, 12, 12}
	if a.Intersects(d) {
		t.Error("disjoint rects must not intersect")
	}
	e := a.Clip(d)
	if e.Area() != 0 {
		t.Errorf("clip of disjoint rects must be empty, got %+v", e)
	}
}

func TestHPWL(t *testing.T) {
	if HPWL(nil) != 0 {
		t.Error("empty HPWL must be 0")
	}
	pts := []Pt{{0, 0}, {3, 1}, {1, 4}}
	if got := HPWL(pts); got != 3+4 {
		t.Errorf("HPWL = %d, want 7", got)
	}
	if got := HPWL([]Pt{{5, 5}}); got != 0 {
		t.Errorf("single-point HPWL = %d", got)
	}
}

func TestBBox(t *testing.T) {
	if b := BBox(nil); b.Area() != 0 {
		t.Errorf("empty BBox = %+v", b)
	}
	if b := BBox([]Pt{{2, 3}}); b != (Rect{2, 3, 3, 4}) {
		t.Errorf("single-point BBox = %+v", b)
	}
	if b := BBox([]Pt{{2, 3}, {0, 5}, {4, 1}}); b != (Rect{0, 1, 5, 6}) {
		t.Errorf("BBox = %+v", b)
	}
}

func TestRegion(t *testing.T) {
	var r Region
	if !r.Empty() || r.Intersects(Rect{0, 0, 10, 10}) || r.Contains(Pt{1, 1}) {
		t.Error("zero region must be empty")
	}
	r.Add(Rect{1, 1, 1, 5}) // empty rect dropped
	if !r.Empty() {
		t.Error("empty rects must be dropped")
	}
	r.Add(Rect{2, 2, 4, 4})
	r.Add(Rect{6, 0, 7, 1})
	if !r.Intersects(Rect{3, 3, 10, 10}) || r.Intersects(Rect{4, 4, 6, 6}) {
		t.Error("Intersects wrong")
	}
	if !r.Contains(Pt{6, 0}) || r.Contains(Pt{5, 5}) {
		t.Error("Contains wrong")
	}
	mask := r.Mask(Rect{0, 0, 8, 8})
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			if mask[y*8+x] != r.Contains(Pt{x, y}) {
				t.Fatalf("mask(%d,%d) = %v disagrees with Contains", x, y, mask[y*8+x])
			}
		}
	}
	// Rects partly outside the bounds are clipped, not dropped.
	r.Add(Rect{-2, -2, 1, 1})
	mask = r.Mask(Rect{0, 0, 8, 8})
	if !mask[0] {
		t.Error("clipped rect must still mark in-bounds cells")
	}
}

func TestWindowsCoverage(t *testing.T) {
	bounds := Rect{0, 0, 10, 10}
	covered := make([][]bool, 10)
	for i := range covered {
		covered[i] = make([]bool, 10)
	}
	count := 0
	Windows(bounds, 4, 4, func(w Rect) {
		count++
		if w.Area() == 0 {
			t.Error("empty window emitted")
		}
		for y := w.Y0; y < w.Y1; y++ {
			for x := w.X0; x < w.X1; x++ {
				covered[y][x] = true
			}
		}
	})
	if count != 9 {
		t.Errorf("window count = %d, want 9", count)
	}
	for y := range covered {
		for x := range covered[y] {
			if !covered[y][x] {
				t.Fatalf("cell (%d,%d) not covered", x, y)
			}
		}
	}
	// Degenerate parameters must be ignored.
	Windows(bounds, 0, 4, func(Rect) { t.Fatal("window with wnd=0") })
	Windows(bounds, 4, 0, func(Rect) { t.Fatal("window with stride=0") })
}
