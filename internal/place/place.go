// Package place implements row-based standard-cell placement inside a fixed
// floorplan: a serpentine initial placement in topological order followed by
// greedy pairwise-swap refinement of half-perimeter wirelength. The die is
// sized for a target core utilization (the paper uses 70%) and — crucially
// for the resynthesis procedure — a resynthesized netlist can be re-placed
// into the *original* die, failing if it no longer fits, which enforces the
// paper's fixed-die-area constraint.
package place

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"dfmresyn/internal/geom"
	"dfmresyn/internal/netlist"
)

// ErrConstraint is the sentinel wrapped by every placement failure caused by
// the fixed-die-area design constraint (as opposed to an internal error):
// callers — and the CLI's exit-code mapping — detect it with errors.Is.
var ErrConstraint = errors.New("place: design constraint violated")

// Placement is the result of placing a circuit.
type Placement struct {
	C    *netlist.Circuit
	Die  geom.Rect
	Rows int
	Loc  []geom.Pt // per gate ID: cell origin (row-left corner)
	W    []int     // per gate ID: width in grid units

	PIPad []geom.Pt // per PI index: pad location on the left edge
	POPad []geom.Pt // per PO index: pad location on the right edge

	// piIdx/poIdx map a net to its pad index — built by placePads so
	// NetTerminals resolves pads in O(1) instead of scanning the PI/PO
	// lists per call (NetTerminals sits under every HPWL evaluation of
	// the swap refiner and every net the router processes).
	piIdx, poIdx map[*netlist.Net]int
}

// CellWidth returns the grid width of a gate (ceil of cell area).
func CellWidth(g *netlist.Gate) int {
	w := int(math.Ceil(g.Type.Area))
	if w < 1 {
		w = 1
	}
	return w
}

// DieFor computes a near-square fixed die for the circuit at the given core
// utilization.
func DieFor(c *netlist.Circuit, util float64) geom.Rect {
	total := 0
	for _, g := range c.Gates {
		total += CellWidth(g)
	}
	if total == 0 {
		total = 1
	}
	area := float64(total) / util
	rows := int(math.Ceil(math.Sqrt(area)))
	width := int(math.Ceil(area / float64(rows)))
	// The die must accommodate the widest cell in a row.
	maxW := 1
	for _, g := range c.Gates {
		if w := CellWidth(g); w > maxW {
			maxW = w
		}
	}
	if width < maxW {
		width = maxW
	}
	if rows < 1 {
		rows = 1
	}
	return geom.Rect{X0: 0, Y0: 0, X1: width, Y1: rows}
}

// Place places the circuit into a fresh die sized at the given utilization.
func Place(c *netlist.Circuit, util float64, seed int64) (*Placement, error) {
	return PlaceInDie(c, DieFor(c, util), seed)
}

// PlaceInDie places the circuit into an existing die. It returns an error
// when the cells do not fit, which the resynthesis procedure treats as an
// area-constraint violation.
func PlaceInDie(c *netlist.Circuit, die geom.Rect, seed int64) (*Placement, error) {
	p := &Placement{
		C:   c,
		Die: die,
		Loc: make([]geom.Pt, len(c.Gates)),
		W:   make([]int, len(c.Gates)),
	}
	p.Rows = die.H()
	for _, g := range c.Gates {
		p.W[g.ID] = CellWidth(g)
	}

	// Serpentine fill in topological order (keeps connected cells close).
	order := c.Levelize()
	row, x := 0, 0
	dir := 1
	for _, g := range order {
		w := p.W[g.ID]
		if w > die.W() {
			return nil, fmt.Errorf("%w: cell %s wider than die", ErrConstraint, g.Name)
		}
		fits := func() bool {
			if dir > 0 {
				return x+w <= die.W()
			}
			return x-w >= 0
		}
		if !fits() {
			row++
			if row >= p.Rows {
				return nil, fmt.Errorf("%w: circuit does not fit in %dx%d die", ErrConstraint, die.W(), die.H())
			}
			dir = -dir
			if dir > 0 {
				x = 0
			} else {
				x = die.W()
			}
		}
		if dir > 0 {
			p.Loc[g.ID] = geom.Pt{X: die.X0 + x, Y: die.Y0 + row}
			x += w
		} else {
			x -= w
			p.Loc[g.ID] = geom.Pt{X: die.X0 + x, Y: die.Y0 + row}
		}
	}

	p.placePads()
	p.refine(seed)
	return p, nil
}

// placePads distributes PI pads along the left edge and PO pads along the
// right edge.
func (p *Placement) placePads() {
	c := p.C
	p.PIPad = make([]geom.Pt, len(c.PIs))
	for i := range c.PIs {
		y := p.Die.Y0
		if len(c.PIs) > 1 {
			y += i * (p.Die.H() - 1) / (len(c.PIs) - 1)
		}
		p.PIPad[i] = geom.Pt{X: p.Die.X0, Y: y}
	}
	p.POPad = make([]geom.Pt, len(c.POs))
	for i := range c.POs {
		y := p.Die.Y0
		if len(c.POs) > 1 {
			y += i * (p.Die.H() - 1) / (len(c.POs) - 1)
		}
		p.POPad[i] = geom.Pt{X: p.Die.X1 - 1, Y: y}
	}
	p.piIdx = make(map[*netlist.Net]int, len(c.PIs))
	for i, n := range c.PIs {
		if _, dup := p.piIdx[n]; !dup {
			p.piIdx[n] = i
		}
	}
	p.poIdx = make(map[*netlist.Net]int, len(c.POs))
	for i, n := range c.POs {
		if _, dup := p.poIdx[n]; !dup {
			p.poIdx[n] = i
		}
	}
}

// NetTerminals returns the terminal points of a net: the driver cell or PI
// pad, every sink cell, and the PO pad when the net is a primary output.
func (p *Placement) NetTerminals(n *netlist.Net) []geom.Pt {
	var pts []geom.Pt
	if n.Driver != nil {
		pts = append(pts, p.Loc[n.Driver.ID])
	} else if i, ok := p.piIdx[n]; ok {
		pts = append(pts, p.PIPad[i])
	}
	for _, pin := range n.Fanout {
		pts = append(pts, p.Loc[pin.Gate.ID])
	}
	if n.IsPO {
		if i, ok := p.poIdx[n]; ok {
			pts = append(pts, p.POPad[i])
		}
	}
	return pts
}

// VerifyLegal checks the placement against the die: every cell footprint
// inside the boundary and no two footprints overlapping. Overlap detection
// runs on the shared grid index (footprints only pair up inside shared
// buckets); the reported pair is the smallest by gate ID, so the error is
// deterministic regardless of discovery order. Violations wrap
// ErrConstraint.
func (p *Placement) VerifyLegal() error {
	idx := geom.NewGrid(p.Die, geom.DefaultGridCell)
	for _, g := range p.C.Gates {
		loc, w := p.Loc[g.ID], p.W[g.ID]
		r := geom.Rect{X0: loc.X, Y0: loc.Y, X1: loc.X + w, Y1: loc.Y + 1}
		if loc.X < p.Die.X0 || r.X1 > p.Die.X1 || loc.Y < p.Die.Y0 || r.Y1 > p.Die.Y1 {
			return fmt.Errorf("%w: cell %s at (%d,%d) width %d outside die", ErrConstraint, g.Name, loc.X, loc.Y, w)
		}
		idx.Insert(int32(g.ID), r)
	}
	bestA, bestB := -1, -1
	idx.Pairs(func(a, b geom.GridItem) {
		if bestA < 0 || int(a.ID) < bestA || (int(a.ID) == bestA && int(b.ID) < bestB) {
			bestA, bestB = int(a.ID), int(b.ID)
		}
	})
	if bestA >= 0 {
		return fmt.Errorf("%w: cells %s and %s overlap", ErrConstraint, p.C.Gates[bestA].Name, p.C.Gates[bestB].Name)
	}
	return nil
}

// WireLength returns the total HPWL over all nets.
func (p *Placement) WireLength() int {
	total := 0
	for _, n := range p.C.Nets {
		total += geom.HPWL(p.NetTerminals(n))
	}
	return total
}

// refine runs greedy pairwise location swaps between same-width gates,
// accepting only HPWL improvements. Deterministic under the seed.
func (p *Placement) refine(seed int64) {
	c := p.C
	if len(c.Gates) < 2 {
		return
	}
	rng := rand.New(rand.NewSource(seed))

	// Incremental cost: HPWL of the nets touching a gate.
	gateCost := func(g *netlist.Gate) int {
		cost := geom.HPWL(p.NetTerminals(g.Out))
		for _, in := range g.Fanin {
			cost += geom.HPWL(p.NetTerminals(in))
		}
		return cost
	}

	moves := 12 * len(c.Gates)
	for m := 0; m < moves; m++ {
		a := c.Gates[rng.Intn(len(c.Gates))]
		b := c.Gates[rng.Intn(len(c.Gates))]
		if a == b || p.W[a.ID] != p.W[b.ID] {
			continue
		}
		before := gateCost(a) + gateCost(b)
		p.Loc[a.ID], p.Loc[b.ID] = p.Loc[b.ID], p.Loc[a.ID]
		after := gateCost(a) + gateCost(b)
		if after >= before {
			p.Loc[a.ID], p.Loc[b.ID] = p.Loc[b.ID], p.Loc[a.ID]
		}
	}
}
