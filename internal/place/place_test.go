package place

import (
	"errors"
	"math/rand"
	"testing"

	"dfmresyn/internal/geom"
	"dfmresyn/internal/library"
	"dfmresyn/internal/netlist"
)

var lib = library.OSU018Like()

func randomCircuit(t *testing.T, seed int64, gates int) *netlist.Circuit {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	names := []string{"NAND2X1", "NOR2X1", "INVX1", "AND2X2", "XOR2X1", "AOI22X1"}
	c := netlist.New("r", lib)
	var nets []*netlist.Net
	for i := 0; i < 8; i++ {
		nets = append(nets, c.AddPI(string(rune('a'+i))))
	}
	for i := 0; i < gates; i++ {
		cell := lib.ByName(names[rng.Intn(len(names))])
		fanin := make([]*netlist.Net, cell.NumInputs())
		for j := range fanin {
			fanin[j] = nets[rng.Intn(len(nets))]
		}
		nets = append(nets, c.AddGate("", cell, fanin...))
	}
	for i := 0; i < 4; i++ {
		c.MarkPO(nets[len(nets)-1-i])
	}
	return c
}

func TestPlaceLegality(t *testing.T) {
	c := randomCircuit(t, 1, 120)
	p, err := Place(c, 0.70, 1)
	if err != nil {
		t.Fatalf("Place: %v", err)
	}
	// Every cell inside the die.
	for _, g := range c.Gates {
		loc := p.Loc[g.ID]
		if loc.X < p.Die.X0 || loc.X+p.W[g.ID] > p.Die.X1 || loc.Y < p.Die.Y0 || loc.Y >= p.Die.Y1 {
			t.Errorf("gate %s at %v width %d escapes die %+v", g.Name, loc, p.W[g.ID], p.Die)
		}
	}
	// No overlaps within a row.
	type span struct{ x0, x1 int }
	rows := map[int][]span{}
	for _, g := range c.Gates {
		loc := p.Loc[g.ID]
		rows[loc.Y] = append(rows[loc.Y], span{loc.X, loc.X + p.W[g.ID]})
	}
	for y, spans := range rows {
		for i := 0; i < len(spans); i++ {
			for j := i + 1; j < len(spans); j++ {
				a, b := spans[i], spans[j]
				if a.x0 < b.x1 && b.x0 < a.x1 {
					t.Fatalf("overlap in row %d: [%d,%d) vs [%d,%d)", y, a.x0, a.x1, b.x0, b.x1)
				}
			}
		}
	}
}

func TestDieUtilization(t *testing.T) {
	c := randomCircuit(t, 2, 200)
	die := DieFor(c, 0.70)
	total := 0
	for _, g := range c.Gates {
		total += CellWidth(g)
	}
	util := float64(total) / float64(die.Area())
	if util > 0.75 || util < 0.5 {
		t.Errorf("utilization %.2f out of expected band around 0.70", util)
	}
}

func TestPlaceInDieTooSmallFails(t *testing.T) {
	c := randomCircuit(t, 3, 100)
	_, err := PlaceInDie(c, geom.Rect{X0: 0, Y0: 0, X1: 8, Y1: 8}, 1)
	if err == nil {
		t.Fatal("placement into a too-small die must fail (area constraint)")
	}
}

func TestRefineImprovesOrKeepsWirelength(t *testing.T) {
	c := randomCircuit(t, 4, 150)
	die := DieFor(c, 0.70)
	// Placement without refinement: rebuild manually by calling
	// PlaceInDie on a circuit then comparing against a no-refine
	// baseline computed from the serpentine order. Instead, compare two
	// seeds — both must produce legal placements and refinement must not
	// make HPWL pathological (sanity band).
	p1, err := PlaceInDie(c, die, 1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := PlaceInDie(c, die, 2)
	if err != nil {
		t.Fatal(err)
	}
	w1, w2 := p1.WireLength(), p2.WireLength()
	if w1 <= 0 || w2 <= 0 {
		t.Fatal("wirelength must be positive")
	}
	ratio := float64(w1) / float64(w2)
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("seeds give wildly different wirelength: %d vs %d", w1, w2)
	}
}

func TestPlacementDeterministic(t *testing.T) {
	c := randomCircuit(t, 5, 80)
	p1, _ := Place(c, 0.70, 7)
	p2, _ := Place(c, 0.70, 7)
	for i := range p1.Loc {
		if p1.Loc[i] != p2.Loc[i] {
			t.Fatalf("placement differs at gate %d for identical seeds", i)
		}
	}
}

func TestNetTerminals(t *testing.T) {
	c := netlist.New("t", lib)
	a := c.AddPI("a")
	y := c.AddGate("u1", lib.ByName("INVX1"), a)
	z := c.AddGate("u2", lib.ByName("INVX1"), y)
	c.MarkPO(z)
	p, err := Place(c, 0.70, 1)
	if err != nil {
		t.Fatal(err)
	}
	// PI net: pad + one sink.
	at := p.NetTerminals(a)
	if len(at) != 2 {
		t.Errorf("PI net terminals = %d, want 2", len(at))
	}
	if at[0] != p.PIPad[0] {
		t.Errorf("first terminal must be the PI pad")
	}
	// Internal net: driver + sink.
	yt := p.NetTerminals(y)
	if len(yt) != 2 {
		t.Errorf("internal net terminals = %d, want 2", len(yt))
	}
	// PO net: driver + pad.
	zt := p.NetTerminals(z)
	if len(zt) != 2 {
		t.Errorf("PO net terminals = %d, want 2", len(zt))
	}
	if zt[len(zt)-1] != p.POPad[0] {
		t.Error("last PO-net terminal must be the PO pad")
	}
}

func TestPadsOnDieEdges(t *testing.T) {
	c := randomCircuit(t, 6, 60)
	p, err := Place(c, 0.70, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, pad := range p.PIPad {
		if pad.X != p.Die.X0 {
			t.Errorf("PI pad %d not on left edge: %v", i, pad)
		}
		if pad.Y < p.Die.Y0 || pad.Y >= p.Die.Y1 {
			t.Errorf("PI pad %d outside die: %v", i, pad)
		}
	}
	for i, pad := range p.POPad {
		if pad.X != p.Die.X1-1 {
			t.Errorf("PO pad %d not on right edge: %v", i, pad)
		}
	}
}

func TestVerifyLegal(t *testing.T) {
	c := randomCircuit(t, 5, 140)
	p, err := Place(c, 0.70, 5)
	if err != nil {
		t.Fatalf("Place: %v", err)
	}
	if err := p.VerifyLegal(); err != nil {
		t.Fatalf("legal placement rejected: %v", err)
	}
	// Force an overlap: move gate 1 onto gate 0.
	bad := *p
	bad.Loc = append([]geom.Pt(nil), p.Loc...)
	bad.Loc[c.Gates[1].ID] = p.Loc[c.Gates[0].ID]
	err = bad.VerifyLegal()
	if err == nil {
		t.Fatal("overlapping placement accepted")
	}
	if !errors.Is(err, ErrConstraint) {
		t.Fatalf("overlap error must wrap ErrConstraint: %v", err)
	}
	// Force an escape: move a gate outside the die.
	esc := *p
	esc.Loc = append([]geom.Pt(nil), p.Loc...)
	esc.Loc[c.Gates[2].ID] = geom.Pt{X: p.Die.X1, Y: p.Die.Y0}
	if err := esc.VerifyLegal(); err == nil {
		t.Fatal("out-of-die placement accepted")
	}
}

func TestNetTerminalsPadIndex(t *testing.T) {
	c := randomCircuit(t, 6, 80)
	p, err := Place(c, 0.70, 6)
	if err != nil {
		t.Fatalf("Place: %v", err)
	}
	// The O(1) pad index must agree with a direct scan of the pad lists.
	for _, n := range c.Nets {
		pts := p.NetTerminals(n)
		if n.Driver == nil {
			want := geom.Pt{X: -1, Y: -1}
			for i, pi := range c.PIs {
				if pi == n {
					want = p.PIPad[i]
					break
				}
			}
			if len(pts) == 0 || pts[0] != want {
				t.Fatalf("net %s: PI pad terminal %v, want %v", n.Name, pts, want)
			}
		}
		if n.IsPO {
			want := geom.Pt{X: -1, Y: -1}
			for i, po := range c.POs {
				if po == n {
					want = p.POPad[i]
					break
				}
			}
			if pts[len(pts)-1] != want {
				t.Fatalf("net %s: PO pad terminal %v, want %v", n.Name, pts[len(pts)-1], want)
			}
		}
	}
}
