package place

import (
	"fmt"
	"testing"

	"dfmresyn/internal/geom"
	"dfmresyn/internal/netlist"
)

func TestIncrementalIdenticalNetlist(t *testing.T) {
	c := randomCircuit(t, 41, 120)
	p, err := Place(c, 0.70, 1)
	if err != nil {
		t.Fatal(err)
	}
	p2, diff, err := PlaceIncremental(c, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range c.Gates {
		if p.Loc[g.ID] != p2.Loc[g.ID] {
			t.Fatalf("gate %s moved: %v -> %v", g.Name, p.Loc[g.ID], p2.Loc[g.ID])
		}
	}
	if p.WireLength() != p2.WireLength() {
		t.Error("wirelength changed for identical netlist")
	}
	if diff.NewGates != 0 || diff.RemovedGates != 0 || !diff.Region.Empty() {
		t.Errorf("identical netlist produced a non-empty diff: %+v", diff)
	}
}

// TestIncrementalAfterEdit: remove some gates, add new ones; old gates stay
// put, new gates fill gaps legally.
func TestIncrementalAfterEdit(t *testing.T) {
	c := randomCircuit(t, 42, 150)
	p, err := Place(c, 0.70, 1)
	if err != nil {
		t.Fatal(err)
	}

	// Rebuild the circuit dropping ~20 gates and re-deriving some logic
	// with fresh gates via a region rebuild.
	region := netlist.ExtractRegion(c.Gates[30:50])
	nc, err := c.RebuildReplacing(region, func(out *netlist.Circuit, ins []*netlist.Net) []*netlist.Net {
		// Replace the region's outputs with fresh INV(INV(x)) of the
		// first input — not functionally equivalent, but this test
		// only cares about placement legality.
		outs := make([]*netlist.Net, len(region.Outputs))
		for i := range outs {
			n1 := out.AddGate(fmt.Sprintf("new_a%d", i), lib.ByName("INVX1"), ins[i%len(ins)])
			outs[i] = out.AddGate(fmt.Sprintf("new_b%d", i), lib.ByName("INVX1"), n1)
		}
		return outs
	})
	if err != nil {
		t.Fatal(err)
	}

	p2, diff, err := PlaceIncremental(nc, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The diff covers every fresh footprint and every freed one.
	if diff.NewGates == 0 || diff.RemovedGates == 0 {
		t.Fatalf("rebuild should add and remove gates, diff = %+v", diff)
	}
	curNames := map[string]bool{}
	for _, g := range nc.Gates {
		curNames[g.Name] = true
	}
	for _, g := range c.Gates {
		if !curNames[g.Name] {
			loc := p.Loc[g.ID]
			if !diff.Region.Contains(loc) {
				t.Errorf("freed footprint of removed gate %s not in diff region", g.Name)
			}
		}
	}
	oldNames := map[string]bool{}
	for _, g := range c.Gates {
		oldNames[g.Name] = true
	}
	for _, g := range nc.Gates {
		if !oldNames[g.Name] {
			if !diff.Region.Contains(p2.Loc[g.ID]) {
				t.Errorf("footprint of new gate %s not in diff region", g.Name)
			}
		}
	}
	// Kept gates (same name) stay put.
	oldLoc := map[string]geom.Pt{}
	for _, g := range c.Gates {
		oldLoc[g.Name] = p.Loc[g.ID]
	}
	moved := 0
	for _, g := range nc.Gates {
		if loc, ok := oldLoc[g.Name]; ok {
			if p2.Loc[g.ID] != loc {
				moved++
			}
		}
	}
	if moved != 0 {
		t.Errorf("%d kept gates moved in incremental placement", moved)
	}
	// Legality: no overlaps, everything inside the die.
	type span struct{ x0, x1 int }
	rows := map[int][]span{}
	for _, g := range nc.Gates {
		loc := p2.Loc[g.ID]
		w := p2.W[g.ID]
		if loc.X < p2.Die.X0 || loc.X+w > p2.Die.X1 || loc.Y < p2.Die.Y0 || loc.Y >= p2.Die.Y1 {
			t.Fatalf("gate %s escapes die", g.Name)
		}
		rows[loc.Y] = append(rows[loc.Y], span{loc.X, loc.X + w})
	}
	for y, spans := range rows {
		for i := 0; i < len(spans); i++ {
			for j := i + 1; j < len(spans); j++ {
				a, b := spans[i], spans[j]
				if a.x0 < b.x1 && b.x0 < a.x1 {
					t.Fatalf("overlap in row %d", y)
				}
			}
		}
	}
}

func TestIncrementalOutOfSpace(t *testing.T) {
	c := randomCircuit(t, 43, 60)
	p, err := Place(c, 0.95, 1) // very tight die
	if err != nil {
		t.Skip("tight placement did not fit at all")
	}
	// Add many new gates: must eventually fail with an area error.
	region := netlist.ExtractRegion(c.Gates[:5])
	nc, err := c.RebuildReplacing(region, func(out *netlist.Circuit, ins []*netlist.Net) []*netlist.Net {
		outs := make([]*netlist.Net, len(region.Outputs))
		for i := range outs {
			n := ins[i%len(ins)]
			for k := 0; k < 40; k++ {
				n = out.AddGate(fmt.Sprintf("grow_%d_%d", i, k), lib.ByName("BUFX4"), n)
			}
			outs[i] = n
		}
		return outs
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := PlaceIncremental(nc, p, 1); err == nil {
		t.Error("expected out-of-space error for a massively grown netlist")
	}
}
