package place

import (
	"fmt"
	"math/rand"
	"sort"

	"dfmresyn/internal/geom"
	"dfmresyn/internal/netlist"
)

// PlaceIncremental places circuit c into the same die as prev, keeping
// every gate that also exists in prev's circuit (matched by instance name)
// at its previous location — an ECO-style placement. New gates are packed
// first-fit into the row gaps left by removed gates, then refined by swaps
// among themselves only, so the unchanged part of the design keeps its
// timing behavior. It fails when the new gates do not fit, which the
// resynthesis flow reports as an area-constraint violation.
func PlaceIncremental(c *netlist.Circuit, prev *Placement, seed int64) (*Placement, error) {
	die := prev.Die
	p := &Placement{
		C:    c,
		Die:  die,
		Rows: die.H(),
		Loc:  make([]geom.Pt, len(c.Gates)),
		W:    make([]int, len(c.Gates)),
	}
	for _, g := range c.Gates {
		p.W[g.ID] = CellWidth(g)
	}

	prevLoc := make(map[string]geom.Pt, len(prev.C.Gates))
	prevW := make(map[string]int, len(prev.C.Gates))
	for _, g := range prev.C.Gates {
		prevLoc[g.Name] = prev.Loc[g.ID]
		prevW[g.Name] = prev.W[g.ID]
	}

	// Row occupancy from kept gates.
	type span struct{ x0, x1 int }
	rows := make([][]span, die.H())
	var newGates []*netlist.Gate
	for _, g := range c.Gates {
		loc, ok := prevLoc[g.Name]
		if ok && prevW[g.Name] == p.W[g.ID] {
			p.Loc[g.ID] = loc
			r := loc.Y - die.Y0
			rows[r] = append(rows[r], span{loc.X, loc.X + p.W[g.ID]})
			continue
		}
		newGates = append(newGates, g)
	}
	for r := range rows {
		sort.Slice(rows[r], func(i, j int) bool { return rows[r][i].x0 < rows[r][j].x0 })
	}

	// Free gaps per row.
	type gap struct{ row, x0, x1 int }
	var gaps []gap
	for r := range rows {
		x := die.X0
		for _, s := range rows[r] {
			if s.x0 > x {
				gaps = append(gaps, gap{r, x, s.x0})
			}
			if s.x1 > x {
				x = s.x1
			}
		}
		if x < die.X1 {
			gaps = append(gaps, gap{r, x, die.X1})
		}
	}

	// First-fit: wider gates first for better packing (stable order).
	sort.SliceStable(newGates, func(i, j int) bool {
		return p.W[newGates[i].ID] > p.W[newGates[j].ID]
	})
	for _, g := range newGates {
		w := p.W[g.ID]
		placed := false
		for gi := range gaps {
			if gaps[gi].x1-gaps[gi].x0 >= w {
				p.Loc[g.ID] = geom.Pt{X: gaps[gi].x0, Y: die.Y0 + gaps[gi].row}
				gaps[gi].x0 += w
				placed = true
				break
			}
		}
		if !placed {
			return nil, fmt.Errorf("place: incremental placement out of space for %s (area constraint violated)", g.Name)
		}
	}

	p.placePads()
	p.refineAmong(newGates, seed)
	return p, nil
}

// refineAmong runs HPWL-improving swaps restricted to the given gates.
func (p *Placement) refineAmong(gates []*netlist.Gate, seed int64) {
	if len(gates) < 2 {
		return
	}
	rng := rand.New(rand.NewSource(seed))
	gateCost := func(g *netlist.Gate) int {
		cost := geom.HPWL(p.NetTerminals(g.Out))
		for _, in := range g.Fanin {
			cost += geom.HPWL(p.NetTerminals(in))
		}
		return cost
	}
	moves := 12 * len(gates)
	for m := 0; m < moves; m++ {
		a := gates[rng.Intn(len(gates))]
		b := gates[rng.Intn(len(gates))]
		if a == b || p.W[a.ID] != p.W[b.ID] {
			continue
		}
		before := gateCost(a) + gateCost(b)
		p.Loc[a.ID], p.Loc[b.ID] = p.Loc[b.ID], p.Loc[a.ID]
		after := gateCost(a) + gateCost(b)
		if after >= before {
			p.Loc[a.ID], p.Loc[b.ID] = p.Loc[b.ID], p.Loc[a.ID]
		}
	}
}
