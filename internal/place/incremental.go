package place

import (
	"fmt"
	"math/rand"
	"sort"

	"dfmresyn/internal/geom"
	"dfmresyn/internal/netlist"
)

// Diff records the cell-level changes an incremental placement made
// relative to its predecessor: how many gates were placed fresh, how many
// prev gates disappeared, and the union of every footprint that changed
// (fresh placements, freed footprints of removed or resized gates, and any
// pad that moved). Region seeds the dirty area the incremental router
// expands.
type Diff struct {
	NewGates     int
	RemovedGates int
	Region       geom.Region
}

// PlaceIncremental places circuit c into the same die as prev, keeping
// every gate that also exists in prev's circuit (matched by instance name)
// at its previous location — an ECO-style placement. New gates are packed
// first-fit into the row gaps left by removed gates, then refined by swaps
// among themselves only, so the unchanged part of the design keeps its
// timing behavior. It fails when the new gates do not fit, which the
// resynthesis flow reports as an area-constraint violation.
//
// The returned Diff covers every cell whose placement differs from prev.
func PlaceIncremental(c *netlist.Circuit, prev *Placement, seed int64) (*Placement, *Diff, error) {
	die := prev.Die
	p := &Placement{
		C:    c,
		Die:  die,
		Rows: die.H(),
		Loc:  make([]geom.Pt, len(c.Gates)),
		W:    make([]int, len(c.Gates)),
	}
	for _, g := range c.Gates {
		p.W[g.ID] = CellWidth(g)
	}

	prevLoc := make(map[string]geom.Pt, len(prev.C.Gates))
	prevW := make(map[string]int, len(prev.C.Gates))
	for _, g := range prev.C.Gates {
		prevLoc[g.Name] = prev.Loc[g.ID]
		prevW[g.Name] = prev.W[g.ID]
	}

	// Row occupancy from kept gates.
	type span struct{ x0, x1 int }
	rows := make([][]span, die.H())
	var newGates []*netlist.Gate
	for _, g := range c.Gates {
		loc, ok := prevLoc[g.Name]
		if ok && prevW[g.Name] == p.W[g.ID] {
			p.Loc[g.ID] = loc
			r := loc.Y - die.Y0
			rows[r] = append(rows[r], span{loc.X, loc.X + p.W[g.ID]})
			continue
		}
		newGates = append(newGates, g)
	}
	for r := range rows {
		sort.Slice(rows[r], func(i, j int) bool { return rows[r][i].x0 < rows[r][j].x0 })
	}

	// Free gaps per row.
	type gap struct{ row, x0, x1 int }
	var gaps []gap
	for r := range rows {
		x := die.X0
		for _, s := range rows[r] {
			if s.x0 > x {
				gaps = append(gaps, gap{r, x, s.x0})
			}
			if s.x1 > x {
				x = s.x1
			}
		}
		if x < die.X1 {
			gaps = append(gaps, gap{r, x, die.X1})
		}
	}

	// First-fit: wider gates first for better packing (stable order).
	sort.SliceStable(newGates, func(i, j int) bool {
		return p.W[newGates[i].ID] > p.W[newGates[j].ID]
	})
	for _, g := range newGates {
		w := p.W[g.ID]
		placed := false
		for gi := range gaps {
			if gaps[gi].x1-gaps[gi].x0 >= w {
				p.Loc[g.ID] = geom.Pt{X: gaps[gi].x0, Y: die.Y0 + gaps[gi].row}
				gaps[gi].x0 += w
				placed = true
				break
			}
		}
		if !placed {
			return nil, nil, fmt.Errorf("%w: incremental placement out of space for %s", ErrConstraint, g.Name)
		}
	}

	p.placePads()
	p.refineAmong(newGates, seed)

	// Dirty diff: freed footprints of removed/resized prev gates, the
	// final footprints of fresh placements (after refinement), and any pad
	// that moved.
	diff := &Diff{NewGates: len(newGates)}
	cur := make(map[string]*netlist.Gate, len(c.Gates))
	for _, g := range c.Gates {
		cur[g.Name] = g
	}
	footprint := func(loc geom.Pt, w int) geom.Rect {
		return geom.Rect{X0: loc.X, Y0: loc.Y, X1: loc.X + w, Y1: loc.Y + 1}
	}
	for _, pg := range prev.C.Gates {
		ng, ok := cur[pg.Name]
		if !ok {
			diff.RemovedGates++
			diff.Region.Add(footprint(prev.Loc[pg.ID], prev.W[pg.ID]))
			continue
		}
		if prev.W[pg.ID] != p.W[ng.ID] {
			// Resized: treated as removed + new; its old footprint frees.
			diff.Region.Add(footprint(prev.Loc[pg.ID], prev.W[pg.ID]))
		}
	}
	for _, g := range newGates {
		diff.Region.Add(footprint(p.Loc[g.ID], p.W[g.ID]))
	}
	pad := func(prevPads, pads []geom.Pt) {
		for i := range pads {
			if i >= len(prevPads) {
				diff.Region.Add(footprint(pads[i], 1))
			} else if prevPads[i] != pads[i] {
				diff.Region.Add(footprint(prevPads[i], 1))
				diff.Region.Add(footprint(pads[i], 1))
			}
		}
		for i := len(pads); i < len(prevPads); i++ {
			diff.Region.Add(footprint(prevPads[i], 1))
		}
	}
	pad(prev.PIPad, p.PIPad)
	pad(prev.POPad, p.POPad)
	return p, diff, nil
}

// refineAmong runs HPWL-improving swaps restricted to the given gates.
func (p *Placement) refineAmong(gates []*netlist.Gate, seed int64) {
	if len(gates) < 2 {
		return
	}
	rng := rand.New(rand.NewSource(seed))
	gateCost := func(g *netlist.Gate) int {
		cost := geom.HPWL(p.NetTerminals(g.Out))
		for _, in := range g.Fanin {
			cost += geom.HPWL(p.NetTerminals(in))
		}
		return cost
	}
	moves := 12 * len(gates)
	for m := 0; m < moves; m++ {
		a := gates[rng.Intn(len(gates))]
		b := gates[rng.Intn(len(gates))]
		if a == b || p.W[a.ID] != p.W[b.ID] {
			continue
		}
		before := gateCost(a) + gateCost(b)
		p.Loc[a.ID], p.Loc[b.ID] = p.Loc[b.ID], p.Loc[a.ID]
		after := gateCost(a) + gateCost(b)
		if after >= before {
			p.Loc[a.ID], p.Loc[b.ID] = p.Loc[b.ID], p.Loc[a.ID]
		}
	}
}
