package scan

import (
	"testing"

	"dfmresyn/internal/bench"
	"dfmresyn/internal/library"
	"dfmresyn/internal/place"
)

var lib = library.OSU018Like()

func chainFor(t *testing.T, name string) (*Chain, *place.Placement) {
	t.Helper()
	c := bench.MustBuild(name, lib)
	p, err := place.Place(c, 0.70, 1)
	if err != nil {
		t.Fatal(err)
	}
	return Build(p), p
}

func TestChainCoversAllPseudoPIs(t *testing.T) {
	ch, p := chainFor(t, "sparc_tlu")
	if ch.Length() != len(p.C.PIs) {
		t.Fatalf("chain has %d elements, want %d", ch.Length(), len(p.C.PIs))
	}
	seen := map[string]bool{}
	for _, e := range ch.Elements {
		if seen[e.PI.Name] {
			t.Fatalf("pseudo PI %s stitched twice", e.PI.Name)
		}
		seen[e.PI.Name] = true
	}
}

func TestNearestNeighbourBeatsRandomOrder(t *testing.T) {
	ch, p := chainFor(t, "sparc_ifu")
	// Wirelength of the PI-index order (a naive stitch).
	naive := 0
	for i := 1; i < len(p.C.PIs); i++ {
		naive += p.PIPad[i-1].Manhattan(p.PIPad[i])
	}
	if ch.WireLength > naive {
		t.Errorf("nearest-neighbour stitch (%d) worse than naive order (%d)",
			ch.WireLength, naive)
	}
}

func TestTesterTimeModel(t *testing.T) {
	ch, _ := chainFor(t, "sparc_tlu")
	n := ch.Length()
	tt := ch.Time(100)
	if tt.Cycles != 100*(n+1)+n {
		t.Errorf("cycles = %d, want %d", tt.Cycles, 100*(n+1)+n)
	}
	if tt.ChainLength != n || tt.Tests != 100 {
		t.Errorf("model fields wrong: %+v", tt)
	}
	// More tests, more cycles; ratio roughly linear.
	r := ch.Relative(200, 100)
	if r < 1.9 || r > 2.1 {
		t.Errorf("200/100 tests must be about 2x cycles, got %v", r)
	}
}

func TestEmptyChain(t *testing.T) {
	// A circuit with no PIs cannot exist in our flow, but the chain must
	// not panic on a degenerate placement.
	ch := &Chain{}
	if ch.Length() != 0 {
		t.Error("empty chain length")
	}
	tt := ch.Time(10)
	if tt.Cycles != 10 {
		t.Errorf("empty-chain cycles = %d, want 10 (capture only)", tt.Cycles)
	}
}
