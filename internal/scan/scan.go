// Package scan models the full-scan infrastructure the paper's flow assumes:
// every benchmark block is the combinational core of a scan design, with
// pseudo primary inputs and outputs standing in for scan-flop outputs and
// inputs. This package makes the scan structure explicit — it stitches the
// pseudo PI/PO positions into a placement-aware scan chain and converts
// test counts into tester cycles, which is the unit behind the paper's
// "unacceptable tester time" argument against adding patterns instead of
// resynthesizing.
package scan

import (
	"sort"

	"dfmresyn/internal/geom"
	"dfmresyn/internal/netlist"
	"dfmresyn/internal/place"
)

// Chain is an ordered scan chain over the design's state elements.
type Chain struct {
	// Elements are the scan flops in shift order; each corresponds to a
	// pseudo PI (its Q output feeding the core) and, when Capture >= 0,
	// the pseudo PO it captures.
	Elements []Element
	// WireLength is the total Manhattan length of the stitch route.
	WireLength int
}

// Element is one scan flop.
type Element struct {
	PI      *netlist.Net // pseudo primary input (flop output)
	Capture int          // index into Circuit.POs captured by this flop, or -1
	At      geom.Pt      // placed location (the pad of the pseudo PI)
}

// Length returns the number of scan elements.
func (ch *Chain) Length() int { return len(ch.Elements) }

// Build stitches a placement-aware chain: all pseudo PIs, ordered by a
// nearest-neighbour walk from the bottom-left corner (the standard stitch
// heuristic), pairing each flop with a pseudo PO by position where one
// exists.
func Build(p *place.Placement) *Chain {
	c := p.C
	ch := &Chain{}
	for i, pi := range c.PIs {
		cap := -1
		if i < len(c.POs) {
			cap = i
		}
		ch.Elements = append(ch.Elements, Element{PI: pi, Capture: cap, At: p.PIPad[i]})
	}
	if len(ch.Elements) == 0 {
		return ch
	}
	// Nearest-neighbour ordering from the bottom-left.
	sort.SliceStable(ch.Elements, func(i, j int) bool {
		a, b := ch.Elements[i].At, ch.Elements[j].At
		if a.Y != b.Y {
			return a.Y < b.Y
		}
		return a.X < b.X
	})
	ordered := []Element{ch.Elements[0]}
	rest := append([]Element{}, ch.Elements[1:]...)
	for len(rest) > 0 {
		last := ordered[len(ordered)-1].At
		best, bestD := 0, int(^uint(0)>>1)
		for i, e := range rest {
			if d := last.Manhattan(e.At); d < bestD {
				best, bestD = i, d
			}
		}
		ch.WireLength += bestD
		ordered = append(ordered, rest[best])
		rest = append(rest[:best], rest[best+1:]...)
	}
	ch.Elements = ordered
	return ch
}

// TesterTime models scan test application cost in tester cycles.
type TesterTime struct {
	Tests       int
	ChainLength int
	// Cycles = Tests*(ChainLength+1) + ChainLength: each test shifts in
	// through the chain (ChainLength cycles) plus one capture cycle,
	// with a final unload overlapping the next load except for the last
	// test.
	Cycles int
}

// Time computes tester cycles for a test count over the chain.
func (ch *Chain) Time(tests int) TesterTime {
	n := ch.Length()
	return TesterTime{
		Tests:       tests,
		ChainLength: n,
		Cycles:      tests*(n+1) + n,
	}
}

// Relative returns the tester-time ratio of two test counts on the same
// chain (the paper's argument compares test-set growth directly in time).
func (ch *Chain) Relative(testsA, testsB int) float64 {
	ta := ch.Time(testsA).Cycles
	tb := ch.Time(testsB).Cycles
	if tb == 0 {
		return 0
	}
	return float64(ta) / float64(tb)
}
