// Package route implements a deterministic congestion-aware pattern router
// over two routing layers (M2 horizontal, M3 vertical) above the cell-level
// M1, producing real segments and vias whose geometry the DFM guideline
// checker analyzes. Each two-point connection is routed with the cheaper of
// its two L-shapes under the current congestion map; multi-terminal nets are
// built as trees, connecting each terminal to the nearest already-routed
// terminal.
package route

import (
	"sort"

	"dfmresyn/internal/geom"
	"dfmresyn/internal/netlist"
	"dfmresyn/internal/place"
)

// Layer identifies a metal layer.
type Layer uint8

// Metal layers. M1 is cell-internal / pin level; routing uses M2 and M3.
const (
	M1 Layer = 1
	M2 Layer = 2
	M3 Layer = 3
)

// String names the layer.
func (l Layer) String() string {
	switch l {
	case M1:
		return "M1"
	case M2:
		return "M2"
	case M3:
		return "M3"
	}
	return "M?"
}

// Seg is one axis-aligned wire segment on a layer; A is the lower-left end.
type Seg struct {
	Layer Layer
	A, B  geom.Pt
}

// Len returns the segment length in grid units.
func (s Seg) Len() int { return s.A.Manhattan(s.B) }

// Horizontal reports whether the segment runs in X.
func (s Seg) Horizontal() bool { return s.A.Y == s.B.Y }

// Via is a cut between two layers at a point.
type Via struct {
	At       geom.Pt
	From, To Layer
	// Redundant is set when the router had room to double the cut; DFM
	// via guidelines flag non-redundant vias on long wires.
	Redundant bool
}

// NetRoute is the routed geometry of one net.
type NetRoute struct {
	Net  *netlist.Net
	Segs []Seg
	Vias []Via
}

// Length returns the total routed wirelength of the net.
func (r *NetRoute) Length() int {
	total := 0
	for _, s := range r.Segs {
		total += s.Len()
	}
	return total
}

// Layout is the routed design: per-net geometry plus per-layer occupancy.
type Layout struct {
	P      *place.Placement
	Routes []NetRoute // indexed by net ID

	// Occ[layer][y][x] lists the IDs of nets using the grid cell on that
	// routing layer (layer index 0 = M2, 1 = M3). More than one entry
	// means tracks packed at minimum pitch (or overflow) — exactly the
	// situations DFM spacing guidelines target.
	Occ [2][][]([]int32)

	// occCells tracks, per layer, the set of cells with at least one
	// occupant. The DFM bridge scan iterates this set in scan order
	// instead of walking the whole die; empty cells can never trigger a
	// spacing guideline, so the iteration is byte-identical to a full
	// walk at a fraction of the cost.
	occCells [2]geom.CellSet
}

// commit appends id to the occupancy list of one cell (out-of-die points
// are ignored) and keeps the occupied-cell set current. Every occupancy
// write — fresh routing and incremental replay alike — goes through here.
func (lay *Layout) commit(li int, p geom.Pt, id int32) {
	if !lay.P.Die.Contains(p) {
		return
	}
	if len(lay.Occ[li][p.Y][p.X]) == 0 {
		lay.occCells[li].Add(p)
	}
	lay.Occ[li][p.Y][p.X] = append(lay.Occ[li][p.Y][p.X], id)
}

// OccCells returns the distinct occupied cells of a routing layer in scan
// order (row-major: Y, then X). The slice is owned by the layout.
func (lay *Layout) OccCells(li int) []geom.Pt { return lay.occCells[li].Cells() }

// SegPairsNaive returns the number of segment pairs an all-pairs per-layer
// proximity check would examine on this layout — the naive-cost baseline
// the DFM scan's pair-reduction metric is measured against.
func SegPairsNaive(lay *Layout) int64 {
	var n [2]int64
	for i := range lay.Routes {
		for _, s := range lay.Routes[i].Segs {
			n[s.Layer-M2]++
		}
	}
	return n[0]*(n[0]-1)/2 + n[1]*(n[1]-1)/2
}

// At returns the nets occupying a routing-layer cell (l must be M2 or M3).
func (lay *Layout) At(l Layer, p geom.Pt) []int32 {
	if !lay.P.Die.Contains(p) {
		return nil
	}
	return lay.Occ[l-M2][p.Y][p.X]
}

// TotalWireLength sums routed lengths over all nets.
func (lay *Layout) TotalWireLength() int {
	total := 0
	for i := range lay.Routes {
		total += lay.Routes[i].Length()
	}
	return total
}

// TotalVias counts vias over all nets.
func (lay *Layout) TotalVias() int {
	total := 0
	for i := range lay.Routes {
		total += len(lay.Routes[i].Vias)
	}
	return total
}

// Route routes every net of the placed circuit.
func Route(p *place.Placement) *Layout {
	lay := &Layout{P: p, Routes: make([]NetRoute, len(p.C.Nets))}
	w, h := p.Die.W(), p.Die.H()
	for li := 0; li < 2; li++ {
		lay.Occ[li] = make([][]([]int32), h)
		for y := 0; y < h; y++ {
			lay.Occ[li][y] = make([][]int32, w)
		}
	}
	for _, n := range p.C.Nets {
		lay.routeNet(n)
	}
	return lay
}

// congestion returns the extra cost of adding one more track through the
// cell on the given routing layer.
func (lay *Layout) congestion(l Layer, pt geom.Pt) int {
	occ := lay.At(l, pt)
	return 3 * len(occ)
}

// pathCost estimates the congestion cost of an L-path corner choice.
func (lay *Layout) pathCost(a, corner, b geom.Pt) int {
	cost := 0
	walk := func(from, to geom.Pt, l Layer) {
		dx := sign(to.X - from.X)
		dy := sign(to.Y - from.Y)
		for p := from; ; p = p.Add(dx, dy) {
			cost += lay.congestion(l, p)
			if p == to {
				break
			}
		}
	}
	// Horizontal runs use M2, vertical runs use M3.
	if a.Y == corner.Y {
		walk(a, corner, M2)
		walk(corner, b, M3)
	} else {
		walk(a, corner, M3)
		walk(corner, b, M2)
	}
	return cost
}

// routeNet builds the net's routed tree.
func (lay *Layout) routeNet(n *netlist.Net) {
	terms := lay.P.NetTerminals(n)
	nr := NetRoute{Net: n}
	if len(terms) < 2 {
		lay.Routes[n.ID] = nr
		return
	}
	// Deduplicate terminals (gates can share locations conceptually).
	terms = dedupPts(terms)
	if len(terms) < 2 {
		lay.Routes[n.ID] = nr
		return
	}

	connected := []geom.Pt{terms[0]}
	remaining := terms[1:]
	for len(remaining) > 0 {
		// Pick the remaining terminal closest to the connected set.
		bi, bj, best := 0, 0, int(^uint(0)>>1)
		for i, r := range remaining {
			for j, c := range connected {
				if d := r.Manhattan(c); d < best {
					best, bi, bj = d, i, j
				}
			}
		}
		src := connected[bj]
		dst := remaining[bi]
		remaining = append(remaining[:bi], remaining[bi+1:]...)
		lay.connect(&nr, src, dst)
		connected = append(connected, dst)
	}
	lay.Routes[n.ID] = nr
}

// connect routes one two-point connection with the cheaper L-shape and
// commits it to the occupancy map.
func (lay *Layout) connect(nr *NetRoute, a, b geom.Pt) {
	id := int32(nr.Net.ID)
	if a == b {
		return
	}
	cornerH := geom.Pt{X: b.X, Y: a.Y} // horizontal first
	cornerV := geom.Pt{X: a.X, Y: b.Y} // vertical first
	corner := cornerH
	if lay.pathCost(a, cornerV, b) < lay.pathCost(a, cornerH, b) {
		corner = cornerV
	}

	addSeg := func(from, to geom.Pt) {
		if from == to {
			return
		}
		var l Layer
		if from.Y == to.Y {
			l = M2
		} else {
			l = M3
		}
		seg := Seg{Layer: l, A: minPt(from, to), B: maxPt(from, to)}
		nr.Segs = append(nr.Segs, seg)
		dx, dy := sign(to.X-from.X), sign(to.Y-from.Y)
		for p := from; ; p = p.Add(dx, dy) {
			lay.commit(int(l-M2), p, id)
			if p == to {
				break
			}
		}
	}
	addVia := func(at geom.Pt, from, to Layer) {
		// The via can be doubled (made redundant) when the cell is
		// uncongested on both layers.
		red := len(lay.At(M2, at))+len(lay.At(M3, at)) <= 2
		nr.Vias = append(nr.Vias, Via{At: at, From: from, To: to, Redundant: red})
	}

	// Pin vias: terminals live on M1; the first segment's layer decides
	// the stack height.
	firstLayer := func(from, to geom.Pt) Layer {
		if from.Y == to.Y {
			return M2
		}
		return M3
	}
	addSeg(a, corner)
	addSeg(corner, b)
	if a != corner {
		addVia(a, M1, firstLayer(a, corner))
	}
	if corner != a && corner != b {
		addVia(corner, M2, M3)
	}
	if b != corner {
		addVia(b, M1, firstLayer(corner, b))
	}
}

func dedupPts(pts []geom.Pt) []geom.Pt {
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].Y != pts[j].Y {
			return pts[i].Y < pts[j].Y
		}
		return pts[i].X < pts[j].X
	})
	out := pts[:0]
	for i, p := range pts {
		if i == 0 || p != pts[i-1] {
			out = append(out, p)
		}
	}
	return out
}

func sign(v int) int {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	}
	return 0
}

func minPt(a, b geom.Pt) geom.Pt {
	if a.Y != b.Y {
		if a.Y < b.Y {
			return a
		}
		return b
	}
	if a.X < b.X {
		return a
	}
	return b
}

func maxPt(a, b geom.Pt) geom.Pt {
	if a.Y != b.Y {
		if a.Y < b.Y {
			return b
		}
		return a
	}
	if a.X < b.X {
		return b
	}
	return a
}
