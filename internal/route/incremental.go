package route

import (
	"fmt"

	"dfmresyn/internal/geom"
	"dfmresyn/internal/netlist"
	"dfmresyn/internal/place"
)

// IncrStats reports what RouteIncremental reused and what the next pipeline
// stage (the incremental DFM check) needs to splice its own results.
type IncrStats struct {
	// OrderStable is true when every net shared with the previous layout
	// (matched by name) appears in the same relative order, the
	// precondition for exact geometry reuse. When false the whole die was
	// re-routed from scratch.
	OrderStable bool
	// Reused / Rerouted count nets whose previous geometry was replayed
	// verbatim vs. nets ripped up and routed fresh.
	Reused, Rerouted int
	// Dirty is the expanded dirty region after the in-order rip-up pass:
	// every grid cell whose occupancy may differ from the previous layout
	// lies inside it.
	Dirty geom.Region
	// Remap maps previous net IDs to new net IDs (-1: net removed).
	Remap []int32
}

// RouteIncremental routes the placement reusing the previous layout outside
// the dirty region, producing a layout byte-identical to Route(p)
// (flow.DiffCheck enforces exactly that contract).
//
// The router's only cross-net coupling is congestion: net i reads the
// occupancy that nets with ID < i committed, and only inside the bounding
// box of its own terminals. So nets are processed in ID order against a
// changed-cell region W, seeded with the caller's dirty region (the
// placement diff) and the previous segment cells of removed nets:
//
//   - a kept net with unchanged terminals whose bbox misses W replays its
//     previous segments, vias and occupancy verbatim — nothing it can read
//     has changed;
//   - any other net is routed fresh against the current occupancy, which
//     by induction equals the full route's. If its fresh segments differ
//     from its previous ones, both geometries' cells are added to W
//     (occupancy differs exactly there); a net re-routed to identical
//     geometry adds nothing, which is what keeps a local edit from
//     cascading die-wide.
//
// When the order-stability precondition fails (prev is nil, the die
// changed, or kept nets were renumbered out of order), it falls back to a
// full Route.
func RouteIncremental(p *place.Placement, prev *Layout, dirty geom.Region) (*Layout, *IncrStats) {
	return RouteIncrementalMode(p, prev, dirty, geom.SpatialGrid)
}

// dirtyIndex is the changed-cell region W plus an optional grid index over
// its rectangles. The region is always maintained (IncrStats.Dirty and the
// DFM splice consume it); the grid turns the per-net `does my bbox touch
// W` test from O(len(W.Rects)) — quadratic over a sweep that dirties many
// nets — into a few bucket probes. Both answer the exact same question
// (Rect.Intersects over the same rectangles), so the routing decisions,
// and hence the layout, are byte-identical across modes.
type dirtyIndex struct {
	region geom.Region
	grid   *geom.Grid // nil in SpatialOff mode
}

func (d *dirtyIndex) add(r geom.Rect) {
	if r.Area() <= 0 {
		return
	}
	d.region.Add(r)
	if d.grid != nil {
		d.grid.Insert(int32(len(d.region.Rects)-1), r)
	}
}

func (d *dirtyIndex) intersects(r geom.Rect) bool {
	if d.grid != nil {
		return d.grid.Intersects(r)
	}
	return d.region.Intersects(r)
}

// RouteIncrementalMode is RouteIncremental with an explicit spatial-index
// mode: SpatialGrid backs the dirty-region test with a grid-bucket index,
// SpatialOff keeps the original linear scan. Identical layouts either way.
func RouteIncrementalMode(p *place.Placement, prev *Layout, dirty geom.Region, mode geom.SpatialMode) (*Layout, *IncrStats) {
	st := &IncrStats{}
	full := func() (*Layout, *IncrStats) {
		st.OrderStable = false
		st.Dirty = geom.Region{}
		st.Dirty.Add(p.Die)
		lay := Route(p)
		st.Rerouted = len(lay.Routes)
		st.Reused = 0
		return lay, st
	}
	if prev == nil || prev.P == nil || prev.P.Die != p.Die {
		return full()
	}
	newC, prevC := p.C, prev.P.C

	// Match nets by name and check kept-net order stability.
	prevByName := make(map[string]*netlist.Net, len(prevC.Nets))
	for _, n := range prevC.Nets {
		prevByName[n.Name] = n
	}
	st.Remap = make([]int32, len(prevC.Nets))
	for i := range st.Remap {
		st.Remap[i] = -1
	}
	kept := make([]*netlist.Net, len(newC.Nets))
	last := -1
	for _, n := range newC.Nets {
		pn, ok := prevByName[n.Name]
		if !ok {
			continue
		}
		if pn.ID <= last {
			return full()
		}
		last = pn.ID
		kept[n.ID] = pn
		st.Remap[pn.ID] = int32(n.ID)
	}
	st.OrderStable = true

	// Seed the changed-cell region: the placement diff plus the previous
	// segment cells of removed nets (their occupancy disappears).
	W := &dirtyIndex{}
	if mode == geom.SpatialGrid {
		W.grid = geom.NewGrid(p.Die, geom.DefaultGridCell)
	}
	for _, rc := range dirty.Rects {
		W.add(rc)
	}
	for pid, nid := range st.Remap {
		if nid < 0 {
			addSegRects(W, prev.Routes[pid].Segs)
		}
	}

	// Single in-order pass: replay provably clean nets, route the rest
	// fresh, growing W only where occupancy actually changed.
	lay := &Layout{P: p, Routes: make([]NetRoute, len(newC.Nets))}
	w, h := p.Die.W(), p.Die.H()
	for li := 0; li < 2; li++ {
		lay.Occ[li] = make([][]([]int32), h)
		for y := 0; y < h; y++ {
			lay.Occ[li][y] = make([][]int32, w)
		}
	}
	for _, n := range newC.Nets {
		terms := dedupPts(p.NetTerminals(n))
		bbox := geom.BBox(terms)
		pn := kept[n.ID]
		clean := pn != nil &&
			samePts(terms, dedupPts(prev.P.NetTerminals(pn))) &&
			!W.intersects(bbox)
		if clean {
			lay.replay(n, &prev.Routes[pn.ID])
			st.Reused++
			continue
		}
		lay.routeNet(n)
		st.Rerouted++
		var prevSegs []Seg
		if pn != nil {
			prevSegs = prev.Routes[pn.ID].Segs
		}
		if !sameSegs(lay.Routes[n.ID].Segs, prevSegs) {
			addSegRects(W, prevSegs)
			addSegRects(W, lay.Routes[n.ID].Segs)
		}
	}
	st.Dirty = W.region
	return lay, st
}

// addSegRects adds each segment's cell span (a thin rectangle) to the
// region. Vias contribute no occupancy, so segments alone describe where a
// route's congestion footprint lives.
func addSegRects(W *dirtyIndex, segs []Seg) {
	for _, s := range segs {
		W.add(geom.Rect{X0: s.A.X, Y0: s.A.Y, X1: s.B.X + 1, Y1: s.B.Y + 1})
	}
}

func sameSegs(a, b []Seg) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// replay copies a previous net route verbatim — segments, vias and the
// occupancy commits of every segment cell — under the new net identity.
func (lay *Layout) replay(n *netlist.Net, pr *NetRoute) {
	nr := NetRoute{Net: n}
	if len(pr.Segs) > 0 {
		nr.Segs = append([]Seg(nil), pr.Segs...)
	}
	if len(pr.Vias) > 0 {
		nr.Vias = append([]Via(nil), pr.Vias...)
	}
	id := int32(n.ID)
	for _, s := range nr.Segs {
		li := int(s.Layer - M2)
		dx, dy := sign(s.B.X-s.A.X), sign(s.B.Y-s.A.Y)
		for pt := s.A; ; pt = pt.Add(dx, dy) {
			lay.commit(li, pt, id)
			if pt == s.B {
				break
			}
		}
	}
	lay.Routes[n.ID] = nr
}

func samePts(a, b []geom.Pt) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// DiffLayouts compares two layouts cell by cell and net by net, returning
// an empty string when they are byte-identical, or a description of the
// first divergence. The differential harness (flow.DiffCheck) uses it to
// pin the incremental router to the full router's output.
func DiffLayouts(want, got *Layout) string {
	if len(want.Routes) != len(got.Routes) {
		return fmt.Sprintf("route count %d != %d", len(got.Routes), len(want.Routes))
	}
	for i := range want.Routes {
		wr, gr := &want.Routes[i], &got.Routes[i]
		if len(wr.Segs) != len(gr.Segs) {
			return fmt.Sprintf("net %d: %d segs != %d", i, len(gr.Segs), len(wr.Segs))
		}
		for j := range wr.Segs {
			if wr.Segs[j] != gr.Segs[j] {
				return fmt.Sprintf("net %d seg %d: %+v != %+v", i, j, gr.Segs[j], wr.Segs[j])
			}
		}
		if len(wr.Vias) != len(gr.Vias) {
			return fmt.Sprintf("net %d: %d vias != %d", i, len(gr.Vias), len(wr.Vias))
		}
		for j := range wr.Vias {
			if wr.Vias[j] != gr.Vias[j] {
				return fmt.Sprintf("net %d via %d: %+v != %+v", i, j, gr.Vias[j], wr.Vias[j])
			}
		}
	}
	for li := 0; li < 2; li++ {
		if len(want.Occ[li]) != len(got.Occ[li]) {
			return fmt.Sprintf("layer %d: row count %d != %d", li, len(got.Occ[li]), len(want.Occ[li]))
		}
		for y := range want.Occ[li] {
			if len(want.Occ[li][y]) != len(got.Occ[li][y]) {
				return fmt.Sprintf("layer %d row %d: width differs", li, y)
			}
			for x := range want.Occ[li][y] {
				wo, go_ := want.Occ[li][y][x], got.Occ[li][y][x]
				if len(wo) != len(go_) {
					return fmt.Sprintf("occupancy (%d,%d) layer %d: %v != %v", x, y, li, go_, wo)
				}
				for k := range wo {
					if wo[k] != go_[k] {
						return fmt.Sprintf("occupancy (%d,%d) layer %d: %v != %v", x, y, li, go_, wo)
					}
				}
			}
		}
	}
	return ""
}
