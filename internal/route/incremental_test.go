package route

import (
	"testing"

	"dfmresyn/internal/geom"
	"dfmresyn/internal/place"
)

// TestIncrementalIdenticalPlacement: with no dirty region and the same
// placement, every net is reused and the layout is byte-identical.
func TestIncrementalIdenticalPlacement(t *testing.T) {
	c := randomCircuit(t, 7, 100)
	p, err := place.Place(c, 0.70, 7)
	if err != nil {
		t.Fatal(err)
	}
	prev := Route(p)
	lay, st := RouteIncremental(p, prev, geom.Region{})
	if !st.OrderStable {
		t.Fatal("identical placement must be order-stable")
	}
	if st.Rerouted != 0 || st.Reused != len(c.Nets) {
		t.Errorf("reused %d rerouted %d, want all %d reused", st.Reused, st.Rerouted, len(c.Nets))
	}
	if msg := DiffLayouts(Route(p), lay); msg != "" {
		t.Fatalf("replayed layout diverges from full route: %s", msg)
	}
}

// TestIncrementalAfterMove: moving one gate and marking its old and new
// footprints dirty must reproduce the full route of the new placement
// exactly, while reusing most nets.
func TestIncrementalAfterMove(t *testing.T) {
	c := randomCircuit(t, 8, 120)
	p, err := place.Place(c, 0.70, 8)
	if err != nil {
		t.Fatal(err)
	}
	prev := Route(p)

	// Displace one mid-circuit gate a couple of cells sideways (the moved
	// placement may overlap other cells — the router does not care). A
	// short move keeps the dirty fixpoint local; a corner-to-corner move
	// would legitimately dirty nearly every net via its nets' bboxes.
	moved := *p
	moved.Loc = append([]geom.Pt(nil), p.Loc...)
	g := c.Gates[len(c.Gates)/2]
	oldLoc := moved.Loc[g.ID]
	newLoc := geom.Pt{X: oldLoc.X + 2, Y: oldLoc.Y}
	if newLoc.X+p.W[g.ID] > p.Die.X1 {
		newLoc = geom.Pt{X: p.Die.X0, Y: oldLoc.Y}
	}
	moved.Loc[g.ID] = newLoc

	var dirty geom.Region
	dirty.Add(geom.Rect{X0: oldLoc.X, Y0: oldLoc.Y, X1: oldLoc.X + p.W[g.ID], Y1: oldLoc.Y + 1})
	dirty.Add(geom.Rect{X0: newLoc.X, Y0: newLoc.Y, X1: newLoc.X + p.W[g.ID], Y1: newLoc.Y + 1})

	lay, st := RouteIncremental(&moved, prev, dirty)
	if !st.OrderStable {
		t.Fatal("same circuit must be order-stable")
	}
	if msg := DiffLayouts(Route(&moved), lay); msg != "" {
		t.Fatalf("incremental layout diverges from full route: %s", msg)
	}
	if st.Reused == 0 {
		t.Error("moving one gate should leave some nets reusable")
	}
	if st.Rerouted == 0 {
		t.Error("moving a connected gate must dirty at least its nets")
	}
}

// TestIncrementalUnstableOrderFallsBack: a renumbered circuit (kept nets
// out of order) cannot reuse geometry and must fall back to a full route.
func TestIncrementalUnstableOrderFallsBack(t *testing.T) {
	c := randomCircuit(t, 9, 40)
	p, err := place.Place(c, 0.70, 9)
	if err != nil {
		t.Fatal(err)
	}
	prev := Route(p)

	// Same logic, two nets renumbered out of order: clone the circuit and
	// swap the first two net slots (the router only reads names and IDs).
	rc := c.Clone()
	rc.Nets[0], rc.Nets[1] = rc.Nets[1], rc.Nets[0]
	rc.Nets[0].ID, rc.Nets[1].ID = 0, 1
	p2, err := place.PlaceInDie(rc, p.Die, 9)
	if err != nil {
		t.Fatal(err)
	}
	lay, st := RouteIncremental(p2, prev, geom.Region{})
	if st.OrderStable {
		t.Fatal("swapped net order must not count as stable")
	}
	if msg := DiffLayouts(Route(p2), lay); msg != "" {
		t.Fatalf("fallback layout diverges from full route: %s", msg)
	}
}
