package route

import (
	"math/rand"
	"testing"

	"dfmresyn/internal/geom"
	"dfmresyn/internal/library"
	"dfmresyn/internal/netlist"
	"dfmresyn/internal/place"
)

var lib = library.OSU018Like()

func randomCircuit(t testing.TB, seed int64, gates int) *netlist.Circuit {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	names := []string{"NAND2X1", "NOR2X1", "INVX1", "AND2X2", "XOR2X1"}
	c := netlist.New("r", lib)
	var nets []*netlist.Net
	for i := 0; i < 6; i++ {
		nets = append(nets, c.AddPI(string(rune('a'+i))))
	}
	for i := 0; i < gates; i++ {
		cell := lib.ByName(names[rng.Intn(len(names))])
		fanin := make([]*netlist.Net, cell.NumInputs())
		for j := range fanin {
			fanin[j] = nets[rng.Intn(len(nets))]
		}
		nets = append(nets, c.AddGate("", cell, fanin...))
	}
	c.MarkPO(nets[len(nets)-1])
	c.MarkPO(nets[len(nets)-2])
	return c
}

func routed(t *testing.T, seed int64, gates int) *Layout {
	t.Helper()
	c := randomCircuit(t, seed, gates)
	p, err := place.Place(c, 0.70, seed)
	if err != nil {
		t.Fatal(err)
	}
	return Route(p)
}

// TestRouteConnectivity: every net's routed tree must touch all terminals
// and be connected.
func TestRouteConnectivity(t *testing.T) {
	lay := routed(t, 1, 80)
	for _, n := range lay.P.C.Nets {
		terms := lay.P.NetTerminals(n)
		r := &lay.Routes[n.ID]
		if len(dedupTestPts(terms)) < 2 {
			continue
		}
		// Build a union-find over segment-covered points.
		parent := map[geom.Pt]geom.Pt{}
		var find func(p geom.Pt) geom.Pt
		find = func(p geom.Pt) geom.Pt {
			if parent[p] == p {
				return p
			}
			r := find(parent[p])
			parent[p] = r
			return r
		}
		add := func(p geom.Pt) {
			if _, ok := parent[p]; !ok {
				parent[p] = p
			}
		}
		union := func(a, b geom.Pt) {
			add(a)
			add(b)
			ra, rb := find(a), find(b)
			if ra != rb {
				parent[ra] = rb
			}
		}
		for _, s := range r.Segs {
			dx := sign(s.B.X - s.A.X)
			dy := sign(s.B.Y - s.A.Y)
			prev := s.A
			add(prev)
			for p := s.A; p != s.B; {
				p = p.Add(dx, dy)
				union(prev, p)
				prev = p
			}
		}
		// All terminals in one component.
		add(terms[0])
		root := find(terms[0])
		for _, tm := range terms[1:] {
			add(tm)
			if find(tm) != root {
				t.Fatalf("net %s: terminal %v disconnected", n.Name, tm)
			}
		}
	}
}

// TestSegmentsAxisAlignedAndLayered: horizontal on M2, vertical on M3.
func TestSegmentsAxisAlignedAndLayered(t *testing.T) {
	lay := routed(t, 2, 60)
	for _, r := range lay.Routes {
		for _, s := range r.Segs {
			if s.A.X != s.B.X && s.A.Y != s.B.Y {
				t.Fatalf("net %s: diagonal segment %+v", r.Net.Name, s)
			}
			if s.Horizontal() && s.Layer != M2 {
				t.Errorf("net %s: horizontal segment on %v", r.Net.Name, s.Layer)
			}
			if !s.Horizontal() && s.A != s.B && s.Layer != M3 {
				t.Errorf("net %s: vertical segment on %v", r.Net.Name, s.Layer)
			}
			if s.Len() == 0 {
				t.Errorf("net %s: zero-length segment", r.Net.Name)
			}
		}
	}
}

// TestOccupancyMatchesSegments: every segment cell appears in the occupancy
// map for its net.
func TestOccupancyMatchesSegments(t *testing.T) {
	lay := routed(t, 3, 60)
	for _, r := range lay.Routes {
		for _, s := range r.Segs {
			dx := sign(s.B.X - s.A.X)
			dy := sign(s.B.Y - s.A.Y)
			for p := s.A; ; p = p.Add(dx, dy) {
				if lay.P.Die.Contains(p) {
					found := false
					for _, id := range lay.At(s.Layer, p) {
						if id == int32(r.Net.ID) {
							found = true
							break
						}
					}
					if !found {
						t.Fatalf("net %s: cell %v on %v missing from occupancy", r.Net.Name, p, s.Layer)
					}
				}
				if p == s.B {
					break
				}
			}
		}
	}
}

// TestViasAtLayerTransitions: every multi-segment connection has vias, and
// via layer pairs are adjacent.
func TestViasSane(t *testing.T) {
	lay := routed(t, 4, 60)
	totalVias := 0
	for _, r := range lay.Routes {
		for _, v := range r.Vias {
			if v.From >= v.To {
				t.Errorf("net %s: via stack order %v->%v", r.Net.Name, v.From, v.To)
			}
			totalVias++
		}
		if len(r.Segs) > 0 && len(r.Vias) == 0 {
			t.Errorf("net %s: segments without any pin via", r.Net.Name)
		}
	}
	if totalVias == 0 {
		t.Fatal("routed design has no vias at all")
	}
	if lay.TotalVias() != totalVias {
		t.Errorf("TotalVias = %d, counted %d", lay.TotalVias(), totalVias)
	}
}

func TestWirelengthPositiveAndDeterministic(t *testing.T) {
	l1 := routed(t, 5, 70)
	l2 := routed(t, 5, 70)
	if l1.TotalWireLength() == 0 {
		t.Fatal("zero wirelength")
	}
	if l1.TotalWireLength() != l2.TotalWireLength() || l1.TotalVias() != l2.TotalVias() {
		t.Error("routing not deterministic")
	}
}

// TestCongestionAwareness: the router must spread nets — the maximum
// occupancy should stay moderate on an uncongested design.
func TestCongestionAwareness(t *testing.T) {
	lay := routed(t, 6, 100)
	maxOcc := 0
	for li := 0; li < 2; li++ {
		for y := range lay.Occ[li] {
			for x := range lay.Occ[li][y] {
				if n := len(lay.Occ[li][y][x]); n > maxOcc {
					maxOcc = n
				}
			}
		}
	}
	if maxOcc == 0 {
		t.Fatal("no occupancy recorded")
	}
	if maxOcc > 40 {
		t.Errorf("max occupancy %d looks degenerate", maxOcc)
	}
}

func dedupTestPts(pts []geom.Pt) []geom.Pt {
	seen := map[geom.Pt]bool{}
	var out []geom.Pt
	for _, p := range pts {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

// TestOccCellsMatchesOccupancy: the maintained occupied-cell list is exactly
// the non-empty occupancy cells, in scan order (row-major, ascending),
// without duplicates — the contract the DFM bridge scan's merged walk and
// the density index both build on.
func TestOccCellsMatchesOccupancy(t *testing.T) {
	for _, seed := range []int64{1, 5, 13} {
		lay := routed(t, seed, 90)
		die := lay.P.Die
		for li := 0; li < 2; li++ {
			var want []geom.Pt
			for y := die.Y0; y < die.Y1; y++ {
				for x := die.X0; x < die.X1; x++ {
					if len(lay.Occ[li][y][x]) > 0 {
						want = append(want, geom.Pt{X: x, Y: y})
					}
				}
			}
			got := lay.OccCells(li)
			if len(got) != len(want) {
				t.Fatalf("seed %d layer %d: %d occupied cells, want %d", seed, li, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed %d layer %d cell %d: %v, want %v", seed, li, i, got[i], want[i])
				}
			}
		}
	}
}

// BenchmarkRoute measures the full router on a mid-size placement,
// allocations included — the routing half of the physical hot path.
func BenchmarkRoute(b *testing.B) {
	c := randomCircuit(b, 7, 260)
	p, err := place.Place(c, 0.70, 7)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Route(p)
	}
}
