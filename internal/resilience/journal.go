package resilience

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Journal envelope. A journal is one header line followed by a JSON payload:
//
//	dfmresyn-journal v<version> <kind> <payload-bytes> <crc32-ieee-hex>\n
//	{ ... payload ... }
//
// The header carries everything needed to reject a journal without trusting
// its payload: a magic string (not a journal at all), a schema version (an
// old or future writer), a kind (the wrong journal fed to the wrong loader),
// the exact payload length (truncation and trailing garbage), and a CRC-32
// of the payload (bit flips). Decode checks them in that order and fails
// with a distinct sentinel per class, so a resume can tell "this file is not
// what you think it is" apart from "this file is damaged".
//
// Writes are atomic: the envelope is written to a temp file in the target
// directory, synced, and renamed over the destination — a crash mid-write
// leaves either the previous journal or none, never a torn one.

// journalMagic identifies a dfmresyn journal file.
const journalMagic = "dfmresyn-journal"

// Journal error classes. All four wrap into loader errors; a loader caller
// distinguishes them with errors.Is.
var (
	// ErrCorrupt reports a journal that is structurally damaged: bad magic,
	// malformed header, truncated or padded payload, CRC mismatch, or
	// unparsable JSON.
	ErrCorrupt = errors.New("resilience: journal corrupt")
	// ErrVersion reports a structurally sound journal written under a
	// different schema version.
	ErrVersion = errors.New("resilience: journal version mismatch")
	// ErrKind reports a structurally sound journal of a different kind.
	ErrKind = errors.New("resilience: journal kind mismatch")
)

// Encode serializes payload into a framed journal of the given kind and
// schema version. kind must be a single non-empty token (no whitespace).
func Encode(kind string, version int, payload any) ([]byte, error) {
	if kind == "" || strings.ContainsAny(kind, " \t\n\r") {
		return nil, fmt.Errorf("resilience: invalid journal kind %q", kind)
	}
	body, err := json.Marshal(payload)
	if err != nil {
		return nil, fmt.Errorf("resilience: encode journal: %w", err)
	}
	header := fmt.Sprintf("%s v%d %s %d %08x\n",
		journalMagic, version, kind, len(body), crc32.ChecksumIEEE(body))
	return append([]byte(header), body...), nil
}

// Decode validates a framed journal against the expected kind and version
// and unmarshals its payload. It never panics on arbitrary input: every
// malformation maps to ErrCorrupt, ErrKind or ErrVersion.
func Decode(data []byte, kind string, version int, payload any) error {
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return fmt.Errorf("%w: missing header line", ErrCorrupt)
	}
	fields := strings.Fields(string(data[:nl]))
	if len(fields) != 5 {
		return fmt.Errorf("%w: header has %d fields, want 5", ErrCorrupt, len(fields))
	}
	if fields[0] != journalMagic {
		return fmt.Errorf("%w: bad magic %q", ErrCorrupt, fields[0])
	}
	ver, err := strconv.Atoi(strings.TrimPrefix(fields[1], "v"))
	if err != nil || !strings.HasPrefix(fields[1], "v") {
		return fmt.Errorf("%w: bad version field %q", ErrCorrupt, fields[1])
	}
	if fields[2] != kind {
		return fmt.Errorf("%w: journal is %q, want %q", ErrKind, fields[2], kind)
	}
	if ver != version {
		return fmt.Errorf("%w: journal is v%d, this build reads v%d", ErrVersion, ver, version)
	}
	n, err := strconv.Atoi(fields[3])
	if err != nil || n < 0 {
		return fmt.Errorf("%w: bad length field %q", ErrCorrupt, fields[3])
	}
	sum, err := strconv.ParseUint(fields[4], 16, 32)
	if err != nil {
		return fmt.Errorf("%w: bad checksum field %q", ErrCorrupt, fields[4])
	}
	body := data[nl+1:]
	if len(body) != n {
		return fmt.Errorf("%w: payload is %d bytes, header says %d (truncated or padded)", ErrCorrupt, len(body), n)
	}
	if got := crc32.ChecksumIEEE(body); got != uint32(sum) {
		return fmt.Errorf("%w: payload checksum %08x, header says %08x", ErrCorrupt, got, uint32(sum))
	}
	if err := json.Unmarshal(body, payload); err != nil {
		return fmt.Errorf("%w: payload: %v", ErrCorrupt, err)
	}
	return nil
}

// WriteJournal atomically replaces path with a framed journal: the bytes go
// to a temp file in path's directory, are fsynced, and renamed into place.
func WriteJournal(path, kind string, version int, payload any) error {
	data, err := Encode(kind, version, payload)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("resilience: write journal: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("resilience: write journal: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("resilience: write journal: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("resilience: write journal: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("resilience: write journal: %w", err)
	}
	return nil
}

// LoadJournal reads and decodes the journal at path.
func LoadJournal(path, kind string, version int, payload any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("resilience: load journal: %w", err)
	}
	if err := Decode(data, kind, version, payload); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}
