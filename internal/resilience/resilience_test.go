package resilience

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type payload struct {
	Name  string
	Count int
	Bits  []int
}

// TestDoneErrNilSafe: a nil context is never done and never errors — the
// guarantee every un-plumbed call site in the pipeline relies on.
func TestDoneErrNilSafe(t *testing.T) {
	if Done(nil) {
		t.Error("nil context reported done")
	}
	if err := Err(nil); err != nil {
		t.Errorf("nil context reported error %v", err)
	}
	if Done(context.Background()) {
		t.Error("live context reported done")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if !Done(ctx) {
		t.Error("cancelled context reported live")
	}
	if err := Err(ctx); !errors.Is(err, ErrInterrupted) {
		t.Errorf("cancelled context: Err = %v, want ErrInterrupted", err)
	}
}

// TestJournalRoundTrip: Encode → Decode reproduces the payload, and the
// written envelope is stable (same payload, same bytes).
func TestJournalRoundTrip(t *testing.T) {
	in := payload{Name: "x", Count: 3, Bits: []int{5, 1, 4}}
	data, err := Encode("testkind", 2, in)
	if err != nil {
		t.Fatal(err)
	}
	data2, err := Encode("testkind", 2, in)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Error("encoding the same payload twice produced different bytes")
	}
	var out payload
	if err := Decode(data, "testkind", 2, &out); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(out) != fmt.Sprint(in) {
		t.Errorf("round trip got %+v, want %+v", out, in)
	}
}

// TestJournalErrorClasses: each malformation maps to its own sentinel, so a
// resume can report "wrong file" and "damaged file" differently.
func TestJournalErrorClasses(t *testing.T) {
	good, err := Encode("testkind", 2, payload{Name: "y"})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrCorrupt},
		{"no newline", []byte("dfmresyn-journal v2 testkind 4 deadbeef"), ErrCorrupt},
		{"bad magic", []byte("notajournal v2 testkind 2 00000000\n{}"), ErrCorrupt},
		{"bad version field", []byte("dfmresyn-journal two testkind 2 00000000\n{}"), ErrCorrupt},
		{"wrong kind", func() []byte { d, _ := Encode("otherkind", 2, payload{}); return d }(), ErrKind},
		{"wrong version", func() []byte { d, _ := Encode("testkind", 3, payload{}); return d }(), ErrVersion},
		{"truncated", good[:len(good)-2], ErrCorrupt},
		{"padded", append(append([]byte{}, good...), 'x'), ErrCorrupt},
		{"bit flip", func() []byte {
			d := append([]byte{}, good...)
			d[len(d)-3] ^= 0x40
			return d
		}(), ErrCorrupt},
		{"bad json length-consistent", func() []byte {
			d, _ := Encode("testkind", 2, 12345) // valid frame, payload not an object
			return d
		}(), ErrCorrupt},
	}
	for _, tc := range cases {
		var out payload
		err := Decode(tc.data, "testkind", 2, &out)
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: Decode = %v, want %v", tc.name, err, tc.want)
		}
	}
}

// TestWriteJournalAtomic: WriteJournal replaces the destination in one
// rename — after any successful write the file decodes, a rewrite leaves no
// temp droppings, and an existing journal is only ever replaced whole.
func TestWriteJournalAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	if err := WriteJournal(path, "testkind", 2, payload{Count: 1}); err != nil {
		t.Fatal(err)
	}
	if err := WriteJournal(path, "testkind", 2, payload{Count: 2}); err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := LoadJournal(path, "testkind", 2, &out); err != nil {
		t.Fatal(err)
	}
	if out.Count != 2 {
		t.Errorf("loaded Count = %d, want the rewritten 2", out.Count)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("temp file %s left behind", e.Name())
		}
	}
	if len(entries) != 1 {
		t.Errorf("directory holds %d entries, want just the journal", len(entries))
	}
}

// TestLoadJournalMissing: a missing file is an I/O error, not a corrupt
// journal — the caller should see "no such file", not "damaged".
func TestLoadJournalMissing(t *testing.T) {
	var out payload
	err := LoadJournal(filepath.Join(t.TempDir(), "absent.ckpt"), "testkind", 2, &out)
	if err == nil {
		t.Fatal("loading a missing journal succeeded")
	}
	if errors.Is(err, ErrCorrupt) {
		t.Errorf("missing file misclassified as corrupt: %v", err)
	}
}

// FuzzDecode: arbitrary bytes must never panic the decoder, and every
// rejection must carry one of the three sentinels. Inputs that decode are
// re-encodable to the identical frame.
func FuzzDecode(f *testing.F) {
	seed, _ := Encode("testkind", 2, payload{Name: "s", Count: 7, Bits: []int{1, 2}})
	f.Add(seed)
	f.Add([]byte("dfmresyn-journal v2 testkind 2 00000000\n{}"))
	f.Add([]byte(""))
	f.Add([]byte("dfmresyn-journal"))
	f.Fuzz(func(t *testing.T, data []byte) {
		var out payload
		err := Decode(data, "testkind", 2, &out)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrKind) && !errors.Is(err, ErrVersion) {
				t.Fatalf("rejection without a sentinel: %v", err)
			}
			return
		}
		if _, err := Encode("testkind", 2, out); err != nil {
			t.Fatalf("accepted payload fails re-encode: %v", err)
		}
	})
}
