// Package resilience is the failure-handling substrate of the pipeline:
// nil-safe cancellation helpers shared by every stage, the sentinel error
// that classifies an interrupted run, and a versioned, checksummed journal
// format used by the resynthesis sweep's checkpoint/resume machinery.
//
// The package deliberately contains no policy. What is retried, what is
// quarantined and what is fatal is decided by the layers that own the work
// (par, atpg, resyn); resilience only supplies the mechanisms they share,
// so the failure model documented in DESIGN.md §12 has one vocabulary.
package resilience

import (
	"context"
	"errors"
	"fmt"
)

// ErrInterrupted classifies a run stopped by cancellation — a signal, a
// deadline, or a simulated kill — at a deterministic boundary. Callers that
// see it hold a consistent partial result: every iteration committed before
// the interruption is intact and, when journaling is on, durable.
var ErrInterrupted = errors.New("resilience: interrupted")

// Done reports whether ctx is cancelled. A nil context is never done, so
// un-plumbed callers pay one nil check and no behavioural change.
func Done(ctx context.Context) bool {
	if ctx == nil {
		return false
	}
	select {
	case <-ctx.Done():
		return true
	default:
		return false
	}
}

// Err returns nil while ctx is live and an ErrInterrupted-wrapped error
// once it is cancelled, quoting the context's own cause (Canceled or
// DeadlineExceeded). Nil contexts are always live.
func Err(ctx context.Context) error {
	if !Done(ctx) {
		return nil
	}
	return fmt.Errorf("%w: %v", ErrInterrupted, context.Cause(ctx))
}
