package switchsim

import (
	"testing"

	"dfmresyn/internal/library"
)

// TestGoodEvalMatchesTruthTables validates every cell's transistor netlist:
// the defect-free switch-level output must equal the declared logic function
// on every input assignment.
func TestGoodEvalMatchesTruthTables(t *testing.T) {
	lib := library.OSU018Like()
	for _, c := range lib.Cells {
		for a := uint(0); a < 1<<uint(c.NumInputs()); a++ {
			got := GoodOutput(c, a)
			want := V0
			if c.Eval(a) == 1 {
				want = V1
			}
			if got != want {
				t.Errorf("%s(%0*b): switch-level %v, truth table %v",
					c.Name, c.NumInputs(), a, got, want)
			}
		}
	}
}

func TestInverterStuckOpenIsDynamic(t *testing.T) {
	lib := library.OSU018Like()
	inv := lib.ByName("INVX1")
	// Transistor 0 is the NMOS (nmos added first by invTo).
	b := Derive(inv, Defect{Kind: TransStuckOpen, T: 0})
	if b.StaticMask != 0 {
		t.Errorf("NMOS stuck-open should have no static detection, mask=%b", b.StaticMask)
	}
	// Pair (A=0 then A=1): output floats at retained 1, good output is 0.
	if b.PairMask[0]>>1&1 != 1 {
		t.Errorf("pair (0,1) should detect NMOS stuck-open, PairMask=%v", b.PairMask)
	}
	// Pair (1,1): output floated from unknown state, no detection.
	if b.PairMask[1]>>1&1 != 0 {
		t.Errorf("pair (1,1) should not detect (previous output was already wrong-unknown)")
	}
	if !b.Detectable() {
		t.Error("stuck-open must be detectable")
	}
}

func TestInverterStuckOnIsStatic(t *testing.T) {
	lib := library.OSU018Like()
	inv := lib.ByName("INVX1")
	// NMOS stuck-on: with A=0 both networks drive; fight resolves to 0,
	// good output is 1 -> static detection at assignment 0.
	b := Derive(inv, Defect{Kind: TransStuckOn, T: 0})
	if b.StaticMask != 0b01 {
		t.Errorf("NMOS stuck-on static mask = %b, want 01", b.StaticMask)
	}
}

func TestNand2OutputBridgeToGround(t *testing.T) {
	lib := library.OSU018Like()
	nand := lib.ByName("NAND2X1")
	b := Derive(nand, Defect{Kind: NodeBridge, NodeA: library.Out, NodeB: library.GND})
	// Good NAND2 output is 1 for assignments 0,1,2 — all become 0.
	if b.StaticMask != 0b0111 {
		t.Errorf("bridge-to-ground static mask = %04b, want 0111", b.StaticMask)
	}
}

func TestOutputOpenPairBehavior(t *testing.T) {
	lib := library.OSU018Like()
	inv := lib.ByName("INVX1")
	b := Derive(inv, Defect{Kind: OutputOpen})
	if b.StaticMask != 0 {
		t.Error("output open must be purely dynamic")
	}
	// good(0)=1, good(1)=0: pairs (0,1) and (1,0) detect; (0,0),(1,1) do not.
	if b.PairMask[0] != 0b10 || b.PairMask[1] != 0b01 {
		t.Errorf("output-open pair masks = %b,%b; want 10,01", b.PairMask[0], b.PairMask[1])
	}
}

func TestTermBreakEquivalentToStuckOpenForInverter(t *testing.T) {
	lib := library.OSU018Like()
	inv := lib.ByName("INVX1")
	open := Derive(inv, Defect{Kind: TransStuckOpen, T: 0})
	brk := Derive(inv, Defect{Kind: TermBreak, T: 0, Term: 0})
	if open.StaticMask != brk.StaticMask {
		t.Errorf("static masks differ: %b vs %b", open.StaticMask, brk.StaticMask)
	}
	for p := range open.PairMask {
		if open.PairMask[p] != brk.PairMask[p] {
			t.Errorf("pair masks differ at prev=%d: %b vs %b", p, open.PairMask[p], brk.PairMask[p])
		}
	}
}

// TestEveryStuckOpenDetectableInSeriesParallelCells: in fully complementary
// static CMOS (no transmission gates), every transistor stuck-open changes
// behavior for some pattern pair. Transmission-gate cells (MUX2X1) are
// exempt: one device of a t-gate is redundant in the ternary model.
func TestEveryStuckOpenDetectableInSeriesParallelCells(t *testing.T) {
	lib := library.OSU018Like()
	for _, c := range lib.Cells {
		if c.Name == "MUX2X1" {
			continue
		}
		for ti := range c.Transistors {
			b := Derive(c, Defect{Kind: TransStuckOpen, T: ti})
			if !b.Detectable() {
				t.Errorf("%s T%d stuck-open undetectable at cell level", c.Name, ti)
			}
		}
	}
}

// TestEveryStuckOnHasDefinedBehavior: stuck-on defects either change the
// logic (static detection) or leave it identical; they must never make the
// good-side simulation diverge (the Derive call must terminate and produce
// masks covering only real differences).
func TestEveryStuckOnBehaviorSound(t *testing.T) {
	lib := library.OSU018Like()
	for _, c := range lib.Cells {
		for ti := range c.Transistors {
			d := Defect{Kind: TransStuckOn, T: ti}
			b := Derive(c, d)
			// Every statically-flagged assignment must really differ.
			for a := uint(0); a < 1<<uint(c.NumInputs()); a++ {
				if b.StaticMask>>a&1 == 0 {
					continue
				}
				out, _ := Eval(c, d, a, nil)
				if out == VX {
					t.Errorf("%s T%d stuck-on: assignment %b flagged static but output is X", c.Name, ti, a)
				}
				good := V0
				if c.Eval(a) == 1 {
					good = V1
				}
				if out == good {
					t.Errorf("%s T%d stuck-on: assignment %b flagged static but output matches good", c.Name, ti, a)
				}
			}
		}
	}
}

// TestPairMaskExcludesStatic: by construction the dynamic mask never repeats
// statically-detected assignments.
func TestPairMaskExcludesStatic(t *testing.T) {
	lib := library.OSU018Like()
	for _, c := range lib.Cells {
		for ti := range c.Transistors {
			for _, kind := range []DefectKind{TransStuckOpen, TransStuckOn} {
				b := Derive(c, Defect{Kind: kind, T: ti})
				for _, pm := range b.PairMask {
					if pm&b.StaticMask != 0 {
						t.Fatalf("%s T%d %v: pair mask overlaps static mask", c.Name, ti, kind)
					}
				}
			}
		}
	}
}

func TestNandStackNodeBridge(t *testing.T) {
	lib := library.OSU018Like()
	nand := lib.ByName("NAND2X1")
	// Node 3 is the series-stack node between the two NMOS devices.
	// Bridging it to ground lets input A pull the output down alone:
	// at A=1,B=0 the output fights and resolves 0 while good is 1.
	b := Derive(nand, Defect{Kind: NodeBridge, NodeA: 3, NodeB: library.GND})
	if b.StaticMask>>1&1 != 1 {
		t.Errorf("stack-node bridge must statically detect at A=1,B=0; mask=%04b", b.StaticMask)
	}
	if b.StaticMask>>3&1 != 0 {
		t.Errorf("A=1,B=1 output is 0 in both circuits; mask=%04b", b.StaticMask)
	}
}

// TestFeedbackBridgePessimism: bridging a buffer's internal inverted node to
// its output creates a two-inverter fight; the ternary solver must settle on
// X (sound pessimism), never a wrong definite claim of detection.
func TestFeedbackBridgePessimism(t *testing.T) {
	lib := library.OSU018Like()
	buf := lib.ByName("BUFX2")
	d := Defect{Kind: NodeBridge, NodeA: 3, NodeB: library.Out}
	for a := uint(0); a < 2; a++ {
		out, _ := Eval(buf, d, a, nil)
		if out != VX {
			t.Errorf("feedback bridge at A=%d: out=%v, want X", a, out)
		}
	}
	b := Derive(buf, d)
	if b.StaticMask != 0 {
		t.Errorf("feedback bridge must not claim static detection; mask=%b", b.StaticMask)
	}
}

func TestDefectString(t *testing.T) {
	cases := map[string]Defect{
		"trans-stuck-open(T3)": {Kind: TransStuckOpen, T: 3},
		"trans-stuck-on(T0)":   {Kind: TransStuckOn, T: 0},
		"node-bridge(n2,n4)":   {Kind: NodeBridge, NodeA: 2, NodeB: 4},
		"term-break(T1.1)":     {Kind: TermBreak, T: 1, Term: 1},
		"output-open":          {Kind: OutputOpen},
	}
	for want, d := range cases {
		if got := d.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestStaticCount(t *testing.T) {
	b := Behavior{Inputs: 3, StaticMask: 0b1011}
	if got := b.StaticCount(); got != 3 {
		t.Errorf("StaticCount = %d, want 3", got)
	}
}

// TestChargeRetentionChaining: with an explicit prev state, a floating
// output must keep the supplied value.
func TestChargeRetentionChaining(t *testing.T) {
	lib := library.OSU018Like()
	inv := lib.ByName("INVX1")
	d := Defect{Kind: TransStuckOpen, T: 0} // NMOS open
	// First settle at A=0: output drives 1.
	out0, nodes0 := Eval(inv, d, 0, nil)
	if out0 != V1 {
		t.Fatalf("defective INV at A=0: out=%v, want 1", out0)
	}
	// Then A=1: both networks off, output floats, retains 1.
	out1, _ := Eval(inv, d, 1, nodes0)
	if out1 != V1 {
		t.Errorf("defective INV at A=1 after A=0: out=%v, want retained 1", out1)
	}
	// Without retention state it must be unknown.
	outX, _ := Eval(inv, d, 1, nil)
	if outX != VX {
		t.Errorf("defective INV at A=1 cold: out=%v, want X", outX)
	}
}
