// Package switchsim is a switch-level simulator for standard cells. It
// evaluates a cell's transistor netlist — optionally with an injected
// manufacturing defect — and derives the cell-aware (UDFM) behavior of each
// defect: the set of input assignments (and assignment pairs, for
// charge-retention defects such as transistor stuck-opens) under which the
// defective cell's output differs from the good output.
//
// This replaces the switch-level translation step of Kim et al. / Sinha et
// al. that the paper's flow performs with commercial tooling.
package switchsim

import (
	"fmt"

	"dfmresyn/internal/library"
)

// Val is a ternary node value.
type Val uint8

// Ternary node values.
const (
	VX Val = iota // unknown / intermediate
	V0
	V1
)

// String returns "0", "1" or "X".
func (v Val) String() string {
	switch v {
	case V0:
		return "0"
	case V1:
		return "1"
	}
	return "X"
}

// DefectKind classifies an injected cell-internal defect.
type DefectKind uint8

// The defect kinds the DFM translation produces.
const (
	// TransStuckOpen: the transistor never conducts (broken source/drain
	// contact, broken poly, open via on the gate net). Detection is
	// typically sequence-dependent (charge retention).
	TransStuckOpen DefectKind = iota
	// TransStuckOn: the transistor always conducts (gate-oxide short,
	// bridged gate). May cause drive fights, resolved 0-dominant.
	TransStuckOn
	// NodeBridge: two cell-internal nodes are hard-shorted (metal1
	// spacing marginality).
	NodeBridge
	// TermBreak: one channel terminal of a transistor is disconnected
	// from its node (broken diffusion contact). Equivalent to a
	// stuck-open for the affected path.
	TermBreak
	// OutputOpen: the cell output pin is disconnected from the output
	// node (open pin via). The external net floats and retains its
	// previous value: a purely dynamic defect.
	OutputOpen
)

// String names the defect kind.
func (k DefectKind) String() string {
	switch k {
	case TransStuckOpen:
		return "trans-stuck-open"
	case TransStuckOn:
		return "trans-stuck-on"
	case NodeBridge:
		return "node-bridge"
	case TermBreak:
		return "term-break"
	case OutputOpen:
		return "output-open"
	}
	return fmt.Sprintf("defect(%d)", uint8(k))
}

// Defect is one injected cell-internal defect.
type Defect struct {
	Kind  DefectKind
	T     int // transistor index (TransStuckOpen, TransStuckOn, TermBreak)
	Term  int // 0 = terminal A, 1 = terminal B (TermBreak)
	NodeA int // bridge partners (NodeBridge)
	NodeB int
}

// String renders the defect compactly.
func (d Defect) String() string {
	switch d.Kind {
	case NodeBridge:
		return fmt.Sprintf("%s(n%d,n%d)", d.Kind, d.NodeA, d.NodeB)
	case OutputOpen:
		return d.Kind.String()
	case TermBreak:
		return fmt.Sprintf("%s(T%d.%d)", d.Kind, d.T, d.Term)
	default:
		return fmt.Sprintf("%s(T%d)", d.Kind, d.T)
	}
}

// None is the sentinel "no defect" used for good-cell evaluation.
var None = Defect{Kind: 255}

type tstate uint8

const (
	tOff tstate = iota
	tOn
	tMaybe
)

// maxIters bounds the fixpoint iteration over multi-stage cells.
const maxIters = 16

// edge is one conduction edge in the channel graph: a transistor channel
// (t >= 0) or a hard bridge (t == -1).
type edge struct{ a, b, t int }

// Eval evaluates the cell under the given full input assignment and defect.
// prev supplies per-node retained charge for floating nodes (nil means all
// unknown). It returns the output value and the final node state (length
// cell.NumNodes) for chaining two-pattern simulations.
//
// Drive fights (simultaneous definite paths to VDD and GND) resolve to 0,
// modeling the typically stronger NMOS pull-down network; this makes
// stuck-on defect behavior deterministic and is documented in DESIGN.md.
func Eval(c *library.Cell, d Defect, assignment uint, prev []Val) (Val, []Val) {
	nn := c.NumNodes
	vals := make([]Val, nn)
	vals[library.VDD] = V1
	vals[library.GND] = V0
	for n := 2; n < nn; n++ {
		vals[n] = VX
	}

	// Effective transistor channel endpoints, accounting for TermBreak
	// (the broken terminal is re-pointed at a fresh isolated node) and
	// OutputOpen (handled in Derive, which never calls Eval for it).
	edges := make([]edge, 0, len(c.Transistors)+1)
	extraNode := nn
	total := nn
	for ti, tr := range c.Transistors {
		a, b := tr.A, tr.B
		if d.Kind == TermBreak && d.T == ti {
			if d.Term == 0 {
				a = extraNode
			} else {
				b = extraNode
			}
			total = nn + 1
		}
		edges = append(edges, edge{a, b, ti})
	}
	if total > nn {
		vals = append(vals, VX)
	}
	// A bridge is an always-on edge.
	if d.Kind == NodeBridge {
		edges = append(edges, edge{d.NodeA, d.NodeB, -1})
	}

	gateVal := func(s library.Signal) Val {
		if s.Input >= 0 {
			if assignment>>uint(s.Input)&1 == 1 {
				return V1
			}
			return V0
		}
		return vals[s.Node]
	}

	states := make([]tstate, len(edges))
	newVals := make([]Val, len(vals))
	for iter := 0; iter < maxIters; iter++ {
		// Transistor conduction states.
		for ei, e := range edges {
			if e.t < 0 {
				states[ei] = tOn // bridge
				continue
			}
			switch d.Kind {
			case TransStuckOpen:
				if d.T == e.t {
					states[ei] = tOff
					continue
				}
			case TransStuckOn:
				if d.T == e.t {
					states[ei] = tOn
					continue
				}
			}
			tr := c.Transistors[e.t]
			g := gateVal(tr.Gate)
			switch {
			case g == VX:
				states[ei] = tMaybe
			case (g == V1) != tr.PMOS:
				states[ei] = tOn
			default:
				states[ei] = tOff
			}
		}

		// Reachability from the rails.
		def1 := reach(len(vals), edges, states, library.VDD, false)
		pos1 := reach(len(vals), edges, states, library.VDD, true)
		def0 := reach(len(vals), edges, states, library.GND, false)
		pos0 := reach(len(vals), edges, states, library.GND, true)

		copy(newVals, vals)
		for n := 2; n < len(vals); n++ {
			switch {
			case def1[n] && def0[n]:
				newVals[n] = V0 // drive fight: 0-dominant
			case def1[n] && !pos0[n]:
				newVals[n] = V1
			case def0[n] && !pos1[n]:
				newVals[n] = V0
			case !pos1[n] && !pos0[n]:
				// Floating: retain charge if known.
				if prev != nil && n < len(prev) {
					newVals[n] = prev[n]
				} else {
					newVals[n] = VX
				}
			default:
				newVals[n] = VX
			}
		}
		changed := false
		for n := range vals {
			if vals[n] != newVals[n] {
				changed = true
			}
		}
		copy(vals, newVals)
		if !changed {
			break
		}
	}

	out := vals[library.Out]
	final := make([]Val, nn)
	copy(final, vals[:nn])
	return out, final
}

// reach computes rail reachability over conducting transistors. With maybe
// set, tMaybe edges also conduct (possible-reachability); otherwise only
// definite tOn edges conduct.
func reach(n int, edges []edge, states []tstate, from int, maybe bool) []bool {
	seen := make([]bool, n)
	seen[from] = true
	queue := []int{from}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for ei, e := range edges {
			if states[ei] == tOff || (states[ei] == tMaybe && !maybe) {
				continue
			}
			var next int
			switch cur {
			case e.a:
				next = e.b
			case e.b:
				next = e.a
			default:
				continue
			}
			// The rails are infinite sources; paths do not pass
			// *through* the opposite rail.
			if next == library.VDD || next == library.GND {
				continue
			}
			if !seen[next] {
				seen[next] = true
				queue = append(queue, next)
			}
		}
	}
	return seen
}

// GoodOutput evaluates the defect-free cell at the switch level.
func GoodOutput(c *library.Cell, assignment uint) Val {
	v, _ := Eval(c, None, assignment, nil)
	return v
}

// Behavior is the derived cell-aware (UDFM) behavior of a defect.
//
// StaticMask bit a is set when applying input assignment a to the settled
// defective cell produces a solid output value opposite to the good output.
//
// PairMask[p] bit a is set when the two-pattern sequence (p, a) produces a
// wrong solid output under assignment a thanks to charge retention, for
// assignments a NOT already in StaticMask. Purely dynamic defects (e.g.
// stuck-opens) have an empty StaticMask and rely entirely on PairMask.
type Behavior struct {
	Inputs     int
	StaticMask uint64
	PairMask   []uint64
}

// Detectable reports whether the defect changes cell behavior at all.
func (b Behavior) Detectable() bool {
	if b.StaticMask != 0 {
		return true
	}
	for _, m := range b.PairMask {
		if m != 0 {
			return true
		}
	}
	return false
}

// StaticCount returns the number of statically-detecting assignments.
func (b Behavior) StaticCount() int {
	n := 0
	for a := uint(0); a < 1<<uint(b.Inputs); a++ {
		if b.StaticMask>>a&1 == 1 {
			n++
		}
	}
	return n
}

// Derive computes the Behavior of defect d in cell c by exhaustive
// switch-level simulation over all input assignments and assignment pairs.
func Derive(c *library.Cell, d Defect) Behavior {
	n := c.NumInputs()
	na := uint(1) << uint(n)
	b := Behavior{Inputs: n, PairMask: make([]uint64, na)}

	good := make([]Val, na)
	for a := uint(0); a < na; a++ {
		good[a] = Val(c.Eval(a) + 1) // V0=1, V1=2 encoding matches Val
	}

	if d.Kind == OutputOpen {
		// The cell computes correctly but the pin floats at the old
		// value: pair (p, a) detects when good(p) != good(a).
		for p := uint(0); p < na; p++ {
			for a := uint(0); a < na; a++ {
				if good[p] != good[a] {
					b.PairMask[p] |= 1 << a
				}
			}
		}
		return b
	}

	// Static behavior: settle the defective cell from an unknown state.
	faultyOut := make([]Val, na)
	faultyNodes := make([][]Val, na)
	for a := uint(0); a < na; a++ {
		out, nodes := Eval(c, d, a, nil)
		faultyOut[a] = out
		faultyNodes[a] = nodes
		if out != VX && out != good[a] {
			b.StaticMask |= 1 << a
		}
	}

	// Dynamic behavior: apply p (defective cell settles, possibly with
	// floating nodes at unknown), then a with charge retention.
	for p := uint(0); p < na; p++ {
		for a := uint(0); a < na; a++ {
			if b.StaticMask>>a&1 == 1 {
				continue // already statically detected
			}
			out, _ := Eval(c, d, a, faultyNodes[p])
			if out != VX && out != good[a] {
				b.PairMask[p] |= 1 << a
			}
		}
	}
	return b
}
