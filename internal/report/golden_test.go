package report

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dfmresyn/internal/flow"
)

var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// fixedMetrics are hand-picked values exercising every column, so the
// golden file pins the exact table layout without running the flow.
func fixedMetrics() flow.Metrics {
	return flow.Metrics{
		FIn: 1200, FEx: 345, UIn: 67, UEx: 8, GU: 42, Gmax: 9,
		F: 1545, U: 75, Aborted: 13, T: 210, Cov: 0.9514,
		Smax: 31, PctSmaxU: 41.33, PctSmaxAll: 2.01,
		SmaxI: 28, PctSmaxI: 90.32,
		Delay: 3.25, Power: 145.7, Area: 812.5,
	}
}

func TestTablesGolden(t *testing.T) {
	m := fixedMetrics()
	var b strings.Builder
	b.WriteString(TableIHeader() + "\n")
	b.WriteString(TableIRow("aes_core", m) + "\n")
	b.WriteString(TableIIHeader() + "\n")
	b.WriteString(TableIIOrigRow("aes_core", m) + "\n")
	b.WriteString(PerfRow("aes_core", 4, 12.345, 0.873, 1545, 1312, 407, 0, 53, 1284) + "\n")
	// Zero lookups (verdict cache disabled): the cache column must read
	// n/a, not a fake 0.0% hit rate. Likewise staticProven < 0 renders
	// "static off" — the screen disabled, not a zero-yield screen — and
	// satEscalations < 0 renders "sat off" next to the aborted tail the
	// disabled tier leaves behind.
	b.WriteString(PerfRow("aes_core", 4, 12.345, 0, 0, 0, -1, 13, -1, 0) + "\n")
	// A screen/tier that ran but had nothing to do still reports zeros.
	b.WriteString(PerfRow("aes_core", 4, 12.345, 0, 0, 0, 0, 0, 0, 0) + "\n")
	b.WriteString(IncrRow("aes_core", 17, 4210, 390) + "\n")
	b.WriteString(IncrRow("empty", 0, 0, 0) + "\n")
	b.WriteString(ResilienceRow("aes_core", 12, 1, 3, 5) + "\n")
	// The quiet run: all-zero counters must still render every field, so
	// log scrapers get a stable schema.
	b.WriteString(ResilienceRow("empty", 0, 0, 0, 0) + "\n")
	var a Averages
	b.WriteString(a.Row() + "\n")
	checkGolden(t, "tables.golden", []byte(b.String()))
}
