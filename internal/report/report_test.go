package report

import (
	"strings"
	"testing"

	"dfmresyn/internal/bench"
	"dfmresyn/internal/flow"
	"dfmresyn/internal/geom"
	"dfmresyn/internal/resyn"
)

func smallResult(t *testing.T) (*resyn.Result, flow.Metrics) {
	t.Helper()
	env := flow.NewEnv()
	env.ATPG.RandomBlocks = 3
	env.ATPG.BacktrackLimit = 1000
	c := bench.MustBuild("sparc_spu", env.Lib)
	orig, err := env.Analyze(c, geom.Rect{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := resyn.RunFrom(env, orig, resyn.Options{MaxQ: 1, MaxItersPhase: 3})
	if err != nil {
		t.Fatal(err)
	}
	return r, orig.Metrics()
}

func TestTableIFormat(t *testing.T) {
	_, m := smallResult(t)
	header := TableIHeader()
	row := TableIRow("sparc_spu", m)
	for _, col := range []string{"F_In", "F_Ex", "U_In", "Smax", "%Smax_U"} {
		if !strings.Contains(header, col) {
			t.Errorf("header missing %q", col)
		}
	}
	if !strings.Contains(row, "sparc_spu") {
		t.Error("row missing circuit name")
	}
	if len(strings.Fields(row)) != 9 {
		t.Errorf("row has %d fields, want 9: %q", len(strings.Fields(row)), row)
	}
}

func TestTableIIFormat(t *testing.T) {
	r, m := smallResult(t)
	orig := TableIIOrigRow("sparc_spu", m)
	resynRow := TableIIResynRow(r, 12.3)
	if !strings.Contains(orig, "orig") || !strings.Contains(orig, "100%") {
		t.Errorf("orig row malformed: %q", orig)
	}
	if !strings.Contains(resynRow, "%") {
		t.Errorf("resyn row missing relative percentages: %q", resynRow)
	}
	if !strings.Contains(TableIIHeader(), "MaxInc") {
		t.Error("header missing MaxInc")
	}
}

func TestFig2Trace(t *testing.T) {
	r, _ := smallResult(t)
	tr := Fig2Trace(r)
	if !strings.Contains(tr, "original") {
		t.Errorf("trace missing original row: %q", tr)
	}
	lines := strings.Count(tr, "\n")
	if lines != len(r.Trace)+1 {
		t.Errorf("trace has %d lines, want %d", lines, len(r.Trace)+1)
	}
}

func TestAverages(t *testing.T) {
	r, _ := smallResult(t)
	var a Averages
	if !strings.Contains(a.Row(), "no circuits") {
		t.Error("empty averages must say so")
	}
	a.Add(r, 10)
	a.Add(r, 20)
	row := a.Row()
	if !strings.Contains(row, "average") {
		t.Errorf("averages row malformed: %q", row)
	}
	if !strings.Contains(row, "15.00") {
		t.Errorf("averaged rtime missing (want 15.00): %q", row)
	}
}
