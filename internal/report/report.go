// Package report formats the paper's tables (Table I, Table II) and the
// Fig. 2 iteration trace from analyzed designs, for the command-line tools
// and the benchmark harness.
package report

import (
	"fmt"
	"strings"

	"dfmresyn/internal/flow"
	"dfmresyn/internal/obs"
	"dfmresyn/internal/resyn"
)

// TableIHeader returns the header of Table I (clustered undetectable
// faults).
func TableIHeader() string {
	return fmt.Sprintf("%-12s %8s %8s %7s %7s %6s %6s %7s %9s",
		"Circuit", "F_In", "F_Ex", "U_In", "U_Ex", "G_U", "Gmax", "Smax", "%Smax_U")
}

// TableIRow formats one Table I row.
func TableIRow(name string, m flow.Metrics) string {
	return fmt.Sprintf("%-12s %8d %8d %7d %7d %6d %6d %7d %8.2f%%",
		name, m.FIn, m.FEx, m.UIn, m.UEx, m.GU, m.Gmax, m.Smax, m.PctSmaxU)
}

// TableIIHeader returns the header of Table II (experimental results). Abt
// is the count of aborted (unproven) faults — faults Cov silently counts as
// covered; it reads 0 whenever the SAT escalation tier is on.
func TableIIHeader() string {
	return fmt.Sprintf("%-12s %-5s %8s %6s %5s %8s %5s %6s %10s %7s %9s %8s %8s %6s",
		"Circuit", "MaxInc", "F", "U", "Abt", "Cov", "T", "Smax", "%Smax_all", "Smax_I", "%Smax_I", "Delay", "Power", "Rtime")
}

// TableIIOrigRow formats the "orig" row for a circuit.
func TableIIOrigRow(name string, m flow.Metrics) string {
	return fmt.Sprintf("%-12s %-5s %8d %6d %5d %7.2f%% %5d %6d %9.2f%% %7d %8.2f%% %7s %8s %6d",
		name, "orig", m.F, m.U, m.Aborted, 100*m.Cov, m.T, m.Smax, m.PctSmaxAll, m.SmaxI, m.PctSmaxI, "100%", "100%", 1)
}

// TableIIResynRow formats the resynthesized row: delay/power relative to
// the original, Rtime relative to one synthesis+PD+ATPG pass.
func TableIIResynRow(r *resyn.Result, rtime float64) string {
	mo := r.Orig.Metrics()
	mf := r.Final.Metrics()
	q := r.BestQ
	inc := "none"
	if q >= 0 {
		inc = fmt.Sprintf("%d%%", q)
	}
	return fmt.Sprintf("%-12s %-5s %8d %6d %5d %7.2f%% %5d %6d %9.2f%% %7d %8.2f%% %7.2f%% %7.2f%% %6.2f",
		"", inc, mf.F, mf.U, mf.Aborted, 100*mf.Cov, mf.T, mf.Smax, mf.PctSmaxAll, mf.SmaxI, mf.PctSmaxI,
		100*mf.Delay/mo.Delay, 100*mf.Power/mo.Power, rtime)
}

// PerfRow formats the engine-performance line printed under a circuit's
// Table II rows: the worker count, the resynthesis sweep's cumulative ATPG
// wall time, the verdict-cache behaviour across the q sweep (hit rate
// over lookups, and the entries the sweep populated), and the static
// implication screen's yield — faults proven undetectable with zero PODEM
// searches, which is exactly the number of complete searches (each with
// its backtrack tail) the screen avoided. With zero lookups — the verdict
// cache disabled or never consulted — the cache column reads "n/a"
// instead of a misleading 0.0% hit rate; likewise the static column reads
// "off" when the screen is disabled (staticProven < 0) rather than
// conflating "off" with "nothing proven". The aborted count and the SAT
// escalation tier's work (escalations and solver conflicts; "sat off" when
// the tier is disabled, signalled by satEscalations < 0) round out the row:
// together they show whether hard faults were left unproven or escalated to
// a definitive verdict. Plain parameters keep the formatting decoupled from
// the cache and engine implementations.
func PerfRow(name string, workers int, atpgSeconds, hitRate float64, lookups, entries, staticProven,
	aborted, satEscalations int, satConflicts int64) string {
	cache := "cache   n/a"
	if lookups > 0 {
		cache = fmt.Sprintf("cache %5.1f%% of %d lookups, %d entries", 100*hitRate, lookups, entries)
	}
	static := "static off"
	if staticProven >= 0 {
		static = fmt.Sprintf("static %d proved/0-search", staticProven)
	}
	sat := "sat off"
	if satEscalations >= 0 {
		sat = fmt.Sprintf("sat %d esc/%d conf", satEscalations, satConflicts)
	}
	return fmt.Sprintf("%-12s perf  workers=%-3d atpg=%8.3fs  %s  %s  aborted=%d  %s",
		name, workers, atpgSeconds, cache, static, aborted, sat)
}

// IncrRow renders the incremental physical re-analysis activity of a
// resynthesis run: how many PDesign() calls ran incrementally and what
// fraction of net routes they replayed instead of re-routing.
func IncrRow(name string, analyses, netsReused, netsRerouted int) string {
	reuse := 0.0
	if total := netsReused + netsRerouted; total > 0 {
		reuse = 100 * float64(netsReused) / float64(total)
	}
	return fmt.Sprintf("%-12s incr  analyses=%-4d nets reused=%d rerouted=%d (%5.1f%% reuse)",
		name, analyses, netsReused, netsRerouted, reuse)
}

// ResilienceRow renders what a run survived: worker panics recovered by
// the retry ladder, faults quarantined after a second panic, cache entries
// dropped by the integrity check, and journal commits replayed by a resume.
// The row is diagnostic — it goes to stderr in the CLI so that a run under
// chaos injection keeps byte-identical stdout tables.
func ResilienceRow(name string, recovered, quarantined int, corrupt uint64, replayed int) string {
	return fmt.Sprintf("%-12s resil recovered=%-4d quarantined=%-4d cache_dropped=%-4d replayed=%d",
		name, recovered, quarantined, corrupt, replayed)
}

// ProvRow renders a provenance breakdown next to a circuit's Table II rows:
// which engine tier decided the verdicts of one analysis (label "orig" for
// the baseline analysis, "final" for the cache-bypassed signoff). Both
// breakdowns are pure functions of (circuit, configuration) — the orig
// analysis runs cacheless and the signoff bypasses the cache — so prov rows
// are identical across worker counts, resumes and chaos injection; they
// shift only when a tier is reconfigured (-staticproof, -satescalate).
func ProvRow(name, which string, t obs.TierCounts) string {
	return fmt.Sprintf("%-12s prov  %-5s cache=%-4d implic=%-4d collateral=%-4d podem=%-4d sat=%-4d sat-memo=%d",
		name, which, t.Cache, t.Implic, t.Collateral, t.Podem, t.SAT, t.SATMemo)
}

// SlowRow renders one of a run's costliest searches (the ledger's top-K
// slow-search block). Wall micros vary run to run, so the row is diagnostic
// and belongs on stderr, like ResilienceRow.
func SlowRow(name string, rank int, s obs.SlowSearch) string {
	return fmt.Sprintf("%-12s slow  #%d fault=%-6d tier=%-10s backtracks=%-7d us=%d",
		name, rank, s.Fault, s.Tier, s.Backtracks, s.Micros)
}

// Fig2Trace renders the per-iteration cluster evolution (the series behind
// Fig. 2): for each accepted iteration, the phase, the excluded cell, and
// the resulting U and S_max.
func Fig2Trace(r *resyn.Result) string {
	var b strings.Builder
	mo := r.Orig.Metrics()
	fmt.Fprintf(&b, "iter  0: q=- phase=- excl=%-9s U=%-6d Smax=%-6d (original)\n", "-", mo.U, mo.Smax)
	for i, tr := range r.Trace {
		via := ""
		if tr.ViaBack {
			via = " (via backtracking)"
		}
		fmt.Fprintf(&b, "iter %2d: q=%d phase=%d excl=%-9s U=%-6d Smax=%-6d%s\n",
			i+1, tr.Q, tr.Phase, tr.Excluded, tr.U, tr.Smax, via)
	}
	return b.String()
}

// Averages accumulates Table II columns across circuits, mirroring the
// paper's "average" row.
type Averages struct {
	n                                  int
	f, u, abt, cov, t, smax, pctAll    float64
	smaxI                              float64
	pctI, delayRel, powerRel, rtimeRel float64
}

// Add accumulates one circuit's orig/final pair.
func (a *Averages) Add(r *resyn.Result, rtime float64) {
	mo := r.Orig.Metrics()
	mf := r.Final.Metrics()
	a.n++
	a.f += float64(mf.F)
	a.u += float64(mf.U)
	a.abt += float64(mf.Aborted)
	a.cov += mf.Cov
	a.t += float64(mf.T)
	a.smax += float64(mf.Smax)
	a.pctAll += mf.PctSmaxAll
	a.smaxI += float64(mf.SmaxI)
	a.pctI += mf.PctSmaxI
	a.delayRel += mf.Delay / mo.Delay
	a.powerRel += mf.Power / mo.Power
	a.rtimeRel += rtime
}

// Row renders the average row.
func (a *Averages) Row() string {
	if a.n == 0 {
		return "average      (no circuits)"
	}
	n := float64(a.n)
	return fmt.Sprintf("%-12s %-5s %8.1f %6.1f %5.1f %7.2f%% %5.1f %6.1f %9.2f%% %7.1f %8.2f%% %7.2f%% %7.2f%% %6.2f",
		"average", "resyn", a.f/n, a.u/n, a.abt/n, 100*a.cov/n, a.t/n, a.smax/n, a.pctAll/n, a.smaxI/n, a.pctI/n,
		100*a.delayRel/n, 100*a.powerRel/n, a.rtimeRel/n)
}
