package vstore

import (
	"testing"
)

// FuzzVstore drives the segment decoder on arbitrary bytes. Invariants: it
// never panics, goodLen is always a valid truncation point within the input,
// and re-decoding the healthy prefix reproduces exactly the same entries
// (truncating at goodLen is what Open does to heal, so that prefix must be
// stable).
func FuzzVstore(f *testing.F) {
	f.Add([]byte(segHeader))
	f.Add([]byte("garbage"))
	seed := appendRecord([]byte(segHeader), mkEntries(5, 1)[0])
	f.Add(seed)
	f.Add(seed[:len(seed)-3])
	flipped := append([]byte(nil), seed...)
	flipped[len(segHeader)+4] ^= 0x80
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, data []byte) {
		entries, goodLen, ok := DecodeSegment(data)
		if !ok {
			if goodLen != 0 || entries != nil {
				t.Fatalf("rejected segment returned goodLen=%d entries=%d", goodLen, len(entries))
			}
			return
		}
		if goodLen < len(segHeader) || goodLen > len(data) {
			t.Fatalf("goodLen %d outside [%d, %d]", goodLen, len(segHeader), len(data))
		}
		for _, e := range entries {
			if e.Key.Zero() {
				t.Fatal("decoder released a zero-key entry")
			}
			if len(e.Init) > maxVecLen || len(e.Vec) > maxVecLen {
				t.Fatal("decoder released an oversized vector")
			}
		}
		// Healing stability: the healthy prefix decodes to the same entries
		// with nothing further to truncate.
		entries2, goodLen2, ok2 := DecodeSegment(data[:goodLen])
		if !ok2 || goodLen2 != goodLen || len(entries2) != len(entries) {
			t.Fatalf("healed prefix unstable: ok=%v goodLen=%d/%d entries=%d/%d",
				ok2, goodLen2, goodLen, len(entries2), len(entries))
		}
		for i := range entries {
			if entries[i].Key != entries2[i].Key || entries[i].Status != entries2[i].Status {
				t.Fatal("healed prefix decoded different entries")
			}
		}
	})
}
