package vstore

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"dfmresyn/internal/fault"
	"dfmresyn/internal/fcache"
)

// mkEntries builds n distinct deterministic entries: even indices detected
// (with witness vectors), odd undetectable.
func mkEntries(base uint64, n int) []fcache.ExportedEntry {
	out := make([]fcache.ExportedEntry, 0, n)
	for i := 0; i < n; i++ {
		k := fcache.Key{base + uint64(i) + 1, ^(base + uint64(i))}
		e := fcache.ExportedEntry{Key: k, Status: fault.Undetectable}
		if i%2 == 0 {
			e.Status = fault.Detected
			e.Vec = []uint8{uint8(i), uint8(i >> 8), 1, 0, 1}
			if i%4 == 0 {
				e.Init = []uint8{0, 1, uint8(i)}
			}
		}
		out = append(out, e)
	}
	return out
}

func entriesEqual(a, b []fcache.ExportedEntry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Key != b[i].Key || a[i].Status != b[i].Status ||
			!bytes.Equal(a[i].Init, b[i].Init) || !bytes.Equal(a[i].Vec, b[i].Vec) {
			return false
		}
	}
	return true
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	in := mkEntries(100, 37)
	added, err := s.Merge(in)
	if err != nil || added != 37 {
		t.Fatalf("Merge = %d, %v; want 37, nil", added, err)
	}
	// Duplicate merge is a no-op.
	if added, _ := s.Merge(in); added != 0 {
		t.Fatalf("duplicate Merge added %d entries", added)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 37 {
		t.Fatalf("reopened store has %d entries, want 37", s2.Len())
	}
	if st := s2.Stats(); st.HealedRecords != 0 || st.QuarantinedSegs != 0 {
		t.Fatalf("clean reopen reported healing: %+v", st)
	}
	// Export is sorted-key deterministic and content-identical.
	got := s2.Export()
	want := fcache.New()
	want.Import(in)
	if !entriesEqual(got, want.Export()) {
		t.Fatal("round-tripped entries differ from the originals")
	}
}

func TestPrewarmCountsWarmHits(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	in := mkEntries(7, 5)
	if _, err := s.Merge(in); err != nil {
		t.Fatal(err)
	}
	c := fcache.New()
	if n := s.Prewarm(c); n != 5 {
		t.Fatalf("Prewarm = %d, want 5", n)
	}
	if _, ok := c.Lookup(in[1].Key); !ok {
		t.Fatal("prewarmed entry missed")
	}
	if got := c.Stats().WarmHits; got != 1 {
		t.Fatalf("WarmHits = %d, want 1", got)
	}
	// A fresh store-less cache never reports warm hits.
	c2 := fcache.New()
	c2.Import(in)
	c2.Lookup(in[1].Key)
	if got := c2.Stats().WarmHits; got != 0 {
		t.Fatalf("cold cache WarmHits = %d, want 0", got)
	}
}

func TestTornTailHeals(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	in := mkEntries(40, 9)
	if _, err := s.Merge(in); err != nil {
		t.Fatal(err)
	}
	s.Close()

	seg := filepath.Join(dir, "seg-000001.vseg")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last record mid-bytes, as a crash mid-append would.
	if err := os.WriteFile(seg, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 8 {
		t.Fatalf("healed store has %d entries, want 8 (one torn record dropped)", s2.Len())
	}
	st := s2.Stats()
	if st.HealedRecords != 1 || st.HealedBytes == 0 {
		t.Fatalf("heal stats = %+v, want 1 healed record", st)
	}
	// The dropped record can be re-merged and survives the next reopen.
	if added, _ := s2.Merge(in); added != 1 {
		t.Fatalf("re-merge after heal added %d, want 1", added)
	}
	s2.Close()
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if s3.Len() != 9 {
		t.Fatalf("store after heal+re-merge has %d entries, want 9", s3.Len())
	}
	if st := s3.Stats(); st.HealedRecords != 0 {
		t.Fatalf("second reopen healed again: %+v", st)
	}
}

func TestCorruptMidSegmentDropsSuffix(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	in := mkEntries(300, 6)
	if _, err := s.Merge(in); err != nil {
		t.Fatal(err)
	}
	s.Close()

	seg := filepath.Join(dir, "seg-000001.vseg")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte early in the record stream: everything from the damaged
	// record on is dropped (append-only format; no resync heuristics).
	data[len(segHeader)+5] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 0 {
		t.Fatalf("store kept %d entries after first-record corruption, want 0", s2.Len())
	}
	if st := s2.Stats(); st.HealedRecords != 1 {
		t.Fatalf("heal stats = %+v", st)
	}
	// The survivors were truncated away on disk; re-merge repopulates.
	if added, _ := s2.Merge(in); added != 6 {
		t.Fatal("re-merge after mid-segment corruption failed")
	}
}

func TestBadHeaderQuarantines(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Merge(mkEntries(9000, 3)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	seg := filepath.Join(dir, "seg-000001.vseg")
	if err := os.WriteFile(seg, []byte("not a segment at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 0 {
		t.Fatalf("store trusted a quarantined segment: %d entries", s2.Len())
	}
	if st := s2.Stats(); st.QuarantinedSegs != 1 {
		t.Fatalf("stats = %+v, want 1 quarantined segment", st)
	}
	if _, err := os.Stat(seg + ".quarantine"); err != nil {
		t.Fatalf("quarantined segment not preserved: %v", err)
	}
	// The store keeps working after quarantine.
	if added, _ := s2.Merge(mkEntries(9000, 3)); added != 3 {
		t.Fatal("merge after quarantine failed")
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenLimit(dir, 256) // tiny bound: rotate every few records
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := s.Merge(mkEntries(uint64(1000*(i+1)), 4)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.vseg"))
	if len(segs) < 2 {
		t.Fatalf("no rotation happened: %v", segs)
	}
	s2, err := OpenLimit(dir, 256)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 32 {
		t.Fatalf("rotated store has %d entries, want 32", s2.Len())
	}
}

func TestSingleWriterLock(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); !errors.Is(err, ErrLocked) {
		t.Fatalf("second Open = %v, want ErrLocked", err)
	}
	s.Close()
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("Open after Close = %v", err)
	}
	s2.Close()
}
