// Package vstore is the persistent, content-addressed fault-verdict store:
// fcache's 128-bit structural cone keys and per-entry CRC integrity, grown
// into an append-only on-disk segment format shared across jobs and
// processes. A warm fleet imports the store into each job's verdict cache
// before analysis (Prewarm → fcache.ImportWarm) and appends the job's
// freshly computed verdicts afterwards (Merge), so proofs paid for once are
// skipped by every later job that submits a structurally similar design.
//
// Soundness leans on exactly the properties that make fcache's reuse policy
// sound (see that package's doc): Undetectable entries are semantic facts
// about a labeled cone, and Detected entries carry a witness vector that the
// consumer replays — a stale or colliding entry fails to detect and the
// fault falls back to PODEM. The store therefore never needs invalidation;
// it only ever grows, and damage is dropped, never trusted:
//
//   - Every record carries a magic, explicit lengths, and a CRC-32 over its
//     content. Decoding stops at the first damaged record and Open truncates
//     the segment back to its last intact byte — a torn tail from a crash
//     mid-append heals on the next open, losing only the torn record(s),
//     which the next job simply recomputes.
//   - A segment whose header is unreadable is quarantined aside wholesale
//     (renamed, not deleted) and its entries are recomputed over time.
//   - A single-writer flock serializes processes: one process owns the store
//     directory at a time; a second opener fails fast with ErrLocked rather
//     than interleaving appends.
//
// Segments rotate at a size bound so no single file grows unboundedly and a
// quarantined segment bounds the damage. Within a process the store is
// goroutine-safe.
package vstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"syscall"

	"dfmresyn/internal/fault"
	"dfmresyn/internal/fcache"
)

// segHeader identifies a store segment and its schema version. Bump the
// version when the record layout changes: old segments then quarantine
// instead of decoding wrong.
const segHeader = "dfmvseg v1\n"

// recMagic starts every record, so a decoder landing on damaged bytes fails
// immediately instead of misreading lengths from garbage.
const recMagic = uint16(0xD51E)

// maxVecLen bounds the witness-vector lengths a decoder will allocate for.
// It is far above any real circuit's PI count and low enough that a damaged
// length field cannot balloon memory.
const maxVecLen = 1 << 20

// DefaultMaxSegBytes is the rotation bound: when the tail segment exceeds
// it, the next Merge starts a new segment.
const DefaultMaxSegBytes = 16 << 20

// ErrLocked reports that another process holds the store.
var ErrLocked = errors.New("vstore: store is locked by another process")

// Stats is a snapshot of the store's counters.
type Stats struct {
	// Segments / Entries describe the store as loaded plus this process's
	// appends.
	Segments int
	Entries  int
	// Appended counts entries this process merged in.
	Appended int
	// HealedRecords / HealedBytes count torn or corrupt trailing records
	// truncated away at Open; QuarantinedSegs counts segments set aside
	// wholesale for an unreadable header.
	HealedRecords   int
	HealedBytes     int64
	QuarantinedSegs int
	// Prewarmed totals the entries handed to caches via Prewarm.
	Prewarmed int
}

// Store is an open verdict store: the on-disk segments under one directory,
// an in-memory key index, and the exclusive inter-process lock.
type Store struct {
	mu       sync.Mutex
	dir      string
	lock     *os.File
	tail     *os.File // current append segment
	tailN    int      // its ordinal
	tailSize int64
	maxSeg   int64
	entries  map[fcache.Key]fcache.ExportedEntry
	order    []fcache.Key // insertion-ordered keys (segments are scanned sorted)
	stats    Stats
}

// Open opens (creating if needed) the store directory, takes the exclusive
// lock, loads every segment — healing torn tails and quarantining unreadable
// segments — and leaves the store ready for Merge/Prewarm. A second process
// opening the same directory gets ErrLocked.
func Open(dir string) (*Store, error) {
	return OpenLimit(dir, DefaultMaxSegBytes)
}

// OpenLimit is Open with an explicit segment-rotation bound (tests use a
// tiny bound to exercise rotation).
func OpenLimit(dir string, maxSegBytes int64) (*Store, error) {
	if maxSegBytes <= 0 {
		maxSegBytes = DefaultMaxSegBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("vstore: %w", err)
	}
	lock, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("vstore: %w", err)
	}
	if err := syscall.Flock(int(lock.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		lock.Close()
		return nil, fmt.Errorf("%w (%s)", ErrLocked, dir)
	}
	s := &Store{
		dir:     dir,
		lock:    lock,
		maxSeg:  maxSegBytes,
		entries: make(map[fcache.Key]fcache.ExportedEntry),
	}
	if err := s.load(); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// segPath names segment n.
func (s *Store) segPath(n int) string {
	return filepath.Join(s.dir, fmt.Sprintf("seg-%06d.vseg", n))
}

// load scans the segment files in ordinal order, healing as it goes, and
// opens the highest one for appending.
func (s *Store) load() error {
	names, err := filepath.Glob(filepath.Join(s.dir, "seg-*.vseg"))
	if err != nil {
		return fmt.Errorf("vstore: %w", err)
	}
	sort.Strings(names)
	maxN := 0
	for _, name := range names {
		var n int
		if _, err := fmt.Sscanf(filepath.Base(name), "seg-%06d.vseg", &n); err != nil {
			continue // foreign file; leave it alone
		}
		if n > maxN {
			maxN = n
		}
		if err := s.loadSegment(name); err != nil {
			return err
		}
	}
	if maxN == 0 {
		return s.startSegment(1)
	}
	// Append to the highest segment (possibly just truncated back to a
	// healthy prefix by loadSegment). If that very segment was quarantined,
	// start a fresh one after it — ordinals never move backwards, so a
	// future un-quarantine cannot collide.
	f, err := os.OpenFile(s.segPath(maxN), os.O_WRONLY|os.O_APPEND, 0o644)
	if os.IsNotExist(err) {
		return s.startSegment(maxN + 1)
	}
	if err != nil {
		return fmt.Errorf("vstore: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("vstore: %w", err)
	}
	s.tail, s.tailN, s.tailSize = f, maxN, st.Size()
	return nil
}

// loadSegment reads one segment, indexes its intact records, truncates a
// damaged tail in place, and quarantines the file wholesale when even the
// header is wrong.
func (s *Store) loadSegment(name string) error {
	data, err := os.ReadFile(name)
	if err != nil {
		return fmt.Errorf("vstore: %w", err)
	}
	entries, goodLen, ok := DecodeSegment(data)
	if !ok {
		// Not a v1 segment at all: set it aside for a human (or a future
		// reader version) instead of deleting evidence, and recompute.
		s.stats.QuarantinedSegs++
		if err := os.Rename(name, name+".quarantine"); err != nil {
			return fmt.Errorf("vstore: quarantine %s: %w", name, err)
		}
		return nil
	}
	if goodLen < len(data) {
		// Torn or corrupt tail: drop it. The lost records are recomputed by
		// the next job that needs them — dropping is always sound, trusting
		// damaged bytes never is.
		s.stats.HealedRecords++
		s.stats.HealedBytes += int64(len(data) - goodLen)
		if err := os.Truncate(name, int64(goodLen)); err != nil {
			return fmt.Errorf("vstore: heal %s: %w", name, err)
		}
	}
	s.stats.Segments++
	for _, e := range entries {
		if _, dup := s.entries[e.Key]; dup {
			continue
		}
		s.entries[e.Key] = e
		s.order = append(s.order, e.Key)
	}
	return nil
}

// startSegment creates segment n (which must not exist) and makes it the
// append tail.
func (s *Store) startSegment(n int) error {
	f, err := os.OpenFile(s.segPath(n), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("vstore: %w", err)
	}
	if _, err := f.WriteString(segHeader); err != nil {
		f.Close()
		return fmt.Errorf("vstore: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("vstore: %w", err)
	}
	if s.tail != nil {
		s.tail.Close()
	}
	s.tail, s.tailN, s.tailSize = f, n, int64(len(segHeader))
	s.stats.Segments++
	return nil
}

// appendRecord encodes one entry onto buf.
func appendRecord(buf []byte, e fcache.ExportedEntry) []byte {
	start := len(buf)
	buf = binary.LittleEndian.AppendUint16(buf, recMagic)
	buf = append(buf, byte(e.Status))
	buf = binary.LittleEndian.AppendUint64(buf, e.Key[0])
	buf = binary.LittleEndian.AppendUint64(buf, e.Key[1])
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(e.Init)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(e.Vec)))
	buf = append(buf, e.Init...)
	buf = append(buf, e.Vec...)
	sum := crc32.ChecksumIEEE(buf[start:])
	return binary.LittleEndian.AppendUint32(buf, sum)
}

// decodeRecord decodes one record at data[off:]. It returns the entry, the
// offset just past the record, and whether the record was intact. It never
// panics on arbitrary bytes (pinned by FuzzVstore).
func decodeRecord(data []byte, off int) (fcache.ExportedEntry, int, bool) {
	var e fcache.ExportedEntry
	const fixed = 2 + 1 + 8 + 8 + 4 + 4 // magic, status, key, lengths
	if off+fixed > len(data) {
		return e, 0, false
	}
	if binary.LittleEndian.Uint16(data[off:]) != recMagic {
		return e, 0, false
	}
	st := fault.Status(data[off+2])
	if st != fault.Detected && st != fault.Undetectable {
		return e, 0, false
	}
	e.Status = st
	e.Key[0] = binary.LittleEndian.Uint64(data[off+3:])
	e.Key[1] = binary.LittleEndian.Uint64(data[off+11:])
	initLen := binary.LittleEndian.Uint32(data[off+19:])
	vecLen := binary.LittleEndian.Uint32(data[off+23:])
	if initLen > maxVecLen || vecLen > maxVecLen {
		return e, 0, false
	}
	end := off + fixed + int(initLen) + int(vecLen)
	if end+4 > len(data) {
		return e, 0, false
	}
	want := binary.LittleEndian.Uint32(data[end:])
	if crc32.ChecksumIEEE(data[off:end]) != want {
		return e, 0, false
	}
	if e.Key.Zero() {
		return e, 0, false
	}
	if initLen > 0 {
		e.Init = append([]uint8(nil), data[off+fixed:off+fixed+int(initLen)]...)
	}
	if vecLen > 0 {
		e.Vec = append([]uint8(nil), data[off+fixed+int(initLen):end]...)
	}
	return e, end + 4, true
}

// DecodeSegment decodes a segment image. ok is false when the header is not
// this version's (the caller quarantines the file). Otherwise it returns
// every intact record plus goodLen, the byte offset of the first damaged
// record (== len(data) for a fully intact segment) — the truncation point
// for self-healing. Exported for the fuzz harness: it must never panic and
// never return a record whose checksum did not verify.
func DecodeSegment(data []byte) (entries []fcache.ExportedEntry, goodLen int, ok bool) {
	if len(data) < len(segHeader) || string(data[:len(segHeader)]) != segHeader {
		return nil, 0, false
	}
	off := len(segHeader)
	for off < len(data) {
		e, next, recOK := decodeRecord(data, off)
		if !recOK {
			return entries, off, true
		}
		entries = append(entries, e)
		off = next
	}
	return entries, off, true
}

// Merge appends every entry whose key the store has not seen, fsyncs the
// tail, and rotates segments past the size bound. It returns how many
// entries were appended. Entries with invalid statuses or zero keys are
// skipped (the decoder would reject them anyway).
func (s *Store) Merge(entries []fcache.ExportedEntry) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var buf []byte
	added := 0
	for _, e := range entries {
		if e.Key.Zero() {
			continue
		}
		if e.Status != fault.Detected && e.Status != fault.Undetectable {
			continue
		}
		if _, dup := s.entries[e.Key]; dup {
			continue
		}
		if int64(len(e.Init))+int64(len(e.Vec)) > maxVecLen {
			continue
		}
		buf = appendRecord(buf, e)
		s.entries[e.Key] = e
		s.order = append(s.order, e.Key)
		added++
	}
	if added == 0 {
		return 0, nil
	}
	if s.tailSize > s.maxSeg {
		if err := s.startSegment(s.tailN + 1); err != nil {
			return 0, err
		}
	}
	if _, err := s.tail.Write(buf); err != nil {
		return 0, fmt.Errorf("vstore: append: %w", err)
	}
	if err := s.tail.Sync(); err != nil {
		return 0, fmt.Errorf("vstore: sync: %w", err)
	}
	s.tailSize += int64(len(buf))
	s.stats.Appended += added
	return added, nil
}

// Export snapshots the store's entries in sorted key order — the same
// deterministic order fcache.Export uses.
func (s *Store) Export() []fcache.ExportedEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := append([]fcache.Key(nil), s.order...)
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	out := make([]fcache.ExportedEntry, 0, len(keys))
	for _, k := range keys {
		out = append(out, s.entries[k])
	}
	return out
}

// Prewarm imports the store's entries into a verdict cache as warm entries
// (hits on them count into fcache.Stats.WarmHits) and returns how many
// landed. An empty store is a free no-op, so a cold fleet's first job runs
// exactly as if no store existed.
func (s *Store) Prewarm(c *fcache.Cache) int {
	n := c.ImportWarm(s.Export())
	s.mu.Lock()
	s.stats.Prewarmed += n
	s.mu.Unlock()
	return n
}

// Len returns the number of distinct keys in the store.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = len(s.entries)
	return st
}

// Close syncs and closes the tail segment and releases the inter-process
// lock. The store must not be used afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	if s.tail != nil {
		if err := s.tail.Sync(); err != nil && first == nil {
			first = err
		}
		if err := s.tail.Close(); err != nil && first == nil {
			first = err
		}
		s.tail = nil
	}
	if s.lock != nil {
		syscall.Flock(int(s.lock.Fd()), syscall.LOCK_UN)
		if err := s.lock.Close(); err != nil && first == nil {
			first = err
		}
		s.lock = nil
	}
	return first
}
