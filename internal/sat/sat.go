// Package sat implements a small, deterministic CDCL SAT solver used as the
// escalation tier behind the PODEM test generator: when a backtrack-limited
// search gives up on a hard fault, the fault's cone is Tseitin-encoded and
// handed to this solver for a definitive satisfiable (test exists) or
// unsatisfiable (fault undetectable) verdict.
//
// The solver is conventional conflict-driven clause learning: two-watched-
// literal unit propagation, first-UIP conflict analysis with non-chronological
// backjumping, and activity-driven decision ordering. Everything is exactly
// deterministic — activity ties break on the lowest variable index, there is
// no randomization, no restarts, and no time-based heuristics — so a given
// clause set always produces the same verdict, the same model, and the same
// statistics, regardless of the host machine or worker scheduling. That
// property is what lets the ATPG engine run escalations inside its parallel
// batches while keeping every table byte-identical at any worker count.
package sat

// Lit is a literal: variable index v shifted left once, with the low bit set
// for the negated polarity. The zero value is the positive literal of
// variable 0.
type Lit int32

// MkLit builds the literal over variable v, negated when neg is true.
func MkLit(v int, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// PosLit builds the literal asserting variable v true when val is 1, false
// when val is 0.
func PosLit(v int, val uint8) Lit { return MkLit(v, val == 0) }

// Var returns the literal's variable index.
func (l Lit) Var() int { return int(l >> 1) }

// Sign reports whether the literal is negated.
func (l Lit) Sign() bool { return l&1 == 1 }

// Neg returns the complementary literal.
func (l Lit) Neg() Lit { return l ^ 1 }

// Stats counts the work one Solve performed (cumulative across calls).
type Stats struct {
	Conflicts    int64
	Decisions    int64
	Propagations int64
	Learned      int64 // learned clauses added
}

const (
	valUnassigned int8 = 0
	valTrue       int8 = 1
	valFalse      int8 = -1
)

// reason sentinel: the assignment is a decision (or a root-level unit).
const noReason int32 = -1

// Solver is a single-use CDCL instance: add variables and clauses, then call
// Solve once. (Repeated Solve calls are permitted and deterministic, but the
// ATPG escalator builds a fresh instance per fault cone.)
type Solver struct {
	clauses  [][]Lit   // problem + learned clauses; first two literals are watched
	watches  [][]int32 // per literal, indices into clauses watching it
	assign   []int8    // per variable
	level    []int32   // per variable, decision level of its assignment
	reason   []int32   // per variable, clause index that implied it, or noReason
	activity []float64 // per variable, VSIDS-style activity
	phase    []int8    // per variable, saved last polarity (valTrue/valFalse)
	trail    []Lit
	trailLim []int32 // trail index at each decision level
	qhead    int

	varInc float64
	unsat  bool // an empty clause was added

	seen    []bool // conflict-analysis scratch
	stats   Stats
	nlearnt int
}

// New returns an empty solver.
func New() *Solver {
	return &Solver{varInc: 1}
}

// NewVar allocates a fresh variable and returns its index.
func (s *Solver) NewVar() int {
	v := len(s.assign)
	s.assign = append(s.assign, valUnassigned)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, noReason)
	s.activity = append(s.activity, 0)
	s.phase = append(s.phase, valFalse)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	return v
}

// NumVars returns the number of allocated variables.
func (s *Solver) NumVars() int { return len(s.assign) }

// value returns the current value of literal l.
func (s *Solver) value(l Lit) int8 {
	v := s.assign[l.Var()]
	if l.Sign() {
		return -v
	}
	return v
}

// AddClause adds a clause over the given literals. Duplicate literals are
// merged and tautologies dropped; an empty clause (or a unit contradicting a
// prior unit) makes the formula trivially unsatisfiable. Clauses must be
// added before Solve.
func (s *Solver) AddClause(lits ...Lit) {
	if s.unsat {
		return
	}
	// Sort-free dedup/tautology scan; clauses here are short (<= ~8 lits).
	out := lits[:0:0]
	for _, l := range lits {
		if s.value(l) == valTrue {
			return // already satisfied by a root-level unit
		}
		if s.value(l) == valFalse {
			continue // falsified at root level: drop the literal
		}
		dup, taut := false, false
		for _, m := range out {
			if m == l {
				dup = true
				break
			}
			if m == l.Neg() {
				taut = true
				break
			}
		}
		if taut {
			return
		}
		if !dup {
			out = append(out, l)
		}
	}
	switch len(out) {
	case 0:
		s.unsat = true
	case 1:
		if !s.enqueue(out[0], noReason) {
			s.unsat = true
			return
		}
		if s.propagate() >= 0 {
			s.unsat = true
		}
	default:
		s.attach(out)
	}
}

// attach stores a clause and watches its first two literals.
func (s *Solver) attach(c []Lit) int32 {
	ci := int32(len(s.clauses))
	s.clauses = append(s.clauses, c)
	s.watches[c[0]] = append(s.watches[c[0]], ci)
	s.watches[c[1]] = append(s.watches[c[1]], ci)
	return ci
}

// enqueue records l as true with the given reason. Returns false when l is
// already false (a conflict the caller must handle).
func (s *Solver) enqueue(l Lit, from int32) bool {
	switch s.value(l) {
	case valTrue:
		return true
	case valFalse:
		return false
	}
	v := l.Var()
	if l.Sign() {
		s.assign[v] = valFalse
	} else {
		s.assign[v] = valTrue
	}
	s.level[v] = int32(len(s.trailLim))
	s.reason[v] = from
	s.trail = append(s.trail, l)
	return true
}

// propagate runs two-watched-literal unit propagation from the queue head.
// It returns the index of a conflicting clause, or -1.
func (s *Solver) propagate() int32 {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead] // p is true; clauses watching ¬p may propagate
		s.qhead++
		s.stats.Propagations++
		np := p.Neg()
		ws := s.watches[np]
		kept := ws[:0]
		for wi := 0; wi < len(ws); wi++ {
			ci := ws[wi]
			c := s.clauses[ci]
			// Normalize: the falsified watch sits at c[1].
			if c[0] == np {
				c[0], c[1] = c[1], c[0]
			}
			if s.value(c[0]) == valTrue {
				kept = append(kept, ci)
				continue
			}
			// Look for a new literal to watch.
			moved := false
			for k := 2; k < len(c); k++ {
				if s.value(c[k]) != valFalse {
					c[1], c[k] = c[k], c[1]
					s.watches[c[1]] = append(s.watches[c[1]], ci)
					moved = true
					break
				}
			}
			if moved {
				continue
			}
			// Unit or conflicting.
			kept = append(kept, ci)
			if !s.enqueue(c[0], ci) {
				// Conflict: keep the remaining watchers and report.
				kept = append(kept, ws[wi+1:]...)
				s.watches[np] = kept
				s.qhead = len(s.trail)
				return ci
			}
		}
		s.watches[np] = kept
	}
	return -1
}

// bumpVar increases a variable's activity, rescaling on overflow.
func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
}

// analyze derives the first-UIP learned clause from a conflict and returns
// it with the backjump level. The learned clause's asserting literal is at
// index 0.
func (s *Solver) analyze(confl int32) ([]Lit, int32) {
	learnt := []Lit{0} // slot 0 reserved for the asserting literal
	counter := 0
	idx := len(s.trail) - 1
	var p Lit
	havep := false
	curLevel := int32(len(s.trailLim))

	for {
		c := s.clauses[confl]
		start := 0
		if havep {
			start = 1 // c[0] is p itself on reason clauses
		}
		for _, q := range c[start:] {
			v := q.Var()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			s.bumpVar(v)
			if s.level[v] == curLevel {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Walk the trail back to the next marked literal.
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		havep = true
		idx--
		v := p.Var()
		s.seen[v] = false
		counter--
		if counter == 0 {
			break
		}
		confl = s.reason[v]
	}
	learnt[0] = p.Neg()

	// Backjump level: the highest level among the non-asserting literals.
	blevel := int32(0)
	swap := 1
	for i := 1; i < len(learnt); i++ {
		if lv := s.level[learnt[i].Var()]; lv > blevel {
			blevel = lv
			swap = i
		}
	}
	if len(learnt) > 1 {
		learnt[1], learnt[swap] = learnt[swap], learnt[1]
	}
	for _, l := range learnt[1:] {
		s.seen[l.Var()] = false
	}
	return learnt, blevel
}

// cancelUntil undoes every assignment above the given decision level.
func (s *Solver) cancelUntil(lvl int32) {
	if int32(len(s.trailLim)) <= lvl {
		return
	}
	bound := int(s.trailLim[lvl])
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := s.trail[i].Var()
		s.phase[v] = s.assign[v]
		s.assign[v] = valUnassigned
		s.reason[v] = noReason
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = bound
}

// pickBranchVar returns the unassigned variable with the highest activity,
// breaking ties on the lowest index (the determinism anchor). Returns -1
// when every variable is assigned.
func (s *Solver) pickBranchVar() int {
	best := -1
	bestAct := -1.0
	for v := 0; v < len(s.assign); v++ {
		if s.assign[v] != valUnassigned && s.activity[v] <= bestAct {
			continue
		}
		if s.assign[v] == valUnassigned && s.activity[v] > bestAct {
			best = v
			bestAct = s.activity[v]
		}
	}
	return best
}

// Solve runs the CDCL search to completion and reports satisfiability. The
// search is complete — there is no conflict or time budget — so false is a
// proof of unsatisfiability. After a true result, Value reads the model.
func (s *Solver) Solve() bool {
	if s.unsat {
		return false
	}
	if confl := s.propagate(); confl >= 0 {
		s.unsat = true
		return false
	}
	for {
		confl := s.propagate()
		if confl >= 0 {
			s.stats.Conflicts++
			if len(s.trailLim) == 0 {
				s.unsat = true
				return false // conflict at root level
			}
			learnt, blevel := s.analyze(confl)
			s.cancelUntil(blevel)
			if len(learnt) == 1 {
				s.enqueue(learnt[0], noReason)
			} else {
				ci := s.attach(learnt)
				s.stats.Learned++
				s.nlearnt++
				s.enqueue(learnt[0], ci)
			}
			s.varInc *= 1 / 0.95 // decay: relatively boost recent activity
			continue
		}
		v := s.pickBranchVar()
		if v < 0 {
			return true // full model
		}
		s.stats.Decisions++
		s.trailLim = append(s.trailLim, int32(len(s.trail)))
		s.enqueue(MkLit(v, s.phase[v] != valTrue), noReason)
	}
}

// Value returns the model value of variable v after a satisfiable Solve.
func (s *Solver) Value(v int) bool { return s.assign[v] == valTrue }

// Stats returns the cumulative search statistics.
func (s *Solver) Stats() Stats { return s.stats }
