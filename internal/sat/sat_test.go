package sat

import (
	"math/rand"
	"testing"
)

// lit builds a literal from a DIMACS-style signed variable number (1-based).
func lit(x int) Lit {
	if x > 0 {
		return MkLit(x-1, false)
	}
	return MkLit(-x-1, true)
}

// solveDimacs builds a solver over the given clauses (signed 1-based vars).
func solveDimacs(nvars int, clauses [][]int) (*Solver, bool) {
	s := New()
	for i := 0; i < nvars; i++ {
		s.NewVar()
	}
	for _, c := range clauses {
		ls := make([]Lit, len(c))
		for i, x := range c {
			ls[i] = lit(x)
		}
		s.AddClause(ls...)
	}
	return s, s.Solve()
}

func TestTrivial(t *testing.T) {
	if _, ok := solveDimacs(1, [][]int{{1}}); !ok {
		t.Fatal("unit clause must be SAT")
	}
	if _, ok := solveDimacs(1, [][]int{{1}, {-1}}); ok {
		t.Fatal("x and !x must be UNSAT")
	}
	if _, ok := solveDimacs(0, [][]int{{}}); ok {
		t.Fatal("empty clause must be UNSAT")
	}
	if _, ok := solveDimacs(2, nil); !ok {
		t.Fatal("empty formula must be SAT")
	}
}

func TestModelSatisfiesClauses(t *testing.T) {
	clauses := [][]int{{1, 2, 3}, {-1, -2}, {-2, -3}, {-1, -3}, {2, 3}}
	s, ok := solveDimacs(3, clauses)
	if !ok {
		t.Fatal("expected SAT")
	}
	for _, c := range clauses {
		sat := false
		for _, x := range c {
			v := s.Value(abs(x) - 1)
			if (x > 0) == v {
				sat = true
				break
			}
		}
		if !sat {
			t.Fatalf("model does not satisfy clause %v", c)
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// TestPigeonhole: PHP(n+1 into n) is a classic UNSAT family that requires
// genuine conflict-driven search (no pure propagation proof exists).
func TestPigeonhole(t *testing.T) {
	for _, holes := range []int{2, 3, 4, 5} {
		pigeons := holes + 1
		v := func(p, h int) int { return p*holes + h + 1 }
		var clauses [][]int
		for p := 0; p < pigeons; p++ {
			var c []int
			for h := 0; h < holes; h++ {
				c = append(c, v(p, h))
			}
			clauses = append(clauses, c)
		}
		for h := 0; h < holes; h++ {
			for p1 := 0; p1 < pigeons; p1++ {
				for p2 := p1 + 1; p2 < pigeons; p2++ {
					clauses = append(clauses, []int{-v(p1, h), -v(p2, h)})
				}
			}
		}
		s, ok := solveDimacs(pigeons*holes, clauses)
		if ok {
			t.Fatalf("PHP(%d,%d) must be UNSAT", pigeons, holes)
		}
		if holes >= 4 && s.Stats().Conflicts == 0 {
			t.Errorf("PHP(%d,%d) solved with zero conflicts — propagation alone cannot prove it", pigeons, holes)
		}
	}
}

// TestRandom3SATAgainstBruteForce cross-checks the CDCL verdict against
// exhaustive enumeration on random 3-SAT instances around the phase
// transition, with a fixed seed for reproducibility.
func TestRandom3SATAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for inst := 0; inst < 200; inst++ {
		n := 4 + rng.Intn(9) // 4..12 vars
		m := int(4.3*float64(n)) + rng.Intn(5)
		clauses := make([][]int, m)
		for i := range clauses {
			c := make([]int, 3)
			for j := range c {
				x := rng.Intn(n) + 1
				if rng.Intn(2) == 1 {
					x = -x
				}
				c[j] = x
			}
			clauses[i] = c
		}
		want := bruteForce(n, clauses)
		s, got := solveDimacs(n, clauses)
		if got != want {
			t.Fatalf("instance %d (n=%d m=%d): CDCL says %v, brute force says %v", inst, n, m, got, want)
		}
		if got {
			for _, c := range clauses {
				sat := false
				for _, x := range c {
					if (x > 0) == s.Value(abs(x)-1) {
						sat = true
						break
					}
				}
				if !sat {
					t.Fatalf("instance %d: model violates clause %v", inst, c)
				}
			}
		}
	}
}

func bruteForce(n int, clauses [][]int) bool {
	for asg := 0; asg < 1<<uint(n); asg++ {
		ok := true
		for _, c := range clauses {
			sat := false
			for _, x := range c {
				bit := asg>>uint(abs(x)-1)&1 == 1
				if (x > 0) == bit {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// TestDeterminism: the same clause set must yield the same model and the
// same statistics on every run (the property the parallel ATPG engine
// relies on).
func TestDeterminism(t *testing.T) {
	build := func() ([]bool, Stats, bool) {
		rng := rand.New(rand.NewSource(42))
		n := 30
		s := New()
		for i := 0; i < n; i++ {
			s.NewVar()
		}
		for i := 0; i < 120; i++ {
			c := make([]Lit, 3)
			for j := range c {
				c[j] = MkLit(rng.Intn(n), rng.Intn(2) == 1)
			}
			s.AddClause(c...)
		}
		ok := s.Solve()
		model := make([]bool, n)
		if ok {
			for v := range model {
				model[v] = s.Value(v)
			}
		}
		return model, s.Stats(), ok
	}
	m1, st1, ok1 := build()
	m2, st2, ok2 := build()
	if ok1 != ok2 || st1 != st2 {
		t.Fatalf("non-deterministic solve: %v/%+v vs %v/%+v", ok1, st1, ok2, st2)
	}
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Fatalf("non-deterministic model at var %d", i)
		}
	}
}

// TestXorChain: an XOR chain forced to an odd parity is UNSAT when the unit
// assignments demand even parity — exercises longer implication chains and
// learned clauses across levels.
func TestXorChain(t *testing.T) {
	// x1 ^ x2 = a, x2 ^ x3 = b ... with units pinning a contradiction.
	n := 12
	s := New()
	vars := make([]int, n)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	// Encode x_i XOR x_{i+1} = true for all i (a cycle of odd length is
	// unsatisfiable: n-1 XOR constraints around a cycle plus the closing
	// constraint force x1 != x1).
	xorTrue := func(a, b int) {
		s.AddClause(MkLit(a, false), MkLit(b, false))
		s.AddClause(MkLit(a, true), MkLit(b, true))
	}
	for i := 0; i+1 < n; i++ {
		xorTrue(vars[i], vars[i+1])
	}
	if !s.Solve() {
		t.Fatal("open xor chain must be SAT")
	}

	s2 := New()
	vars2 := make([]int, 3)
	for i := range vars2 {
		vars2[i] = s2.NewVar()
	}
	xor2 := func(a, b int) {
		s2.AddClause(MkLit(a, false), MkLit(b, false))
		s2.AddClause(MkLit(a, true), MkLit(b, true))
	}
	xor2(vars2[0], vars2[1])
	xor2(vars2[1], vars2[2])
	xor2(vars2[2], vars2[0]) // odd cycle
	if s2.Solve() {
		t.Fatal("odd xor cycle must be UNSAT")
	}
}
