package netlist

import (
	"bytes"
	"strings"
	"testing"

	"dfmresyn/internal/library"
)

// FuzzRead feeds arbitrary text to the netlist parser. Read must never
// panic: malformed input returns an error, and anything it accepts must be
// a consistent circuit that survives Check, Levelize and a Write/Read
// round-trip.
func FuzzRead(f *testing.F) {
	seeds := []string{
		"",
		"circuit c\n",
		"# comment only\n",
		"circuit c\ninput a b\ngate g1 NAND2X1 x a b\noutput x\n",
		"circuit c\ninput a\ngate g1 INVX1 x a\ngate g2 INVX1 y x\noutput y\n",
		"circuit c\ninput a a\n",                                     // duplicate PI
		"circuit c\ninput a\ngate g1 INVX1 a a\n",                    // gate redeclares a PI net
		"circuit c\ninput a\ngate g1 INVX1 x a\ngate g2 INVX1 x a\n", // duplicate out net
		"circuit c\ninput a\ngate g1 NAND2X1 x a\n",                  // arity mismatch
		"circuit c\ninput a\ngate g1 NOPE x a\n",                     // unknown cell
		"circuit c\ninput a\ngate g1 INVX1 x ghost\n",                // undeclared fanin
		"circuit c\noutput ghost\n",                                  // undeclared output
		"circuit\n",                                                  // missing name
		"input a\n",                                                  // input before circuit
		"bogus\n",                                                    // unknown directive
		"circuit c\ninput a\noutput a\noutput a\n",                   // repeated output
		"circuit c\ngate\n",                                          // short gate line
	}
	lib := library.OSU018Like()
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Read(bytes.NewReader(data), lib)
		if err != nil {
			return
		}
		if cerr := c.Check(); cerr != nil {
			t.Fatalf("accepted circuit fails Check: %v\ninput:\n%s", cerr, data)
		}
		c.Levelize() // must not panic: Check proved acyclicity
		var buf bytes.Buffer
		if werr := Write(&buf, c); werr != nil {
			t.Fatalf("write failed: %v", werr)
		}
		c2, rerr := Read(strings.NewReader(buf.String()), lib)
		if rerr != nil {
			t.Fatalf("round-trip re-read failed: %v\nserialized:\n%s", rerr, buf.String())
		}
		if len(c2.Gates) != len(c.Gates) || len(c2.Nets) != len(c.Nets) ||
			len(c2.PIs) != len(c.PIs) || len(c2.POs) != len(c.POs) {
			t.Fatalf("round-trip changed shape: %d/%d gates, %d/%d nets",
				len(c2.Gates), len(c.Gates), len(c2.Nets), len(c.Nets))
		}
	})
}
