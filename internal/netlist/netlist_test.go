package netlist

import (
	"testing"

	"dfmresyn/internal/library"
)

var lib = library.OSU018Like()

// buildSmall constructs:  y = NAND2(AND2(a,b), XOR2(b,c)), z = INV(y-src)
func buildSmall(t *testing.T) (*Circuit, map[string]*Net) {
	t.Helper()
	c := New("small", lib)
	a := c.AddPI("a")
	b := c.AddPI("b")
	ci := c.AddPI("c")
	and := c.AddGate("u_and", lib.ByName("AND2X2"), a, b)
	xor := c.AddGate("u_xor", lib.ByName("XOR2X1"), b, ci)
	y := c.AddGate("u_nand", lib.ByName("NAND2X1"), and, xor)
	z := c.AddGate("u_inv", lib.ByName("INVX1"), y)
	c.MarkPO(y)
	c.MarkPO(z)
	if err := c.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	return c, map[string]*Net{"a": a, "b": b, "c": ci, "and": and, "xor": xor, "y": y, "z": z}
}

func TestBuildAndCheck(t *testing.T) {
	c, nets := buildSmall(t)
	if len(c.Gates) != 4 || len(c.PIs) != 3 || len(c.POs) != 2 {
		t.Fatalf("unexpected shape: %d gates %d PIs %d POs", len(c.Gates), len(c.PIs), len(c.POs))
	}
	if nets["y"].Driver == nil || nets["y"].Driver.Type.Name != "NAND2X1" {
		t.Error("y driver wrong")
	}
	if got := c.NetByName("a"); got != nets["a"] {
		t.Error("NetByName lookup failed")
	}
	if c.NetByName("nope") != nil {
		t.Error("NetByName of missing net must be nil")
	}
}

func TestLevelizeTopological(t *testing.T) {
	c, _ := buildSmall(t)
	order := c.Levelize()
	pos := make(map[*Gate]int, len(order))
	for i, g := range order {
		pos[g] = i
	}
	if len(order) != len(c.Gates) {
		t.Fatalf("levelize returned %d of %d gates", len(order), len(c.Gates))
	}
	for _, g := range c.Gates {
		for _, in := range g.Fanin {
			if in.Driver != nil && pos[in.Driver] >= pos[g] {
				t.Errorf("gate %s before its fanin driver %s", g.Name, in.Driver.Name)
			}
		}
	}
}

func TestLevels(t *testing.T) {
	c, nets := buildSmall(t)
	lv := c.Levels()
	if lv[nets["a"].ID] != 0 || lv[nets["b"].ID] != 0 {
		t.Error("PI levels must be 0")
	}
	if lv[nets["and"].ID] != 1 || lv[nets["xor"].ID] != 1 {
		t.Error("first-stage gates must be level 1")
	}
	if lv[nets["y"].ID] != 2 {
		t.Errorf("y level = %d, want 2", lv[nets["y"].ID])
	}
	if lv[nets["z"].ID] != 3 {
		t.Errorf("z level = %d, want 3", lv[nets["z"].ID])
	}
}

func TestStats(t *testing.T) {
	c, _ := buildSmall(t)
	s := c.Stats()
	if s.Gates != 4 || s.PIs != 3 || s.POs != 2 {
		t.Errorf("stats shape wrong: %+v", s)
	}
	wantArea := lib.ByName("AND2X2").Area + lib.ByName("XOR2X1").Area +
		lib.ByName("NAND2X1").Area + lib.ByName("INVX1").Area
	if s.Area != wantArea {
		t.Errorf("area = %v, want %v", s.Area, wantArea)
	}
	if s.PerCell["NAND2X1"] != 1 {
		t.Errorf("per-cell counts wrong: %v", s.PerCell)
	}
}

func TestAdjacent(t *testing.T) {
	c, nets := buildSmall(t)
	_ = c
	and := nets["and"].Driver
	xor := nets["xor"].Driver
	nand := nets["y"].Driver
	inv := nets["z"].Driver
	if !Adjacent(and, nand) || !Adjacent(nand, and) {
		t.Error("and-nand must be adjacent (direct drive)")
	}
	if !Adjacent(nand, inv) {
		t.Error("nand-inv must be adjacent")
	}
	if Adjacent(and, xor) {
		t.Error("and-xor share a fanin but are not adjacent (Fig. 1 (a))")
	}
	if Adjacent(and, inv) {
		t.Error("and-inv are two hops apart, not adjacent")
	}
	if Adjacent(nil, and) || Adjacent(and, nil) {
		t.Error("nil gates are never adjacent")
	}
}

func TestCheckCatchesCorruption(t *testing.T) {
	c, nets := buildSmall(t)
	// Break a fanout back-reference.
	g := nets["y"].Driver
	saved := g.Fanin[0]
	g.Fanin[0] = nets["c"]
	if err := c.Check(); err == nil {
		t.Error("Check must catch stale fanin substitution")
	}
	g.Fanin[0] = saved
	if err := c.Check(); err != nil {
		t.Fatalf("restore failed: %v", err)
	}
}

func TestExtractRegionBoundary(t *testing.T) {
	c, nets := buildSmall(t)
	_ = c
	// Region = {and, nand}: inputs {a, b, xor}, outputs {y}.
	r := ExtractRegion([]*Gate{nets["and"].Driver, nets["y"].Driver})
	if len(r.Gates) != 2 {
		t.Fatalf("region gates = %d", len(r.Gates))
	}
	wantIn := map[string]bool{"a": true, "b": true, "u_xor_o": true}
	if len(r.Inputs) != len(wantIn) {
		t.Fatalf("region inputs: got %d, want %d", len(r.Inputs), len(wantIn))
	}
	for _, in := range r.Inputs {
		if !wantIn[in.Name] {
			t.Errorf("unexpected region input %q", in.Name)
		}
	}
	if len(r.Outputs) != 1 || r.Outputs[0] != nets["y"] {
		t.Fatalf("region outputs wrong: %v", r.Outputs)
	}
	if !r.Contains(nets["and"].Driver) || r.Contains(nets["xor"].Driver) {
		t.Error("Contains wrong")
	}
}

func TestExtractRegionDeduplicatesGates(t *testing.T) {
	_, nets := buildSmall(t)
	g := nets["and"].Driver
	r := ExtractRegion([]*Gate{g, g, g})
	if len(r.Gates) != 1 {
		t.Errorf("duplicated input gates must collapse: %d", len(r.Gates))
	}
}

func TestClonePreservesStructure(t *testing.T) {
	c, _ := buildSmall(t)
	cl := c.Clone()
	if err := cl.Check(); err != nil {
		t.Fatalf("clone Check: %v", err)
	}
	if len(cl.Gates) != len(c.Gates) || len(cl.Nets) != len(c.Nets) ||
		len(cl.PIs) != len(c.PIs) || len(cl.POs) != len(c.POs) {
		t.Fatal("clone shape differs")
	}
	for i, g := range c.Gates {
		cg := cl.Gates[i]
		if cg.Name != g.Name || cg.Type != g.Type {
			t.Errorf("gate %d differs: %s/%s vs %s/%s", i, cg.Name, cg.Type.Name, g.Name, g.Type.Name)
		}
		if cg == g {
			t.Error("clone shares gate pointers")
		}
	}
	// Mutating the clone must not affect the original.
	cl.MarkPO(cl.Gates[0].Out)
	if c.Gates[0].Out.IsPO && c.Gates[0].Name == "u_and" {
		t.Error("clone mutation leaked to original")
	}
}

func TestRebuildReplacingIdentity(t *testing.T) {
	c, nets := buildSmall(t)
	r := ExtractRegion([]*Gate{nets["and"].Driver})
	// Replace the AND2 with NAND2 + INV (same function, different cells).
	nc, err := c.RebuildReplacing(r, func(nc *Circuit, ins []*Net) []*Net {
		// ins are {a, b} in net-ID order.
		nand := nc.AddGate("r_nand", lib.ByName("NAND2X1"), ins[0], ins[1])
		inv := nc.AddGate("r_inv", lib.ByName("INVX1"), nand)
		return []*Net{inv}
	})
	if err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	if err := nc.Check(); err != nil {
		t.Fatalf("rebuilt circuit Check: %v", err)
	}
	if len(nc.Gates) != len(c.Gates)+1 {
		t.Errorf("rebuilt gates = %d, want %d", len(nc.Gates), len(c.Gates)+1)
	}
	if len(nc.POs) != 2 {
		t.Errorf("rebuilt POs = %d, want 2", len(nc.POs))
	}
	st := nc.Stats()
	if st.PerCell["AND2X2"] != 0 {
		t.Error("AND2X2 should be gone")
	}
	if st.PerCell["NAND2X1"] != 2 {
		t.Errorf("expected 2 NAND2X1, got %d", st.PerCell["NAND2X1"])
	}
}

func TestRebuildReplacingOutputPO(t *testing.T) {
	c, nets := buildSmall(t)
	// Region containing the PO-driving NAND gate.
	r := ExtractRegion([]*Gate{nets["y"].Driver})
	nc, err := c.RebuildReplacing(r, func(nc *Circuit, ins []*Net) []*Net {
		// Same function with the same cell, new instance.
		return []*Net{nc.AddGate("r_nand2", lib.ByName("NAND2X1"), ins[0], ins[1])}
	})
	if err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	if err := nc.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	if len(nc.POs) != 2 {
		t.Fatalf("POs = %d, want 2", len(nc.POs))
	}
	// The replaced net must be a PO and must feed the INV.
	rep := nc.NetByName("r_nand2_o")
	if rep == nil || !rep.IsPO {
		t.Fatal("replacement output must be a PO")
	}
	if len(rep.Fanout) != 1 || rep.Fanout[0].Gate.Type.Name != "INVX1" {
		t.Error("replacement output must feed the INV")
	}
}

func TestRebuildReplacingOutputCountMismatch(t *testing.T) {
	c, nets := buildSmall(t)
	r := ExtractRegion([]*Gate{nets["and"].Driver})
	_, err := c.RebuildReplacing(r, func(nc *Circuit, ins []*Net) []*Net {
		return nil
	})
	if err == nil {
		t.Error("rebuild must reject wrong output count")
	}
}

func TestAddGatePanicsOnBadArity(t *testing.T) {
	c := New("t", lib)
	a := c.AddPI("a")
	defer func() {
		if recover() == nil {
			t.Error("AddGate must panic on wrong fanin count")
		}
	}()
	c.AddGate("bad", lib.ByName("NAND2X1"), a)
}

func TestLevelizePanicsOnCycle(t *testing.T) {
	c := New("cyc", lib)
	a := c.AddPI("a")
	g1 := c.AddGate("g1", lib.ByName("NAND2X1"), a, a)
	g2 := c.AddGate("g2", lib.ByName("NAND2X1"), g1, a)
	// Manually create a cycle: rewire g1's fanin 1 to g2's output.
	g1g := g1.Driver
	old := g1g.Fanin[1]
	// Remove stale fanout entry.
	for i, p := range old.Fanout {
		if p.Gate == g1g && p.Pin == 1 {
			old.Fanout = append(old.Fanout[:i], old.Fanout[i+1:]...)
			break
		}
	}
	g1g.Fanin[1] = g2
	g2.Fanout = append(g2.Fanout, Pin{Gate: g1g, Pin: 1})
	defer func() {
		if recover() == nil {
			t.Error("Levelize must panic on a cycle")
		}
	}()
	c.Levelize()
}
