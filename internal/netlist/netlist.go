// Package netlist provides the gate-level circuit representation used
// throughout dfmresyn: a flattened, combinational network of standard-cell
// instances. Sequential designs are handled through the full-scan
// abstraction — scan flops are cut into pseudo primary inputs and outputs —
// which is also how the paper's commercial ATPG sees the logic.
package netlist

import (
	"fmt"
	"sort"

	"dfmresyn/internal/library"
)

// Pin identifies one fanout connection: input pin Pin of gate Gate.
type Pin struct {
	Gate *Gate
	Pin  int
}

// Net is a signal in the circuit. A net is driven either by a gate (Driver
// != nil) or is a primary input.
type Net struct {
	ID     int
	Name   string
	Driver *Gate
	Fanout []Pin
	IsPI   bool
	IsPO   bool
}

// Gate is one standard-cell instance.
type Gate struct {
	ID    int
	Name  string
	Type  *library.Cell
	Fanin []*Net
	Out   *Net
}

// Circuit is a flattened combinational network.
type Circuit struct {
	Name  string
	Lib   *library.Library
	Gates []*Gate
	Nets  []*Net
	PIs   []*Net
	POs   []*Net

	netByName map[string]*Net
}

// New creates an empty circuit over the given library.
func New(name string, lib *library.Library) *Circuit {
	return &Circuit{Name: name, Lib: lib, netByName: make(map[string]*Net)}
}

// NetByName returns the net with the given name, or nil.
func (c *Circuit) NetByName(name string) *Net { return c.netByName[name] }

// AddPI creates a primary-input net.
func (c *Circuit) AddPI(name string) *Net {
	n := c.newNet(name)
	n.IsPI = true
	c.PIs = append(c.PIs, n)
	return n
}

// MarkPO marks an existing net as a primary output.
func (c *Circuit) MarkPO(n *Net) {
	if n.IsPO {
		return
	}
	n.IsPO = true
	c.POs = append(c.POs, n)
}

func (c *Circuit) newNet(name string) *Net {
	if name == "" {
		name = fmt.Sprintf("n%d", len(c.Nets))
	}
	if _, dup := c.netByName[name]; dup {
		panic("netlist: duplicate net name " + name)
	}
	n := &Net{ID: len(c.Nets), Name: name}
	c.Nets = append(c.Nets, n)
	c.netByName[name] = n
	return n
}

// AddGate instantiates a cell driving a fresh net and returns the output
// net. The gate and net share the given name (empty means auto-named).
func (c *Circuit) AddGate(name string, cell *library.Cell, fanin ...*Net) *Net {
	if cell == nil {
		panic("netlist: nil cell")
	}
	if len(fanin) != cell.NumInputs() {
		panic(fmt.Sprintf("netlist: %s expects %d inputs, got %d", cell.Name, cell.NumInputs(), len(fanin)))
	}
	if name == "" {
		name = fmt.Sprintf("g%d", len(c.Gates))
	}
	g := &Gate{ID: len(c.Gates), Name: name, Type: cell, Fanin: fanin}
	out := c.newNet(name + "_o")
	out.Driver = g
	g.Out = out
	c.Gates = append(c.Gates, g)
	for i, in := range fanin {
		in.Fanout = append(in.Fanout, Pin{Gate: g, Pin: i})
	}
	return out
}

// Levelize returns the gates in topological order (fanin before fanout).
// It panics if the circuit has a combinational cycle; the panic message
// reports the offending cycle path. Callers that must not panic detect the
// cycle first with FindCycle.
func (c *Circuit) Levelize() []*Gate {
	order := make([]*Gate, 0, len(c.Gates))
	state := make([]uint8, len(c.Gates)) // 0 unvisited, 1 on stack, 2 done
	var visit func(g *Gate)
	visit = func(g *Gate) {
		switch state[g.ID] {
		case 1:
			panic("netlist: combinational cycle: " + CycleString(c.FindCycle()))
		case 2:
			return
		}
		state[g.ID] = 1
		for _, in := range g.Fanin {
			if in.Driver != nil {
				visit(in.Driver)
			}
		}
		state[g.ID] = 2
		order = append(order, g)
	}
	for _, g := range c.Gates {
		visit(g)
	}
	return order
}

// Levels returns the logic level of each net: PIs are level 0, a gate
// output is 1 + max level of its fanins.
func (c *Circuit) Levels() []int {
	lv := make([]int, len(c.Nets))
	for _, g := range c.Levelize() {
		max := 0
		for _, in := range g.Fanin {
			if lv[in.ID] > max {
				max = lv[in.ID]
			}
		}
		lv[g.Out.ID] = max + 1
	}
	return lv
}

// FindCycle returns one combinational cycle as a gate path, or nil when the
// circuit is acyclic. In the returned path each gate drives the next, and
// the last gate drives the first. Unlike Levelize it never panics, so it is
// the entry point for validators (lint, Check) that must report cycles as
// ordinary findings.
func (c *Circuit) FindCycle() []*Gate {
	state := make([]uint8, len(c.Gates)) // 0 unvisited, 1 on stack, 2 done
	type frame struct {
		g    *Gate
		next int // next fanin index to explore
	}
	var stack []frame
	for _, start := range c.Gates {
		if state[start.ID] != 0 {
			continue
		}
		stack = append(stack[:0], frame{g: start})
		state[start.ID] = 1
		for len(stack) > 0 {
			top := len(stack) - 1
			g := stack[top].g
			if stack[top].next >= len(g.Fanin) {
				state[g.ID] = 2
				stack = stack[:top]
				continue
			}
			in := g.Fanin[stack[top].next]
			stack[top].next++
			if in == nil || in.Driver == nil {
				continue
			}
			d := in.Driver
			if d.ID < 0 || d.ID >= len(state) {
				continue // foreign gate; the lint dangling-fanout rule reports it
			}
			switch state[d.ID] {
			case 0:
				state[d.ID] = 1
				stack = append(stack, frame{g: d})
			case 1:
				// d is on the stack: the cycle is d followed by the
				// stack suffix above d in reverse push order, so that
				// each gate drives its successor.
				at := top
				for at >= 0 && stack[at].g != d {
					at--
				}
				cyc := []*Gate{d}
				for j := top; j > at; j-- {
					cyc = append(cyc, stack[j].g)
				}
				return cyc
			}
		}
	}
	return nil
}

// CycleString formats a cycle path from FindCycle as "a -> b -> a".
func CycleString(path []*Gate) string {
	if len(path) == 0 {
		return "(none)"
	}
	s := ""
	for _, g := range path {
		s += g.Name + " -> "
	}
	return s + path[0].Name
}

// Check validates structural consistency: every net has a driver or is a
// PI, fanout back-references are correct, IDs are dense, the network is
// acyclic, and every gate's fanin count matches its cell.
func (c *Circuit) Check() error {
	for i, n := range c.Nets {
		if n.ID != i {
			return fmt.Errorf("net %q: ID %d at position %d", n.Name, n.ID, i)
		}
		if n.Driver == nil && !n.IsPI {
			return fmt.Errorf("net %q: no driver and not a PI", n.Name)
		}
		if n.Driver != nil && n.IsPI {
			return fmt.Errorf("net %q: driven PI", n.Name)
		}
		for _, p := range n.Fanout {
			if p.Pin < 0 || p.Pin >= len(p.Gate.Fanin) || p.Gate.Fanin[p.Pin] != n {
				return fmt.Errorf("net %q: stale fanout reference to gate %q pin %d", n.Name, p.Gate.Name, p.Pin)
			}
		}
	}
	for i, g := range c.Gates {
		if g.ID != i {
			return fmt.Errorf("gate %q: ID %d at position %d", g.Name, g.ID, i)
		}
		if len(g.Fanin) != g.Type.NumInputs() {
			return fmt.Errorf("gate %q: %d fanins for cell %s", g.Name, len(g.Fanin), g.Type.Name)
		}
		if g.Out == nil || g.Out.Driver != g {
			return fmt.Errorf("gate %q: broken output link", g.Name)
		}
		for pin, in := range g.Fanin {
			found := false
			for _, p := range in.Fanout {
				if p.Gate == g && p.Pin == pin {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("gate %q pin %d: missing fanout back-reference on net %q", g.Name, pin, in.Name)
			}
		}
	}
	for _, po := range c.POs {
		if !po.IsPO {
			return fmt.Errorf("net %q in PO list but not marked", po.Name)
		}
	}
	if cyc := c.FindCycle(); cyc != nil {
		return fmt.Errorf("combinational cycle: %s", CycleString(cyc))
	}
	return nil
}

// Stats summarizes a circuit.
type Stats struct {
	Gates   int
	Nets    int
	PIs     int
	POs     int
	Area    float64
	PerCell map[string]int
}

// Stats computes summary statistics.
func (c *Circuit) Stats() Stats {
	s := Stats{Gates: len(c.Gates), Nets: len(c.Nets), PIs: len(c.PIs), POs: len(c.POs),
		PerCell: make(map[string]int)}
	for _, g := range c.Gates {
		s.Area += g.Type.Area
		s.PerCell[g.Type.Name]++
	}
	return s
}

// Adjacent reports whether two gates are structurally adjacent in the sense
// of the paper's Section II: one is directly driven by the other.
func Adjacent(a, b *Gate) bool {
	if a == nil || b == nil {
		return false
	}
	for _, p := range a.Out.Fanout {
		if p.Gate == b {
			return true
		}
	}
	for _, p := range b.Out.Fanout {
		if p.Gate == a {
			return true
		}
	}
	return false
}

// Region describes a subcircuit C_sub cut out of a circuit: the gate set,
// its boundary input nets (nets feeding region gates but driven outside the
// region or primary inputs) and boundary output nets (region-driven nets
// that are POs or feed gates outside the region).
type Region struct {
	Gates   []*Gate
	Inputs  []*Net
	Outputs []*Net
	inSet   map[*Gate]bool
}

// Contains reports whether g belongs to the region.
func (r *Region) Contains(g *Gate) bool { return r.inSet[g] }

// ExtractRegion computes the boundary of the given gate set. The result's
// Inputs and Outputs are ordered by net ID for determinism.
func ExtractRegion(gates []*Gate) *Region {
	r := &Region{inSet: make(map[*Gate]bool, len(gates))}
	for _, g := range gates {
		if !r.inSet[g] {
			r.inSet[g] = true
			r.Gates = append(r.Gates, g)
		}
	}
	sort.Slice(r.Gates, func(i, j int) bool { return r.Gates[i].ID < r.Gates[j].ID })

	inSeen := map[*Net]bool{}
	outSeen := map[*Net]bool{}
	for _, g := range r.Gates {
		for _, in := range g.Fanin {
			external := in.IsPI || (in.Driver != nil && !r.inSet[in.Driver])
			if external && !inSeen[in] {
				inSeen[in] = true
				r.Inputs = append(r.Inputs, in)
			}
		}
		out := g.Out
		if outSeen[out] {
			continue
		}
		if out.IsPO {
			outSeen[out] = true
			r.Outputs = append(r.Outputs, out)
			continue
		}
		for _, p := range out.Fanout {
			if !r.inSet[p.Gate] {
				outSeen[out] = true
				r.Outputs = append(r.Outputs, out)
				break
			}
		}
	}
	sort.Slice(r.Inputs, func(i, j int) bool { return r.Inputs[i].ID < r.Inputs[j].ID })
	sort.Slice(r.Outputs, func(i, j int) bool { return r.Outputs[i].ID < r.Outputs[j].ID })
	return r
}

// ConvexClosure returns the gate set augmented with every gate lying on a
// path from a set member back into the set (gates that are both reachable
// from some member's output and reach some member's input). The result is a
// convex region: no path leaves it and re-enters, which RebuildReplacing
// requires.
func ConvexClosure(c *Circuit, gates []*Gate) []*Gate {
	inSet := make(map[*Gate]bool, len(gates))
	for _, g := range gates {
		inSet[g] = true
	}
	// Descendants of members' outputs.
	desc := make([]bool, len(c.Gates))
	order := c.Levelize()
	for _, g := range order {
		if inSet[g] {
			desc[g.ID] = true
			continue
		}
		for _, in := range g.Fanin {
			if in.Driver != nil && desc[in.Driver.ID] {
				desc[g.ID] = true
				break
			}
		}
	}
	// Ancestors of members' inputs (reverse topological order).
	anc := make([]bool, len(c.Gates))
	for i := len(order) - 1; i >= 0; i-- {
		g := order[i]
		if inSet[g] {
			anc[g.ID] = true
			continue
		}
		for _, p := range g.Out.Fanout {
			if anc[p.Gate.ID] {
				anc[g.ID] = true
				break
			}
		}
	}
	out := make([]*Gate, 0, len(gates))
	out = append(out, gates...)
	for _, g := range c.Gates {
		if !inSet[g] && desc[g.ID] && anc[g.ID] {
			out = append(out, g)
		}
	}
	return out
}

// Clone deep-copies the circuit (gates, nets, markings). Gate and net names
// and order are preserved.
func (c *Circuit) Clone() *Circuit {
	out := New(c.Name, c.Lib)
	netMap := make(map[*Net]*Net, len(c.Nets))
	// Create all nets first (preserving names and IDs by creation order).
	for _, n := range c.Nets {
		nn := out.newNet(n.Name)
		nn.IsPI = n.IsPI
		nn.IsPO = n.IsPO
		netMap[n] = nn
		if n.IsPI {
			out.PIs = append(out.PIs, nn)
		}
	}
	for _, g := range c.Gates {
		fanin := make([]*Net, len(g.Fanin))
		for i, in := range g.Fanin {
			fanin[i] = netMap[in]
		}
		ng := &Gate{ID: len(out.Gates), Name: g.Name, Type: g.Type, Fanin: fanin}
		no := netMap[g.Out]
		no.Driver = ng
		ng.Out = no
		out.Gates = append(out.Gates, ng)
		for i, in := range fanin {
			in.Fanout = append(in.Fanout, Pin{Gate: ng, Pin: i})
		}
	}
	for _, po := range c.POs {
		out.POs = append(out.POs, netMap[po])
	}
	return out
}

// RebuildReplacing constructs a new circuit in which the gates of region r
// are replaced by new logic produced by build. All gates outside the region
// (C_dont) are copied unchanged. build receives the new circuit plus the
// mapped boundary input nets, and must return one driven net per region
// output, in region-output order. Region outputs that were POs stay POs.
//
// The caller is responsible for the new logic being functionally equivalent
// on the boundary (the resynthesis procedure guarantees this by mapping the
// extracted region's own logic).
func (c *Circuit) RebuildReplacing(r *Region, build func(nc *Circuit, inputs []*Net) []*Net) (*Circuit, error) {
	out := New(c.Name, c.Lib)
	netMap := make(map[*Net]*Net, len(c.Nets))

	// PIs always exist in the new circuit.
	for _, pi := range c.PIs {
		netMap[pi] = out.AddPI(pi.Name)
	}

	// Copy C_dont gates in topological order so fanins exist; region
	// boundary outputs are created by the build callback first.
	order := c.Levelize()

	// Map region boundary inputs: they are PIs or driven by C_dont gates;
	// we need them mapped before calling build, so process C_dont gates
	// up to the point all boundary inputs exist. Simplest correct
	// approach: process in topological order, and invoke build lazily
	// when all region inputs are available and any consumer needs a
	// region output. We instead do two passes: first copy all C_dont
	// gates that do not (transitively) depend on region outputs, then
	// build the region, then copy the rest.
	regionOutSet := make(map[*Net]bool, len(r.Outputs))
	for _, o := range r.Outputs {
		regionOutSet[o] = true
	}
	dependsOnRegion := make(map[*Gate]bool, len(c.Gates))
	for _, g := range order {
		if r.Contains(g) {
			continue
		}
		dep := false
		for _, in := range g.Fanin {
			if regionOutSet[in] || (in.Driver != nil && dependsOnRegion[in.Driver]) {
				dep = true
				break
			}
		}
		dependsOnRegion[g] = dep
	}

	copyGate := func(g *Gate) error {
		fanin := make([]*Net, len(g.Fanin))
		for i, in := range g.Fanin {
			m, ok := netMap[in]
			if !ok {
				return fmt.Errorf("netlist: rebuild ordering bug at gate %q input %q", g.Name, in.Name)
			}
			fanin[i] = m
		}
		netMap[g.Out] = out.AddGate(g.Name, g.Type, fanin...)
		return nil
	}

	for _, g := range order {
		if r.Contains(g) || dependsOnRegion[g] {
			continue
		}
		if err := copyGate(g); err != nil {
			return nil, err
		}
	}

	// Build the replacement logic.
	ins := make([]*Net, len(r.Inputs))
	for i, in := range r.Inputs {
		m, ok := netMap[in]
		if !ok {
			return nil, fmt.Errorf("netlist: region input %q not available before rebuild", in.Name)
		}
		ins[i] = m
	}
	newOuts := build(out, ins)
	if len(newOuts) != len(r.Outputs) {
		return nil, fmt.Errorf("netlist: rebuild returned %d outputs for %d region outputs", len(newOuts), len(r.Outputs))
	}
	for i, o := range r.Outputs {
		if newOuts[i] == nil {
			return nil, fmt.Errorf("netlist: rebuild returned nil for region output %q", o.Name)
		}
		netMap[o] = newOuts[i]
	}

	// Copy the remaining C_dont gates.
	for _, g := range order {
		if r.Contains(g) || !dependsOnRegion[g] {
			continue
		}
		if err := copyGate(g); err != nil {
			return nil, err
		}
	}

	// Restore PO markings in original order.
	for _, po := range c.POs {
		m, ok := netMap[po]
		if !ok {
			return nil, fmt.Errorf("netlist: PO %q lost in rebuild", po.Name)
		}
		out.MarkPO(m)
	}
	return out, nil
}
