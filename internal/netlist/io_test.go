package netlist

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	c, _ := buildSmall(t)
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf, lib)
	if err != nil {
		t.Fatalf("Read: %v\n%s", err, buf.String())
	}
	if got.Name != c.Name {
		t.Errorf("name %q, want %q", got.Name, c.Name)
	}
	if len(got.Gates) != len(c.Gates) || len(got.PIs) != len(c.PIs) || len(got.POs) != len(c.POs) {
		t.Fatalf("shape differs: %d/%d gates, %d/%d PIs, %d/%d POs",
			len(got.Gates), len(c.Gates), len(got.PIs), len(c.PIs), len(got.POs), len(c.POs))
	}
	// Same gate names and types (order may be topological).
	want := map[string]string{}
	for _, g := range c.Gates {
		want[g.Name] = g.Type.Name
	}
	for _, g := range got.Gates {
		if want[g.Name] != g.Type.Name {
			t.Errorf("gate %s type %s, want %s", g.Name, g.Type.Name, want[g.Name])
		}
	}
	// PO names preserved in order.
	for i := range c.POs {
		if got.POs[i].Name != c.POs[i].Name {
			t.Errorf("PO %d = %q, want %q", i, got.POs[i].Name, c.POs[i].Name)
		}
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"no circuit":        "input a\n",
		"unknown cell":      "circuit x\ninput a\ngate g1 BOGUS y a\n",
		"bad arity":         "circuit x\ninput a\ngate g1 NAND2X1 y a\n",
		"undeclared fanin":  "circuit x\ninput a\ngate g1 INVX1 y zz\n",
		"undeclared output": "circuit x\ninput a\noutput zz\n",
		"bad directive":     "circuit x\nfrobnicate\n",
		"empty":             "",
	}
	for name, text := range cases {
		if _, err := Read(strings.NewReader(text), lib); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestReadCommentsAndBlankLines(t *testing.T) {
	text := `# a comment
circuit demo

input a b
# gates
gate g1 NAND2X1 n1 a b
gate g2 INVX1 n2 n1
output n2
`
	c, err := Read(strings.NewReader(text), lib)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Gates) != 2 || len(c.POs) != 1 {
		t.Errorf("parsed shape wrong: %d gates %d POs", len(c.Gates), len(c.POs))
	}
	if c.NetByName("n1") == nil || c.NetByName("n1").Driver.Type.Name != "NAND2X1" {
		t.Error("gate net naming broken")
	}
}
