package netlist

import "testing"

// shuffled builds a structural copy of c with gates and nets created in a
// different order (gates reversed in topo-legal chunks is hard to fabricate
// generically, so we emulate a rebuild: clone, then move one gate block).
func reorderFixture(t *testing.T) (prev, cur *Circuit) {
	t.Helper()
	prev, _ = buildSmall(t)
	// cur has the same logic but its kept elements appear in a different
	// relative order, the way RebuildReplacing splits C_dont around a
	// region: u_xor (and its net) now precedes u_and.
	cur = New("small", lib)
	a := cur.AddPI("a")
	b := cur.AddPI("b")
	ci := cur.AddPI("c")
	xor := cur.AddGate("u_xor", lib.ByName("XOR2X1"), b, ci)
	and := cur.AddGate("u_and", lib.ByName("AND2X2"), a, b)
	nw := cur.AddGate("r1_buf", lib.ByName("INVX1"), and)
	nw2 := cur.AddGate("r1_buf2", lib.ByName("INVX1"), nw)
	y := cur.AddGate("u_nand", lib.ByName("NAND2X1"), nw2, xor)
	z := cur.AddGate("u_inv", lib.ByName("INVX1"), y)
	cur.MarkPO(y)
	cur.MarkPO(z)
	if err := cur.Check(); err != nil {
		t.Fatalf("fixture Check: %v", err)
	}
	return prev, cur
}

func TestReorderLike(t *testing.T) {
	prev, cur := reorderFixture(t)
	out := ReorderLike(cur, prev)
	if err := out.Check(); err != nil {
		t.Fatalf("reordered circuit fails Check: %v", err)
	}
	if out == cur {
		t.Fatal("ReorderLike must not return its argument")
	}
	if len(out.Gates) != len(cur.Gates) || len(out.Nets) != len(cur.Nets) {
		t.Fatalf("shape changed: %d/%d gates, %d/%d nets",
			len(out.Gates), len(cur.Gates), len(out.Nets), len(cur.Nets))
	}

	// Kept elements follow prev's relative order; new ones come after all
	// kept ones they can follow, in cur order.
	prevGatePos := map[string]int{}
	for i, g := range prev.Gates {
		prevGatePos[g.Name] = i
	}
	last := -1
	for _, g := range out.Gates {
		if p, ok := prevGatePos[g.Name]; ok {
			if p < last {
				t.Errorf("kept gate %s out of prev order", g.Name)
			}
			last = p
		}
	}
	prevNetPos := map[string]int{}
	for i, n := range prev.Nets {
		prevNetPos[n.Name] = i
	}
	last = -1
	newSeen := false
	for _, n := range out.Nets {
		if p, ok := prevNetPos[n.Name]; ok {
			if p < last {
				t.Errorf("kept net %s out of prev order", n.Name)
			}
			last = p
		} else {
			newSeen = true
		}
	}
	if !newSeen {
		t.Fatal("fixture should contain new nets")
	}

	// Interface order preserved from cur.
	for i, pi := range cur.PIs {
		if out.PIs[i].Name != pi.Name {
			t.Errorf("PI %d: %s != %s", i, out.PIs[i].Name, pi.Name)
		}
	}
	for i, po := range cur.POs {
		if out.POs[i].Name != po.Name {
			t.Errorf("PO %d: %s != %s", i, out.POs[i].Name, po.Name)
		}
	}

	// Connectivity preserved: same driver type and fanin names per gate.
	for _, g := range cur.Gates {
		var og *Gate
		for _, cand := range out.Gates {
			if cand.Name == g.Name {
				og = cand
				break
			}
		}
		if og == nil {
			t.Fatalf("gate %s missing after reorder", g.Name)
		}
		if og.Type != g.Type || og.Out.Name != g.Out.Name {
			t.Fatalf("gate %s changed type or output", g.Name)
		}
		for i, in := range g.Fanin {
			if og.Fanin[i].Name != in.Name {
				t.Fatalf("gate %s fanin %d: %s != %s", g.Name, i, og.Fanin[i].Name, in.Name)
			}
		}
	}
}

func TestReorderLikeIdentity(t *testing.T) {
	// Reordering a circuit against itself is a plain clone: same order.
	c, _ := buildSmall(t)
	out := ReorderLike(c, c)
	if err := out.Check(); err != nil {
		t.Fatal(err)
	}
	for i := range c.Nets {
		if out.Nets[i].Name != c.Nets[i].Name {
			t.Fatalf("net %d reordered on identity: %s != %s", i, out.Nets[i].Name, c.Nets[i].Name)
		}
	}
	for i := range c.Gates {
		if out.Gates[i].Name != c.Gates[i].Name {
			t.Fatalf("gate %d reordered on identity: %s != %s", i, out.Gates[i].Name, c.Gates[i].Name)
		}
	}
}
