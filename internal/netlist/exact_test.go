package netlist

import (
	"bytes"
	"strings"
	"testing"

	"dfmresyn/internal/library"
)

// scrambled builds a small circuit whose Nets/Gates order is deliberately
// NOT levelized-canonical: a ReorderLike against a shuffled previous
// circuit moves kept elements into the previous order while the new ones
// trail in circuit order, which is exactly the shape committed designs
// have.
func scrambled(t *testing.T, lib *library.Library) *Circuit {
	t.Helper()
	c := New("scrambletest", lib)
	a := c.AddPI("a")
	b := c.AddPI("b")
	and := lib.ByName("AND2X2")
	or := lib.ByName("OR2X2")
	inv := lib.ByName("INVX1")
	if and == nil || or == nil || inv == nil {
		t.Fatal("library misses AND2X2/OR2X2/INVX1")
	}
	x := c.AddGate("g_x", and, a, b)
	y := c.AddGate("g_y", or, x, a)
	z := c.AddGate("g_z", inv, y)
	c.MarkPO(z)
	c.MarkPO(x)

	// Previous circuit listing a subset in a different order, so
	// ReorderLike produces a non-trivial, non-levelized ordering.
	prev := New("scrambletest", lib)
	pb := prev.AddPI("b")
	pa := prev.AddPI("a")
	py := prev.AddGate("g_y", or, pb, pa) // same names, different wiring order
	prev.MarkPO(py)
	return ReorderLike(c, prev)
}

// TestExactRoundTrip: WriteExact → ReadExact must reproduce the identical
// element sequence, names, wiring, flags and interface order — and
// re-serialize to the same bytes.
func TestExactRoundTrip(t *testing.T) {
	lib := library.OSU018Like()
	c := scrambled(t, lib)

	var buf bytes.Buffer
	if err := WriteExact(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, err := ReadExact(bytes.NewReader(buf.Bytes()), lib)
	if err != nil {
		t.Fatalf("ReadExact: %v\ninput:\n%s", err, buf.String())
	}

	if got.Name != c.Name {
		t.Errorf("name %q != %q", got.Name, c.Name)
	}
	if len(got.Nets) != len(c.Nets) || len(got.Gates) != len(c.Gates) {
		t.Fatalf("size mismatch: %d/%d nets, %d/%d gates",
			len(got.Nets), len(c.Nets), len(got.Gates), len(c.Gates))
	}
	for i := range c.Nets {
		w, g := c.Nets[i], got.Nets[i]
		if w.Name != g.Name || w.IsPI != g.IsPI || w.IsPO != g.IsPO {
			t.Errorf("net %d: got %q(pi=%v,po=%v) want %q(pi=%v,po=%v)",
				i, g.Name, g.IsPI, g.IsPO, w.Name, w.IsPI, w.IsPO)
		}
	}
	for i := range c.Gates {
		w, g := c.Gates[i], got.Gates[i]
		if w.Name != g.Name || w.Type.Name != g.Type.Name || w.Out.ID != g.Out.ID {
			t.Errorf("gate %d: got %s:%s→%d want %s:%s→%d",
				i, g.Name, g.Type.Name, g.Out.ID, w.Name, w.Type.Name, w.Out.ID)
		}
		for j := range w.Fanin {
			if w.Fanin[j].ID != g.Fanin[j].ID {
				t.Errorf("gate %d fanin %d: net %d want %d", i, j, g.Fanin[j].ID, w.Fanin[j].ID)
			}
		}
	}
	for i := range c.PIs {
		if c.PIs[i].ID != got.PIs[i].ID {
			t.Errorf("PI %d: net %d want %d", i, got.PIs[i].ID, c.PIs[i].ID)
		}
	}
	for i := range c.POs {
		if c.POs[i].ID != got.POs[i].ID {
			t.Errorf("PO %d: net %d want %d", i, got.POs[i].ID, c.POs[i].ID)
		}
	}

	var buf2 bytes.Buffer
	if err := WriteExact(&buf2, got); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Errorf("re-serialization differs:\nfirst:\n%s\nsecond:\n%s", buf.String(), buf2.String())
	}
}

// TestExactRejectsMalformed: structural damage must error cleanly, never
// panic and never produce a Check-violating circuit.
func TestExactRejectsMalformed(t *testing.T) {
	lib := library.OSU018Like()
	c := scrambled(t, lib)
	var buf bytes.Buffer
	if err := WriteExact(&buf, c); err != nil {
		t.Fatal(err)
	}
	good := buf.String()

	cases := map[string]string{
		"empty":          "",
		"no xckt":        "net a i\n",
		"bad directive":  "xckt c\nbogus x\n",
		"bad net index":  "xckt c\nnet a i\ngate g INVX1 99 0\n",
		"bad flags":      "xckt c\nnet a q\n",
		"dup net":        "xckt c\nnet a i\nnet a i\n",
		"truncated":      good[:len(good)/2],
		"double driver":  "xckt c\nnet a i\nnet x -\nnet y -\ngate g1 INVX1 1 0\ngate g2 INVX1 1 0\n",
		"pi flag miss":   "xckt c\nnet a -\npi 0\n",
		"dup pi listing": "xckt c\nnet a i\npi 0 0\n",
	}
	for name, in := range cases {
		if _, err := ReadExact(strings.NewReader(in), lib); err == nil {
			t.Errorf("%s: malformed input accepted", name)
		}
	}
}

// FuzzReadExact: arbitrary input must never panic the exact-order reader;
// accepted circuits must satisfy Check and re-serialize.
func FuzzReadExact(f *testing.F) {
	lib := library.OSU018Like()
	c := New("seedckt", lib)
	a := c.AddPI("a")
	if inv := lib.ByName("INVX1"); inv != nil {
		c.MarkPO(c.AddGate("g0", inv, a))
	}
	var buf bytes.Buffer
	if err := WriteExact(&buf, c); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("xckt x\nnet a i\npi 0\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, in string) {
		got, err := ReadExact(strings.NewReader(in), lib)
		if err != nil {
			return
		}
		if cerr := got.Check(); cerr != nil {
			t.Fatalf("accepted circuit fails Check: %v", cerr)
		}
		var out bytes.Buffer
		if werr := WriteExact(&out, got); werr != nil {
			t.Fatalf("accepted circuit fails WriteExact: %v", werr)
		}
	})
}
