package netlist

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"dfmresyn/internal/library"
)

// Exact-order circuit codec, used by the resynthesis checkpoint journal.
//
// Write emits gates in levelized order, which is the right canonical form
// for humans and for the netlint loader but loses the in-memory Nets/Gates
// sequence. The incremental physical pipeline is order-sensitive by design
// (ReorderLike appends elements *new* to the previous design in the
// circuit's own order, and the placer and router consume that order), so a
// journaled committed circuit must round-trip the exact sequence — a
// levelized rewrite would re-place and re-route a resumed run differently
// and break the byte-identical-resume guarantee.
//
// The format is line-oriented and index-based:
//
//	xckt <name>
//	net <name> <->|i|o|io>          # one per net, in Nets order
//	gate <name> <cell> <out-net-index> [<fanin-net-index> ...]
//	                                 # one per gate, in Gates order
//	pi <net-index> [...]             # PI interface order
//	po <net-index> [...]             # PO interface order
//
// Net references are indices into the net list rather than names, so the
// reader rebuilds driver/fanout wiring without any topological-order
// requirement on the gate lines.

// WriteExact serializes the circuit preserving the exact Nets, Gates, PI
// and PO order (unlike Write, which levelizes). Names containing
// whitespace cannot be represented and are rejected.
func WriteExact(w io.Writer, c *Circuit) error {
	bad := func(name string) bool {
		return name == "" || strings.ContainsAny(name, " \t\n\r")
	}
	if bad(c.Name) {
		return fmt.Errorf("netlist: exact: unencodable circuit name %q", c.Name)
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "xckt %s\n", c.Name)
	netIdx := make(map[*Net]int, len(c.Nets))
	for i, n := range c.Nets {
		if bad(n.Name) {
			return fmt.Errorf("netlist: exact: unencodable net name %q", n.Name)
		}
		netIdx[n] = i
		flags := "-"
		switch {
		case n.IsPI && n.IsPO:
			flags = "io"
		case n.IsPI:
			flags = "i"
		case n.IsPO:
			flags = "o"
		}
		fmt.Fprintf(bw, "net %s %s\n", n.Name, flags)
	}
	for _, g := range c.Gates {
		if bad(g.Name) {
			return fmt.Errorf("netlist: exact: unencodable gate name %q", g.Name)
		}
		fmt.Fprintf(bw, "gate %s %s %d", g.Name, g.Type.Name, netIdx[g.Out])
		for _, in := range g.Fanin {
			fmt.Fprintf(bw, " %d", netIdx[in])
		}
		fmt.Fprintln(bw)
	}
	writeRefs := func(kw string, nets []*Net) {
		if len(nets) == 0 {
			return
		}
		fmt.Fprint(bw, kw)
		for _, n := range nets {
			fmt.Fprintf(bw, " %d", netIdx[n])
		}
		fmt.Fprintln(bw)
	}
	writeRefs("pi", c.PIs)
	writeRefs("po", c.POs)
	return bw.Flush()
}

// ReadExact parses a WriteExact serialization over the given library,
// reconstructing the exact element order. It never panics on malformed
// input: every deviation from the format is reported as an error, and the
// rebuilt circuit is validated with Check before it is returned.
func ReadExact(r io.Reader, lib *library.Library) (*Circuit, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 8*1024*1024)
	var c *Circuit
	lineNo := 0
	netAt := func(field string) (*Net, error) {
		i, err := strconv.Atoi(field)
		if err != nil || i < 0 || i >= len(c.Nets) {
			return nil, fmt.Errorf("netlist: exact: line %d: bad net index %q", lineNo, field)
		}
		return c.Nets[i], nil
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if c == nil && fields[0] != "xckt" {
			return nil, fmt.Errorf("netlist: exact: line %d: %q before xckt", lineNo, fields[0])
		}
		switch fields[0] {
		case "xckt":
			if c != nil {
				return nil, fmt.Errorf("netlist: exact: line %d: duplicate xckt", lineNo)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("netlist: exact: line %d: xckt needs a name", lineNo)
			}
			c = New(fields[1], lib)
		case "net":
			if len(fields) != 3 {
				return nil, fmt.Errorf("netlist: exact: line %d: net needs name and flags", lineNo)
			}
			if c.NetByName(fields[1]) != nil {
				return nil, fmt.Errorf("netlist: exact: line %d: duplicate net %q", lineNo, fields[1])
			}
			switch fields[2] {
			case "-", "i", "o", "io":
			default:
				return nil, fmt.Errorf("netlist: exact: line %d: bad net flags %q", lineNo, fields[2])
			}
			n := c.newNet(fields[1])
			n.IsPI = strings.Contains(fields[2], "i")
			n.IsPO = strings.Contains(fields[2], "o")
		case "gate":
			if len(fields) < 4 {
				return nil, fmt.Errorf("netlist: exact: line %d: gate needs name, cell and output", lineNo)
			}
			cell := lib.ByName(fields[2])
			if cell == nil {
				return nil, fmt.Errorf("netlist: exact: line %d: unknown cell %q", lineNo, fields[2])
			}
			out, err := netAt(fields[3])
			if err != nil {
				return nil, err
			}
			if out.Driver != nil || out.IsPI {
				return nil, fmt.Errorf("netlist: exact: line %d: net %q already driven", lineNo, out.Name)
			}
			ins := fields[4:]
			if len(ins) != cell.NumInputs() {
				return nil, fmt.Errorf("netlist: exact: line %d: %s expects %d inputs, got %d",
					lineNo, cell.Name, cell.NumInputs(), len(ins))
			}
			fanin := make([]*Net, len(ins))
			for i, f := range ins {
				in, err := netAt(f)
				if err != nil {
					return nil, err
				}
				fanin[i] = in
			}
			g := &Gate{ID: len(c.Gates), Name: fields[1], Type: cell, Fanin: fanin}
			out.Driver = g
			g.Out = out
			c.Gates = append(c.Gates, g)
			for i, in := range fanin {
				in.Fanout = append(in.Fanout, Pin{Gate: g, Pin: i})
			}
		case "pi", "po":
			for _, f := range fields[1:] {
				n, err := netAt(f)
				if err != nil {
					return nil, err
				}
				if fields[0] == "pi" {
					if !n.IsPI {
						return nil, fmt.Errorf("netlist: exact: line %d: net %q listed as pi without i flag", lineNo, n.Name)
					}
					c.PIs = append(c.PIs, n)
				} else {
					if !n.IsPO {
						return nil, fmt.Errorf("netlist: exact: line %d: net %q listed as po without o flag", lineNo, n.Name)
					}
					c.POs = append(c.POs, n)
				}
			}
		default:
			return nil, fmt.Errorf("netlist: exact: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if c == nil {
		return nil, fmt.Errorf("netlist: exact: no xckt declaration found")
	}
	// Interface lists must cover every flagged net exactly once; the flags
	// and the pi/po lines are redundant on purpose (the lines carry order,
	// the flags make each net line self-describing), so cross-check them.
	npi, npo := 0, 0
	for _, n := range c.Nets {
		if n.IsPI {
			npi++
		}
		if n.IsPO {
			npo++
		}
	}
	if len(c.PIs) != npi || len(c.POs) != npo {
		return nil, fmt.Errorf("netlist: exact: interface lists cover %d/%d PIs and %d/%d POs",
			len(c.PIs), npi, len(c.POs), npo)
	}
	seen := map[*Net]bool{}
	for _, n := range c.PIs {
		if seen[n] {
			return nil, fmt.Errorf("netlist: exact: net %q repeated in pi list", n.Name)
		}
		seen[n] = true
	}
	seen = map[*Net]bool{}
	for _, n := range c.POs {
		if seen[n] {
			return nil, fmt.Errorf("netlist: exact: net %q repeated in po list", n.Name)
		}
		seen[n] = true
	}
	if err := c.Check(); err != nil {
		return nil, fmt.Errorf("netlist: exact: parsed circuit inconsistent: %w", err)
	}
	return c, nil
}
