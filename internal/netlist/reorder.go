package netlist

import "sort"

// ReorderLike returns a structurally identical copy of c whose nets and
// gates are renumbered to follow prev: every element that also exists in
// prev (matched by name) keeps prev's relative order, and elements new to c
// are appended in c's own order. RebuildReplacing splits the unchanged logic
// around the replaced region, which inverts the relative order of kept
// elements; the incremental physical pipeline needs that order restored —
// the router reuses previous geometry only when the kept nets route in the
// same sequence, so congestion outside the dirty region replays exactly.
//
// The PI and PO interface order of c is preserved, c itself is left
// untouched, and the copy satisfies Check.
func ReorderLike(c, prev *Circuit) *Circuit {
	prevNet := make(map[string]int, len(prev.Nets))
	for i, n := range prev.Nets {
		prevNet[n.Name] = i
	}
	prevGate := make(map[string]int, len(prev.Gates))
	for i, g := range prev.Gates {
		prevGate[g.Name] = i
	}

	nets := append([]*Net(nil), c.Nets...)
	sort.SliceStable(nets, func(i, j int) bool {
		pi, iok := prevNet[nets[i].Name]
		pj, jok := prevNet[nets[j].Name]
		switch {
		case iok && jok:
			return pi < pj
		case iok:
			return true
		default:
			// Both new: the stable sort keeps c's order.
			return false
		}
	})
	gates := append([]*Gate(nil), c.Gates...)
	sort.SliceStable(gates, func(i, j int) bool {
		pi, iok := prevGate[gates[i].Name]
		pj, jok := prevGate[gates[j].Name]
		switch {
		case iok && jok:
			return pi < pj
		case iok:
			return true
		default:
			return false
		}
	})

	out := New(c.Name, c.Lib)
	netMap := make(map[*Net]*Net, len(c.Nets))
	for _, n := range nets {
		nn := out.newNet(n.Name)
		nn.IsPI = n.IsPI
		nn.IsPO = n.IsPO
		netMap[n] = nn
	}
	for _, pi := range c.PIs {
		out.PIs = append(out.PIs, netMap[pi])
	}
	for _, g := range gates {
		fanin := make([]*Net, len(g.Fanin))
		for i, in := range g.Fanin {
			fanin[i] = netMap[in]
		}
		ng := &Gate{ID: len(out.Gates), Name: g.Name, Type: g.Type, Fanin: fanin}
		no := netMap[g.Out]
		no.Driver = ng
		ng.Out = no
		out.Gates = append(out.Gates, ng)
		for i, in := range fanin {
			in.Fanout = append(in.Fanout, Pin{Gate: ng, Pin: i})
		}
	}
	for _, po := range c.POs {
		out.POs = append(out.POs, netMap[po])
	}
	return out
}
