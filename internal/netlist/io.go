package netlist

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"dfmresyn/internal/library"
)

// The text netlist format is line-oriented:
//
//	# comment
//	circuit <name>
//	input <net> [<net> ...]
//	gate <instance> <celltype> <out-net> [<in-net> ...]
//	output <net> [<net> ...]
//
// Nets are referenced by name; gate output nets are declared by the gate
// line itself. The format round-trips everything the Circuit type holds.

// Write serializes the circuit.
func Write(w io.Writer, c *Circuit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "circuit %s\n", c.Name)
	if len(c.PIs) > 0 {
		fmt.Fprint(bw, "input")
		for _, pi := range c.PIs {
			fmt.Fprintf(bw, " %s", pi.Name)
		}
		fmt.Fprintln(bw)
	}
	for _, g := range c.Levelize() {
		fmt.Fprintf(bw, "gate %s %s %s", g.Name, g.Type.Name, g.Out.Name)
		for _, in := range g.Fanin {
			fmt.Fprintf(bw, " %s", in.Name)
		}
		fmt.Fprintln(bw)
	}
	if len(c.POs) > 0 {
		fmt.Fprint(bw, "output")
		for _, po := range c.POs {
			fmt.Fprintf(bw, " %s", po.Name)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// Read parses a circuit in the text format over the given library.
func Read(r io.Reader, lib *library.Library) (*Circuit, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var c *Circuit
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "circuit":
			if len(fields) != 2 {
				return nil, fmt.Errorf("netlist: line %d: circuit needs a name", lineNo)
			}
			c = New(fields[1], lib)
		case "input":
			if c == nil {
				return nil, fmt.Errorf("netlist: line %d: input before circuit", lineNo)
			}
			for _, name := range fields[1:] {
				if c.NetByName(name) != nil {
					return nil, fmt.Errorf("netlist: line %d: duplicate net %q", lineNo, name)
				}
				c.AddPI(name)
			}
		case "gate":
			if c == nil {
				return nil, fmt.Errorf("netlist: line %d: gate before circuit", lineNo)
			}
			if len(fields) < 4 {
				return nil, fmt.Errorf("netlist: line %d: gate needs instance, cell and output", lineNo)
			}
			inst, cellName, outName := fields[1], fields[2], fields[3]
			cell := lib.ByName(cellName)
			if cell == nil {
				return nil, fmt.Errorf("netlist: line %d: unknown cell %q", lineNo, cellName)
			}
			if c.NetByName(outName) != nil {
				return nil, fmt.Errorf("netlist: line %d: duplicate net %q", lineNo, outName)
			}
			ins := fields[4:]
			if len(ins) != cell.NumInputs() {
				return nil, fmt.Errorf("netlist: line %d: %s expects %d inputs, got %d",
					lineNo, cellName, cell.NumInputs(), len(ins))
			}
			fanin := make([]*Net, len(ins))
			for i, name := range ins {
				n := c.NetByName(name)
				if n == nil {
					return nil, fmt.Errorf("netlist: line %d: undeclared net %q (gates must appear in topological order)", lineNo, name)
				}
				fanin[i] = n
			}
			out := c.addGateNamedNet(inst, cell, outName, fanin)
			_ = out
		case "output":
			if c == nil {
				return nil, fmt.Errorf("netlist: line %d: output before circuit", lineNo)
			}
			for _, name := range fields[1:] {
				n := c.NetByName(name)
				if n == nil {
					return nil, fmt.Errorf("netlist: line %d: undeclared output net %q", lineNo, name)
				}
				c.MarkPO(n)
			}
		default:
			return nil, fmt.Errorf("netlist: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if c == nil {
		return nil, fmt.Errorf("netlist: no circuit declaration found")
	}
	if err := c.Check(); err != nil {
		return nil, fmt.Errorf("netlist: parsed circuit inconsistent: %w", err)
	}
	return c, nil
}

// addGateNamedNet is AddGate with an explicit output net name (used by the
// parser so net names round-trip).
func (c *Circuit) addGateNamedNet(name string, cell *library.Cell, outName string, fanin []*Net) *Net {
	g := &Gate{ID: len(c.Gates), Name: name, Type: cell, Fanin: fanin}
	out := c.newNet(outName)
	out.Driver = g
	g.Out = out
	c.Gates = append(c.Gates, g)
	for i, in := range fanin {
		in.Fanout = append(in.Fanout, Pin{Gate: g, Pin: i})
	}
	return out
}
