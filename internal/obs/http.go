package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"
)

// ServeDebug starts the live-introspection HTTP server on addr and returns
// the server plus the bound address (useful with a ":0" addr in tests).
// Endpoints:
//
//	/metrics      the registry snapshot as JSON
//	/spans        the in-flight span stack — the pipeline's live call
//	              stack, so a stuck q-sweep is diagnosable from outside
//	/ledger       the run flight recorder's recent lines (404 until a
//	              ledger is attached); ?follow=1 streams new lines until
//	              the ledger closes or the client disconnects
//	/healthz      liveness probe: "ok\n" with status 200
//	/version      the obs schema version and go runtime, as JSON
//	/debug/pprof  the standard net/http/pprof handlers
//
// The server runs until the process exits or the caller calls Close; it
// serves snapshots only and never blocks the traced run.
func ServeDebug(t *Tracer, addr string) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: debugMux(t)}
	go srv.Serve(ln)
	return srv, ln.Addr(), nil
}

// debugMux builds the debug server's handler (exposed for in-process
// tests).
func debugMux(t *Tracer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := t.WriteMetricsJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		type spanRow struct {
			Name      string   `json:"name"`
			Depth     int      `json:"depth"`
			ElapsedMS float64  `json:"elapsed_ms"`
			Attrs     []string `json:"attrs,omitempty"`
		}
		rows := []spanRow{}
		for _, s := range t.InFlight() {
			rows = append(rows, spanRow{
				Name:      s.Name,
				Depth:     s.Depth,
				ElapsedMS: float64(s.Elapsed) / float64(time.Millisecond),
				Attrs:     s.Attrs,
			})
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		enc.Encode(rows)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/version", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]string{
			"schema": Version,
			"go":     runtime.Version(),
		})
	})
	mux.HandleFunc("/ledger", func(w http.ResponseWriter, r *http.Request) {
		l := t.Ledger()
		if l == nil {
			http.Error(w, "no ledger attached (run with -ledger)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		flush := func() {
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
		}
		follow := r.URL.Query().Get("follow") != ""
		// Subscribe before dumping the tail so no line can fall in the gap;
		// a line in both tail and channel would duplicate, so under follow
		// the tail is skipped and the client sees lines from now on.
		if !follow {
			for _, line := range l.Tail() {
				w.Write([]byte(line))
				w.Write([]byte{'\n'})
			}
			return
		}
		ch, cancel := l.Follow()
		defer cancel()
		flush()
		for {
			select {
			case line, ok := <-ch:
				if !ok {
					return
				}
				if _, err := w.Write(append([]byte(line), '\n')); err != nil {
					return
				}
				flush()
			case <-r.Context().Done():
				return
			}
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
