package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// ServeDebug starts the live-introspection HTTP server on addr and returns
// the server plus the bound address (useful with a ":0" addr in tests).
// Endpoints:
//
//	/metrics      the registry snapshot as JSON
//	/spans        the in-flight span stack — the pipeline's live call
//	              stack, so a stuck q-sweep is diagnosable from outside
//	/debug/pprof  the standard net/http/pprof handlers
//
// The server runs until the process exits or the caller calls Close; it
// serves snapshots only and never blocks the traced run.
func ServeDebug(t *Tracer, addr string) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: debugMux(t)}
	go srv.Serve(ln)
	return srv, ln.Addr(), nil
}

// debugMux builds the debug server's handler (exposed for in-process
// tests).
func debugMux(t *Tracer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := t.WriteMetricsJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		type spanRow struct {
			Name      string   `json:"name"`
			Depth     int      `json:"depth"`
			ElapsedMS float64  `json:"elapsed_ms"`
			Attrs     []string `json:"attrs,omitempty"`
		}
		rows := []spanRow{}
		for _, s := range t.InFlight() {
			rows = append(rows, spanRow{
				Name:      s.Name,
				Depth:     s.Depth,
				ElapsedMS: float64(s.Elapsed) / float64(time.Millisecond),
				Attrs:     s.Attrs,
			})
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		enc.Encode(rows)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
