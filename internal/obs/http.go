package obs

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Health is the liveness/readiness state a debug server reports. Liveness
// (/healthz) is unconditional: a process that answers at all is alive.
// Readiness (/readyz) flips to 503 the moment draining starts, so a load
// balancer or submission client stops routing new work to a process that is
// shutting down — while /healthz keeps answering 200 so the drain itself is
// not mistaken for a crash. The zero value is ready; nil is always ready.
type Health struct {
	draining atomic.Bool
}

// SetDraining marks the process as shutting down: /readyz turns 503 while
// /healthz stays 200. It is idempotent and safe from any goroutine.
func (h *Health) SetDraining() {
	if h != nil {
		h.draining.Store(true)
	}
}

// Draining reports whether SetDraining was called.
func (h *Health) Draining() bool {
	return h != nil && h.draining.Load()
}

// DebugServer is a running live-introspection HTTP server: the listener, its
// health state, and the shutdown channel that terminates streaming handlers
// (/ledger?follow=1) which would otherwise hold Shutdown open forever.
type DebugServer struct {
	srv    *http.Server
	addr   net.Addr
	health *Health

	closeOnce sync.Once
	done      chan struct{} // closed on Shutdown/Close; follow loops select on it
}

// ServeDebug starts the live-introspection HTTP server on addr and returns
// the server plus the bound address (useful with a ":0" addr in tests).
// Endpoints:
//
//	/metrics      the registry snapshot as JSON
//	/spans        the in-flight span stack — the pipeline's live call
//	              stack, so a stuck q-sweep is diagnosable from outside
//	/ledger       the run flight recorder's recent lines (404 until a
//	              ledger is attached); ?follow=1 streams new lines until
//	              the ledger closes, the client disconnects, or the
//	              server shuts down
//	/healthz      liveness probe: "ok\n" with status 200
//	/readyz       readiness probe: "ready\n" 200 while serving, 503
//	              "draining\n" once Shutdown begins
//	/version      the obs schema version and go runtime, as JSON
//	/debug/pprof  the standard net/http/pprof handlers
//
// The server runs until the process exits or the caller calls Shutdown
// (graceful, bounded by its context) or Close (immediate).
func ServeDebug(t *Tracer, addr string) (*DebugServer, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	s := &DebugServer{
		addr:   ln.Addr(),
		health: &Health{},
		done:   make(chan struct{}),
	}
	s.srv = &http.Server{Handler: DebugMux(t, s.health, s.done)}
	go s.srv.Serve(ln)
	return s, s.addr, nil
}

// Addr returns the server's bound address.
func (s *DebugServer) Addr() net.Addr { return s.addr }

// Health returns the server's health state, so an embedding process (the
// analysis server) can share one draining flag between its own admission
// control and the /readyz probe.
func (s *DebugServer) Health() *Health { return s.health }

// Shutdown drains the server gracefully, bounded by ctx: readiness flips to
// draining, in-flight streaming handlers are released (a /ledger?follow=1
// client sees EOF instead of pinning the server), and the listener closes
// once the remaining requests finish or the context expires. Safe to call
// more than once.
func (s *DebugServer) Shutdown(ctx context.Context) error {
	s.health.SetDraining()
	s.closeOnce.Do(func() { close(s.done) })
	return s.srv.Shutdown(ctx)
}

// Close shuts the server down immediately (tests and fatal paths).
func (s *DebugServer) Close() error {
	s.health.SetDraining()
	s.closeOnce.Do(func() { close(s.done) })
	return s.srv.Close()
}

// DebugMux builds the debug endpoints onto a fresh mux. It is exported so a
// larger server (cmd/dfmserve) can mount its own routes next to the standard
// introspection set. h reports /readyz (nil: always ready); shutdown, when
// non-nil, terminates streaming handlers when closed.
func DebugMux(t *Tracer, h *Health, shutdown <-chan struct{}) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := t.WriteMetricsJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		type spanRow struct {
			Name      string   `json:"name"`
			Depth     int      `json:"depth"`
			ElapsedMS float64  `json:"elapsed_ms"`
			Attrs     []string `json:"attrs,omitempty"`
		}
		rows := []spanRow{}
		for _, s := range t.InFlight() {
			rows = append(rows, spanRow{
				Name:      s.Name,
				Depth:     s.Depth,
				ElapsedMS: float64(s.Elapsed) / float64(time.Millisecond),
				Attrs:     s.Attrs,
			})
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		enc.Encode(rows)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if h.Draining() {
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte("draining\n"))
			return
		}
		w.Write([]byte("ready\n"))
	})
	mux.HandleFunc("/version", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]string{
			"schema": Version,
			"go":     runtime.Version(),
		})
	})
	mux.HandleFunc("/ledger", func(w http.ResponseWriter, r *http.Request) {
		l := t.Ledger()
		if l == nil {
			http.Error(w, "no ledger attached (run with -ledger)", http.StatusNotFound)
			return
		}
		ServeLedger(w, r, l, shutdown)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeLedger writes a ledger to one HTTP client: the recent tail by
// default, or a live NDJSON stream with ?follow=1 that ends when the ledger
// closes, the client disconnects, or shutdown closes. Exported so the
// analysis server's per-job /ledger endpoints reuse the exact semantics of
// the debug server's.
func ServeLedger(w http.ResponseWriter, r *http.Request, l *Ledger, shutdown <-chan struct{}) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	flush := func() {
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
	}
	follow := r.URL.Query().Get("follow") != ""
	// Subscribe before dumping the tail so no line can fall in the gap;
	// a line in both tail and channel would duplicate, so under follow
	// the tail is skipped and the client sees lines from now on.
	if !follow {
		for _, line := range l.Tail() {
			w.Write([]byte(line))
			w.Write([]byte{'\n'})
		}
		return
	}
	ch, cancel := l.Follow()
	defer cancel()
	flush()
	for {
		select {
		case line, ok := <-ch:
			if !ok {
				return
			}
			if _, err := w.Write(append([]byte(line), '\n')); err != nil {
				return
			}
			flush()
		case <-r.Context().Done():
			return
		case <-shutdown:
			return
		}
	}
}
