package obs

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The flight recorder's contract: a written ledger decodes to the records
// that were appended; the digest a reader recomputes equals the one the
// writer recorded; the canonical form is timing-blind; and every method is a
// no-op on a nil ledger.

// record appends one of each record type and returns the ledger's buffer.
func recordFixture(l *Ledger) {
	l.Stage(LedgerRecord{
		Stage: "analyze", Circuit: "c17", Gates: 6, Faults: 22,
		Detected: 20, Undetectable: 1, Aborted: 1,
		Tiers:    TierCounts{Collateral: 18, Podem: 3, SAT: 1},
		Searches: 4, Backtracks: 9, Conflicts: 2, Micros: 1234,
	})
	l.Verdict(LedgerRecord{Fault: 0, Status: "detected", Tier: TierCollateral})
	l.Verdict(LedgerRecord{Fault: 7, Status: "undetectable", Tier: TierSAT, BT: 41, Conf: 2, Micros: 987})
	l.Iter(LedgerRecord{Q: 5, Phase: 1, Iter: 1, U: 3, Smax: 4, F: 30, Tiers: TierCounts{Cache: 30}})
}

func TestLedgerRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	l := NewLedger(&buf)
	recordFixture(l)
	wantDigest := l.Digest()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	recs, err := ReadLedger(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// Three digested events plus the trailing summary.
	if len(recs) != 5 {
		t.Fatalf("decoded %d records, want 5", len(recs))
	}
	last := recs[len(recs)-1]
	if last.T != "summary" || last.Events != 4 || last.Digest != wantDigest {
		t.Errorf("summary = %+v, want events=4 digest=%s", last, wantDigest)
	}
	// A reader recomputes the writer's digest from the decoded records.
	got, err := LedgerDigest(recs)
	if err != nil {
		t.Fatal(err)
	}
	if got != wantDigest {
		t.Errorf("reader digest %s != writer digest %s", got, wantDigest)
	}
	// Field fidelity through the typed encoders.
	if recs[0].Tiers != (TierCounts{Collateral: 18, Podem: 3, SAT: 1}) || recs[0].Micros != 1234 {
		t.Errorf("stage record lost fields: %+v", recs[0])
	}
	if recs[1].Fault != 0 || recs[1].Status != "detected" || recs[1].Tier != TierCollateral {
		t.Errorf("fault-ID-zero verdict lost fields: %+v", recs[1])
	}
	if recs[2].BT != 41 || recs[2].Conf != 2 || recs[2].Micros != 987 {
		t.Errorf("verdict cost fields lost: %+v", recs[2])
	}
	if recs[3].Iter != 1 || recs[3].Tiers.Cache != 30 {
		t.Errorf("iter record lost fields: %+v", recs[3])
	}
}

func TestCanonicalFormIgnoresTiming(t *testing.T) {
	var a, b bytes.Buffer
	la, lb := NewLedger(&a), NewLedger(&b)
	la.Verdict(LedgerRecord{Fault: 3, Status: "detected", Tier: TierPodem, BT: 2, Micros: 11})
	lb.Verdict(LedgerRecord{Fault: 3, Status: "detected", Tier: TierPodem, BT: 2, Micros: 99999})
	if la.Digest() != lb.Digest() {
		t.Error("digests differ on timing-only difference")
	}
	la.Close()
	lb.Close()
	if bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("file bytes should differ (timing is recorded), only the canonical form is blind to it")
	}
	ra, _ := ReadLedger(bytes.NewReader(a.Bytes()))
	rb, _ := ReadLedger(bytes.NewReader(b.Bytes()))
	ca, err := CanonicalLedger(ra)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := CanonicalLedger(rb)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ca, cb) {
		t.Errorf("canonical forms differ:\n%s\n%s", ca, cb)
	}
}

// TestCanonicalConcatenation pins the resume identity the differential tests
// build on: splitting a record stream across two ledgers and concatenating
// their canonical forms equals the unsplit ledger's canonical form.
func TestCanonicalConcatenation(t *testing.T) {
	emitAll := func(ls ...*Ledger) {
		for _, l := range ls {
			recordFixture(l)
		}
	}
	var whole, part1, part2 bytes.Buffer
	lw, l1, l2 := NewLedger(&whole), NewLedger(&part1), NewLedger(&part2)
	emitAll(lw)
	emitAll(lw)
	emitAll(l1)
	emitAll(l2)
	lw.Close()
	l1.Close()
	l2.Close()
	canon := func(b *bytes.Buffer) []byte {
		recs, err := ReadLedger(bytes.NewReader(b.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		c, err := CanonicalLedger(recs)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	if got, want := canon(&whole), append(canon(&part1), canon(&part2)...); !bytes.Equal(got, want) {
		t.Errorf("canonical(whole) != canonical(part1)+canonical(part2)\n%s\nvs\n%s", got, want)
	}
}

func TestNilLedger(t *testing.T) {
	var l *Ledger
	l.Stage(LedgerRecord{Stage: "analyze"})
	l.Verdict(LedgerRecord{Fault: 1})
	l.Iter(LedgerRecord{Iter: 1})
	if l.Events() != 0 || l.Digest() != "" || l.Err() != nil || l.Tail() != nil {
		t.Error("nil ledger accessors not zero")
	}
	ch, cancel := l.Follow()
	if _, open := <-ch; open {
		t.Error("nil Follow channel not closed")
	}
	cancel()
	if err := l.Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}
	// A tracer without an attached ledger reports nil too.
	var tr *Tracer
	tr.AttachLedger(NewLedger(io.Discard))
	if tr.Ledger() != nil {
		t.Error("nil tracer holds a ledger")
	}
}

func TestLedgerFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	l, err := CreateLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	recordFixture(l)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	// Appending after Close is swallowed, not written.
	l.Verdict(LedgerRecord{Fault: 9, Status: "detected", Tier: TierPodem})

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := ReadLedger(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 || recs[4].T != "summary" {
		t.Fatalf("file holds %d records, want 4 + summary", len(recs))
	}
}

func TestLedgerTailAndFollow(t *testing.T) {
	l := NewLedger(io.Discard)
	ch, cancel := l.Follow()
	defer cancel()
	for i := 0; i < ledgerTail+10; i++ {
		l.Verdict(LedgerRecord{Fault: i, Status: "detected", Tier: TierCollateral})
	}
	tail := l.Tail()
	if len(tail) != ledgerTail {
		t.Fatalf("tail holds %d lines, want %d", len(tail), ledgerTail)
	}
	if !strings.Contains(tail[len(tail)-1], fmt.Sprintf(`"fault":%d`, ledgerTail+9)) {
		t.Errorf("tail did not keep the newest line: %s", tail[len(tail)-1])
	}
	if !strings.Contains(tail[0], fmt.Sprintf(`"fault":%d`, 10)) {
		t.Errorf("tail did not evict the oldest lines: %s", tail[0])
	}
	// The follower saw the first lines before its buffer overflowed, and its
	// channel closes with the ledger.
	first := <-ch
	if !strings.Contains(first, `"fault":0`) {
		t.Errorf("follower's first line = %s", first)
	}
	l.Close()
	open := true
	for open {
		_, open = <-ch
	}
}

func TestReadLedgerRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		`{"t":"wormhole"}`,
		`{"t":"verdict"`,
		`not json at all`,
	} {
		if _, err := ReadLedger(strings.NewReader(bad + "\n")); err == nil {
			t.Errorf("ReadLedger(%q) accepted malformed input", bad)
		}
	}
	// Blank lines are tolerated (trailing newline artifacts).
	recs, err := ReadLedger(strings.NewReader("\n\n{\"t\":\"iter\",\"q\":1}\n\n"))
	if err != nil || len(recs) != 1 {
		t.Errorf("blank-line tolerance: recs=%d err=%v", len(recs), err)
	}
}

func TestTierCounts(t *testing.T) {
	var tc TierCounts
	for _, tier := range []Tier{TierCache, TierImplic, TierCollateral, TierPodem, TierSAT, TierSATMemo, Tier("alien")} {
		tc.Add(tier)
	}
	want := TierCounts{Cache: 1, Implic: 1, Collateral: 1, Podem: 1, SAT: 1, SATMemo: 1}
	if tc != want {
		t.Errorf("Add walked the tiers wrong: %+v", tc)
	}
	if tc.Total() != 6 {
		t.Errorf("Total = %d, want 6 (unknown tier dropped)", tc.Total())
	}
	tc.Merge(TierCounts{Podem: 4, SATMemo: 2})
	if tc.Podem != 5 || tc.SATMemo != 3 {
		t.Errorf("Merge: %+v", tc)
	}
}

// FuzzLedger: the decoder and re-encoder never panic on arbitrary input, and
// on inputs they accept, canonicalization is a fixed point — decoding the
// canonical form and canonicalizing again is byte-identical.
func FuzzLedger(f *testing.F) {
	var seed bytes.Buffer
	l := NewLedger(&seed)
	recordFixture(l)
	l.Close()
	f.Add(seed.Bytes())
	f.Add([]byte(`{"t":"verdict","fault":0,"status":"detected","tier":"cache"}`))
	f.Add([]byte(`{"t":"stage"}` + "\n" + `{"t":"summary","events":1,"digest":"xyz"}`))
	f.Add([]byte("\x00\xff"))
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := ReadLedger(bytes.NewReader(data))
		if err != nil {
			return
		}
		canon, err := CanonicalLedger(recs)
		if err != nil {
			t.Fatalf("decoded records failed to re-encode: %v", err)
		}
		again, err := ReadLedger(bytes.NewReader(canon))
		if err != nil {
			t.Fatalf("canonical form does not decode: %v\n%s", err, canon)
		}
		canon2, err := CanonicalLedger(again)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(canon, canon2) {
			t.Fatalf("canonicalization is not a fixed point:\n%s\nvs\n%s", canon, canon2)
		}
		d1, _ := LedgerDigest(recs)
		d2, _ := LedgerDigest(again)
		if d1 != d2 {
			t.Fatalf("digest not stable across canonicalization: %s vs %s", d1, d2)
		}
	})
}

func TestHistogramQuantiles(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("bt", 10, 100, 1000)
	for i := 0; i < 90; i++ {
		h.Observe(5) // first bucket
	}
	for i := 0; i < 10; i++ {
		h.Observe(500) // third bucket (100, 1000]
	}
	hs := reg.Snapshot().Histograms["bt"]
	if hs.P50 != 10 {
		t.Errorf("p50 = %g, want 10 (first-bucket mass reports the first bound)", hs.P50)
	}
	if hs.P95 <= 100 || hs.P95 > 1000 {
		t.Errorf("p95 = %g, want within (100, 1000]", hs.P95)
	}
	if !(hs.P50 <= hs.P95 && hs.P95 <= hs.P99) {
		t.Errorf("quantiles not monotone: %g %g %g", hs.P50, hs.P95, hs.P99)
	}

	// Overflow mass clamps to the last bound.
	h2 := reg.Histogram("of", 1, 2)
	for i := 0; i < 10; i++ {
		h2.Observe(99)
	}
	if got := reg.Snapshot().Histograms["of"].P99; got != 2 {
		t.Errorf("overflow p99 = %g, want last bound 2", got)
	}

	// Empty histogram: all quantiles zero.
	reg.Histogram("empty", 1, 2)
	es := reg.Snapshot().Histograms["empty"]
	if es.P50 != 0 || es.P95 != 0 || es.P99 != 0 {
		t.Errorf("empty histogram quantiles: %g %g %g", es.P50, es.P95, es.P99)
	}

	// Degenerate snapshots don't divide by zero or index out of range.
	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Errorf("zero-value snapshot quantile = %g", got)
	}
}

func TestDebugEndpoints(t *testing.T) {
	tr := testTracer()
	ledger := NewLedger(io.Discard)
	tr.AttachLedger(ledger)
	ledger.Verdict(LedgerRecord{Fault: 5, Status: "undetectable", Tier: TierImplic})

	srv, addr, err := ServeDebug(tr, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + addr.String() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != 200 || body != "ok\n" {
		t.Errorf("/healthz = %d %q", code, body)
	}
	if code, body := get("/version"); code != 200 ||
		!strings.Contains(body, Version) || !strings.Contains(body, "go1") {
		t.Errorf("/version = %d %q", code, body)
	}
	if code, body := get("/ledger"); code != 200 || !strings.Contains(body, `"fault":5`) {
		t.Errorf("/ledger = %d %q", code, body)
	}

	// Without a ledger attached, /ledger is explicit about it.
	tr2 := testTracer()
	srv2, addr2, err := ServeDebug(tr2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	resp, err := http.Get("http://" + addr2.String() + "/ledger")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/ledger without a ledger = %d, want 404", resp.StatusCode)
	}
}
