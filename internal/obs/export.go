package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// traceEvent is one Chrome trace_event record. "X" (complete) events carry
// a start timestamp and duration in microseconds; chrome://tracing and
// Perfetto render them as nested slices per (pid, tid).
type traceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteChromeTrace exports every span as Chrome trace_event JSON, loadable
// in chrome://tracing or https://ui.perfetto.dev. Spans still open at
// export time are emitted with their elapsed-so-far duration and an
// inflight arg, so a trace dumped from a stuck run still shows where it
// was. On a nil tracer it writes a valid empty trace.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	tf := traceFile{TraceEvents: []traceEvent{}, DisplayTimeUnit: "ms"}
	if t != nil {
		t.mu.Lock()
		now := t.now().Sub(t.t0)
		for _, s := range t.spans {
			dur := s.dur
			args := map[string]string{}
			if !s.ended {
				dur = now - s.start
				args["inflight"] = "true"
			} else {
				args["alloc_bytes"] = strconv.FormatUint(s.alloc, 10)
			}
			for _, a := range s.attrs {
				args[a.Key] = attrValue(a)
			}
			tf.TraceEvents = append(tf.TraceEvents, traceEvent{
				Name: s.name,
				Cat:  category(s.name),
				Ph:   "X",
				Ts:   micros(s.start),
				Dur:  micros(dur),
				Pid:  1,
				Tid:  1,
				Args: args,
			})
		}
		t.mu.Unlock()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(tf)
}

// WriteMetricsJSON exports the registry snapshot as indented JSON (valid
// empty-map JSON on a nil tracer).
func (t *Tracer) WriteMetricsJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(t.Registry().Snapshot())
}

// category derives the trace event category from the span name's layer
// prefix ("atpg/podem" → "atpg"); uncategorized names fall into "span".
func category(name string) string {
	if i := strings.IndexByte(name, '/'); i > 0 {
		return name[:i]
	}
	return "span"
}

func micros(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// attrValue renders an attribute's value.
func attrValue(a Attr) string {
	switch a.kind {
	case attrInt:
		return strconv.FormatInt(a.num, 10)
	case attrFloat:
		return strconv.FormatFloat(a.fnum, 'g', 6, 64)
	default:
		return a.str
	}
}

// formatAttrs renders attributes as "key=value" strings.
func formatAttrs(attrs []Attr) []string {
	if len(attrs) == 0 {
		return nil
	}
	out := make([]string, len(attrs))
	for i, a := range attrs {
		out[i] = a.Key + "=" + attrValue(a)
	}
	return out
}

// summaryNode aggregates every span sharing one path (the names of its
// ancestors joined with its own), preserving tree shape and first-start
// order.
type summaryNode struct {
	name     string
	count    int
	dur      time.Duration
	alloc    uint64
	children []*summaryNode
	index    map[string]*summaryNode
}

func (n *summaryNode) child(name string) *summaryNode {
	if n.index == nil {
		n.index = map[string]*summaryNode{}
	}
	c := n.index[name]
	if c == nil {
		c = &summaryNode{name: name}
		n.index[name] = c
		n.children = append(n.children, c)
	}
	return c
}

// Summary renders the span tree as an indented table: spans with the same
// name under the same parent are aggregated into one line with an
// invocation count, total wall time, share of the root total, and total
// heap allocation. Empty string on a nil tracer.
func (t *Tracer) Summary() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	spans := append([]*Span(nil), t.spans...)
	now := t.now().Sub(t.t0)
	t.mu.Unlock()

	root := &summaryNode{}
	nodeOf := make([]*summaryNode, len(spans))
	var total time.Duration
	for i, s := range spans {
		parent := root
		if s.parent >= 0 {
			parent = nodeOf[s.parent]
		}
		n := parent.child(s.name)
		nodeOf[i] = n
		dur := s.dur
		if !s.ended {
			dur = now - s.start
		}
		n.count++
		n.dur += dur
		n.alloc += s.alloc
		if s.parent < 0 {
			total += dur
		}
	}
	var b strings.Builder
	var walk func(n *summaryNode, depth int)
	walk = func(n *summaryNode, depth int) {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(n.dur) / float64(total)
		}
		fmt.Fprintf(&b, "%-40s %5d× %12s %6.1f%% %10s\n",
			strings.Repeat("  ", depth)+n.name, n.count,
			n.dur.Round(time.Microsecond), pct, sizeString(n.alloc))
		for _, c := range n.children {
			walk(c, depth+1)
		}
	}
	for _, c := range root.children {
		walk(c, 0)
	}
	return b.String()
}

// sizeString renders a byte count in a human unit.
func sizeString(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}
