package obs

import (
	"bufio"
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestReadyzDrain pins the /readyz contract: 200 "ready" while serving, 503
// "draining" once Shutdown begins — while /healthz stays 200 throughout, so
// a drain is never mistaken for a crash.
func TestReadyzDrain(t *testing.T) {
	tr := New()
	srv, addr, err := ServeDebug(tr, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + addr.String() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/readyz"); code != 200 || body != "ready\n" {
		t.Fatalf("/readyz before drain = %d %q, want 200 ready", code, body)
	}
	// Flip the shared health state the way an embedding server does, then
	// verify the probe reports draining before the listener goes away.
	srv.Health().SetDraining()
	if code, body := get("/readyz"); code != 503 || body != "draining\n" {
		t.Fatalf("/readyz during drain = %d %q, want 503 draining", code, body)
	}
	if code, body := get("/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("/healthz during drain = %d %q, want 200 ok", code, body)
	}
}

// TestShutdownReleasesFollowStream is the regression test for the shutdown
// fix: an in-flight /ledger?follow=1 stream used to pin Shutdown until its
// client went away; now Shutdown's context deadline bounds the drain and the
// follower sees EOF promptly.
func TestShutdownReleasesFollowStream(t *testing.T) {
	tr := New()
	ledger := NewLedger(io.Discard)
	tr.AttachLedger(ledger)
	srv, addr, err := ServeDebug(tr, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + addr.String() + "/ledger?follow=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// Prove the stream is live before shutting down: one record must arrive.
	ledger.Verdict(LedgerRecord{Fault: 7, Status: "detected", Tier: TierPodem})
	br := bufio.NewReader(resp.Body)
	line, err := br.ReadString('\n')
	if err != nil || !strings.Contains(line, `"fault":7`) {
		t.Fatalf("follow stream first line = %q, %v", line, err)
	}

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		done <- srv.Shutdown(ctx)
	}()
	// The stream must terminate (EOF) without the client disconnecting.
	if _, err := io.ReadAll(br); err != nil {
		t.Fatalf("follow stream did not end cleanly: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Shutdown = %v, want nil (stream released before deadline)", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown still blocked after the follow stream ended")
	}
}
