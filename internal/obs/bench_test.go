package obs

import "testing"

// noopWork is the exact instrumentation shape the pipeline's hot paths use:
// a span with attrs, a counter lookup + increment, a histogram observation —
// all against a nil tracer. sink defeats dead-code elimination.
var sink *Span

func noopWork(tr *Tracer, c *Counter, h *Histogram) {
	sp := Start(tr, "atpg/podem", Int("faults", 7952), String("circuit", "wb_conmax"))
	c.Add(1)
	h.Observe(42)
	sp.Annotate(Int("kept", 110))
	sp.End()
	sink = sp
}

// TestNoopZeroAllocs pins the package's core contract: with a nil tracer,
// the full instrumentation pattern performs zero heap allocations, so
// unconditional instrumentation of the ATPG hot loop is free when -tracefile
// is not passed.
func TestNoopZeroAllocs(t *testing.T) {
	var tr *Tracer
	c := tr.Counter("atpg/podem_searches")
	h := tr.Histogram("atpg/podem_backtracks_per_search", 0, 1, 4)
	if avg := testing.AllocsPerRun(1000, func() { noopWork(tr, c, h) }); avg != 0 {
		t.Fatalf("no-op instrumentation allocates %.1f allocs/op, want 0", avg)
	}
}

func BenchmarkNoopTracer(b *testing.B) {
	var tr *Tracer
	c := tr.Counter("atpg/podem_searches")
	h := tr.Histogram("atpg/podem_backtracks_per_search", 0, 1, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		noopWork(tr, c, h)
	}
}

// BenchmarkActiveSpan measures the live-tracer cost of one span for
// comparison with the no-op path (not asserted, informational).
func BenchmarkActiveSpan(b *testing.B) {
	tr := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := Start(tr, "bench/span", Int("i", i))
		sp.End()
	}
}
