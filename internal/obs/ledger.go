// The run flight recorder: a deterministic, append-only JSONL ledger that
// records one provenance event per fault verdict — which engine tier decided
// the fault, at what search cost — plus one stage record per analysis and
// one iter record per accepted resynthesis iteration.
//
// Determinism contract: every field except the timing fields ("us") is a
// pure function of (circuit, configuration, cache content). The canonical
// form of a ledger — each record re-encoded with its timing zeroed, summary
// records dropped — is therefore byte-identical at any worker count, and a
// run killed after iteration k and resumed produces two ledgers whose
// canonical concatenation equals the uninterrupted run's. The SHA-256 digest
// in the trailing summary record covers exactly that canonical form, so two
// runs agree iff their digests agree.
//
// The Ledger follows the package's "nil means off, and off is free"
// contract: every method is a no-op on a nil receiver, so the engine emits
// unconditionally and a run without -ledger pays only nil checks.
package obs

import (
	"bufio"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"hash"
	"io"
	"os"
	"sync"
	"time"
)

// Tier names the engine tier that decided a fault's verdict. Exactly one
// tier decides each fault:
//
//	cache       a trusted Undetectable verdict from the fault-verdict
//	            cache, or a detection while replaying cached witnesses
//	implic      the static implication screen proved it undetectable with
//	            zero searches
//	collateral  detected by simulation without its own search — a random-
//	            phase pattern or a test another fault's search emitted
//	podem       its own PODEM search decided it (including quarantined
//	            searches, which end Aborted)
//	sat         a fresh CDCL escalation solved it after PODEM gave up
//	sat-memo    a within-run memoized undetectability proof of a
//	            cone-isomorphic fault settled it
type Tier string

// The provenance tiers, in pipeline order.
const (
	TierCache      Tier = "cache"
	TierImplic     Tier = "implic"
	TierCollateral Tier = "collateral"
	TierPodem      Tier = "podem"
	TierSAT        Tier = "sat"
	TierSATMemo    Tier = "sat-memo"
)

// TierCounts is a per-tier verdict count — the provenance breakdown of one
// analysis stage or resynthesis iteration.
type TierCounts struct {
	Cache      int `json:"cache,omitempty"`
	Implic     int `json:"implic,omitempty"`
	Collateral int `json:"collateral,omitempty"`
	Podem      int `json:"podem,omitempty"`
	SAT        int `json:"sat,omitempty"`
	SATMemo    int `json:"sat_memo,omitempty"`
}

// Add counts one verdict decided by the given tier (unknown tiers are
// ignored — they can only come from a decoded foreign ledger).
func (t *TierCounts) Add(tier Tier) {
	switch tier {
	case TierCache:
		t.Cache++
	case TierImplic:
		t.Implic++
	case TierCollateral:
		t.Collateral++
	case TierPodem:
		t.Podem++
	case TierSAT:
		t.SAT++
	case TierSATMemo:
		t.SATMemo++
	}
}

// Merge accumulates another breakdown into t.
func (t *TierCounts) Merge(o TierCounts) {
	t.Cache += o.Cache
	t.Implic += o.Implic
	t.Collateral += o.Collateral
	t.Podem += o.Podem
	t.SAT += o.SAT
	t.SATMemo += o.SATMemo
}

// Total sums the breakdown.
func (t TierCounts) Total() int {
	return t.Cache + t.Implic + t.Collateral + t.Podem + t.SAT + t.SATMemo
}

// LedgerRecord is the decoded form of one ledger line, flat across the four
// record types; T discriminates. Fields not belonging to the record's type
// stay at their zero values.
type LedgerRecord struct {
	T string `json:"t"` // "stage", "verdict", "iter" or "summary"

	// Stage records: one per analysis (label "analyze", "analyze-incr" or
	// "verify"), emitted before its verdicts.
	Stage        string     `json:"stage,omitempty"`
	Circuit      string     `json:"circuit,omitempty"`
	Gates        int        `json:"gates,omitempty"`
	Faults       int        `json:"faults,omitempty"`
	Detected     int        `json:"detected,omitempty"`
	Undetectable int        `json:"undetectable,omitempty"`
	Aborted      int        `json:"aborted,omitempty"`
	Tiers        TierCounts `json:"tiers,omitempty"`
	Searches     int64      `json:"searches,omitempty"`
	Backtracks   int64      `json:"backtracks,omitempty"`
	Conflicts    int64      `json:"conflicts,omitempty"`

	// Verdict records: one per fault, in fault-ID order within a stage.
	Fault  int    `json:"fault,omitempty"`
	Status string `json:"status,omitempty"`
	Tier   Tier   `json:"tier,omitempty"`
	BT     int    `json:"bt,omitempty"`
	Conf   int64  `json:"conf,omitempty"`

	// Iter records: one per accepted resynthesis iteration.
	Q     int `json:"q,omitempty"`
	Phase int `json:"phase,omitempty"`
	Iter  int `json:"iter,omitempty"`
	U     int `json:"u,omitempty"`
	Smax  int `json:"smax,omitempty"`
	F     int `json:"f,omitempty"`

	// Micros is wall-clock cost (stage wall time, or one search's cost).
	// It is the one field excluded from the canonical form and the digest.
	Micros int64 `json:"us,omitempty"`

	// Summary record (written by Close, excluded from the digest): the
	// event count and the SHA-256 digest of the canonical ledger.
	Events int    `json:"events,omitempty"`
	Digest string `json:"digest,omitempty"`
}

// Record type discriminators.
const (
	recStage   = "stage"
	recVerdict = "verdict"
	recIter    = "iter"
	recSummary = "summary"
)

// Typed encode shapes: one struct per record type so each line carries only
// its own fields. Both the file line and the canonical digest line come from
// encodeRecord, which is the single encoder — the digest a reader recomputes
// from decoded records matches the writer's by construction.
type stageJSON struct {
	T            string     `json:"t"`
	Stage        string     `json:"stage"`
	Circuit      string     `json:"circuit"`
	Gates        int        `json:"gates"`
	Faults       int        `json:"faults"`
	Detected     int        `json:"detected"`
	Undetectable int        `json:"undetectable"`
	Aborted      int        `json:"aborted"`
	Tiers        TierCounts `json:"tiers"`
	Searches     int64      `json:"searches"`
	Backtracks   int64      `json:"backtracks"`
	Conflicts    int64      `json:"conflicts"`
	Micros       int64      `json:"us,omitempty"`
}

type verdictJSON struct {
	T      string `json:"t"`
	Fault  int    `json:"fault"`
	Status string `json:"status"`
	Tier   Tier   `json:"tier"`
	BT     int    `json:"bt,omitempty"`
	Conf   int64  `json:"conf,omitempty"`
	Micros int64  `json:"us,omitempty"`
}

type iterJSON struct {
	T     string     `json:"t"`
	Q     int        `json:"q"`
	Phase int        `json:"phase"`
	Iter  int        `json:"iter"`
	U     int        `json:"u"`
	Smax  int        `json:"smax"`
	F     int        `json:"f"`
	Tiers TierCounts `json:"tiers"`
}

type summaryJSON struct {
	T      string `json:"t"`
	Events int    `json:"events"`
	Digest string `json:"digest"`
}

// encodeRecord renders one record as its JSON line (no trailing newline).
// canonical zeroes the timing field — the digest input — and is a no-op for
// the record types that carry no timing.
func encodeRecord(rec LedgerRecord, canonical bool) ([]byte, error) {
	us := rec.Micros
	if canonical {
		us = 0
	}
	switch rec.T {
	case recStage:
		return json.Marshal(stageJSON{
			T: recStage, Stage: rec.Stage, Circuit: rec.Circuit,
			Gates: rec.Gates, Faults: rec.Faults,
			Detected: rec.Detected, Undetectable: rec.Undetectable, Aborted: rec.Aborted,
			Tiers: rec.Tiers, Searches: rec.Searches, Backtracks: rec.Backtracks,
			Conflicts: rec.Conflicts, Micros: us,
		})
	case recVerdict:
		return json.Marshal(verdictJSON{
			T: recVerdict, Fault: rec.Fault, Status: rec.Status, Tier: rec.Tier,
			BT: rec.BT, Conf: rec.Conf, Micros: us,
		})
	case recIter:
		return json.Marshal(iterJSON{
			T: recIter, Q: rec.Q, Phase: rec.Phase, Iter: rec.Iter,
			U: rec.U, Smax: rec.Smax, F: rec.F, Tiers: rec.Tiers,
		})
	case recSummary:
		return json.Marshal(summaryJSON{T: recSummary, Events: rec.Events, Digest: rec.Digest})
	}
	return nil, fmt.Errorf("obs: ledger record type %q", rec.T)
}

// ledgerTail bounds the in-memory ring of recent lines served by the /ledger
// debug endpoint.
const ledgerTail = 512

// Ledger is the append-only run flight recorder. All methods are safe for
// concurrent use and are no-ops on a nil receiver.
type Ledger struct {
	mu     sync.Mutex
	w      *bufio.Writer
	c      io.Closer // non-nil when the ledger owns the file
	f      *os.File  // sync target when the ledger owns a file
	h      hash.Hash // SHA-256 over the canonical lines
	events int
	err    error // first write/encode error; sticky
	closed bool

	tail []string // ring of the most recent lines, oldest first
	subs []chan string
}

// NewLedger wraps an arbitrary writer (a buffer in tests, a pipe in a
// server) as a ledger. Close flushes but does not close the writer.
func NewLedger(w io.Writer) *Ledger {
	return &Ledger{w: bufio.NewWriter(w), h: sha256.New()}
}

// CreateLedger creates (truncating) the ledger file at path. Close flushes
// and closes it.
func CreateLedger(path string) (*Ledger, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: create ledger: %w", err)
	}
	l := NewLedger(f)
	l.c = f
	l.f = f
	return l, nil
}

// append encodes and writes one record, feeding the digest (summary records
// excluded), the tail ring, and any followers.
func (l *Ledger) append(rec LedgerRecord) {
	if l == nil {
		return
	}
	line, err := encodeRecord(rec, false)
	if err != nil {
		l.fail(err)
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed || l.err != nil {
		return
	}
	if rec.T != recSummary {
		canon, err := encodeRecord(rec, true)
		if err != nil {
			l.err = err
			return
		}
		l.h.Write(canon)
		l.h.Write([]byte{'\n'})
		l.events++
	}
	if _, err := l.w.Write(append(line, '\n')); err != nil {
		l.err = fmt.Errorf("obs: ledger write: %w", err)
		return
	}
	// Durability barrier at every iter record: the resynthesis loop writes
	// its checkpoint journal right after emitting the commit's iter record,
	// and crash recovery truncates the on-disk ledger at the checkpoint's
	// commit count — so the iter record (and everything before it) must be
	// on disk before the checkpoint that references it can land. Without
	// this, a SIGKILL can lose up to a bufio buffer of records that the
	// checkpoint claims were written.
	if rec.T == recIter {
		if err := l.w.Flush(); err != nil {
			l.err = fmt.Errorf("obs: ledger flush: %w", err)
			return
		}
		if l.f != nil {
			if err := l.f.Sync(); err != nil {
				l.err = fmt.Errorf("obs: ledger sync: %w", err)
				return
			}
		}
	}
	s := string(line)
	if len(l.tail) == ledgerTail {
		copy(l.tail, l.tail[1:])
		l.tail[len(l.tail)-1] = s
	} else {
		l.tail = append(l.tail, s)
	}
	for _, ch := range l.subs {
		select {
		case ch <- s:
		default: // a stalled follower drops lines rather than stalling the run
		}
	}
}

func (l *Ledger) fail(err error) {
	l.mu.Lock()
	if l.err == nil {
		l.err = err
	}
	l.mu.Unlock()
}

// Stage records one analysis stage's summary. Emit it before the stage's
// verdicts; rec.T is set by the ledger.
func (l *Ledger) Stage(rec LedgerRecord) {
	if l == nil {
		return
	}
	rec.T = recStage
	l.append(rec)
}

// Verdict records one fault's provenance event.
func (l *Ledger) Verdict(rec LedgerRecord) {
	if l == nil {
		return
	}
	rec.T = recVerdict
	l.append(rec)
}

// Iter records one accepted resynthesis iteration.
func (l *Ledger) Iter(rec LedgerRecord) {
	if l == nil {
		return
	}
	rec.T = recIter
	l.append(rec)
}

// Events returns the number of digested records appended so far.
func (l *Ledger) Events() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.events
}

// Digest returns the hex SHA-256 of the canonical ledger so far.
func (l *Ledger) Digest() string {
	if l == nil {
		return ""
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return fmt.Sprintf("%x", l.h.Sum(nil))
}

// Err returns the first write or encode error (sticky; nil on a nil ledger).
func (l *Ledger) Err() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Tail returns a copy of the most recent lines (the /ledger endpoint's dump).
func (l *Ledger) Tail() []string {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.tail...)
}

// Follow subscribes to lines appended after the call. The channel closes
// when the ledger does; cancel unsubscribes early. A follower that falls
// behind misses lines instead of blocking the run. nil ledger: a closed
// channel and a no-op cancel.
func (l *Ledger) Follow() (<-chan string, func()) {
	if l == nil {
		ch := make(chan string)
		close(ch)
		return ch, func() {}
	}
	ch := make(chan string, 256)
	l.mu.Lock()
	if l.closed {
		close(ch)
		l.mu.Unlock()
		return ch, func() {}
	}
	l.subs = append(l.subs, ch)
	l.mu.Unlock()
	cancel := func() {
		l.mu.Lock()
		for i, c := range l.subs {
			if c == ch {
				l.subs = append(l.subs[:i], l.subs[i+1:]...)
				close(ch)
				break
			}
		}
		l.mu.Unlock()
	}
	return ch, cancel
}

// Close writes the trailing summary record (event count + digest), flushes,
// closes the file when the ledger owns one, and closes every follower. It
// returns the first error the ledger hit. Closing twice, or a nil ledger,
// is a no-op.
func (l *Ledger) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	if l.closed {
		err := l.err
		l.mu.Unlock()
		return err
	}
	digest := fmt.Sprintf("%x", l.h.Sum(nil))
	events := l.events
	l.mu.Unlock()
	l.append(LedgerRecord{T: recSummary, Events: events, Digest: digest})
	l.mu.Lock()
	l.closed = true
	if ferr := l.w.Flush(); ferr != nil && l.err == nil {
		l.err = fmt.Errorf("obs: ledger flush: %w", ferr)
	}
	if l.c != nil {
		if cerr := l.c.Close(); cerr != nil && l.err == nil {
			l.err = fmt.Errorf("obs: ledger close: %w", cerr)
		}
	}
	for _, ch := range l.subs {
		close(ch)
	}
	l.subs = nil
	err := l.err
	l.mu.Unlock()
	return err
}

// maxLedgerLine bounds one ledger line for the decoder — far above anything
// the writer emits, low enough that a hostile input cannot balloon memory.
const maxLedgerLine = 1 << 20

// ReadLedger decodes a JSONL ledger stream. Unknown record types, invalid
// JSON, and oversized lines are errors; blank lines are skipped. The decoder
// never panics on malformed input (pinned by FuzzLedger).
func ReadLedger(r io.Reader) ([]LedgerRecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxLedgerLine)
	var recs []LedgerRecord
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec LedgerRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, fmt.Errorf("obs: ledger line %d: %w", lineNo, err)
		}
		switch rec.T {
		case recStage, recVerdict, recIter, recSummary:
		default:
			return nil, fmt.Errorf("obs: ledger line %d: unknown record type %q", lineNo, rec.T)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: ledger line %d: %w", lineNo+1, err)
	}
	return recs, nil
}

// CanonicalLedger re-encodes decoded records into the canonical byte form:
// timings zeroed (the us fields vanish under omitempty) and summary records
// dropped. Two ledgers are equivalent — same verdicts, same tiers, same
// stage and iteration structure — iff their canonical forms are equal, which
// is also exactly what the digest covers: the canonical form of a killed
// run's ledger concatenated with its resumed continuation's equals the
// uninterrupted run's.
func CanonicalLedger(recs []LedgerRecord) ([]byte, error) {
	var out []byte
	for _, rec := range recs {
		if rec.T == recSummary {
			continue
		}
		line, err := encodeRecord(rec, true)
		if err != nil {
			return nil, err
		}
		out = append(out, line...)
		out = append(out, '\n')
	}
	return out, nil
}

// LedgerDigest recomputes the canonical digest of decoded records — equal to
// the writer's Digest() (and its summary record) for an unmodified ledger.
func LedgerDigest(recs []LedgerRecord) (string, error) {
	canon, err := CanonicalLedger(recs)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%x", sha256.Sum256(canon)), nil
}

// SlowSearch identifies one of a run's costliest searches: the fault, the
// tier that finally decided it, and the wall micros its search spent
// (PODEM plus any escalation).
type SlowSearch struct {
	Fault      int
	Tier       Tier
	Backtracks int
	Micros     int64
}

// ledgerEpoch anchors NowMicros. Only differences of NowMicros values are
// meaningful.
var ledgerEpoch = time.Now()

// NowMicros returns wall micros since an arbitrary process epoch. It exists
// so the deterministic engine packages (which the vetdfm suite bans from
// reading the clock directly) can stamp the ledger's timing fields — the
// fields the canonical form and digest exclude — without owning a clock.
func NowMicros() int64 {
	return time.Since(ledgerEpoch).Microseconds()
}
