package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// testTracer builds a tracer with a deterministic clock (each probe call
// advances 1ms) and allocation counter (each probe call adds 4096 bytes), so
// span timings and alloc deltas — and therefore the Chrome trace export —
// are exactly reproducible.
func testTracer() *Tracer {
	tr := New()
	base := time.Unix(0, 0)
	tr.t0 = base
	var tick time.Duration
	tr.now = func() time.Time {
		tick += time.Millisecond
		return base.Add(tick)
	}
	var alloc uint64
	tr.allocBytes = func() uint64 {
		alloc += 4096
		return alloc
	}
	return tr
}

func TestSpanNesting(t *testing.T) {
	tr := testTracer()

	root := Start(tr, "flow/analyze")
	child := Start(tr, "atpg/podem", Int("faults", 42))
	grand := Start(tr, "atpg/compact")

	if got := tr.InFlight(); len(got) != 3 {
		t.Fatalf("InFlight = %d spans, want 3", len(got))
	} else {
		for i, name := range []string{"flow/analyze", "atpg/podem", "atpg/compact"} {
			if got[i].Name != name || got[i].Depth != i {
				t.Errorf("InFlight[%d] = %q depth %d, want %q depth %d",
					i, got[i].Name, got[i].Depth, name, i)
			}
		}
	}

	grand.End()
	child.End()
	// Sibling after the first child: same parent, later ID.
	sib := Start(tr, "flow/cluster")
	sib.End()
	root.End()

	if root.parent != -1 {
		t.Errorf("root.parent = %d, want -1", root.parent)
	}
	if child.parent != root.id {
		t.Errorf("child.parent = %d, want root id %d", child.parent, root.id)
	}
	if grand.parent != child.id {
		t.Errorf("grand.parent = %d, want child id %d", grand.parent, child.id)
	}
	if sib.parent != root.id {
		t.Errorf("sib.parent = %d, want root id %d", sib.parent, root.id)
	}
	// IDs are start order.
	if !(root.id < child.id && child.id < grand.id && grand.id < sib.id) {
		t.Errorf("span IDs not in start order: %d %d %d %d", root.id, child.id, grand.id, sib.id)
	}
	if len(tr.InFlight()) != 0 {
		t.Errorf("InFlight after all ended = %v, want empty", tr.InFlight())
	}
	// Child fully contained in root on the fake clock.
	if child.start <= root.start || child.start+child.dur > root.start+root.dur {
		t.Errorf("child [%v +%v] not inside root [%v +%v]",
			child.start, child.dur, root.start, root.dur)
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	tr := testTracer()
	s := Start(tr, "x")
	s.End()
	dur := s.dur
	s.End() // must not re-measure or double-pop
	if s.dur != dur {
		t.Errorf("second End changed dur: %v -> %v", dur, s.dur)
	}
}

func TestOutOfOrderEnd(t *testing.T) {
	tr := testTracer()
	a := Start(tr, "a")
	b := Start(tr, "b")
	a.End() // out of order: must remove only a, leaving b open
	inflight := tr.InFlight()
	if len(inflight) != 1 || inflight[0].Name != "b" {
		t.Fatalf("InFlight after out-of-order End = %+v, want just b", inflight)
	}
	b.End()
	if len(tr.InFlight()) != 0 {
		t.Errorf("InFlight not empty after ending b")
	}
}

func TestChromeTraceGolden(t *testing.T) {
	tr := testTracer()

	root := Start(tr, "dfmresyn/run")
	an := Start(tr, "flow/analyze", String("circuit", "wb_conmax"))
	atpg := Start(tr, "flow/atpg")
	pod := Start(tr, "atpg/podem", Int("faults", 7952))
	pod.End()
	atpg.Annotate(Int("tests", 110), Float("cov", 0.9876))
	atpg.End()
	an.End()
	open := Start(tr, "resyn/sweep") // left open: exported as in-flight
	_ = open
	root.Annotate(Int64("seed", 1))

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	// The export must be valid trace_event JSON before we pin its bytes.
	var tf struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(tf.TraceEvents) != 5 {
		t.Fatalf("exported %d events, want 5", len(tf.TraceEvents))
	}
	checkGolden(t, "trace.golden", buf.Bytes())
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestConcurrentInstruments hammers one counter, gauge, histogram and series
// from many goroutines; run under -race this pins the concurrency contract
// workers rely on (faultsim increments pool counters from inside par.Each).
func TestConcurrentInstruments(t *testing.T) {
	reg := NewRegistry()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := reg.Counter("hits")
			h := reg.Histogram("lat", 1, 10, 100)
			s := reg.Series("traj")
			g := reg.Gauge("level")
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(float64(i % 200))
				s.Append(1)
				g.Set(float64(i))
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("hits").Get(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	snap := reg.Snapshot()
	hs := snap.Histograms["lat"]
	if hs.Count != workers*per {
		t.Errorf("histogram count = %d, want %d", hs.Count, workers*per)
	}
	var sum int64
	for _, c := range hs.Counts {
		sum += c
	}
	if sum != hs.Count {
		t.Errorf("histogram bucket sum = %d, want %d", sum, hs.Count)
	}
	if got := len(snap.Series["traj"]); got != workers*per {
		t.Errorf("series length = %d, want %d", got, workers*per)
	}
}

func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("bt", 0, 4, 16)
	for _, v := range []float64{0, 0, 3, 4, 5, 16, 17, 1000} {
		h.Observe(v)
	}
	hs := reg.Snapshot().Histograms["bt"]
	want := []int64{2, 2, 2, 2} // <=0, <=4, <=16, +Inf
	for i, w := range want {
		if hs.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (all: %v)", i, hs.Counts[i], w, hs.Counts)
		}
	}
	if hs.Sum != 1045 || hs.Count != 8 {
		t.Errorf("sum/count = %v/%d, want 1045/8", hs.Sum, hs.Count)
	}
}

// TestNilSafety drives every entry point through nil receivers — the no-op
// contract the pipeline's unconditional instrumentation depends on.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	sp := Start(tr, "x", Int("k", 1))
	if sp != nil {
		t.Fatalf("Start(nil) = %v, want nil", sp)
	}
	sp.End()
	sp.Annotate(String("k", "v"))
	tr.Counter("c").Add(3)
	tr.Counter("c").Inc()
	if tr.Counter("c").Get() != 0 {
		t.Error("nil counter Get != 0")
	}
	tr.Gauge("g").Set(1)
	if tr.Gauge("g").Get() != 0 {
		t.Error("nil gauge Get != 0")
	}
	tr.Histogram("h", 1, 2).Observe(1)
	tr.Series("s").Append(1)
	if tr.Series("s").Values() != nil {
		t.Error("nil series Values != nil")
	}
	if tr.InFlight() != nil {
		t.Error("nil tracer InFlight != nil")
	}
	if tr.Summary() != "" {
		t.Error("nil tracer Summary != \"\"")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("nil WriteChromeTrace: %v", err)
	}
	var tf map[string]any
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("nil trace export not valid JSON: %v", err)
	}
	buf.Reset()
	if err := tr.WriteMetricsJSON(&buf); err != nil {
		t.Fatalf("nil WriteMetricsJSON: %v", err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("nil metrics export not valid JSON: %v", err)
	}
}

func TestSummary(t *testing.T) {
	tr := testTracer()
	root := Start(tr, "resyn/sweep")
	for i := 0; i < 3; i++ {
		it := Start(tr, "resyn/iter", Int("iter", i))
		it.End()
	}
	root.End()
	sum := tr.Summary()
	if !strings.Contains(sum, "resyn/sweep") || !strings.Contains(sum, "resyn/iter") {
		t.Fatalf("summary missing span names:\n%s", sum)
	}
	if !strings.Contains(sum, "3×") {
		t.Errorf("summary does not aggregate the 3 iter spans into one 3× line:\n%s", sum)
	}
}

func TestServeDebug(t *testing.T) {
	tr := testTracer()
	Start(tr, "flow/analyze") // left open so /spans has content
	tr.Counter("atpg/faults_classified").Add(7952)

	srv, addr, err := ServeDebug(tr, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get("http://" + addr.String() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	var snap Snapshot
	if err := json.Unmarshal(get("/metrics"), &snap); err != nil {
		t.Fatalf("/metrics not valid JSON: %v", err)
	}
	if snap.Counters["atpg/faults_classified"] != 7952 {
		t.Errorf("/metrics counter = %d, want 7952", snap.Counters["atpg/faults_classified"])
	}
	var rows []map[string]any
	if err := json.Unmarshal(get("/spans"), &rows); err != nil {
		t.Fatalf("/spans not valid JSON: %v", err)
	}
	if len(rows) != 1 || rows[0]["name"] != "flow/analyze" {
		t.Errorf("/spans = %v, want one flow/analyze row", rows)
	}
	if body := get("/debug/pprof/"); !bytes.Contains(body, []byte("profile")) {
		t.Errorf("/debug/pprof/ index does not mention profiles")
	}
}
