// Package obs is the zero-dependency observability layer of the pipeline:
// hierarchical span tracing (wall time and heap allocation per stage), a
// registry of named counters, gauges, histograms and series, and a debug
// HTTP endpoint exposing both plus net/http/pprof.
//
// The central contract is "nil means off, and off is free": every entry
// point — obs.Start, (*Span).End, (*Tracer).Counter, (*Counter).Add — is
// safe on a nil receiver and performs zero heap allocations on the nil
// path, so the ATPG hot loop can be instrumented unconditionally and a run
// without -tracefile pays only a nil check (pinned by TestNoopZeroAllocs
// and BenchmarkNoopTracer). Tables are byte-identical with tracing on or
// off because the layer only observes; it never feeds back into control
// flow.
//
// Span nesting follows the tracer's logical call stack: Start pushes, End
// pops, and a span started while another is open becomes its child. The
// pipeline's coordinating goroutine owns that stack (analyze →
// place/route/dfm/atpg; resyn → phase → iteration → backtrack); worker
// goroutines report through the registry's atomic counters instead of
// opening spans.
package obs

import (
	"runtime/metrics"
	"sync"
	"time"
)

// Attr is one key/value span attribute. Values are held unformatted (no
// strconv on the caller's path) so constructing an Attr never allocates.
type Attr struct {
	Key  string
	str  string
	num  int64
	fnum float64
	kind attrKind
}

type attrKind uint8

const (
	attrString attrKind = iota
	attrInt
	attrFloat
)

// String builds a string-valued attribute.
func String(key, v string) Attr { return Attr{Key: key, str: v, kind: attrString} }

// Int builds an integer-valued attribute.
func Int(key string, v int) Attr { return Attr{Key: key, num: int64(v), kind: attrInt} }

// Int64 builds an integer-valued attribute from an int64.
func Int64(key string, v int64) Attr { return Attr{Key: key, num: v, kind: attrInt} }

// Float builds a float-valued attribute.
func Float(key string, v float64) Attr { return Attr{Key: key, fnum: v, kind: attrFloat} }

// Tracer records a run's spans and owns its metrics registry. The zero
// value is not usable; call New. A nil *Tracer is the no-op tracer.
type Tracer struct {
	reg *Registry

	// now and allocBytes are the clock and allocation probes; tests swap
	// them for deterministic golden files.
	now        func() time.Time
	allocBytes func() uint64

	mu     sync.Mutex
	t0     time.Time
	stack  []*Span // in-flight spans, open order
	spans  []*Span // every started span, start order (ID = index)
	ledger *Ledger // run flight recorder, when AttachLedger was called
}

// Version identifies the observability exports' schema — bumped when the
// trace, metrics-snapshot, or ledger formats change shape. Served by the
// debug server's /version endpoint.
const Version = "dfmresyn-obs/2"

// AttachLedger exposes the run's ledger on the debug server's /ledger
// endpoint. No-op on a nil tracer.
func (t *Tracer) AttachLedger(l *Ledger) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.ledger = l
	t.mu.Unlock()
}

// Ledger returns the attached ledger, or nil.
func (t *Tracer) Ledger() *Ledger {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ledger
}

// New builds a Tracer with a fresh Registry, wall clock, and heap probe.
func New() *Tracer {
	return &Tracer{
		reg:        NewRegistry(),
		now:        time.Now,
		allocBytes: readHeapAllocBytes,
		t0:         time.Now(),
	}
}

// Registry returns the tracer's metrics registry (nil for a nil tracer, so
// registry methods chain nil-safely).
func (t *Tracer) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// Counter returns the named counter of the tracer's registry (nil no-op
// counter for a nil tracer).
func (t *Tracer) Counter(name string) *Counter { return t.Registry().Counter(name) }

// Gauge returns the named gauge (nil no-op gauge for a nil tracer).
func (t *Tracer) Gauge(name string) *Gauge { return t.Registry().Gauge(name) }

// Histogram returns the named fixed-bucket histogram (nil for a nil
// tracer). Bounds are only consulted on first creation.
func (t *Tracer) Histogram(name string, bounds ...float64) *Histogram {
	return t.Registry().Histogram(name, bounds...)
}

// Series returns the named append-only series (nil for a nil tracer).
func (t *Tracer) Series(name string) *Series { return t.Registry().Series(name) }

// Span is one traced interval. A nil *Span (from a nil tracer) accepts
// every method as a no-op.
type Span struct {
	tr     *Tracer
	id     int
	parent int // parent span ID, -1 at top level
	name   string
	attrs  []Attr

	start      time.Duration // offset from the tracer's t0
	dur        time.Duration
	startAlloc uint64
	alloc      uint64 // heap bytes allocated while the span was open
	ended      bool
}

// Start opens a span named name under the innermost open span and returns
// it; the caller must End it. On a nil tracer it returns nil immediately —
// the attrs slice is not retained on any path (active spans copy it), so
// the variadic call does not allocate when the tracer is off.
func Start(t *Tracer, name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	s := &Span{tr: t, name: name, parent: -1}
	if len(attrs) > 0 {
		s.attrs = append([]Attr(nil), attrs...)
	}
	s.startAlloc = t.allocBytes()
	t.mu.Lock()
	s.id = len(t.spans)
	if n := len(t.stack); n > 0 {
		s.parent = t.stack[n-1].id
	}
	s.start = t.now().Sub(t.t0)
	t.spans = append(t.spans, s)
	t.stack = append(t.stack, s)
	t.mu.Unlock()
	return s
}

// End closes the span, recording its duration and allocation delta. Ending
// a span twice, or a nil span, is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.tr
	alloc := t.allocBytes()
	t.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = t.now().Sub(t.t0) - s.start
		if alloc >= s.startAlloc {
			s.alloc = alloc - s.startAlloc
		}
		// Pop from the open stack; search from the top so an out-of-order
		// End (a bug, but not one worth corrupting the trace over) only
		// removes its own entry.
		for i := len(t.stack) - 1; i >= 0; i-- {
			if t.stack[i] == s {
				t.stack = append(t.stack[:i], t.stack[i+1:]...)
				break
			}
		}
	}
	t.mu.Unlock()
}

// Annotate appends attributes to an open or ended span — typically results
// only known at the end of a stage (nets reused, faults classified).
func (s *Span) Annotate(attrs ...Attr) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.attrs = append(s.attrs, attrs...)
	s.tr.mu.Unlock()
}

// InFlightSpan is a snapshot of one open span, innermost last — the live
// call stack of the pipeline, served by the /spans debug endpoint so a
// stuck q-sweep shows exactly which stage it is sitting in.
type InFlightSpan struct {
	Name    string        `json:"name"`
	Depth   int           `json:"depth"`
	Elapsed time.Duration `json:"elapsed"`
	Attrs   []string      `json:"attrs,omitempty"`
}

// InFlight snapshots the open span stack (nil tracer: nil).
func (t *Tracer) InFlight() []InFlightSpan {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now().Sub(t.t0)
	out := make([]InFlightSpan, len(t.stack))
	for i, s := range t.stack {
		out[i] = InFlightSpan{
			Name:    s.name,
			Depth:   i,
			Elapsed: now - s.start,
			Attrs:   formatAttrs(s.attrs),
		}
	}
	return out
}

// readHeapAllocBytes reads the cumulative heap allocation counter via
// runtime/metrics — cheap enough for span granularity (unlike
// runtime.ReadMemStats, it does not stop the world). The value is
// process-wide, so concurrent stages attribute their workers' allocations
// to whichever span is open; for the pipeline's coordinator-owned spans
// that is exactly the cost of the stage.
func readHeapAllocBytes() uint64 {
	s := []metrics.Sample{{Name: "/gc/heap/allocs:bytes"}}
	metrics.Read(s)
	if s[0].Value.Kind() == metrics.KindUint64 {
		return s[0].Value.Uint64()
	}
	return 0
}
