package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is a name-keyed collection of counters, gauges, histograms and
// series. Accessors create on first use; instruments are safe for
// concurrent use (counters and gauges are lock-free atomics, so worker
// goroutines increment them from inside par.Each). A nil *Registry returns
// nil instruments, whose methods are all no-ops.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	series   map[string]*Series
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		series:   make(map[string]*Series),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds on first use (a final +Inf bucket is implicit). Bounds must
// be ascending; they are ignored for an existing histogram.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{bounds: append([]float64(nil), bounds...), counts: make([]int64, len(bounds)+1)}
		r.hists[name] = h
	}
	return h
}

// Series returns the named append-only series, creating it on first use.
func (r *Registry) Series(name string) *Series {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.series[name]
	if s == nil {
		s = &Series{}
		r.series[name] = s
	}
	return s
}

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n (no-op on nil).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one (no-op on nil).
func (c *Counter) Inc() { c.Add(1) }

// Get returns the current value (0 on nil).
func (c *Counter) Get() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically settable float value (last write wins).
type Gauge struct{ bits atomic.Uint64 }

// Set stores v (no-op on nil).
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Get returns the current value (0 on nil).
func (g *Gauge) Get() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram: observations land in the first
// bucket whose upper bound is >= the value, or the implicit +Inf bucket.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []int64
	sum    float64
	n      int64
}

// Observe records one value (no-op on nil).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.n++
	h.mu.Unlock()
}

// Series is an append-only sequence of values — trajectories like the
// per-iteration |S_max|/|F| of a resynthesis run, where the order of
// observations is the signal a histogram would destroy.
type Series struct {
	mu   sync.Mutex
	vals []float64
}

// Append records the next value (no-op on nil).
func (s *Series) Append(v float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.vals = append(s.vals, v)
	s.mu.Unlock()
}

// Values returns a copy of the series (nil on nil).
func (s *Series) Values() []float64 {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]float64(nil), s.vals...)
}

// HistogramSnapshot is the exported state of one histogram. Counts has one
// entry per bound plus the final +Inf bucket. P50/P95/P99 are bucket-
// interpolated quantile estimates (0 while the histogram is empty).
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  int64     `json:"count"`
	P50    float64   `json:"p50"`
	P95    float64   `json:"p95"`
	P99    float64   `json:"p99"`
}

// Quantile estimates the q-th quantile (0 < q <= 1) from the bucket counts
// by linear interpolation inside the bucket holding the q-th observation.
// The first bucket resolves to its upper bound (its lower edge is unknown),
// and the +Inf bucket to the last finite bound — so estimates are always
// finite and monotone in q. Returns 0 for an empty histogram.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 || len(s.Counts) != len(s.Bounds)+1 {
		return 0
	}
	rank := q * float64(s.Count)
	var cum int64
	for i, c := range s.Counts {
		if float64(cum+c) < rank {
			cum += c
			continue
		}
		switch {
		case i == 0:
			return s.Bounds[0]
		case i == len(s.Bounds):
			return s.Bounds[len(s.Bounds)-1]
		default:
			lo, hi := s.Bounds[i-1], s.Bounds[i]
			if c == 0 {
				return hi
			}
			return lo + (hi-lo)*(rank-float64(cum))/float64(c)
		}
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Snapshot is a point-in-time copy of a registry, shaped for JSON export
// (encoding/json emits map keys sorted, so exports are deterministic up to
// the recorded values).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	Series     map[string][]float64         `json:"series"`
}

// Snapshot copies the registry's current state (zero-valued snapshot with
// empty maps on nil, so exports of an untraced run still parse).
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
		Series:     map[string][]float64{},
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		snap.Counters[name] = c.Get()
	}
	for name, g := range r.gauges {
		snap.Gauges[name] = g.Get()
	}
	for name, h := range r.hists {
		h.mu.Lock()
		hs := HistogramSnapshot{
			Bounds: append([]float64(nil), h.bounds...),
			Counts: append([]int64(nil), h.counts...),
			Sum:    h.sum,
			Count:  h.n,
		}
		h.mu.Unlock()
		hs.P50 = hs.Quantile(0.50)
		hs.P95 = hs.Quantile(0.95)
		hs.P99 = hs.Quantile(0.99)
		snap.Histograms[name] = hs
	}
	for name, s := range r.series {
		snap.Series[name] = s.Values()
	}
	return snap
}
