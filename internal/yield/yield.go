// Package yield quantifies the paper's motivation: systematic defects
// predicted by DFM guideline violations escape test when the faults that
// model them are undetectable, and those escapes hit the shipped-part
// defect rate (DPPM). The model combines per-guideline defect likelihoods
// with the fault statuses of a design to estimate test-escape risk before
// and after resynthesis.
//
// The estimate follows the classic Williams–Brown reasoning adapted to
// per-site systematic defects: each fault f models a potential defect with
// occurrence probability p(f) (set by its guideline's severity); a defect
// whose fault is detected is caught by the test set; a defect whose fault
// is undetectable is caught only with the residual probability that the
// defect behaves differently from its model (CaptureResidual). The expected
// number of shipped defective parts per million is then
//
//	DPPM = 1e6 * (1 - Π_f (1 - p(f) * escape(f)))
//
// with escape(f) = 0 for detected faults and (1 - CaptureResidual) for
// undetectable ones. Clustering makes it worse: escapes concentrated in one
// area are more likely to share a root cause, which the ClusterAmplifier
// models by scaling p(f) for faults inside large clusters.
package yield

import (
	"math"
	"strings"

	"dfmresyn/internal/fault"
	"dfmresyn/internal/flow"
)

// Model holds the estimation parameters. The defaults are deliberately
// round numbers: the output is meaningful as a *relative* risk (orig vs
// resynthesized), not as a calibrated absolute DPPM.
type Model struct {
	// BaseProb is the per-site defect probability for a violation of a
	// Metal guideline; Via and Density guidelines scale it.
	BaseProb float64
	// ViaScale / DensityScale multiply BaseProb per category.
	ViaScale, DensityScale float64
	// CaptureResidual is the probability that a defect whose modeling
	// fault is undetectable still gets caught (because the defect
	// behaves differently from the fault, or another test trips it).
	CaptureResidual float64
	// ClusterAmplifier scales the defect probability of faults inside
	// clusters larger than ClusterThreshold: systematic defects repeat,
	// so a large uncovered area multiplies exposure.
	ClusterAmplifier float64
	ClusterThreshold int
}

// DefaultModel returns the parameters used in the experiments.
func DefaultModel() Model {
	return Model{
		BaseProb:         2e-6,
		ViaScale:         1.5,
		DensityScale:     0.8,
		CaptureResidual:  0.4,
		ClusterAmplifier: 3.0,
		ClusterThreshold: 16,
	}
}

// Estimate is the DPPM estimate for one analyzed design.
type Estimate struct {
	DPPM          float64
	EscapeSites   int     // faults contributing escape probability
	ClusteredRisk float64 // share of total escape mass inside big clusters
}

// Assess estimates the test-escape DPPM of a design.
func (m Model) Assess(d *flow.Design) Estimate {
	// Faults in clusters above the threshold get amplified.
	amplified := map[*fault.Fault]bool{}
	if d.Clusters != nil {
		for _, set := range d.Clusters.Sets {
			if len(set) < m.ClusterThreshold {
				break // sets are sorted by size, descending
			}
			for _, f := range set {
				amplified[f] = true
			}
		}
	}

	logShip := 0.0 // log of Π (1 - p*escape)
	est := Estimate{}
	totalMass, clusterMass := 0.0, 0.0
	for _, f := range d.Faults.Faults {
		if f.Status != fault.Undetectable {
			continue
		}
		p := m.siteProb(f)
		if amplified[f] {
			p *= m.ClusterAmplifier
		}
		escape := p * (1 - m.CaptureResidual)
		if escape >= 1 {
			escape = 0.999999
		}
		logShip += math.Log1p(-escape)
		est.EscapeSites++
		totalMass += escape
		if amplified[f] {
			clusterMass += escape
		}
	}
	est.DPPM = 1e6 * (1 - math.Exp(logShip))
	if totalMass > 0 {
		est.ClusteredRisk = clusterMass / totalMass
	}
	return est
}

// siteProb returns the defect probability of the violation behind fault f.
func (m Model) siteProb(f *fault.Fault) float64 {
	switch {
	case strings.HasPrefix(f.Guideline, "VIA"):
		return m.BaseProb * m.ViaScale
	case strings.HasPrefix(f.Guideline, "DEN"):
		return m.BaseProb * m.DensityScale
	default:
		return m.BaseProb
	}
}

// Improvement compares two designs (original and resynthesized) and returns
// the DPPM ratio orig/resyn (how many times lower the escape risk got).
func (m Model) Improvement(orig, resyn *flow.Design) float64 {
	a := m.Assess(orig)
	b := m.Assess(resyn)
	if b.DPPM == 0 {
		if a.DPPM == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return a.DPPM / b.DPPM
}
