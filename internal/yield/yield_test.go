package yield

import (
	"math"
	"testing"

	"dfmresyn/internal/bench"
	"dfmresyn/internal/cluster"
	"dfmresyn/internal/fault"
	"dfmresyn/internal/flow"
	"dfmresyn/internal/geom"
	"dfmresyn/internal/library"
	"dfmresyn/internal/netlist"
)

var lib = library.OSU018Like()

// fakeDesign builds a Design with hand-set fault statuses for unit-level
// model checks (no ATPG involved).
func fakeDesign(t *testing.T, undetectable int, guideline string, clusterIt bool) *flow.Design {
	t.Helper()
	c := netlist.New("fake", lib)
	a := c.AddPI("a")
	prev := a
	gates := make([]*netlist.Gate, 0, undetectable)
	for i := 0; i < undetectable; i++ {
		prev = c.AddGate("", lib.ByName("INVX1"), prev)
		gates = append(gates, prev.Driver)
	}
	c.MarkPO(prev)
	l := &fault.List{}
	for i := 0; i < undetectable; i++ {
		g := gates[i]
		if !clusterIt {
			// Spread: every fault on a distinct, non-adjacent gate —
			// use every second gate to break adjacency.
			g = gates[(i*2)%len(gates)]
		}
		f := l.Add(&fault.Fault{Model: fault.CellAware, Internal: true,
			Gate: g, Guideline: guideline})
		f.Status = fault.Undetectable
	}
	d := &flow.Design{C: c, Faults: l}
	d.Clusters = cluster.Build(l.UndetectableFaults())
	return d
}

func TestMoreUndetectableMoreDPPM(t *testing.T) {
	m := DefaultModel()
	small := m.Assess(fakeDesign(t, 10, "MET.01", true))
	big := m.Assess(fakeDesign(t, 100, "MET.01", true))
	if big.DPPM <= small.DPPM {
		t.Errorf("DPPM must grow with U: %v vs %v", small.DPPM, big.DPPM)
	}
	if small.EscapeSites != 10 || big.EscapeSites != 100 {
		t.Errorf("escape sites wrong: %d, %d", small.EscapeSites, big.EscapeSites)
	}
}

func TestViaWorseThanDensity(t *testing.T) {
	m := DefaultModel()
	via := m.Assess(fakeDesign(t, 50, "VIA.07", true))
	den := m.Assess(fakeDesign(t, 50, "DEN.01", true))
	if via.DPPM <= den.DPPM {
		t.Errorf("via violations must carry more risk: %v vs %v", via.DPPM, den.DPPM)
	}
}

func TestClusterAmplification(t *testing.T) {
	m := DefaultModel()
	// Same number of undetectable faults; one design has them all in one
	// adjacency cluster (chain of gates), the other spread out.
	clustered := m.Assess(fakeDesign(t, 40, "MET.01", true))
	spread := m.Assess(fakeDesign(t, 40, "MET.01", false))
	if clustered.DPPM <= spread.DPPM {
		t.Errorf("clustered faults must carry more DPPM risk: %v vs %v",
			clustered.DPPM, spread.DPPM)
	}
	if clustered.ClusteredRisk <= spread.ClusteredRisk {
		t.Errorf("clustered-risk share must be higher: %v vs %v",
			clustered.ClusteredRisk, spread.ClusteredRisk)
	}
}

func TestZeroUndetectableZeroDPPM(t *testing.T) {
	m := DefaultModel()
	d := fakeDesign(t, 1, "MET.01", true)
	d.Faults.Faults[0].Status = fault.Detected
	d.Clusters = cluster.Build(d.Faults.UndetectableFaults())
	e := m.Assess(d)
	if e.DPPM != 0 || e.EscapeSites != 0 {
		t.Errorf("detected-only design must have zero escape DPPM: %+v", e)
	}
}

func TestImprovementRatio(t *testing.T) {
	m := DefaultModel()
	orig := fakeDesign(t, 100, "MET.01", true)
	resyn := fakeDesign(t, 10, "MET.01", true)
	r := m.Improvement(orig, resyn)
	if r <= 1 {
		t.Errorf("improvement ratio must exceed 1: %v", r)
	}
	same := m.Improvement(orig, orig)
	if math.Abs(same-1) > 1e-9 {
		t.Errorf("self-improvement must be 1: %v", same)
	}
	// Perfect resynthesis: infinite improvement.
	perfect := fakeDesign(t, 1, "MET.01", true)
	perfect.Faults.Faults[0].Status = fault.Detected
	perfect.Clusters = cluster.Build(perfect.Faults.UndetectableFaults())
	if !math.IsInf(m.Improvement(orig, perfect), 1) {
		t.Error("zero-U resynthesis must give infinite improvement")
	}
}

// TestEndToEndDPPMDropsAfterResynthesis is the integration check on a real
// benchmark: the paper's DPPM argument must come out of the full pipeline.
func TestEndToEndDPPMDropsAfterResynthesis(t *testing.T) {
	if testing.Short() {
		t.Skip("full flow is slow")
	}
	env := flow.NewEnv()
	env.ATPG.RandomBlocks = 4
	env.ATPG.BacktrackLimit = 2000
	c := bench.MustBuild("systemcaes", env.Lib)
	d, err := env.Analyze(c, geom.Rect{})
	if err != nil {
		t.Fatal(err)
	}
	m := DefaultModel()
	before := m.Assess(d)
	if before.DPPM <= 0 {
		t.Fatal("original design must carry escape risk")
	}
	if before.ClusteredRisk < 0.3 {
		t.Errorf("systemcaes escape risk should be cluster-dominated, got %.2f", before.ClusteredRisk)
	}
}
