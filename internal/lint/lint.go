// Package lint is a rule-based static analyzer for the data structures the
// whole pipeline silently relies on: circuits (internal/netlist), physical
// design artifacts (internal/place, internal/route) and fault universes
// (internal/fault, internal/cluster). Each invariant that flow, resyn and
// cluster previously assumed implicitly — acyclicity, driver/fanout
// consistency, region convexity, PI/PO preservation across rebuilds,
// placement and routing legality, fault-site liveness — is expressed as one
// Rule producing severity-ranked Findings, so that every intermediate
// circuit of a resynthesis run can be checked against a single enforced
// contract. The philosophy mirrors the paper's own premise: statically
// checkable properties predict failures, so check them early and everywhere.
package lint

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"dfmresyn/internal/cluster"
	"dfmresyn/internal/fault"
	"dfmresyn/internal/implic"
	"dfmresyn/internal/netlist"
	"dfmresyn/internal/place"
	"dfmresyn/internal/route"
)

// Severity ranks findings. Error findings mark states downstream passes
// cannot survive (panics, corrupt indices); Warning marks suspicious but
// tolerated states (dead logic, floating nets); Info is advisory.
type Severity uint8

// Severities, weakest first so ordered comparisons read naturally.
const (
	Info Severity = iota
	Warning
	Error
)

// String names the severity.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	}
	return fmt.Sprintf("severity(%d)", uint8(s))
}

// ParseSeverity parses a severity name as accepted by the netlint -fail-on
// flag ("info", "warning"/"warn", "error").
func ParseSeverity(s string) (Severity, error) {
	switch strings.ToLower(s) {
	case "info":
		return Info, nil
	case "warning", "warn":
		return Warning, nil
	case "error":
		return Error, nil
	}
	return Info, fmt.Errorf("lint: unknown severity %q", s)
}

// Mode selects how the pipeline (flow, resyn) enforces lint on the
// intermediate artifacts it produces.
type Mode uint8

// Enforcement modes: ModeOff skips linting entirely (the default — keeps
// benchmark numbers clean), ModeWarn records findings without failing, and
// ModeStrict turns Error findings into pipeline errors, so every
// intermediate circuit of a resynthesis run is held to the contract.
const (
	ModeOff Mode = iota
	ModeWarn
	ModeStrict
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeOff:
		return "off"
	case ModeWarn:
		return "warn"
	case ModeStrict:
		return "strict"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// Loc pinpoints a finding by the IDs of the objects involved; -1 means "not
// applicable". IDs rather than pointers keep findings serializable and
// stable across runs.
type Loc struct {
	Gate  int `json:"gate"`
	Net   int `json:"net"`
	Fault int `json:"fault"`
}

// NoLoc is the empty location.
var NoLoc = Loc{Gate: -1, Net: -1, Fault: -1}

// GateLoc locates a finding at a gate.
func GateLoc(g *netlist.Gate) Loc {
	l := NoLoc
	if g != nil {
		l.Gate = g.ID
	}
	return l
}

// NetLoc locates a finding at a net.
func NetLoc(n *netlist.Net) Loc {
	l := NoLoc
	if n != nil {
		l.Net = n.ID
	}
	return l
}

// FaultLoc locates a finding at a fault.
func FaultLoc(f *fault.Fault) Loc {
	l := NoLoc
	if f != nil {
		l.Fault = f.ID
	}
	return l
}

// less orders locations gate-major for deterministic reports.
func (l Loc) less(o Loc) bool {
	if l.Gate != o.Gate {
		return l.Gate < o.Gate
	}
	if l.Net != o.Net {
		return l.Net < o.Net
	}
	return l.Fault < o.Fault
}

// Finding is one rule violation.
type Finding struct {
	// Rule is the name of the rule that produced the finding.
	Rule string `json:"rule"`
	// Severity is the rule's severity (copied so findings sort standalone).
	Severity Severity `json:"-"`
	// Loc locates the finding by gate/net/fault ID (-1: not applicable).
	Loc Loc `json:"loc"`
	// Message describes the violation with object names.
	Message string `json:"message"`
	// Fix is a suggested remedy; may be empty.
	Fix string `json:"fix,omitempty"`
}

// Context carries everything a rule may inspect. Circuit is the only field
// rules generally require; every other field is optional — a rule that
// needs an absent artifact reports nothing, so the same registry runs
// against a bare netlist, a placed-and-routed design, or a full fault
// universe.
type Context struct {
	// Circuit is the netlist under analysis.
	Circuit *netlist.Circuit

	// Prev, when set, is the circuit Circuit was rebuilt from
	// (netlist.RebuildReplacing); the rebuild-io rule checks interface
	// preservation against it.
	Prev *netlist.Circuit
	// Region, when set, is the resynthesis region whose convexity the
	// region-convex rule checks. The region's gates belong to Prev when
	// Prev is set (the rebuild source), otherwise to Circuit.
	Region *netlist.Region

	// Placement and Layout are the physical-design artifacts of Circuit.
	Placement *place.Placement
	// Layout is the routed geometry over Placement.
	Layout *route.Layout

	// Faults is the fault universe extracted for Circuit.
	Faults *fault.List
	// Clusters is the clustering of Faults' undetectable subset.
	Clusters *cluster.Result

	// implicMemo caches the implication engine shared by the implic/*
	// rules; implicTried distinguishes "not built yet" from "build
	// declined" (broken or oversized circuit).
	implicMemo  *implic.Engine
	implicTried bool
}

// regionCircuit returns the circuit ctx.Region refers to.
func (ctx *Context) regionCircuit() *netlist.Circuit {
	if ctx.Prev != nil {
		return ctx.Prev
	}
	return ctx.Circuit
}

// Rule is one static check. Check receives the full context and returns all
// violations it can find (not just the first), each with the rule's name
// and severity filled in.
type Rule interface {
	// Name identifies the rule, conventionally "<layer>/<check>", e.g.
	// "struct/cycle".
	Name() string
	// Severity ranks the rule's findings.
	Severity() Severity
	// Doc is a one-line description for the rule catalog.
	Doc() string
	// Check analyzes the context.
	Check(ctx *Context) []Finding
}

// rule is the concrete Rule used by the built-in checks.
type rule struct {
	name  string
	sev   Severity
	doc   string
	check func(ctx *Context, emit func(Loc, string, string))
}

func (r *rule) Name() string       { return r.name }
func (r *rule) Severity() Severity { return r.sev }
func (r *rule) Doc() string        { return r.doc }

func (r *rule) Check(ctx *Context) []Finding {
	var out []Finding
	r.check(ctx, func(loc Loc, msg, fix string) {
		out = append(out, Finding{Rule: r.name, Severity: r.sev, Loc: loc, Message: msg, Fix: fix})
	})
	return out
}

// Registry is an ordered, name-unique collection of rules.
type Registry struct {
	rules  []Rule
	byName map[string]Rule
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]Rule)}
}

// Register adds a rule; duplicate names are a programming error and panic,
// matching library.New's handling of duplicate cells.
func (reg *Registry) Register(r Rule) {
	if _, dup := reg.byName[r.Name()]; dup {
		panic("lint: duplicate rule " + r.Name())
	}
	reg.byName[r.Name()] = r
	reg.rules = append(reg.rules, r)
}

// Rules returns the registered rules sorted by name.
func (reg *Registry) Rules() []Rule {
	out := make([]Rule, len(reg.rules))
	copy(out, reg.rules)
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// ByName returns the named rule, or nil.
func (reg *Registry) ByName(name string) Rule { return reg.byName[name] }

// Run executes every registered rule and returns the findings in the
// canonical report order: severity descending, then rule name, then
// location, then message.
func (reg *Registry) Run(ctx *Context) []Finding {
	var out []Finding
	for _, r := range reg.Rules() {
		out = append(out, r.Check(ctx)...)
	}
	Sort(out)
	return out
}

// Sort orders findings into the canonical report order (severity
// descending, then rule name, then location, then message). Run and the
// reporters rely on this order being deterministic.
func Sort(fs []Finding) {
	sort.SliceStable(fs, func(i, j int) bool {
		if fs[i].Severity != fs[j].Severity {
			return fs[i].Severity > fs[j].Severity
		}
		if fs[i].Rule != fs[j].Rule {
			return fs[i].Rule < fs[j].Rule
		}
		if fs[i].Loc != fs[j].Loc {
			return fs[i].Loc.less(fs[j].Loc)
		}
		return fs[i].Message < fs[j].Message
	})
}

// Builtin returns a fresh registry holding every built-in rule: the
// structural circuit checks, the pipeline-invariant checks and the
// fault-universe checks.
func Builtin() *Registry {
	reg := NewRegistry()
	for _, r := range structuralRules() {
		reg.Register(r)
	}
	for _, r := range pipelineRules() {
		reg.Register(r)
	}
	for _, r := range faultRules() {
		reg.Register(r)
	}
	for _, r := range implicRules() {
		reg.Register(r)
	}
	return reg
}

// Run executes the built-in rules against the context.
func Run(ctx *Context) []Finding { return Builtin().Run(ctx) }

// CountAtLeast counts the findings at or above the severity.
func CountAtLeast(fs []Finding, s Severity) int {
	n := 0
	for _, f := range fs {
		if f.Severity >= s {
			n++
		}
	}
	return n
}

// ErrFindings is the sentinel wrapped by Err, so pipeline callers can
// distinguish lint failures from other analysis errors with errors.Is.
var ErrFindings = errors.New("lint: findings at or above fail severity")

// Err converts findings into an error when any reaches the failOn
// severity: nil otherwise. The error wraps ErrFindings and quotes the first
// offending finding.
func Err(fs []Finding, failOn Severity) error {
	n := CountAtLeast(fs, failOn)
	if n == 0 {
		return nil
	}
	first := ""
	for _, f := range fs {
		if f.Severity >= failOn {
			first = fmt.Sprintf("%s %s: %s", f.Severity, f.Rule, f.Message)
			break
		}
	}
	return fmt.Errorf("%w: %d finding(s), first: %s", ErrFindings, n, first)
}
