package lint

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteText renders findings in the canonical order (see Sort), one line
// per finding plus a summary, e.g.:
//
//	error   struct/cycle          gate=2            combinational cycle: a -> b -> a
//	        fix: break the loop by removing one feedback connection
//	2 findings: 1 error, 1 warning, 0 info
func WriteText(w io.Writer, fs []Finding) error {
	for _, f := range fs {
		if _, err := fmt.Fprintf(w, "%-7s %-22s %-17s %s\n", f.Severity, f.Rule, locString(f.Loc), f.Message); err != nil {
			return err
		}
		if f.Fix != "" {
			if _, err := fmt.Fprintf(w, "        fix: %s\n", f.Fix); err != nil {
				return err
			}
		}
	}
	e := CountAtLeast(fs, Error)
	warn := CountAtLeast(fs, Warning) - e
	info := len(fs) - e - warn
	_, err := fmt.Fprintf(w, "%d findings: %d error, %d warning, %d info\n", len(fs), e, warn, info)
	return err
}

// locString renders the non-empty components of a location.
func locString(l Loc) string {
	s := ""
	if l.Gate >= 0 {
		s += fmt.Sprintf("gate=%d ", l.Gate)
	}
	if l.Net >= 0 {
		s += fmt.Sprintf("net=%d ", l.Net)
	}
	if l.Fault >= 0 {
		s += fmt.Sprintf("fault=%d ", l.Fault)
	}
	if s == "" {
		return "-"
	}
	return s[:len(s)-1]
}

// jsonFinding is the JSON wire form: severities as strings, locations
// flattened.
type jsonFinding struct {
	Rule     string `json:"rule"`
	Severity string `json:"severity"`
	Gate     int    `json:"gate"`
	Net      int    `json:"net"`
	Fault    int    `json:"fault"`
	Message  string `json:"message"`
	Fix      string `json:"fix,omitempty"`
}

// jsonReport is the envelope WriteJSON emits.
type jsonReport struct {
	Findings []jsonFinding `json:"findings"`
	Errors   int           `json:"errors"`
	Warnings int           `json:"warnings"`
	Infos    int           `json:"infos"`
}

// WriteJSON renders findings as one indented JSON document with summary
// counts, in the canonical order (see Sort).
func WriteJSON(w io.Writer, fs []Finding) error {
	rep := jsonReport{Findings: make([]jsonFinding, 0, len(fs))}
	for _, f := range fs {
		rep.Findings = append(rep.Findings, jsonFinding{
			Rule:     f.Rule,
			Severity: f.Severity.String(),
			Gate:     f.Loc.Gate,
			Net:      f.Loc.Net,
			Fault:    f.Loc.Fault,
			Message:  f.Message,
			Fix:      f.Fix,
		})
		switch f.Severity {
		case Error:
			rep.Errors++
		case Warning:
			rep.Warnings++
		default:
			rep.Infos++
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
