package lint

import (
	"path/filepath"
	"strings"
	"testing"

	"dfmresyn/internal/library"
)

func TestLoadFileBroken(t *testing.T) {
	lib := library.OSU018Like()
	cases := []struct {
		file string
		rule string
	}{
		{"broken_cycle.ckt", "struct/cycle"},
		{"broken_dup.ckt", "struct/duplicate-name"},
		{"broken_arity.ckt", "struct/fanin-arity"},
		{"broken_undriven.ckt", "struct/undriven-net"},
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			_, fs, err := LoadFile(filepath.Join("testdata", tc.file), lib)
			if err != nil {
				t.Fatal(err)
			}
			wantRule(t, fs, tc.rule)
			if CountAtLeast(fs, Error) == 0 {
				t.Error("broken circuit must produce at least one error")
			}
		})
	}
}

func TestLoadFileClean(t *testing.T) {
	lib := library.OSU018Like()
	_, fs, err := LoadFile(filepath.Join("testdata", "good_small.ckt"), lib)
	if err != nil {
		t.Fatal(err)
	}
	wantClean(t, fs)
}

func TestReadLooseSyntax(t *testing.T) {
	lib := library.OSU018Like()
	src := "circuit x\nbogus directive\ninput a\ngate g1 NOPE y a\noutput y\n"
	c, fs := ReadLoose(strings.NewReader(src), lib)
	if c == nil {
		t.Fatal("ReadLoose must always return a circuit")
	}
	syntax := 0
	for _, f := range fs {
		if f.Rule == "parse/syntax" {
			syntax++
		}
	}
	if syntax != 2 { // unknown directive + unknown cell
		t.Errorf("expected 2 parse/syntax findings, got %d: %v", syntax, fs)
	}
	// The typeless gate still surfaces through fanin-arity.
	wantRule(t, Run(&Context{Circuit: c}), "struct/fanin-arity")
}

func TestReadLooseNoCircuit(t *testing.T) {
	lib := library.OSU018Like()
	_, fs := ReadLoose(strings.NewReader("input a\n"), lib)
	found := false
	for _, f := range fs {
		if f.Rule == "parse/syntax" && strings.Contains(f.Message, "no circuit declaration") {
			found = true
		}
	}
	if !found {
		t.Errorf("missing circuit declaration must be reported, got %v", fs)
	}
}
