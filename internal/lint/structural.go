package lint

import (
	"fmt"

	"dfmresyn/internal/netlist"
)

// liveGate reports whether g is a member of c's gate list (not a stale
// pointer into another circuit generation).
func liveGate(c *netlist.Circuit, g *netlist.Gate) bool {
	return g != nil && g.ID >= 0 && g.ID < len(c.Gates) && c.Gates[g.ID] == g
}

// liveNet reports whether n is a member of c's net list.
func liveNet(c *netlist.Circuit, n *netlist.Net) bool {
	return n != nil && n.ID >= 0 && n.ID < len(c.Nets) && c.Nets[n.ID] == n
}

// structuralRules are the circuit-only checks. They assume nothing beyond
// ctx.Circuit being non-nil and tolerate arbitrarily corrupt circuits (nil
// cells, stale pointers, duplicate names) — that is the point.
func structuralRules() []Rule {
	return []Rule{
		&rule{
			name: "struct/id-index",
			sev:  Error,
			doc:  "gate and net IDs must equal their slice positions (placement, routing and simulation index by ID)",
			check: func(ctx *Context, emit func(Loc, string, string)) {
				c := ctx.Circuit
				if c == nil {
					return
				}
				for i, n := range c.Nets {
					if n == nil {
						emit(Loc{Gate: -1, Net: i, Fault: -1}, fmt.Sprintf("nil net at position %d", i), "remove the hole or rebuild the net list")
						continue
					}
					if n.ID != i {
						emit(NetLoc(n), fmt.Sprintf("net %q has ID %d at position %d", n.Name, n.ID, i), "renumber nets densely in list order")
					}
				}
				for i, g := range c.Gates {
					if g == nil {
						emit(Loc{Gate: i, Net: -1, Fault: -1}, fmt.Sprintf("nil gate at position %d", i), "remove the hole or rebuild the gate list")
						continue
					}
					if g.ID != i {
						emit(GateLoc(g), fmt.Sprintf("gate %q has ID %d at position %d", g.Name, g.ID, i), "renumber gates densely in list order")
					}
				}
			},
		},
		&rule{
			name: "struct/cycle",
			sev:  Error,
			doc:  "the combinational network must be acyclic (Levelize panics otherwise)",
			check: func(ctx *Context, emit func(Loc, string, string)) {
				c := ctx.Circuit
				if c == nil {
					return
				}
				// FindCycle indexes by gate ID; with corrupt IDs the
				// id-index rule reports and cycle detection stands down.
				for i, g := range c.Gates {
					if g == nil || g.ID != i {
						return
					}
				}
				if cyc := c.FindCycle(); cyc != nil {
					emit(GateLoc(cyc[0]),
						"combinational cycle: "+netlist.CycleString(cyc),
						"break the loop by removing one feedback connection or inserting a scan point")
				}
			},
		},
		&rule{
			name: "struct/undriven-net",
			sev:  Error,
			doc:  "every net needs exactly one source: a driving gate or a primary-input marking",
			check: func(ctx *Context, emit func(Loc, string, string)) {
				c := ctx.Circuit
				if c == nil {
					return
				}
				for _, n := range c.Nets {
					if n == nil {
						continue
					}
					if n.Driver == nil && !n.IsPI {
						emit(NetLoc(n), fmt.Sprintf("net %q has no driver and is not a primary input", n.Name),
							"connect a driving gate or declare the net as an input")
					}
					if n.Driver != nil && n.IsPI {
						emit(NetLoc(n), fmt.Sprintf("primary input %q is driven by gate %q", n.Name, n.Driver.Name),
							"drop the PI marking or disconnect the driver")
					}
				}
			},
		},
		&rule{
			name: "struct/floating-net",
			sev:  Warning,
			doc:  "a net that drives nothing and is not a primary output is dead weight for placement and routing",
			check: func(ctx *Context, emit func(Loc, string, string)) {
				c := ctx.Circuit
				if c == nil {
					return
				}
				for _, n := range c.Nets {
					if n == nil {
						continue
					}
					if len(n.Fanout) == 0 && !n.IsPO {
						emit(NetLoc(n), fmt.Sprintf("net %q floats: no fanout and not a primary output", n.Name),
							"remove the net's cone or mark the net as an output")
					}
				}
			},
		},
		&rule{
			name: "struct/dangling-fanout",
			sev:  Error,
			doc:  "net fanout entries and gate fanins must back-reference each other exactly",
			check: func(ctx *Context, emit func(Loc, string, string)) {
				c := ctx.Circuit
				if c == nil {
					return
				}
				for _, n := range c.Nets {
					if n == nil {
						continue
					}
					for _, p := range n.Fanout {
						switch {
						case p.Gate == nil:
							emit(NetLoc(n), fmt.Sprintf("net %q fans out to a nil gate", n.Name),
								"drop the fanout entry")
						case !liveGate(c, p.Gate):
							emit(NetLoc(n), fmt.Sprintf("net %q fans out to gate %q which is not in the circuit", n.Name, p.Gate.Name),
								"rebuild the fanout list from the live gate set")
						case p.Pin < 0 || p.Pin >= len(p.Gate.Fanin):
							emit(NetLoc(n), fmt.Sprintf("net %q fans out to gate %q pin %d, outside its %d fanins", n.Name, p.Gate.Name, p.Pin, len(p.Gate.Fanin)),
								"repair the pin index")
						case p.Gate.Fanin[p.Pin] != n:
							emit(NetLoc(n), fmt.Sprintf("net %q fanout to gate %q pin %d is stale: the pin reads net %q", n.Name, p.Gate.Name, p.Pin, netName(p.Gate.Fanin[p.Pin])),
								"rebuild the fanout list from the gate fanins")
						}
					}
				}
				for _, g := range c.Gates {
					if g == nil {
						continue
					}
					if g.Out == nil {
						emit(GateLoc(g), fmt.Sprintf("gate %q has no output net", g.Name), "attach an output net")
					} else if g.Out.Driver != g {
						emit(GateLoc(g), fmt.Sprintf("gate %q output net %q records driver %q", g.Name, g.Out.Name, gateName(g.Out.Driver)),
							"repair the output net's Driver link")
					}
					for pin, in := range g.Fanin {
						if in == nil {
							emit(GateLoc(g), fmt.Sprintf("gate %q pin %d reads a nil net", g.Name, pin), "connect the pin")
							continue
						}
						if !liveNet(c, in) {
							emit(GateLoc(g), fmt.Sprintf("gate %q pin %d reads net %q which is not in the circuit", g.Name, pin, in.Name),
								"reconnect the pin to a live net")
							continue
						}
						found := false
						for _, p := range in.Fanout {
							if p.Gate == g && p.Pin == pin {
								found = true
								break
							}
						}
						if !found {
							emit(GateLoc(g), fmt.Sprintf("gate %q pin %d reads net %q but the net's fanout list omits it", g.Name, pin, in.Name),
								"append the missing fanout back-reference")
						}
					}
				}
			},
		},
		&rule{
			name: "struct/duplicate-name",
			sev:  Error,
			doc:  "net and gate names must be unique (the text format and name lookups key on them)",
			check: func(ctx *Context, emit func(Loc, string, string)) {
				c := ctx.Circuit
				if c == nil {
					return
				}
				netSeen := make(map[string]*netlist.Net, len(c.Nets))
				for _, n := range c.Nets {
					if n == nil {
						continue
					}
					if first, dup := netSeen[n.Name]; dup {
						emit(NetLoc(n), fmt.Sprintf("net name %q duplicates net %d", n.Name, first.ID),
							"rename one of the nets")
					} else {
						netSeen[n.Name] = n
					}
				}
				gateSeen := make(map[string]*netlist.Gate, len(c.Gates))
				for _, g := range c.Gates {
					if g == nil {
						continue
					}
					if first, dup := gateSeen[g.Name]; dup {
						emit(GateLoc(g), fmt.Sprintf("gate name %q duplicates gate %d", g.Name, first.ID),
							"rename one of the gates")
					} else {
						gateSeen[g.Name] = g
					}
				}
			},
		},
		&rule{
			name: "struct/fanin-arity",
			sev:  Error,
			doc:  "every gate's fanin count must match its library cell's input count",
			check: func(ctx *Context, emit func(Loc, string, string)) {
				c := ctx.Circuit
				if c == nil {
					return
				}
				for _, g := range c.Gates {
					if g == nil {
						continue
					}
					if g.Type == nil {
						emit(GateLoc(g), fmt.Sprintf("gate %q has no library cell", g.Name),
							"bind the gate to a cell in the library")
						continue
					}
					if want := g.Type.NumInputs(); len(g.Fanin) != want {
						emit(GateLoc(g), fmt.Sprintf("gate %q has %d fanins but cell %s expects %d", g.Name, len(g.Fanin), g.Type.Name, want),
							"match the fanin list to the cell's pins")
					}
				}
			},
		},
		&rule{
			name: "struct/dead-logic",
			sev:  Warning,
			doc:  "gates from which no primary output is reachable are invisible to test and waste area",
			check: func(ctx *Context, emit func(Loc, string, string)) {
				c := ctx.Circuit
				if c == nil {
					return
				}
				// Reverse reachability from the POs over driver edges.
				reach := make([]bool, len(c.Gates))
				var stack []*netlist.Gate
				push := func(g *netlist.Gate) {
					if liveGate(c, g) && !reach[g.ID] {
						reach[g.ID] = true
						stack = append(stack, g)
					}
				}
				for _, po := range c.POs {
					if po != nil {
						push(po.Driver)
					}
				}
				for len(stack) > 0 {
					g := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					for _, in := range g.Fanin {
						if in != nil {
							push(in.Driver)
						}
					}
				}
				for _, g := range c.Gates {
					if liveGate(c, g) && !reach[g.ID] {
						emit(GateLoc(g), fmt.Sprintf("gate %q reaches no primary output", g.Name),
							"remove the dead cone or mark its output as a PO")
					}
				}
			},
		},
	}
}

func netName(n *netlist.Net) string {
	if n == nil {
		return "(nil)"
	}
	return n.Name
}

func gateName(g *netlist.Gate) string {
	if g == nil {
		return "(nil)"
	}
	return g.Name
}
