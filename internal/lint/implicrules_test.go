package lint

import (
	"path/filepath"
	"testing"

	"dfmresyn/internal/library"
	"dfmresyn/internal/netlist"
)

// constLineCircuit: y = NAND(a, ~a) is constant 1.
func constLineCircuit(lib *library.Library) *netlist.Circuit {
	c := netlist.New("constline", lib)
	a := c.AddPI("a")
	an := c.AddGate("u_inv", lib.ByName("INVX1"), a)
	y := c.AddGate("u_nand", lib.ByName("NAND2X1"), a, an)
	c.MarkPO(y)
	return c
}

func TestImplicConstantLine(t *testing.T) {
	lib := library.OSU018Like()
	fs := Run(&Context{Circuit: constLineCircuit(lib)})
	wantRule(t, fs, "implic/constant-line")
	for _, f := range fs {
		if f.Rule == "implic/constant-line" && f.Severity != Warning {
			t.Errorf("constant-line severity %v, want warning", f.Severity)
		}
	}
}

func TestImplicConstantLineFromFile(t *testing.T) {
	lib := library.OSU018Like()
	_, fs, err := LoadFile(filepath.Join("testdata", "const_line.ckt"), lib)
	if err != nil {
		t.Fatal(err)
	}
	wantRule(t, fs, "implic/constant-line")
	if n := CountAtLeast(fs, Error); n != 0 {
		t.Fatalf("const_line.ckt should carry no errors, got %d in %v", n, fs)
	}
}

// TestImplicUnobservable: n = AND(a, b) feeds only z = AND(n, k) where
// k = AND(c, ~c) is constant 0. The constant side input blocks both
// stuck-at polarities of n from the output, so u_n is dead logic no
// structural scan can see (it has a structural path to the PO).
func TestImplicUnobservable(t *testing.T) {
	lib := library.OSU018Like()
	c := netlist.New("unobs", lib)
	a := c.AddPI("a")
	b := c.AddPI("b")
	cc := c.AddPI("c")
	cn := c.AddGate("u_inv", lib.ByName("INVX1"), cc)
	k := c.AddGate("u_k", lib.ByName("AND2X2"), cc, cn)
	n := c.AddGate("u_n", lib.ByName("AND2X2"), a, b)
	z := c.AddGate("u_z", lib.ByName("AND2X2"), n, k)
	c.MarkPO(z)

	fs := Run(&Context{Circuit: c})
	counts := ruleNames(fs)
	if counts["implic/unobservable"] != 1 {
		t.Errorf("want exactly one implic/unobservable finding (u_n), got %v", counts)
	}
	if counts["implic/constant-line"] != 2 {
		t.Errorf("want constant-line on %q and %q, got %v", k.Name, z.Name, counts)
	}
	for _, f := range fs {
		if f.Rule == "implic/unobservable" && f.Loc.Gate != n.Driver.ID {
			t.Errorf("unobservable flagged gate %d, want %d (u_n)", f.Loc.Gate, n.Driver.ID)
		}
	}
}

// TestImplicRulesStandDownOnBrokenCircuits: the engine would panic on
// a cyclic or index-corrupt circuit; the rules must decline instead and
// leave the reporting to the structural rules.
func TestImplicRulesStandDownOnBrokenCircuits(t *testing.T) {
	lib := library.OSU018Like()

	cyc := cleanCircuit(lib)
	g0 := cyc.Gates[0]
	last := cyc.Gates[len(cyc.Gates)-1]
	g0.Fanin[0] = last.Out
	last.Out.Fanout = append(last.Out.Fanout, netlist.Pin{Gate: g0, Pin: 0})
	fs := Run(&Context{Circuit: cyc})
	counts := ruleNames(fs)
	if counts["struct/cycle"] == 0 {
		t.Fatalf("fixture should be cyclic; findings %v", counts)
	}
	for r := range counts {
		if r == "implic/constant-line" || r == "implic/unobservable" {
			t.Errorf("implic rule %s ran on a cyclic circuit", r)
		}
	}

	bad := cleanCircuit(lib)
	bad.Nets[1].ID = 0
	fs = Run(&Context{Circuit: bad})
	for r := range ruleNames(fs) {
		if r == "implic/constant-line" || r == "implic/unobservable" {
			t.Errorf("implic rule %s ran on an index-corrupt circuit", r)
		}
	}
}

// TestImplicEngineMemo: both rules share one engine build per Context.
func TestImplicEngineMemo(t *testing.T) {
	lib := library.OSU018Like()
	ctx := &Context{Circuit: constLineCircuit(lib)}
	e1 := ctx.implicEngine()
	if e1 == nil {
		t.Fatal("engine should build on a clean circuit")
	}
	if e2 := ctx.implicEngine(); e2 != e1 {
		t.Error("implicEngine must memoize per Context")
	}
}
