package lint

import (
	"strings"
	"testing"

	"dfmresyn/internal/cluster"
	"dfmresyn/internal/fault"
	"dfmresyn/internal/geom"
	"dfmresyn/internal/library"
	"dfmresyn/internal/netlist"
	"dfmresyn/internal/place"
	"dfmresyn/internal/route"
)

// cleanCircuit builds a small lint-clean circuit: three PIs feeding a
// two-level cone into one PO.
func cleanCircuit(lib *library.Library) *netlist.Circuit {
	c := netlist.New("clean", lib)
	a := c.AddPI("a")
	b := c.AddPI("b")
	ci := c.AddPI("ci")
	n1 := c.AddGate("g1", lib.ByName("NAND2X1"), a, b)
	n2 := c.AddGate("g2", lib.ByName("INVX1"), ci)
	y := c.AddGate("g3", lib.ByName("NOR2X1"), n1, n2)
	c.MarkPO(y)
	return c
}

func ruleNames(fs []Finding) map[string]int {
	m := map[string]int{}
	for _, f := range fs {
		m[f.Rule]++
	}
	return m
}

func wantRule(t *testing.T, fs []Finding, rule string) {
	t.Helper()
	if ruleNames(fs)[rule] == 0 {
		t.Errorf("expected a %s finding, got %v", rule, ruleNames(fs))
	}
}

func wantClean(t *testing.T, fs []Finding) {
	t.Helper()
	if len(fs) != 0 {
		t.Errorf("expected no findings, got %v", ruleNames(fs))
	}
}

func TestCleanCircuit(t *testing.T) {
	lib := library.OSU018Like()
	wantClean(t, Run(&Context{Circuit: cleanCircuit(lib)}))
}

func TestIDIndex(t *testing.T) {
	lib := library.OSU018Like()
	c := cleanCircuit(lib)
	c.Gates[0].ID = 5
	wantRule(t, Run(&Context{Circuit: c}), "struct/id-index")

	c2 := cleanCircuit(lib)
	c2.Nets[1].ID = 0
	wantRule(t, Run(&Context{Circuit: c2}), "struct/id-index")
}

func TestCycle(t *testing.T) {
	lib := library.OSU018Like()
	c := cleanCircuit(lib)
	// Rewire g1 pin 1 from PI b to g3's output, closing g1 -> g3 -> g1
	// with consistent fanout back-references so only the cycle is reported.
	g1 := c.Gates[0]
	b := g1.Fanin[1]
	y := c.Gates[2].Out
	for i, p := range b.Fanout {
		if p.Gate == g1 && p.Pin == 1 {
			b.Fanout = append(b.Fanout[:i], b.Fanout[i+1:]...)
			break
		}
	}
	g1.Fanin[1] = y
	y.Fanout = append(y.Fanout, netlist.Pin{Gate: g1, Pin: 1})

	fs := Run(&Context{Circuit: c})
	wantRule(t, fs, "struct/cycle")
	for _, f := range fs {
		if f.Rule == "struct/cycle" && !strings.Contains(f.Message, "->") {
			t.Errorf("cycle finding should name the path, got %q", f.Message)
		}
	}
}

func TestUndrivenNet(t *testing.T) {
	lib := library.OSU018Like()
	c := cleanCircuit(lib)
	c.Nets = append(c.Nets, &netlist.Net{ID: len(c.Nets), Name: "ghost"})
	wantRule(t, Run(&Context{Circuit: c}), "struct/undriven-net")

	// A driven primary input is the dual violation.
	c2 := cleanCircuit(lib)
	c2.PIs[0].Driver = c2.Gates[0]
	wantRule(t, Run(&Context{Circuit: c2}), "struct/undriven-net")
}

func TestFloatingNetAndDeadLogic(t *testing.T) {
	lib := library.OSU018Like()
	c := cleanCircuit(lib)
	c.AddGate("dead", lib.ByName("INVX1"), c.PIs[0]) // output unused, not a PO
	fs := Run(&Context{Circuit: c})
	wantRule(t, fs, "struct/floating-net")
	wantRule(t, fs, "struct/dead-logic")
	if n := CountAtLeast(fs, Error); n != 0 {
		t.Errorf("floating/dead are warnings, got %d errors", n)
	}
}

func TestDanglingFanout(t *testing.T) {
	lib := library.OSU018Like()
	c := cleanCircuit(lib)
	c.Nets[0].Fanout[0].Pin = 7 // pin index beyond the gate's fanin
	wantRule(t, Run(&Context{Circuit: c}), "struct/dangling-fanout")

	// Gate reads a net whose fanout list omits the back-reference.
	c2 := cleanCircuit(lib)
	c2.Nets[0].Fanout = nil
	wantRule(t, Run(&Context{Circuit: c2}), "struct/dangling-fanout")

	// Foreign gate in a fanout list.
	c3 := cleanCircuit(lib)
	other := cleanCircuit(lib)
	c3.Nets[0].Fanout = append(c3.Nets[0].Fanout, netlist.Pin{Gate: other.Gates[0], Pin: 0})
	wantRule(t, Run(&Context{Circuit: c3}), "struct/dangling-fanout")
}

func TestDuplicateName(t *testing.T) {
	lib := library.OSU018Like()
	c := cleanCircuit(lib)
	c.Gates[1].Name = c.Gates[0].Name
	wantRule(t, Run(&Context{Circuit: c}), "struct/duplicate-name")

	c2 := cleanCircuit(lib)
	c2.Nets[1].Name = c2.Nets[0].Name
	wantRule(t, Run(&Context{Circuit: c2}), "struct/duplicate-name")
}

func TestFaninArity(t *testing.T) {
	lib := library.OSU018Like()
	c := cleanCircuit(lib)
	g := c.Gates[0]
	g.Fanin = g.Fanin[:1] // NAND2X1 expects 2
	wantRule(t, Run(&Context{Circuit: c}), "struct/fanin-arity")

	c2 := cleanCircuit(lib)
	c2.Gates[0].Type = nil
	wantRule(t, Run(&Context{Circuit: c2}), "struct/fanin-arity")
}

func TestRegionConvex(t *testing.T) {
	lib := library.OSU018Like()
	c := netlist.New("chain", lib)
	a := c.AddPI("a")
	b := c.AddPI("b")
	n1 := c.AddGate("g1", lib.ByName("INVX1"), a)
	n2 := c.AddGate("g2", lib.ByName("INVX1"), n1)
	y := c.AddGate("g3", lib.ByName("NAND2X1"), n2, b)
	c.MarkPO(y)

	// {g1, g3} is not convex: the path g1 -> g2 -> g3 re-enters the set.
	r := netlist.ExtractRegion([]*netlist.Gate{c.Gates[0], c.Gates[2]})
	fs := Run(&Context{Circuit: c, Region: r})
	wantRule(t, fs, "pipe/region-convex")

	// The convex closure of the same seed is clean.
	closed := netlist.ExtractRegion(netlist.ConvexClosure(c, []*netlist.Gate{c.Gates[0], c.Gates[2]}))
	wantClean(t, Run(&Context{Circuit: c, Region: closed}))
}

func TestRebuildIO(t *testing.T) {
	lib := library.OSU018Like()
	prev := cleanCircuit(lib)
	c := prev.Clone()
	c.PIs[0].Name = "renamed"
	wantRule(t, Run(&Context{Circuit: c, Prev: prev}), "pipe/rebuild-io")

	c2 := prev.Clone()
	c2.POs = nil
	wantRule(t, Run(&Context{Circuit: c2, Prev: prev}), "pipe/rebuild-io")

	wantClean(t, Run(&Context{Circuit: prev.Clone(), Prev: prev}))
}

func TestPlacementBounds(t *testing.T) {
	lib := library.OSU018Like()
	c := cleanCircuit(lib)
	p, err := place.Place(c, 0.7, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantClean(t, Run(&Context{Circuit: c, Placement: p}))

	p.Loc[0].X = p.Die.X1 // width pushes past the right edge
	wantRule(t, Run(&Context{Circuit: c, Placement: p}), "pipe/placement-bounds")

	p2, err := place.Place(c, 0.7, 1)
	if err != nil {
		t.Fatal(err)
	}
	p2.Loc[1] = p2.Loc[0] // two cells on the same origin overlap
	wantRule(t, Run(&Context{Circuit: c, Placement: p2}), "pipe/placement-bounds")
}

func TestRouteLayers(t *testing.T) {
	lib := library.OSU018Like()
	c := cleanCircuit(lib)
	p, err := place.Place(c, 0.7, 1)
	if err != nil {
		t.Fatal(err)
	}
	lay := route.Route(p)
	wantClean(t, Run(&Context{Circuit: c, Placement: p, Layout: lay}))

	// Seed a diagonal segment on an arbitrary routed net.
	for i := range lay.Routes {
		if lay.Routes[i].Net != nil {
			o := geom.Pt{X: lay.P.Die.X0, Y: lay.P.Die.Y0}
			lay.Routes[i].Segs = append(lay.Routes[i].Segs, route.Seg{
				Layer: route.M2,
				A:     o,
				B:     o.Add(1, 1),
			})
			break
		}
	}
	wantRule(t, Run(&Context{Circuit: c, Layout: lay}), "pipe/route-layers")
}

func TestFaultRules(t *testing.T) {
	lib := library.OSU018Like()
	c := cleanCircuit(lib)
	l := &fault.List{}
	l.Add(&fault.Fault{Model: fault.StuckAt, Net: c.Nets[0]})
	l.Add(&fault.Fault{Model: fault.CellAware, Gate: c.Gates[0]})
	wantClean(t, Run(&Context{Circuit: c, Faults: l}))

	l.Faults[1].ID = 0 // duplicate and non-dense
	fs := Run(&Context{Circuit: c, Faults: l})
	wantRule(t, fs, "fault/duplicate-id")
	l.Faults[1].ID = 1

	stale := &fault.List{}
	stale.Add(&fault.Fault{Model: fault.StuckAt, Net: &netlist.Net{ID: 99, Name: "stale"}})
	stale.Add(&fault.Fault{Model: fault.Bridge, Net: c.Nets[0], Other: &netlist.Net{ID: 98, Name: "gone"}})
	stale.Add(&fault.Fault{Model: fault.CellAware, Gate: &netlist.Gate{ID: 97, Name: "ghost"}})
	fs = Run(&Context{Circuit: c, Faults: stale})
	if got := ruleNames(fs)["fault/live-site"]; got < 3 {
		t.Errorf("expected >=3 fault/live-site findings, got %d", got)
	}
	// Foreign names (no live counterpart) are a live-site problem but NOT
	// the stale-generation signature.
	if got := ruleNames(fs)["fault/stale-generation"]; got != 0 {
		t.Errorf("foreign sites should not trigger fault/stale-generation, got %d", got)
	}
}

// TestStaleGeneration: a fault list built against one circuit generation and
// linted against a rebuilt clone (same names, different pointers) carries the
// stale-generation signature on every site kind.
func TestStaleGeneration(t *testing.T) {
	lib := library.OSU018Like()
	prev := cleanCircuit(lib)
	l := &fault.List{}
	l.Add(&fault.Fault{Model: fault.StuckAt, Net: prev.Nets[0]})
	l.Add(&fault.Fault{Model: fault.StuckAt, Net: prev.Gates[0].Out,
		BranchGate: prev.Gates[2], BranchPin: 0})
	l.Add(&fault.Fault{Model: fault.Transition, Net: prev.Nets[1], Value: 1})
	l.Add(&fault.Fault{Model: fault.Bridge, Net: prev.Nets[0], Other: prev.Nets[1]})
	l.Add(&fault.Fault{Model: fault.CellAware, Gate: prev.Gates[0]})

	// Against its own generation the list is clean.
	wantClean(t, Run(&Context{Circuit: prev, Faults: l}))

	// Against a rebuilt clone every site is stale-by-pointer yet resolves
	// by name: each fault must produce a stale-generation finding.
	c := prev.Clone()
	fs := Run(&Context{Circuit: c, Faults: l})
	if got := ruleNames(fs)["fault/stale-generation"]; got < l.Len() {
		t.Errorf("expected >=%d fault/stale-generation findings, got %d (%v)",
			l.Len(), got, ruleNames(fs))
	}
	// live-site fires too: the two rules diagnose the same pointers with
	// different specificity.
	wantRule(t, fs, "fault/live-site")
}

func TestClusterMembership(t *testing.T) {
	lib := library.OSU018Like()
	c := cleanCircuit(lib)
	l := &fault.List{}
	f1 := l.Add(&fault.Fault{Model: fault.StuckAt, Net: c.Nets[0], Status: fault.Undetectable})
	r := cluster.Build([]*fault.Fault{f1})
	wantClean(t, Run(&Context{Circuit: c, Faults: l, Clusters: r}))

	// A detected fault inside a cluster set violates the contract.
	f1.Status = fault.Detected
	wantRule(t, Run(&Context{Circuit: c, Faults: l, Clusters: r}), "fault/cluster-membership")
	f1.Status = fault.Undetectable

	// A clustered fault outside the universe.
	r2 := cluster.Build([]*fault.Fault{{ID: 42, Model: fault.StuckAt, Net: c.Nets[0], Status: fault.Undetectable}})
	wantRule(t, Run(&Context{Circuit: c, Faults: l, Clusters: r2}), "fault/cluster-membership")
}

func TestRegistry(t *testing.T) {
	reg := Builtin()
	if n := len(reg.Rules()); n < 10 {
		t.Fatalf("expected >=10 built-in rules, got %d", n)
	}
	names := reg.Rules()
	for i := 1; i < len(names); i++ {
		if names[i-1].Name() >= names[i].Name() {
			t.Fatalf("rules not sorted: %q before %q", names[i-1].Name(), names[i].Name())
		}
	}
	if reg.ByName("struct/cycle") == nil {
		t.Error("ByName failed for struct/cycle")
	}
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register should panic")
		}
	}()
	reg.Register(&rule{name: "struct/cycle"})
}

func TestSortAndErr(t *testing.T) {
	fs := []Finding{
		{Rule: "b", Severity: Warning, Loc: NoLoc, Message: "w"},
		{Rule: "a", Severity: Error, Loc: NetLoc(&netlist.Net{ID: 3}), Message: "e2"},
		{Rule: "a", Severity: Error, Loc: NetLoc(&netlist.Net{ID: 1}), Message: "e1"},
		{Rule: "c", Severity: Info, Loc: NoLoc, Message: "i"},
	}
	Sort(fs)
	got := []string{fs[0].Message, fs[1].Message, fs[2].Message, fs[3].Message}
	want := []string{"e1", "e2", "w", "i"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sort order %v, want %v", got, want)
		}
	}
	if err := Err(fs, Error); err == nil || !strings.Contains(err.Error(), "e1") {
		t.Errorf("Err should quote the first error finding, got %v", err)
	}
	if err := Err(fs[3:], Warning); err != nil {
		t.Errorf("Err below threshold should be nil, got %v", err)
	}
	if CountAtLeast(fs, Warning) != 3 {
		t.Errorf("CountAtLeast(Warning) = %d, want 3", CountAtLeast(fs, Warning))
	}
}

func TestParseSeverity(t *testing.T) {
	for in, want := range map[string]Severity{"info": Info, "warn": Warning, "warning": Warning, "error": Error} {
		got, err := ParseSeverity(in)
		if err != nil || got != want {
			t.Errorf("ParseSeverity(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSeverity("fatal"); err == nil {
		t.Error("ParseSeverity should reject unknown names")
	}
}
