package lint

import (
	"fmt"

	"dfmresyn/internal/fault"
	"dfmresyn/internal/netlist"
)

// faultRules check the fault universe against the circuit it was extracted
// from: every fault site must reference a live gate/net of that circuit,
// IDs must be dense and unique, and the clustering must only contain
// members of the universe. Violations here mean a stale fault list survived
// a resynthesis rebuild — the exact bug class the incremental flow invites.
func faultRules() []Rule {
	return []Rule{
		&rule{
			name: "fault/duplicate-id",
			sev:  Error,
			doc:  "fault IDs must be dense and unique (List.Add assigns them; ATPG and clustering index by them)",
			check: func(ctx *Context, emit func(Loc, string, string)) {
				l := ctx.Faults
				if l == nil {
					return
				}
				seen := make(map[int]int, len(l.Faults))
				for i, f := range l.Faults {
					if f == nil {
						emit(Loc{Gate: -1, Net: -1, Fault: i}, fmt.Sprintf("nil fault at position %d", i), "remove the hole from the fault list")
						continue
					}
					if first, dup := seen[f.ID]; dup {
						emit(FaultLoc(f), fmt.Sprintf("fault ID %d at position %d duplicates position %d", f.ID, i, first),
							"renumber the list with List.Add")
					} else {
						seen[f.ID] = i
					}
					if f.ID != i {
						emit(FaultLoc(f), fmt.Sprintf("fault ID %d at position %d is not dense", f.ID, i),
							"renumber the list with List.Add")
					}
				}
			},
		},
		&rule{
			name: "fault/live-site",
			sev:  Error,
			doc:  "every fault must reference live gates/nets of the analyzed circuit, per its model's site semantics",
			check: func(ctx *Context, emit func(Loc, string, string)) {
				l, c := ctx.Faults, ctx.Circuit
				if l == nil || c == nil {
					return
				}
				for _, f := range l.Faults {
					if f == nil {
						continue
					}
					loc := FaultLoc(f)
					switch f.Model {
					case fault.CellAware:
						if !liveGate(c, f.Gate) {
							emit(loc, fmt.Sprintf("cell-aware fault %d hosts gate %q which is not in the circuit", f.ID, gateName(f.Gate)),
								"rebuild the fault universe after netlist edits")
						}
					case fault.Bridge:
						if !liveNet(c, f.Net) {
							emit(loc, fmt.Sprintf("bridge fault %d victim net %q is not in the circuit", f.ID, faultNetName(f)),
								"rebuild the fault universe after netlist edits")
						}
						if !liveNet(c, f.Other) {
							emit(loc, fmt.Sprintf("bridge fault %d aggressor net %q is not in the circuit", f.ID, netName(f.Other)),
								"rebuild the fault universe after netlist edits")
						}
					default: // StuckAt, Transition
						if !liveNet(c, f.Net) {
							emit(loc, fmt.Sprintf("%s fault %d site net %q is not in the circuit", f.Model, f.ID, faultNetName(f)),
								"rebuild the fault universe after netlist edits")
						}
						if f.BranchGate != nil && !liveGate(c, f.BranchGate) {
							emit(loc, fmt.Sprintf("%s fault %d branch gate %q is not in the circuit", f.Model, f.ID, f.BranchGate.Name),
								"rebuild the fault universe after netlist edits")
						}
					}
				}
			},
		},
		&rule{
			name: "fault/stale-generation",
			sev:  Error,
			doc: "a dead fault-site pointer whose name resolves to a live gate/net means the fault list was carried " +
				"across a rebuild instead of being rebuilt — the stale-generation hazard verdict caching makes more likely",
			check: func(ctx *Context, emit func(Loc, string, string)) {
				l, c := ctx.Faults, ctx.Circuit
				if l == nil || c == nil {
					return
				}
				var gateByName map[string]bool
				liveGateName := func(name string) bool {
					if gateByName == nil {
						gateByName = make(map[string]bool, len(c.Gates))
						for _, g := range c.Gates {
							if g != nil {
								gateByName[g.Name] = true
							}
						}
					}
					return gateByName[name]
				}
				staleNet := func(n *netlist.Net) bool {
					return n != nil && !liveNet(c, n) && c.NetByName(n.Name) != nil
				}
				staleGate := func(g *netlist.Gate) bool {
					return g != nil && !liveGate(c, g) && liveGateName(g.Name)
				}
				for _, f := range l.Faults {
					if f == nil {
						continue
					}
					loc := FaultLoc(f)
					hint := "key verdicts structurally (fcache) and rebuild the fault universe against the current circuit"
					switch f.Model {
					case fault.CellAware:
						if staleGate(f.Gate) {
							emit(loc, fmt.Sprintf("cell-aware fault %d hosts gate %q from a previous circuit generation", f.ID, gateName(f.Gate)), hint)
						}
					case fault.Bridge:
						for _, n := range []*netlist.Net{f.Net, f.Other} {
							if staleNet(n) {
								emit(loc, fmt.Sprintf("bridge fault %d references net %q from a previous circuit generation", f.ID, netName(n)), hint)
							}
						}
					default: // StuckAt, Transition
						if staleNet(f.Net) {
							emit(loc, fmt.Sprintf("%s fault %d site net %q is from a previous circuit generation", f.Model, f.ID, faultNetName(f)), hint)
						}
						if staleGate(f.BranchGate) {
							emit(loc, fmt.Sprintf("%s fault %d branch gate %q is from a previous circuit generation", f.Model, f.ID, f.BranchGate.Name), hint)
						}
					}
				}
			},
		},
		&rule{
			name: "fault/cluster-membership",
			sev:  Error,
			doc:  "cluster sets may only contain undetectable members of the fault universe, and their gates must be live circuit gates",
			check: func(ctx *Context, emit func(Loc, string, string)) {
				r := ctx.Clusters
				if r == nil {
					return
				}
				inList := map[*fault.Fault]bool{}
				if ctx.Faults != nil {
					for _, f := range ctx.Faults.Faults {
						inList[f] = true
					}
				}
				for si, set := range r.Sets {
					for _, f := range set {
						if f == nil {
							emit(NoLoc, fmt.Sprintf("cluster %d contains a nil fault", si), "rebuild the clustering")
							continue
						}
						if ctx.Faults != nil && !inList[f] {
							emit(FaultLoc(f), fmt.Sprintf("cluster %d member %d is not in the fault universe", si, f.ID),
								"rebuild the clustering from the current fault list")
						}
						if f.Status != fault.Undetectable {
							emit(FaultLoc(f), fmt.Sprintf("cluster %d member %d has status %s, want undetectable", si, f.ID, f.Status),
								"cluster only the proven-undetectable set U")
						}
					}
				}
				if ctx.Circuit != nil {
					for _, g := range r.GU {
						if !liveGate(ctx.Circuit, g) {
							emit(GateLoc(g), fmt.Sprintf("clustered gate %q (G_U) is not in the circuit", gateName(g)),
								"rebuild the clustering after netlist edits")
						}
					}
				}
			},
		},
	}
}

func faultNetName(f *fault.Fault) string {
	if f.Net == nil {
		return "(nil)"
	}
	return f.Net.Name
}
