package lint

import (
	"fmt"
	"sort"

	"dfmresyn/internal/netlist"
	"dfmresyn/internal/route"
)

// pipelineRules check the invariants the flow/resyn pipeline assumes between
// stages: resynthesis regions stay convex, rebuilds preserve the circuit
// interface, placements stay inside the die, and routed geometry stays on
// the declared layers. Each rule activates only when its artifact is
// present in the context.
func pipelineRules() []Rule {
	return []Rule{
		&rule{
			name: "pipe/region-convex",
			sev:  Error,
			doc:  "a resynthesis region must be convex: no path may leave the region and re-enter it (RebuildReplacing requires this)",
			check: func(ctx *Context, emit func(Loc, string, string)) {
				r := ctx.Region
				c := ctx.regionCircuit()
				if r == nil || c == nil {
					return
				}
				inSet := make(map[*netlist.Gate]bool, len(r.Gates))
				for _, g := range r.Gates {
					if !liveGate(c, g) {
						emit(GateLoc(g), fmt.Sprintf("region gate %q is not in the circuit", gateName(g)),
							"extract the region from the current circuit generation")
						return
					}
					inSet[g] = true
				}
				if len(r.Gates) == 0 || c.FindCycle() != nil {
					return // nothing to check / cycle rule reports
				}
				closed := netlist.ConvexClosure(c, r.Gates)
				for _, g := range closed {
					if !inSet[g] {
						emit(GateLoc(g), fmt.Sprintf("region is not convex: gate %q lies on a path leaving and re-entering it", g.Name),
							"take the convex closure of the gate set before extracting the region")
					}
				}
			},
		},
		&rule{
			name: "pipe/rebuild-io",
			sev:  Error,
			doc:  "a rebuilt circuit must preserve the interface: same PIs (by name and order) and the same PO count/order",
			check: func(ctx *Context, emit func(Loc, string, string)) {
				c, prev := ctx.Circuit, ctx.Prev
				if c == nil || prev == nil {
					return
				}
				if len(c.PIs) != len(prev.PIs) {
					emit(NoLoc, fmt.Sprintf("rebuild changed the PI count: %d, was %d", len(c.PIs), len(prev.PIs)),
						"copy every primary input into the rebuilt circuit")
				} else {
					for i, pi := range c.PIs {
						if pi == nil || prev.PIs[i] == nil {
							continue // undriven-net/id-index rules report
						}
						if pi.Name != prev.PIs[i].Name {
							emit(NetLoc(pi), fmt.Sprintf("rebuild changed PI %d: %q, was %q", i, pi.Name, prev.PIs[i].Name),
								"preserve primary-input names and order")
						}
					}
				}
				if len(c.POs) != len(prev.POs) {
					emit(NoLoc, fmt.Sprintf("rebuild changed the PO count: %d, was %d", len(c.POs), len(prev.POs)),
						"return one driven net per region output and re-mark every PO")
				}
				for i, po := range c.POs {
					if po != nil && !po.IsPO {
						emit(NetLoc(po), fmt.Sprintf("net %q is in the PO list but not marked IsPO (position %d)", po.Name, i),
							"mark the net with MarkPO")
					}
				}
			},
		},
		&rule{
			name: "pipe/placement-bounds",
			sev:  Error,
			doc:  "every placed cell must lie inside the die rows, and cells in one row must not overlap",
			check: func(ctx *Context, emit func(Loc, string, string)) {
				p := ctx.Placement
				if p == nil || p.C == nil {
					return
				}
				c := p.C
				die := p.Die
				type span struct {
					g      *netlist.Gate
					x0, x1 int
				}
				rows := make(map[int][]span)
				for _, g := range c.Gates {
					if !liveGate(c, g) || g.ID >= len(p.Loc) || g.ID >= len(p.W) {
						emit(GateLoc(g), fmt.Sprintf("gate %q has no placement entry", gateName(g)),
							"re-place the circuit after netlist edits")
						continue
					}
					loc, w := p.Loc[g.ID], p.W[g.ID]
					if w < 1 {
						emit(GateLoc(g), fmt.Sprintf("gate %q has non-positive width %d", g.Name, w),
							"recompute cell widths from the library areas")
						continue
					}
					if loc.X < die.X0 || loc.X+w > die.X1 || loc.Y < die.Y0 || loc.Y >= die.Y0+p.Rows || loc.Y >= die.Y1 {
						emit(GateLoc(g), fmt.Sprintf("gate %q at (%d,%d) width %d leaves the %dx%d die", g.Name, loc.X, loc.Y, w, die.W(), die.H()),
							"re-place the circuit inside the die")
						continue
					}
					rows[loc.Y] = append(rows[loc.Y], span{g: g, x0: loc.X, x1: loc.X + w})
				}
				ys := make([]int, 0, len(rows))
				for y := range rows {
					ys = append(ys, y)
				}
				sort.Ints(ys)
				for _, y := range ys {
					row := rows[y]
					sort.Slice(row, func(i, j int) bool {
						if row[i].x0 != row[j].x0 {
							return row[i].x0 < row[j].x0
						}
						return row[i].g.ID < row[j].g.ID
					})
					for i := 1; i < len(row); i++ {
						if row[i].x0 < row[i-1].x1 {
							emit(GateLoc(row[i].g),
								fmt.Sprintf("gate %q overlaps gate %q in row %d (columns %d-%d vs %d-%d)",
									row[i].g.Name, row[i-1].g.Name, y, row[i].x0, row[i].x1-1, row[i-1].x0, row[i-1].x1-1),
								"legalize the row by spreading the cells")
						}
					}
				}
			},
		},
		&rule{
			name: "pipe/route-layers",
			sev:  Error,
			doc:  "routed segments must run on the declared layers with the right orientation (M2 horizontal, M3 vertical) and stay inside the die; vias must cut between declared layers",
			check: func(ctx *Context, emit func(Loc, string, string)) {
				lay := ctx.Layout
				if lay == nil || lay.P == nil {
					return
				}
				die := lay.P.Die
				inDie := func(x, y int) bool {
					return x >= die.X0 && x < die.X1 && y >= die.Y0 && y < die.Y1
				}
				for i := range lay.Routes {
					nr := &lay.Routes[i]
					if nr.Net == nil {
						continue
					}
					loc := NetLoc(nr.Net)
					if nr.Net.ID != i {
						emit(loc, fmt.Sprintf("route at index %d belongs to net %q with ID %d", i, nr.Net.Name, nr.Net.ID),
							"index routes by net ID")
					}
					for _, s := range nr.Segs {
						switch {
						case s.A.X != s.B.X && s.A.Y != s.B.Y:
							emit(loc, fmt.Sprintf("net %q has a diagonal segment (%d,%d)-(%d,%d)", nr.Net.Name, s.A.X, s.A.Y, s.B.X, s.B.Y),
								"split the segment into axis-aligned runs")
						case s.Layer != route.M2 && s.Layer != route.M3:
							emit(loc, fmt.Sprintf("net %q has a segment on undeclared layer %s", nr.Net.Name, s.Layer),
								"route only on the declared layers M2 and M3")
						case s.Layer == route.M2 && !s.Horizontal():
							emit(loc, fmt.Sprintf("net %q has a vertical segment on horizontal layer M2 at x=%d", nr.Net.Name, s.A.X),
								"move vertical runs to M3")
						case s.Layer == route.M3 && s.Horizontal() && s.A != s.B:
							emit(loc, fmt.Sprintf("net %q has a horizontal segment on vertical layer M3 at y=%d", nr.Net.Name, s.A.Y),
								"move horizontal runs to M2")
						}
						if !inDie(s.A.X, s.A.Y) || !inDie(s.B.X, s.B.Y) {
							emit(loc, fmt.Sprintf("net %q segment (%d,%d)-(%d,%d) leaves the die", nr.Net.Name, s.A.X, s.A.Y, s.B.X, s.B.Y),
								"route inside the die")
						}
					}
					for _, v := range nr.Vias {
						lo, hi := v.From, v.To
						if lo > hi {
							lo, hi = hi, lo
						}
						if lo < route.M1 || hi > route.M3 || lo == hi {
							emit(loc, fmt.Sprintf("net %q via at (%d,%d) cuts undeclared layers %s-%s", nr.Net.Name, v.At.X, v.At.Y, v.From, v.To),
								"cut only between the declared layers M1, M2 and M3")
						}
						if !inDie(v.At.X, v.At.Y) {
							emit(loc, fmt.Sprintf("net %q via at (%d,%d) is outside the die", nr.Net.Name, v.At.X, v.At.Y),
								"place vias inside the die")
						}
					}
				}
			},
		},
	}
}
