package lint

import (
	"fmt"

	"dfmresyn/internal/fault"
	"dfmresyn/internal/implic"
	"dfmresyn/internal/netlist"
)

// Implication-closure rules: the static implication engine
// (internal/implic) proves facts no per-object structural scan can —
// nets forced to a constant by the surrounding logic, and cones whose
// toggling is contradiction-blocked from every primary output. Both are
// Warning severity: such circuits simulate and route fine, but the
// logic is unpayable area and untestable by construction (every fault
// on it lands in the undetectable bucket the paper's flow then has to
// cluster and resynthesize away).

// implicEngine lazily builds (once per Context) the implication engine,
// guarding against circuits the engine cannot take: the structural
// rules own broken-circuit reporting, and the implication rules stand
// down there — Levelize panics on cycles and the closure indexes nets
// by ID, so the precheck mirrors struct/id-index, struct/cycle and
// struct/arity. A nil engine (oversized circuit, or empty) also stands
// down.
func (ctx *Context) implicEngine() *implic.Engine {
	if ctx.implicTried {
		return ctx.implicMemo
	}
	ctx.implicTried = true
	c := ctx.Circuit
	if c == nil || !implicSafe(c) {
		return nil
	}
	ctx.implicMemo = implic.New(c)
	return ctx.implicMemo
}

// implicSafe reports whether the circuit satisfies the structural
// invariants the implication engine assumes.
func implicSafe(c *netlist.Circuit) bool {
	for i, n := range c.Nets {
		if n == nil || n.ID != i || (n.Driver == nil && !n.IsPI) || (n.Driver != nil && n.IsPI) {
			return false
		}
	}
	for i, g := range c.Gates {
		if g == nil || g.ID != i || g.Type == nil || len(g.Fanin) != g.Type.NumInputs() {
			return false
		}
		for _, in := range g.Fanin {
			if in == nil {
				return false
			}
		}
	}
	return c.FindCycle() == nil
}

func implicRules() []Rule {
	return []Rule{
		&rule{
			name: "implic/constant-line",
			sev:  Warning,
			doc:  "a net proven constant by the implication closure never toggles; its cone is untestable logic",
			check: func(ctx *Context, emit func(Loc, string, string)) {
				e := ctx.implicEngine()
				if e == nil {
					return
				}
				e.ForEachConstant(func(net int, val uint8) {
					n := ctx.Circuit.Nets[net]
					emit(NetLoc(n),
						fmt.Sprintf("net %q is statically constant %d (implication closure)", n.Name, val),
						"propagate the constant and remove the driving cone, or fix the logic if toggling was intended")
				})
			},
		},
		&rule{
			name: "implic/unobservable",
			sev:  Warning,
			doc:  "a gate output whose value change is contradiction-blocked from every primary output is dead logic the structural scan cannot see",
			check: func(ctx *Context, emit func(Loc, string, string)) {
				e := ctx.implicEngine()
				if e == nil {
					return
				}
				c := ctx.Circuit
				// Skip gates struct/dead-logic already flags (no
				// structural path to a PO) and constant outputs
				// (implic/constant-line already covers those).
				reach := structReachPO(c)
				for _, g := range c.Gates {
					if g.Out == nil || !reach[g.ID] {
						continue
					}
					if _, isConst := e.ConstNet(g.Out.ID); isConst {
						continue
					}
					sa0 := &fault.Fault{Model: fault.StuckAt, Net: g.Out, Value: 0}
					sa1 := &fault.Fault{Model: fault.StuckAt, Net: g.Out, Value: 1}
					if e.Undetectable(sa0) && e.Undetectable(sa1) {
						emit(GateLoc(g),
							fmt.Sprintf("gate %q output %q never influences a primary output (implication closure blocks both stuck-at polarities)", g.Name, g.Out.Name),
							"the gate is redundant under the surrounding logic; remove it or rewire the redundancy")
					}
				}
			},
		},
	}
}

// structReachPO marks gates from which some primary output is
// structurally reachable (reverse walk from the POs over driver
// edges, mirroring struct/dead-logic).
func structReachPO(c *netlist.Circuit) []bool {
	reach := make([]bool, len(c.Gates))
	var stack []*netlist.Gate
	push := func(g *netlist.Gate) {
		if g != nil && !reach[g.ID] {
			reach[g.ID] = true
			stack = append(stack, g)
		}
	}
	for _, po := range c.POs {
		if po != nil {
			push(po.Driver)
		}
	}
	for len(stack) > 0 {
		g := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, in := range g.Fanin {
			if in != nil {
				push(in.Driver)
			}
		}
	}
	return reach
}
