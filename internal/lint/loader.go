package lint

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"

	"dfmresyn/internal/library"
	"dfmresyn/internal/netlist"
)

// ReadLoose parses the netlist text format (see netlist.Read) permissively,
// so that malformed circuits can be *linted* instead of rejected at the
// door: forward references create placeholder nets (which is also how a
// combinational cycle becomes expressible in the file format), duplicate
// names create shadowing nets, and fanin-arity mismatches are kept as
// written. Unrecoverable lines (unknown directives or cells, missing
// fields) become parse/* findings. The returned circuit may therefore
// violate any invariant — feed it to Run to get the full diagnosis.
//
// Name lookups on the returned circuit (NetByName) do not work: the loose
// loader bypasses the strict constructors precisely because they enforce
// the invariants being linted.
func ReadLoose(r io.Reader, lib *library.Library) (*netlist.Circuit, []Finding) {
	var fs []Finding
	parseErr := func(lineNo int, format string, args ...interface{}) {
		fs = append(fs, Finding{
			Rule:     "parse/syntax",
			Severity: Error,
			Loc:      NoLoc,
			Message:  fmt.Sprintf("line %d: %s", lineNo, fmt.Sprintf(format, args...)),
		})
	}

	c := netlist.New("", lib)
	// Last net registered under each name; duplicates shadow earlier ones,
	// matching how the strict parser would resolve references.
	byName := map[string]*netlist.Net{}
	addNet := func(name string) *netlist.Net {
		n := &netlist.Net{ID: len(c.Nets), Name: name}
		c.Nets = append(c.Nets, n)
		byName[name] = n
		return n
	}
	// resolve returns the net a reference names, creating an undriven
	// placeholder on first use (forward references and typos alike — the
	// undriven-net rule reports whichever it was).
	resolve := func(name string) *netlist.Net {
		if n, ok := byName[name]; ok {
			return n
		}
		return addNet(name)
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	sawCircuit := false
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "circuit":
			if len(fields) != 2 {
				parseErr(lineNo, "circuit needs a name")
				continue
			}
			c.Name = fields[1]
			sawCircuit = true
		case "input":
			for _, name := range fields[1:] {
				var n *netlist.Net
				if old, ok := byName[name]; ok && old.Driver == nil && !old.IsPI {
					n = old // forward-referenced placeholder
				} else {
					n = addNet(name) // fresh or duplicate (duplicate-name rule reports)
				}
				n.IsPI = true
				c.PIs = append(c.PIs, n)
			}
		case "gate":
			if len(fields) < 4 {
				parseErr(lineNo, "gate needs instance, cell and output")
				continue
			}
			inst, cellName, outName := fields[1], fields[2], fields[3]
			cell := lib.ByName(cellName)
			if cell == nil {
				parseErr(lineNo, "unknown cell %q", cellName)
				// Keep going with a typeless gate so connectivity (and any
				// cycle through it) is still analyzed; fanin-arity reports
				// the missing cell.
			}
			fanin := make([]*netlist.Net, len(fields[4:]))
			for i, name := range fields[4:] {
				fanin[i] = resolve(name)
			}
			g := &netlist.Gate{ID: len(c.Gates), Name: inst, Type: cell, Fanin: fanin}
			var out *netlist.Net
			if old, ok := byName[outName]; ok && old.Driver == nil && !old.IsPI {
				out = old // forward-referenced placeholder: this closes cycles
			} else {
				out = addNet(outName)
			}
			out.Driver = g
			g.Out = out
			c.Gates = append(c.Gates, g)
			for i, in := range fanin {
				in.Fanout = append(in.Fanout, netlist.Pin{Gate: g, Pin: i})
			}
		case "output":
			for _, name := range fields[1:] {
				n := resolve(name)
				if !n.IsPO {
					n.IsPO = true
					c.POs = append(c.POs, n)
				}
			}
		default:
			parseErr(lineNo, "unknown directive %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		parseErr(lineNo+1, "read failed: %v", err)
	}
	if !sawCircuit {
		parseErr(lineNo+1, "no circuit declaration found")
	}
	return c, fs
}

// LoadFile reads and lints one circuit file: the loose parse findings plus
// the full rule run over the parsed circuit, in canonical order.
func LoadFile(path string, lib *library.Library) (*netlist.Circuit, []Finding, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	c, fs := ReadLoose(f, lib)
	fs = append(fs, Run(&Context{Circuit: c})...)
	Sort(fs)
	return c, fs, nil
}
