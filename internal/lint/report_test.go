package lint

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"dfmresyn/internal/library"
)

var update = flag.Bool("update", false, "rewrite golden files")

// checkGolden compares got against testdata/<name>, rewriting the file
// under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// goldenFindings are the deterministic findings of the broken_dup testdata
// circuit — the same circuit the CLI acceptance check uses.
func goldenFindings(t *testing.T) []Finding {
	t.Helper()
	lib := library.OSU018Like()
	_, fs, err := LoadFile(filepath.Join("testdata", "broken_dup.ckt"), lib)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestWriteTextGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteText(&buf, goldenFindings(t)); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "broken_dup.txt.golden", buf.Bytes())
}

func TestWriteJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, goldenFindings(t)); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "broken_dup.json.golden", buf.Bytes())

	// The golden document must stay parseable with accurate counts.
	var rep struct {
		Findings []struct {
			Rule     string `json:"rule"`
			Severity string `json:"severity"`
		} `json:"findings"`
		Errors   int `json:"errors"`
		Warnings int `json:"warnings"`
	}
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	e := 0
	for _, f := range rep.Findings {
		if f.Severity == "error" {
			e++
		}
	}
	if e != rep.Errors {
		t.Errorf("summary errors %d != counted %d", rep.Errors, e)
	}
}

func TestWriteTextEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteText(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "0 findings: 0 error, 0 warning, 0 info\n" {
		t.Errorf("empty report = %q", got)
	}
}
