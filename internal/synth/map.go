package synth

import (
	"fmt"
	"sort"

	"dfmresyn/internal/library"
	"dfmresyn/internal/netlist"
)

// Mode selects the mapping cost function.
type Mode int

// Mapping modes: minimize area (with delay tie-break) or delay (with area
// tie-break).
const (
	Area Mode = iota
	Delay
)

// maxCutsPerNode bounds priority-cut enumeration.
const maxCutsPerNode = 8

// Mapper holds the per-library match table; build it once and reuse.
type Mapper struct {
	Lib   *library.Library
	table *matchTable
}

// NewMapper prepares a mapper for the library.
func NewMapper(lib *library.Library) *Mapper {
	return &Mapper{Lib: lib, table: buildMatchTable(lib)}
}

// chosen records the selected implementation of an AIG (node, phase).
type chosen struct {
	viaInv bool
	cut    []int
	m      match
	cost   float64
	delay  float64
	valid  bool
}

// Mapped is a completed technology mapping, ready to be instantiated into a
// netlist.
type Mapped struct {
	aig     *AIG
	mapper  *Mapper
	outs    []Lit
	best    [][2]chosen // per node: phase 0 (positive), 1 (negative)
	inv     *library.Cell
	refs    []int // AIG fanout reference counts (area-flow)
	EstArea float64
}

// ErrInsufficientCells is returned (wrapped) when the allowed cell subset
// cannot realize the subcircuit — the eligibility condition (3) of the
// paper's Section III-B.
var ErrInsufficientCells = fmt.Errorf("synth: allowed cells insufficient for subcircuit")

// Map performs cut-based technology mapping of the AIG outputs onto the
// allowed cell subset.
func (mp *Mapper) Map(a *AIG, outs []Lit, allowed func(*library.Cell) bool, mode Mode) (*Mapped, error) {
	var inv *library.Cell
	// Use the cheapest allowed inverter for phase flips.
	for _, c := range mp.Lib.Cells {
		if !allowed(c) || c.NumInputs() != 1 {
			continue
		}
		// An inverter cell computes NOT.
		if c.TT.Bits&1 == 1 && c.TT.Bits>>1&1 == 0 {
			if inv == nil || c.Area < inv.Area {
				inv = c
			}
		}
	}

	md := &Mapped{aig: a, mapper: mp, outs: outs, inv: inv,
		best: make([][2]chosen, a.Len())}

	// Reference counts for area-flow costing: a shared node's cost is
	// amortized over its fanouts, which stops the tree-duplication
	// overestimate classic DP mappers suffer from.
	md.refs = make([]int, a.Len())
	for n := a.NumPI() + 1; n < a.Len(); n++ {
		if f0, f1, ok := a.IsAnd(n); ok {
			md.refs[f0.Node()]++
			md.refs[f1.Node()]++
		}
	}
	for _, o := range outs {
		md.refs[o.Node()]++
	}

	cuts := make([][][]int, a.Len())
	tts := map[[2]int]uint64{} // (node, cutIndex) -> function bits

	// PIs and constant.
	md.best[0] = [2]chosen{} // constants handled at instantiation
	for n := 1; n <= a.NumPI(); n++ {
		md.best[n][0] = chosen{valid: true}
		if inv != nil {
			md.best[n][1] = chosen{valid: true, viaInv: true,
				cost: inv.Area, delay: inv.Intrinsic}
		}
		cuts[n] = [][]int{{n}}
	}

	for n := a.NumPI() + 1; n < a.Len(); n++ {
		f0, f1, ok := a.IsAnd(n)
		if !ok {
			continue
		}
		// Priority-cut enumeration.
		var cs [][]int
		for _, c0 := range cuts[f0.Node()] {
			for _, c1 := range cuts[f1.Node()] {
				mc := mergeCuts(c0, c1)
				if mc == nil {
					continue
				}
				cs = append(cs, mc)
			}
		}
		cs = append(cs, []int{n})
		cs = pruneCuts(cs)
		cuts[n] = cs

		// Evaluate matches per cut and phase.
		for ci, cut := range cs {
			if len(cut) == 1 && cut[0] == n {
				continue // trivial cut: no cone to match
			}
			bits := a.cutTT(n, cut)
			tts[[2]int{n, ci}] = bits
			mask := uint64(1)<<(1<<uint(len(cut))) - 1
			for phase := 0; phase < 2; phase++ {
				target := bits
				if phase == 1 {
					target = ^bits & mask
				}
				for _, m := range mp.table.lookup(len(cut), target) {
					if !allowed(m.cell) {
						continue
					}
					cost, delay, feasible := md.matchCost(cut, m)
					if !feasible {
						continue
					}
					cand := chosen{cut: cut, m: m, cost: cost, delay: delay, valid: true}
					if better(cand, md.best[n][phase], mode) {
						md.best[n][phase] = cand
					}
				}
			}
		}
		// Phase flip via inverter.
		if inv != nil {
			for phase := 0; phase < 2; phase++ {
				other := md.best[n][1-phase]
				if !other.valid {
					continue
				}
				cand := chosen{viaInv: true, valid: true,
					cost:  other.cost + inv.Area,
					delay: other.delay + inv.Intrinsic}
				if better(cand, md.best[n][phase], mode) {
					md.best[n][phase] = cand
				}
			}
		}
	}

	// Feasibility of all demanded outputs.
	for _, o := range outs {
		if o.IsConst() {
			continue
		}
		phase := 0
		if o.Inv() {
			phase = 1
		}
		if !md.best[o.Node()][phase].valid {
			return nil, fmt.Errorf("%w: output literal %d unrealizable", ErrInsufficientCells, o)
		}
		md.EstArea += md.best[o.Node()][phase].cost
	}
	return md, nil
}

// matchCost sums the cell cost with the demanded leaf phase costs; leaf
// costs are amortized over the leaf's AIG fanout count (area flow).
func (md *Mapped) matchCost(cut []int, m match) (cost, delay float64, feasible bool) {
	cost = m.cell.Area
	delay = 0
	k := len(cut)
	for i := 0; i < k; i++ {
		leaf := cut[m.perm[i]]
		phase := int(m.leafNeg >> uint(i) & 1)
		lb := md.best[leaf][phase]
		if !lb.valid {
			return 0, 0, false
		}
		refs := md.refs[leaf]
		if refs < 1 {
			refs = 1
		}
		cost += lb.cost / float64(refs)
		if lb.delay > delay {
			delay = lb.delay
		}
	}
	return cost, delay + m.cell.Intrinsic, true
}

func better(a, b chosen, mode Mode) bool {
	if !b.valid {
		return a.valid
	}
	if !a.valid {
		return false
	}
	if mode == Area {
		if a.cost != b.cost {
			return a.cost < b.cost
		}
		return a.delay < b.delay
	}
	if a.delay != b.delay {
		return a.delay < b.delay
	}
	return a.cost < b.cost
}

// mergeCuts unions two leaf sets, failing when the result exceeds 4 leaves.
func mergeCuts(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case i == len(a):
			out = append(out, b[j])
			j++
		case j == len(b):
			out = append(out, a[i])
			i++
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		default:
			out = append(out, b[j])
			j++
		}
		if len(out) > 4 {
			return nil
		}
	}
	return out
}

// pruneCuts deduplicates and keeps the smallest cuts.
func pruneCuts(cs [][]int) [][]int {
	sort.Slice(cs, func(i, j int) bool {
		if len(cs[i]) != len(cs[j]) {
			return len(cs[i]) < len(cs[j])
		}
		for k := range cs[i] {
			if cs[i][k] != cs[j][k] {
				return cs[i][k] < cs[j][k]
			}
		}
		return false
	})
	var out [][]int
	for i, c := range cs {
		if i > 0 && equalCut(c, cs[i-1]) {
			continue
		}
		out = append(out, c)
		if len(out) >= maxCutsPerNode {
			break
		}
	}
	return out
}

func equalCut(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// cutTT computes the function of node n over the cut leaves (bit b of the
// result is the node value when leaf i takes bit i of b).
func (a *AIG) cutTT(n int, cut []int) uint64 {
	memo := map[int]uint64{}
	k := len(cut)
	mask := uint64(1)<<(1<<uint(k)) - 1
	for i, leaf := range cut {
		memo[leaf] = projection(i, k)
	}
	var eval func(n int) uint64
	eval = func(n int) uint64 {
		if v, ok := memo[n]; ok {
			return v
		}
		f0, f1, ok := a.IsAnd(n)
		if !ok {
			// Constant node (PIs would be leaves of any valid cut).
			return 0
		}
		v0 := eval(f0.Node())
		if f0.Inv() {
			v0 = ^v0 & mask
		}
		v1 := eval(f1.Node())
		if f1.Inv() {
			v1 = ^v1 & mask
		}
		v := v0 & v1
		memo[n] = v
		return v
	}
	return eval(n) & mask
}

// projection returns the truth table of variable i over k variables.
func projection(i, k int) uint64 {
	var bits uint64
	for b := uint(0); b < 1<<uint(k); b++ {
		if b>>uint(i)&1 == 1 {
			bits |= 1 << b
		}
	}
	return bits
}

// Instantiate builds the mapped logic into nc. ins are the nets for the AIG
// PIs in order; the returned nets realize the output literals in order.
// Gates are named prefix plus a counter (the caller must pick a prefix that
// cannot collide with existing gate names).
func (md *Mapped) Instantiate(nc *netlist.Circuit, ins []*netlist.Net, prefix string) []*netlist.Net {
	return md.InstantiateExt(nc, ins, prefix, nil)
}

// InstantiateExt is Instantiate with support for pseudo primary inputs: AIG
// PI indices at or beyond len(ins) are obtained from resolve, which may
// itself demand mapped literals through the provided callback (used to
// re-instantiate frozen gates in place).
func (md *Mapped) InstantiateExt(nc *netlist.Circuit, ins []*netlist.Net, prefix string,
	resolve func(pi int, demand func(Lit) *netlist.Net) *netlist.Net) []*netlist.Net {

	if len(ins) > md.aig.NumPI() || (resolve == nil && len(ins) != md.aig.NumPI()) {
		panic("synth: Instantiate input count mismatch")
	}
	counter := 0
	name := func() string {
		counter++
		return fmt.Sprintf("%s%d", prefix, counter)
	}
	memo := map[[2]int]*netlist.Net{}

	var build func(n, phase int) *netlist.Net
	demand := func(l Lit) *netlist.Net {
		phase := 0
		if l.Inv() {
			phase = 1
		}
		return build(l.Node(), phase)
	}
	piNet := func(i int) *netlist.Net {
		if i < len(ins) {
			return ins[i]
		}
		if resolve == nil {
			panic("synth: pseudo PI without resolver")
		}
		return resolve(i, demand)
	}
	build = func(n, phase int) *netlist.Net {
		key := [2]int{n, phase}
		if net, ok := memo[key]; ok {
			return net
		}
		var net *netlist.Net
		switch {
		case n == 0:
			net = md.makeConst(nc, ins, phase == 1, name)
		case md.aig.IsPI(n):
			if phase == 0 {
				net = piNet(n - 1)
			} else {
				net = nc.AddGate(name(), md.inv, piNet(n-1))
			}
		default:
			ch := md.best[n][phase]
			if !ch.valid {
				panic("synth: instantiating unrealizable literal")
			}
			if ch.viaInv {
				other := build(n, 1-phase)
				net = nc.AddGate(name(), md.inv, other)
				break
			}
			k := len(ch.cut)
			fanin := make([]*netlist.Net, k)
			for i := 0; i < k; i++ {
				leaf := ch.cut[ch.m.perm[i]]
				lp := int(ch.m.leafNeg >> uint(i) & 1)
				fanin[i] = build(leaf, lp)
			}
			net = nc.AddGate(name(), ch.m.cell, fanin...)
		}
		memo[key] = net
		return net
	}

	outs := make([]*netlist.Net, len(md.outs))
	for i, o := range md.outs {
		phase := 0
		if o.Inv() {
			phase = 1
		}
		outs[i] = build(o.Node(), phase)
	}
	return outs
}

// makeConst builds a constant net. With at least one input available it
// uses x AND NOT x (or its complement); otherwise it cannot be built.
func (md *Mapped) makeConst(nc *netlist.Circuit, ins []*netlist.Net, one bool, name func() string) *netlist.Net {
	if len(ins) == 0 || md.inv == nil {
		panic("synth: constant output with no inputs to derive it from")
	}
	x := ins[0]
	xn := nc.AddGate(name(), md.inv, x)
	// Find an allowed 2-input AND-like or NAND-like cell.
	var and2, nand2 *library.Cell
	for _, c := range md.mapper.Lib.Cells {
		if c.NumInputs() != 2 {
			continue
		}
		switch c.TT.Bits & 0xF {
		case 0x8:
			if and2 == nil {
				and2 = c
			}
		case 0x7:
			if nand2 == nil {
				nand2 = c
			}
		}
	}
	switch {
	case one && nand2 != nil:
		return nc.AddGate(name(), nand2, x, xn)
	case one && and2 != nil:
		z := nc.AddGate(name(), and2, x, xn)
		return nc.AddGate(name(), md.inv, z)
	case !one && and2 != nil:
		return nc.AddGate(name(), and2, x, xn)
	case !one && nand2 != nil:
		z := nc.AddGate(name(), nand2, x, xn)
		return nc.AddGate(name(), md.inv, z)
	}
	panic("synth: no cell available to build a constant")
}
