package synth

import (
	"fmt"

	"dfmresyn/internal/library"
	"dfmresyn/internal/netlist"
)

// frozenInfo describes one frozen gate: kept cell-for-cell, re-instantiated
// inside the rebuilt region with its inputs taken from the mapped logic.
type frozenInfo struct {
	gate   *netlist.Gate
	inLits []Lit
}

// RegionSynthesis is a prepared resynthesis of a subcircuit C_sub: the
// extracted boundary function, technology-mapped onto an allowed cell
// subset. Apply it with Rebuild.
type RegionSynthesis struct {
	Region  *netlist.Region
	mapped  *Mapped
	prefix  string
	nOut    int
	frozen  []frozenInfo
	realPIs int
}

// SynthesizeRegion extracts the boundary function of region r from circuit
// c, builds its AIG, and maps it using only the allowed cells. It returns
// ErrInsufficientCells (wrapped) when the subset cannot realize the logic —
// the eligibility condition for excluding a cell in the paper's procedure.
//
// Gates for which frozen returns true (the paper's G_zero and G_back sets)
// are not remapped: each is re-instantiated with its original cell type,
// its output entering the AIG as a pseudo primary input and its inputs
// realized by the mapped logic. This preserves exactly the internal-fault
// contribution of the frozen gates while everything around them is free to
// change.
func SynthesizeRegion(c *netlist.Circuit, r *netlist.Region,
	mapper *Mapper, allowed func(*library.Cell) bool, mode Mode,
	frozen func(*netlist.Gate) bool, prefix string) (*RegionSynthesis, error) {

	// Topological region gates and frozen pre-scan (pseudo-PI count).
	var regionGates []*netlist.Gate
	for _, g := range c.Levelize() {
		if r.Contains(g) {
			regionGates = append(regionGates, g)
		}
	}
	nFrozen := 0
	if frozen != nil {
		for _, g := range regionGates {
			if frozen(g) {
				nFrozen++
			}
		}
	}
	if nFrozen == len(regionGates) {
		return nil, fmt.Errorf("synth: region fully frozen, nothing to resynthesize")
	}

	aig := NewAIG(len(r.Inputs) + nFrozen)
	lits := map[*netlist.Net]Lit{}
	for i, in := range r.Inputs {
		lits[in] = aig.PI(i)
	}

	rs := &RegionSynthesis{Region: r, prefix: prefix, nOut: len(r.Outputs), realPIs: len(r.Inputs)}
	for _, g := range regionGates {
		ins := make([]Lit, len(g.Fanin))
		for i, fn := range g.Fanin {
			l, ok := lits[fn]
			if !ok {
				return nil, fmt.Errorf("synth: region gate %s has unmapped fanin %s", g.Name, fn.Name)
			}
			ins[i] = l
		}
		if frozen != nil && frozen(g) {
			idx := len(r.Inputs) + len(rs.frozen)
			rs.frozen = append(rs.frozen, frozenInfo{gate: g, inLits: ins})
			lits[g.Out] = aig.PI(idx)
			continue
		}
		lits[g.Out] = aig.FromTT(g.Type.TT, ins)
	}

	outs := make([]Lit, 0, len(r.Outputs)+2*nFrozen)
	for _, o := range r.Outputs {
		l, ok := lits[o]
		if !ok {
			return nil, fmt.Errorf("synth: region output %s not computed", o.Name)
		}
		outs = append(outs, l)
	}
	// Frozen gate inputs are additional mapping obligations.
	for _, fi := range rs.frozen {
		outs = append(outs, fi.inLits...)
	}

	mapped, err := mapper.Map(aig, outs, allowed, mode)
	if err != nil {
		return nil, err
	}
	rs.mapped = mapped
	return rs, nil
}

// Rebuild produces the new circuit with the region replaced by the mapped
// logic (frozen gates re-instantiated unchanged).
func (rs *RegionSynthesis) Rebuild(c *netlist.Circuit) (*netlist.Circuit, error) {
	return c.RebuildReplacing(rs.Region, func(nc *netlist.Circuit, ins []*netlist.Net) []*netlist.Net {
		built := make([]*netlist.Net, len(rs.frozen))
		resolve := func(pi int, demand func(Lit) *netlist.Net) *netlist.Net {
			k := pi - rs.realPIs
			if k < 0 || k >= len(rs.frozen) {
				panic(fmt.Sprintf("synth: pseudo PI %d out of range", pi))
			}
			if built[k] != nil {
				return built[k]
			}
			fi := rs.frozen[k]
			fanin := make([]*netlist.Net, len(fi.inLits))
			for i, l := range fi.inLits {
				fanin[i] = demand(l)
			}
			// Frozen gates keep their original instance name (the
			// original instance is gone from the rebuilt circuit,
			// so there is no collision).
			built[k] = nc.AddGate(fi.gate.Name, fi.gate.Type, fanin...)
			return built[k]
		}
		outs := rs.mapped.InstantiateExt(nc, ins, rs.prefix, resolve)
		return outs[:rs.nOut]
	})
}

// EstArea returns the mapper's area estimate for the replacement logic.
func (rs *RegionSynthesis) EstArea() float64 { return rs.mapped.EstArea }
