package synth

import (
	"dfmresyn/internal/library"
)

// match is one way to implement a k-leaf cut function with a library cell:
// cell input i connects to cut leaf perm[i], inverted when bit i of leafNeg
// is set; the cell output realizes the target function directly (the output
// phase is part of the lookup key, so no output inverter is implied).
type match struct {
	cell    *library.Cell
	perm    [4]uint8
	leafNeg uint8
}

// matchTable indexes matches by cut size and target function bits.
type matchTable [5]map[uint64][]match

// buildMatchTable enumerates, for every cell, every input permutation and
// every input-phase assignment, the boundary function realized, and indexes
// the results for O(1) lookup during mapping.
func buildMatchTable(lib *library.Library) *matchTable {
	var mt matchTable
	for k := 1; k <= 4; k++ {
		mt[k] = make(map[uint64][]match)
	}
	for _, cell := range lib.Cells {
		k := cell.NumInputs()
		if k > 4 {
			continue
		}
		perms := permutations(k)
		for _, perm := range perms {
			for phase := uint8(0); phase < 1<<uint(k); phase++ {
				var bits uint64
				for b := uint(0); b < 1<<uint(k); b++ {
					// Cell input i sees leaf perm[i], xored with
					// its phase bit.
					var cellAsg uint
					for i := 0; i < k; i++ {
						v := uint8(b>>uint(perm[i])&1) ^ (phase >> uint(i) & 1)
						cellAsg |= uint(v) << uint(i)
					}
					if cell.Eval(cellAsg) == 1 {
						bits |= 1 << b
					}
				}
				var p4 [4]uint8
				copy(p4[:], perm)
				mt[k][bits] = append(mt[k][bits], match{cell: cell, perm: p4, leafNeg: phase})
			}
		}
	}
	return &mt
}

// lookup returns the matches implementing the k-leaf function bits.
func (mt *matchTable) lookup(k int, bits uint64) []match {
	if k < 1 || k > 4 {
		return nil
	}
	return mt[k][bits]
}

// permutations enumerates all permutations of 0..k-1.
func permutations(k int) [][]uint8 {
	if k == 0 {
		return [][]uint8{{}}
	}
	var out [][]uint8
	base := permutations(k - 1)
	for _, p := range base {
		for pos := 0; pos <= len(p); pos++ {
			np := make([]uint8, 0, k)
			np = append(np, p[:pos]...)
			np = append(np, uint8(k-1))
			np = append(np, p[pos:]...)
			out = append(out, np)
		}
	}
	return out
}
