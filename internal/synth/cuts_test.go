package synth

import (
	"testing"

	"dfmresyn/internal/logic"
)

func TestMergeCuts(t *testing.T) {
	if got := mergeCuts([]int{1, 3}, []int{2, 3}); !equalCut(got, []int{1, 2, 3}) {
		t.Errorf("merge = %v", got)
	}
	if got := mergeCuts([]int{1}, []int{1}); !equalCut(got, []int{1}) {
		t.Errorf("self-merge = %v", got)
	}
	// Over 4 leaves: rejected.
	if got := mergeCuts([]int{1, 2, 3}, []int{4, 5}); got != nil {
		t.Errorf("oversized merge accepted: %v", got)
	}
	if got := mergeCuts([]int{1, 2}, []int{3, 4}); !equalCut(got, []int{1, 2, 3, 4}) {
		t.Errorf("4-leaf merge = %v", got)
	}
}

func TestPruneCuts(t *testing.T) {
	cs := [][]int{
		{5, 6, 7},
		{1, 2},
		{1, 2}, // duplicate
		{3},
		{1, 4},
	}
	out := pruneCuts(cs)
	if len(out) != 4 {
		t.Fatalf("pruned to %d cuts, want 4 (dedup)", len(out))
	}
	// Smallest first.
	for i := 1; i < len(out); i++ {
		if len(out[i-1]) > len(out[i]) {
			t.Fatalf("cuts not size-sorted: %v", out)
		}
	}
	// Cap at maxCutsPerNode.
	var many [][]int
	for i := 0; i < 30; i++ {
		many = append(many, []int{i})
	}
	if got := len(pruneCuts(many)); got != maxCutsPerNode {
		t.Errorf("cap = %d, want %d", got, maxCutsPerNode)
	}
}

func TestCutTT(t *testing.T) {
	a := NewAIG(3)
	x, y, z := a.PI(0), a.PI(1), a.PI(2)
	n1 := a.And(x, y)
	n2 := a.And(n1.Not(), z) // (x NAND y) AND z over cut {x,y,z}
	cut := []int{x.Node(), y.Node(), z.Node()}
	bits := a.cutTT(n2.Node(), cut)
	for b := uint(0); b < 8; b++ {
		xv, yv, zv := b&1, b>>1&1, b>>2&1
		want := uint64((xv&yv ^ 1) & zv)
		if bits>>b&1 != want {
			t.Fatalf("cutTT at %03b = %d, want %d", b, bits>>b&1, want)
		}
	}
}

func TestProjection(t *testing.T) {
	p := projection(1, 3)
	for b := uint(0); b < 8; b++ {
		if p>>b&1 != uint64(b>>1&1) {
			t.Fatalf("projection(1,3) wrong at %03b", b)
		}
	}
}

func TestPermutationsCountAndUniqueness(t *testing.T) {
	for k, want := range map[int]int{1: 1, 2: 2, 3: 6, 4: 24} {
		ps := permutations(k)
		if len(ps) != want {
			t.Errorf("permutations(%d) = %d, want %d", k, len(ps), want)
		}
		seen := map[string]bool{}
		for _, p := range ps {
			key := ""
			for _, v := range p {
				key += string(rune('0' + v))
			}
			if seen[key] {
				t.Errorf("duplicate permutation %v", p)
			}
			seen[key] = true
		}
	}
}

// TestV5TableMatchesEvalV5: the cached table must agree with direct
// five-valued evaluation on every cell and input combination.
func TestV5TableMatchesEvalV5(t *testing.T) {
	vals := []logic.V5{logic.X, logic.Zero, logic.One, logic.D, logic.DBar}
	for _, c := range lib.Cells {
		tab := c.TT.BuildV5Table()
		k := c.NumInputs()
		size := 1
		for i := 0; i < k; i++ {
			size *= 5
		}
		in := make([]logic.V5, k)
		for code := 0; code < size; code++ {
			cc := code
			for i := 0; i < k; i++ {
				in[i] = vals[cc%5]
				cc /= 5
			}
			if tab.Eval(in) != c.TT.EvalV5(in) {
				t.Fatalf("%s: table disagrees with EvalV5 at %v", c.Name, in)
			}
		}
	}
}
