// Package synth implements the logic-resynthesis substrate: an
// and-inverter graph (AIG) with structural hashing and constant folding,
// and a cut-based technology mapper that can be restricted to a subset of
// the standard-cell library — the Synthesize() operation of the paper,
// which resynthesizes a subcircuit "without using cell_0 ... cell_i".
package synth

import (
	"fmt"

	"dfmresyn/internal/logic"
)

// Lit is an AIG literal: node index times two, plus one when complemented.
type Lit uint32

// The constant-false node is node 0; its literals are the two constants.
const (
	ConstFalse Lit = 0
	ConstTrue  Lit = 1
)

// MkLit builds a literal from a node index and a complement flag.
func MkLit(node int, inv bool) Lit {
	l := Lit(node << 1)
	if inv {
		l |= 1
	}
	return l
}

// Node returns the literal's node index.
func (l Lit) Node() int { return int(l >> 1) }

// Inv reports whether the literal is complemented.
func (l Lit) Inv() bool { return l&1 == 1 }

// Not returns the complemented literal.
func (l Lit) Not() Lit { return l ^ 1 }

// IsConst reports whether the literal is one of the constants.
func (l Lit) IsConst() bool { return l.Node() == 0 }

// nodeKind discriminates AIG node types.
type nodeKind uint8

const (
	kindConst nodeKind = iota
	kindPI
	kindAnd
)

type node struct {
	kind   nodeKind
	f0, f1 Lit // fanins of AND nodes, f0 <= f1
}

// AIG is a structurally-hashed and-inverter graph.
type AIG struct {
	nodes []node
	nPI   int
	hash  map[[2]Lit]int
}

// NewAIG creates an AIG with the given number of primary inputs. PI i is
// node i+1.
func NewAIG(numPI int) *AIG {
	a := &AIG{nPI: numPI, hash: make(map[[2]Lit]int)}
	a.nodes = append(a.nodes, node{kind: kindConst})
	for i := 0; i < numPI; i++ {
		a.nodes = append(a.nodes, node{kind: kindPI})
	}
	return a
}

// NumPI returns the number of primary inputs.
func (a *AIG) NumPI() int { return a.nPI }

// Len returns the number of nodes including the constant and the PIs.
func (a *AIG) Len() int { return len(a.nodes) }

// PI returns the positive literal of primary input i.
func (a *AIG) PI(i int) Lit {
	if i < 0 || i >= a.nPI {
		panic(fmt.Sprintf("synth: PI %d out of range", i))
	}
	return MkLit(i+1, false)
}

// IsAnd reports whether node n is an AND node, returning its fanins.
func (a *AIG) IsAnd(n int) (f0, f1 Lit, ok bool) {
	if n < 0 || n >= len(a.nodes) || a.nodes[n].kind != kindAnd {
		return 0, 0, false
	}
	return a.nodes[n].f0, a.nodes[n].f1, true
}

// IsPI reports whether node n is a primary input.
func (a *AIG) IsPI(n int) bool {
	return n >= 1 && n <= a.nPI
}

// And returns the literal for the conjunction of x and y, applying constant
// folding, trivial simplifications and structural hashing.
func (a *AIG) And(x, y Lit) Lit {
	// Normalize order.
	if x > y {
		x, y = y, x
	}
	switch {
	case x == ConstFalse:
		return ConstFalse
	case x == ConstTrue:
		return y
	case x == y:
		return x
	case x == y.Not():
		return ConstFalse
	}
	key := [2]Lit{x, y}
	if n, ok := a.hash[key]; ok {
		return MkLit(n, false)
	}
	a.nodes = append(a.nodes, node{kind: kindAnd, f0: x, f1: y})
	n := len(a.nodes) - 1
	a.hash[key] = n
	return MkLit(n, false)
}

// Or returns the literal for the disjunction.
func (a *AIG) Or(x, y Lit) Lit { return a.And(x.Not(), y.Not()).Not() }

// Xor returns the literal for the exclusive-or.
func (a *AIG) Xor(x, y Lit) Lit {
	return a.Or(a.And(x, y.Not()), a.And(x.Not(), y))
}

// Mux returns s ? t : e.
func (a *AIG) Mux(s, t, e Lit) Lit {
	return a.Or(a.And(s, t), a.And(s.Not(), e))
}

// FromTT builds the function given by a truth table over the given input
// literals using Shannon decomposition (with structural hashing providing
// sharing and constant folding).
func (a *AIG) FromTT(tt logic.TT, ins []Lit) Lit {
	if len(ins) != tt.Inputs {
		panic("synth: FromTT input arity mismatch")
	}
	return a.fromTTRec(tt, ins, tt.Inputs-1)
}

func (a *AIG) fromTTRec(tt logic.TT, ins []Lit, v int) Lit {
	if c, ok := tt.IsConst(); ok {
		if c == 1 {
			return ConstTrue
		}
		return ConstFalse
	}
	// Cofactor on variable v (the highest remaining).
	neg, pos := cofactors(tt, v)
	f0 := a.fromTTRec(neg, ins, v-1)
	f1 := a.fromTTRec(pos, ins, v-1)
	if f0 == f1 {
		return f0
	}
	return a.Mux(ins[v], f1, f0)
}

// cofactors splits tt on variable v, returning tables over the same input
// count (variable v becomes don't-care).
func cofactors(tt logic.TT, v int) (neg, pos logic.TT) {
	n := uint(1) << uint(tt.Inputs)
	var nb, pb uint64
	for j := uint(0); j < n; j++ {
		bit := uint64(tt.Bits >> j & 1)
		if j>>uint(v)&1 == 1 {
			pb |= bit << j
			pb |= bit << (j ^ 1<<uint(v))
		} else {
			nb |= bit << j
			nb |= bit << (j | 1<<uint(v))
		}
	}
	return logic.TT{Inputs: tt.Inputs, Bits: nb}, logic.TT{Inputs: tt.Inputs, Bits: pb}
}

// Eval evaluates a literal on a full PI assignment (bit i of assignment is
// PI i).
func (a *AIG) Eval(l Lit, assignment uint) uint8 {
	vals := make([]uint8, len(a.nodes))
	for n := 1; n <= a.nPI; n++ {
		vals[n] = uint8(assignment >> uint(n-1) & 1)
	}
	for n := a.nPI + 1; n < len(a.nodes); n++ {
		nd := &a.nodes[n]
		if nd.kind != kindAnd {
			continue
		}
		v0 := vals[nd.f0.Node()] ^ b2u(nd.f0.Inv())
		v1 := vals[nd.f1.Node()] ^ b2u(nd.f1.Inv())
		vals[n] = v0 & v1
	}
	return vals[l.Node()] ^ b2u(l.Inv())
}

func b2u(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}

// ConeSize returns the number of AND nodes in the transitive fanin cone of
// the literals.
func (a *AIG) ConeSize(roots []Lit) int {
	seen := make([]bool, len(a.nodes))
	count := 0
	var visit func(n int)
	visit = func(n int) {
		if seen[n] {
			return
		}
		seen[n] = true
		if f0, f1, ok := a.IsAnd(n); ok {
			count++
			visit(f0.Node())
			visit(f1.Node())
		}
	}
	for _, r := range roots {
		visit(r.Node())
	}
	return count
}

// Levels returns the AND-depth of each node.
func (a *AIG) Levels() []int {
	lv := make([]int, len(a.nodes))
	for n := a.nPI + 1; n < len(a.nodes); n++ {
		if f0, f1, ok := a.IsAnd(n); ok {
			l0, l1 := lv[f0.Node()], lv[f1.Node()]
			if l1 > l0 {
				l0 = l1
			}
			lv[n] = l0 + 1
		}
	}
	return lv
}
