package synth

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"dfmresyn/internal/library"
	"dfmresyn/internal/logic"
	"dfmresyn/internal/netlist"
	"dfmresyn/internal/sim"
)

var lib = library.OSU018Like()

func TestAIGConstantFolding(t *testing.T) {
	a := NewAIG(2)
	x, y := a.PI(0), a.PI(1)
	if a.And(ConstFalse, x) != ConstFalse {
		t.Error("0 AND x must fold to 0")
	}
	if a.And(ConstTrue, x) != x {
		t.Error("1 AND x must fold to x")
	}
	if a.And(x, x) != x {
		t.Error("x AND x must fold to x")
	}
	if a.And(x, x.Not()) != ConstFalse {
		t.Error("x AND ~x must fold to 0")
	}
	n1 := a.And(x, y)
	n2 := a.And(y, x)
	if n1 != n2 {
		t.Error("structural hashing must merge commuted ANDs")
	}
}

func TestAIGEvalGates(t *testing.T) {
	a := NewAIG(2)
	x, y := a.PI(0), a.PI(1)
	and := a.And(x, y)
	or := a.Or(x, y)
	xor := a.Xor(x, y)
	for asg := uint(0); asg < 4; asg++ {
		bx := uint8(asg & 1)
		by := uint8(asg >> 1 & 1)
		if got := a.Eval(and, asg); got != bx&by {
			t.Errorf("AND(%d,%d) = %d", bx, by, got)
		}
		if got := a.Eval(or, asg); got != bx|by {
			t.Errorf("OR(%d,%d) = %d", bx, by, got)
		}
		if got := a.Eval(xor, asg); got != bx^by {
			t.Errorf("XOR(%d,%d) = %d", bx, by, got)
		}
	}
}

func TestAIGMux(t *testing.T) {
	a := NewAIG(3)
	s, d1, d0 := a.PI(2), a.PI(1), a.PI(0)
	m := a.Mux(s, d1, d0)
	for asg := uint(0); asg < 8; asg++ {
		want := uint8(asg & 1)
		if asg>>2&1 == 1 {
			want = uint8(asg >> 1 & 1)
		}
		if got := a.Eval(m, asg); got != want {
			t.Errorf("mux(%03b) = %d, want %d", asg, got, want)
		}
	}
}

// TestFromTTProperty: FromTT must reproduce arbitrary truth tables exactly.
func TestFromTTProperty(t *testing.T) {
	f := func(bits uint16, n8 uint8) bool {
		n := int(n8%4) + 1
		mask := uint64(1)<<(1<<uint(n)) - 1
		tt := logic.TT{Inputs: n, Bits: uint64(bits) & mask}
		a := NewAIG(n)
		ins := make([]Lit, n)
		for i := range ins {
			ins[i] = a.PI(i)
		}
		l := a.FromTT(tt, ins)
		for asg := uint(0); asg < 1<<uint(n); asg++ {
			if a.Eval(l, asg) != tt.Eval(asg) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMatchTableHasIdentityMatches(t *testing.T) {
	mt := buildMatchTable(lib)
	for _, cell := range lib.Cells {
		k := cell.NumInputs()
		ms := mt.lookup(k, cell.TT.Bits)
		found := false
		for _, m := range ms {
			if m.cell == cell {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: no identity match for its own function", cell.Name)
		}
	}
}

func TestMatchesReproduceFunction(t *testing.T) {
	mt := buildMatchTable(lib)
	// For every table entry, applying the match must reproduce the key.
	for k := 1; k <= 4; k++ {
		checked := 0
		for bits, ms := range mt[k] {
			for _, m := range ms {
				for b := uint(0); b < 1<<uint(k); b++ {
					var cellAsg uint
					for i := 0; i < m.cell.NumInputs(); i++ {
						v := uint8(b>>uint(m.perm[i])&1) ^ (m.leafNeg >> uint(i) & 1)
						cellAsg |= uint(v) << uint(i)
					}
					want := uint8(bits >> b & 1)
					if m.cell.Eval(cellAsg) != want {
						t.Fatalf("match %s does not reproduce function %x at %b",
							m.cell.Name, bits, b)
					}
				}
			}
			checked++
			if checked > 50 {
				break // spot-check per arity
			}
		}
	}
}

func allCells(*library.Cell) bool { return true }

// randomCircuit builds a random circuit over few PIs for equivalence tests.
func randomCircuit(t *testing.T, seed int64, gates, pis int) *netlist.Circuit {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	names := []string{"NAND2X1", "NOR3X1", "XOR2X1", "INVX1", "AND2X2", "AOI22X1", "MUX2X1", "OAI21X1"}
	c := netlist.New("r", lib)
	var nets []*netlist.Net
	for i := 0; i < pis; i++ {
		nets = append(nets, c.AddPI(string(rune('a'+i))))
	}
	for i := 0; i < gates; i++ {
		cell := lib.ByName(names[rng.Intn(len(names))])
		fanin := make([]*netlist.Net, cell.NumInputs())
		for j := range fanin {
			fanin[j] = nets[rng.Intn(len(nets))]
		}
		nets = append(nets, c.AddGate("", cell, fanin...))
	}
	for i := 0; i < 3; i++ {
		c.MarkPO(nets[len(nets)-1-i])
	}
	return c
}

// equivalent exhaustively compares two circuits over their PIs (up to 2^16
// patterns) on the PO values, matched by PO order.
func equivalent(t *testing.T, c1, c2 *netlist.Circuit) bool {
	t.Helper()
	if len(c1.PIs) != len(c2.PIs) || len(c1.POs) != len(c2.POs) {
		t.Fatalf("interface mismatch: %d/%d PIs, %d/%d POs",
			len(c1.PIs), len(c2.PIs), len(c1.POs), len(c2.POs))
	}
	s1, s2 := sim.New(c1), sim.New(c2)
	n := len(c1.PIs)
	for base := uint(0); base < 1<<uint(n); base += 64 {
		words1 := make([]logic.Word, n)
		for p := uint(0); p < 64; p++ {
			asg := base + p
			for i := 0; i < n; i++ {
				if asg>>uint(i)&1 == 1 {
					words1[i] |= 1 << p
				}
			}
		}
		v1 := s1.Run(words1)
		v2 := s2.Run(words1)
		for i := range c1.POs {
			if v1[c1.POs[i].ID] != v2[c2.POs[i].ID] {
				return false
			}
		}
	}
	return true
}

func TestResynthesisPreservesFunction(t *testing.T) {
	mapper := NewMapper(lib)
	for seed := int64(1); seed <= 6; seed++ {
		c := randomCircuit(t, seed, 25, 6)
		r := netlist.ExtractRegion(c.Gates) // whole circuit
		for _, mode := range []Mode{Area, Delay} {
			rs, err := SynthesizeRegion(c, r, mapper, allCells, mode, nil, "rs_")
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			nc, err := rs.Rebuild(c)
			if err != nil {
				t.Fatalf("seed %d rebuild: %v", seed, err)
			}
			if err := nc.Check(); err != nil {
				t.Fatalf("seed %d check: %v", seed, err)
			}
			if !equivalent(t, c, nc) {
				t.Fatalf("seed %d mode %d: resynthesis changed the function", seed, mode)
			}
		}
	}
}

func TestResynthesisPartialRegion(t *testing.T) {
	mapper := NewMapper(lib)
	c := randomCircuit(t, 11, 30, 6)
	// Region: a middle slice of gates.
	r := netlist.ExtractRegion(c.Gates[5:15])
	rs, err := SynthesizeRegion(c, r, mapper, allCells, Area, nil, "rs_")
	if err != nil {
		t.Fatal(err)
	}
	nc, err := rs.Rebuild(c)
	if err != nil {
		t.Fatal(err)
	}
	if err := nc.Check(); err != nil {
		t.Fatal(err)
	}
	if !equivalent(t, c, nc) {
		t.Fatal("partial-region resynthesis changed the function")
	}
}

func TestRestrictedSubsetStillEquivalent(t *testing.T) {
	mapper := NewMapper(lib)
	// Only NAND2 and INV: universal, so mapping must succeed.
	allowed := func(cell *library.Cell) bool {
		return cell.Name == "NAND2X1" || cell.Name == "INVX1"
	}
	c := randomCircuit(t, 21, 20, 5)
	r := netlist.ExtractRegion(c.Gates)
	rs, err := SynthesizeRegion(c, r, mapper, allowed, Area, nil, "rs_")
	if err != nil {
		t.Fatal(err)
	}
	nc, err := rs.Rebuild(c)
	if err != nil {
		t.Fatal(err)
	}
	if !equivalent(t, c, nc) {
		t.Fatal("restricted-subset resynthesis changed the function")
	}
	for _, g := range nc.Gates {
		if g.Type.Name != "NAND2X1" && g.Type.Name != "INVX1" {
			t.Fatalf("disallowed cell %s used", g.Type.Name)
		}
	}
}

func TestInsufficientCellsDetected(t *testing.T) {
	mapper := NewMapper(lib)
	// NOR2 alone cannot invert in our matcher (no tied-input matching),
	// so a circuit needing inversion must be rejected.
	allowed := func(cell *library.Cell) bool { return cell.Name == "NOR2X1" }
	c := netlist.New("inv", lib)
	a := c.AddPI("a")
	y := c.AddGate("u1", lib.ByName("INVX1"), a)
	c.MarkPO(y)
	r := netlist.ExtractRegion(c.Gates)
	_, err := SynthesizeRegion(c, r, mapper, allowed, Area, nil, "rs_")
	if !errors.Is(err, ErrInsufficientCells) {
		t.Fatalf("expected ErrInsufficientCells, got %v", err)
	}
}

func TestFrozenGatesPreserved(t *testing.T) {
	mapper := NewMapper(lib)
	c := randomCircuit(t, 31, 20, 5)
	frozenGate := c.Gates[10]
	r := netlist.ExtractRegion(c.Gates)
	rs, err := SynthesizeRegion(c, r, mapper, allCells, Area,
		func(g *netlist.Gate) bool { return g == frozenGate }, "rs_")
	if err != nil {
		t.Fatal(err)
	}
	nc, err := rs.Rebuild(c)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, g := range nc.Gates {
		if g.Name == frozenGate.Name && g.Type == frozenGate.Type {
			found = true
		}
	}
	if !found {
		t.Fatal("frozen gate vanished during resynthesis")
	}
	if !equivalent(t, c, nc) {
		t.Fatal("frozen-gate resynthesis changed the function")
	}
}

func TestAreaModeBeatsNaiveOnRedundantLogic(t *testing.T) {
	mapper := NewMapper(lib)
	// y = AND(a,b) OR AND(a,b): redundant duplicate logic that strash
	// should collapse; the mapped result must be smaller than the
	// original 3 gates.
	c := netlist.New("dup", lib)
	a := c.AddPI("a")
	b := c.AddPI("b")
	t1 := c.AddGate("u1", lib.ByName("AND2X2"), a, b)
	t2 := c.AddGate("u2", lib.ByName("AND2X2"), a, b)
	y := c.AddGate("u3", lib.ByName("OR2X2"), t1, t2)
	c.MarkPO(y)
	r := netlist.ExtractRegion(c.Gates)
	rs, err := SynthesizeRegion(c, r, mapper, allCells, Area, nil, "rs_")
	if err != nil {
		t.Fatal(err)
	}
	nc, err := rs.Rebuild(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(nc.Gates) >= 3 {
		t.Errorf("mapped gates = %d, want < 3 (strash collapses duplicates)", len(nc.Gates))
	}
	if !equivalent(t, c, nc) {
		t.Fatal("function changed")
	}
}

func TestConeSizeAndLevels(t *testing.T) {
	a := NewAIG(3)
	x, y, z := a.PI(0), a.PI(1), a.PI(2)
	n1 := a.And(x, y)
	n2 := a.And(n1, z)
	if got := a.ConeSize([]Lit{n2}); got != 2 {
		t.Errorf("ConeSize = %d, want 2", got)
	}
	lv := a.Levels()
	if lv[n2.Node()] != 2 {
		t.Errorf("level of n2 = %d, want 2", lv[n2.Node()])
	}
}
