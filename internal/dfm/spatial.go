package dfm

import (
	"slices"

	"dfmresyn/internal/geom"
	"dfmresyn/internal/route"
)

// ScanStats reports how much geometry a DFM build examined versus what the
// naive scans would have: the observable half of the spatial-index
// contract (the other half — byte-identical output — is enforced by the
// differential harness). The flow publishes these as obs counters and the
// benchflow report derives its pair-reduction column from them.
type ScanStats struct {
	// CellsVisited counts the occupancy cells the bridge scan touched;
	// CellsNaive is the full-die walk it replaced (2 layers x die area).
	CellsVisited, CellsNaive int64
	// BridgePairs counts the candidate net pairs the bridge scan examined
	// (at most two per occupied cell: same-cell crowding and the
	// right-neighbor pitch check); BridgePairsNaive is the all-pairs
	// segment-proximity count a windowless checker would examine.
	BridgePairs, BridgePairsNaive int64
	// DensityCellReads counts per-cell occupancy reads of the density
	// phase; DensityCellReadsNaive is the per-guideline full-window
	// rescan it replaced (density guidelines x layers x die area).
	DensityCellReads, DensityCellReadsNaive int64
}

// PairReduction returns BridgePairsNaive / BridgePairs (0 when either side
// is unknown): how many candidate pairs the grid index saves the bridge
// scan over a naive all-pairs check.
func (s ScanStats) PairReduction() float64 {
	if s.BridgePairs <= 0 || s.BridgePairsNaive <= 0 {
		return 0
	}
	return float64(s.BridgePairsNaive) / float64(s.BridgePairs)
}

// CellReduction returns CellsNaive / CellsVisited (0 when unknown).
func (s ScanStats) CellReduction() float64 {
	if s.CellsVisited <= 0 || s.CellsNaive <= 0 {
		return 0
	}
	return float64(s.CellsNaive) / float64(s.CellsVisited)
}

// winAcc is the shared density-window accumulator: per-net cell counts
// plus the list of touched net IDs, reused across every window and
// guideline evaluation of a build instead of allocating a fresh map per
// window per guideline (the allocs/op win BenchmarkBuildFaults locks in).
type winAcc struct {
	counts  []int32
	touched []int32
}

func newWinAcc(nets int) *winAcc {
	return &winAcc{counts: make([]int32, nets)}
}

func (a *winAcc) add(id int32) {
	if a.counts[id] == 0 {
		a.touched = append(a.touched, id)
	}
	a.counts[id]++
}

func (a *winAcc) reset() {
	for _, id := range a.touched {
		a.counts[id] = 0
	}
	a.touched = a.touched[:0]
}

// dominant picks the net with the most cells in the window, smallest ID on
// ties — the same verdict the original per-window count map produced
// (sorted IDs ascending, strictly-greater comparison). -1 when empty.
func (a *winAcc) dominant() int {
	if len(a.touched) == 0 {
		return -1
	}
	slices.Sort(a.touched)
	best, bestN := -1, int32(0)
	for _, id := range a.touched {
		if a.counts[id] > bestN {
			best, bestN = int(id), a.counts[id]
		}
	}
	return best
}

// densityIndex holds the per-window aggregates of one (layer, window-size)
// combination: eager occupied-cell counts (one pass over the layer's
// occupied cells serves every density guideline of that window size), and
// lazily-computed dominant nets — most windows never trip a density
// guideline, so dominance is only resolved (and cached) for the ones that
// do. domUnknown marks a window not yet resolved; -1 a resolved empty one.
type densityIndex struct {
	nx   int
	used []int32
	dom  []int32
}

const domUnknown = -2

// buildDensityIndex counts the occupied cells of one layer into the window
// grid of the given size. Windows tile the die (stride == size), so each
// cell lands in exactly one window.
func buildDensityIndex(lay *route.Layout, li, wnd int) (*densityIndex, int64) {
	die := lay.P.Die
	nx := (die.W() + wnd - 1) / wnd
	ny := (die.H() + wnd - 1) / wnd
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}
	di := &densityIndex{nx: nx, used: make([]int32, nx*ny), dom: make([]int32, nx*ny)}
	for i := range di.dom {
		di.dom[i] = domUnknown
	}
	cells := lay.OccCells(li)
	for _, p := range cells {
		di.used[((p.Y-die.Y0)/wnd)*nx+(p.X-die.X0)/wnd]++
	}
	return di, int64(len(cells))
}

// densityIdx returns the cached index for (layer, window size), building
// it on first use.
func (b *builder) densityIdx(li, wnd int) *densityIndex {
	if b.dens[li] == nil {
		b.dens[li] = map[int]*densityIndex{}
	}
	if di, ok := b.dens[li][wnd]; ok {
		return di
	}
	di, reads := buildDensityIndex(b.lay, li, wnd)
	b.stats.DensityCellReads += reads
	b.dens[li][wnd] = di
	return di
}

// domAt resolves (and caches) the dominant net of one window through the
// shared accumulator — the same per-cell occurrence counts and smallest-
// ID-on-ties verdict the naive window scan produces.
func (b *builder) domAt(di *densityIndex, li, wi int, w geom.Rect) int {
	if di.dom[wi] != domUnknown {
		return int(di.dom[wi])
	}
	b.acc.reset()
	b.stats.DensityCellReads += int64(w.Area())
	for y := w.Y0; y < w.Y1; y++ {
		for x := w.X0; x < w.X1; x++ {
			for _, id := range b.lay.Occ[li][y][x] {
				b.acc.add(id)
			}
		}
	}
	dom := b.acc.dominant()
	di.dom[wi] = int32(dom)
	return dom
}

// densitiesIndexed is the grid-mode full-build density phase: the same
// deck-order window walk as the naive phase, but each window reads its
// precomputed occupancy count, and only windows whose guideline fires
// resolve a dominant net. Emission order and content are byte-identical
// to the naive walk.
func (b *builder) densitiesIndexed() {
	die := b.lay.P.Die
	for gi, g := range b.gs {
		if g.CheckDensity == nil {
			continue
		}
		for li := 0; li < 2; li++ {
			layer := route.Layer(li) + route.M2
			di := b.densityIdx(li, g.Window)
			geom.Windows(die, g.Window, g.Window, func(w geom.Rect) {
				wi := ((w.Y0-die.Y0)/g.Window)*di.nx + (w.X0-die.X0)/g.Window
				d := float64(di.used[wi]) / float64(w.Area())
				if !g.CheckDensity(layer, d) {
					return
				}
				dom := b.domAt(di, li, wi, w)
				if dom < 0 {
					return
				}
				b.emitDensity(gi, li, w, dom)
			})
		}
	}
}

// bridgesIndexed is the grid-mode bridge phase: instead of walking every
// die cell, it walks the merged union of (a) the layout's occupied cells
// and (b) the cells carrying previous-build events, both already in scan
// order (layer, row, column). Cells in neither set contribute nothing in
// the naive walk — an empty cell can neither trigger a spacing guideline
// nor replay an event — so the merged walk emits the exact same event
// stream. prev == nil (a full build) degenerates to the occupied-cell
// walk alone.
func (b *builder) bridgesIndexed(prev []BridgeEvent, dirty func(li, x, y int) bool, remap []int32) {
	pi := 0
	atCell := func(li, x, y int) bool {
		e := &prev[pi]
		return int(e.Layer) == li && int(e.X) == x && int(e.Y) == y
	}
	for li := 0; li < 2; li++ {
		layer := route.Layer(li) + route.M2
		cells := b.lay.OccCells(li)
		ci := 0
		for {
			haveC := ci < len(cells)
			haveE := prev != nil && pi < len(prev) && int(prev[pi].Layer) == li
			if !haveC && !haveE {
				break
			}
			var x, y int
			switch {
			case haveC && haveE:
				cp := cells[ci]
				ex, ey := int(prev[pi].X), int(prev[pi].Y)
				if cp.Y < ey || (cp.Y == ey && cp.X <= ex) {
					x, y = cp.X, cp.Y
				} else {
					x, y = ex, ey
				}
			case haveC:
				x, y = cells[ci].X, cells[ci].Y
			default:
				x, y = int(prev[pi].X), int(prev[pi].Y)
			}
			if haveC && cells[ci] == (geom.Pt{X: x, Y: y}) {
				ci++
			}
			b.stats.CellsVisited++
			if prev == nil || dirty(li, x, y) {
				if prev != nil {
					for pi < len(prev) && atCell(li, x, y) {
						pi++ // stale: superseded by the re-scan
					}
				}
				b.scanBridgeCell(li, layer, x, y, b.lay.Occ[li][y][x])
				continue
			}
			for pi < len(prev) && atCell(li, x, y) {
				e := &prev[pi]
				pi++
				a, bid := remapID(remap, e.A), remapID(remap, e.B)
				if a < 0 || bid < 0 {
					b.ok = false
					return
				}
				b.scan.Bridges = append(b.scan.Bridges, BridgeEvent{
					Layer: e.Layer, X: e.X, Y: e.Y, G: e.G, A: a, B: bid,
				})
				b.applyBridge(b.gs[e.G], int(a), int(bid))
			}
		}
	}
}

// finishStats fills in the naive-cost baselines after a build: what the
// replaced scans would have examined on this layout.
func (b *builder) finishStats() {
	die := b.lay.P.Die
	b.stats.CellsNaive = 2 * int64(die.Area())
	b.stats.BridgePairsNaive = route.SegPairsNaive(b.lay)
	densityGuidelines := int64(0)
	for _, g := range b.gs {
		if g.CheckDensity != nil {
			densityGuidelines++
		}
	}
	b.stats.DensityCellReadsNaive = densityGuidelines * 2 * int64(die.Area())
}
