package dfm

import (
	"sort"

	"dfmresyn/internal/fault"
	"dfmresyn/internal/geom"
	"dfmresyn/internal/netlist"
	"dfmresyn/internal/route"
)

// Report tallies guideline violations found while building the fault list.
type Report struct {
	PerGuideline map[string]int
	PerCategory  map[Category]int
}

func newReport() *Report {
	return &Report{PerGuideline: map[string]int{}, PerCategory: map[Category]int{}}
}

func (r *Report) hit(g *Guideline) {
	r.PerGuideline[g.ID]++
	r.PerCategory[g.Cat]++
}

// BuildFaults translates DFM guideline violations into the target fault set
// F for the placed-and-routed circuit: cell-aware internal faults from the
// library profile, and external stuck-at / transition / bridging faults
// from the routed layout. The result is deterministic for a given layout.
func BuildFaults(c *netlist.Circuit, lay *route.Layout, prof *LibraryProfile) (*fault.List, *Report) {
	l := &fault.List{}
	rep := newReport()
	gs := Guidelines()

	// ---- Internal faults: every instance introduces its type's defects.
	byID := map[string]*Guideline{}
	for _, g := range gs {
		byID[g.ID] = g
	}
	for _, g := range c.Gates {
		for i := range prof.PerCell[g.Type.Index] {
			cd := &prof.PerCell[g.Type.Index][i]
			l.Add(&fault.Fault{
				Model:     fault.CellAware,
				Internal:  true,
				Gate:      g,
				Defect:    cd.Defect,
				Behavior:  cd.Behavior,
				Guideline: cd.Guideline,
			})
			rep.hit(byID[cd.Guideline])
		}
	}

	// ---- External via opens -> transition faults on the net. An open
	// at a *pin* via (M1 stack) disconnects a single sink, so it becomes
	// a branch fault at that gate input; other vias break the stem.
	type netRule struct {
		net int
		gid string
	}
	type pinRule struct {
		net, gate, pin int
		gid            string
	}
	viaHits := map[netRule]bool{}
	pinHits := map[pinRule]bool{}
	for _, n := range c.Nets {
		r := &lay.Routes[n.ID]
		netLen := r.Length()
		for _, v := range r.Vias {
			for _, g := range gs {
				if g.CheckVia == nil || !g.CheckVia(v, netLen) {
					continue
				}
				rep.hit(g)
				// Pin vias at a sink location: branch faults.
				if v.From == route.M1 {
					if bg, bp, ok := sinkAt(lay, n, v.At); ok {
						key := pinRule{n.ID, bg.ID, bp, g.ID}
						if pinHits[key] {
							continue
						}
						pinHits[key] = true
						for val := uint8(0); val <= 1; val++ {
							l.Add(&fault.Fault{
								Model:      fault.Transition,
								Net:        n,
								Value:      val,
								BranchGate: bg,
								BranchPin:  bp,
								Guideline:  g.ID,
							})
						}
						continue
					}
				}
				key := netRule{n.ID, g.ID}
				if viaHits[key] {
					continue
				}
				viaHits[key] = true
				for val := uint8(0); val <= 1; val++ {
					l.Add(&fault.Fault{
						Model:     fault.Transition,
						Net:       n,
						Value:     val,
						Guideline: g.ID,
					})
				}
			}
		}
	}

	// ---- External metal spacing -> bridge faults between net pairs.
	type pairRule struct {
		a, b int
		gid  string
	}
	bridgeHits := map[pairRule]bool{}
	addBridge := func(g *Guideline, aID, bID int) {
		if aID == bID {
			return
		}
		if aID > bID {
			aID, bID = bID, aID
		}
		key := pairRule{aID, bID, g.ID}
		if bridgeHits[key] {
			return
		}
		bridgeHits[key] = true
		rep.hit(g)
		na, nb := c.Nets[aID], c.Nets[bID]
		l.Add(&fault.Fault{Model: fault.Bridge, Net: na, Other: nb, Guideline: g.ID})
		l.Add(&fault.Fault{Model: fault.Bridge, Net: nb, Other: na, Guideline: g.ID})
	}
	for li := 0; li < 2; li++ {
		layer := route.Layer(li) + route.M2
		for y := range lay.Occ[li] {
			rowCells := lay.Occ[li][y]
			for x := range rowCells {
				occ := rowCells[x]
				// Same-cell crowding.
				if len(occ) >= 2 {
					a, b, ok := firstDistinct(occ)
					if ok {
						for _, g := range gs {
							if g.CheckSpacing != nil && g.CheckSpacing(layer, len(occ), false) {
								addBridge(g, a, b)
							}
						}
					}
				}
				// Adjacent-cell (minimum pitch) neighbours.
				if len(occ) >= 1 {
					nb := neighborOcc(lay, li, x, y)
					if nb >= 0 && nb != int(occ[0]) {
						for _, g := range gs {
							if g.CheckSpacing != nil && g.CheckSpacing(layer, len(occ), true) {
								addBridge(g, int(occ[0]), nb)
							}
						}
					}
				}
			}
		}
	}

	// ---- External long segments -> transition faults (opens).
	segHits := map[netRule]bool{}
	for _, n := range c.Nets {
		r := &lay.Routes[n.ID]
		for _, s := range r.Segs {
			for _, g := range gs {
				if g.CheckSegment == nil || !g.CheckSegment(s) {
					continue
				}
				key := netRule{n.ID, g.ID}
				if segHits[key] {
					continue
				}
				segHits[key] = true
				rep.hit(g)
				for val := uint8(0); val <= 1; val++ {
					l.Add(&fault.Fault{
						Model:     fault.Transition,
						Net:       n,
						Value:     val,
						Guideline: g.ID,
					})
				}
			}
		}
	}

	// ---- Density windows -> stuck-at faults on the dominant net.
	densHits := map[netRule]bool{}
	for _, g := range gs {
		if g.CheckDensity == nil {
			continue
		}
		for li := 0; li < 2; li++ {
			layer := route.Layer(li) + route.M2
			geom.Windows(lay.P.Die, g.Window, g.Window, func(w geom.Rect) {
				used := 0
				counts := map[int32]int{}
				for y := w.Y0; y < w.Y1; y++ {
					for x := w.X0; x < w.X1; x++ {
						occ := lay.Occ[li][y][x]
						if len(occ) > 0 {
							used++
						}
						for _, id := range occ {
							counts[id]++
						}
					}
				}
				d := float64(used) / float64(w.Area())
				if !g.CheckDensity(layer, d) {
					return
				}
				dom := dominantNet(counts)
				if dom < 0 {
					return
				}
				key := netRule{dom, g.ID}
				if densHits[key] {
					return
				}
				densHits[key] = true
				rep.hit(g)
				n := c.Nets[dom]
				for val := uint8(0); val <= 1; val++ {
					l.Add(&fault.Fault{
						Model:     fault.StuckAt,
						Net:       n,
						Value:     val,
						Guideline: g.ID,
					})
				}
			})
		}
	}

	return l, rep
}

// sinkAt finds the sink pin of net n placed at point pt (the pin the via
// serves), if any.
func sinkAt(lay *route.Layout, n *netlist.Net, pt geom.Pt) (*netlist.Gate, int, bool) {
	for _, p := range n.Fanout {
		if lay.P.Loc[p.Gate.ID] == pt {
			return p.Gate, p.Pin, true
		}
	}
	return nil, 0, false
}

// firstDistinct returns the first two distinct net IDs in the occupancy
// list.
func firstDistinct(occ []int32) (int, int, bool) {
	for i := 1; i < len(occ); i++ {
		if occ[i] != occ[0] {
			return int(occ[0]), int(occ[i]), true
		}
	}
	return 0, 0, false
}

// neighborOcc returns the first occupant of the cell to the right (same
// layer), or -1.
func neighborOcc(lay *route.Layout, li, x, y int) int {
	if x+1 >= len(lay.Occ[li][y]) {
		return -1
	}
	occ := lay.Occ[li][y][x+1]
	if len(occ) == 0 {
		return -1
	}
	return int(occ[0])
}

// dominantNet picks the net with the most cells in the window
// (deterministic tie-break by ID).
func dominantNet(counts map[int32]int) int {
	ids := make([]int32, 0, len(counts))
	for id := range counts {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	best, bestN := -1, 0
	for _, id := range ids {
		if counts[id] > bestN {
			best, bestN = int(id), counts[id]
		}
	}
	return best
}
