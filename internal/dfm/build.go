package dfm

import (
	"dfmresyn/internal/fault"
	"dfmresyn/internal/geom"
	"dfmresyn/internal/netlist"
	"dfmresyn/internal/route"
)

// Report tallies guideline violations found while building the fault list.
type Report struct {
	PerGuideline map[string]int
	PerCategory  map[Category]int
}

func newReport() *Report {
	return &Report{PerGuideline: map[string]int{}, PerCategory: map[Category]int{}}
}

func (r *Report) hit(g *Guideline) {
	r.PerGuideline[g.ID]++
	r.PerCategory[g.Cat]++
}

// BuildFaults translates DFM guideline violations into the target fault set
// F for the placed-and-routed circuit: cell-aware internal faults from the
// library profile, and external stuck-at / transition / bridging faults
// from the routed layout. The result is deterministic for a given layout.
func BuildFaults(c *netlist.Circuit, lay *route.Layout, prof *LibraryProfile) (*fault.List, *Report) {
	l, rep, _ := BuildFaultsScan(c, lay, prof)
	return l, rep
}

// BuildFaultsScan is BuildFaults plus the geometry-scan log: the raw
// pre-deduplication bridge and density triggers in scan order, which
// BuildFaultsIncremental replays outside a dirty region instead of
// re-scanning the whole die.
func BuildFaultsScan(c *netlist.Circuit, lay *route.Layout, prof *LibraryProfile) (*fault.List, *Report, *Scan) {
	l, rep, scan, _ := BuildFaultsScanStats(c, lay, prof, geom.SpatialGrid)
	return l, rep, scan
}

// BuildFaultsScanStats is BuildFaultsScan with an explicit spatial-index
// mode and scan-cost accounting. SpatialGrid drives the bridge phase off
// the layout's occupied-cell set and the density phase off per-window
// aggregate indexes; SpatialOff keeps the original full-die walks. The
// fault list, report and scan log are byte-identical across modes — only
// ScanStats (and wall time) differ.
func BuildFaultsScanStats(c *netlist.Circuit, lay *route.Layout, prof *LibraryProfile, mode geom.SpatialMode) (*fault.List, *Report, *Scan, ScanStats) {
	b := newBuilder(c, lay, mode)
	b.internal(prof)
	b.vias()
	if mode == geom.SpatialGrid {
		b.bridgesIndexed(nil, nil, nil)
	} else {
		b.bridges(nil, nil, nil)
	}
	b.segments()
	if mode == geom.SpatialGrid {
		b.densitiesIndexed()
	} else {
		b.densities(nil, nil, nil)
	}
	b.finishStats()
	return b.list, b.rep, b.scan, b.stats
}

// netRule / pinRule / pairRule key the per-phase deduplication maps. The
// maps are rebuilt fresh on every (full or incremental) build, so splicing
// replayed triggers with re-scanned ones cannot double-report a violation.
type netRule struct {
	net int
	gid string
}
type pinRule struct {
	net, gate, pin int
	gid            string
}
type pairRule struct {
	a, b int
	gid  string
}

// builder assembles the fault list and report from per-phase violation
// triggers, logging the grid-scan phases into a Scan for later replay.
type builder struct {
	c    *netlist.Circuit
	lay  *route.Layout
	gs   []*Guideline
	list *fault.List
	rep  *Report
	scan *Scan

	bridgeHits map[pairRule]bool
	densHits   map[netRule]bool

	// mode selects the spatial-index backing; stats tallies scan costs.
	mode  geom.SpatialMode
	stats ScanStats
	// acc is the density-window accumulator shared across every window
	// and guideline evaluation of this build; dens caches per-layer
	// window-aggregate indexes keyed by window size.
	acc  *winAcc
	dens [2]map[int]*densityIndex

	// ok drops to false when an incremental replay hits a trigger it
	// cannot remap (the caller then falls back to a full build).
	ok bool
}

func newBuilder(c *netlist.Circuit, lay *route.Layout, mode geom.SpatialMode) *builder {
	return &builder{
		c:          c,
		lay:        lay,
		gs:         Guidelines(),
		list:       &fault.List{},
		rep:        newReport(),
		scan:       &Scan{},
		bridgeHits: map[pairRule]bool{},
		densHits:   map[netRule]bool{},
		mode:       mode,
		acc:        newWinAcc(len(c.Nets)),
		ok:         true,
	}
}

// internal adds every instance's cell-aware defects (layout-independent).
func (b *builder) internal(prof *LibraryProfile) {
	byID := map[string]*Guideline{}
	for _, g := range b.gs {
		byID[g.ID] = g
	}
	for _, g := range b.c.Gates {
		for i := range prof.PerCell[g.Type.Index] {
			cd := &prof.PerCell[g.Type.Index][i]
			b.list.Add(&fault.Fault{
				Model:     fault.CellAware,
				Internal:  true,
				Gate:      g,
				Defect:    cd.Defect,
				Behavior:  cd.Behavior,
				Guideline: cd.Guideline,
			})
			b.rep.hit(byID[cd.Guideline])
		}
	}
}

// vias adds external via opens -> transition faults on the net. An open at
// a *pin* via (M1 stack) disconnects a single sink, so it becomes a branch
// fault at that gate input; other vias break the stem. Cheap (O(vias)), so
// both full and incremental builds recompute it from the current layout.
func (b *builder) vias() {
	viaHits := map[netRule]bool{}
	pinHits := map[pinRule]bool{}
	for _, n := range b.c.Nets {
		r := &b.lay.Routes[n.ID]
		netLen := r.Length()
		for _, v := range r.Vias {
			for _, g := range b.gs {
				if g.CheckVia == nil || !g.CheckVia(v, netLen) {
					continue
				}
				b.rep.hit(g)
				// Pin vias at a sink location: branch faults.
				if v.From == route.M1 {
					if bg, bp, ok := sinkAt(b.lay, n, v.At); ok {
						key := pinRule{n.ID, bg.ID, bp, g.ID}
						if pinHits[key] {
							continue
						}
						pinHits[key] = true
						for val := uint8(0); val <= 1; val++ {
							b.list.Add(&fault.Fault{
								Model:      fault.Transition,
								Net:        n,
								Value:      val,
								BranchGate: bg,
								BranchPin:  bp,
								Guideline:  g.ID,
							})
						}
						continue
					}
				}
				key := netRule{n.ID, g.ID}
				if viaHits[key] {
					continue
				}
				viaHits[key] = true
				for val := uint8(0); val <= 1; val++ {
					b.list.Add(&fault.Fault{
						Model:     fault.Transition,
						Net:       n,
						Value:     val,
						Guideline: g.ID,
					})
				}
			}
		}
	}
}

// applyBridge deduplicates one bridge trigger and adds its fault pair.
func (b *builder) applyBridge(g *Guideline, aID, bID int) {
	if aID == bID {
		return
	}
	if aID > bID {
		aID, bID = bID, aID
	}
	key := pairRule{aID, bID, g.ID}
	if b.bridgeHits[key] {
		return
	}
	b.bridgeHits[key] = true
	b.rep.hit(g)
	na, nb := b.c.Nets[aID], b.c.Nets[bID]
	b.list.Add(&fault.Fault{Model: fault.Bridge, Net: na, Other: nb, Guideline: g.ID})
	b.list.Add(&fault.Fault{Model: fault.Bridge, Net: nb, Other: na, Guideline: g.ID})
}

// emitBridge logs one raw bridge trigger and applies it.
func (b *builder) emitBridge(li, x, y, gi, aID, bID int) {
	b.scan.Bridges = append(b.scan.Bridges, BridgeEvent{
		Layer: uint8(li), X: int32(x), Y: int32(y),
		G: uint16(gi), A: int32(aID), B: int32(bID),
	})
	b.applyBridge(b.gs[gi], aID, bID)
}

// scanBridgeCell produces the raw bridge triggers of one grid cell from the
// current layout: same-cell crowding first, then the adjacent-cell minimum
// pitch, each over the guidelines in deck order.
func (b *builder) scanBridgeCell(li int, layer route.Layer, x, y int, occ []int32) {
	if len(occ) >= 2 {
		if a, bid, ok := firstDistinct(occ); ok {
			b.stats.BridgePairs++
			for gi, g := range b.gs {
				if g.CheckSpacing != nil && g.CheckSpacing(layer, len(occ), false) {
					b.emitBridge(li, x, y, gi, a, bid)
				}
			}
		}
	}
	if len(occ) >= 1 {
		if nb := neighborOcc(b.lay, li, x, y); nb >= 0 && nb != int(occ[0]) {
			b.stats.BridgePairs++
			for gi, g := range b.gs {
				if g.CheckSpacing != nil && g.CheckSpacing(layer, len(occ), true) {
					b.emitBridge(li, x, y, gi, int(occ[0]), nb)
				}
			}
		}
	}
}

// bridges walks the occupancy grid in scan order. In a full build (prev ==
// nil) every cell is scanned. In an incremental build, cells for which
// dirty() is false replay the previous build's triggers (with net IDs
// remapped) and dirty cells are re-scanned, their stale logged triggers
// skipped; the merge preserves exact scan order. Note the pitch check of
// cell (x,y) reads (x+1,y), so callers must treat a cell as dirty when its
// right neighbor is.
func (b *builder) bridges(prev []BridgeEvent, dirty func(li, x, y int) bool, remap []int32) {
	pi := 0
	atCell := func(li, x, y int) bool {
		e := &prev[pi]
		return int(e.Layer) == li && int(e.X) == x && int(e.Y) == y
	}
	for li := 0; li < 2; li++ {
		layer := route.Layer(li) + route.M2
		for y := range b.lay.Occ[li] {
			rowCells := b.lay.Occ[li][y]
			for x := range rowCells {
				b.stats.CellsVisited++
				if prev == nil || dirty(li, x, y) {
					if prev != nil {
						for pi < len(prev) && atCell(li, x, y) {
							pi++ // stale: superseded by the re-scan
						}
					}
					b.scanBridgeCell(li, layer, x, y, rowCells[x])
					continue
				}
				for pi < len(prev) && atCell(li, x, y) {
					e := &prev[pi]
					pi++
					a, bid := remapID(remap, e.A), remapID(remap, e.B)
					if a < 0 || bid < 0 {
						b.ok = false
						return
					}
					b.scan.Bridges = append(b.scan.Bridges, BridgeEvent{
						Layer: e.Layer, X: e.X, Y: e.Y, G: e.G, A: a, B: bid,
					})
					b.applyBridge(b.gs[e.G], int(a), int(bid))
				}
			}
		}
	}
}

// segments adds external long-segment opens -> transition faults. Like
// vias, cheap enough to recompute from the current layout on every build.
func (b *builder) segments() {
	segHits := map[netRule]bool{}
	for _, n := range b.c.Nets {
		r := &b.lay.Routes[n.ID]
		for _, s := range r.Segs {
			for _, g := range b.gs {
				if g.CheckSegment == nil || !g.CheckSegment(s) {
					continue
				}
				key := netRule{n.ID, g.ID}
				if segHits[key] {
					continue
				}
				segHits[key] = true
				b.rep.hit(g)
				for val := uint8(0); val <= 1; val++ {
					b.list.Add(&fault.Fault{
						Model:     fault.Transition,
						Net:       n,
						Value:     val,
						Guideline: g.ID,
					})
				}
			}
		}
	}
}

// applyDensity deduplicates one density trigger and adds its fault pair.
func (b *builder) applyDensity(g *Guideline, dom int) {
	key := netRule{dom, g.ID}
	if b.densHits[key] {
		return
	}
	b.densHits[key] = true
	b.rep.hit(g)
	n := b.c.Nets[dom]
	for val := uint8(0); val <= 1; val++ {
		b.list.Add(&fault.Fault{
			Model:     fault.StuckAt,
			Net:       n,
			Value:     val,
			Guideline: g.ID,
		})
	}
}

// emitDensity logs one raw density trigger and applies it.
func (b *builder) emitDensity(gi, li int, w geom.Rect, dom int) {
	b.scan.Densities = append(b.scan.Densities, DensityEvent{
		G: uint16(gi), Layer: uint8(li), X: int32(w.X0), Y: int32(w.Y0),
		Dom: int32(dom),
	})
	b.applyDensity(b.gs[gi], dom)
}

// scanDensityWindow evaluates one window from the current layout and emits
// its trigger when the density guideline fires. The per-net counts go
// through the builder's shared accumulator instead of a fresh map per
// window — same dominant verdict, no per-window allocation.
func (b *builder) scanDensityWindow(gi, li int, layer route.Layer, w geom.Rect) {
	g := b.gs[gi]
	used := 0
	b.acc.reset()
	b.stats.DensityCellReads += int64(w.Area())
	for y := w.Y0; y < w.Y1; y++ {
		for x := w.X0; x < w.X1; x++ {
			occ := b.lay.Occ[li][y][x]
			if len(occ) > 0 {
				used++
			}
			for _, id := range occ {
				b.acc.add(id)
			}
		}
	}
	d := float64(used) / float64(w.Area())
	if !g.CheckDensity(layer, d) {
		return
	}
	dom := b.acc.dominant()
	if dom < 0 {
		return
	}
	b.emitDensity(gi, li, w, dom)
}

// densities walks every density guideline's window grid in deck order. In
// an incremental build, windows not overlapping the dirty region replay
// their previous trigger (remapped); overlapping windows are recomputed,
// their stale triggers skipped.
func (b *builder) densities(prev []DensityEvent, dirtyRect func(geom.Rect) bool, remap []int32) {
	pi := 0
	for gi, g := range b.gs {
		if g.CheckDensity == nil {
			continue
		}
		for li := 0; li < 2; li++ {
			layer := route.Layer(li) + route.M2
			geom.Windows(b.lay.P.Die, g.Window, g.Window, func(w geom.Rect) {
				if !b.ok {
					return
				}
				if prev == nil {
					b.scanDensityWindow(gi, li, layer, w)
					return
				}
				atWindow := func() bool {
					e := &prev[pi]
					return int(e.G) == gi && int(e.Layer) == li &&
						int(e.X) == w.X0 && int(e.Y) == w.Y0
				}
				if dirtyRect(w) {
					for pi < len(prev) && atWindow() {
						pi++ // stale: superseded by the re-scan
					}
					b.scanDensityWindow(gi, li, layer, w)
					return
				}
				for pi < len(prev) && atWindow() {
					e := &prev[pi]
					pi++
					dom := remapID(remap, e.Dom)
					if dom < 0 {
						b.ok = false
						return
					}
					b.scan.Densities = append(b.scan.Densities, DensityEvent{
						G: e.G, Layer: e.Layer, X: e.X, Y: e.Y, Dom: dom,
					})
					b.applyDensity(b.gs[e.G], int(dom))
				}
			})
		}
	}
}

// sinkAt finds the sink pin of net n placed at point pt (the pin the via
// serves), if any.
func sinkAt(lay *route.Layout, n *netlist.Net, pt geom.Pt) (*netlist.Gate, int, bool) {
	for _, p := range n.Fanout {
		if lay.P.Loc[p.Gate.ID] == pt {
			return p.Gate, p.Pin, true
		}
	}
	return nil, 0, false
}

// firstDistinct returns the first two distinct net IDs in the occupancy
// list.
func firstDistinct(occ []int32) (int, int, bool) {
	for i := 1; i < len(occ); i++ {
		if occ[i] != occ[0] {
			return int(occ[0]), int(occ[i]), true
		}
	}
	return 0, 0, false
}

// neighborOcc returns the first occupant of the cell to the right (same
// layer), or -1.
func neighborOcc(lay *route.Layout, li, x, y int) int {
	if x+1 >= len(lay.Occ[li][y]) {
		return -1
	}
	occ := lay.Occ[li][y][x+1]
	if len(occ) == 0 {
		return -1
	}
	return int(occ[0])
}
