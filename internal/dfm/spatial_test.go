package dfm

import (
	"reflect"
	"testing"

	"dfmresyn/internal/geom"
	"dfmresyn/internal/route"
)

// TestSpatialFullBuildIdentical: grid-indexed and naive full builds must
// produce byte-identical universes AND byte-identical scan logs (event
// order included) across several random layouts.
func TestSpatialFullBuildIdentical(t *testing.T) {
	prof := ProfileLibrary(lib)
	for _, seed := range []int64{1, 7, 21, 33} {
		c, lay := buildTestLayout(t, seed, 130)
		gl, gr, gscan, gstats := BuildFaultsScanStats(c, lay, prof, geom.SpatialGrid)
		nl, nr, nscan, nstats := BuildFaultsScanStats(c, lay, prof, geom.SpatialOff)
		if msg := DiffUniverse(nl, nr, gl, gr); msg != "" {
			t.Fatalf("seed %d: grid universe diverges from naive: %s", seed, msg)
		}
		if !reflect.DeepEqual(gscan.Bridges, nscan.Bridges) {
			t.Fatalf("seed %d: bridge event logs differ (%d vs %d events)",
				seed, len(gscan.Bridges), len(nscan.Bridges))
		}
		if !reflect.DeepEqual(gscan.Densities, nscan.Densities) {
			t.Fatalf("seed %d: density event logs differ (%d vs %d events)",
				seed, len(gscan.Densities), len(nscan.Densities))
		}
		// Candidate pairs examined are a property of the occupied geometry,
		// identical across modes; only the cells walked differ.
		if gstats.BridgePairs != nstats.BridgePairs {
			t.Errorf("seed %d: pair counts differ: grid %d, naive %d",
				seed, gstats.BridgePairs, nstats.BridgePairs)
		}
		if gstats.CellsVisited >= nstats.CellsVisited {
			t.Errorf("seed %d: grid visited %d cells, naive %d — no reduction",
				seed, gstats.CellsVisited, nstats.CellsVisited)
		}
		if nstats.CellsVisited != nstats.CellsNaive {
			t.Errorf("seed %d: naive walk visited %d of %d cells",
				seed, nstats.CellsVisited, nstats.CellsNaive)
		}
		if gstats.DensityCellReads >= nstats.DensityCellReads {
			t.Errorf("seed %d: grid density reads %d, naive %d — no reduction",
				seed, gstats.DensityCellReads, nstats.DensityCellReads)
		}
		if gstats.PairReduction() <= 1 {
			t.Errorf("seed %d: pair reduction %.2f <= 1 (pairs %d, naive %d)",
				seed, gstats.PairReduction(), gstats.BridgePairs, gstats.BridgePairsNaive)
		}
	}
}

// TestSpatialIncrementalIdentical: the real pipeline shape (move a gate,
// incremental re-route, incremental universe rebuild) must agree across
// spatial modes and with the full build, scan logs included.
func TestSpatialIncrementalIdentical(t *testing.T) {
	prof := ProfileLibrary(lib)
	c, lay := buildTestLayout(t, 29, 140)
	_, _, scan := BuildFaultsScan(c, lay, prof)

	p := lay.P
	moved := *p
	moved.Loc = append([]geom.Pt(nil), p.Loc...)
	g := c.Gates[len(c.Gates)/4]
	oldLoc := moved.Loc[g.ID]
	newLoc := geom.Pt{X: p.Die.X1 - 1 - p.W[g.ID], Y: p.Die.Y1 - 1}
	if newLoc == oldLoc {
		newLoc = geom.Pt{X: p.Die.X0, Y: p.Die.Y0}
	}
	moved.Loc[g.ID] = newLoc
	var dirty geom.Region
	dirty.Add(geom.Rect{X0: oldLoc.X, Y0: oldLoc.Y, X1: oldLoc.X + p.W[g.ID], Y1: oldLoc.Y + 1})
	dirty.Add(geom.Rect{X0: newLoc.X, Y0: newLoc.Y, X1: newLoc.X + p.W[g.ID], Y1: newLoc.Y + 1})

	for _, mode := range []geom.SpatialMode{geom.SpatialGrid, geom.SpatialOff} {
		nlay, st := route.RouteIncrementalMode(&moved, lay, dirty, mode)
		if !st.OrderStable {
			t.Fatalf("mode %v: same circuit must be order-stable", mode)
		}
		wantL, wantR, wantScan := BuildFaultsScan(c, nlay, prof)
		gotL, gotR, gotScan, _, ok := BuildFaultsIncrementalStats(c, nlay, prof, scan, st.Remap, st.Dirty, mode)
		if !ok {
			t.Fatalf("mode %v: incremental universe build fell back", mode)
		}
		if msg := DiffUniverse(wantL, wantR, gotL, gotR); msg != "" {
			t.Fatalf("mode %v: incremental universe diverges from full: %s", mode, msg)
		}
		if !reflect.DeepEqual(wantScan.Bridges, gotScan.Bridges) {
			t.Fatalf("mode %v: incremental bridge log diverges", mode)
		}
		if !reflect.DeepEqual(wantScan.Densities, gotScan.Densities) {
			t.Fatalf("mode %v: incremental density log diverges", mode)
		}
	}
}

// TestSpatialIncrementalIdentityReplay: empty dirty region through the
// indexed walk — every trigger replays, nothing is re-scanned.
func TestSpatialIncrementalIdentityReplay(t *testing.T) {
	prof := ProfileLibrary(lib)
	c, lay := buildTestLayout(t, 31, 120)
	fl, rep, scan := BuildFaultsScan(c, lay, prof)
	il, irep, iscan, _, ok := BuildFaultsIncrementalStats(
		c, lay, prof, scan, identityRemap(len(c.Nets)), geom.Region{}, geom.SpatialGrid)
	if !ok {
		t.Fatal("identity replay fell back")
	}
	if msg := DiffUniverse(fl, rep, il, irep); msg != "" {
		t.Fatalf("replayed universe diverges: %s", msg)
	}
	if !reflect.DeepEqual(scan.Bridges, iscan.Bridges) || !reflect.DeepEqual(scan.Densities, iscan.Densities) {
		t.Fatal("replayed scan log diverges")
	}
}

// BenchmarkBuildFaults measures the full universe build in both spatial
// modes; the grid mode's win shows up in ns/op, the shared density
// accumulator's in allocs/op.
func BenchmarkBuildFaults(b *testing.B) {
	c, lay := buildTestLayout(b, 5, 260)
	prof := ProfileLibrary(lib)
	for _, mode := range []geom.SpatialMode{geom.SpatialGrid, geom.SpatialOff} {
		b.Run(mode.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				BuildFaultsScanStats(c, lay, prof, mode)
			}
		})
	}
}
