package dfm

import (
	"testing"

	"dfmresyn/internal/geom"
	"dfmresyn/internal/route"
)

func identityRemap(n int) []int32 {
	r := make([]int32, n)
	for i := range r {
		r[i] = int32(i)
	}
	return r
}

// TestIncrementalIdentityReplay: with an empty dirty region every trigger
// replays from the previous scan and the universe is byte-identical.
func TestIncrementalIdentityReplay(t *testing.T) {
	c, lay := buildTestLayout(t, 11, 120)
	prof := ProfileLibrary(lib)
	fl, rep, scan := BuildFaultsScan(c, lay, prof)
	if len(scan.Bridges) == 0 || len(scan.Densities) == 0 {
		t.Fatalf("scan log looks empty: %d bridges, %d densities", len(scan.Bridges), len(scan.Densities))
	}
	il, irep, iscan, ok := BuildFaultsIncremental(c, lay, prof, scan, identityRemap(len(c.Nets)), geom.Region{})
	if !ok {
		t.Fatal("identity replay fell back")
	}
	if msg := DiffUniverse(fl, rep, il, irep); msg != "" {
		t.Fatalf("replayed universe diverges: %s", msg)
	}
	if len(iscan.Bridges) != len(scan.Bridges) || len(iscan.Densities) != len(scan.Densities) {
		t.Errorf("re-emitted scan log differs: %d/%d bridges, %d/%d densities",
			len(iscan.Bridges), len(scan.Bridges), len(iscan.Densities), len(scan.Densities))
	}
}

// TestIncrementalFullDirtyEqualsFull: with the whole die dirty everything
// is re-scanned — still identical to a full build.
func TestIncrementalFullDirtyEqualsFull(t *testing.T) {
	c, lay := buildTestLayout(t, 12, 120)
	prof := ProfileLibrary(lib)
	fl, rep, scan := BuildFaultsScan(c, lay, prof)
	var dirty geom.Region
	dirty.Add(lay.P.Die)
	il, irep, _, ok := BuildFaultsIncremental(c, lay, prof, scan, identityRemap(len(c.Nets)), dirty)
	if !ok {
		t.Fatal("full-dirty build fell back")
	}
	if msg := DiffUniverse(fl, rep, il, irep); msg != "" {
		t.Fatalf("full-dirty universe diverges: %s", msg)
	}
}

// TestIncrementalAfterReroute: the real pipeline shape — move a gate,
// re-route incrementally, then rebuild the universe incrementally from the
// previous scan and the router's dirty region and remap table. Must equal
// a from-scratch build over the new layout.
func TestIncrementalAfterReroute(t *testing.T) {
	c, lay := buildTestLayout(t, 13, 140)
	prof := ProfileLibrary(lib)
	_, _, scan := BuildFaultsScan(c, lay, prof)

	p := lay.P
	moved := *p
	moved.Loc = append([]geom.Pt(nil), p.Loc...)
	g := c.Gates[len(c.Gates)/3]
	oldLoc := moved.Loc[g.ID]
	newLoc := geom.Pt{X: p.Die.X1 - 1 - p.W[g.ID], Y: p.Die.Y1 - 1}
	if newLoc == oldLoc {
		newLoc = geom.Pt{X: p.Die.X0, Y: p.Die.Y0}
	}
	moved.Loc[g.ID] = newLoc
	var dirty geom.Region
	dirty.Add(geom.Rect{X0: oldLoc.X, Y0: oldLoc.Y, X1: oldLoc.X + p.W[g.ID], Y1: oldLoc.Y + 1})
	dirty.Add(geom.Rect{X0: newLoc.X, Y0: newLoc.Y, X1: newLoc.X + p.W[g.ID], Y1: newLoc.Y + 1})

	nlay, st := route.RouteIncremental(&moved, lay, dirty)
	if !st.OrderStable {
		t.Fatal("same circuit must be order-stable")
	}
	wantL, wantR, _ := BuildFaultsScan(c, nlay, prof)
	gotL, gotR, _, ok := BuildFaultsIncremental(c, nlay, prof, scan, st.Remap, st.Dirty)
	if !ok {
		t.Fatal("incremental universe build fell back")
	}
	if msg := DiffUniverse(wantL, wantR, gotL, gotR); msg != "" {
		t.Fatalf("incremental universe diverges from full: %s", msg)
	}
}
