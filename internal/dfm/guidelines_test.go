package dfm

import (
	"testing"

	"dfmresyn/internal/geom"
	"dfmresyn/internal/library"
	"dfmresyn/internal/route"
)

func byID(t *testing.T, id string) *Guideline {
	t.Helper()
	for _, g := range Guidelines() {
		if g.ID == id {
			return g
		}
	}
	t.Fatalf("no guideline %s", id)
	return nil
}

func TestFeatureGuidelinesFire(t *testing.T) {
	cases := []struct {
		id        string
		violating library.Feature
		clean     library.Feature
	}{
		{"VIA.01",
			library.Feature{Kind: library.FeatDiffContact, Enclosure: 12},
			library.Feature{Kind: library.FeatDiffContact, Enclosure: 30}},
		{"VIA.02",
			library.Feature{Kind: library.FeatDiffContact, Redundant: false, Space: 230},
			library.Feature{Kind: library.FeatDiffContact, Redundant: true, Space: 230}},
		{"VIA.04",
			library.Feature{Kind: library.FeatPolyContact, Enclosure: 12},
			library.Feature{Kind: library.FeatPolyContact, Enclosure: 24}},
		{"VIA.07",
			library.Feature{Kind: library.FeatPinVia, Redundant: false},
			library.Feature{Kind: library.FeatPinVia, Redundant: true}},
		{"VIA.10",
			library.Feature{Kind: library.FeatDiffContact, Width: 200, Enclosure: 18},
			library.Feature{Kind: library.FeatDiffContact, Width: 320, Enclosure: 18}},
		{"MET.01",
			library.Feature{Kind: library.FeatMetal1Stub, Width: 200},
			library.Feature{Kind: library.FeatMetal1Stub, Width: 270}},
		{"MET.02",
			library.Feature{Kind: library.FeatMetal1Stub, Space: 230, Node2: 4},
			library.Feature{Kind: library.FeatMetal1Stub, Space: 230, Node2: -1}},
		{"MET.05",
			library.Feature{Kind: library.FeatGatePoly, Width: 200},
			library.Feature{Kind: library.FeatGatePoly, Width: 230}},
		{"MET.06",
			library.Feature{Kind: library.FeatGatePoly, Length: 1600},
			library.Feature{Kind: library.FeatGatePoly, Length: 700}},
	}
	for _, c := range cases {
		g := byID(t, c.id)
		if g.CheckFeature == nil {
			t.Errorf("%s: not a feature guideline", c.id)
			continue
		}
		if !g.CheckFeature(c.violating) {
			t.Errorf("%s: violating feature not flagged", c.id)
		}
		if g.CheckFeature(c.clean) {
			t.Errorf("%s: clean feature flagged", c.id)
		}
		// Wrong-kind features never flagged.
		other := c.violating
		other.Kind = library.FeatPinVia
		if c.violating.Kind == library.FeatPinVia {
			other.Kind = library.FeatGatePoly
		}
		if g.CheckFeature(other) {
			t.Errorf("%s: fired on wrong feature kind", c.id)
		}
	}
}

func TestViaGuidelinesFire(t *testing.T) {
	long := 30
	short := 5
	cases := []struct {
		id    string
		via   route.Via
		len   int
		clean route.Via
		clen  int
	}{
		{"VIA.11", route.Via{Redundant: false}, long, route.Via{Redundant: true}, long},
		{"VIA.12", route.Via{Redundant: false}, 16, route.Via{Redundant: false}, short},
		{"VIA.13", route.Via{Redundant: false, From: route.M1, To: route.M3}, short,
			route.Via{Redundant: true, From: route.M1, To: route.M3}, short},
		{"VIA.14", route.Via{Redundant: false, From: route.M2, To: route.M3}, short,
			route.Via{Redundant: false, From: route.M1, To: route.M2}, short},
		{"VIA.18", route.Via{Redundant: false}, 50, route.Via{Redundant: false}, 40},
		{"VIA.19", route.Via{Redundant: true}, 60, route.Via{Redundant: true}, 40},
	}
	for _, c := range cases {
		g := byID(t, c.id)
		if g.CheckVia == nil {
			t.Errorf("%s: not a via guideline", c.id)
			continue
		}
		if !g.CheckVia(c.via, c.len) {
			t.Errorf("%s: violating via not flagged", c.id)
		}
		if g.CheckVia(c.clean, c.clen) {
			t.Errorf("%s: clean via flagged", c.id)
		}
	}
}

func TestSpacingGuidelinesFire(t *testing.T) {
	g13 := byID(t, "MET.13")
	if !g13.CheckSpacing(route.M2, 2, false) {
		t.Error("MET.13 must flag two M2 tracks in one cell")
	}
	if g13.CheckSpacing(route.M3, 2, false) {
		t.Error("MET.13 must not flag M3")
	}
	if g13.CheckSpacing(route.M2, 2, true) {
		t.Error("MET.13 must not flag adjacent-cell cases (MET.17's job)")
	}
	g17 := byID(t, "MET.17")
	if !g17.CheckSpacing(route.M2, 1, true) {
		t.Error("MET.17 must flag adjacent M2 tracks")
	}
	g19 := byID(t, "MET.19")
	if g19.CheckSpacing(route.M2, 3, false) {
		t.Error("MET.19 needs occupancy >= 4")
	}
	if !g19.CheckSpacing(route.M2, 4, false) {
		t.Error("MET.19 must flag occupancy 4")
	}
}

func TestSegmentGuidelinesFire(t *testing.T) {
	seg := func(l route.Layer, length int) route.Seg {
		return route.Seg{Layer: l, A: geom.Pt{X: 0, Y: 0}, B: geom.Pt{X: length, Y: 0}}
	}
	vseg := func(l route.Layer, length int) route.Seg {
		return route.Seg{Layer: l, A: geom.Pt{X: 0, Y: 0}, B: geom.Pt{X: 0, Y: length}}
	}
	if !byID(t, "MET.21").CheckSegment(seg(route.M2, 20)) {
		t.Error("MET.21 must flag a 20-unit M2 run")
	}
	if byID(t, "MET.21").CheckSegment(seg(route.M2, 10)) {
		t.Error("MET.21 must not flag a 10-unit run")
	}
	if !byID(t, "MET.22").CheckSegment(vseg(route.M3, 20)) {
		t.Error("MET.22 must flag a 20-unit M3 run")
	}
	if byID(t, "MET.22").CheckSegment(seg(route.M2, 20)) {
		t.Error("MET.22 must not flag M2")
	}
	if !byID(t, "MET.29").CheckSegment(seg(route.M2, 12)) {
		t.Error("MET.29 must flag a medium 12-unit run")
	}
	if byID(t, "MET.29").CheckSegment(seg(route.M2, 20)) {
		t.Error("MET.29 must not flag runs above its band (MET.21 takes over)")
	}
}

func TestDensityGuidelinesFire(t *testing.T) {
	g1 := byID(t, "DEN.01")
	if !g1.CheckDensity(route.M2, 0.8) {
		t.Error("DEN.01 must flag 80% M2 density")
	}
	if g1.CheckDensity(route.M2, 0.5) || g1.CheckDensity(route.M3, 0.8) {
		t.Error("DEN.01 overfires")
	}
	g7 := byID(t, "DEN.07")
	if !g7.CheckDensity(route.M2, 0.01) {
		t.Error("DEN.07 must flag under-density")
	}
	if g7.CheckDensity(route.M2, 0.0) {
		t.Error("DEN.07 must not flag empty windows")
	}
	if g7.CheckDensity(route.M2, 0.10) {
		t.Error("DEN.07 must not flag healthy density")
	}
	for _, g := range Guidelines() {
		if g.CheckDensity != nil && g.Window <= 0 {
			t.Errorf("%s: density guideline without window size", g.ID)
		}
	}
}

func TestShortClassGuidelinesAreFeatureRules(t *testing.T) {
	for id := range shortClass {
		g := byID(t, id)
		if g.CheckFeature == nil {
			t.Errorf("%s in shortClass is not a feature guideline", id)
		}
	}
}
