package dfm

import (
	"fmt"

	"dfmresyn/internal/fault"
	"dfmresyn/internal/geom"
	"dfmresyn/internal/netlist"
	"dfmresyn/internal/route"
)

// BridgeEvent is one raw bridge trigger as produced by the occupancy-grid
// scan, before deduplication: the grid cell, the guideline deck index, and
// the two net IDs involved. Events are logged in scan order (layer, then
// row, then column), which is what lets an incremental build splice a
// replayed prefix/suffix around re-scanned dirty cells.
type BridgeEvent struct {
	Layer uint8
	X, Y  int32
	G     uint16
	A, B  int32
}

// DensityEvent is one raw density trigger: the guideline deck index, the
// layer, the window origin, and the dominant net the stuck-at faults land
// on. Logged in deck order (guideline, then layer, then window).
type DensityEvent struct {
	G     uint16
	Layer uint8
	X, Y  int32
	Dom   int32
}

// Scan is the replayable log of the two O(die-area) phases of a fault
// build. The cheap O(geometry) phases (vias, segments, internal faults)
// are recomputed on every build and need no log.
type Scan struct {
	Bridges   []BridgeEvent
	Densities []DensityEvent
}

// remapID translates a previous-build net ID through the remap table
// produced by route.RouteIncremental; -1 means the net no longer exists.
func remapID(remap []int32, id int32) int32 {
	if int(id) >= len(remap) {
		return -1
	}
	return remap[id]
}

// BuildFaultsIncremental rebuilds the fault list after an incremental
// re-route, re-scanning only the dirty region of the occupancy grid.
// Outside the region the grid is byte-identical to the previous layout
// (RouteIncremental's contract), so the previous scan's bridge triggers
// are replayed per clean cell and its density triggers per clean window,
// with net IDs translated through remap. Dirty cells and overlapping
// windows are recomputed from the new layout; the per-build deduplication
// runs over the merged trigger stream, so the result — fault list, report
// and fresh Scan — is identical to a full BuildFaultsScan.
//
// ok is false when a replayed trigger references a removed net (which
// cannot happen when dirty covers that net's previous geometry, but is
// kept as a safety valve) — the caller must fall back to a full build.
func BuildFaultsIncremental(c *netlist.Circuit, lay *route.Layout, prof *LibraryProfile, prevScan *Scan, remap []int32, dirty geom.Region) (*fault.List, *Report, *Scan, bool) {
	l, rep, scan, _, ok := BuildFaultsIncrementalStats(c, lay, prof, prevScan, remap, dirty, geom.SpatialGrid)
	return l, rep, scan, ok
}

// BuildFaultsIncrementalStats is BuildFaultsIncremental with an explicit
// spatial-index mode and scan-cost accounting. In SpatialGrid mode the
// bridge phase walks the merged union of occupied cells and logged event
// cells instead of the whole die; the density phase stays window-local
// either way (an incremental build touches few windows, so a global
// aggregate index would cost more than it saves). Output is byte-identical
// across modes.
func BuildFaultsIncrementalStats(c *netlist.Circuit, lay *route.Layout, prof *LibraryProfile, prevScan *Scan, remap []int32, dirty geom.Region, mode geom.SpatialMode) (*fault.List, *Report, *Scan, ScanStats, bool) {
	if prevScan == nil {
		return nil, nil, nil, ScanStats{}, false
	}
	die := lay.P.Die
	mask := dirty.Mask(die)
	w := die.W()
	cellDirty := func(li, x, y int) bool {
		// The pitch check of (x,y) reads the right neighbor, so a cell
		// is dirty when either itself or (x+1,y) changed.
		i := (y-die.Y0)*w + (x - die.X0)
		if mask[i] {
			return true
		}
		return x+1 < die.X1 && mask[i+1]
	}
	b := newBuilder(c, lay, mode)
	b.internal(prof)
	b.vias()
	if mode == geom.SpatialGrid {
		b.bridgesIndexed(prevScan.Bridges, cellDirty, remap)
	} else {
		b.bridges(prevScan.Bridges, cellDirty, remap)
	}
	if b.ok {
		b.segments()
		b.densities(prevScan.Densities, dirty.Intersects, remap)
	}
	if !b.ok {
		return nil, nil, nil, ScanStats{}, false
	}
	b.finishStats()
	return b.list, b.rep, b.scan, b.stats, true
}

// DiffUniverse compares two fault universes (list + report) fault by fault
// and counter by counter, returning an empty string when identical or a
// description of the first divergence. The differential harness
// (flow.DiffCheck) uses it to pin the incremental DFM check to the full
// check's output.
func DiffUniverse(wantL *fault.List, wantR *Report, gotL *fault.List, gotR *Report) string {
	if wantL.Len() != gotL.Len() {
		return fmt.Sprintf("fault count %d != %d", gotL.Len(), wantL.Len())
	}
	for i := range wantL.Faults {
		wf, gf := wantL.Faults[i], gotL.Faults[i]
		if wf.String() != gf.String() || wf.Internal != gf.Internal {
			return fmt.Sprintf("fault %d: %q != %q", i, gf.String(), wf.String())
		}
	}
	if len(wantR.PerGuideline) != len(gotR.PerGuideline) {
		return fmt.Sprintf("report guideline count %d != %d", len(gotR.PerGuideline), len(wantR.PerGuideline))
	}
	for id, n := range wantR.PerGuideline {
		if gotR.PerGuideline[id] != n {
			return fmt.Sprintf("report %s: %d != %d", id, gotR.PerGuideline[id], n)
		}
	}
	if len(wantR.PerCategory) != len(gotR.PerCategory) {
		return fmt.Sprintf("report category count %d != %d", len(gotR.PerCategory), len(wantR.PerCategory))
	}
	for cat, n := range wantR.PerCategory {
		if gotR.PerCategory[cat] != n {
			return fmt.Sprintf("report category %v: %d != %d", cat, gotR.PerCategory[cat], n)
		}
	}
	return ""
}
