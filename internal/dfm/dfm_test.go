package dfm

import (
	"math/rand"
	"testing"

	"dfmresyn/internal/fault"
	"dfmresyn/internal/library"
	"dfmresyn/internal/netlist"
	"dfmresyn/internal/place"
	"dfmresyn/internal/route"
)

var lib = library.OSU018Like()

func TestGuidelineDeckCounts(t *testing.T) {
	gs := Guidelines()
	counts := CountByCategory(gs)
	if counts[Via] != 19 {
		t.Errorf("Via guidelines = %d, want 19", counts[Via])
	}
	if counts[Metal] != 29 {
		t.Errorf("Metal guidelines = %d, want 29", counts[Metal])
	}
	if counts[Density] != 11 {
		t.Errorf("Density guidelines = %d, want 11", counts[Density])
	}
	if len(gs) != 59 {
		t.Errorf("total guidelines = %d, want 59", len(gs))
	}
	seen := map[string]bool{}
	for _, g := range gs {
		if seen[g.ID] {
			t.Errorf("duplicate guideline ID %s", g.ID)
		}
		seen[g.ID] = true
		nChecks := 0
		if g.CheckFeature != nil {
			nChecks++
		}
		if g.CheckVia != nil {
			nChecks++
		}
		if g.CheckSpacing != nil {
			nChecks++
		}
		if g.CheckSegment != nil {
			nChecks++
		}
		if g.CheckDensity != nil {
			nChecks++
		}
		if nChecks != 1 {
			t.Errorf("%s: %d check predicates, want exactly 1", g.ID, nChecks)
		}
	}
}

func TestProfileLibraryShape(t *testing.T) {
	prof := ProfileLibrary(lib)
	if len(prof.PerCell) != lib.Len() {
		t.Fatalf("profile covers %d cells", len(prof.PerCell))
	}
	totalDefects := 0
	for _, cell := range lib.Cells {
		n := prof.InternalFaultCount(cell)
		totalDefects += n
		for _, cd := range prof.PerCell[cell.Index] {
			if !cd.Behavior.Detectable() {
				t.Errorf("%s: undetectable behavior kept for %v", cell.Name, cd.Defect)
			}
			if cd.Guideline == "" {
				t.Errorf("%s: defect without guideline attribution", cell.Name)
			}
		}
	}
	if totalDefects == 0 {
		t.Fatal("library profile found no internal defects at all")
	}
	// Complex cells must carry more internal faults than the smallest
	// inverter on average; check the aggregate trend used by the
	// resynthesis ordering.
	inv := prof.InternalFaultCount(lib.ByName("INVX1"))
	big := prof.InternalFaultCount(lib.ByName("XOR2X1")) +
		prof.InternalFaultCount(lib.ByName("MUX2X1")) +
		prof.InternalFaultCount(lib.ByName("AOI22X1"))
	if big <= 3*inv {
		t.Errorf("complex cells (%d total) must out-fault 3x INVX1 (%d)", big, 3*inv)
	}
}

func TestProfileDeterministic(t *testing.T) {
	p1 := ProfileLibrary(lib)
	p2 := ProfileLibrary(lib)
	for i := range p1.PerCell {
		if len(p1.PerCell[i]) != len(p2.PerCell[i]) {
			t.Fatalf("cell %d: defect count differs between profiles", i)
		}
		for j := range p1.PerCell[i] {
			if p1.PerCell[i][j].Defect != p2.PerCell[i][j].Defect ||
				p1.PerCell[i][j].Guideline != p2.PerCell[i][j].Guideline {
				t.Fatalf("cell %d defect %d differs", i, j)
			}
		}
	}
}

func buildTestLayout(t testing.TB, seed int64, gates int) (*netlist.Circuit, *route.Layout) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	names := []string{"NAND2X1", "NOR2X1", "INVX1", "AND2X2", "XOR2X1", "AOI22X1", "MUX2X1"}
	c := netlist.New("t", lib)
	var nets []*netlist.Net
	for i := 0; i < 8; i++ {
		nets = append(nets, c.AddPI(string(rune('a'+i))))
	}
	for i := 0; i < gates; i++ {
		cell := lib.ByName(names[rng.Intn(len(names))])
		fanin := make([]*netlist.Net, cell.NumInputs())
		for j := range fanin {
			fanin[j] = nets[rng.Intn(len(nets))]
		}
		nets = append(nets, c.AddGate("", cell, fanin...))
	}
	for i := 0; i < 4; i++ {
		c.MarkPO(nets[len(nets)-1-i])
	}
	p, err := place.Place(c, 0.70, seed)
	if err != nil {
		t.Fatal(err)
	}
	return c, route.Route(p)
}

func TestBuildFaultsUniverse(t *testing.T) {
	c, lay := buildTestLayout(t, 1, 150)
	prof := ProfileLibrary(lib)
	l, rep := BuildFaults(c, lay, prof)
	if l.Len() == 0 {
		t.Fatal("no faults built")
	}
	counts := l.Count()
	if counts.Internal == 0 {
		t.Error("no internal faults")
	}
	if counts.External == 0 {
		t.Error("no external faults")
	}
	// The paper's Table I shows external faults outnumbering internal.
	if counts.External <= counts.Internal {
		t.Errorf("external (%d) should outnumber internal (%d) as in Table I",
			counts.External, counts.Internal)
	}
	// All four fault models must be represented.
	for _, m := range []fault.Model{fault.StuckAt, fault.Transition, fault.Bridge, fault.CellAware} {
		if counts.ByModel[m] == 0 {
			t.Errorf("no %v faults in the universe", m)
		}
	}
	// Every fault carries a guideline attribution.
	for _, f := range l.Faults {
		if f.Guideline == "" {
			t.Fatalf("fault %v lacks guideline attribution", f)
		}
	}
	// Report tallies at least one violation in each category.
	for _, cat := range []Category{Via, Metal, Density} {
		if rep.PerCategory[cat] == 0 {
			t.Errorf("no %v violations found", cat)
		}
	}
}

func TestBuildFaultsInternalPerInstance(t *testing.T) {
	// Two instances of the same cell type get identical internal fault
	// counts — the paper's core observation about internal faults.
	c := netlist.New("two", lib)
	a := c.AddPI("a")
	b := c.AddPI("b")
	x1 := c.AddGate("u1", lib.ByName("XOR2X1"), a, b)
	x2 := c.AddGate("u2", lib.ByName("XOR2X1"), a, b)
	y := c.AddGate("u3", lib.ByName("NAND2X1"), x1, x2)
	c.MarkPO(y)
	p, err := place.Place(c, 0.70, 1)
	if err != nil {
		t.Fatal(err)
	}
	lay := route.Route(p)
	prof := ProfileLibrary(lib)
	l, _ := BuildFaults(c, lay, prof)

	per := map[string]int{}
	for _, f := range l.Faults {
		if f.Internal {
			per[f.Gate.Name]++
		}
	}
	if per["u1"] != per["u2"] {
		t.Errorf("same-type instances differ in internal faults: %d vs %d", per["u1"], per["u2"])
	}
	if per["u1"] != prof.InternalFaultCount(lib.ByName("XOR2X1")) {
		t.Errorf("instance internal faults %d != profile count %d",
			per["u1"], prof.InternalFaultCount(lib.ByName("XOR2X1")))
	}
}

func TestBuildFaultsDeterministic(t *testing.T) {
	prof := ProfileLibrary(lib)
	c1, l1 := buildTestLayout(t, 3, 100)
	c2, l2 := buildTestLayout(t, 3, 100)
	fl1, _ := BuildFaults(c1, l1, prof)
	fl2, _ := BuildFaults(c2, l2, prof)
	if fl1.Len() != fl2.Len() {
		t.Fatalf("fault counts differ: %d vs %d", fl1.Len(), fl2.Len())
	}
	for i := range fl1.Faults {
		a, b := fl1.Faults[i], fl2.Faults[i]
		if a.Model != b.Model || a.Guideline != b.Guideline || a.Internal != b.Internal {
			t.Fatalf("fault %d differs: %v vs %v", i, a, b)
		}
	}
}

func TestBridgeFaultsComeInPairs(t *testing.T) {
	c, lay := buildTestLayout(t, 5, 120)
	prof := ProfileLibrary(lib)
	l, _ := BuildFaults(c, lay, prof)
	type pair struct {
		a, b int
		gid  string
	}
	dir := map[pair]int{}
	for _, f := range l.Faults {
		if f.Model != fault.Bridge {
			continue
		}
		a, b := f.Net.ID, f.Other.ID
		if a > b {
			a, b = b, a
		}
		dir[pair{a, b, f.Guideline}]++
	}
	for p, n := range dir {
		if n != 2 {
			t.Errorf("bridge %v has %d directions, want 2", p, n)
		}
	}
}
