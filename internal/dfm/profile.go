package dfm

import (
	"dfmresyn/internal/library"
	"dfmresyn/internal/switchsim"
)

// CellDefect is one cell-internal defect predicted by a guideline violation
// in a cell's layout template, with its derived cell-aware (UDFM) behavior.
type CellDefect struct {
	Guideline string
	Defect    switchsim.Defect
	Behavior  *switchsim.Behavior
}

// LibraryProfile caches, per cell type, the internal defects implied by the
// rule deck and their switch-level behaviors. Because the cell layout
// template is fixed per type, every instance of a cell introduces exactly
// the same internal faults — the property the resynthesis procedure
// exploits.
type LibraryProfile struct {
	Lib     *library.Library
	PerCell [][]CellDefect // indexed by cell.Index
}

// shortClass lists guidelines whose violation predicts a short; all other
// feature guidelines predict opens.
var shortClass = map[string]bool{
	"MET.02": true, "MET.04": true, "MET.09": true, // metal1 spacing
	"MET.07": true, "MET.12": true, // poly spacing
}

// ProfileLibrary evaluates the internal (feature-level) guidelines on every
// cell template, translates each violation into a transistor-level defect,
// derives its UDFM behavior by switch-level simulation, and keeps the
// defects whose behavior is observable at the cell boundary.
func ProfileLibrary(lib *library.Library) *LibraryProfile {
	gs := Guidelines()
	prof := &LibraryProfile{Lib: lib, PerCell: make([][]CellDefect, lib.Len())}
	for _, cell := range lib.Cells {
		var defects []CellDefect
		for _, g := range gs {
			if g.CheckFeature == nil {
				continue
			}
			for _, f := range cell.Features {
				if !g.CheckFeature(f) {
					continue
				}
				d, ok := featureDefect(cell, f, shortClass[g.ID])
				if !ok {
					continue
				}
				beh := switchsim.Derive(cell, d)
				if !beh.Detectable() {
					continue // no observable behavior at the cell boundary
				}
				defects = append(defects, CellDefect{Guideline: g.ID, Defect: d, Behavior: &beh})
			}
		}
		prof.PerCell[cell.Index] = defects
	}
	return prof
}

// InternalFaultCount returns the number of internal faults a single
// instance of the cell introduces. The resynthesis procedure orders the
// library by this count (descending) to pick which cells to exclude first.
func (p *LibraryProfile) InternalFaultCount(cell *library.Cell) int {
	return len(p.PerCell[cell.Index])
}

// featureDefect maps a violated feature to a transistor-level defect.
func featureDefect(cell *library.Cell, f library.Feature, short bool) (switchsim.Defect, bool) {
	switch f.Kind {
	case library.FeatDiffContact:
		tr := cell.Transistors[f.Transistor]
		term := 0
		if f.Node == tr.B {
			term = 1
		}
		return switchsim.Defect{Kind: switchsim.TermBreak, T: f.Transistor, Term: term}, true
	case library.FeatPolyContact, library.FeatGatePoly:
		if short {
			return switchsim.Defect{Kind: switchsim.TransStuckOn, T: f.Transistor}, true
		}
		return switchsim.Defect{Kind: switchsim.TransStuckOpen, T: f.Transistor}, true
	case library.FeatMetal1Stub:
		if short {
			if f.Node2 < 0 {
				return switchsim.Defect{}, false
			}
			return switchsim.Defect{Kind: switchsim.NodeBridge, NodeA: f.Node, NodeB: f.Node2}, true
		}
		// An open on the node's wiring: break the first transistor
		// terminal attached to the node.
		for ti, tr := range cell.Transistors {
			if tr.A == f.Node {
				return switchsim.Defect{Kind: switchsim.TermBreak, T: ti, Term: 0}, true
			}
			if tr.B == f.Node {
				return switchsim.Defect{Kind: switchsim.TermBreak, T: ti, Term: 1}, true
			}
		}
		return switchsim.Defect{}, false
	case library.FeatPinVia:
		return switchsim.Defect{Kind: switchsim.OutputOpen}, true
	}
	return switchsim.Defect{}, false
}
