// Package dfm implements the design-for-manufacturability guideline engine:
// the 59 recommended-layout guidelines the paper uses (19 Via, 29 Metal, 11
// Density), the checker that finds violation locations in cell templates and
// in the routed layout, and the translation of violations into the
// gate-level fault universe (stuck-at, transition, bridging, cell-aware).
package dfm

import (
	"dfmresyn/internal/library"
	"dfmresyn/internal/route"
)

// Category is a DFM guideline category.
type Category uint8

// The three guideline categories of Section IV.
const (
	Via Category = iota
	Metal
	Density
)

// String names the category.
func (c Category) String() string {
	switch c {
	case Via:
		return "Via"
	case Metal:
		return "Metal"
	case Density:
		return "Density"
	}
	return "?"
}

// Guideline is one recommended-layout rule. Exactly one of the Check*
// predicates is non-nil, determining where the guideline applies:
//
//   - CheckFeature: cell-internal layout features (internal faults);
//   - CheckVia: routed vias (external opens);
//   - CheckSpacing: same-layer track crowding (external bridges);
//   - CheckSegment: routed wire segments (external opens);
//   - CheckDensity: metal density windows (external opens/shorts).
type Guideline struct {
	ID   string
	Cat  Category
	Desc string

	CheckFeature func(f library.Feature) bool
	CheckVia     func(v route.Via, netLen int) bool
	CheckSpacing func(layer route.Layer, occupants int, adjacent bool) bool
	CheckSegment func(s route.Seg) bool
	CheckDensity func(layer route.Layer, density float64) (violates bool)
	// Window edge for density guidelines (grid units).
	Window int
}

// Guidelines returns the full rule deck: 19 Via + 29 Metal + 11 Density.
func Guidelines() []*Guideline {
	var gs []*Guideline
	add := func(g *Guideline) { gs = append(gs, g) }

	// ---- Via guidelines (19): recommended contact/via redundancy,
	// enclosure and isolation. VIA.01-VIA.10 are cell-internal
	// (contacts, poly contacts, pin vias); VIA.11-VIA.19 apply to the
	// routed vias.
	add(&Guideline{ID: "VIA.01", Cat: Via, Desc: "diffusion contact enclosure below recommended minimum",
		CheckFeature: func(f library.Feature) bool {
			return f.Kind == library.FeatDiffContact && f.Enclosure < 15
		}})
	add(&Guideline{ID: "VIA.02", Cat: Via, Desc: "non-redundant diffusion contact in tight surroundings",
		CheckFeature: func(f library.Feature) bool {
			return f.Kind == library.FeatDiffContact && !f.Redundant && f.Space < 250
		}})
	add(&Guideline{ID: "VIA.03", Cat: Via, Desc: "diffusion contact spacing below recommended",
		CheckFeature: func(f library.Feature) bool {
			return f.Kind == library.FeatDiffContact && f.Space < 240 && f.Enclosure < 20
		}})
	add(&Guideline{ID: "VIA.04", Cat: Via, Desc: "poly contact enclosure below recommended minimum",
		CheckFeature: func(f library.Feature) bool {
			return f.Kind == library.FeatPolyContact && f.Enclosure < 15
		}})
	add(&Guideline{ID: "VIA.05", Cat: Via, Desc: "non-redundant poly contact",
		CheckFeature: func(f library.Feature) bool {
			return f.Kind == library.FeatPolyContact && !f.Redundant && f.Enclosure < 20
		}})
	add(&Guideline{ID: "VIA.06", Cat: Via, Desc: "poly contact in tight surroundings",
		CheckFeature: func(f library.Feature) bool {
			return f.Kind == library.FeatPolyContact && f.Space < 240
		}})
	add(&Guideline{ID: "VIA.07", Cat: Via, Desc: "cell pin via without redundancy",
		CheckFeature: func(f library.Feature) bool {
			return f.Kind == library.FeatPinVia && !f.Redundant
		}})
	add(&Guideline{ID: "VIA.08", Cat: Via, Desc: "cell pin via enclosure below recommended",
		CheckFeature: func(f library.Feature) bool {
			return f.Kind == library.FeatPinVia && f.Enclosure < 15
		}})
	add(&Guideline{ID: "VIA.09", Cat: Via, Desc: "cell pin via isolation below recommended",
		CheckFeature: func(f library.Feature) bool {
			return f.Kind == library.FeatPinVia && f.Space < 240 && f.Enclosure < 25
		}})
	add(&Guideline{ID: "VIA.10", Cat: Via, Desc: "contact on narrow diffusion",
		CheckFeature: func(f library.Feature) bool {
			return f.Kind == library.FeatDiffContact && f.Width < 210 && f.Enclosure < 20
		}})

	viaExt := []struct {
		id, desc string
		check    func(v route.Via, netLen int) bool
	}{
		{"VIA.11", "single (non-redundant) via on a long net", func(v route.Via, l int) bool {
			return !v.Redundant && l > 24
		}},
		{"VIA.12", "single via on a medium net", func(v route.Via, l int) bool {
			return !v.Redundant && l > 12 && l <= 24
		}},
		{"VIA.13", "non-redundant stacked pin via", func(v route.Via, l int) bool {
			return !v.Redundant && v.From == route.M1 && v.To == route.M3
		}},
		{"VIA.14", "non-redundant corner via M2-M3", func(v route.Via, l int) bool {
			return !v.Redundant && v.From == route.M2 && v.To == route.M3
		}},
		{"VIA.15", "pin via to M3 on a long net", func(v route.Via, l int) bool {
			return v.From == route.M1 && v.To == route.M3 && l > 20
		}},
		{"VIA.16", "pin via to M2 without redundancy on a long net", func(v route.Via, l int) bool {
			return !v.Redundant && v.From == route.M1 && v.To == route.M2 && l > 28
		}},
		{"VIA.17", "corner via on a very long net", func(v route.Via, l int) bool {
			return v.From == route.M2 && v.To == route.M3 && l > 40
		}},
		{"VIA.18", "any single via on a very long net", func(v route.Via, l int) bool {
			return !v.Redundant && l > 48
		}},
		{"VIA.19", "redundantly-placeable via left single on a long net", func(v route.Via, l int) bool {
			return v.Redundant && l > 56
		}},
	}
	for _, ve := range viaExt {
		add(&Guideline{ID: ve.id, Cat: Via, Desc: ve.desc, CheckVia: ve.check})
	}

	// ---- Metal guidelines (29): width, spacing and run-length
	// recommendations. MET.01-MET.12 are cell-internal (metal1 stubs and
	// gate poly); MET.13-MET.29 apply to routed segments and track
	// crowding.
	add(&Guideline{ID: "MET.01", Cat: Metal, Desc: "metal1 stub below recommended width",
		CheckFeature: func(f library.Feature) bool {
			return f.Kind == library.FeatMetal1Stub && f.Width < 210
		}})
	add(&Guideline{ID: "MET.02", Cat: Metal, Desc: "metal1 stub spacing below recommended",
		CheckFeature: func(f library.Feature) bool {
			return f.Kind == library.FeatMetal1Stub && f.Space < 240 && f.Node2 >= 0
		}})
	add(&Guideline{ID: "MET.03", Cat: Metal, Desc: "long narrow metal1 stub",
		CheckFeature: func(f library.Feature) bool {
			return f.Kind == library.FeatMetal1Stub && f.Length > 1500 && f.Width < 240
		}})
	add(&Guideline{ID: "MET.04", Cat: Metal, Desc: "metal1 stub at minimum width and spacing",
		CheckFeature: func(f library.Feature) bool {
			return f.Kind == library.FeatMetal1Stub && f.Width < 210 && f.Space < 240 && f.Node2 >= 0
		}})
	add(&Guideline{ID: "MET.05", Cat: Metal, Desc: "gate poly below recommended width",
		CheckFeature: func(f library.Feature) bool {
			return f.Kind == library.FeatGatePoly && f.Width < 210
		}})
	add(&Guideline{ID: "MET.06", Cat: Metal, Desc: "long gate poly run",
		CheckFeature: func(f library.Feature) bool {
			return f.Kind == library.FeatGatePoly && f.Length > 1500
		}})
	add(&Guideline{ID: "MET.07", Cat: Metal, Desc: "gate poly spacing below recommended",
		CheckFeature: func(f library.Feature) bool {
			return f.Kind == library.FeatGatePoly && f.Space < 240
		}})
	add(&Guideline{ID: "MET.08", Cat: Metal, Desc: "long narrow gate poly",
		CheckFeature: func(f library.Feature) bool {
			return f.Kind == library.FeatGatePoly && f.Length > 1000 && f.Width < 230
		}})
	add(&Guideline{ID: "MET.09", Cat: Metal, Desc: "metal1 stub at tight pitch over diffusion",
		CheckFeature: func(f library.Feature) bool {
			return f.Kind == library.FeatMetal1Stub && f.Space < 260 && f.Length > 1100 && f.Node2 >= 0
		}})
	add(&Guideline{ID: "MET.10", Cat: Metal, Desc: "very long metal1 stub",
		CheckFeature: func(f library.Feature) bool {
			return f.Kind == library.FeatMetal1Stub && f.Length > 1500 && f.Node2 >= 0
		}})
	add(&Guideline{ID: "MET.11", Cat: Metal, Desc: "narrow metal1 in tight surroundings",
		CheckFeature: func(f library.Feature) bool {
			return f.Kind == library.FeatMetal1Stub && f.Width < 230 && f.Space < 250
		}})
	add(&Guideline{ID: "MET.12", Cat: Metal, Desc: "poly at minimum dimensions",
		CheckFeature: func(f library.Feature) bool {
			return f.Kind == library.FeatGatePoly && f.Width < 210 && f.Space < 250
		}})

	// External spacing rules (bridge risks).
	spc := []struct {
		id, desc string
		check    func(layer route.Layer, occ int, adjacent bool) bool
	}{
		{"MET.13", "two M2 tracks at minimum pitch", func(l route.Layer, o int, adj bool) bool {
			return l == route.M2 && o >= 2 && !adj
		}},
		{"MET.14", "two M3 tracks at minimum pitch", func(l route.Layer, o int, adj bool) bool {
			return l == route.M3 && o >= 2 && !adj
		}},
		{"MET.15", "three or more M2 tracks packed", func(l route.Layer, o int, adj bool) bool {
			return l == route.M2 && o >= 3 && !adj
		}},
		{"MET.16", "three or more M3 tracks packed", func(l route.Layer, o int, adj bool) bool {
			return l == route.M3 && o >= 3 && !adj
		}},
		{"MET.17", "adjacent M2 tracks without relief", func(l route.Layer, o int, adj bool) bool {
			return l == route.M2 && adj
		}},
		{"MET.18", "adjacent M3 tracks without relief", func(l route.Layer, o int, adj bool) bool {
			return l == route.M3 && adj
		}},
		{"MET.19", "heavily crowded M2 region", func(l route.Layer, o int, adj bool) bool {
			return l == route.M2 && o >= 4 && !adj
		}},
		{"MET.20", "heavily crowded M3 region", func(l route.Layer, o int, adj bool) bool {
			return l == route.M3 && o >= 4 && !adj
		}},
	}
	for _, s := range spc {
		add(&Guideline{ID: s.id, Cat: Metal, Desc: s.desc, CheckSpacing: s.check})
	}

	// External segment rules (open risks on long runs).
	segs := []struct {
		id, desc string
		check    func(s route.Seg) bool
	}{
		{"MET.21", "long M2 run without widening", func(s route.Seg) bool {
			return s.Layer == route.M2 && s.Len() > 16
		}},
		{"MET.22", "long M3 run without widening", func(s route.Seg) bool {
			return s.Layer == route.M3 && s.Len() > 16
		}},
		{"MET.23", "very long M2 run", func(s route.Seg) bool {
			return s.Layer == route.M2 && s.Len() > 32
		}},
		{"MET.24", "very long M3 run", func(s route.Seg) bool {
			return s.Layer == route.M3 && s.Len() > 32
		}},
		{"MET.25", "extreme M2 run", func(s route.Seg) bool {
			return s.Layer == route.M2 && s.Len() > 48
		}},
		{"MET.26", "extreme M3 run", func(s route.Seg) bool {
			return s.Layer == route.M3 && s.Len() > 48
		}},
		{"MET.27", "M2 run crossing half the die", func(s route.Seg) bool {
			return s.Layer == route.M2 && s.Len() > 64
		}},
		{"MET.28", "M3 run crossing half the die", func(s route.Seg) bool {
			return s.Layer == route.M3 && s.Len() > 64
		}},
		{"MET.29", "medium M2 run at risk", func(s route.Seg) bool {
			return s.Layer == route.M2 && s.Len() > 8 && s.Len() <= 16
		}},
	}
	for _, s := range segs {
		add(&Guideline{ID: s.id, Cat: Metal, Desc: s.desc, CheckSegment: s.check})
	}

	// ---- Density guidelines (11): metal density windows outside the
	// recommended band (CMP dishing / erosion risks).
	dens := []struct {
		id, desc string
		window   int
		check    func(l route.Layer, d float64) bool
	}{
		{"DEN.01", "M2 window over maximum density", 8, func(l route.Layer, d float64) bool { return l == route.M2 && d > 0.75 }},
		{"DEN.02", "M3 window over maximum density", 8, func(l route.Layer, d float64) bool { return l == route.M3 && d > 0.75 }},
		{"DEN.03", "M2 window strongly over density", 8, func(l route.Layer, d float64) bool { return l == route.M2 && d > 0.90 }},
		{"DEN.04", "M3 window strongly over density", 8, func(l route.Layer, d float64) bool { return l == route.M3 && d > 0.90 }},
		{"DEN.05", "M2 wide-window over density", 16, func(l route.Layer, d float64) bool { return l == route.M2 && d > 0.65 }},
		{"DEN.06", "M3 wide-window over density", 16, func(l route.Layer, d float64) bool { return l == route.M3 && d > 0.65 }},
		{"DEN.07", "M2 window under minimum density", 8, func(l route.Layer, d float64) bool { return l == route.M2 && d > 0 && d < 0.04 }},
		{"DEN.08", "M3 window under minimum density", 8, func(l route.Layer, d float64) bool { return l == route.M3 && d > 0 && d < 0.04 }},
		{"DEN.09", "M2 wide-window under density", 16, func(l route.Layer, d float64) bool { return l == route.M2 && d > 0 && d < 0.03 }},
		{"DEN.10", "M3 wide-window under density", 16, func(l route.Layer, d float64) bool { return l == route.M3 && d > 0 && d < 0.03 }},
		{"DEN.11", "gradient: dense window next to empty window", 8, nil},
	}
	for _, d := range dens {
		g := &Guideline{ID: d.id, Cat: Density, Desc: d.desc, Window: d.window}
		if d.check != nil {
			g.CheckDensity = d.check
		} else {
			// DEN.11 is evaluated specially by the checker (gradient
			// between neighbouring windows); give it a predicate that
			// flags extremely dense windows as the proxy.
			g.CheckDensity = func(l route.Layer, dd float64) bool { return dd > 0.95 }
		}
		add(g)
	}
	return gs
}

// CountByCategory tallies the rule deck (used to assert 19/29/11).
func CountByCategory(gs []*Guideline) map[Category]int {
	out := map[Category]int{}
	for _, g := range gs {
		out[g.Cat]++
	}
	return out
}
