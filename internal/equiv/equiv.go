// Package equiv checks functional equivalence of two combinational
// circuits with the same PI/PO interface: exhaustively when the input space
// is small, by seeded random simulation plus structural-difference-guided
// patterns otherwise. The resynthesis procedure uses it as a safety net —
// every accepted resynthesized circuit must be equivalent to the original.
package equiv

import (
	"fmt"
	"math/rand"

	"dfmresyn/internal/logic"
	"dfmresyn/internal/netlist"
	"dfmresyn/internal/sim"
)

// ExhaustiveLimit is the PI count up to which the check enumerates the full
// input space (2^n patterns, 64 at a time).
const ExhaustiveLimit = 16

// Result reports the check outcome; on inequivalence Counterexample holds a
// distinguishing input vector and POIndex the first differing output.
type Result struct {
	Equivalent     bool
	Exhaustive     bool
	Patterns       int
	POIndex        int
	Counterexample []uint8
}

// Check compares the two circuits PO-for-PO (by position). randomBlocks
// controls the number of 64-pattern random blocks in the sampling mode.
func Check(c1, c2 *netlist.Circuit, randomBlocks int, seed int64) (Result, error) {
	if len(c1.PIs) != len(c2.PIs) {
		return Result{}, fmt.Errorf("equiv: PI counts differ (%d vs %d)", len(c1.PIs), len(c2.PIs))
	}
	if len(c1.POs) != len(c2.POs) {
		return Result{}, fmt.Errorf("equiv: PO counts differ (%d vs %d)", len(c1.POs), len(c2.POs))
	}
	n := len(c1.PIs)
	s1, s2 := sim.New(c1), sim.New(c2)

	compare := func(words []logic.Word, count int) (int, uint, bool) {
		v1 := s1.Run(words)
		v2 := s2.Run(words)
		for i := range c1.POs {
			diff := v1[c1.POs[i].ID] ^ v2[c2.POs[i].ID]
			if count < 64 {
				diff &= (logic.Word(1) << uint(count)) - 1
			}
			if diff != 0 {
				// First differing pattern slot.
				for p := uint(0); p < 64; p++ {
					if diff>>p&1 == 1 {
						return i, p, false
					}
				}
			}
		}
		return 0, 0, true
	}

	extract := func(words []logic.Word, p uint) []uint8 {
		vec := make([]uint8, n)
		for i := range vec {
			vec[i] = uint8(words[i] >> p & 1)
		}
		return vec
	}

	if n <= ExhaustiveLimit {
		res := Result{Equivalent: true, Exhaustive: true}
		total := uint(1) << uint(n)
		for base := uint(0); base < total; base += 64 {
			words := make([]logic.Word, n)
			count := 64
			if base+64 > total {
				count = int(total - base)
			}
			for p := uint(0); p < uint(count); p++ {
				asg := base + p
				for i := 0; i < n; i++ {
					if asg>>uint(i)&1 == 1 {
						words[i] |= 1 << p
					}
				}
			}
			res.Patterns += count
			if po, p, ok := compare(words, count); !ok {
				res.Equivalent = false
				res.POIndex = po
				res.Counterexample = extract(words, p)
				return res, nil
			}
		}
		return res, nil
	}

	// Sampling mode: random blocks plus low-weight and high-weight
	// patterns (near-constant inputs often expose mapping bugs).
	if randomBlocks <= 0 {
		randomBlocks = 32
	}
	rng := rand.New(rand.NewSource(seed))
	res := Result{Equivalent: true}
	for b := 0; b < randomBlocks; b++ {
		words := make([]logic.Word, n)
		switch b {
		case 0:
			// Walking ones/zeros: bit p of word i set iff i == p%n,
			// plus the all-zero and all-one patterns in slots 62/63.
			for i := range words {
				for p := 0; p < 62; p++ {
					if p%n == i {
						words[i] |= 1 << uint(p)
					}
				}
				words[i] |= 1 << 63
			}
		default:
			for i := range words {
				words[i] = rng.Uint64()
			}
		}
		res.Patterns += 64
		if po, p, ok := compare(words, 64); !ok {
			res.Equivalent = false
			res.POIndex = po
			res.Counterexample = extract(words, p)
			return res, nil
		}
	}
	return res, nil
}
