package equiv

import (
	"testing"

	"dfmresyn/internal/library"
	"dfmresyn/internal/netlist"
)

var lib = library.OSU018Like()

// buildAnd builds y = a AND b two different ways.
func andDirect() *netlist.Circuit {
	c := netlist.New("and1", lib)
	a := c.AddPI("a")
	b := c.AddPI("b")
	c.MarkPO(c.AddGate("u", lib.ByName("AND2X2"), a, b))
	return c
}

func andViaNand() *netlist.Circuit {
	c := netlist.New("and2", lib)
	a := c.AddPI("a")
	b := c.AddPI("b")
	n := c.AddGate("u1", lib.ByName("NAND2X1"), a, b)
	c.MarkPO(c.AddGate("u2", lib.ByName("INVX1"), n))
	return c
}

func orGate() *netlist.Circuit {
	c := netlist.New("or", lib)
	a := c.AddPI("a")
	b := c.AddPI("b")
	c.MarkPO(c.AddGate("u", lib.ByName("OR2X2"), a, b))
	return c
}

func TestEquivalentSmall(t *testing.T) {
	r, err := Check(andDirect(), andViaNand(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Equivalent || !r.Exhaustive {
		t.Fatalf("AND implementations must be exhaustively equivalent: %+v", r)
	}
	if r.Patterns != 4 {
		t.Errorf("2-PI exhaustive check must use 4 patterns, used %d", r.Patterns)
	}
}

func TestInequivalentWithCounterexample(t *testing.T) {
	r, err := Check(andDirect(), orGate(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Equivalent {
		t.Fatal("AND and OR must differ")
	}
	if len(r.Counterexample) != 2 {
		t.Fatalf("counterexample missing: %+v", r)
	}
	// Verify the counterexample really distinguishes: AND != OR exactly
	// when inputs differ from each other or are (1,0)/(0,1).
	a, b := r.Counterexample[0], r.Counterexample[1]
	if (a & b) == (a | b) {
		t.Errorf("counterexample (%d,%d) does not distinguish AND from OR", a, b)
	}
}

func TestInterfaceMismatch(t *testing.T) {
	c1 := andDirect()
	c2 := netlist.New("one", lib)
	x := c2.AddPI("x")
	c2.MarkPO(c2.AddGate("u", lib.ByName("INVX1"), x))
	if _, err := Check(c1, c2, 0, 1); err == nil {
		t.Fatal("PI mismatch must error")
	}
	// PO mismatch.
	c3 := andDirect()
	c3.MarkPO(c3.PIs[0])
	if _, err := Check(andDirect(), c3, 0, 1); err == nil {
		t.Fatal("PO mismatch must error")
	}
}

// wideCircuit builds an 20-PI parity-ish circuit, optionally with a bug on
// one deep minterm.
func wideCircuit(bug bool) *netlist.Circuit {
	c := netlist.New("wide", lib)
	var nets []*netlist.Net
	for i := 0; i < 20; i++ {
		nets = append(nets, c.AddPI("x"+string(rune('a'+i))))
	}
	x := nets[0]
	for i := 1; i < 20; i++ {
		x = c.AddGate("", lib.ByName("XOR2X1"), x, nets[i])
	}
	if bug {
		// Flip the output when all of the first 6 inputs are 1.
		andAll := nets[0]
		for i := 1; i < 6; i++ {
			andAll = c.AddGate("", lib.ByName("AND2X2"), andAll, nets[i])
		}
		x = c.AddGate("", lib.ByName("XOR2X1"), x, andAll)
	}
	c.MarkPO(x)
	return c
}

func TestSamplingModeOnWideCircuits(t *testing.T) {
	r, err := Check(wideCircuit(false), wideCircuit(false), 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Equivalent || r.Exhaustive {
		t.Fatalf("identical wide circuits: %+v", r)
	}
	// The injected bug triggers on ~1/64 of inputs: random sampling must
	// find it.
	r, err = Check(wideCircuit(false), wideCircuit(true), 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Equivalent {
		t.Fatal("sampling missed a 1/64-density difference")
	}
}
