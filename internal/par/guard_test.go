package par

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"dfmresyn/internal/resilience"
)

// TestEachGuardMatchesEach: with no panics and no cancellation, EachGuard
// visits exactly the indices Each visits, once each, and reports nothing.
func TestEachGuardMatchesEach(t *testing.T) {
	for _, workers := range []int{1, 4, 9} {
		const n = 257
		var visits [n]int32
		rep := EachGuard(nil, n, workers, 8, func(_, i int) {
			atomic.AddInt32(&visits[i], 1)
		}, nil)
		if rep.Err != nil || rep.Recovered != 0 || len(rep.Quarantined) != 0 {
			t.Fatalf("workers=%d: clean run reported %+v", workers, rep)
		}
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, v)
			}
		}
	}
}

// TestEachGuardRecoversOnRetry: items that panic on the first attempt but
// succeed on the retry are counted as Recovered, their result slot is
// written by the retry, and nothing is quarantined.
func TestEachGuardRecoversOnRetry(t *testing.T) {
	const n = 100
	var done [n]int32
	bad := map[int]bool{3: true, 41: true, 97: true}
	var retried []int
	rep := EachGuard(nil, n, 4, 4, func(_, i int) {
		if bad[i] {
			panic(fmt.Sprintf("injected %d", i))
		}
		atomic.AddInt32(&done[i], 1)
	}, func(i int) {
		retried = append(retried, i)
		atomic.AddInt32(&done[i], 1)
	})
	if rep.Recovered != len(bad) {
		t.Errorf("Recovered = %d, want %d", rep.Recovered, len(bad))
	}
	if len(rep.Quarantined) != 0 {
		t.Errorf("quarantined %v despite successful retries", rep.Quarantined)
	}
	if fmt.Sprint(retried) != "[3 41 97]" {
		t.Errorf("retries ran as %v, want ascending [3 41 97]", retried)
	}
	for i, v := range done {
		if v != 1 {
			t.Errorf("index %d completed %d times", i, v)
		}
	}
}

// TestEachGuardQuarantinesSorted: items that panic on both attempts land in
// Quarantined in ascending order with their first panic message aligned,
// regardless of worker count and scheduling.
func TestEachGuardQuarantinesSorted(t *testing.T) {
	const n = 200
	stubborn := map[int]bool{150: true, 7: true, 66: true}
	for _, workers := range []int{1, 8} {
		rep := EachGuard(nil, n, workers, 4, func(_, i int) {
			if stubborn[i] {
				panic(fmt.Sprintf("stubborn %d", i))
			}
		}, func(i int) {
			if stubborn[i] {
				panic(fmt.Sprintf("stubborn retry %d", i))
			}
		})
		if fmt.Sprint(rep.Quarantined) != "[7 66 150]" {
			t.Fatalf("workers=%d: Quarantined = %v, want [7 66 150]", workers, rep.Quarantined)
		}
		if len(rep.Panics) != 3 {
			t.Fatalf("workers=%d: %d panic messages for 3 quarantined", workers, len(rep.Panics))
		}
		for j, id := range rep.Quarantined {
			if want := fmt.Sprintf("stubborn %d", id); rep.Panics[j] != want {
				t.Errorf("workers=%d: Panics[%d] = %q, want %q", workers, j, rep.Panics[j], want)
			}
		}
		if rep.Recovered != 3 {
			t.Errorf("workers=%d: Recovered = %d, want 3 (each stubborn item got its one retry)", workers, rep.Recovered)
		}
	}
}

// TestEachGuardCancellation: a cancelled context surfaces as an
// ErrInterrupted-wrapped report error, skips the retry phase, and stops
// granting new chunks — both on the sequential and the parallel path.
func TestEachGuardCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		retried := false
		rep := EachGuard(ctx, 1000, workers, 4, func(_, i int) {
			if i == 0 {
				panic("should have been skipped entirely or left unretried")
			}
		}, func(int) { retried = true })
		if !errors.Is(rep.Err, resilience.ErrInterrupted) {
			t.Fatalf("workers=%d: Err = %v, want ErrInterrupted", workers, rep.Err)
		}
		if retried {
			t.Errorf("workers=%d: retry phase ran on a cancelled run", workers)
		}
	}

	// Mid-run: cancel from inside an item; workers must drain their current
	// chunk and then stop at the next chunk grab instead of covering all n.
	ctx2, cancel2 := context.WithCancel(context.Background())
	var visited int64
	var once sync.Once
	rep := EachGuard(ctx2, 100000, 4, 16, func(_, i int) {
		atomic.AddInt64(&visited, 1)
		once.Do(cancel2)
	}, nil)
	if !errors.Is(rep.Err, resilience.ErrInterrupted) {
		t.Fatalf("mid-run cancel: Err = %v, want ErrInterrupted", rep.Err)
	}
	if v := atomic.LoadInt64(&visited); v == 0 || v == 100000 {
		t.Errorf("mid-run cancel visited %d of 100000 items; want a strict partial prefix of chunks", v)
	}
}
