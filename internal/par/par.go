// Package par is the deterministic worker-pool substrate of the parallel
// fault-classification engine. It deliberately exposes only order-free
// primitives: work items are identified by index, every item is processed
// exactly once, and results must be written to per-index slots so that the
// merge order — and therefore every table the pipeline prints — is identical
// for one worker and for N workers. Scheduling is dynamic (an atomic cursor
// with chunked grabs) because per-fault PODEM cost varies by orders of
// magnitude, but scheduling never leaks into results.
package par

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"dfmresyn/internal/resilience"
)

// Count resolves a requested worker count: values <= 0 select
// runtime.NumCPU() (the "as fast as the hardware allows" default), anything
// positive is honored as-is so tests can oversubscribe a small machine.
func Count(n int) int {
	if n <= 0 {
		return runtime.NumCPU()
	}
	return n
}

// Each runs fn(worker, i) for every i in [0, n), distributing indices over
// the given number of workers in chunks. The worker argument is a dense ID
// in [0, workers) so callers can hand each worker its own scratch state
// (fault-simulation engines, PODEM frames). fn must confine its side effects
// to per-index slots; under that contract the overall result is independent
// of the worker count and of scheduling.
//
// With workers <= 1, or when the whole range fits in one chunk, fn runs
// inline on the calling goroutine as worker 0 — the sequential and parallel
// paths execute the same code.
func Each(n, workers, chunk int, fn func(worker, i int)) {
	if chunk <= 0 {
		chunk = 1
	}
	if workers <= 1 || n <= chunk {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	if workers > n {
		workers = n
	}
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				start := atomic.AddInt64(&next, int64(chunk)) - int64(chunk)
				if start >= int64(n) {
					return
				}
				end := start + int64(chunk)
				if end > int64(n) {
					end = int64(n)
				}
				for i := start; i < end; i++ {
					fn(worker, int(i))
				}
			}
		}(w)
	}
	wg.Wait()
}

// GuardReport summarizes an EachGuard run: how many worker panics were
// recovered, which indices panicked twice and were quarantined (ascending),
// the first panic message per quarantined index (aligned with Quarantined),
// and the context error if the run was cancelled before completing.
type GuardReport struct {
	Recovered   int
	Quarantined []int
	Panics      []string
	Err         error
}

// EachGuard is Each with panic quarantine and cooperative cancellation, for
// stages whose per-item work runs third-party-grade search code that must
// not take the process down. Each fn(worker, i) call runs under its own
// recover; a panicking item does not disturb the rest of its worker's chunk.
// After the parallel phase, every panicked index is retried exactly once,
// sequentially in ascending index order, through retry(i) (or fn(0, i) when
// retry is nil) — the retry hook exists so the caller can hand the item a
// fresh scratch state instead of the possibly-corrupted per-worker one. An
// index whose retry also panics is quarantined, not retried again.
//
// Cancellation is checked at chunk-grab boundaries. When ctx is cancelled
// the report's Err is non-nil, retries are skipped, and the caller must
// discard the whole run's outputs: some indices may not have been visited.
// A nil ctx never cancels.
//
// Determinism: with no panics and no cancellation, EachGuard is exactly
// Each. Panic recovery and retries never reorder result slots — fn and
// retry write to per-index slots as under the Each contract — and the
// quarantined set is reported sorted, so downstream bookkeeping that
// consumes it in order is schedule-independent.
func EachGuard(ctx context.Context, n, workers, chunk int, fn func(worker, i int), retry func(i int)) GuardReport {
	if chunk <= 0 {
		chunk = 1
	}
	var rep GuardReport
	var mu sync.Mutex
	var panicked []int
	var messages map[int]string
	note := func(i int, v any) {
		mu.Lock()
		panicked = append(panicked, i)
		if messages == nil {
			messages = make(map[int]string)
		}
		messages[i] = fmt.Sprint(v)
		mu.Unlock()
	}
	guarded := func(worker, i int) {
		defer func() {
			if v := recover(); v != nil {
				note(i, v)
			}
		}()
		fn(worker, i)
	}

	if workers <= 1 || n <= chunk {
		for i := 0; i < n; i++ {
			if resilience.Done(ctx) {
				rep.Err = resilience.Err(ctx)
				return rep
			}
			guarded(0, i)
		}
	} else {
		if workers > n {
			workers = n
		}
		var next int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(worker int) {
				defer wg.Done()
				for {
					if resilience.Done(ctx) {
						return
					}
					start := atomic.AddInt64(&next, int64(chunk)) - int64(chunk)
					if start >= int64(n) {
						return
					}
					end := start + int64(chunk)
					if end > int64(n) {
						end = int64(n)
					}
					for i := start; i < end; i++ {
						guarded(worker, int(i))
					}
				}
			}(w)
		}
		wg.Wait()
		if resilience.Done(ctx) {
			rep.Err = resilience.Err(ctx)
			return rep
		}
	}

	// Retry phase: sequential, ascending, one attempt per panicked index.
	sort.Ints(panicked)
	for _, i := range panicked {
		rep.Recovered++
		again := false
		func() {
			defer func() {
				if v := recover(); v != nil {
					again = true
				}
			}()
			if retry != nil {
				retry(i)
			} else {
				fn(0, i)
			}
		}()
		if again {
			rep.Quarantined = append(rep.Quarantined, i)
			rep.Panics = append(rep.Panics, messages[i])
		}
	}
	return rep
}
