// Package par is the deterministic worker-pool substrate of the parallel
// fault-classification engine. It deliberately exposes only order-free
// primitives: work items are identified by index, every item is processed
// exactly once, and results must be written to per-index slots so that the
// merge order — and therefore every table the pipeline prints — is identical
// for one worker and for N workers. Scheduling is dynamic (an atomic cursor
// with chunked grabs) because per-fault PODEM cost varies by orders of
// magnitude, but scheduling never leaks into results.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Count resolves a requested worker count: values <= 0 select
// runtime.NumCPU() (the "as fast as the hardware allows" default), anything
// positive is honored as-is so tests can oversubscribe a small machine.
func Count(n int) int {
	if n <= 0 {
		return runtime.NumCPU()
	}
	return n
}

// Each runs fn(worker, i) for every i in [0, n), distributing indices over
// the given number of workers in chunks. The worker argument is a dense ID
// in [0, workers) so callers can hand each worker its own scratch state
// (fault-simulation engines, PODEM frames). fn must confine its side effects
// to per-index slots; under that contract the overall result is independent
// of the worker count and of scheduling.
//
// With workers <= 1, or when the whole range fits in one chunk, fn runs
// inline on the calling goroutine as worker 0 — the sequential and parallel
// paths execute the same code.
func Each(n, workers, chunk int, fn func(worker, i int)) {
	if chunk <= 0 {
		chunk = 1
	}
	if workers <= 1 || n <= chunk {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	if workers > n {
		workers = n
	}
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				start := atomic.AddInt64(&next, int64(chunk)) - int64(chunk)
				if start >= int64(n) {
					return
				}
				end := start + int64(chunk)
				if end > int64(n) {
					end = int64(n)
				}
				for i := start; i < end; i++ {
					fn(worker, int(i))
				}
			}
		}(w)
	}
	wg.Wait()
}
