package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestCount(t *testing.T) {
	if got := Count(0); got != runtime.NumCPU() {
		t.Errorf("Count(0) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Count(-3); got != runtime.NumCPU() {
		t.Errorf("Count(-3) = %d, want NumCPU", got)
	}
	if got := Count(7); got != 7 {
		t.Errorf("Count(7) = %d, want 7", got)
	}
}

func TestEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		for _, chunk := range []int{1, 3, 64} {
			const n = 257
			hits := make([]int32, n)
			Each(n, workers, chunk, func(_, i int) {
				atomic.AddInt32(&hits[i], 1)
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d chunk=%d: index %d processed %d times", workers, chunk, i, h)
				}
			}
		}
	}
}

func TestEachWorkerIDsInRange(t *testing.T) {
	// Worker IDs must be dense in [0, workers) so callers can index
	// per-worker scratch. Which workers actually grab items is up to the
	// scheduler (on one CPU a single worker may drain the whole queue).
	var bad int32
	Each(1024, 8, 1, func(w, _ int) {
		if w < 0 || w >= 8 {
			atomic.StoreInt32(&bad, int32(w)+1)
		}
	})
	if bad != 0 {
		t.Errorf("worker ID %d out of range [0,8)", bad-1)
	}
}

func TestEachDeterministicResultSlots(t *testing.T) {
	// The canonical usage pattern: per-index result slots must come out
	// identical regardless of worker count.
	const n = 500
	ref := make([]int, n)
	Each(n, 1, 1, func(_, i int) { ref[i] = i * i })
	for _, workers := range []int{2, 4, 16} {
		got := make([]int, n)
		Each(n, workers, 5, func(_, i int) { got[i] = i * i })
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, got[i], ref[i])
			}
		}
	}
}

func TestEachZeroItems(t *testing.T) {
	called := false
	Each(0, 4, 8, func(_, _ int) { called = true })
	if called {
		t.Error("fn called for empty range")
	}
}
