// Package implic builds a static implication engine over a gate-level
// netlist. For every literal (net, value) it derives the set of literals
// that must hold in any consistent assignment containing it: direct
// implications come from ternary constraint propagation through each
// cell's truth table, and the set is closed under the contrapositive law
// (a=>b implies !b=>!a) and transitivity, which together yield the
// indirect ("extended") implications of SOCRATES-style static learning.
// Literals whose closure is self-contradictory are impossible, so their
// net is a static constant.
//
// The closure supports FIRE-style fault-independent redundancy
// identification (see screen.go): a fault whose excitation or propagation
// requirements conflict with the closure is undetectable, proven with
// zero test-generation searches. Everything here is deterministic — the
// build visits nets and gates in ID order only, so the same circuit
// always produces the same closure regardless of prior runs or worker
// counts.
package implic

import (
	"fmt"
	"hash/fnv"
	"math/bits"
	"sort"

	"dfmresyn/internal/netlist"
)

// Mode selects how the static engine participates in ATPG.
type Mode uint8

// The three staticproof modes.
const (
	// ModeOff disables the static screen entirely.
	ModeOff Mode = iota
	// ModeScreen proves faults undetectable before any PODEM search but
	// leaves the searches themselves untouched, so every table is
	// byte-identical to a run without the screen.
	ModeScreen
	// ModeSeed additionally asserts learned implications inside PODEM's
	// good-circuit deduction, cutting backtracks at the cost of a
	// (still sound and deterministic) different search trajectory.
	ModeSeed
)

// String names the mode using the CLI spelling.
func (m Mode) String() string {
	switch m {
	case ModeOff:
		return "off"
	case ModeScreen:
		return "screen"
	case ModeSeed:
		return "seed"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// ParseMode parses the CLI spelling of a mode.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "off":
		return ModeOff, nil
	case "screen":
		return ModeScreen, nil
	case "seed":
		return ModeSeed, nil
	}
	return ModeOff, fmt.Errorf("implic: unknown staticproof mode %q (want off, screen or seed)", s)
}

// Lit encodes the literal net=val as 2*netID+val.
type Lit int32

// MkLit builds the literal net=val.
func MkLit(net int, val uint8) Lit { return Lit(net<<1) | Lit(val&1) }

// Net returns the literal's net ID.
func (l Lit) Net() int { return int(l >> 1) }

// Val returns the literal's value.
func (l Lit) Val() uint8 { return uint8(l & 1) }

// Neg returns the opposite literal on the same net.
func (l Lit) Neg() Lit { return l ^ 1 }

// MaxLiterals bounds the closure size: above it New refuses to build the
// engine (the transitive closure stores one bitset per literal, so memory
// is quadratic in the literal count). 16384 literals cost at most 32 MiB,
// far above every bundled benchmark (aes_core has ~1.5k nets).
const MaxLiterals = 16384

// Stats summarizes what the build learned.
type Stats struct {
	Nets         int // nets in the circuit
	Constants    int // nets proven statically constant
	Implications int // implication pairs in the closure (excluding x=>x)
}

// Engine holds the implication closure of one circuit. A nil *Engine is
// valid and behaves as "nothing learned" on every query.
type Engine struct {
	c     *netlist.Circuit
	order []*netlist.Gate // topological gate order

	// constVal[net] is the proven constant value of the net, or -1.
	constVal []int8
	// closure[l] is a bitset over literals: bit m set means l => m.
	// Literals of constant nets keep their last computed set but are
	// never consulted (constVal wins).
	closure [][]uint64
	words   int // words per closure bitset

	stats Stats
}

// New builds the implication closure of c. It returns nil when the
// circuit is empty or too large for the quadratic closure (see
// MaxLiterals); callers must treat a nil engine as "no static facts".
// The circuit must be acyclic and pass netlist.Check-level structural
// validity — the builder levelizes it.
func New(c *netlist.Circuit) *Engine {
	nNets := len(c.Nets)
	if nNets == 0 || 2*nNets > MaxLiterals {
		return nil
	}
	e := &Engine{
		c:        c,
		order:    c.Levelize(),
		constVal: make([]int8, nNets),
		words:    (2*nNets + 63) / 64,
	}
	for i := range e.constVal {
		e.constVal[i] = -1
	}
	e.build()
	return e
}

// Circuit returns the circuit the closure was built for.
func (e *Engine) Circuit() *netlist.Circuit { return e.c }

// Stats returns build statistics. Safe on a nil engine.
func (e *Engine) Stats() Stats {
	if e == nil {
		return Stats{}
	}
	return e.stats
}

// ConstNet returns the statically proven constant value of a net and
// whether one is known. Safe on a nil engine.
func (e *Engine) ConstNet(net int) (val uint8, known bool) {
	if e == nil || e.constVal[net] < 0 {
		return 0, false
	}
	return uint8(e.constVal[net]), true
}

// Impossible reports whether the literal can hold in no consistent
// assignment (its net is constant at the opposite value).
func (e *Engine) Impossible(l Lit) bool {
	return e != nil && e.constVal[l.Net()] == int8(l.Val()^1)
}

// Implies reports whether literal a statically forces literal b. It is
// reflexive, and constants are implied by everything. Safe on a nil
// engine (always false except a == b).
func (e *Engine) Implies(a, b Lit) bool {
	if a == b {
		return true
	}
	if e == nil {
		return false
	}
	if e.constVal[b.Net()] == int8(b.Val()) {
		return true
	}
	if e.constVal[a.Net()] >= 0 {
		// A constant-net literal either always holds (then it implies
		// only what everything implies) or is impossible (then it
		// vacuously implies everything).
		return e.constVal[a.Net()] == int8(a.Val()^1)
	}
	return e.closure[a][b>>6]>>(uint(b)&63)&1 == 1
}

// ForEachImplied calls fn for every literal implied by l, in net order,
// excluding l itself and literals on constant nets (those are available
// through ForEachConstant). Safe on a nil engine (no calls).
func (e *Engine) ForEachImplied(l Lit, fn func(net int, val uint8)) {
	if e == nil || e.constVal[l.Net()] >= 0 {
		return
	}
	for wi, w := range e.closure[l] {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &= w - 1
			m := Lit(wi*64 + b)
			if m == l || e.constVal[m.Net()] >= 0 {
				continue
			}
			fn(m.Net(), m.Val())
		}
	}
}

// ForEachConstant calls fn for every statically constant net in net
// order. Safe on a nil engine (no calls).
func (e *Engine) ForEachConstant(fn func(net int, val uint8)) {
	if e == nil {
		return
	}
	for n, v := range e.constVal {
		if v >= 0 {
			fn(n, uint8(v))
		}
	}
}

// Fingerprint hashes the constants and the full closure, for determinism
// checks: two builds over the same circuit must produce equal values.
func (e *Engine) Fingerprint() uint64 {
	if e == nil {
		return 0
	}
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range e.constVal {
		h.Write([]byte{uint8(v + 1)})
	}
	for l, set := range e.closure {
		if e.constVal[Lit(l).Net()] >= 0 {
			continue
		}
		for _, w := range set {
			for i := 0; i < 8; i++ {
				buf[i] = byte(w >> (8 * i))
			}
			h.Write(buf[:])
		}
	}
	return h.Sum64()
}

// build runs the whole pipeline to fixpoint: every round of closure
// construction may prove new constants, which strengthen the next
// round's propagation. Each extra round adds at least one constant, so
// the loop terminates within len(Nets) rounds (in practice one or two).
func (e *Engine) build() {
	p := newProp(e)
	for {
		p.rebase()
		if !e.closeOnce(p) {
			break
		}
	}
	e.stats.Nets = len(e.c.Nets)
	for _, v := range e.constVal {
		if v >= 0 {
			e.stats.Constants++
		}
	}
	for l := range e.closure {
		if e.constVal[Lit(l).Net()] >= 0 {
			continue
		}
		for _, w := range e.closure[l] {
			e.stats.Implications += bits.OnesCount64(w)
		}
		e.stats.Implications-- // drop l => l
	}
}

// closeOnce performs one full closure construction and reports whether
// it discovered new constants (requiring another round).
func (e *Engine) closeOnce(p *prop) bool {
	nLits := 2 * len(e.c.Nets)
	adj := make([][]Lit, nLits)

	// Direct implications: propagate each assumable literal through the
	// circuit and record every value it forces. A contradiction means
	// the literal is impossible, i.e. the net is constant.
	newConst := false
	for l := Lit(0); int(l) < nLits; l++ {
		if e.constVal[l.Net()] >= 0 {
			continue
		}
		forced, ok := p.consequences(l)
		if !ok {
			e.setConst(l.Net(), l.Val()^1)
			p.rebase()
			newConst = true
			continue
		}
		adj[l] = forced
	}
	if newConst {
		// Constants changed mid-sweep; restart with the stronger base.
		return true
	}

	// Contrapositive closure: a=>b adds !b=>!a. Propagation alone is
	// not symmetric (e.g. AND out=1 forces in=1, but in=0 only forces
	// out=0 via this law when the cell hides it behind unknowns).
	for a := Lit(0); int(a) < nLits; a++ {
		for _, b := range adj[a] {
			if e.constVal[b.Net()] < 0 {
				adj[b.Neg()] = append(adj[b.Neg()], a.Neg())
			}
		}
	}
	for _, l := range adj {
		sort.Slice(l, func(i, j int) bool { return l[i] < l[j] })
	}

	// Transitive closure over the implication graph: condense strongly
	// connected components (equivalent literals), then union reachable
	// sets in reverse topological order. Tarjan emits SCCs children-
	// first, so a single pass over the completion order suffices.
	comp, comps := tarjan(adj)
	closure := make([][]uint64, nLits)
	compSet := make([][]uint64, len(comps))
	for ci, members := range comps {
		set := make([]uint64, e.words)
		for _, m := range members {
			set[m>>6] |= 1 << (uint(m) & 63)
			for _, s := range adj[m] {
				if sc := comp[s]; sc != ci {
					for w, sw := range compSet[sc] {
						set[w] |= sw
					}
				} else {
					set[s>>6] |= 1 << (uint(s) & 63)
				}
			}
		}
		compSet[ci] = set
		for _, m := range members {
			closure[m] = set
		}
	}
	e.closure = closure

	// Self-contradiction sweep: a literal implying its own negation, or
	// both polarities of any net, is impossible.
	for l := Lit(0); int(l) < nLits; l++ {
		if e.constVal[l.Net()] >= 0 {
			continue
		}
		set := closure[l]
		bad := set[l.Neg()>>6]>>(uint(l.Neg())&63)&1 == 1
		if !bad {
			for _, w := range set {
				if w&(w>>1)&0x5555555555555555 != 0 {
					bad = true
					break
				}
			}
		}
		if bad {
			e.setConst(l.Net(), l.Val()^1)
			newConst = true
		}
	}
	return newConst
}

func (e *Engine) setConst(net int, val uint8) {
	if e.constVal[net] == int8(val^1) {
		// Both polarities impossible would mean the circuit itself is
		// inconsistent, which cannot happen for a combinational netlist
		// (every complete PI assignment is consistent). Guard anyway.
		panic(fmt.Sprintf("implic: net %d proven constant both 0 and 1", net))
	}
	e.constVal[net] = int8(val)
}

// tarjan condenses the literal implication graph into strongly connected
// components using an iterative Tarjan walk (explicit stack: benchmark
// implication chains can be thousands of literals deep). It returns the
// component of each literal and the members of each component in
// completion (reverse topological) order.
func tarjan(adj [][]Lit) (comp []int, comps [][]Lit) {
	n := len(adj)
	comp = make([]int, n)
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
		comp[i] = -1
	}
	var stack []Lit
	next := int32(0)

	type frame struct {
		v  Lit
		ai int
	}
	var frames []frame
	for root := Lit(0); int(root) < n; root++ {
		if index[root] != -1 {
			continue
		}
		frames = append(frames[:0], frame{v: root})
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			if f.ai == 0 {
				index[v] = next
				low[v] = next
				next++
				stack = append(stack, v)
				onStack[v] = true
			}
			advanced := false
			for f.ai < len(adj[v]) {
				w := adj[v][f.ai]
				f.ai++
				if index[w] == -1 {
					frames = append(frames, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && low[v] > index[w] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			if low[v] == index[v] {
				var members []Lit
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = len(comps)
					members = append(members, w)
					if w == v {
						break
					}
				}
				sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
				comps = append(comps, members)
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if low[p] > low[v] {
					low[p] = low[v]
				}
			}
		}
	}
	return comp, comps
}
