package implic_test

import (
	"math/rand"
	"testing"

	"dfmresyn/internal/atpg"
	"dfmresyn/internal/fault"
	"dfmresyn/internal/implic"
	"dfmresyn/internal/library"
	"dfmresyn/internal/netlist"
)

var lib = library.OSU018Like()

// buildConstOne: g = NAND(a, ~a), constant 1, observed at the output.
func buildConstOne(t *testing.T) (*netlist.Circuit, *netlist.Net) {
	t.Helper()
	c := netlist.New("constone", lib)
	a := c.AddPI("a")
	an := c.AddGate("u0", lib.ByName("INVX1"), a)
	g := c.AddGate("u1", lib.ByName("NAND2X1"), a, an)
	c.MarkPO(g)
	return c, g
}

// buildAbsorb: x = AND(a, b), y = OR(x, a). By absorption y = a, so x
// stuck-at-0 is undetectable: exciting it needs x=1 which forces a=1,
// and a=1 kills sensitization through the OR gate.
func buildAbsorb(t *testing.T) (*netlist.Circuit, *netlist.Net) {
	t.Helper()
	c := netlist.New("absorb", lib)
	a := c.AddPI("a")
	b := c.AddPI("b")
	x := c.AddGate("u0", lib.ByName("AND2X2"), a, b)
	y := c.AddGate("u1", lib.ByName("OR2X2"), x, a)
	c.MarkPO(y)
	return c, x
}

func podemOutcome(t *testing.T, c *netlist.Circuit, f *fault.Fault) atpg.SearchOutcome {
	t.Helper()
	order := c.Levelize()
	levels := c.Levels()
	out, _ := atpg.GenerateOne(c, order, levels, f, 100000, rand.New(rand.NewSource(7)))
	if out == atpg.LimitExceeded {
		t.Fatalf("PODEM aborted on a tiny circuit; raise the limit")
	}
	return out
}

func TestConstantDetection(t *testing.T) {
	c, g := buildConstOne(t)
	e := implic.New(c)
	if e == nil {
		t.Fatal("New returned nil for a small circuit")
	}
	v, known := e.ConstNet(g.ID)
	if !known || v != 1 {
		t.Fatalf("ConstNet(%s) = %d,%v, want 1,true", g.Name, v, known)
	}
	if !e.Impossible(implic.MkLit(g.ID, 0)) {
		t.Errorf("%s=0 should be impossible on a constant-1 net", g.Name)
	}
	if e.Impossible(implic.MkLit(g.ID, 1)) {
		t.Errorf("%s=1 must stay possible", g.Name)
	}
	if st := e.Stats(); st.Constants < 1 {
		t.Errorf("Stats().Constants = %d, want >= 1", st.Constants)
	}
}

func TestConstantFaultsScreenedAndPODEMAgrees(t *testing.T) {
	c, g := buildConstOne(t)
	e := implic.New(c)
	cases := []struct {
		f    *fault.Fault
		want bool
	}{
		// sa1 on a constant-1 net can never be excited.
		{&fault.Fault{Model: fault.StuckAt, Net: g, Value: 1}, true},
		// sa0 would be excitable if the net were observable... but a
		// constant net's value never reaches an output differentially;
		// here g IS the PO, so sa0 is trivially detectable? No: sa0 needs
		// good value 1 (always true) and the site itself is a PO, so it
		// is detectable and must NOT be screened.
		{&fault.Fault{Model: fault.StuckAt, Net: g, Value: 0}, false},
		// Both transition polarities die: slow-to-fall needs g=0 for the
		// launch's excitation, slow-to-rise needs g=0 initialization.
		{&fault.Fault{Model: fault.Transition, Net: g, Value: 1}, true},
		{&fault.Fault{Model: fault.Transition, Net: g, Value: 0}, true},
	}
	for _, tc := range cases {
		if got := e.Undetectable(tc.f); got != tc.want {
			t.Errorf("Undetectable(%v sa/tr%d @ %s) = %v, want %v",
				tc.f.Model, tc.f.Value, tc.f.Net.Name, got, tc.want)
		}
		if tc.f.Model != fault.StuckAt {
			continue
		}
		out := podemOutcome(t, c, tc.f)
		if tc.want && out != atpg.ProvenImpossible {
			t.Errorf("screen says undetectable but PODEM outcome = %v", out)
		}
		if !tc.want && out != atpg.FoundTest {
			t.Errorf("sa%d @ %s: PODEM outcome = %v, want a test", tc.f.Value, tc.f.Net.Name, out)
		}
	}
}

func TestImpliesAndContrapositive(t *testing.T) {
	c, x := buildAbsorb(t)
	e := implic.New(c)
	a := c.NetByName("a")
	b := c.NetByName("b")
	if a == nil || b == nil {
		t.Fatal("missing PI nets")
	}
	// Direct: AND output 1 forces both inputs to 1.
	for _, in := range []*netlist.Net{a, b} {
		if !e.Implies(implic.MkLit(x.ID, 1), implic.MkLit(in.ID, 1)) {
			t.Errorf("x=1 should imply %s=1", in.Name)
		}
		// Contrapositive: input 0 forces the AND output to 0.
		if !e.Implies(implic.MkLit(in.ID, 0), implic.MkLit(x.ID, 0)) {
			t.Errorf("%s=0 should imply x=0 (contrapositive)", in.Name)
		}
	}
	// Implies is reflexive and must not invent facts.
	la := implic.MkLit(a.ID, 1)
	if !e.Implies(la, la) {
		t.Error("Implies must be reflexive")
	}
	if e.Implies(implic.MkLit(a.ID, 1), implic.MkLit(b.ID, 1)) {
		t.Error("a=1 must not imply b=1: the PIs are independent")
	}
}

func TestRedundantStuckAtScreened(t *testing.T) {
	c, x := buildAbsorb(t)
	e := implic.New(c)

	sa0 := &fault.Fault{Model: fault.StuckAt, Net: x, Value: 0}
	if !e.Undetectable(sa0) {
		t.Fatal("x sa0 should be statically proven undetectable (absorption)")
	}
	if out := podemOutcome(t, c, sa0); out != atpg.ProvenImpossible {
		t.Fatalf("soundness: screen proved x sa0 but PODEM outcome = %v", out)
	}

	// x sa1 is detectable (set a=0: y flips 0 -> 1) and must survive.
	sa1 := &fault.Fault{Model: fault.StuckAt, Net: x, Value: 1}
	if e.Undetectable(sa1) {
		t.Fatal("x sa1 is detectable; the screen must not claim it")
	}
	if out := podemOutcome(t, c, sa1); out != atpg.FoundTest {
		t.Fatalf("x sa1: PODEM outcome = %v, want a test", out)
	}
}

func TestBridgeScreen(t *testing.T) {
	c, x := buildAbsorb(t)
	e := implic.New(c)
	a := c.NetByName("a")
	// Dominant bridge a->x: victim=1/aggressor=0 conflicts (x=1 implies
	// a=1); victim=0/aggressor=1 fixes the OR side input to 1, blocking
	// propagation. Both polarities die, so the bridge is undetectable.
	br := &fault.Fault{Model: fault.Bridge, Net: x, Other: a}
	if !e.Undetectable(br) {
		t.Fatal("bridge x<-a should be statically proven undetectable")
	}
	if out := podemOutcome(t, c, br); out != atpg.ProvenImpossible {
		t.Fatalf("soundness: screen proved bridge but PODEM outcome = %v", out)
	}
}

func TestFingerprintDeterministic(t *testing.T) {
	build := func() *implic.Engine {
		c, _ := buildAbsorb(t)
		return implic.New(c)
	}
	f1 := build().Fingerprint()
	f2 := build().Fingerprint()
	if f1 != f2 {
		t.Errorf("Fingerprint differs across identical builds: %x vs %x", f1, f2)
	}
	c, _ := buildConstOne(t)
	if f3 := implic.New(c).Fingerprint(); f3 == f1 {
		t.Errorf("different circuits produced the same fingerprint %x", f3)
	}
}

func TestForEachImpliedAndConstant(t *testing.T) {
	c, x := buildAbsorb(t)
	e := implic.New(c)
	seen := map[implic.Lit]bool{}
	e.ForEachImplied(implic.MkLit(x.ID, 1), func(net int, val uint8) {
		seen[implic.MkLit(net, val)] = true
	})
	a := c.NetByName("a")
	b := c.NetByName("b")
	if !seen[implic.MkLit(a.ID, 1)] || !seen[implic.MkLit(b.ID, 1)] {
		t.Errorf("ForEachImplied(x=1) missed the forced inputs; got %v", seen)
	}

	cc, g := buildConstOne(t)
	ec := implic.New(cc)
	consts := map[int]uint8{}
	ec.ForEachConstant(func(net int, v uint8) { consts[net] = v })
	if v, ok := consts[g.ID]; !ok || v != 1 {
		t.Errorf("ForEachConstant missed %s=1; got %v", g.Name, consts)
	}
}

func TestNilAndEmptyEngine(t *testing.T) {
	var e *implic.Engine
	f := &fault.Fault{Model: fault.StuckAt, Value: 0}
	if e.Undetectable(f) {
		t.Error("nil engine must screen nothing")
	}
	if got := implic.New(netlist.New("empty", lib)); got != nil {
		t.Errorf("New(empty circuit) = %v, want nil", got)
	}
}

func TestParseMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want implic.Mode
	}{
		{"off", implic.ModeOff},
		{"screen", implic.ModeScreen},
		{"seed", implic.ModeSeed},
	} {
		m, err := implic.ParseMode(tc.in)
		if err != nil || m != tc.want {
			t.Errorf("ParseMode(%q) = %v, %v", tc.in, m, err)
		}
		if m.String() != tc.in {
			t.Errorf("Mode(%v).String() = %q, want %q", m, m.String(), tc.in)
		}
	}
	if _, err := implic.ParseMode("bogus"); err == nil {
		t.Error("ParseMode(bogus) should fail")
	}
}

// TestSeededSearchAgreesOnMux runs every stuck-at fault of an
// irredundant circuit through plain and implication-seeded PODEM: both
// must find tests (seeding must not break completeness or soundness).
func TestSeededSearchAgreesOnMux(t *testing.T) {
	c := netlist.New("mux", lib)
	a := c.AddPI("a")
	b := c.AddPI("b")
	s := c.AddPI("s")
	sn := c.AddGate("u0", lib.ByName("INVX1"), s)
	t1 := c.AddGate("u1", lib.ByName("NAND2X1"), a, sn)
	t2 := c.AddGate("u2", lib.ByName("NAND2X1"), b, s)
	y := c.AddGate("u3", lib.ByName("NAND2X1"), t1, t2)
	c.MarkPO(y)

	order := c.Levelize()
	levels := c.Levels()
	e := implic.New(c)
	for _, n := range c.Nets {
		for v := uint8(0); v <= 1; v++ {
			f := &fault.Fault{Model: fault.StuckAt, Net: n, Value: v}
			if e.Undetectable(f) {
				t.Errorf("screen claims sa%d@%s on an irredundant mux", v, n.Name)
				continue
			}
			g := atpg.NewGenerator(c, order, levels, 100000)
			g.SeedImplications(e)
			out, tv := g.Generate(f, rand.New(rand.NewSource(3)))
			if out != atpg.FoundTest || tv == nil {
				t.Errorf("seeded search: sa%d@%s outcome %v, want test", v, n.Name, out)
			}
		}
	}
}
