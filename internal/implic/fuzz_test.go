package implic_test

import (
	"fmt"
	"math/rand"
	"testing"

	"dfmresyn/internal/atpg"
	"dfmresyn/internal/fault"
	"dfmresyn/internal/implic"
	"dfmresyn/internal/netlist"
)

// fuzzCells is the gate menu the fuzzer draws from; the mix covers
// inverting/non-inverting, symmetric and asymmetric truth tables.
var fuzzCells = []string{
	"INVX1", "BUFX2", "NAND2X1", "NOR2X1", "AND2X2", "OR2X2",
	"XOR2X1", "XNOR2X1", "NAND3X1", "AOI21X1", "OAI21X1", "MUX2X1",
}

// circuitFromBytes deterministically grows a small circuit from fuzz
// input: a PI count followed by (cell, fanin...) picks. Duplicate
// fanins are allowed on purpose — they exercise the engine's
// duplicate-input overapproximation. Returns nil when data is too
// short to make at least one gate.
func circuitFromBytes(data []byte) *netlist.Circuit {
	if len(data) < 3 {
		return nil
	}
	c := netlist.New("fuzz", lib)
	npi := 2 + int(data[0])%4
	for i := 0; i < npi; i++ {
		c.AddPI(fmt.Sprintf("pi%d", i))
	}
	nets := append([]*netlist.Net(nil), c.Nets...)
	pos := 1
	for g := 0; g < 12 && pos < len(data); g++ {
		cell := lib.ByName(fuzzCells[int(data[pos])%len(fuzzCells)])
		pos++
		fanin := make([]*netlist.Net, cell.NumInputs())
		for i := range fanin {
			idx := 0
			if pos < len(data) {
				idx = int(data[pos]) % len(nets)
				pos++
			}
			fanin[i] = nets[idx]
		}
		out := c.AddGate(fmt.Sprintf("g%d", g), cell, fanin...)
		nets = append(nets, out)
	}
	if len(c.Gates) == 0 {
		return nil
	}
	// Observe every net nothing reads — the usual shape of a synthesized
	// block, and it keeps most of the circuit relevant to the screen.
	for _, n := range c.Nets {
		if len(n.Fanout) == 0 && !n.IsPO {
			c.MarkPO(n)
		}
	}
	return c
}

// FuzzImplic checks three invariants on randomly grown circuits:
// soundness (static-undetectable is a subset of complete-PODEM
// undetectable), closure determinism (same circuit, same fingerprint),
// and schedule independence (atpg.Run with the screen on produces
// byte-identical statuses at 1 and 3 workers).
func FuzzImplic(f *testing.F) {
	f.Add([]byte{0, 2, 0, 0, 4, 1, 2, 5, 2, 3})
	f.Add([]byte{3, 11, 0, 1, 2, 3, 6, 4, 5, 0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{1, 4, 0, 0, 5, 1, 1, 0, 2, 2, 8, 3, 1, 0})
	f.Add([]byte{2, 9, 0, 1, 2, 9, 3, 4, 0, 10, 1, 2, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		c := circuitFromBytes(data)
		if c == nil {
			t.Skip("not enough bytes for a circuit")
		}
		e := implic.New(c)
		if e == nil {
			t.Fatal("New returned nil for a small circuit")
		}
		if e2 := implic.New(circuitFromBytes(data)); e2.Fingerprint() != e.Fingerprint() {
			t.Fatalf("closure not deterministic: %x vs %x", e.Fingerprint(), e2.Fingerprint())
		}

		// Soundness: every screened stuck-at fault must be proven
		// impossible by an unseeded complete search.
		order := c.Levelize()
		levels := c.Levels()
		list := &fault.List{}
		for _, n := range c.Nets {
			for v := uint8(0); v <= 1; v++ {
				list.Add(&fault.Fault{Model: fault.StuckAt, Net: n, Value: v})
			}
		}
		for _, fa := range list.Faults {
			if !e.Undetectable(fa) {
				continue
			}
			out, _ := atpg.GenerateOne(c, order, levels, fa, 200000, rand.New(rand.NewSource(11)))
			if out == atpg.FoundTest {
				t.Fatalf("UNSOUND: screen proved sa%d@%s but PODEM found a test",
					fa.Value, fa.Net.Name)
			}
		}

		// Worker-count independence with the screen enabled.
		status := func(workers int) []fault.Status {
			l := &fault.List{}
			for _, fa := range list.Faults {
				l.Add(&fault.Fault{Model: fault.StuckAt, Net: fa.Net, Value: fa.Value})
			}
			atpg.Run(c, l, atpg.Config{
				Seed: 42, Workers: workers, Static: implic.ModeScreen,
			})
			st := make([]fault.Status, len(l.Faults))
			for i, fa := range l.Faults {
				st[i] = fa.Status
			}
			return st
		}
		s1 := status(1)
		s3 := status(3)
		for i := range s1 {
			if s1[i] != s3[i] {
				t.Fatalf("fault %d status differs across worker counts: %v vs %v",
					i, s1[i], s3[i])
			}
		}
	})
}
