package implic

import "dfmresyn/internal/netlist"

// prop is a ternary constraint propagator over the circuit. Each net
// holds 0, 1 or unknown (-1); processing a gate enumerates the truth
// table completions consistent with the known values and forces any
// input or output that takes the same value in every completion. An
// empty completion set is a contradiction. The propagator is sound but
// deliberately incomplete (it reasons one gate at a time), which is
// exactly what makes it cheap enough to run once per literal.
type prop struct {
	e *Engine

	// base is the fixpoint of the known constants alone; every
	// per-literal run starts from a copy of it.
	base []int8
	val  []int8

	touched  []int32 // nets assigned during the current run
	queue    []int32 // pending gate IDs, drained FIFO
	head     int
	inq      []bool
	conflict bool
}

func newProp(e *Engine) *prop {
	return &prop{
		e:    e,
		base: make([]int8, len(e.c.Nets)),
		val:  make([]int8, len(e.c.Nets)),
		inq:  make([]bool, len(e.c.Gates)),
	}
}

// rebase recomputes the constants-only fixpoint. Every net it settles is
// itself a constant (it follows from constants alone), so the fixpoint
// is folded straight back into the engine's constant table.
func (p *prop) rebase() {
	for i := range p.val {
		p.val[i] = -1
	}
	p.touched = p.touched[:0]
	p.conflict = false
	// Seed every gate once: cells with constant truth tables (or
	// constant-making fanin) fire without any assigned net.
	for _, g := range p.e.c.Gates {
		p.enqueue(g)
	}
	for n, v := range p.e.constVal {
		if v >= 0 {
			p.assign(n, v)
		}
	}
	p.drain()
	if p.conflict {
		panic("implic: constant set is self-contradictory")
	}
	for _, t := range p.touched {
		if p.e.constVal[t] < 0 {
			p.e.constVal[t] = p.val[t]
		}
	}
	copy(p.base, p.val)
}

// consequences assumes literal l on top of the constant base and returns
// every non-constant literal it forces (in discovery order), or ok=false
// when the assumption is contradictory.
func (p *prop) consequences(l Lit) (forced []Lit, ok bool) {
	copy(p.val, p.base)
	p.touched = p.touched[:0]
	p.conflict = false
	p.assign(l.Net(), int8(l.Val()))
	p.drain()
	if p.conflict {
		return nil, false
	}
	for _, t := range p.touched {
		if int(t) != l.Net() {
			forced = append(forced, MkLit(int(t), uint8(p.val[t])))
		}
	}
	return forced, true
}

func (p *prop) assign(n int, v int8) {
	if p.conflict {
		return
	}
	if cur := p.val[n]; cur >= 0 {
		if cur != v {
			p.conflict = true
		}
		return
	}
	p.val[n] = v
	p.touched = append(p.touched, int32(n))
	net := p.e.c.Nets[n]
	if net.Driver != nil {
		p.enqueue(net.Driver)
	}
	for _, pin := range net.Fanout {
		p.enqueue(pin.Gate)
	}
}

func (p *prop) enqueue(g *netlist.Gate) {
	if !p.inq[g.ID] {
		p.inq[g.ID] = true
		p.queue = append(p.queue, int32(g.ID))
	}
}

// drain processes queued gates to fixpoint. After a conflict it keeps
// popping (to clear the inq flags) but stops doing work.
func (p *prop) drain() {
	for p.head < len(p.queue) {
		g := p.e.c.Gates[p.queue[p.head]]
		p.head++
		p.inq[g.ID] = false
		if !p.conflict {
			p.processGate(g)
		}
	}
	p.queue = p.queue[:0]
	p.head = 0
}

// processGate enumerates the completions of g's unknown pins consistent
// with its truth table and the known output, then forces any pin that is
// uniform across them. Duplicate fanin nets are handled soundly: the
// enumeration over-approximates the feasible set (it allows the copies
// to disagree), which can only weaken the derived implications, never
// produce a false conflict or a false forcing.
func (p *prop) processGate(g *netlist.Gate) {
	tt := g.Type.TT
	n := len(g.Fanin)
	mask := uint(1)<<uint(n) - 1
	var known, kvals uint
	for i, in := range g.Fanin {
		if v := p.val[in.ID]; v >= 0 {
			known |= 1 << uint(i)
			kvals |= uint(v) << uint(i)
		}
	}
	outv := p.val[g.Out.ID]
	free := mask &^ known

	count := 0
	andIn := mask
	var orIn uint
	out0, out1 := false, false
	sub := free
	for {
		a := kvals | sub
		ov := int8(tt.Eval(a))
		if outv < 0 || ov == outv {
			count++
			andIn &= a
			orIn |= a
			if ov == 1 {
				out1 = true
			} else {
				out0 = true
			}
		}
		if sub == 0 {
			break
		}
		sub = (sub - 1) & free
	}
	if count == 0 {
		p.conflict = true
		return
	}
	if outv < 0 && out0 != out1 {
		if out1 {
			p.assign(g.Out.ID, 1)
		} else {
			p.assign(g.Out.ID, 0)
		}
	}
	for i := 0; i < n; i++ {
		if known>>uint(i)&1 == 1 {
			continue
		}
		switch {
		case andIn>>uint(i)&1 == 1:
			p.assign(g.Fanin[i].ID, 1)
		case orIn>>uint(i)&1 == 0:
			p.assign(g.Fanin[i].ID, 0)
		}
		if p.conflict {
			return
		}
	}
}
