package implic

import (
	"dfmresyn/internal/fault"
	"dfmresyn/internal/netlist"
)

// This file implements FIRE-style fault-independent redundancy
// identification on top of the implication closure. A fault is proven
// undetectable when its excitation requirements are statically
// contradictory, or when every path from the fault site to a primary
// output is statically blocked under the consequences of excitation.
// Every check is a sound over-approximation of detectability: the
// screen answers true only when a complete PODEM search would return
// ProvenImpossible, never when it would find a test. (The reverse does
// not hold — the screen is incomplete, and the remaining faults still
// go through the search.)

// Undetectable reports whether the fault is statically proven
// undetectable. Safe on a nil engine (always false). The fault must
// target the circuit the engine was built for.
func (e *Engine) Undetectable(f *fault.Fault) bool {
	if e == nil {
		return false
	}
	switch f.Model {
	case fault.StuckAt:
		return e.stuckAtUndet(f.Net, f.BranchGate, f.BranchPin, f.Value)
	case fault.Transition:
		// The launch pattern must detect stuck-at-Value at the site and
		// the initialization pattern must justify Value there.
		if e.stuckAtUndet(f.Net, f.BranchGate, f.BranchPin, f.Value) {
			return true
		}
		return e.Impossible(MkLit(f.Net.ID, f.Value))
	case fault.Bridge:
		return e.bridgeUndet(f)
	case fault.CellAware:
		return e.cellAwareUndet(f)
	}
	return false
}

// stuckAtUndet screens one stuck-at fault: excitation requires the good
// value Value^1 at the site, and the resulting difference must reach a
// primary output.
func (e *Engine) stuckAtUndet(net *netlist.Net, bg *netlist.Gate, bp int, val uint8) bool {
	exc := MkLit(net.ID, val^1)
	if e.conflicting([]Lit{exc}) {
		return true
	}
	E := eset{e: e, lits: []Lit{exc}}
	if bg != nil {
		return !e.reachPOFromGate(bg, bp, E)
	}
	return !e.reachPO(net, E)
}

// bridgeUndet screens a dominant-model bridge: each polarity needs
// victim=va with aggressor=va^1 (then the victim flips), and the flip
// must reach a primary output.
func (e *Engine) bridgeUndet(f *fault.Fault) bool {
	for _, va := range []uint8{1, 0} {
		lits := []Lit{MkLit(f.Net.ID, va), MkLit(f.Other.ID, va^1)}
		if e.conflicting(lits) {
			continue
		}
		if e.reachPO(f.Net, eset{e: e, lits: lits}) {
			return false
		}
	}
	return true
}

// cellAwareUndet screens a cell-aware fault: every activating input
// assignment of the host gate must be statically unjustifiable or have
// its output difference blocked. For dynamic (two-pattern) activations
// the second pattern must also have at least one justifiable partner
// for the initialization vector.
func (e *Engine) cellAwareUndet(f *fault.Fault) bool {
	g := f.Gate
	beh := f.Behavior
	if beh == nil {
		return false
	}
	n := uint(1) << uint(beh.Inputs)

	for a := uint(0); a < n; a++ {
		if beh.StaticMask>>a&1 == 0 {
			continue
		}
		if e.hostActivates(g, a) {
			return false
		}
	}
	for a2 := uint(0); a2 < n; a2++ {
		anyPair := false
		for a1 := uint(0); a1 < n; a1++ {
			if uint(len(beh.PairMask)) > a1 && beh.PairMask[a1]>>a2&1 == 1 &&
				!e.conflicting(e.hostLits(g, a1, false)) {
				anyPair = true
				break
			}
		}
		if !anyPair {
			continue
		}
		if e.hostActivates(g, a2) {
			return false
		}
	}
	return true
}

// hostLits returns the good-circuit literals forced by driving the host
// gate's inputs to assignment a; withOut additionally includes the
// implied output literal (the cell's truth-table response).
func (e *Engine) hostLits(g *netlist.Gate, a uint, withOut bool) []Lit {
	lits := make([]Lit, 0, len(g.Fanin)+1)
	for i, in := range g.Fanin {
		lits = append(lits, MkLit(in.ID, uint8(a>>uint(i)&1)))
	}
	if withOut {
		lits = append(lits, MkLit(g.Out.ID, g.Type.TT.Eval(a)))
	}
	return lits
}

// hostActivates reports whether host assignment a could be justified
// with the resulting output difference reaching a primary output.
func (e *Engine) hostActivates(g *netlist.Gate, a uint) bool {
	lits := e.hostLits(g, a, true)
	if e.conflicting(lits) {
		return false
	}
	return e.reachPO(g.Out, eset{e: e, lits: lits})
}

// conflicting reports whether the conjunction of lits is statically
// unsatisfiable: a literal is impossible on its own, two literals name
// opposite values of one net, or the closure derives one literal's
// negation from another.
func (e *Engine) conflicting(lits []Lit) bool {
	for i, a := range lits {
		if e.Impossible(a) {
			return true
		}
		for _, b := range lits[i+1:] {
			if a == b.Neg() || e.Implies(a, b.Neg()) || e.Implies(b, a.Neg()) {
				return true
			}
		}
	}
	return false
}

// eset is the conjunction of excitation literals plus everything the
// closure derives from them; has answers "must l hold in every test
// that excites the fault?".
type eset struct {
	e    *Engine
	lits []Lit
}

func (s eset) has(l Lit) bool {
	for _, a := range s.lits {
		if s.e.Implies(a, l) {
			return true
		}
	}
	// Constants hold regardless of the excitation literals.
	v, known := s.e.ConstNet(l.Net())
	return known && v == l.Val()
}

// reachPO reports whether a fault difference originating at the stem
// net origin could reach a primary output under excitation
// consequences E.
func (e *Engine) reachPO(origin *netlist.Net, E eset) bool {
	cone := make([]bool, len(e.c.Nets))
	e.markCone(origin, cone)
	if origin.IsPO {
		return true
	}
	return e.bfs([]*netlist.Net{origin}, cone, E)
}

// reachPOFromGate is the branch-fault variant: the difference enters
// the circuit only through pin `pin` of gate g.
func (e *Engine) reachPOFromGate(g *netlist.Gate, pin int, E eset) bool {
	cone := make([]bool, len(e.c.Nets))
	e.markCone(g.Out, cone)
	if !e.edgePasses(g, pin, cone, E) {
		return false
	}
	if g.Out.IsPO {
		return true
	}
	return e.bfs([]*netlist.Net{g.Out}, cone, E)
}

// markCone marks root and its transitive fanout: the over-approximate
// set of nets whose faulty value may differ from the good value.
func (e *Engine) markCone(root *netlist.Net, cone []bool) {
	cone[root.ID] = true
	queue := []*netlist.Net{root}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, pn := range n.Fanout {
			out := pn.Gate.Out
			if !cone[out.ID] {
				cone[out.ID] = true
				queue = append(queue, out)
			}
		}
	}
}

// bfs walks the effect cone gate by gate, crossing an edge only when
// edgePasses cannot rule the crossing out, and reports whether any
// primary output is reachable.
func (e *Engine) bfs(queue []*netlist.Net, cone []bool, E eset) bool {
	reached := make([]bool, len(e.c.Nets))
	for _, n := range queue {
		reached[n.ID] = true
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, pn := range n.Fanout {
			out := pn.Gate.Out
			if reached[out.ID] {
				continue
			}
			if !e.edgePasses(pn.Gate, pn.Pin, cone, E) {
				continue
			}
			if out.IsPO {
				return true
			}
			reached[out.ID] = true
			queue = append(queue, out)
		}
	}
	return false
}

// edgePasses reports whether a difference arriving on pin `pin` of gate
// g could appear at the gate output. It only ever blocks when pin is
// the gate's sole potential difference carrier; then the side inputs
// carry their good values, those are narrowed by constants and the
// excitation consequences E, and the crossing is blocked when no
// consistent side assignment sensitizes the pin, or when a side value
// required by every sensitizing assignment is refuted by E.
func (e *Engine) edgePasses(g *netlist.Gate, pin int, cone []bool, E eset) bool {
	for j, in := range g.Fanin {
		if j != pin && cone[in.ID] {
			// Another fanin may carry the difference too; multi-path
			// effects (including reconvergence) are never pruned.
			return true
		}
	}
	tt := g.Type.TT
	nIn := len(g.Fanin)
	mask := uint(1)<<uint(nIn) - 1
	pinBit := uint(1) << uint(pin)
	var known, kvals uint
	for j, in := range g.Fanin {
		if j == pin {
			continue
		}
		one := MkLit(in.ID, 1)
		switch {
		case E.has(one):
			known |= 1 << uint(j)
			kvals |= 1 << uint(j)
		case E.has(one.Neg()):
			known |= 1 << uint(j)
		}
	}
	free := mask &^ known &^ pinBit
	sens := false
	andS := mask
	var orS uint
	sub := free
	for {
		a := kvals | sub
		if tt.Eval(a) != tt.Eval(a|pinBit) {
			sens = true
			andS &= a
			orS |= a
		}
		if sub == 0 {
			break
		}
		sub = (sub - 1) & free
	}
	if !sens {
		return false
	}
	for j, in := range g.Fanin {
		if j == pin || known>>uint(j)&1 == 1 {
			continue
		}
		var nl Lit
		switch {
		case andS>>uint(j)&1 == 1:
			nl = MkLit(in.ID, 1)
		case orS>>uint(j)&1 == 0:
			nl = MkLit(in.ID, 0)
		default:
			continue
		}
		if E.has(nl.Neg()) {
			return false
		}
	}
	return true
}
