package power

import (
	"testing"

	"dfmresyn/internal/library"
	"dfmresyn/internal/netlist"
	"dfmresyn/internal/sta"
)

var lib = library.OSU018Like()

func inverterChain(n int) *netlist.Circuit {
	c := netlist.New("chain", lib)
	cur := c.AddPI("a")
	for i := 0; i < n; i++ {
		cur = c.AddGate("", lib.ByName("INVX1"), cur)
	}
	c.MarkPO(cur)
	return c
}

func TestPowerScalesWithSize(t *testing.T) {
	small := Estimate(inverterChain(5), sta.LoadFromFanout(), 4, 1)
	big := Estimate(inverterChain(20), sta.LoadFromFanout(), 4, 1)
	if small.Total <= 0 {
		t.Fatal("power must be positive")
	}
	if big.Total <= small.Total {
		t.Error("bigger circuit must burn more power")
	}
	if big.Leakage <= small.Leakage {
		t.Error("leakage must scale with cell count")
	}
}

func TestInverterActivityPropagates(t *testing.T) {
	c := inverterChain(3)
	r := Estimate(c, sta.LoadFromFanout(), 8, 1)
	// An inverter fed by a random input has activity near 0.5 (2*p*(1-p)
	// with p around 0.5).
	for _, n := range c.Nets {
		a := r.Activity[n.ID]
		if a < 0.40 || a > 0.55 {
			t.Errorf("net %s activity = %.3f, want about 0.5", n.Name, a)
		}
	}
}

func TestConstantNetHasNoActivity(t *testing.T) {
	// k = NAND(a, ~a) is constant 1: zero switching power contribution.
	c := netlist.New("const", lib)
	a := c.AddPI("a")
	an := c.AddGate("u_inv", lib.ByName("INVX1"), a)
	k := c.AddGate("u_k", lib.ByName("NAND2X1"), a, an)
	c.MarkPO(k)
	r := Estimate(c, sta.LoadFromFanout(), 8, 1)
	if r.Activity[k.ID] != 0 {
		t.Errorf("constant net activity = %v, want 0", r.Activity[k.ID])
	}
}

func TestDeterministic(t *testing.T) {
	c := inverterChain(10)
	r1 := Estimate(c, sta.LoadFromFanout(), 4, 7)
	r2 := Estimate(c, sta.LoadFromFanout(), 4, 7)
	if r1.Total != r2.Total || r1.Dynamic != r2.Dynamic {
		t.Error("power estimation not deterministic under fixed seed")
	}
}

func TestLeakageMatchesCells(t *testing.T) {
	c := inverterChain(4)
	r := Estimate(c, sta.LoadFromFanout(), 2, 1)
	want := 4 * lib.ByName("INVX1").Leakage
	if r.Leakage != want {
		t.Errorf("leakage = %v, want %v", r.Leakage, want)
	}
}
