// Package power estimates design power: dynamic switching power from
// simulated signal activities times capacitive load, plus per-cell leakage.
package power

import (
	"math/rand"

	"dfmresyn/internal/netlist"
	"dfmresyn/internal/sim"
	"dfmresyn/internal/sta"
)

// SwitchEnergyScale converts activity x capacitance into the report's power
// unit (arbitrary but consistent across designs, which is all the paper's
// relative Power column needs).
const SwitchEnergyScale = 1.0

// Report is the result of power estimation.
type Report struct {
	Dynamic  float64
	Leakage  float64
	Total    float64
	Activity []float64 // per net ID: toggle probability per cycle
}

// Estimate computes activities by random simulation (blocks of 64 random
// patterns, seeded deterministically) and returns the power report.
func Estimate(c *netlist.Circuit, load sta.LoadModel, blocks int, seed int64) Report {
	if blocks <= 0 {
		blocks = 4
	}
	rng := rand.New(rand.NewSource(seed))
	s := sim.New(c)
	ones := make([]int, len(c.Nets))
	total := 0
	for b := 0; b < blocks; b++ {
		words := sim.RandomWords(rng, len(c.PIs))
		vals := s.Run(words)
		for i, w := range vals {
			ones[i] += popcount(w)
		}
		total += 64
	}

	r := Report{Activity: make([]float64, len(c.Nets))}
	for i := range c.Nets {
		p := float64(ones[i]) / float64(total)
		// Toggle probability for a temporally-independent signal.
		r.Activity[i] = 2 * p * (1 - p)
	}
	for _, n := range c.Nets {
		r.Dynamic += r.Activity[n.ID] * load(n) * SwitchEnergyScale
	}
	for _, g := range c.Gates {
		r.Leakage += g.Type.Leakage
	}
	r.Total = r.Dynamic + r.Leakage
	return r
}

func popcount(w uint64) int {
	n := 0
	for ; w != 0; w &= w - 1 {
		n++
	}
	return n
}
