// Package analyzers implements the vetdfm static checks: a small,
// stdlib-only suite that guards the determinism invariants the flow's
// byte-identical tables depend on. The rules are syntactic — they parse
// with go/parser and walk the AST, with no type checker — so they are
// fast, dependency-free, and deliberately conservative: each rule fires
// only on patterns it can recognize locally, and every finding can be
// waived at the site with a `//vetdfm:ok <rule>` comment on the same or
// the preceding line.
//
// The rules:
//
//   - timenow: no time.Now in deterministic packages. Wall-clock reads
//     make outputs (and any hash of them) run-dependent; deterministic
//     code must take durations as inputs or go through obs.
//   - globalrand: no global math/rand state (rand.Intn, rand.Seed, ...).
//     Global streams are schedule-dependent under concurrency; all
//     randomness must flow from seeded rand.New(rand.NewSource(seed)).
//   - maprange: no map iteration feeding output or hashes without an
//     intervening sort. Go randomizes map order, so a range that prints
//     or writes inside its body produces run-dependent bytes.
//   - sprintfmap: no fmt verb formatting of a map value. %v on a map is
//     ordered, but relying on that couples report bytes to fmt
//     internals, and nested maps in structs are NOT sorted; reports
//     must iterate sorted keys explicitly.
//   - mapgeom: no map iteration feeding geometry ordering — appending
//     geometry literals (Pt, Rect, Seg, Via, GridItem), inserting into a
//     spatial index, or Add-ing a geometry value inside a map-range body.
//     The spatial substrate's determinism contract is ID-ordered,
//     content-deterministic traversal; geometry collected from a map
//     range arrives in randomized order and poisons every scan built on
//     it. Collect into a slice and sort (or iterate IDs) first.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Finding is one rule violation at one position.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// globalRandFuncs are the math/rand top-level functions backed by the
// package-global, lock-shared source. Constructors (New, NewSource,
// NewZipf) are the sanctioned path and are not listed.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
}

// writerCalls recognizes output sinks by method name: the bytes they
// receive become file or report content (or a hash digest), so feeding
// them from a map range is order-dependent.
var writerCalls = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Sum": true, "Sum64": true, "Sum32": true,
}

// fmtPrintFuncs are the fmt functions that render values; inside a map
// range they are output sinks, and with a map argument they trigger
// sprintfmap.
var fmtPrintFuncs = map[string]bool{
	"Sprintf": true, "Sprint": true, "Sprintln": true,
	"Fprintf": true, "Fprint": true, "Fprintln": true,
	"Printf": true, "Print": true, "Println": true,
	"Errorf": true, "Appendf": true,
}

// RunFile analyzes one parsed file and returns the unwaived findings.
func RunFile(fset *token.FileSet, file *ast.File) []Finding {
	a := &analysis{
		fset:     fset,
		file:     file,
		timePkg:  localNameOf(file, "time"),
		randPkg:  localNameOf(file, "math/rand"),
		fmtPkg:   localNameOf(file, "fmt"),
		waivers:  collectWaivers(fset, file),
		mapIdent: map[*ast.Object]bool{},
	}
	a.collectMapIdents()
	ast.Inspect(file, a.visit)
	sort.Slice(a.findings, func(i, j int) bool {
		if a.findings[i].Pos.Line != a.findings[j].Pos.Line {
			return a.findings[i].Pos.Line < a.findings[j].Pos.Line
		}
		return a.findings[i].Pos.Column < a.findings[j].Pos.Column
	})
	return a.findings
}

// RunDir parses every non-test .go file in dir (no recursion) and
// returns the combined findings ordered by file, line, column.
func RunDir(dir string) ([]Finding, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var all []Finding
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		file, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		all = append(all, RunFile(fset, file)...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i].Pos, all[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return all, nil
}

type analysis struct {
	fset     *token.FileSet
	file     *ast.File
	timePkg  string // local name of the time import, "" if absent
	randPkg  string // local name of math/rand, "" if absent
	fmtPkg   string // local name of fmt, "" if absent
	waivers  map[int]map[string]bool
	mapIdent map[*ast.Object]bool
	findings []Finding
}

// localNameOf returns the identifier a file imports path under, or ""
// when the file does not import it. Renamed imports are honored; "_"
// and "." imports return "" (selector-based rules cannot apply).
func localNameOf(file *ast.File, path string) string {
	for _, imp := range file.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil || p != path {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "_" || imp.Name.Name == "." {
				return ""
			}
			return imp.Name.Name
		}
		return path[strings.LastIndex(path, "/")+1:]
	}
	return ""
}

// collectWaivers maps line numbers to the rule names waived there. A
// waiver on line L covers findings on L and L+1, so both trailing and
// preceding comment styles work.
func collectWaivers(fset *token.FileSet, file *ast.File) map[int]map[string]bool {
	w := map[int]map[string]bool{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if !strings.HasPrefix(text, "vetdfm:ok") {
				continue
			}
			rules := strings.Fields(strings.TrimPrefix(text, "vetdfm:ok"))
			line := fset.Position(c.Pos()).Line
			for _, l := range []int{line, line + 1} {
				if w[l] == nil {
					w[l] = map[string]bool{}
				}
				for _, r := range rules {
					w[l][r] = true
				}
			}
		}
	}
	return w
}

// collectMapIdents records every identifier the file declares with a
// syntactically visible map type: var/param/result declarations,
// make(map...) and map-literal assignments. This is the conservative
// core of the no-type-checker design — an ident is treated as a map
// only when its declaration says so in this file.
func (a *analysis) collectMapIdents() {
	mark := func(names []*ast.Ident) {
		for _, n := range names {
			if n.Obj != nil {
				a.mapIdent[n.Obj] = true
			}
		}
	}
	ast.Inspect(a.file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ValueSpec:
			if _, ok := n.Type.(*ast.MapType); ok {
				mark(n.Names)
				return true
			}
			for i, v := range n.Values {
				if i < len(n.Names) && a.isMapExpr(v) {
					mark(n.Names[i : i+1])
				}
			}
		case *ast.Field:
			if _, ok := n.Type.(*ast.MapType); ok {
				mark(n.Names)
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, v := range n.Rhs {
				if id, ok := n.Lhs[i].(*ast.Ident); ok && a.isMapExpr(v) && id.Obj != nil {
					a.mapIdent[id.Obj] = true
				}
			}
		case *ast.RangeStmt:
			// `for k, v := range m` where v is itself a map (map of
			// maps) is out of scope: no declared type to look at.
			return true
		}
		return true
	})
}

// isMapExpr reports whether the expression is syntactically a map: a
// map literal, make(map...), or an ident already known to be one.
func (a *analysis) isMapExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		_, ok := e.Type.(*ast.MapType)
		return ok
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "make" && len(e.Args) > 0 {
			_, ok := e.Args[0].(*ast.MapType)
			return ok
		}
	case *ast.Ident:
		return e.Obj != nil && a.mapIdent[e.Obj]
	case *ast.ParenExpr:
		return a.isMapExpr(e.X)
	}
	return false
}

func (a *analysis) report(pos token.Pos, rule, msg string) {
	p := a.fset.Position(pos)
	if a.waivers[p.Line][rule] {
		return
	}
	a.findings = append(a.findings, Finding{Pos: p, Analyzer: rule, Message: msg})
}

// pkgCall matches a selector call pkg.Fn where pkg is the file-local
// name of an import (not a shadowing local variable of the same name —
// shadowed idents have a non-nil Obj pointing at the local decl).
func pkgCall(call *ast.CallExpr, pkg string) (string, bool) {
	if pkg == "" {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || id.Name != pkg || id.Obj != nil {
		return "", false
	}
	return sel.Sel.Name, true
}

func (a *analysis) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.CallExpr:
		if fn, ok := pkgCall(n, a.timePkg); ok && fn == "Now" {
			a.report(n.Pos(), "timenow",
				"time.Now in a deterministic package; take durations as inputs or route timing through obs")
		}
		if fn, ok := pkgCall(n, a.randPkg); ok && globalRandFuncs[fn] {
			a.report(n.Pos(), "globalrand",
				fmt.Sprintf("global rand.%s; use a seeded rand.New(rand.NewSource(seed)) stream", fn))
		}
		if fn, ok := pkgCall(n, a.fmtPkg); ok && fmtPrintFuncs[fn] {
			for _, arg := range n.Args {
				if a.isMapExpr(arg) {
					a.report(arg.Pos(), "sprintfmap",
						"formatting a map with fmt; iterate sorted keys explicitly so report bytes never depend on fmt's map handling")
					break
				}
			}
		}
	case *ast.RangeStmt:
		if a.isMapExpr(n.X) {
			if a.bodyWritesOutput(n.Body) {
				a.report(n.Pos(), "maprange",
					"map range feeds output or a hash; map order is randomized — collect and sort keys first")
			}
			if pos, ok := bodyFeedsGeometry(n.Body); ok {
				a.report(pos, "mapgeom",
					"map range feeds geometry ordering; the spatial substrate needs ID-ordered traversal — collect and sort before building geometry")
			}
		}
	}
	return true
}

// geomTypeNames are the geometry value types whose ordering the spatial
// substrate depends on.
var geomTypeNames = map[string]bool{
	"Pt": true, "Rect": true, "Seg": true, "Via": true, "GridItem": true,
}

// isGeomLit reports whether the expression is a composite literal of a
// geometry type, bare (Pt{...}) or package-qualified (geom.Pt{...}).
func isGeomLit(e ast.Expr) bool {
	cl, ok := e.(*ast.CompositeLit)
	if !ok {
		return false
	}
	switch t := cl.Type.(type) {
	case *ast.Ident:
		return geomTypeNames[t.Name]
	case *ast.SelectorExpr:
		return geomTypeNames[t.Sel.Name]
	}
	return false
}

// bodyFeedsGeometry reports whether a statement block (at any depth)
// builds ordered geometry: appends a geometry literal, calls a spatial
// index's Insert method, or Add-s a geometry literal. Like the writer
// sinks, the method receivers are untyped, so Insert is matched by name
// alone; waive vetted sites with //vetdfm:ok mapgeom.
func bodyFeedsGeometry(body *ast.BlockStmt) (token.Pos, bool) {
	var pos token.Pos
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
			for _, arg := range call.Args[1:] {
				if isGeomLit(arg) {
					pos, found = call.Pos(), true
					return false
				}
			}
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if sel.Sel.Name == "Insert" {
				pos, found = call.Pos(), true
				return false
			}
			if sel.Sel.Name == "Add" {
				for _, arg := range call.Args {
					if isGeomLit(arg) {
						pos, found = call.Pos(), true
						return false
					}
				}
			}
		}
		return true
	})
	return pos, found
}

// bodyWritesOutput reports whether a statement block (at any depth)
// calls an output sink: a fmt print function or a Write*/Sum* method.
func (a *analysis) bodyWritesOutput(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn, ok := pkgCall(call, a.fmtPkg); ok && fmtPrintFuncs[fn] {
			found = true
			return false
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && writerCalls[sel.Sel.Name] {
			// Method sinks: anything.Write(...), b.WriteString(...),
			// h.Sum64()... The receiver is untyped here, so this is an
			// over-approximation; waive false positives at the site.
			found = true
			return false
		}
		return true
	})
	return found
}
