package analyzers

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func run(t *testing.T, src string) []Finding {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("fixture does not parse: %v", err)
	}
	return RunFile(fset, file)
}

func rules(fs []Finding) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = f.Analyzer
	}
	return out
}

func wantRules(t *testing.T, fs []Finding, want ...string) {
	t.Helper()
	got := rules(fs)
	if len(got) != len(want) {
		t.Fatalf("findings %v, want rules %v", fs, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("findings %v, want rules %v", fs, want)
		}
	}
}

func TestTimeNow(t *testing.T) {
	fs := run(t, `package p
import "time"
func f() time.Time { return time.Now() }
`)
	wantRules(t, fs, "timenow")
	if !strings.Contains(fs[0].Message, "time.Now") {
		t.Errorf("message %q should name the call", fs[0].Message)
	}
}

func TestTimeNowWaived(t *testing.T) {
	wantRules(t, run(t, `package p
import "time"
func f() time.Time {
	return time.Now() //vetdfm:ok timenow
}
`))
	wantRules(t, run(t, `package p
import "time"
func f() time.Time {
	//vetdfm:ok timenow
	return time.Now()
}
`))
	// A waiver for a different rule does not apply.
	wantRules(t, run(t, `package p
import "time"
func f() time.Time {
	return time.Now() //vetdfm:ok globalrand
}
`), "timenow")
}

func TestTimeUsageOtherThanNowAllowed(t *testing.T) {
	wantRules(t, run(t, `package p
import "time"
var d time.Duration = 3 * time.Second
func f(t0 time.Time) time.Duration { return time.Since(t0) - d }
`))
}

func TestGlobalRand(t *testing.T) {
	fs := run(t, `package p
import "math/rand"
func f() int { rand.Seed(1); return rand.Intn(10) }
`)
	wantRules(t, fs, "globalrand", "globalrand")
}

func TestSeededRandAllowed(t *testing.T) {
	wantRules(t, run(t, `package p
import "math/rand"
func f(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}
`))
}

func TestRenamedImport(t *testing.T) {
	wantRules(t, run(t, `package p
import mrand "math/rand"
func f() int { return mrand.Intn(10) }
`), "globalrand")
}

func TestShadowedPackageNameNotFlagged(t *testing.T) {
	wantRules(t, run(t, `package p
type clock struct{}
func (clock) Now() int { return 0 }
func f() int {
	time := clock{}
	return time.Now()
}
`))
}

func TestMapRangeFeedingOutput(t *testing.T) {
	fs := run(t, `package p
import "fmt"
func f(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v)
	}
}
`)
	wantRules(t, fs, "maprange")
}

func TestMapRangeFeedingHash(t *testing.T) {
	wantRules(t, run(t, `package p
import "hash/fnv"
func f(m map[string]int) uint64 {
	h := fnv.New64a()
	for k := range m {
		h.Write([]byte(k))
	}
	return h.Sum64()
}
`), "maprange")
}

func TestMapRangeCollectingKeysAllowed(t *testing.T) {
	wantRules(t, run(t, `package p
import (
	"fmt"
	"sort"
)
func f(m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k, m[k])
	}
}
`))
}

func TestMapRangeLocalMake(t *testing.T) {
	wantRules(t, run(t, `package p
import "fmt"
func f() {
	m := make(map[int]int)
	for k := range m {
		fmt.Println(k)
	}
}
`), "maprange")
}

func TestSliceRangeAllowed(t *testing.T) {
	wantRules(t, run(t, `package p
import "fmt"
func f(s []string) {
	for _, v := range s {
		fmt.Println(v)
	}
}
`))
}

func TestSprintfMap(t *testing.T) {
	wantRules(t, run(t, `package p
import "fmt"
func f(m map[string]int) string {
	return fmt.Sprintf("%v", m)
}
`), "sprintfmap")
}

func TestSprintfMapLiteral(t *testing.T) {
	wantRules(t, run(t, `package p
import "fmt"
func f() string {
	return fmt.Sprint(map[int]int{1: 2})
}
`), "sprintfmap")
}

func TestSprintfNonMapAllowed(t *testing.T) {
	wantRules(t, run(t, `package p
import "fmt"
func f(s []int, x int) string {
	return fmt.Sprintf("%v %d", s, x)
}
`))
}

func TestFindingString(t *testing.T) {
	fs := run(t, `package p
import "time"
func f() time.Time { return time.Now() }
`)
	s := fs[0].String()
	if !strings.Contains(s, "fixture.go:3:") || !strings.Contains(s, "timenow:") {
		t.Errorf("Finding.String() = %q, want file:line:col and rule", s)
	}
}

func TestRunDirOnThisPackage(t *testing.T) {
	fs, err := RunDir(".")
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		t.Errorf("the analyzers package must be clean under its own rules; got %v", fs)
	}
}

func TestMapGeomAppend(t *testing.T) {
	fs := run(t, `package p
import "dfmresyn/internal/geom"
func f(m map[int]int) []geom.Pt {
	var pts []geom.Pt
	for k, v := range m {
		pts = append(pts, geom.Pt{X: k, Y: v})
	}
	return pts
}
`)
	wantRules(t, fs, "mapgeom")
	if !strings.Contains(fs[0].Message, "ID-ordered") {
		t.Errorf("message %q should state the determinism contract", fs[0].Message)
	}
}

func TestMapGeomBareLitAndInsert(t *testing.T) {
	wantRules(t, run(t, `package p
type Rect struct{ X0, Y0, X1, Y1 int }
func f(m map[int]int) []Rect {
	var rs []Rect
	for k := range m {
		rs = append(rs, Rect{X0: k})
	}
	return rs
}
`), "mapgeom")
	wantRules(t, run(t, `package p
func f(m map[int32]Item, idx *Grid) {
	for id, it := range m {
		idx.Insert(id, it.R)
	}
}
`), "mapgeom")
	wantRules(t, run(t, `package p
func f(m map[int]int, w *dirtyIndex) {
	for k := range m {
		w.Add(Rect{X0: k})
	}
}
`), "mapgeom")
}

func TestMapGeomCleanAndWaived(t *testing.T) {
	// Slice iteration building geometry is the sanctioned pattern.
	wantRules(t, run(t, `package p
import "dfmresyn/internal/geom"
func f(ids []int) []geom.Pt {
	var pts []geom.Pt
	for _, id := range ids {
		pts = append(pts, geom.Pt{X: id})
	}
	return pts
}
`))
	// Non-geometry appends inside a map range are maprange's business
	// (and only when they feed output), not mapgeom's.
	wantRules(t, run(t, `package p
func f(m map[int]int) []int {
	var ks []int
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}
`))
	wantRules(t, run(t, `package p
import "dfmresyn/internal/geom"
func f(m map[int]int) []geom.Pt {
	var pts []geom.Pt
	for k := range m { //vetdfm:ok mapgeom
		pts = append(pts, geom.Pt{X: k})
	}
	return pts
}
`))
}
