package fault

import (
	"strings"
	"testing"

	"dfmresyn/internal/library"
	"dfmresyn/internal/netlist"
	"dfmresyn/internal/switchsim"
)

var lib = library.OSU018Like()

// buildFan: stem a feeds an INV and a BUF; INV feeds a NAND with b.
func buildFan(t *testing.T) (*netlist.Circuit, map[string]*netlist.Net) {
	t.Helper()
	c := netlist.New("fan", lib)
	a := c.AddPI("a")
	b := c.AddPI("b")
	inv := c.AddGate("u_inv", lib.ByName("INVX1"), a)
	buf := c.AddGate("u_buf", lib.ByName("BUFX2"), a)
	nand := c.AddGate("u_nand", lib.ByName("NAND2X1"), inv, b)
	c.MarkPO(nand)
	c.MarkPO(buf)
	return c, map[string]*netlist.Net{"a": a, "b": b, "inv": inv, "buf": buf, "nand": nand}
}

func TestCorrespondingGatesStem(t *testing.T) {
	_, nets := buildFan(t)
	// Stem fault on a: corresponds to both sinks (INV, BUF); a has no
	// driver.
	f := &Fault{Model: StuckAt, Net: nets["a"], Value: 0}
	gs := f.CorrespondingGates()
	if len(gs) != 2 {
		t.Fatalf("stem fault corresponds to %d gates, want 2", len(gs))
	}
	// Fault on inv output: driver (INV) + sink (NAND).
	f2 := &Fault{Model: StuckAt, Net: nets["inv"], Value: 1}
	if got := len(f2.CorrespondingGates()); got != 2 {
		t.Fatalf("internal net fault corresponds to %d gates, want 2", got)
	}
}

func TestCorrespondingGatesBranch(t *testing.T) {
	_, nets := buildFan(t)
	invGate := nets["inv"].Driver
	f := &Fault{Model: StuckAt, Net: nets["a"], Value: 0,
		BranchGate: invGate, BranchPin: 0}
	gs := f.CorrespondingGates()
	// Branch fault: only the affected sink (a has no driver).
	if len(gs) != 1 || gs[0] != invGate {
		t.Fatalf("branch fault gates = %v", gs)
	}
}

func TestCorrespondingGatesBridge(t *testing.T) {
	_, nets := buildFan(t)
	f := &Fault{Model: Bridge, Net: nets["inv"], Other: nets["buf"]}
	gs := f.CorrespondingGates()
	// inv: driver INV + sink NAND; buf: driver BUF (PO, no sinks) = 3.
	if len(gs) != 3 {
		t.Fatalf("bridge corresponds to %d gates, want 3", len(gs))
	}
}

func TestCorrespondingGatesCellAware(t *testing.T) {
	_, nets := buildFan(t)
	g := nets["nand"].Driver
	f := &Fault{Model: CellAware, Internal: true, Gate: g}
	gs := f.CorrespondingGates()
	if len(gs) != 1 || gs[0] != g {
		t.Fatalf("cell-aware fault gates = %v", gs)
	}
}

func TestTwoPattern(t *testing.T) {
	_, nets := buildFan(t)
	sa := &Fault{Model: StuckAt, Net: nets["a"]}
	tr := &Fault{Model: Transition, Net: nets["a"]}
	if sa.TwoPattern() {
		t.Error("stuck-at is single-pattern")
	}
	if !tr.TwoPattern() {
		t.Error("transition is two-pattern")
	}
	caStatic := &Fault{Model: CellAware, Behavior: &switchsim.Behavior{Inputs: 2, StaticMask: 1}}
	caDyn := &Fault{Model: CellAware, Behavior: &switchsim.Behavior{Inputs: 2, PairMask: []uint64{1}}}
	if caStatic.TwoPattern() {
		t.Error("static cell-aware is single-pattern")
	}
	if !caDyn.TwoPattern() {
		t.Error("dynamic-only cell-aware is two-pattern")
	}
}

func TestListCountsAndCoverage(t *testing.T) {
	_, nets := buildFan(t)
	l := &List{}
	f1 := l.Add(&Fault{Model: StuckAt, Net: nets["a"], Value: 0})
	f2 := l.Add(&Fault{Model: StuckAt, Net: nets["a"], Value: 1})
	f3 := l.Add(&Fault{Model: CellAware, Internal: true, Gate: nets["nand"].Driver})
	f4 := l.Add(&Fault{Model: Bridge, Net: nets["inv"], Other: nets["buf"]})
	if f1.ID != 0 || f4.ID != 3 {
		t.Error("IDs not assigned sequentially")
	}
	f1.Status = Detected
	f2.Status = Undetectable
	f3.Status = Undetectable
	f4.Status = Aborted

	c := l.Count()
	if c.Total != 4 || c.Internal != 1 || c.External != 3 {
		t.Errorf("counts wrong: %+v", c)
	}
	if c.Detected != 1 || c.Undetectable != 2 || c.Aborted != 1 {
		t.Errorf("status counts wrong: %+v", c)
	}
	if c.UndetectableInt != 1 || c.UndetectableExt != 1 {
		t.Errorf("undetectable split wrong: %+v", c)
	}
	if got := l.Coverage(); got != 0.5 {
		t.Errorf("coverage = %v, want 0.5", got)
	}
	if got := len(l.UndetectableFaults()); got != 2 {
		t.Errorf("undetectable list = %d", got)
	}
	if got := len(l.Undetected()); got != 1 {
		t.Errorf("undetected = %d, want 1 (the aborted one)", got)
	}
}

func TestEmptyListCoverage(t *testing.T) {
	l := &List{}
	if l.Coverage() != 1 {
		t.Error("empty list coverage must be 1")
	}
}

func TestStringForms(t *testing.T) {
	_, nets := buildFan(t)
	cases := []*Fault{
		{Model: StuckAt, Net: nets["a"], Value: 0, Guideline: "DEN.01"},
		{Model: Transition, Net: nets["a"], Value: 1, Guideline: "VIA.11"},
		{Model: StuckAt, Net: nets["a"], Value: 1, BranchGate: nets["inv"].Driver, BranchPin: 0, Guideline: "VIA.12"},
		{Model: Bridge, Net: nets["inv"], Other: nets["buf"], Guideline: "MET.13"},
		{Model: CellAware, Internal: true, Gate: nets["nand"].Driver,
			Defect: switchsim.Defect{Kind: switchsim.TransStuckOpen, T: 1}, Guideline: "VIA.04"},
	}
	for _, f := range cases {
		s := f.String()
		if !strings.Contains(s, f.Guideline) {
			t.Errorf("%q missing guideline", s)
		}
		if !strings.Contains(s, f.Model.String()) {
			t.Errorf("%q missing model name", s)
		}
	}
	for m, want := range map[Model]string{StuckAt: "stuck-at", Transition: "transition",
		Bridge: "bridge", CellAware: "cell-aware"} {
		if m.String() != want {
			t.Errorf("Model(%d) = %q", m, m.String())
		}
	}
	for s, want := range map[Status]string{Untried: "untried", Detected: "detected",
		Undetectable: "undetectable", Aborted: "aborted"} {
		if s.String() != want {
			t.Errorf("Status(%d) = %q", s, s.String())
		}
	}
}
