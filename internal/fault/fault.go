// Package fault defines the fault universe the paper's flow targets: the
// gate-level logic faults obtained by translating DFM-guideline violations
// into likely shorts and opens inside standard cells (internal faults) and
// on the routing between cells (external faults). Four models are used, as
// in Section II of the paper: stuck-at, transition, bridging, and
// cell-aware faults modeled by a UDFM.
package fault

import (
	"fmt"

	"dfmresyn/internal/netlist"
	"dfmresyn/internal/switchsim"
)

// Model is the fault model of a fault.
type Model uint8

// The four fault models.
const (
	StuckAt Model = iota
	Transition
	Bridge
	CellAware
)

// String names the model.
func (m Model) String() string {
	switch m {
	case StuckAt:
		return "stuck-at"
	case Transition:
		return "transition"
	case Bridge:
		return "bridge"
	case CellAware:
		return "cell-aware"
	}
	return fmt.Sprintf("model(%d)", uint8(m))
}

// Status is the test-generation status of a fault.
type Status uint8

// Fault statuses assigned by ATPG / fault simulation.
const (
	Untried      Status = iota
	Detected            // a test in T detects it
	Undetectable        // proven undetectable (member of U)
	Aborted             // search limit exceeded without proof
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Untried:
		return "untried"
	case Detected:
		return "detected"
	case Undetectable:
		return "undetectable"
	case Aborted:
		return "aborted"
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// Fault is one target fault.
//
// Site semantics by model:
//
//   - StuckAt / Transition: Net is the fault site. If BranchGate is non-nil
//     the fault is on the branch feeding pin BranchPin of that gate (an
//     open on one fanout branch); otherwise it is a stem fault affecting
//     every sink. Value is the stuck value; for Transition, Value is the
//     value the slow node is stuck at during launch (0 = slow-to-rise).
//   - Bridge: Net is the victim, Other the aggressor, using the dominant
//     model: when the two nets carry opposite values the victim assumes
//     the aggressor's value. A physical short yields two Fault records,
//     one per direction.
//   - CellAware: Gate is the host instance; Behavior gives the activation
//     masks derived by switch-level simulation of Defect.
type Fault struct {
	ID       int
	Model    Model
	Internal bool

	Net        *netlist.Net
	BranchGate *netlist.Gate
	BranchPin  int
	Value      uint8
	Other      *netlist.Net

	Gate     *netlist.Gate
	Defect   switchsim.Defect
	Behavior *switchsim.Behavior

	// Guideline records which DFM guideline's violation produced the
	// fault (e.g. "VIA.07").
	Guideline string

	Status Status
}

// TwoPattern reports whether detecting the fault requires a pattern pair.
func (f *Fault) TwoPattern() bool {
	switch f.Model {
	case Transition:
		return true
	case CellAware:
		return f.Behavior != nil && f.Behavior.StaticMask == 0
	}
	return false
}

// String renders a short identity for the fault.
func (f *Fault) String() string {
	loc := "ext"
	if f.Internal {
		loc = "int"
	}
	switch f.Model {
	case StuckAt, Transition:
		site := f.Net.Name
		if f.BranchGate != nil {
			site = fmt.Sprintf("%s->%s.%d", f.Net.Name, f.BranchGate.Name, f.BranchPin)
		}
		return fmt.Sprintf("%s/%s sa%d@%s [%s]", f.Model, loc, f.Value, site, f.Guideline)
	case Bridge:
		return fmt.Sprintf("%s/%s %s<-%s [%s]", f.Model, loc, f.Net.Name, f.Other.Name, f.Guideline)
	case CellAware:
		return fmt.Sprintf("%s/%s %s:%s [%s]", f.Model, loc, f.Gate.Name, f.Defect, f.Guideline)
	}
	return "fault(?)"
}

// CorrespondingGates returns the gates that correspond to the fault in the
// sense of Section II: the host gate for an internal fault; for an external
// fault, every gate with the fault on its inputs or outputs (the driver and
// the affected sinks; for bridges, both nets' gates).
func (f *Fault) CorrespondingGates() []*netlist.Gate {
	var gates []*netlist.Gate
	add := func(g *netlist.Gate) {
		if g == nil {
			return
		}
		for _, have := range gates {
			if have == g {
				return
			}
		}
		gates = append(gates, g)
	}
	switch f.Model {
	case CellAware:
		add(f.Gate)
	case Bridge:
		for _, n := range []*netlist.Net{f.Net, f.Other} {
			add(n.Driver)
			for _, p := range n.Fanout {
				add(p.Gate)
			}
		}
	default: // StuckAt, Transition
		add(f.Net.Driver)
		if f.BranchGate != nil {
			add(f.BranchGate)
		} else {
			for _, p := range f.Net.Fanout {
				add(p.Gate)
			}
		}
	}
	return gates
}

// List is an ordered fault list with summary accessors.
type List struct {
	Faults []*Fault
}

// Add appends a fault, assigning its ID.
func (l *List) Add(f *Fault) *Fault {
	f.ID = len(l.Faults)
	l.Faults = append(l.Faults, f)
	return f
}

// Len returns the number of faults.
func (l *List) Len() int { return len(l.Faults) }

// Counts tallies faults by internal/external and by status.
type Counts struct {
	Total, Internal, External        int
	Detected, Undetectable, Aborted  int
	UndetectableInt, UndetectableExt int
	ByModel                          map[Model]int
	UndetectableByModel              map[Model]int
}

// Count computes summary statistics of the list.
func (l *List) Count() Counts {
	c := Counts{ByModel: make(map[Model]int), UndetectableByModel: make(map[Model]int)}
	for _, f := range l.Faults {
		c.Total++
		if f.Internal {
			c.Internal++
		} else {
			c.External++
		}
		c.ByModel[f.Model]++
		switch f.Status {
		case Detected:
			c.Detected++
		case Undetectable:
			c.Undetectable++
			c.UndetectableByModel[f.Model]++
			if f.Internal {
				c.UndetectableInt++
			} else {
				c.UndetectableExt++
			}
		case Aborted:
			c.Aborted++
		}
	}
	return c
}

// Undetected returns the faults not yet detected (candidates for ATPG).
func (l *List) Undetected() []*Fault {
	var out []*Fault
	for _, f := range l.Faults {
		if f.Status == Untried || f.Status == Aborted {
			out = append(out, f)
		}
	}
	return out
}

// UndetectableFaults returns the proven-undetectable faults (the set U).
func (l *List) UndetectableFaults() []*Fault {
	var out []*Fault
	for _, f := range l.Faults {
		if f.Status == Undetectable {
			out = append(out, f)
		}
	}
	return out
}

// Coverage returns the paper's coverage metric Cov = 1 - U/F.
func (l *List) Coverage() float64 {
	if len(l.Faults) == 0 {
		return 1
	}
	u := 0
	for _, f := range l.Faults {
		if f.Status == Undetectable {
			u++
		}
	}
	return 1 - float64(u)/float64(len(l.Faults))
}
