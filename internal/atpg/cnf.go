// SAT escalation tier: when a backtrack-limited PODEM search gives up on a
// fault (LimitExceeded), the fault's support/output cone is Tseitin-encoded
// into CNF and handed to the deterministic CDCL solver in internal/sat for a
// definitive verdict — FoundTest with a witness vector, or ProvenImpossible.
// The encoding mirrors podem.go's injection semantics model by model, so the
// escalator answers exactly the question the search was asking.
//
// Encoding sketch. Two copies of the relevant circuit slice share variables
// outside the fault-effect cone:
//
//   - good variables cover the transitive fanin closure of the cone's gate
//     supports, the excitation/justification condition nets, and (for
//     bridges) the aggressor — every net whose good value can influence
//     detection. Each driven net gets one consistency clause per input
//     assignment of its gate's truth table (<= 2^6 clauses of <= 7 literals).
//   - faulty variables cover only the cone (the fault site and its
//     transitive fanout); outside the cone faulty equals good, so cone gates
//     read side inputs directly from the good variables.
//   - the site's faulty value carries the injection: a stem stuck-at is a
//     unit clause, a fanout-branch fault re-evaluates its gate with the
//     branch pin pinned, a bridge equates the victim's faulty value with the
//     aggressor's good value, and a cell-aware host complements its output
//     (its activation condition is imposed as unit clauses, exactly like
//     PODEM's excitation conditions).
//   - one difference variable per cone primary output is constrained to
//     imply good != faulty there, and the detection clause demands at least
//     one difference. A cone that reaches no primary output is undetectable
//     without solving.
//
// Static implications (internal/implic, seed mode) are asserted as unit
// clauses (constants) and binary clauses (learned pairs) over the good
// variables. They are consequences of circuit consistency, so they never
// exclude a real witness — they only sharpen unit propagation.
package atpg

import (
	"math/rand"

	"dfmresyn/internal/fault"
	"dfmresyn/internal/implic"
	"dfmresyn/internal/netlist"
	"dfmresyn/internal/sat"
)

// SATStats accounts for the solver work one escalation spent.
type SATStats struct {
	// Solves counts CDCL runs (a multi-instance fault — transition,
	// bridge, cell-aware — may need several).
	Solves int
	// Conflicts / Decisions / Propagations total the solver's search
	// effort across those runs.
	Conflicts    int64
	Decisions    int64
	Propagations int64
}

// Escalator encodes faults over one circuit and resolves them with the CDCL
// solver. It is stateless across faults (each Resolve builds fresh solver
// instances), so one escalator may be shared by concurrent workers.
type Escalator struct {
	c   *netlist.Circuit
	eng *implic.Engine // optional: implications seeded as clauses
}

// NewEscalator prepares an escalation tier over c. eng, when non-nil, is a
// static implication engine over the same circuit whose facts are seeded
// into every encoding; nil skips the seeding.
func NewEscalator(c *netlist.Circuit, eng *implic.Engine) *Escalator {
	return &Escalator{c: c, eng: eng}
}

// Resolve runs the complete SAT escalation for fault f and returns a
// definitive FoundTest (with a witness; unconstrained primary inputs are
// filled from rng) or ProvenImpossible — never LimitExceeded: the solver is
// complete and has no budget. The verdict and witness are a pure function of
// (circuit, fault, implication engine, rng stream), independent of worker
// scheduling.
func (e *Escalator) Resolve(f *fault.Fault, rng *rand.Rand) (SearchOutcome, *TestVec, SATStats) {
	st := SATStats{}
	switch f.Model {
	case fault.StuckAt:
		if vec, ok := e.solveStuckAt(f, &st, rng); ok {
			return FoundTest, &TestVec{Vec: vec}, st
		}
		return ProvenImpossible, nil, st

	case fault.Transition:
		// Launch: detect stuck-at-Value at the site; init: justify Value.
		launch := &fault.Fault{Model: fault.StuckAt, Net: f.Net,
			BranchGate: f.BranchGate, BranchPin: f.BranchPin, Value: f.Value}
		vec, ok := e.solveStuckAt(launch, &st, rng)
		if !ok {
			return ProvenImpossible, nil, st
		}
		init, ok2 := e.solveJustify([]condition{{net: f.Net, val: f.Value}}, &st, rng)
		if !ok2 {
			return ProvenImpossible, nil, st
		}
		return FoundTest, &TestVec{Init: init, Vec: vec}, st

	case fault.Bridge:
		for _, va := range []uint8{1, 0} {
			inj := injection{bridgeVictim: f.Net, bridgeSrc: f.Other}
			conds := []condition{
				{net: f.Net, val: va},
				{net: f.Other, val: va ^ 1},
			}
			if vec, ok := e.solveDetect(inj, conds, &st, rng); ok {
				return FoundTest, &TestVec{Vec: vec}, st
			}
		}
		return ProvenImpossible, nil, st

	case fault.CellAware:
		return e.resolveCellAware(f, &st, rng)
	}
	return ProvenImpossible, nil, st
}

// solveStuckAt encodes a stem or fanout-branch stuck-at detection instance.
func (e *Escalator) solveStuckAt(f *fault.Fault, st *SATStats, rng *rand.Rand) ([]uint8, bool) {
	inj := injection{}
	if f.BranchGate != nil {
		inj.branchGate = f.BranchGate
		inj.branchPin = f.BranchPin
		inj.branchVal = f.Value
	} else {
		inj.stemNet = f.Net
		inj.stemVal = f.Value
	}
	conds := []condition{{net: f.Net, val: f.Value ^ 1}}
	return e.solveDetect(inj, conds, st, rng)
}

// hostConds returns the activation conditions of a cell-aware host
// assignment: every gate input at its bit of asg.
func hostConds(g *netlist.Gate, asg uint) []condition {
	conds := make([]condition, 0, len(g.Fanin))
	for i, in := range g.Fanin {
		conds = append(conds, condition{net: in, val: uint8(asg >> uint(i) & 1)})
	}
	return conds
}

// resolveCellAware mirrors podem.generateCellAware: every static activating
// assignment, then every dynamic (init, launch) pair, each resolved
// completely.
func (e *Escalator) resolveCellAware(f *fault.Fault, st *SATStats, rng *rand.Rand) (SearchOutcome, *TestVec, SATStats) {
	g := f.Gate
	beh := f.Behavior
	n := uint(1) << uint(beh.Inputs)

	for a := uint(0); a < n; a++ {
		if beh.StaticMask>>a&1 == 0 {
			continue
		}
		if vec, ok := e.solveDetect(injection{hostGate: g, hostAsg: a}, hostConds(g, a), st, rng); ok {
			return FoundTest, &TestVec{Vec: vec}, *st
		}
	}
	if len(beh.PairMask) == 0 {
		return ProvenImpossible, nil, *st
	}
	for a2 := uint(0); a2 < n; a2++ {
		anyPair := false
		for a1 := uint(0); a1 < n; a1++ {
			if uint(len(beh.PairMask)) > a1 && beh.PairMask[a1]>>a2&1 == 1 {
				anyPair = true
				break
			}
		}
		if !anyPair {
			continue
		}
		vec, ok := e.solveDetect(injection{hostGate: g, hostAsg: a2}, hostConds(g, a2), st, rng)
		if !ok {
			continue
		}
		for a1 := uint(0); a1 < n; a1++ {
			if uint(len(beh.PairMask)) <= a1 || beh.PairMask[a1]>>a2&1 == 0 {
				continue
			}
			if init, ok2 := e.solveJustify(hostConds(g, a1), st, rng); ok2 {
				return FoundTest, &TestVec{Init: init, Vec: vec}, *st
			}
		}
	}
	return ProvenImpossible, nil, *st
}

// cnfInst is one CNF instance under construction: the variable maps from
// nets to solver variables and the injection being encoded.
type cnfInst struct {
	c    *netlist.Circuit
	s    *sat.Solver
	gvar []int32 // per net: good-circuit variable, -1 when absent
	fvar []int32 // per net: faulty-circuit variable (cone only), -1 when absent
	cone []bool
}

// siteOf returns the net where an injection's fault effect originates
// (mirrors podem.siteNet).
func siteOf(inj injection) *netlist.Net {
	switch {
	case inj.stemNet != nil:
		return inj.stemNet
	case inj.bridgeVictim != nil:
		return inj.bridgeVictim
	case inj.branchGate != nil:
		return inj.branchGate.Out
	case inj.hostGate != nil:
		return inj.hostGate.Out
	}
	return nil
}

// solveDetect builds and solves one detection instance. It returns the
// witness vector and true on SAT; false is a proof that no test detects the
// injected fault under the given conditions.
func (e *Escalator) solveDetect(inj injection, conds []condition, st *SATStats, rng *rand.Rand) ([]uint8, bool) {
	c := e.c
	site := siteOf(inj)
	if site == nil {
		return nil, false
	}

	// Fault-effect cone: the site and its transitive fanout.
	cone := make([]bool, len(c.Nets))
	cone[site.ID] = true
	queue := []*netlist.Net{site}
	anyPO := false
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n.IsPO {
			anyPO = true
		}
		for _, pin := range n.Fanout {
			out := pin.Gate.Out
			if !cone[out.ID] {
				cone[out.ID] = true
				queue = append(queue, out)
			}
		}
	}
	if !anyPO {
		return nil, false // effect cannot reach an output: undetectable
	}

	// Good support: condition nets, the aggressor, the site, every cone
	// gate's fanins, and every cone primary output (for the difference
	// clauses), closed under transitive fanin.
	need := make([]bool, len(c.Nets))
	var stack []*netlist.Net
	mark := func(n *netlist.Net) {
		if !need[n.ID] {
			need[n.ID] = true
			stack = append(stack, n)
		}
	}
	for _, cd := range conds {
		mark(cd.net)
	}
	if inj.bridgeSrc != nil {
		mark(inj.bridgeSrc)
	}
	mark(site)
	for _, g := range c.Gates {
		if !cone[g.Out.ID] {
			continue
		}
		mark(g.Out)
		for _, in := range g.Fanin {
			mark(in)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n.Driver != nil {
			for _, in := range n.Driver.Fanin {
				mark(in)
			}
		}
	}

	ci := &cnfInst{c: c, s: sat.New(), cone: cone}
	ci.allocVars(need)

	// Good-circuit consistency for every supported driven net.
	for _, n := range c.Nets {
		if need[n.ID] && n.Driver != nil {
			ci.gateClauses(n.Driver, ci.gvar[n.ID], ci.gvarsOf(n.Driver), -1, 0)
		}
	}

	// Faulty-circuit consistency over the cone. The site carries the
	// injection; downstream cone gates re-evaluate with cone fanins read
	// from the faulty variables and side inputs from the good ones.
	for _, n := range c.Nets {
		if !cone[n.ID] {
			continue
		}
		if n == site {
			ci.injectSite(inj, n)
			continue
		}
		ci.gateClauses(n.Driver, ci.fvar[n.ID], ci.mixedVarsOf(n.Driver), -1, 0)
	}

	// Excitation / activation conditions as unit clauses on good values.
	for _, cd := range conds {
		ci.s.AddClause(sat.PosLit(int(ci.gvar[cd.net.ID]), cd.val))
	}

	// Detection: at least one cone primary output must differ.
	var diffs []sat.Lit
	for _, po := range c.POs {
		if !cone[po.ID] {
			continue
		}
		d := ci.s.NewVar()
		g := int(ci.gvar[po.ID])
		f := int(ci.fvar[po.ID])
		// d -> (g != f), i.e. (¬d ∨ g ∨ f) ∧ (¬d ∨ ¬g ∨ ¬f).
		ci.s.AddClause(sat.MkLit(d, true), sat.MkLit(g, false), sat.MkLit(f, false))
		ci.s.AddClause(sat.MkLit(d, true), sat.MkLit(g, true), sat.MkLit(f, true))
		diffs = append(diffs, sat.MkLit(d, false))
	}
	ci.s.AddClause(diffs...)

	e.seedImplications(ci)
	return ci.solve(st, rng)
}

// solveJustify builds and solves a pure good-circuit justification instance
// (transition initialization, cell-aware pair initialization): find an input
// vector under which every condition net holds its required value.
func (e *Escalator) solveJustify(conds []condition, st *SATStats, rng *rand.Rand) ([]uint8, bool) {
	c := e.c
	need := make([]bool, len(c.Nets))
	var stack []*netlist.Net
	mark := func(n *netlist.Net) {
		if !need[n.ID] {
			need[n.ID] = true
			stack = append(stack, n)
		}
	}
	for _, cd := range conds {
		mark(cd.net)
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n.Driver != nil {
			for _, in := range n.Driver.Fanin {
				mark(in)
			}
		}
	}
	ci := &cnfInst{c: c, s: sat.New(), cone: make([]bool, len(c.Nets))}
	ci.allocVars(need)
	for _, n := range c.Nets {
		if need[n.ID] && n.Driver != nil {
			ci.gateClauses(n.Driver, ci.gvar[n.ID], ci.gvarsOf(n.Driver), -1, 0)
		}
	}
	for _, cd := range conds {
		ci.s.AddClause(sat.PosLit(int(ci.gvar[cd.net.ID]), cd.val))
	}
	e.seedImplications(ci)
	return ci.solve(st, rng)
}

// allocVars assigns solver variables in net-ID order (good first, then
// faulty) — a fixed order, so variable numbering and therefore the solver's
// trajectory are deterministic.
func (ci *cnfInst) allocVars(need []bool) {
	ci.gvar = make([]int32, len(ci.c.Nets))
	ci.fvar = make([]int32, len(ci.c.Nets))
	for i := range ci.gvar {
		ci.gvar[i], ci.fvar[i] = -1, -1
	}
	for _, n := range ci.c.Nets {
		if need[n.ID] {
			ci.gvar[n.ID] = int32(ci.s.NewVar())
		}
	}
	for _, n := range ci.c.Nets {
		if ci.cone[n.ID] {
			ci.fvar[n.ID] = int32(ci.s.NewVar())
		}
	}
}

// gvarsOf returns the good variables of a gate's fanins.
func (ci *cnfInst) gvarsOf(g *netlist.Gate) []int32 {
	vars := make([]int32, len(g.Fanin))
	for i, in := range g.Fanin {
		vars[i] = ci.gvar[in.ID]
	}
	return vars
}

// mixedVarsOf returns a cone gate's fanin variables: faulty inside the cone,
// good outside (where faulty equals good).
func (ci *cnfInst) mixedVarsOf(g *netlist.Gate) []int32 {
	vars := make([]int32, len(g.Fanin))
	for i, in := range g.Fanin {
		if ci.cone[in.ID] {
			vars[i] = ci.fvar[in.ID]
		} else {
			vars[i] = ci.gvar[in.ID]
		}
	}
	return vars
}

// gateClauses emits the consistency clauses tying outVar to gate g's
// function of inVars: one clause per input assignment. forcedPin >= 0 pins
// that input to forcedVal inside the function (the fanout-branch injection)
// and drops it from the clauses — the faulty gate simply computes a
// one-variable-smaller function.
func (ci *cnfInst) gateClauses(g *netlist.Gate, outVar int32, inVars []int32, forcedPin int, forcedVal uint8) {
	n := len(g.Fanin)
	tt := g.Type.TT
	lits := make([]sat.Lit, 0, n+1)
	for a := uint(0); a < 1<<uint(n); a++ {
		if forcedPin >= 0 && uint8(a>>uint(forcedPin)&1) != forcedVal {
			continue
		}
		lits = lits[:0]
		for i := 0; i < n; i++ {
			if i == forcedPin {
				continue
			}
			// "some input differs from a" escapes the clause...
			lits = append(lits, sat.PosLit(int(inVars[i]), uint8(a>>uint(i)&1)).Neg())
		}
		// ...otherwise the output takes the table value.
		lits = append(lits, sat.PosLit(int(outVar), tt.Eval(a)))
		ci.s.AddClause(lits...)
	}
}

// injectSite emits the faulty-value definition of the fault site.
func (ci *cnfInst) injectSite(inj injection, site *netlist.Net) {
	fv := int(ci.fvar[site.ID])
	switch {
	case inj.stemNet != nil:
		// Stem stuck-at: the faulty value is the stuck value, period.
		ci.s.AddClause(sat.PosLit(fv, inj.stemVal))
	case inj.bridgeVictim != nil:
		// Dominant bridge: the victim assumes the aggressor's good value.
		src := int(ci.gvar[inj.bridgeSrc.ID])
		ci.s.AddClause(sat.MkLit(fv, true), sat.MkLit(src, false))
		ci.s.AddClause(sat.MkLit(fv, false), sat.MkLit(src, true))
	case inj.branchGate != nil:
		// Fanout-branch stuck-at: the site gate re-evaluates with the
		// branch pin pinned to the stuck value.
		ci.gateClauses(inj.branchGate, ci.fvar[site.ID], ci.mixedVarsOf(inj.branchGate),
			inj.branchPin, inj.branchVal)
	case inj.hostGate != nil:
		// Cell-aware host: under its activation condition (imposed as unit
		// clauses by the caller) the output complements.
		gv := int(ci.gvar[site.ID])
		ci.s.AddClause(sat.MkLit(fv, false), sat.MkLit(gv, false))
		ci.s.AddClause(sat.MkLit(fv, true), sat.MkLit(gv, true))
	}
}

// seedImplications asserts the static engine's facts over the instance's
// good variables: constants as unit clauses and learned implication pairs as
// binary clauses. Facts mentioning nets outside the encoded support are
// skipped — they cannot constrain anything the instance reasons about.
func (e *Escalator) seedImplications(ci *cnfInst) {
	if e.eng == nil {
		return
	}
	e.eng.ForEachConstant(func(n int, v uint8) {
		if ci.gvar[n] >= 0 {
			ci.s.AddClause(sat.PosLit(int(ci.gvar[n]), v))
		}
	})
	for _, n := range ci.c.Nets {
		if ci.gvar[n.ID] < 0 || n.IsPI {
			continue
		}
		for _, val := range []uint8{0, 1} {
			from := sat.PosLit(int(ci.gvar[n.ID]), val).Neg()
			e.eng.ForEachImplied(implic.MkLit(n.ID, val), func(m int, w uint8) {
				if ci.gvar[m] >= 0 {
					ci.s.AddClause(from, sat.PosLit(int(ci.gvar[m]), w))
				}
			})
		}
	}
}

// solve runs the instance and, on SAT, extracts the witness vector over the
// circuit's primary inputs: encoded inputs read the model, the rest fill
// from rng (exactly like PODEM's fillVector).
func (ci *cnfInst) solve(st *SATStats, rng *rand.Rand) ([]uint8, bool) {
	before := ci.s.Stats()
	ok := ci.s.Solve()
	after := ci.s.Stats()
	st.Solves++
	st.Conflicts += after.Conflicts - before.Conflicts
	st.Decisions += after.Decisions - before.Decisions
	st.Propagations += after.Propagations - before.Propagations
	if !ok {
		return nil, false
	}
	vec := make([]uint8, len(ci.c.PIs))
	for i, pi := range ci.c.PIs {
		if v := ci.gvar[pi.ID]; v >= 0 {
			if ci.s.Value(int(v)) {
				vec[i] = 1
			}
		} else {
			vec[i] = uint8(rng.Intn(2))
		}
	}
	return vec, true
}
