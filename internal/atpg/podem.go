// Package atpg implements automatic test pattern generation for the DFM
// fault universe: a PODEM test generator with five-valued logic,
// backtrack-limited complete search (providing proofs of undetectability),
// a random-pattern bootstrap phase, and reverse-order test-set compaction.
package atpg

import (
	"math/rand"
	"sort"

	"dfmresyn/internal/fault"
	"dfmresyn/internal/implic"
	"dfmresyn/internal/library"
	"dfmresyn/internal/logic"
	"dfmresyn/internal/netlist"
)

// SearchOutcome is the result of one complete PODEM search.
type SearchOutcome uint8

// Outcomes of a PODEM search.
const (
	FoundTest SearchOutcome = iota
	ProvenImpossible
	LimitExceeded
)

// condition is a required good value on a net (excitation condition or
// justification target).
type condition struct {
	net *netlist.Net
	val uint8
}

// Condition is an externally-imposed requirement on the good value of a
// net, usable as an extra constraint on a search (see
// Generator.GenerateWith). The double-fault baseline uses it to demand the
// activation condition of an undetectable fault while detecting a
// neighbouring one.
type Condition struct {
	Net *netlist.Net
	Val uint8
}

// injection describes how the fault modifies five-valued evaluation.
type injection struct {
	// stemNet/stemVal: the net is forced to stemVal in the faulty circuit.
	stemNet *netlist.Net
	stemVal uint8
	// branchGate/branchPin/branchVal: only this gate input is forced.
	branchGate *netlist.Gate
	branchPin  int
	branchVal  uint8
	// hostGate + flip: cell-aware host; when the good inputs match
	// hostAsg exactly the output is complemented.
	hostGate *netlist.Gate
	hostAsg  uint
	// bridgeVictim/bridgeSrc: victim takes the good value of source.
	bridgeVictim *netlist.Net
	bridgeSrc    *netlist.Net
	none         bool // pure justification (no fault)
}

// podem is one complete-search engine instance over a circuit.
type podem struct {
	c      *netlist.Circuit
	order  []*netlist.Gate
	levels []int

	vals  []logic.V5 // per net, current implied values
	good  []logic.V5 // per net, good-circuit ternary values (0/1/X as V5)
	piVal []int8     // per PI position: -1 unassigned, else 0/1

	inj        injection
	conds      []condition
	extra      []condition // externally-imposed conditions on detection searches
	backtracks int
	btTotal    int // cumulative backtracks across every search (telemetry)
	limit      int

	// reusable scratch
	xreach []bool

	// v5tab caches per-cell five-valued evaluation tables.
	v5tab map[*library.Cell]*logic.V5Table

	// learned, when non-nil (seed mode), is the static implication engine
	// whose constants and learned implications are asserted into the
	// good-circuit deduction after every simulation pass. cone is the
	// fault-effect cone of the current injection: only nets outside it
	// may inherit an asserted good value as their composite value.
	learned *implic.Engine
	cone    []bool
}

func newPodem(c *netlist.Circuit, order []*netlist.Gate, levels []int, limit int) *podem {
	p := &podem{
		c:      c,
		order:  order,
		levels: levels,
		vals:   make([]logic.V5, len(c.Nets)),
		good:   make([]logic.V5, len(c.Nets)),
		piVal:  make([]int8, len(c.PIs)),
		limit:  limit,
		xreach: make([]bool, len(c.Nets)),
		v5tab:  make(map[*library.Cell]*logic.V5Table),
	}
	for _, g := range c.Gates {
		if _, ok := p.v5tab[g.Type]; !ok {
			p.v5tab[g.Type] = g.Type.TT.BuildV5Table()
		}
	}
	return p
}

// evalGate evaluates a gate through the cached five-valued table.
func (p *podem) evalGate(g *netlist.Gate, in []logic.V5) logic.V5 {
	return p.v5tab[g.Type].Eval(in)
}

type decision struct {
	pi      int
	val     uint8
	flipped bool
}

// search runs a complete PODEM search for the configured injection and
// conditions. On FoundTest, the returned vector has every PI specified
// (unassigned PIs are filled from rng).
func (p *podem) search(rng *rand.Rand) (SearchOutcome, []uint8) {
	for i := range p.piVal {
		p.piVal[i] = -1
	}
	p.backtracks = 0
	if p.learned != nil {
		p.computeCone()
	}
	var stack []decision

	for {
		p.imply()
		if p.detected() {
			return FoundTest, p.fillVector(rng)
		}
		objNet, objVal, ok := p.objective()
		if ok {
			pi, val, ok2 := p.backtrace(objNet, objVal)
			if !ok2 {
				// The good-value backtrace fails when the objective
				// net's good value is already known and only the
				// faulty side is unresolved (propagation
				// objectives). Walk the composite-value X chain to
				// a PI that actually feeds the unresolved cone.
				pi, ok2 = p.valsBacktrace(objNet)
				val = objVal
			}
			if !ok2 {
				// Last resort: any unassigned PI in the support of
				// the region the fault effect can still traverse.
				// Completeness is preserved because objective()
				// still reports the branch as live.
				pi, val, ok2 = p.firstFreePI()
			}
			if ok2 {
				stack = append(stack, decision{pi: pi, val: val})
				p.piVal[pi] = int8(val)
				continue
			}
		}
		// Backtrack.
		for {
			if len(stack) == 0 {
				return ProvenImpossible, nil
			}
			top := &stack[len(stack)-1]
			if !top.flipped {
				top.flipped = true
				top.val ^= 1
				p.piVal[top.pi] = int8(top.val)
				p.backtracks++
				p.btTotal++
				if p.backtracks > p.limit {
					return LimitExceeded, nil
				}
				break
			}
			p.piVal[top.pi] = -1
			stack = stack[:len(stack)-1]
		}
	}
}

// imply performs full five-valued forward implication from the current PI
// assignment, maintaining both the pure-good ternary values (p.good) and
// the faulty-circuit composite values (p.vals).
func (p *podem) imply() {
	// Pass 1: exact ternary good values for every net. The faulty pass
	// needs these complete (a bridge source may lie later in topological
	// order than its victim).
	var gbuf, fbuf [8]logic.V5
	for i, n := range p.c.PIs {
		var v logic.V5
		switch p.piVal[i] {
		case 0:
			v = logic.Zero
		case 1:
			v = logic.One
		default:
			v = logic.X
		}
		p.good[n.ID] = v
	}
	for _, g := range p.order {
		gin := gbuf[:len(g.Fanin)]
		for i, in := range g.Fanin {
			gin[i] = p.good[in.ID]
		}
		p.good[g.Out.ID] = p.evalGate(g, gin)
	}
	if p.learned != nil {
		p.assertLearned()
	}

	// Pass 2: faulty-composite values with the injection applied.
	for _, n := range p.c.PIs {
		p.vals[n.ID] = p.injectStem(n, p.good[n.ID])
	}
	for _, g := range p.order {
		gin := gbuf[:len(g.Fanin)]
		fin := fbuf[:len(g.Fanin)]
		for i, in := range g.Fanin {
			gin[i] = p.good[in.ID]
			fin[i] = p.vals[in.ID]
		}
		if p.inj.branchGate == g {
			// The branch input sees the forced value in the faulty
			// circuit; its good projection is the net's good value.
			gb, known := fin[p.inj.branchPin].Good()
			if known {
				fin[p.inj.branchPin] = logic.FromBits(gb, p.inj.branchVal)
			} else {
				fin[p.inj.branchPin] = logic.X
			}
		}
		var fv logic.V5
		if p.inj.hostGate == g {
			fv = p.hostEval(g, gin, p.good[g.Out.ID])
		} else {
			fv = p.evalGate(g, fin)
		}
		v := p.injectStem(g.Out, fv)
		if p.learned != nil && v == logic.X && !p.cone[g.Out.ID] {
			// Outside the fault-effect cone faulty equals good, so an
			// asserted good value is also the composite value.
			if gb, known := p.good[g.Out.ID].Good(); known {
				v = logic.FromBit(gb)
			}
		}
		p.vals[g.Out.ID] = v
	}
}

// assertLearned strengthens the good-circuit ternary values with the
// static engine's facts: constants, the implication closure of every
// known good value, and the gate re-evaluations those assertions
// unlock, iterated to fixpoint. Primary inputs are never asserted —
// they belong to the search (and to the random fill of found vectors).
// Every asserted value is a sound consequence of the current partial
// assignment, so pruning stays exact and the search stays complete.
func (p *podem) assertLearned() {
	e := p.learned
	var gbuf [8]logic.V5
	e.ForEachConstant(func(n int, v uint8) {
		if p.good[n] == logic.X && !p.c.Nets[n].IsPI {
			p.good[n] = logic.FromBit(v)
		}
	})
	for {
		changed := false
		for n := range p.good {
			gb, known := p.good[n].Good()
			if !known {
				continue
			}
			e.ForEachImplied(implic.MkLit(n, gb), func(m int, w uint8) {
				if p.good[m] == logic.X && !p.c.Nets[m].IsPI {
					p.good[m] = logic.FromBit(w)
					changed = true
				}
			})
		}
		for _, g := range p.order {
			if p.good[g.Out.ID] != logic.X {
				continue
			}
			gin := gbuf[:len(g.Fanin)]
			for i, in := range g.Fanin {
				gin[i] = p.good[in.ID]
			}
			if v := p.evalGate(g, gin); v != logic.X {
				p.good[g.Out.ID] = v
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// computeCone marks the fault-effect cone of the current injection: the
// site net and its transitive fanout. A pure justification run has no
// site and an empty cone.
func (p *podem) computeCone() {
	if p.cone == nil {
		p.cone = make([]bool, len(p.c.Nets))
	}
	for i := range p.cone {
		p.cone[i] = false
	}
	site := p.siteNet()
	if site == nil {
		return
	}
	p.cone[site.ID] = true
	queue := []*netlist.Net{site}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, pin := range n.Fanout {
			out := pin.Gate.Out
			if !p.cone[out.ID] {
				p.cone[out.ID] = true
				queue = append(queue, out)
			}
		}
	}
}

// injectStem applies a stem-forced faulty value or a bridge at net n.
func (p *podem) injectStem(n *netlist.Net, v logic.V5) logic.V5 {
	if p.inj.stemNet == n {
		gb, known := v.Good()
		if !known {
			return logic.X
		}
		return logic.FromBits(gb, p.inj.stemVal)
	}
	if p.inj.bridgeVictim == n {
		gb, known := v.Good()
		if !known {
			return logic.X
		}
		sb, sknown := p.good[p.inj.bridgeSrc.ID].Good()
		if !sknown {
			return logic.X
		}
		return logic.FromBits(gb, sb)
	}
	return v
}

// hostEval computes the cell-aware host gate's faulty-composite output: the
// cell output flips exactly when the good input assignment equals hostAsg.
func (p *podem) hostEval(g *netlist.Gate, gin []logic.V5, gv logic.V5) logic.V5 {
	match := true // true: assignment known and matches
	for i, v := range gin {
		gb, known := v.Good()
		if !known {
			// Could still match or not: if mismatch is already
			// certain, output is fault-free; otherwise unknown.
			match = false
			if !p.canMatchHost(gin) {
				return gv
			}
			return logic.X
		}
		if uint(gb) != p.inj.hostAsg>>uint(i)&1 {
			return gv // definite mismatch: fault-free behavior
		}
		_ = i
	}
	if !match {
		return logic.X
	}
	gb, known := gv.Good()
	if !known {
		return logic.X
	}
	return logic.FromBits(gb, gb^1)
}

// canMatchHost reports whether the partially-known good inputs can still
// complete to hostAsg.
func (p *podem) canMatchHost(gin []logic.V5) bool {
	for i, v := range gin {
		gb, known := v.Good()
		if known && uint(gb) != p.inj.hostAsg>>uint(i)&1 {
			return false
		}
	}
	return true
}

// faninVal returns the composite value gate g actually sees on input i:
// for the branch-fault gate this applies the forced value to the faulty
// projection.
func (p *podem) faninVal(g *netlist.Gate, i int) logic.V5 {
	v := p.vals[g.Fanin[i].ID]
	if p.inj.branchGate == g && p.inj.branchPin == i {
		gb, known := v.Good()
		if !known {
			return logic.X
		}
		return logic.FromBits(gb, p.inj.branchVal)
	}
	return v
}

// detected reports whether a fault effect has reached a primary output —
// or, for pure justification runs, whether all conditions hold.
func (p *podem) detected() bool {
	if p.inj.none {
		for _, c := range p.conds {
			gb, known := p.good[c.net.ID].Good()
			if !known || gb != c.val {
				return false
			}
		}
		return true
	}
	for _, po := range p.c.POs {
		if p.vals[po.ID].IsError() {
			return true
		}
	}
	return false
}

// objective returns the next (net, value) goal, or ok=false when the
// current assignment can never lead to detection (triggering backtrack).
func (p *podem) objective() (*netlist.Net, uint8, bool) {
	// Observability prune first: the fault effect originates at the site
	// net; if no path of X/error values leads from the site to a primary
	// output, no extension of the current assignment can detect the
	// fault. This fires long before excitation is complete and disposes
	// of faults in unobservable logic immediately.
	if !p.inj.none {
		if site := p.siteNet(); site != nil && !p.sitePathExists(site) {
			return nil, 0, false
		}
	}

	// Unsatisfied conditions next (excitation / justification).
	for _, c := range p.conds {
		gb, known := p.good[c.net.ID].Good()
		if !known {
			return c.net, c.val, true
		}
		if gb != c.val {
			return nil, 0, false // condition contradicted
		}
	}
	if p.inj.none {
		return nil, 0, false // all conditions met handled by detected()
	}

	// Conditions met: the fault must now be excited somewhere. Find the
	// D-frontier; if the error has not appeared and cannot appear,
	// backtrack.
	errSeen := false
	var frontier []*netlist.Gate
	for _, g := range p.order {
		out := p.vals[g.Out.ID]
		if out.IsError() {
			errSeen = true
			continue
		}
		if out != logic.X {
			continue
		}
		for i := range g.Fanin {
			if p.faninVal(g, i).IsError() {
				frontier = append(frontier, g)
				break
			}
		}
	}
	// Also: the error may sit directly on a PO-driving net already
	// (detected() would have caught it). If no errored net exists at all
	// and excitation conditions are met, the error site itself is X or
	// the effect was blocked.
	if !errSeen && len(frontier) == 0 {
		// The site may still become errored once more inputs are
		// assigned (site value X). Find the site net; if it is X,
		// set an objective that defines it.
		if n, v, ok := p.siteObjective(); ok {
			return n, v, true
		}
		return nil, 0, false
	}
	if len(frontier) == 0 {
		return nil, 0, false // error exists but frontier empty: blocked everywhere
	}

	// X-path check: some frontier gate must reach a PO through X nets.
	if !p.xPathExists(frontier) {
		return nil, 0, false
	}

	// Try frontier gates closest to a PO first; the branch is dead only
	// if no frontier gate can pass the error under any completion.
	sort.Slice(frontier, func(i, j int) bool {
		return p.levels[frontier[i].Out.ID] > p.levels[frontier[j].Out.ID]
	})
	for _, fg := range frontier {
		if n, v, ok := p.propagationObjective(fg); ok {
			return n, v, true
		}
	}
	return nil, 0, false
}

// siteNet returns the net where the fault effect originates.
func (p *podem) siteNet() *netlist.Net {
	switch {
	case p.inj.stemNet != nil:
		return p.inj.stemNet
	case p.inj.bridgeVictim != nil:
		return p.inj.bridgeVictim
	case p.inj.branchGate != nil:
		return p.inj.branchGate.Out
	case p.inj.hostGate != nil:
		return p.inj.hostGate.Out
	}
	return nil
}

// sitePathExists reports whether the site's (current or future) error can
// still reach a primary output through nets whose values are X or already
// erroneous. A site with a known non-error value cannot produce an error
// under any extension (values are monotone), so it returns false then.
func (p *podem) sitePathExists(site *netlist.Net) bool {
	v := p.vals[site.ID]
	if v != logic.X && !v.IsError() {
		return false
	}
	reach := p.xreach
	for i := range reach {
		reach[i] = false
	}
	reach[site.ID] = true
	queue := []*netlist.Net{site}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n.IsPO {
			return true
		}
		for _, pin := range n.Fanout {
			out := pin.Gate.Out
			if reach[out.ID] {
				continue
			}
			ov := p.vals[out.ID]
			if ov == logic.X || ov.IsError() {
				reach[out.ID] = true
				queue = append(queue, out)
			}
		}
	}
	return false
}

// siteObjective returns an objective that defines the fault site value when
// it is still X (e.g. a stem fault whose driver output is unknown).
func (p *podem) siteObjective() (*netlist.Net, uint8, bool) {
	switch {
	case p.inj.stemNet != nil:
		n := p.inj.stemNet
		if _, known := p.good[n.ID].Good(); !known {
			return n, p.inj.stemVal ^ 1, true
		}
	case p.inj.bridgeVictim != nil:
		// Handled through conditions.
	case p.inj.branchGate != nil:
		n := p.inj.branchGate.Fanin[p.inj.branchPin]
		if _, known := p.good[n.ID].Good(); !known {
			return n, p.inj.branchVal ^ 1, true
		}
	case p.inj.hostGate != nil:
		// Host inputs are handled through conditions.
	}
	return nil, 0, false
}

// xPathExists checks whether any frontier gate output reaches a PO through
// nets currently X (or carrying errors).
func (p *podem) xPathExists(frontier []*netlist.Gate) bool {
	reach := p.xreach
	for i := range reach {
		reach[i] = false
	}
	var queue []*netlist.Net
	for _, g := range frontier {
		if p.vals[g.Out.ID] == logic.X {
			reach[g.Out.ID] = true
			queue = append(queue, g.Out)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n.IsPO {
			return true
		}
		for _, pin := range n.Fanout {
			out := pin.Gate.Out
			if reach[out.ID] {
				continue
			}
			v := p.vals[out.ID]
			if v == logic.X || v.IsError() {
				reach[out.ID] = true
				queue = append(queue, out)
			}
		}
	}
	return false
}

// propagationObjective picks an (input net, value) of frontier gate g that
// can drive the error to the output: an X input and a value under which a
// completion exists where the output becomes an error.
func (p *podem) propagationObjective(g *netlist.Gate) (*netlist.Net, uint8, bool) {
	var in [8]logic.V5
	for i := range g.Fanin {
		in[i] = p.faninVal(g, i)
	}
	for i, fn := range g.Fanin {
		if in[i] != logic.X {
			continue
		}
		for _, v := range []uint8{1, 0} {
			in[i] = logic.FromBit(v)
			if p.outputCanError(g, in[:len(g.Fanin)]) {
				return fn, v, true
			}
		}
		in[i] = logic.X
	}
	return nil, 0, false
}

// outputCanError reports whether some completion of the X inputs makes the
// gate output an error value. Error inputs are fixed at their D/DBar value.
func (p *podem) outputCanError(g *netlist.Gate, in []logic.V5) bool {
	n := len(in)
	var xIdx []int
	for i, v := range in {
		if v == logic.X {
			xIdx = append(xIdx, i)
		}
	}
	var tmp [8]logic.V5
	copy(tmp[:], in)
	for sub := 0; sub < 1<<uint(len(xIdx)); sub++ {
		for k, i := range xIdx {
			tmp[i] = logic.FromBit(uint8(sub >> uint(k) & 1))
		}
		if g.Type.TT.EvalV5(tmp[:n]).IsError() {
			return true
		}
	}
	return false
}

// backtrace maps an objective (net, good value) back to an unassigned PI
// and a value. ok=false when no X PI can influence the objective.
func (p *podem) backtrace(n *netlist.Net, v uint8) (int, uint8, bool) {
	for {
		if n.IsPI {
			for i, pi := range p.c.PIs {
				if pi == n {
					if p.piVal[i] != -1 {
						return 0, 0, false
					}
					return i, v, true
				}
			}
			return 0, 0, false
		}
		g := n.Driver
		pin, val, ok := p.backtraceStep(g, v)
		if !ok {
			return 0, 0, false
		}
		n = g.Fanin[pin]
		v = val
	}
}

// backtraceStep picks an X input of g and a value consistent with driving
// the output's good value to v: there must exist a completion of the other
// X inputs achieving v. Inputs whose assignment *forces* the output to v
// (a controlling value) are strongly preferred — this closes objectives
// locally instead of deferring them down long chains (decisive on
// carry-chain justification); among equals, lower-level inputs win.
func (p *podem) backtraceStep(g *netlist.Gate, v uint8) (int, uint8, bool) {
	var in [8]logic.V5
	for i, fn := range g.Fanin {
		in[i] = p.good[fn.ID]
	}
	n := len(g.Fanin)
	bestPin, bestVal := -1, uint8(0)
	bestLvl := int(^uint(0) >> 1)
	bestForced := false
	for i := range g.Fanin {
		if in[i] != logic.X {
			continue
		}
		for _, cand := range []uint8{0, 1} {
			in[i] = logic.FromBit(cand)
			if !goodCanBe(g, in[:n], v) {
				in[i] = logic.X
				continue
			}
			forced := !goodCanBe(g, in[:n], v^1)
			lvl := p.levels[g.Fanin[i].ID]
			betterPick := false
			switch {
			case forced && !bestForced:
				betterPick = true
			case forced == bestForced && lvl < bestLvl:
				betterPick = true
			}
			if betterPick {
				bestLvl, bestPin, bestVal, bestForced = lvl, i, cand, forced
			}
			in[i] = logic.X
		}
		in[i] = logic.X
	}
	if bestPin < 0 {
		return 0, 0, false
	}
	return bestPin, bestVal, true
}

// goodCanBe reports whether a completion of X inputs gives good output v.
func goodCanBe(g *netlist.Gate, in []logic.V5, v uint8) bool {
	var xIdx []int
	var base uint
	for i, val := range in {
		gb, known := val.Good()
		if !known {
			xIdx = append(xIdx, i)
			continue
		}
		base |= uint(gb) << uint(i)
	}
	for sub := 0; sub < 1<<uint(len(xIdx)); sub++ {
		a := base
		for k, i := range xIdx {
			a |= uint(sub>>uint(k)&1) << uint(i)
		}
		if g.Type.Eval(a) == v {
			return true
		}
	}
	return false
}

// valsBacktrace walks from a net whose composite (faulty-machine) value is
// unresolved down through X-valued fanins to an unassigned PI. It targets
// exactly the cone that keeps the propagation objective undetermined.
func (p *podem) valsBacktrace(n *netlist.Net) (int, bool) {
	for hops := 0; hops < len(p.c.Nets)+1; hops++ {
		if n.IsPI {
			for i, pi := range p.c.PIs {
				if pi == n {
					if p.piVal[i] == -1 {
						return i, true
					}
					return 0, false
				}
			}
			return 0, false
		}
		g := n.Driver
		next := (*netlist.Net)(nil)
		for _, in := range g.Fanin {
			if p.vals[in.ID] == logic.X {
				next = in
				break
			}
		}
		if next == nil {
			return 0, false
		}
		n = next
	}
	return 0, false
}

// firstFreePI returns an unassigned PI that can still influence detection:
// a PI in the transitive fanin cone of the gates the fault effect can still
// reach (the D-frontier and its X-path fanout). PIs outside that support
// cannot change any value the detection depends on, so if no support PI is
// free the branch is dead — which both preserves completeness and prunes
// the search sharply.
func (p *podem) firstFreePI() (int, uint8, bool) {
	// Forward sweep: gates the effect can still traverse (output X or
	// error, reachable from an errored net).
	fwd := p.xreach
	for i := range fwd {
		fwd[i] = false
	}
	var q []*netlist.Net
	seed := func(n *netlist.Net) {
		if !fwd[n.ID] {
			fwd[n.ID] = true
			q = append(q, n)
		}
	}
	for _, n := range p.c.Nets {
		if p.vals[n.ID].IsError() {
			seed(n)
		}
	}
	for len(q) > 0 {
		n := q[0]
		q = q[1:]
		for _, pin := range n.Fanout {
			out := pin.Gate.Out
			v := p.vals[out.ID]
			if (v == logic.X || v.IsError()) && !fwd[out.ID] {
				fwd[out.ID] = true
				q = append(q, out)
			}
		}
	}
	// Backward sweep: fanin support of every forward-reachable gate.
	sup := make([]bool, len(p.c.Nets))
	var back func(n *netlist.Net)
	back = func(n *netlist.Net) {
		if sup[n.ID] {
			return
		}
		sup[n.ID] = true
		if n.Driver != nil {
			for _, in := range n.Driver.Fanin {
				back(in)
			}
		}
	}
	for _, n := range p.c.Nets {
		if fwd[n.ID] {
			back(n)
		}
	}
	for i, v := range p.piVal {
		if v == -1 && sup[p.c.PIs[i].ID] {
			return i, 0, true
		}
	}
	return 0, 0, false
}

// fillVector produces the final test vector, filling unassigned PIs
// randomly.
func (p *podem) fillVector(rng *rand.Rand) []uint8 {
	out := make([]uint8, len(p.c.PIs))
	for i, v := range p.piVal {
		if v < 0 {
			out[i] = uint8(rng.Intn(2))
		} else {
			out[i] = uint8(v)
		}
	}
	return out
}

// Generator runs PODEM searches over one circuit, reusing the implication
// engine (and its per-cell evaluation tables) across faults.
type Generator struct {
	p *podem
}

// Backtracks returns the cumulative backtrack count across every search
// this generator has run — the engine-cost telemetry behind the
// atpg/podem_backtracks metric (a fault's cost is the delta across its
// Generate call).
func (gen *Generator) Backtracks() int { return gen.p.btTotal }

// NewGenerator prepares a generator. levels must be the circuit's net
// levels and order its levelized gates.
func NewGenerator(c *netlist.Circuit, order []*netlist.Gate, levels []int, limit int) *Generator {
	return &Generator{p: newPodem(c, order, levels, limit)}
}

// SeedImplications arms every subsequent search with a static
// implication engine built over the same circuit (seed mode): after
// each good-value simulation pass the engine's constants and the
// implications of the known good values are asserted into the
// deduction, which satisfies objectives without decisions and detects
// dead branches earlier, cutting backtracks. Assertions are sound
// consequences of the partial assignment, so searches remain complete;
// primary inputs are never asserted. A nil engine is ignored. The
// engine is read-only here and may be shared across generators.
func (gen *Generator) SeedImplications(e *implic.Engine) {
	if e != nil {
		gen.p.learned = e
	}
}

// GenerateOne runs complete PODEM searches for fault f and returns either a
// test (possibly two-pattern), a proof of undetectability, or an abort.
// levels must be the circuit's net levels and order its levelized gates.
// For many faults on the same circuit, prefer a Generator.
func GenerateOne(c *netlist.Circuit, order []*netlist.Gate, levels []int,
	f *fault.Fault, limit int, rng *rand.Rand) (SearchOutcome, *TestVec) {
	return NewGenerator(c, order, levels, limit).Generate(f, rng)
}

// Generate runs complete PODEM searches for fault f.
func (gen *Generator) Generate(f *fault.Fault, rng *rand.Rand) (SearchOutcome, *TestVec) {
	return gen.GenerateWith(f, nil, rng)
}

// GenerateWith runs the searches for fault f with additional good-value
// conditions imposed on every detection vector (the initialization vectors
// of two-pattern tests are unconstrained). ProvenImpossible then means "no
// test detects f while satisfying the extra conditions".
func (gen *Generator) GenerateWith(f *fault.Fault, extra []Condition, rng *rand.Rand) (SearchOutcome, *TestVec) {
	p := gen.p
	p.extra = p.extra[:0]
	for _, e := range extra {
		p.extra = append(p.extra, condition{net: e.Net, val: e.Val})
	}
	defer func() { p.extra = p.extra[:0] }()
	aborted := false

	runOnce := func() (SearchOutcome, []uint8) { return p.search(rng) }

	switch f.Model {
	case fault.StuckAt:
		p.configureStuckAt(f)
		out, vec := runOnce()
		switch out {
		case FoundTest:
			return FoundTest, &TestVec{Vec: vec}
		case LimitExceeded:
			return LimitExceeded, nil
		}
		return ProvenImpossible, nil

	case fault.Transition:
		// Phase 1: detect stuck-at-Value at the site.
		p.configureStuckAt(&fault.Fault{Model: fault.StuckAt, Net: f.Net,
			BranchGate: f.BranchGate, BranchPin: f.BranchPin, Value: f.Value})
		out, vec := runOnce()
		if out == LimitExceeded {
			return LimitExceeded, nil
		}
		if out == ProvenImpossible {
			return ProvenImpossible, nil
		}
		// Phase 2: justify the initialization value at the site.
		p.configureJustify([]condition{{net: f.Net, val: f.Value}})
		out2, init := runOnce()
		switch out2 {
		case FoundTest:
			return FoundTest, &TestVec{Init: init, Vec: vec}
		case LimitExceeded:
			return LimitExceeded, nil
		}
		return ProvenImpossible, nil

	case fault.Bridge:
		// Two polarities: victim 1 / aggressor 0, and the reverse.
		for _, va := range []uint8{1, 0} {
			p.configureBridge(f, va)
			out, vec := runOnce()
			switch out {
			case FoundTest:
				return FoundTest, &TestVec{Vec: vec}
			case LimitExceeded:
				aborted = true
			}
		}
		if aborted {
			return LimitExceeded, nil
		}
		return ProvenImpossible, nil

	case fault.CellAware:
		return p.generateCellAware(f, rng)
	}
	return ProvenImpossible, nil
}

// TestVec is a generated test: an optional initialization vector and the
// final vector.
type TestVec struct {
	Init []uint8
	Vec  []uint8
}

func (p *podem) configureStuckAt(f *fault.Fault) {
	p.inj = injection{}
	p.conds = p.conds[:0]
	if f.BranchGate != nil {
		p.inj.branchGate = f.BranchGate
		p.inj.branchPin = f.BranchPin
		p.inj.branchVal = f.Value
		p.conds = append(p.conds, condition{net: f.Net, val: f.Value ^ 1})
	} else {
		p.inj.stemNet = f.Net
		p.inj.stemVal = f.Value
		p.conds = append(p.conds, condition{net: f.Net, val: f.Value ^ 1})
	}
	p.conds = append(p.conds, p.extra...)
}

func (p *podem) configureBridge(f *fault.Fault, victimVal uint8) {
	p.inj = injection{bridgeVictim: f.Net, bridgeSrc: f.Other}
	p.conds = p.conds[:0]
	p.conds = append(p.conds,
		condition{net: f.Net, val: victimVal},
		condition{net: f.Other, val: victimVal ^ 1})
	p.conds = append(p.conds, p.extra...)
}

func (p *podem) configureJustify(conds []condition) {
	p.inj = injection{none: true}
	p.conds = append(p.conds[:0], conds...)
}

func (p *podem) configureHost(g *netlist.Gate, asg uint) {
	p.inj = injection{hostGate: g, hostAsg: asg}
	p.conds = p.conds[:0]
	for i, in := range g.Fanin {
		p.conds = append(p.conds, condition{net: in, val: uint8(asg >> uint(i) & 1)})
	}
	p.conds = append(p.conds, p.extra...)
}

// generateCellAware tries every activating assignment (static first, then
// dynamic pairs) with a complete search each.
func (p *podem) generateCellAware(f *fault.Fault, rng *rand.Rand) (SearchOutcome, *TestVec) {
	g := f.Gate
	beh := f.Behavior
	n := uint(1) << uint(beh.Inputs)
	aborted := false

	for a := uint(0); a < n; a++ {
		if beh.StaticMask>>a&1 == 0 {
			continue
		}
		p.configureHost(g, a)
		out, vec := p.search(rng)
		switch out {
		case FoundTest:
			return FoundTest, &TestVec{Vec: vec}
		case LimitExceeded:
			aborted = true
		}
	}

	// Dynamic pairs: propagate under a2, then justify a1 on the init
	// vector.
	if len(beh.PairMask) == 0 {
		if aborted {
			return LimitExceeded, nil
		}
		return ProvenImpossible, nil
	}
	for a2 := uint(0); a2 < n; a2++ {
		anyPair := false
		for a1 := uint(0); a1 < n; a1++ {
			if uint(len(beh.PairMask)) > a1 && beh.PairMask[a1]>>a2&1 == 1 {
				anyPair = true
				break
			}
		}
		if !anyPair {
			continue
		}
		p.configureHost(g, a2)
		out, vec := p.search(rng)
		if out == LimitExceeded {
			aborted = true
			continue
		}
		if out == ProvenImpossible {
			continue
		}
		for a1 := uint(0); a1 < n; a1++ {
			if beh.PairMask[a1]>>a2&1 == 0 {
				continue
			}
			conds := make([]condition, 0, len(g.Fanin))
			for i, in := range g.Fanin {
				conds = append(conds, condition{net: in, val: uint8(a1 >> uint(i) & 1)})
			}
			p.configureJustify(conds)
			out2, init := p.search(rng)
			switch out2 {
			case FoundTest:
				return FoundTest, &TestVec{Init: init, Vec: vec}
			case LimitExceeded:
				aborted = true
			}
		}
	}
	if aborted {
		return LimitExceeded, nil
	}
	return ProvenImpossible, nil
}
