package atpg

import (
	"math/rand"
	"reflect"
	"testing"

	"dfmresyn/internal/fault"
	"dfmresyn/internal/faultsim"
	"dfmresyn/internal/fcache"
	"dfmresyn/internal/netlist"
)

// mixedFaults builds a deterministic fault list spanning every model that
// can be constructed without a layout.
func mixedFaults(c *netlist.Circuit) *fault.List {
	l := &fault.List{}
	for _, n := range c.Nets {
		for v := uint8(0); v <= 1; v++ {
			l.Add(&fault.Fault{Model: fault.StuckAt, Net: n, Value: v})
			if len(n.Fanout) > 1 {
				p := n.Fanout[0]
				l.Add(&fault.Fault{Model: fault.StuckAt, Net: n, Value: v,
					BranchGate: p.Gate, BranchPin: p.Pin})
			}
		}
		l.Add(&fault.Fault{Model: fault.Transition, Net: n, Value: 1})
	}
	for i := 0; i+1 < len(c.Gates); i += 3 {
		a, b := c.Gates[i].Out, c.Gates[i+1].Out
		l.Add(&fault.Fault{Model: fault.Bridge, Net: a, Other: b})
		l.Add(&fault.Fault{Model: fault.Bridge, Net: b, Other: a})
	}
	return l
}

func runSnapshot(c *netlist.Circuit, cfg Config) ([]fault.Status, []faultsim.Test, Result) {
	l := mixedFaults(c)
	res := Run(c, l, cfg)
	st := make([]fault.Status, l.Len())
	for i, f := range l.Faults {
		st[i] = f.Status
	}
	return st, res.Tests, res
}

// TestRunByteIdenticalAcrossWorkers is the engine's core contract: any
// worker count yields identical fault statuses, identical test vectors in
// identical order, and identical result counts.
func TestRunByteIdenticalAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	circuits := []*netlist.Circuit{randCircuit(rng, 25), randCircuit(rng, 40)}
	cc, _ := buildConsensus(t)
	circuits = append(circuits, cc)

	for ci, c := range circuits {
		cfg := DefaultConfig()
		cfg.Workers = 1
		refSt, refTests, refRes := runSnapshot(c, cfg)
		for _, w := range []int{2, 8} {
			cfg.Workers = w
			st, tests, res := runSnapshot(c, cfg)
			if !reflect.DeepEqual(st, refSt) {
				t.Errorf("circuit %d: statuses differ between Workers=1 and Workers=%d", ci, w)
			}
			if !reflect.DeepEqual(tests, refTests) {
				t.Errorf("circuit %d: test set differs between Workers=1 and Workers=%d (%d vs %d tests)",
					ci, w, len(refTests), len(tests))
			}
			if res.Detected != refRes.Detected || res.Undetectable != refRes.Undetectable ||
				res.Aborted != refRes.Aborted || res.CacheLookups != refRes.CacheLookups ||
				res.CacheHits != refRes.CacheHits {
				t.Errorf("circuit %d Workers=%d: result counts differ: %+v vs %+v", ci, w, res, refRes)
			}
		}
	}
}

// TestRunCacheSoundness: a second run over a shared cache must produce the
// same verdict partition as an uncached run (the small circuits here have
// no aborts, so the partition is exact), and the warm test set must still
// detect every Detected fault.
func TestRunCacheSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for ci, c := range []*netlist.Circuit{randCircuit(rng, 30), randCircuit(rng, 50)} {
		cfg := DefaultConfig()
		refSt, _, refRes := runSnapshot(c, cfg)
		if refRes.Aborted != 0 {
			t.Fatalf("circuit %d: unexpected aborts in reference run", ci)
		}

		cfg.Cache = fcache.New()
		coldSt, _, coldRes := runSnapshot(c, cfg)
		if !reflect.DeepEqual(coldSt, refSt) {
			t.Errorf("circuit %d: cold cached run changed verdicts", ci)
		}
		if coldRes.CacheHits != 0 || coldRes.CacheLookups == 0 {
			t.Errorf("circuit %d: cold run stats %d/%d, want 0 hits over >0 lookups",
				ci, coldRes.CacheHits, coldRes.CacheLookups)
		}

		warmSt, warmTests, warmRes := runSnapshot(c, cfg)
		if !reflect.DeepEqual(warmSt, refSt) {
			t.Errorf("circuit %d: warm cached run changed verdicts", ci)
		}
		if warmRes.CacheHits == 0 {
			t.Errorf("circuit %d: warm run had no cache hits", ci)
		}

		// The warm test set must cover every Detected fault.
		l := mixedFaults(c)
		eng := faultsim.New(c)
		for fi, f := range l.Faults {
			if warmSt[fi] != fault.Detected {
				continue
			}
			det := false
			for start := 0; start < len(warmTests) && !det; start += 64 {
				end := start + 64
				if end > len(warmTests) {
					end = len(warmTests)
				}
				if eng.Detects(f, eng.SimBlock(warmTests[start:end])) != 0 {
					det = true
				}
			}
			if !det {
				t.Errorf("circuit %d: warm T misses detected fault %v", ci, f)
			}
		}
	}
}

// TestRunCacheDeterministicWithWorkers: cached runs must also be worker-
// count invariant, including the cache content they produce.
func TestRunCacheDeterministicWithWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	c := randCircuit(rng, 35)

	snapshot := func(workers int) ([]fault.Status, []faultsim.Test, fcache.Stats) {
		cfg := DefaultConfig()
		cfg.Workers = workers
		cfg.Cache = fcache.New()
		runSnapshot(c, cfg)                 // cold
		st, tests, _ := runSnapshot(c, cfg) // warm
		return st, tests, cfg.Cache.Stats()
	}
	st1, tests1, stats1 := snapshot(1)
	st8, tests8, stats8 := snapshot(8)
	if !reflect.DeepEqual(st1, st8) {
		t.Error("cached verdicts differ between Workers=1 and Workers=8")
	}
	if !reflect.DeepEqual(tests1, tests8) {
		t.Error("cached test sets differ between Workers=1 and Workers=8")
	}
	if stats1.Entries != stats8.Entries || stats1.Stores != stats8.Stores {
		t.Errorf("cache content diverged: %+v vs %+v", stats1, stats8)
	}
}
