package atpg

import (
	"math/rand"
	"testing"

	"dfmresyn/internal/fault"
	"dfmresyn/internal/faultsim"
	"dfmresyn/internal/netlist"
	"dfmresyn/internal/switchsim"
)

// brute_test.go extends the gold consistency check to every fault model:
// on random 4-PI circuits, PODEM's verdict must match exhaustive
// enumeration — all 16 vectors for single-pattern models, all 256 ordered
// vector pairs for two-pattern models.

func randCircuit(rng *rand.Rand, gates int) *netlist.Circuit {
	names := []string{"NAND2X1", "NOR2X1", "XOR2X1", "INVX1", "AND2X2", "OAI21X1", "MUX2X1", "AOI22X1"}
	c := netlist.New("rand", lib)
	var nets []*netlist.Net
	for i := 0; i < 4; i++ {
		nets = append(nets, c.AddPI(string(rune('a'+i))))
	}
	for i := 0; i < gates; i++ {
		cell := lib.ByName(names[rng.Intn(len(names))])
		fanin := make([]*netlist.Net, cell.NumInputs())
		for j := range fanin {
			fanin[j] = nets[rng.Intn(len(nets))]
		}
		nets = append(nets, c.AddGate("", cell, fanin...))
	}
	c.MarkPO(nets[len(nets)-1])
	c.MarkPO(nets[len(nets)-2])
	return c
}

// allSingle returns all 16 single-pattern tests; allPairs all 256 ordered
// two-pattern tests.
func allSingle() []faultsim.Test {
	var out []faultsim.Test
	for p := uint(0); p < 16; p++ {
		out = append(out, faultsim.Test{Vec: []uint8{
			uint8(p & 1), uint8(p >> 1 & 1), uint8(p >> 2 & 1), uint8(p >> 3 & 1)}})
	}
	return out
}

func allPairs() []faultsim.Test {
	var out []faultsim.Test
	for p1 := uint(0); p1 < 16; p1++ {
		for p2 := uint(0); p2 < 16; p2++ {
			out = append(out, faultsim.Test{
				Init: []uint8{uint8(p1 & 1), uint8(p1 >> 1 & 1), uint8(p1 >> 2 & 1), uint8(p1 >> 3 & 1)},
				Vec:  []uint8{uint8(p2 & 1), uint8(p2 >> 1 & 1), uint8(p2 >> 2 & 1), uint8(p2 >> 3 & 1)},
			})
		}
	}
	return out
}

// bruteDetectable simulates the whole test list through faultsim.
func bruteDetectable(eng *faultsim.Engine, f *fault.Fault, tests []faultsim.Test) bool {
	for start := 0; start < len(tests); start += 64 {
		end := start + 64
		if end > len(tests) {
			end = len(tests)
		}
		if eng.Detects(f, eng.SimBlock(tests[start:end])) != 0 {
			return true
		}
	}
	return false
}

func crossCheck(t *testing.T, c *netlist.Circuit, f *fault.Fault, tests []faultsim.Test, what string) {
	t.Helper()
	eng := faultsim.New(c)
	brute := bruteDetectable(eng, f, tests)
	order := c.Levelize()
	levels := c.Levels()
	out, tv := GenerateOne(c, order, levels, f, 200000, rand.New(rand.NewSource(5)))
	switch out {
	case FoundTest:
		if !brute {
			t.Fatalf("%s: PODEM found a test for a brute-undetectable fault %v", what, f)
		}
		// The generated test itself must detect.
		b := eng.SimBlock([]faultsim.Test{{Init: tv.Init, Vec: tv.Vec}})
		if eng.Detects(f, b) == 0 {
			t.Fatalf("%s: generated test does not detect %v", what, f)
		}
	case ProvenImpossible:
		if brute {
			t.Fatalf("%s: PODEM claims undetectable, brute force detects %v", what, f)
		}
	case LimitExceeded:
		t.Fatalf("%s: limit exceeded on a 4-PI circuit for %v", what, f)
	}
}

func TestBruteTransition(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	pairs := allPairs()
	for trial := 0; trial < 8; trial++ {
		c := randCircuit(rng, 7)
		for _, n := range c.Nets {
			for v := uint8(0); v <= 1; v++ {
				f := &fault.Fault{Model: fault.Transition, Net: n, Value: v}
				crossCheck(t, c, f, pairs, "transition")
			}
		}
	}
}

func TestBruteBridge(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	singles := allSingle()
	for trial := 0; trial < 8; trial++ {
		c := randCircuit(rng, 7)
		// Sample random net pairs.
		for k := 0; k < 12; k++ {
			a := c.Nets[rng.Intn(len(c.Nets))]
			b := c.Nets[rng.Intn(len(c.Nets))]
			if a == b {
				continue
			}
			// Skip feedback-creating bridges where the victim feeds
			// the aggressor's cone: the simulator's dominant model
			// handles it (aggressor uses good values), and PODEM does
			// the same, so the cross-check is still valid.
			f := &fault.Fault{Model: fault.Bridge, Net: a, Other: b}
			crossCheck(t, c, f, singles, "bridge")
		}
	}
}

func TestBruteCellAwareStatic(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	singles := allSingle()
	for trial := 0; trial < 8; trial++ {
		c := randCircuit(rng, 7)
		for k := 0; k < 8; k++ {
			g := c.Gates[rng.Intn(len(c.Gates))]
			n := uint(1) << uint(g.Type.NumInputs())
			mask := uint64(rng.Intn(int(uint64(1)<<n-1)) + 1)
			beh := &switchsim.Behavior{Inputs: g.Type.NumInputs(), StaticMask: mask}
			f := &fault.Fault{Model: fault.CellAware, Internal: true, Gate: g, Behavior: beh}
			crossCheck(t, c, f, singles, "cell-aware-static")
		}
	}
}

func TestBruteCellAwareDynamic(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	pairs := allPairs()
	for trial := 0; trial < 6; trial++ {
		c := randCircuit(rng, 7)
		for k := 0; k < 5; k++ {
			g := c.Gates[rng.Intn(len(c.Gates))]
			ni := g.Type.NumInputs()
			n := uint(1) << uint(ni)
			pm := make([]uint64, n)
			// A few random (init, final) activating pairs.
			for j := 0; j < 3; j++ {
				pm[rng.Intn(int(n))] |= 1 << uint(rng.Intn(int(n)))
			}
			beh := &switchsim.Behavior{Inputs: ni, PairMask: pm}
			f := &fault.Fault{Model: fault.CellAware, Internal: true, Gate: g, Behavior: beh}
			crossCheck(t, c, f, pairs, "cell-aware-dynamic")
		}
	}
}

func TestBruteBranchStuckAt(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	singles := allSingle()
	for trial := 0; trial < 8; trial++ {
		c := randCircuit(rng, 7)
		for k := 0; k < 10; k++ {
			g := c.Gates[rng.Intn(len(c.Gates))]
			pin := rng.Intn(len(g.Fanin))
			f := &fault.Fault{Model: fault.StuckAt, Net: g.Fanin[pin], Value: uint8(rng.Intn(2)),
				BranchGate: g, BranchPin: pin}
			crossCheck(t, c, f, singles, "branch-stuck-at")
		}
	}
}
