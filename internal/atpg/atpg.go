package atpg

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"dfmresyn/internal/fault"
	"dfmresyn/internal/faultsim"
	"dfmresyn/internal/fcache"
	"dfmresyn/internal/implic"
	"dfmresyn/internal/logic"
	"dfmresyn/internal/netlist"
	"dfmresyn/internal/obs"
	"dfmresyn/internal/par"
	"dfmresyn/internal/resilience"
)

// Config controls the test-generation run.
type Config struct {
	// BacktrackLimit bounds each PODEM search; a fault whose search
	// exhausts the limit is marked Aborted rather than Undetectable.
	BacktrackLimit int
	// RandomBlocks is the number of 64-test random-pair blocks simulated
	// before the deterministic phase.
	RandomBlocks int
	// Seed drives all randomness (pattern fill, random phase). PODEM
	// searches draw from a per-fault stream derived from (Seed, fault ID),
	// so a fault's outcome never depends on scheduling.
	Seed int64
	// NoCompact disables reverse-order test-set compaction.
	NoCompact bool
	// Workers bounds the classification worker pool; 0 selects
	// runtime.NumCPU(). Any value produces byte-identical results: work is
	// split into fixed-size batches merged in fault-ID order.
	Workers int
	// Cache, when non-nil, is consulted before classification and updated
	// afterwards. Cached Undetectable verdicts are trusted (the key is a
	// structural hash of the fault's whole support cone); cached Detected
	// verdicts only contribute their witness vectors, which are replayed
	// through fault simulation — so a stale entry degrades to a miss.
	Cache *fcache.Cache
	// Obs, when non-nil, receives per-phase spans and engine counters
	// (PODEM searches and backtracks, cache replays, collateral drops).
	// Tracing never alters classification: results are byte-identical with
	// Obs nil or set, and the nil path costs no allocations.
	Obs *obs.Tracer
	// Ctx, when non-nil, cancels the run cooperatively. Cancellation is
	// observed only at deterministic boundaries — between cache-replay and
	// random blocks, and between PODEM batches (an in-flight batch is
	// discarded whole, never half-merged) — so the resolved set of a
	// cancelled run is always a consistent prefix of the engine's merge
	// sequence. A nil Ctx never cancels.
	Ctx context.Context
	// Static selects the static implication screen (implic.Mode). Off
	// disables it; Screen builds the implication closure once per run and
	// classifies statically-proven undetectable faults before any PODEM
	// search, leaving every table byte-identical to an unscreened run;
	// Seed additionally asserts the learned implications inside PODEM's
	// good-circuit deduction. The screen is applied atomically at the
	// implication-closure boundary: a cancellation observed before it
	// skips it entirely, so a cancelled run never carries partial static
	// verdicts.
	Static implic.Mode
	// InjectPanic, when non-nil, is the chaos hook: it is consulted before
	// every PODEM search with the fault's ID and the attempt number (0 for
	// the first search, 1 for the post-panic retry) and a true return
	// panics the worker. Production runs leave it nil; internal/chaos
	// provides deterministic seed-driven implementations.
	InjectPanic func(faultID, attempt int) bool
	// SATEscalate enables the CDCL escalation tier: every PODEM search that
	// exhausts its backtrack limit is re-encoded as a CNF instance over the
	// fault's support/output cone and solved to completion, so the fault
	// ends Detected (with a witness) or Undetectable — never Aborted.
	// Escalations run in the sequential merge, keyed by the same structural
	// cone hashes the verdict cache uses, with undetectability proofs
	// memoized within the run so cone-isomorphic hard faults are proven
	// once. Verdicts equal what an unlimited PODEM search would return, so
	// tables match the unlimited baseline byte for byte.
	SATEscalate bool
	// Ledger, when non-nil, receives the run's flight-recorder records: one
	// stage record (labelled Stage) followed by one verdict record per
	// classified fault, in fault-ID order. Like Obs, the ledger only
	// observes — verdicts are byte-identical with Ledger nil or set — and a
	// cancelled run emits nothing (its statuses are a prefix, not a stage).
	// Per-search wall micros are measured only when a ledger is attached and
	// are excluded from the ledger's deterministic digest.
	Ledger *obs.Ledger
	// Stage labels this run's ledger records ("analyze", "analyze-incr",
	// "verify").
	Stage string
}

// DefaultBacktrackLimit is the per-search PODEM backtrack budget used
// throughout the experiments: the single source for DefaultConfig, the
// zero-value fallback in Run, and (via Config.BacktrackLimit) the top bucket
// of the backtracks-per-search histogram.
const DefaultBacktrackLimit = 12000

// DefaultConfig returns the configuration used throughout the experiments.
// The backtrack limit is sized so that redundancy proofs that must exhaust
// the value space of a ~12-input cone (consensus-style redundancy wrapped
// around comparators) complete instead of aborting.
func DefaultConfig() Config {
	return Config{BacktrackLimit: DefaultBacktrackLimit, RandomBlocks: 6, Seed: 1}
}

// Result summarizes a test-generation run.
type Result struct {
	Tests        []faultsim.Test
	Detected     int
	Undetectable int
	Aborted      int
	// CacheLookups counts fault-verdict cache consultations; CacheHits
	// counts the faults classified without a PODEM search thanks to the
	// cache (trusted undetectability proofs plus faults detected while
	// replaying cached witness vectors).
	CacheLookups int
	CacheHits    int
	// StaticProven counts the faults the static implication screen
	// classified Undetectable with zero PODEM searches (Config.Static
	// screen or seed). They are included in Undetectable.
	StaticProven int
	// SATEscalations counts the faults the CDCL tier resolved after their
	// PODEM search exhausted the backtrack limit (Config.SATEscalate);
	// SATDetected / SATUndetectable split those by verdict, and SATMemoHits
	// counts faults settled by a within-run memoized undetectability proof
	// of a cone-isomorphic fault instead of a fresh solve. SATConflicts
	// totals the solver's learned-conflict count across every escalation.
	SATEscalations  int
	SATDetected     int
	SATUndetectable int
	SATMemoHits     int
	SATConflicts    int64
	// Recovered counts worker panics the engine absorbed: each one was
	// retried on a fresh generator (and usually succeeded — see
	// Quarantined for the ones that did not).
	Recovered int
	// Quarantined lists the IDs of faults whose search panicked twice —
	// once on a pooled worker and once more on a fresh retry generator.
	// They are marked Aborted instead of crashing the process, in
	// fault-list order.
	Quarantined []int
	// Cancelled reports that Config.Ctx was cancelled before the run
	// completed. Statuses already assigned are final and consistent;
	// Resolved lists exactly which faults they cover.
	Cancelled bool
	// Resolved, populated only on cancellation, lists the IDs of every
	// fault with a final status (Detected, Undetectable or Aborted) at the
	// abort boundary, in fault-list order.
	Resolved []int
	// Tiers is the provenance breakdown: which engine tier decided each
	// classified fault. By construction Cache == CacheHits, Implic ==
	// StaticProven, SAT == SATEscalations and SATMemo == SATMemoHits;
	// Collateral counts faults detected by simulation without their own
	// search (random-phase patterns and collateral drops in the merge), and
	// Podem the faults whose own PODEM search decided them (including
	// quarantined and limit-aborted searches).
	Tiers obs.TierCounts
	// Slowest lists the run's costliest searches, wall micros descending
	// (ties by fault ID). Populated only when Config.Ledger is set — timing
	// is never measured otherwise.
	Slowest []obs.SlowSearch
}

// podemBatch is the number of faults classified concurrently between merge
// points. It is a fixed constant — independent of the worker count — so that
// the set of speculative searches, and therefore every result, is identical
// for Workers=1 and Workers=N.
const podemBatch = 64

// Run generates a test set T detecting every detectable fault in l and
// proves the remaining faults undetectable (the set U), mirroring the
// paper's Section II procedure. Fault statuses in l are updated in place.
//
// The per-fault classification work (fault simulation and PODEM searches)
// is sharded over cfg.Workers workers; all status, credit and test-set
// bookkeeping runs sequentially in fault-ID order between parallel stages,
// so the output is a pure function of (circuit, fault list, cfg, cache
// content) regardless of worker count or scheduling.
func Run(c *netlist.Circuit, l *fault.List, cfg Config) Result {
	if cfg.BacktrackLimit <= 0 {
		cfg.BacktrackLimit = DefaultBacktrackLimit
	}
	workers := par.Count(cfg.Workers)
	ctx := cfg.Ctx
	pool := faultsim.NewPool(c, workers)
	pool.Instrument(cfg.Obs)
	pool.Bind(ctx)
	order := pool.Engine(0).Circuit().Levelize()
	levels := c.Levels()
	npi := len(c.PIs)
	rng := rand.New(rand.NewSource(cfg.Seed))

	res := Result{}
	var tests []faultsim.Test

	// witness[i] is the test that first detected l.Faults[i] (zero Test if
	// none); it becomes the cached proof obligation for Detected verdicts.
	// keys[i] is the fault's structural cone key (zero when uncacheable).
	var witness []faultsim.Test
	var keys []fcache.Key

	// prov[i] records which tier decided l.Faults[i] plus the search cost
	// attributable to it — the per-verdict provenance the ledger emits and
	// Result.Tiers summarizes. Wall micros are only measured when a ledger
	// is attached (timed); everything else in prov is deterministic.
	type provInfo struct {
		tier obs.Tier
		bt   int
		conf int64
		us   int64
	}
	prov := make([]provInfo, len(l.Faults))
	timed := cfg.Ledger != nil
	var runT0 int64
	if timed {
		runT0 = obs.NowMicros()
	}

	// detectBlock computes detection words for every listed fault against
	// the block in parallel, then applies statuses, first-detection credit
	// and witnesses sequentially in fault-ID order. cand are the block's
	// candidate tests; credited tests are appended to the returned slice.
	scratch := make([]int, 0, len(l.Faults))
	activeOf := func(pred func(*fault.Fault) bool) []int {
		scratch = scratch[:0]
		for i, f := range l.Faults {
			if pred(f) {
				scratch = append(scratch, i)
			}
		}
		return scratch
	}
	untried := func(f *fault.Fault) bool { return f.Status == fault.Untried }
	unclassified := func(f *fault.Fault) bool {
		return f.Status == fault.Untried || f.Status == fault.Aborted
	}
	faultBuf := make([]*fault.Fault, 0, len(l.Faults))
	detBuf := make([]logic.Word, len(l.Faults))
	detectBlock := func(cand []faultsim.Test, pred func(*fault.Fault) bool, tier obs.Tier) []faultsim.Test {
		b := pool.SimBlock(cand)
		active := activeOf(pred)
		faults := faultBuf[:0]
		for _, i := range active {
			faults = append(faults, l.Faults[i])
		}
		det := detBuf[:len(active)]
		pool.DetectsMany(faults, b, det)
		credit := make([]bool, len(cand))
		for j, i := range active {
			if det[j] == 0 {
				continue
			}
			f := l.Faults[i]
			f.Status = fault.Detected
			prov[i].tier = tier
			if tier == obs.TierCache {
				res.CacheHits++
			}
			first := 0
			for det[j]>>uint(first)&1 == 0 {
				first++
			}
			credit[first] = true
			if witness != nil {
				witness[i] = cand[first]
			}
		}
		var kept []faultsim.Test
		for p, ok := range credit {
			if ok {
				kept = append(kept, cand[p])
			}
		}
		return kept
	}

	// Phase 0: consult the verdict cache. Undetectable verdicts are taken
	// as-is; Detected verdicts contribute their witness vectors, which are
	// replayed as seed tests with first-detection credit and dropping —
	// sound even for stale or colliding entries, which simply detect
	// nothing and fall through to PODEM.
	// hasher serves both the verdict cache and the SAT escalation memo; it
	// is built once when either consumer is active.
	var hasher *fcache.Hasher
	if cfg.Cache != nil || cfg.SATEscalate {
		hasher = fcache.NewHasher(c)
		keys = make([]fcache.Key, len(l.Faults))
	}
	if cfg.Cache != nil {
		spCache := obs.Start(cfg.Obs, "atpg/cache", obs.Int("faults", len(l.Faults)))
		witness = make([]faultsim.Test, len(l.Faults))
		var seeds []faultsim.Test
		seen := make(map[string]bool)
		for i, f := range l.Faults {
			if f.Status != fault.Untried {
				continue
			}
			keys[i] = hasher.FaultKey(f)
			if keys[i].Zero() {
				continue
			}
			res.CacheLookups++
			e, ok := cfg.Cache.Lookup(keys[i])
			if !ok {
				continue
			}
			switch e.Status {
			case fault.Undetectable:
				f.Status = fault.Undetectable
				res.CacheHits++
				prov[i].tier = obs.TierCache
			case fault.Detected:
				if len(e.Vec) != npi || (e.Init != nil && len(e.Init) != npi) {
					continue // witness from a different PI interface
				}
				sig := string(e.Vec) + "\x00" + string(e.Init)
				if !seen[sig] {
					seen[sig] = true
					seeds = append(seeds, faultsim.Test{Init: e.Init, Vec: e.Vec})
				}
			}
		}
		for start := 0; start < len(seeds) && !resilience.Done(ctx); start += 64 {
			end := start + 64
			if end > len(seeds) {
				end = len(seeds)
			}
			tests = append(tests, detectBlock(seeds[start:end], untried, obs.TierCache)...)
		}
		cfg.Obs.Counter("atpg/cache_replayed_witnesses").Add(int64(len(seeds)))
		spCache.Annotate(obs.Int("replayed_witnesses", len(seeds)))
		spCache.End()
	}

	// Phase 0.5: static implication screen. The closure is built once per
	// run and every still-untried fault whose excitation or propagation
	// requirements conflict with it is proven Undetectable without a
	// search. Verdicts land in the same status field the PODEM merge
	// writes, so the cache epilogue publishes them under the usual cone
	// keys and later runs reuse them as ordinary cached proofs. The whole
	// phase is skipped when cancellation is already observed — it either
	// contributes every verdict the closure supports or none, never a
	// partial set.
	var eng *implic.Engine
	if cfg.Static != implic.ModeOff && !resilience.Done(ctx) {
		anyUntried := false
		for _, f := range l.Faults {
			if f.Status == fault.Untried {
				anyUntried = true
				break
			}
		}
		if anyUntried {
			spStatic := obs.Start(cfg.Obs, "atpg/static", obs.Int("faults", len(l.Faults)))
			eng = implic.New(c)
			for i, f := range l.Faults {
				if f.Status == fault.Untried && eng.Undetectable(f) {
					f.Status = fault.Undetectable
					res.StaticProven++
					prov[i].tier = obs.TierImplic
				}
			}
			st := eng.Stats()
			cfg.Obs.Counter("atpg/static_proven").Add(int64(res.StaticProven))
			cfg.Obs.Counter("atpg/static_constants").Add(int64(st.Constants))
			cfg.Obs.Counter("atpg/static_implications").Add(int64(st.Implications))
			spStatic.Annotate(obs.Int("proven", res.StaticProven),
				obs.Int("constants", st.Constants))
			spStatic.End()
		}
	}
	if cfg.Static != implic.ModeSeed {
		eng = nil // screen mode must not perturb the searches
	}

	// Phase 1: random pattern pairs with fault dropping; keep only tests
	// that are first to detect at least one fault. The shared rng draws the
	// same candidate vectors for every worker count and cache state.
	spRandom := obs.Start(cfg.Obs, "atpg/random", obs.Int("blocks", cfg.RandomBlocks))
	for blk := 0; blk < cfg.RandomBlocks && !resilience.Done(ctx); blk++ {
		if npi == 0 {
			break
		}
		cand := make([]faultsim.Test, 64)
		for i := range cand {
			cand[i] = faultsim.Test{Init: randomVec(rng, npi), Vec: randomVec(rng, npi)}
		}
		tests = append(tests, detectBlock(cand, untried, obs.TierCollateral)...)
	}
	spRandom.End()

	// Phase 2: PODEM per remaining fault, in fixed-size batches. Each batch
	// is searched in parallel — every fault with its own rng stream seeded
	// from (cfg.Seed, fault ID) — then merged in fault-ID order: a fault
	// collaterally detected by a test emitted earlier in the merge discards
	// its speculative outcome, exactly as if it had never been searched.
	// Counter handles are resolved once; on a nil tracer they are nil and
	// every Add below is a free no-op.
	cSearches := cfg.Obs.Counter("atpg/podem_searches")
	cBacktracks := cfg.Obs.Counter("atpg/podem_backtracks")
	cCollateral := cfg.Obs.Counter("atpg/collateral_drops")
	// Run-local mirrors of the search counters feed the ledger's stage
	// record (the obs counters aggregate across runs and may be nil).
	var totSearches, totBacktracks int64
	// The histogram's top bucket tracks the configured limit, so telemetry
	// from a raised or lowered limit is never silently truncated.
	hbounds := make([]float64, 0, 9)
	for _, b := range []float64{0, 1, 4, 16, 64, 256, 1024, 4096} {
		if b < float64(cfg.BacktrackLimit) {
			hbounds = append(hbounds, b)
		}
	}
	hbounds = append(hbounds, float64(cfg.BacktrackLimit))
	hBacktracks := cfg.Obs.Histogram("atpg/podem_backtracks_per_search", hbounds...)
	gens := make([]*Generator, workers)
	newGen := func() *Generator {
		g := NewGenerator(c, order, levels, cfg.BacktrackLimit)
		if eng != nil {
			g.SeedImplications(eng)
		}
		return g
	}
	remaining := append([]int(nil), activeOf(unclassified)...)
	spPodem := obs.Start(cfg.Obs, "atpg/podem", obs.Int("remaining", len(remaining)))
	type outcomeRec struct {
		out SearchOutcome
		tv  *TestVec
		bt  int   // PODEM backtracks spent on this fault's searches
		us  int64 // wall micros, measured only when a ledger is attached
	}
	outcomes := make([]outcomeRec, podemBatch)
	quar := make([]bool, podemBatch)
	batch := make([]int, 0, podemBatch)
	// search runs one fault's PODEM search under the quarantine contract:
	// the worker's pooled generator is taken (nilled out) for the duration
	// and handed back only on clean return, so a panic mid-search strands
	// the possibly-corrupted generator instead of the next fault inheriting
	// it. Outcomes are identical whether a pooled or fresh generator runs
	// the search — a Generator carries no cross-fault state — which is why
	// the post-panic retry below reproduces the uninjured run exactly.
	search := func(g *Generator, j, attempt int) *Generator {
		f := l.Faults[batch[j]]
		if cfg.InjectPanic != nil && cfg.InjectPanic(f.ID, attempt) {
			panic(fmt.Sprintf("chaos: injected worker panic on fault %d (attempt %d)", f.ID, attempt))
		}
		frng := rand.New(rand.NewSource(faultSeed(cfg.Seed, f.ID)))
		bt0 := g.Backtracks()
		var us0 int64
		if timed {
			us0 = obs.NowMicros()
		}
		out, tv := g.Generate(f, frng)
		var us int64
		if timed {
			us = obs.NowMicros() - us0
		}
		outcomes[j] = outcomeRec{out, tv, g.Backtracks() - bt0, us}
		return g
	}
	cRecovered := cfg.Obs.Counter("atpg/worker_panics_recovered")
	cQuarantined := cfg.Obs.Counter("atpg/faults_quarantined")

	// SAT escalation tier: LimitExceeded outcomes are re-resolved to
	// completion in the sequential merge (never inside a parallel batch), so
	// memo reads/writes, counters and verdicts stay scheduling-invariant.
	// The escalator seeds static implications only in ModeSeed — the same
	// rule PODEM follows — so each static mode keeps its documented
	// table-identity property.
	var esc *Escalator
	var satMemo map[fcache.Key]bool
	cSatEsc := cfg.Obs.Counter("atpg/sat_escalations")
	cSatSolves := cfg.Obs.Counter("atpg/sat_solves")
	cSatConflicts := cfg.Obs.Counter("atpg/sat_conflicts")
	cSatDetected := cfg.Obs.Counter("atpg/sat_detected")
	cSatUndetectable := cfg.Obs.Counter("atpg/sat_undetectable")
	cSatMemoHits := cfg.Obs.Counter("atpg/sat_memo_hits")
	if cfg.SATEscalate {
		esc = NewEscalator(c, eng)
		satMemo = make(map[fcache.Key]bool)
	}
	escalate := func(i int, f *fault.Fault) (SearchOutcome, *TestVec, obs.Tier, int64) {
		if keys[i].Zero() {
			keys[i] = hasher.FaultKey(f)
		}
		if !keys[i].Zero() && satMemo[keys[i]] {
			res.SATMemoHits++
			cSatMemoHits.Inc()
			return ProvenImpossible, nil, obs.TierSATMemo, 0
		}
		srng := rand.New(rand.NewSource(faultSeed(cfg.Seed^satSeedSalt, f.ID)))
		out, tv, sst := esc.Resolve(f, srng)
		res.SATEscalations++
		res.SATConflicts += sst.Conflicts
		cSatEsc.Inc()
		cSatSolves.Add(int64(sst.Solves))
		cSatConflicts.Add(sst.Conflicts)
		switch out {
		case FoundTest:
			res.SATDetected++
			cSatDetected.Inc()
		case ProvenImpossible:
			res.SATUndetectable++
			cSatUndetectable.Inc()
			if !keys[i].Zero() {
				satMemo[keys[i]] = true
			}
		}
		return out, tv, obs.TierSAT, sst.Conflicts
	}
	cursor := 0
	for cursor < len(remaining) {
		batch = batch[:0]
		for cursor < len(remaining) && len(batch) < podemBatch {
			i := remaining[cursor]
			cursor++
			if unclassified(l.Faults[i]) {
				batch = append(batch, i)
			}
		}
		if len(batch) == 0 {
			break
		}
		for j := range quar {
			quar[j] = false
		}
		rep := par.EachGuard(ctx, len(batch), workers, 1, func(w, j int) {
			g := gens[w]
			gens[w] = nil
			if g == nil {
				g = newGen()
			}
			gens[w] = search(g, j, 0)
		}, func(j int) {
			// Retry once on a brand-new generator; a second panic
			// quarantines the fault (EachGuard recovers it too).
			search(newGen(), j, 1)
		})
		if rep.Err != nil {
			// Cancelled mid-batch: discard the whole batch unmerged, so the
			// resolved set stays a batch-prefix of the merge sequence.
			break
		}
		res.Recovered += rep.Recovered
		cRecovered.Add(int64(rep.Recovered))
		for _, j := range rep.Quarantined {
			quar[j] = true
		}
		for j, i := range batch {
			if quar[j] {
				// Both attempts panicked: outcomes[j] is stale garbage.
				// Quarantine the fault as Aborted — an honest "the engine
				// could not finish this search" — instead of dying.
				f := l.Faults[i]
				if unclassified(f) {
					f.Status = fault.Aborted
					prov[i].tier = obs.TierPodem
					res.Quarantined = append(res.Quarantined, f.ID)
					cQuarantined.Inc()
				}
				continue
			}
			// Engine-cost telemetry is recorded for every search run, even
			// ones whose outcome a collateral drop discards — the cost was
			// paid either way. The sequential merge keeps counter values
			// deterministic, not just totals.
			cSearches.Inc()
			cBacktracks.Add(int64(outcomes[j].bt))
			hBacktracks.Observe(float64(outcomes[j].bt))
			totSearches++
			totBacktracks += int64(outcomes[j].bt)
			f := l.Faults[i]
			if !unclassified(f) {
				cCollateral.Inc()
				continue // dropped by an earlier test in this merge
			}
			out, escTV := outcomes[j].out, outcomes[j].tv
			tier, conf, us := obs.TierPodem, int64(0), outcomes[j].us
			if out == LimitExceeded && esc != nil {
				var esc0 int64
				if timed {
					esc0 = obs.NowMicros()
				}
				out, escTV, tier, conf = escalate(i, f)
				if timed {
					us += obs.NowMicros() - esc0
				}
			}
			prov[i] = provInfo{tier, outcomes[j].bt, conf, us}
			switch out {
			case FoundTest:
				tv := escTV
				t := faultsim.Test{Init: tv.Init, Vec: tv.Vec}
				tests = append(tests, t)
				f.Status = fault.Detected
				if witness != nil {
					witness[i] = t
				}
				// Drop collaterally-detected faults (the new test is
				// already credited: it detects f).
				b := pool.SimBlock([]faultsim.Test{t})
				active := activeOf(unclassified)
				faults := faultBuf[:0]
				for _, k := range active {
					faults = append(faults, l.Faults[k])
				}
				det := detBuf[:len(active)]
				pool.DetectsMany(faults, b, det)
				for dj, k := range active {
					if det[dj] != 0 {
						l.Faults[k].Status = fault.Detected
						prov[k].tier = obs.TierCollateral
						cCollateral.Inc()
						if witness != nil {
							witness[k] = t
						}
					}
				}
			case ProvenImpossible:
				f.Status = fault.Undetectable
			case LimitExceeded:
				f.Status = fault.Aborted
			}
		}
	}

	spPodem.Annotate(obs.Int("recovered", res.Recovered),
		obs.Int("quarantined", len(res.Quarantined)))
	spPodem.End()

	// Phase 3: reverse-order compaction — keep only tests that are first
	// to detect some fault when simulating in reverse order. A run already
	// cancelled skips it (compaction of a partial test set is meaningless);
	// a cancellation arriving *during* it is caught by the finalize below,
	// which marks the whole run cancelled so the half-compacted set is
	// discarded by the caller rather than reported as complete.
	if !cfg.NoCompact && len(tests) > 0 && !resilience.Done(ctx) {
		spCompact := obs.Start(cfg.Obs, "atpg/compact", obs.Int("tests", len(tests)))
		rev := make([]faultsim.Test, len(tests))
		for i, t := range tests {
			rev[len(tests)-1-i] = t
		}
		per := pool.DetectedBy(l, rev)
		var kept []faultsim.Test
		for i := len(rev) - 1; i >= 0; i-- {
			if per[i] > 0 {
				kept = append(kept, rev[i])
			}
		}
		tests = kept
		spCompact.Annotate(obs.Int("kept", len(kept)))
		spCompact.End()
	}

	// Cancellation finalize: whatever phase the cancel landed in, the run
	// reports Cancelled plus exactly which fault IDs carry a final verdict
	// at the abort boundary. Statuses are only ever written in sequential
	// merge code, so this set is a consistent prefix of the merge sequence.
	if resilience.Done(ctx) {
		res.Cancelled = true
		for _, f := range l.Faults {
			if f.Status != fault.Untried {
				res.Resolved = append(res.Resolved, f.ID)
			}
		}
		cfg.Obs.Counter("atpg/cancelled_runs").Inc()
	}

	// Epilogue: publish verdicts. Stores run sequentially in fault-ID
	// order with first-write-wins semantics, so the cache content is as
	// deterministic as the run itself. Aborted verdicts are never cached,
	// and a cancelled run publishes nothing — the cache content stays a
	// function of completed runs only.
	if cfg.Cache != nil && !res.Cancelled {
		for i, f := range l.Faults {
			if keys[i].Zero() {
				continue
			}
			switch f.Status {
			case fault.Undetectable:
				cfg.Cache.Store(keys[i], fcache.Entry{Status: fault.Undetectable})
			case fault.Detected:
				if witness[i].Vec != nil {
					cfg.Cache.Store(keys[i], fcache.Entry{
						Status: fault.Detected,
						Init:   witness[i].Init,
						Vec:    witness[i].Vec,
					})
				}
			}
		}
	}

	res.Tests = tests
	for i, f := range l.Faults {
		switch f.Status {
		case fault.Detected:
			res.Detected++
		case fault.Undetectable:
			res.Undetectable++
		case fault.Aborted:
			res.Aborted++
		}
		if f.Status != fault.Untried {
			res.Tiers.Add(prov[i].tier)
		}
	}

	// Flight-recorder emission: one stage record, then every verdict in
	// fault-ID order — all from state the sequential merge wrote, so the
	// records (minus timings) are byte-identical at any worker count. A
	// cancelled run emits nothing: its statuses are a prefix of a stage,
	// and the resumed run will re-analyze and emit the complete stage.
	if cfg.Ledger != nil && !res.Cancelled {
		cfg.Ledger.Stage(obs.LedgerRecord{
			Stage:        cfg.Stage,
			Circuit:      c.Name,
			Gates:        len(c.Gates),
			Faults:       len(l.Faults),
			Detected:     res.Detected,
			Undetectable: res.Undetectable,
			Aborted:      res.Aborted,
			Tiers:        res.Tiers,
			Searches:     totSearches,
			Backtracks:   totBacktracks,
			Conflicts:    res.SATConflicts,
			Micros:       obs.NowMicros() - runT0,
		})
		for i, f := range l.Faults {
			if f.Status == fault.Untried {
				continue
			}
			cfg.Ledger.Verdict(obs.LedgerRecord{
				Fault:  f.ID,
				Status: f.Status.String(),
				Tier:   prov[i].tier,
				BT:     prov[i].bt,
				Conf:   prov[i].conf,
				Micros: prov[i].us,
			})
		}
	}
	if timed {
		// The run's costliest searches, for the report's slow-search block.
		// Only faults that ran (or escalated) their own search carry timing.
		var slow []obs.SlowSearch
		for i, f := range l.Faults {
			switch prov[i].tier {
			case obs.TierPodem, obs.TierSAT, obs.TierSATMemo:
				slow = append(slow, obs.SlowSearch{
					Fault: f.ID, Tier: prov[i].tier,
					Backtracks: prov[i].bt, Micros: prov[i].us,
				})
			}
		}
		sort.Slice(slow, func(a, b int) bool {
			if slow[a].Micros != slow[b].Micros {
				return slow[a].Micros > slow[b].Micros
			}
			return slow[a].Fault < slow[b].Fault
		})
		if len(slow) > 5 {
			slow = slow[:5]
		}
		res.Slowest = slow
	}
	if reg := cfg.Obs.Registry(); reg != nil {
		reg.Counter("atpg/faults_classified").Add(int64(len(l.Faults)))
		reg.Counter("atpg/detected").Add(int64(res.Detected))
		reg.Counter("atpg/undetectable").Add(int64(res.Undetectable))
		reg.Counter("atpg/aborted").Add(int64(res.Aborted))
		reg.Counter("atpg/tests_kept").Add(int64(len(res.Tests)))
		reg.Counter("fcache/lookups").Add(int64(res.CacheLookups))
		reg.Counter("fcache/hits").Add(int64(res.CacheHits))
	}
	return res
}

// satSeedSalt decorrelates the escalation tier's witness-fill rng stream
// from the PODEM search stream of the same fault: both derive from
// faultSeed, but over different run seeds.
const satSeedSalt int64 = 0x5eedc0de

// faultSeed derives the per-fault rng seed: a splitmix64-style mix of the
// run seed and the fault ID, so each fault's search consumes an independent,
// scheduling-invariant random stream.
func faultSeed(seed int64, id int) int64 {
	x := uint64(seed)*0x9e3779b97f4a7c15 + uint64(id)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x)
}

func randomVec(rng *rand.Rand, n int) []uint8 {
	v := make([]uint8, n)
	for i := range v {
		v[i] = uint8(rng.Intn(2))
	}
	return v
}
