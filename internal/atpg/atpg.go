package atpg

import (
	"math/rand"

	"dfmresyn/internal/fault"
	"dfmresyn/internal/faultsim"
	"dfmresyn/internal/netlist"
)

// Config controls the test-generation run.
type Config struct {
	// BacktrackLimit bounds each PODEM search; a fault whose search
	// exhausts the limit is marked Aborted rather than Undetectable.
	BacktrackLimit int
	// RandomBlocks is the number of 64-test random-pair blocks simulated
	// before the deterministic phase.
	RandomBlocks int
	// Seed drives all randomness (pattern fill, random phase).
	Seed int64
	// NoCompact disables reverse-order test-set compaction.
	NoCompact bool
}

// DefaultConfig returns the configuration used throughout the experiments.
// The backtrack limit is sized so that redundancy proofs that must exhaust
// the value space of a ~12-input cone (consensus-style redundancy wrapped
// around comparators) complete instead of aborting.
func DefaultConfig() Config {
	return Config{BacktrackLimit: 12000, RandomBlocks: 6, Seed: 1}
}

// Result summarizes a test-generation run.
type Result struct {
	Tests        []faultsim.Test
	Detected     int
	Undetectable int
	Aborted      int
}

// Run generates a test set T detecting every detectable fault in l and
// proves the remaining faults undetectable (the set U), mirroring the
// paper's Section II procedure. Fault statuses in l are updated in place.
func Run(c *netlist.Circuit, l *fault.List, cfg Config) Result {
	if cfg.BacktrackLimit <= 0 {
		cfg.BacktrackLimit = 12000
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	eng := faultsim.New(c)
	order := eng.Circuit().Levelize()
	levels := c.Levels()

	var tests []faultsim.Test

	// Phase 1: random pattern pairs with fault dropping; keep only tests
	// that are first to detect at least one fault.
	npi := len(c.PIs)
	for blk := 0; blk < cfg.RandomBlocks; blk++ {
		if npi == 0 {
			break
		}
		cand := make([]faultsim.Test, 64)
		for i := range cand {
			cand[i] = faultsim.Test{Init: randomVec(rng, npi), Vec: randomVec(rng, npi)}
		}
		b := eng.SimBlock(cand)
		credit := make([]bool, len(cand))
		for _, f := range l.Faults {
			if f.Status != fault.Untried {
				continue
			}
			det := eng.Detects(f, b)
			if det == 0 {
				continue
			}
			f.Status = fault.Detected
			for p := 0; p < len(cand); p++ {
				if det>>uint(p)&1 == 1 {
					credit[p] = true
					break
				}
			}
		}
		for p, ok := range credit {
			if ok {
				tests = append(tests, cand[p])
			}
		}
	}

	// Phase 2: deterministic PODEM per remaining fault, dropping
	// collaterally-detected faults after each new test.
	gen := NewGenerator(c, order, levels, cfg.BacktrackLimit)
	for _, f := range l.Faults {
		if f.Status != fault.Untried && f.Status != fault.Aborted {
			continue
		}
		outcome, tv := gen.Generate(f, rng)
		switch outcome {
		case FoundTest:
			t := faultsim.Test{Init: tv.Init, Vec: tv.Vec}
			tests = append(tests, t)
			f.Status = fault.Detected
			b := eng.SimBlock([]faultsim.Test{t})
			for _, g := range l.Faults {
				if g.Status != fault.Untried && g.Status != fault.Aborted {
					continue
				}
				if eng.Detects(g, b) != 0 {
					g.Status = fault.Detected
				}
			}
		case ProvenImpossible:
			f.Status = fault.Undetectable
		case LimitExceeded:
			f.Status = fault.Aborted
		}
	}

	// Phase 3: reverse-order compaction — keep only tests that are first
	// to detect some fault when simulating in reverse order.
	if !cfg.NoCompact && len(tests) > 0 {
		rev := make([]faultsim.Test, len(tests))
		for i, t := range tests {
			rev[len(tests)-1-i] = t
		}
		per := eng.DetectedBy(l, rev)
		var kept []faultsim.Test
		for i := len(rev) - 1; i >= 0; i-- {
			if per[i] > 0 {
				kept = append(kept, rev[i])
			}
		}
		tests = kept
	}

	res := Result{Tests: tests}
	for _, f := range l.Faults {
		switch f.Status {
		case fault.Detected:
			res.Detected++
		case fault.Undetectable:
			res.Undetectable++
		case fault.Aborted:
			res.Aborted++
		}
	}
	return res
}

func randomVec(rng *rand.Rand, n int) []uint8 {
	v := make([]uint8, n)
	for i := range v {
		v[i] = uint8(rng.Intn(2))
	}
	return v
}
