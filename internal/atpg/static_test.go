package atpg

import (
	"context"
	"testing"

	"dfmresyn/internal/fault"
	"dfmresyn/internal/implic"
	"dfmresyn/internal/netlist"
)

// buildAbsorbList: x = AND(a,b), y = OR(x,a) — x sa0 is undetectable
// (and statically provable), the rest of the stuck-at universe is not.
func buildAbsorbCircuit(t *testing.T) *netlist.Circuit {
	t.Helper()
	c := netlist.New("absorb", lib)
	a := c.AddPI("a")
	b := c.AddPI("b")
	x := c.AddGate("u0", lib.ByName("AND2X2"), a, b)
	y := c.AddGate("u1", lib.ByName("OR2X2"), x, a)
	c.MarkPO(y)
	return c
}

func stuckAtUniverse(c *netlist.Circuit) *fault.List {
	l := &fault.List{}
	for _, n := range c.Nets {
		for v := uint8(0); v <= 1; v++ {
			l.Add(&fault.Fault{Model: fault.StuckAt, Net: n, Value: v})
		}
	}
	return l
}

// TestStaticScreenClassifies: the screen proves the redundant fault with
// zero searches and the run's verdicts match a screen-off run exactly.
func TestStaticScreenClassifies(t *testing.T) {
	c := buildAbsorbCircuit(t)
	lOff := stuckAtUniverse(c)
	off := Run(c, lOff, Config{Seed: 5, Workers: 1})

	lScr := stuckAtUniverse(c)
	scr := Run(c, lScr, Config{Seed: 5, Workers: 1, Static: implic.ModeScreen})
	if scr.StaticProven == 0 {
		t.Fatal("screen proved nothing on a circuit with a known redundancy")
	}
	if off.StaticProven != 0 {
		t.Fatalf("screen-off run reports StaticProven=%d", off.StaticProven)
	}
	if scr.Detected != off.Detected || scr.Undetectable != off.Undetectable || scr.Aborted != off.Aborted {
		t.Fatalf("verdict totals differ: screen %+v vs off %+v", scr, off)
	}
	for i := range lOff.Faults {
		if lOff.Faults[i].Status != lScr.Faults[i].Status {
			t.Errorf("fault %d: status %v (off) vs %v (screen)", i,
				lOff.Faults[i].Status, lScr.Faults[i].Status)
		}
	}
}

// TestStaticScreenCancellationAtomic: a run cancelled before the
// implication-closure boundary must leave zero static verdicts — the
// phase contributes everything or nothing, so a checkpoint resume never
// sees a partially screened universe.
func TestStaticScreenCancellationAtomic(t *testing.T) {
	c := buildAbsorbCircuit(t)
	l := stuckAtUniverse(c)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := Run(c, l, Config{Seed: 5, Workers: 1, Static: implic.ModeScreen, Ctx: ctx})
	if !res.Cancelled {
		t.Fatal("pre-cancelled run should report Cancelled")
	}
	if res.StaticProven != 0 {
		t.Fatalf("cancelled run wrote %d static verdicts; the closure boundary must be atomic", res.StaticProven)
	}
	for _, f := range l.Faults {
		if f.Status != fault.Untried {
			t.Errorf("fault %d has status %v after a pre-cancelled run, want Untried", f.ID, f.Status)
		}
	}
}
