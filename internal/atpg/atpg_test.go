package atpg

import (
	"math/rand"
	"testing"

	"dfmresyn/internal/fault"
	"dfmresyn/internal/faultsim"
	"dfmresyn/internal/library"
	"dfmresyn/internal/netlist"
	"dfmresyn/internal/switchsim"
)

var lib = library.OSU018Like()

func gen(t *testing.T, c *netlist.Circuit, f *fault.Fault, limit int) (SearchOutcome, *TestVec) {
	t.Helper()
	order := c.Levelize()
	levels := c.Levels()
	rng := rand.New(rand.NewSource(9))
	return GenerateOne(c, order, levels, f, limit, rng)
}

// buildMux: y = NAND(NAND(a, ~s), NAND(b, s)) — a 2:1 mux.
func buildMux(t *testing.T) *netlist.Circuit {
	t.Helper()
	c := netlist.New("mux", lib)
	a := c.AddPI("a")
	b := c.AddPI("b")
	s := c.AddPI("s")
	sn := c.AddGate("u0", lib.ByName("INVX1"), s)
	t1 := c.AddGate("u1", lib.ByName("NAND2X1"), a, sn)
	t2 := c.AddGate("u2", lib.ByName("NAND2X1"), b, s)
	y := c.AddGate("u3", lib.ByName("NAND2X1"), t1, t2)
	c.MarkPO(y)
	return c
}

// buildConsensus: y = ab + (~a)c + bc with the bc term redundant.
func buildConsensus(t *testing.T) (*netlist.Circuit, *netlist.Net) {
	t.Helper()
	c := netlist.New("consensus", lib)
	a := c.AddPI("a")
	b := c.AddPI("b")
	cc := c.AddPI("c")
	an := c.AddGate("u_an", lib.ByName("INVX1"), a)
	ab := c.AddGate("u_ab", lib.ByName("AND2X2"), a, b)
	ac := c.AddGate("u_ac", lib.ByName("AND2X2"), an, cc)
	bc := c.AddGate("u_bc", lib.ByName("AND2X2"), b, cc)
	nor := c.AddGate("u_nor", lib.ByName("NOR3X1"), ab, ac, bc)
	y := c.AddGate("u_y", lib.ByName("INVX1"), nor)
	c.MarkPO(y)
	return c, bc
}

func verifyDetects(t *testing.T, c *netlist.Circuit, f *fault.Fault, tv *TestVec) {
	t.Helper()
	eng := faultsim.New(c)
	b := eng.SimBlock([]faultsim.Test{{Init: tv.Init, Vec: tv.Vec}})
	if eng.Detects(f, b) == 0 {
		t.Errorf("generated test does not detect %v", f)
	}
}

func TestStuckAtDetectableMux(t *testing.T) {
	c := buildMux(t)
	for _, n := range c.Nets {
		for v := uint8(0); v <= 1; v++ {
			f := &fault.Fault{Model: fault.StuckAt, Net: n, Value: v}
			out, tv := gen(t, c, f, 10000)
			if out != FoundTest {
				t.Errorf("sa%d@%s: outcome %d, want test (mux is irredundant)", v, n.Name, out)
				continue
			}
			verifyDetects(t, c, f, tv)
		}
	}
}

func TestConsensusRedundancy(t *testing.T) {
	c, bc := buildConsensus(t)
	// SA0 on the consensus term's output is the textbook redundant fault.
	f0 := &fault.Fault{Model: fault.StuckAt, Net: bc, Value: 0}
	out, _ := gen(t, c, f0, 10000)
	if out != ProvenImpossible {
		t.Errorf("bc/sa0 outcome %d, want proven undetectable", out)
	}
	// SA1 on the same net is detectable.
	f1 := &fault.Fault{Model: fault.StuckAt, Net: bc, Value: 1}
	out, tv := gen(t, c, f1, 10000)
	if out != FoundTest {
		t.Fatalf("bc/sa1 outcome %d, want test", out)
	}
	verifyDetects(t, c, f1, tv)
}

func TestBranchFaultGeneration(t *testing.T) {
	c := buildMux(t)
	// Branch sa1 on pin 1 of u3 (the t2 input).
	u3 := c.NetByName("u3_o").Driver
	f := &fault.Fault{Model: fault.StuckAt, Net: u3.Fanin[1], Value: 1,
		BranchGate: u3, BranchPin: 1}
	out, tv := gen(t, c, f, 10000)
	if out != FoundTest {
		t.Fatalf("branch fault outcome %d, want test", out)
	}
	verifyDetects(t, c, f, tv)
}

func TestTransitionGeneration(t *testing.T) {
	c := buildMux(t)
	a := c.NetByName("a")
	// Slow-to-rise on a.
	f := &fault.Fault{Model: fault.Transition, Net: a, Value: 0}
	out, tv := gen(t, c, f, 10000)
	if out != FoundTest {
		t.Fatalf("transition outcome %d, want test", out)
	}
	if tv.Init == nil {
		t.Fatal("transition test must be two-pattern")
	}
	verifyDetects(t, c, f, tv)
}

func TestTransitionOnConstantNetUndetectable(t *testing.T) {
	// k = NAND(a, ~a) is constant 1.
	c := netlist.New("const", lib)
	a := c.AddPI("a")
	an := c.AddGate("u_inv", lib.ByName("INVX1"), a)
	k := c.AddGate("u_k", lib.ByName("NAND2X1"), a, an)
	// Give the constant net observable downstream logic.
	b := c.AddPI("b")
	y := c.AddGate("u_y", lib.ByName("AND2X2"), k, b)
	c.MarkPO(y)

	// Slow-to-fall (Value=1): needs the site to go 1 -> 0; SA1 at a
	// constant-1 net is unexcitable.
	f := &fault.Fault{Model: fault.Transition, Net: k, Value: 1}
	out, _ := gen(t, c, f, 10000)
	if out != ProvenImpossible {
		t.Errorf("slow-to-fall on constant-1 net: outcome %d, want undetectable", out)
	}
	// Slow-to-rise (Value=0): initialization at 0 is impossible.
	f0 := &fault.Fault{Model: fault.Transition, Net: k, Value: 0}
	out, _ = gen(t, c, f0, 10000)
	if out != ProvenImpossible {
		t.Errorf("slow-to-rise on constant-1 net: outcome %d, want undetectable", out)
	}
}

func TestBridgeGeneration(t *testing.T) {
	c := buildMux(t)
	a := c.NetByName("a")
	b := c.NetByName("b")
	f := &fault.Fault{Model: fault.Bridge, Net: a, Other: b}
	out, tv := gen(t, c, f, 10000)
	if out != FoundTest {
		t.Fatalf("bridge outcome %d, want test", out)
	}
	verifyDetects(t, c, f, tv)
}

func TestBridgeBetweenEqualNetsUndetectable(t *testing.T) {
	// b1 = BUF(a), b2 = INV(INV(a)): always equal.
	c := netlist.New("eq", lib)
	a := c.AddPI("a")
	b1 := c.AddGate("u_b", lib.ByName("BUFX2"), a)
	i1 := c.AddGate("u_i1", lib.ByName("INVX1"), a)
	b2 := c.AddGate("u_i2", lib.ByName("INVX1"), i1)
	y := c.AddGate("u_y", lib.ByName("XOR2X1"), b1, b2)
	c.MarkPO(y)
	f := &fault.Fault{Model: fault.Bridge, Net: b1, Other: b2}
	out, _ := gen(t, c, f, 10000)
	if out != ProvenImpossible {
		t.Errorf("bridge between always-equal nets: outcome %d, want undetectable", out)
	}
}

func TestCellAwareGeneration(t *testing.T) {
	c := buildMux(t)
	u1 := c.NetByName("u1_o").Driver
	// Static fault: output flips when inputs are (1,1).
	beh := &switchsim.Behavior{Inputs: 2, StaticMask: 1 << 0b11}
	f := &fault.Fault{Model: fault.CellAware, Gate: u1, Behavior: beh, Internal: true}
	out, tv := gen(t, c, f, 10000)
	if out != FoundTest {
		t.Fatalf("cell-aware outcome %d, want test", out)
	}
	verifyDetects(t, c, f, tv)
}

func TestCellAwareUnjustifiableAssignment(t *testing.T) {
	// Gate with both inputs tied to the same net: assignment (0,1) is
	// unreachable.
	c := netlist.New("tied", lib)
	a := c.AddPI("a")
	g := c.AddGate("u_g", lib.ByName("NAND2X1"), a, a)
	y := c.AddGate("u_y", lib.ByName("INVX1"), g)
	c.MarkPO(y)
	beh := &switchsim.Behavior{Inputs: 2, StaticMask: 1 << 0b01}
	f := &fault.Fault{Model: fault.CellAware, Gate: g.Driver, Behavior: beh, Internal: true}
	out, _ := gen(t, c, f, 10000)
	if out != ProvenImpossible {
		t.Errorf("unjustifiable cell-aware assignment: outcome %d, want undetectable", out)
	}
}

func TestCellAwareDynamicGeneration(t *testing.T) {
	c := buildMux(t)
	u1 := c.NetByName("u1_o").Driver
	pm := make([]uint64, 4)
	pm[0b00] = 1 << 0b11 // pair (00 -> 11) flips output
	beh := &switchsim.Behavior{Inputs: 2, PairMask: pm}
	f := &fault.Fault{Model: fault.CellAware, Gate: u1, Behavior: beh, Internal: true}
	out, tv := gen(t, c, f, 10000)
	if out != FoundTest {
		t.Fatalf("dynamic cell-aware outcome %d, want test", out)
	}
	if tv.Init == nil {
		t.Fatal("dynamic cell-aware test must be two-pattern")
	}
	verifyDetects(t, c, f, tv)
}

// TestPodemMatchesBruteForce is the gold consistency test: on random small
// circuits, PODEM's detectable/undetectable verdict for every stem stuck-at
// fault must match exhaustive enumeration of all input vectors.
func TestPodemMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	cellNames := []string{"NAND2X1", "NOR2X1", "XOR2X1", "INVX1", "AND2X2", "OAI21X1", "MUX2X1"}
	for trial := 0; trial < 20; trial++ {
		c := netlist.New("rand", lib)
		var nets []*netlist.Net
		for i := 0; i < 4; i++ {
			nets = append(nets, c.AddPI(string(rune('a'+i))))
		}
		for i := 0; i < 8; i++ {
			cell := lib.ByName(cellNames[rng.Intn(len(cellNames))])
			fanin := make([]*netlist.Net, cell.NumInputs())
			for j := range fanin {
				fanin[j] = nets[rng.Intn(len(nets))]
			}
			nets = append(nets, c.AddGate("", cell, fanin...))
		}
		c.MarkPO(nets[len(nets)-1])
		c.MarkPO(nets[len(nets)-2])

		eng := faultsim.New(c)
		// Exhaustive test block: all 16 vectors.
		var all []faultsim.Test
		for p := uint(0); p < 16; p++ {
			all = append(all, faultsim.Test{
				Vec: []uint8{uint8(p & 1), uint8(p >> 1 & 1), uint8(p >> 2 & 1), uint8(p >> 3 & 1)}})
		}
		blk := eng.SimBlock(all)

		for _, n := range c.Nets {
			for v := uint8(0); v <= 1; v++ {
				f := &fault.Fault{Model: fault.StuckAt, Net: n, Value: v}
				brute := eng.Detects(f, blk) != 0
				out, tv := gen(t, c, f, 100000)
				switch out {
				case FoundTest:
					if !brute {
						t.Fatalf("trial %d: PODEM found test for undetectable sa%d@%s", trial, v, n.Name)
					}
					verifyDetects(t, c, f, tv)
				case ProvenImpossible:
					if brute {
						t.Fatalf("trial %d: PODEM claims undetectable but sa%d@%s is detectable", trial, v, n.Name)
					}
				case LimitExceeded:
					t.Fatalf("trial %d: limit exceeded on a 4-PI circuit", trial)
				}
			}
		}
	}
}

// TestRunEndToEnd checks the full driver: status partitioning, and that the
// final compacted test set still detects every Detected fault.
func TestRunEndToEnd(t *testing.T) {
	c, bc := buildConsensus(t)
	l := &fault.List{}
	for _, n := range c.Nets {
		for v := uint8(0); v <= 1; v++ {
			l.Add(&fault.Fault{Model: fault.StuckAt, Net: n, Value: v})
		}
	}
	res := Run(c, l, DefaultConfig())
	if res.Detected+res.Undetectable+res.Aborted != l.Len() {
		t.Fatalf("status partition broken: %d+%d+%d != %d",
			res.Detected, res.Undetectable, res.Aborted, l.Len())
	}
	if res.Aborted != 0 {
		t.Errorf("aborts on a tiny circuit: %d", res.Aborted)
	}
	if res.Undetectable == 0 {
		t.Error("consensus circuit must have undetectable faults")
	}
	// bc/sa0 must be among them.
	for _, f := range l.Faults {
		if f.Net == bc && f.Value == 0 && f.Model == fault.StuckAt {
			if f.Status != fault.Undetectable {
				t.Errorf("bc/sa0 status = %v, want undetectable", f.Status)
			}
		}
	}
	// Re-simulate the final test set from scratch: every Detected fault
	// must be detected, every Undetectable fault must not be.
	fresh := faultsim.New(c)
	for _, f := range l.Faults {
		det := false
		for start := 0; start < len(res.Tests); start += 64 {
			end := start + 64
			if end > len(res.Tests) {
				end = len(res.Tests)
			}
			b := fresh.SimBlock(res.Tests[start:end])
			if fresh.Detects(f, b) != 0 {
				det = true
				break
			}
		}
		switch f.Status {
		case fault.Detected:
			if !det {
				t.Errorf("fault %v marked detected but T misses it after compaction", f)
			}
		case fault.Undetectable:
			if det {
				t.Errorf("fault %v marked undetectable but T detects it", f)
			}
		}
	}
}

func TestRunDeterministicAcrossSeedsForVerdicts(t *testing.T) {
	// Detected/undetectable verdicts must not depend on the seed (test
	// vectors may differ).
	c, _ := buildConsensus(t)
	statuses := func(seed int64) []fault.Status {
		l := &fault.List{}
		for _, n := range c.Nets {
			for v := uint8(0); v <= 1; v++ {
				l.Add(&fault.Fault{Model: fault.StuckAt, Net: n, Value: v})
			}
		}
		cfg := DefaultConfig()
		cfg.Seed = seed
		Run(c, l, cfg)
		out := make([]fault.Status, l.Len())
		for i, f := range l.Faults {
			out[i] = f.Status
		}
		return out
	}
	s1 := statuses(1)
	s2 := statuses(99)
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("fault %d verdict differs across seeds: %v vs %v", i, s1[i], s2[i])
		}
	}
}
