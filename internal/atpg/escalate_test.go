package atpg

import (
	"math/rand"
	"reflect"
	"testing"

	"dfmresyn/internal/fault"
	"dfmresyn/internal/faultsim"
	"dfmresyn/internal/implic"
	"dfmresyn/internal/switchsim"
)

// escalate_test.go is the SAT tier's differential harness: on small circuits
// the escalator's verdict must match exhaustive enumeration fault by fault,
// a backtrack-starved Run with escalation must reproduce an unlimited
// PODEM run's classification exactly, and everything must stay byte-
// identical across worker counts.

// escCrossCheck resolves one fault through the SAT escalator and compares
// against brute-force enumeration of the given test list.
func escCrossCheck(t *testing.T, cc *fault.Fault, esc *Escalator, eng *faultsim.Engine, tests []faultsim.Test, what string) {
	t.Helper()
	brute := bruteDetectable(eng, cc, tests)
	out, tv, st := esc.Resolve(cc, rand.New(rand.NewSource(11)))
	switch out {
	case FoundTest:
		if !brute {
			t.Fatalf("%s: SAT found a test for a brute-undetectable fault %v", what, cc)
		}
		b := eng.SimBlock([]faultsim.Test{{Init: tv.Init, Vec: tv.Vec}})
		if eng.Detects(cc, b) == 0 {
			t.Fatalf("%s: SAT witness does not detect %v", what, cc)
		}
	case ProvenImpossible:
		if brute {
			t.Fatalf("%s: SAT claims undetectable, brute force detects %v", what, cc)
		}
	case LimitExceeded:
		t.Fatalf("%s: escalator returned LimitExceeded — the solver has no limit", what)
	}
	if out != LimitExceeded && st.Solves == 0 && out == FoundTest {
		t.Fatalf("%s: FoundTest with zero solves", what)
	}
}

// TestEscalatorBruteStuckAt covers stem and fanout-branch stuck-ats on
// random 4-PI circuits.
func TestEscalatorBruteStuckAt(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	singles := allSingle()
	for trial := 0; trial < 8; trial++ {
		c := randCircuit(rng, 7)
		esc := NewEscalator(c, nil)
		eng := faultsim.New(c)
		for _, n := range c.Nets {
			for v := uint8(0); v <= 1; v++ {
				escCrossCheck(t, &fault.Fault{Model: fault.StuckAt, Net: n, Value: v},
					esc, eng, singles, "sat-stuckat")
				if len(n.Fanout) > 1 {
					p := n.Fanout[rng.Intn(len(n.Fanout))]
					escCrossCheck(t, &fault.Fault{Model: fault.StuckAt, Net: n, Value: v,
						BranchGate: p.Gate, BranchPin: p.Pin}, esc, eng, singles, "sat-branch")
				}
			}
		}
	}
}

func TestEscalatorBruteTransition(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	pairs := allPairs()
	for trial := 0; trial < 6; trial++ {
		c := randCircuit(rng, 7)
		esc := NewEscalator(c, nil)
		eng := faultsim.New(c)
		for _, n := range c.Nets {
			for v := uint8(0); v <= 1; v++ {
				escCrossCheck(t, &fault.Fault{Model: fault.Transition, Net: n, Value: v},
					esc, eng, pairs, "sat-transition")
			}
		}
	}
}

func TestEscalatorBruteBridge(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	singles := allSingle()
	for trial := 0; trial < 8; trial++ {
		c := randCircuit(rng, 7)
		esc := NewEscalator(c, nil)
		eng := faultsim.New(c)
		for k := 0; k < 10; k++ {
			a := c.Gates[rng.Intn(len(c.Gates))].Out
			b := c.Gates[rng.Intn(len(c.Gates))].Out
			if a == b {
				continue
			}
			escCrossCheck(t, &fault.Fault{Model: fault.Bridge, Net: a, Other: b},
				esc, eng, singles, "sat-bridge")
		}
	}
}

func TestEscalatorBruteCellAware(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	singles := allSingle()
	pairs := allPairs()
	for trial := 0; trial < 6; trial++ {
		c := randCircuit(rng, 7)
		esc := NewEscalator(c, nil)
		eng := faultsim.New(c)
		for k := 0; k < 6; k++ {
			g := c.Gates[rng.Intn(len(c.Gates))]
			ni := g.Type.NumInputs()
			n := uint(1) << uint(ni)
			mask := uint64(rng.Intn(int(uint64(1)<<n-1)) + 1)
			beh := &switchsim.Behavior{Inputs: ni, StaticMask: mask}
			escCrossCheck(t, &fault.Fault{Model: fault.CellAware, Internal: true, Gate: g, Behavior: beh},
				esc, eng, singles, "sat-cellaware-static")

			pm := make([]uint64, n)
			for j := 0; j < 3; j++ {
				pm[rng.Intn(int(n))] |= 1 << uint(rng.Intn(int(n)))
			}
			dbeh := &switchsim.Behavior{Inputs: ni, PairMask: pm}
			escCrossCheck(t, &fault.Fault{Model: fault.CellAware, Internal: true, Gate: g, Behavior: dbeh},
				esc, eng, pairs, "sat-cellaware-dynamic")
		}
	}
}

// TestEscalationMatchesUnlimitedPODEM is the differential harness of the
// escalation tier inside Run: a backtrack-starved configuration with SAT
// escalation must classify every fault exactly as an effectively unlimited
// PODEM run does — same per-fault statuses, zero Aborted — even though the
// test sets differ (SAT witnesses are not PODEM's vectors).
func TestEscalationMatchesUnlimitedPODEM(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	circuits := []int{25, 40}
	for ci, gates := range circuits {
		c := randCircuit(rng, gates)

		ref := DefaultConfig()
		ref.BacktrackLimit = 1 << 30 // effectively unlimited on a 4-PI circuit
		refSt, _, refRes := runSnapshot(c, ref)
		if refRes.Aborted != 0 {
			t.Fatalf("circuit %d: unlimited reference run aborted %d faults", ci, refRes.Aborted)
		}

		cfg := DefaultConfig()
		cfg.BacktrackLimit = 1 // starve PODEM: almost everything escalates
		cfg.SATEscalate = true
		st, _, res := runSnapshot(c, cfg)
		if res.Aborted != 0 {
			t.Errorf("circuit %d: %d faults still Aborted with escalation on", ci, res.Aborted)
		}
		if res.SATEscalations == 0 {
			t.Errorf("circuit %d: limit=1 run escalated nothing — harness is vacuous", ci)
		}
		if !reflect.DeepEqual(st, refSt) {
			for i := range st {
				if st[i] != refSt[i] {
					t.Errorf("circuit %d fault %d: escalated status %v, unlimited PODEM %v",
						ci, i, st[i], refSt[i])
				}
			}
		}
		if res.Detected != refRes.Detected || res.Undetectable != refRes.Undetectable {
			t.Errorf("circuit %d: partition %d/%d, unlimited PODEM %d/%d",
				ci, res.Detected, res.Undetectable, refRes.Detected, refRes.Undetectable)
		}
	}
}

// TestEscalationSeedModeSound: asserting static implications inside the CNF
// (Static seed mode) must not change any verdict.
func TestEscalationSeedModeSound(t *testing.T) {
	rng := rand.New(rand.NewSource(106))
	c := randCircuit(rng, 30)

	ref := DefaultConfig()
	ref.BacktrackLimit = 1 << 30
	refSt, _, _ := runSnapshot(c, ref)

	cfg := DefaultConfig()
	cfg.BacktrackLimit = 1
	cfg.SATEscalate = true
	cfg.Static = implic.ModeSeed
	st, _, res := runSnapshot(c, cfg)
	if res.Aborted != 0 {
		t.Errorf("%d faults still Aborted with escalation on", res.Aborted)
	}
	if !reflect.DeepEqual(st, refSt) {
		t.Errorf("seed-mode escalated statuses differ from unlimited PODEM")
	}
}

// TestEscalationByteIdenticalAcrossWorkers extends the engine's scheduling
// contract to the escalation tier: statuses, tests and every SAT counter
// must be identical at any worker count.
func TestEscalationByteIdenticalAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	c := randCircuit(rng, 40)
	cfg := DefaultConfig()
	cfg.BacktrackLimit = 1
	cfg.SATEscalate = true
	cfg.Workers = 1
	refSt, refTests, refRes := runSnapshot(c, cfg)
	if refRes.SATEscalations == 0 {
		t.Fatal("no escalations at limit=1 — determinism check is vacuous")
	}
	for _, w := range []int{2, 8} {
		cfg.Workers = w
		st, tests, res := runSnapshot(c, cfg)
		if !reflect.DeepEqual(st, refSt) {
			t.Errorf("Workers=%d: statuses differ from Workers=1", w)
		}
		if !reflect.DeepEqual(tests, refTests) {
			t.Errorf("Workers=%d: test set differs from Workers=1", w)
		}
		if res.SATEscalations != refRes.SATEscalations || res.SATConflicts != refRes.SATConflicts ||
			res.SATDetected != refRes.SATDetected || res.SATUndetectable != refRes.SATUndetectable ||
			res.SATMemoHits != refRes.SATMemoHits {
			t.Errorf("Workers=%d: SAT counters differ: %+v vs %+v", w, res, refRes)
		}
	}
}

// FuzzCNF drives the Tseitin encoder with fuzz-chosen circuit shapes and
// fault sites, cross-checking every verdict against brute-force enumeration
// and every witness against fault simulation.
func FuzzCNF(f *testing.F) {
	f.Add(int64(1), uint8(5), uint8(0))
	f.Add(int64(42), uint8(9), uint8(1))
	f.Add(int64(7), uint8(3), uint8(2))
	singles := allSingle()
	pairs := allPairs()
	f.Fuzz(func(t *testing.T, seed int64, gates, model uint8) {
		ng := 3 + int(gates%10)
		rng := rand.New(rand.NewSource(seed))
		c := randCircuit(rng, ng)
		esc := NewEscalator(c, nil)
		eng := faultsim.New(c)
		switch model % 3 {
		case 0: // stuck-at, stem and branch
			for _, n := range c.Nets {
				escCrossCheck(t, &fault.Fault{Model: fault.StuckAt, Net: n, Value: uint8(seed) & 1},
					esc, eng, singles, "fuzz-stuckat")
				if len(n.Fanout) > 1 {
					p := n.Fanout[0]
					escCrossCheck(t, &fault.Fault{Model: fault.StuckAt, Net: n, Value: uint8(seed) & 1,
						BranchGate: p.Gate, BranchPin: p.Pin}, esc, eng, singles, "fuzz-branch")
				}
			}
		case 1: // transition
			for _, n := range c.Nets {
				escCrossCheck(t, &fault.Fault{Model: fault.Transition, Net: n, Value: uint8(seed >> 1 & 1)},
					esc, eng, pairs, "fuzz-transition")
			}
		case 2: // bridge between two distinct gate outputs
			if len(c.Gates) >= 2 {
				a := c.Gates[rng.Intn(len(c.Gates))].Out
				b := c.Gates[rng.Intn(len(c.Gates))].Out
				if a != b {
					escCrossCheck(t, &fault.Fault{Model: fault.Bridge, Net: a, Other: b},
						esc, eng, singles, "fuzz-bridge")
				}
			}
		}
	})
}
