package library

import (
	"testing"

	"dfmresyn/internal/logic"
)

func TestOSU018LikeShape(t *testing.T) {
	lib := OSU018Like()
	if lib.Len() != 21 {
		t.Fatalf("library has %d cells, want 21 (as in the OSU 0.18um library)", lib.Len())
	}
	seen := map[string]bool{}
	for i, c := range lib.Cells {
		if c.Index != i {
			t.Errorf("%s: index %d, want %d", c.Name, c.Index, i)
		}
		if seen[c.Name] {
			t.Errorf("duplicate cell name %s", c.Name)
		}
		seen[c.Name] = true
		if lib.ByName(c.Name) != c {
			t.Errorf("ByName(%s) lookup failed", c.Name)
		}
		if len(c.InputCap) != c.NumInputs() {
			t.Errorf("%s: %d input caps for %d inputs", c.Name, len(c.InputCap), c.NumInputs())
		}
		if c.Area <= 0 || c.Intrinsic <= 0 || c.DriveRes <= 0 || c.Leakage <= 0 {
			t.Errorf("%s: non-positive electrical parameter", c.Name)
		}
		if len(c.Features) == 0 {
			t.Errorf("%s: no layout features", c.Name)
		}
	}
	if lib.ByName("NOSUCH") != nil {
		t.Error("ByName of missing cell must be nil")
	}
}

// expected logic functions, keyed by name, as evaluation closures.
var wantFuncs = map[string]func(a uint) uint8{
	"INVX1":   func(a uint) uint8 { return uint8(^a & 1) },
	"INVX2":   func(a uint) uint8 { return uint8(^a & 1) },
	"INVX4":   func(a uint) uint8 { return uint8(^a & 1) },
	"INVX8":   func(a uint) uint8 { return uint8(^a & 1) },
	"BUFX2":   func(a uint) uint8 { return uint8(a & 1) },
	"BUFX4":   func(a uint) uint8 { return uint8(a & 1) },
	"NAND2X1": func(a uint) uint8 { return boolBit(a != 3) },
	"NAND3X1": func(a uint) uint8 { return boolBit(a != 7) },
	"NAND4X1": func(a uint) uint8 { return boolBit(a != 15) },
	"NOR2X1":  func(a uint) uint8 { return boolBit(a == 0) },
	"NOR3X1":  func(a uint) uint8 { return boolBit(a == 0) },
	"NOR4X1":  func(a uint) uint8 { return boolBit(a == 0) },
	"AND2X2":  func(a uint) uint8 { return boolBit(a == 3) },
	"OR2X2":   func(a uint) uint8 { return boolBit(a != 0) },
	"XOR2X1":  func(a uint) uint8 { return uint8((a ^ a>>1) & 1) },
	"XNOR2X1": func(a uint) uint8 { return uint8(^(a ^ a>>1) & 1) },
	"AOI21X1": func(a uint) uint8 { return boolBit(!(a&3 == 3 || a>>2&1 == 1)) },
	"AOI22X1": func(a uint) uint8 { return boolBit(!(a&3 == 3 || a>>2&3 == 3)) },
	"OAI21X1": func(a uint) uint8 { return boolBit(!(a&3 != 0 && a>>2&1 == 1)) },
	"OAI22X1": func(a uint) uint8 { return boolBit(!(a&3 != 0 && a>>2&3 != 0)) },
	"MUX2X1": func(a uint) uint8 {
		if a>>2&1 == 1 {
			return uint8(a >> 1 & 1)
		}
		return uint8(a & 1)
	},
}

func boolBit(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}

func TestCellTruthTables(t *testing.T) {
	lib := OSU018Like()
	for _, c := range lib.Cells {
		want, ok := wantFuncs[c.Name]
		if !ok {
			t.Errorf("no expected function for %s", c.Name)
			continue
		}
		for a := uint(0); a < 1<<uint(c.NumInputs()); a++ {
			if got := c.Eval(a); got != want(a) {
				t.Errorf("%s(%0*b) = %d, want %d", c.Name, c.NumInputs(), a, got, want(a))
			}
		}
	}
}

func TestCellTTDependsOnAllInputs(t *testing.T) {
	lib := OSU018Like()
	for _, c := range lib.Cells {
		for i := 0; i < c.NumInputs(); i++ {
			if !c.TT.DependsOn(i) {
				t.Errorf("%s: output does not depend on input %d", c.Name, i)
			}
		}
	}
}

func TestTransistorNetlistsWellFormed(t *testing.T) {
	lib := OSU018Like()
	for _, c := range lib.Cells {
		if len(c.Transistors) == 0 {
			t.Errorf("%s: no transistors", c.Name)
			continue
		}
		outDriven := false
		for ti, tr := range c.Transistors {
			if tr.A < 0 || tr.A >= c.NumNodes || tr.B < 0 || tr.B >= c.NumNodes {
				t.Errorf("%s T%d: channel terminal out of range", c.Name, ti)
			}
			if tr.A == tr.B {
				t.Errorf("%s T%d: degenerate channel", c.Name, ti)
			}
			if tr.Gate.Input >= c.NumInputs() {
				t.Errorf("%s T%d: gate input %d out of range", c.Name, ti, tr.Gate.Input)
			}
			if tr.Gate.Input < 0 && (tr.Gate.Node < 0 || tr.Gate.Node >= c.NumNodes) {
				t.Errorf("%s T%d: gate node %d out of range", c.Name, ti, tr.Gate.Node)
			}
			if tr.A == Out || tr.B == Out {
				outDriven = true
			}
		}
		if !outDriven {
			t.Errorf("%s: nothing connected to the output node", c.Name)
		}
	}
}

// TestCMOSComplementarity checks a structural invariant of every cell's
// device counts: equal numbers of NMOS and PMOS transistors (all cells here
// are fully complementary static CMOS or transmission-gate structures).
func TestCMOSComplementarity(t *testing.T) {
	lib := OSU018Like()
	for _, c := range lib.Cells {
		var n, p int
		for _, tr := range c.Transistors {
			if tr.PMOS {
				p++
			} else {
				n++
			}
		}
		if n != p {
			t.Errorf("%s: %d NMOS vs %d PMOS", c.Name, n, p)
		}
	}
}

func TestTransistorCountsGrowWithComplexity(t *testing.T) {
	lib := OSU018Like()
	count := func(name string) int { return len(lib.ByName(name).Transistors) }
	if count("INVX1") != 2 {
		t.Errorf("INVX1 transistors = %d, want 2", count("INVX1"))
	}
	if count("NAND2X1") != 4 {
		t.Errorf("NAND2X1 transistors = %d, want 4", count("NAND2X1"))
	}
	if count("BUFX2") != 4 {
		t.Errorf("BUFX2 transistors = %d, want 4", count("BUFX2"))
	}
	if count("XOR2X1") <= count("NAND2X1") {
		t.Error("XOR2X1 must be more complex than NAND2X1")
	}
	if count("MUX2X1") != 12 {
		t.Errorf("MUX2X1 transistors = %d, want 12", count("MUX2X1"))
	}
	if count("AOI22X1") != 8 || count("OAI22X1") != 8 {
		t.Error("AOI22/OAI22 must have 8 transistors")
	}
}

func TestFeatureTemplatesDeterministic(t *testing.T) {
	a := OSU018Like()
	b := OSU018Like()
	for i := range a.Cells {
		fa, fb := a.Cells[i].Features, b.Cells[i].Features
		if len(fa) != len(fb) {
			t.Fatalf("%s: feature count differs between builds", a.Cells[i].Name)
		}
		for j := range fa {
			if fa[j] != fb[j] {
				t.Errorf("%s feature %d differs between builds: %+v vs %+v",
					a.Cells[i].Name, j, fa[j], fb[j])
			}
		}
	}
}

func TestFeatureReferencesValid(t *testing.T) {
	lib := OSU018Like()
	for _, c := range lib.Cells {
		for fi, f := range c.Features {
			switch f.Kind {
			case FeatDiffContact, FeatPolyContact, FeatGatePoly:
				if f.Transistor < 0 || f.Transistor >= len(c.Transistors) {
					t.Errorf("%s feature %d (%v): bad transistor ref %d", c.Name, fi, f.Kind, f.Transistor)
				}
			case FeatMetal1Stub, FeatPinVia:
				if f.Node < Out || f.Node >= c.NumNodes {
					t.Errorf("%s feature %d (%v): bad node ref %d", c.Name, fi, f.Kind, f.Node)
				}
				if f.Transistor != -1 {
					t.Errorf("%s feature %d (%v): unexpected transistor ref", c.Name, fi, f.Kind)
				}
			}
			if f.Node2 != -1 && (f.Node2 < Out || f.Node2 >= c.NumNodes) {
				t.Errorf("%s feature %d: bad node2 ref %d", c.Name, fi, f.Node2)
			}
		}
	}
}

func TestSortedBy(t *testing.T) {
	lib := OSU018Like()
	byArea := lib.SortedBy(func(c *Cell) float64 { return c.Area })
	for i := 1; i < len(byArea); i++ {
		if byArea[i-1].Area < byArea[i].Area {
			t.Fatalf("SortedBy not descending at %d: %s(%v) before %s(%v)",
				i, byArea[i-1].Name, byArea[i-1].Area, byArea[i].Name, byArea[i].Area)
		}
	}
	// Ties must break by name, ascending.
	same := lib.SortedBy(func(*Cell) float64 { return 1 })
	for i := 1; i < len(same); i++ {
		if same[i-1].Name >= same[i].Name {
			t.Fatalf("tie-break not by name at %d: %s before %s", i, same[i-1].Name, same[i].Name)
		}
	}
	// SortedBy must not mutate the library order.
	for i, c := range lib.Cells {
		if c.Index != i {
			t.Fatal("SortedBy mutated library order")
		}
	}
}

func TestSignalHelpers(t *testing.T) {
	s := In(2)
	if s.Input != 2 {
		t.Errorf("In(2) = %+v", s)
	}
	n := AtNode(5)
	if n.Input != -1 || n.Node != 5 {
		t.Errorf("AtNode(5) = %+v", n)
	}
}

func TestEvalAgainstTT(t *testing.T) {
	lib := OSU018Like()
	for _, c := range lib.Cells {
		n := c.NumInputs()
		got := logic.NewTT(n, c.Eval)
		if got.Bits != c.TT.Bits {
			t.Errorf("%s: Eval disagrees with TT", c.Name)
		}
	}
}
