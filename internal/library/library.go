// Package library defines the standard-cell library used by dfmresyn: a
// synthetic 21-cell library modeled after the OSU 0.18um library the paper
// uses. Each cell carries its logic function, a transistor-level netlist
// (used by the switch-level simulator to translate cell-internal DFM defects
// into cell-aware faults), a layout feature template (used by the DFM
// guideline checker), and electrical parameters (used by STA and power
// estimation).
package library

import (
	"fmt"
	"sort"

	"dfmresyn/internal/logic"
)

// Reserved node indices in every cell's transistor netlist.
const (
	VDD = 0 // power rail
	GND = 1 // ground rail
	Out = 2 // cell output node
)

// Signal identifies what drives a transistor gate terminal: either a cell
// input pin (Input >= 0) or an internal node (Input == -1, Node set).
type Signal struct {
	Input int
	Node  int
}

// In returns a Signal for input pin i.
func In(i int) Signal { return Signal{Input: i} }

// AtNode returns a Signal for internal node n.
func AtNode(n int) Signal { return Signal{Input: -1, Node: n} }

// Transistor is one device in a cell's switch-level netlist. A and B are the
// channel terminals (node indices). NMOS conducts when the gate is 1, PMOS
// when the gate is 0.
type Transistor struct {
	PMOS bool
	Gate Signal
	A, B int
}

// FeatureKind classifies a layout feature in a cell's layout template. The
// DFM guideline checker matches guidelines against features by kind.
type FeatureKind uint8

// Layout feature kinds present in cell templates.
const (
	FeatDiffContact FeatureKind = iota // diffusion contact on a transistor terminal
	FeatPolyContact                    // contact from poly gate to metal1
	FeatGatePoly                       // the poly gate stripe itself
	FeatMetal1Stub                     // metal1 internal wiring on a node
	FeatPinVia                         // via/contact stack at a cell pin
)

// String returns a short name for the feature kind.
func (k FeatureKind) String() string {
	switch k {
	case FeatDiffContact:
		return "diff-contact"
	case FeatPolyContact:
		return "poly-contact"
	case FeatGatePoly:
		return "gate-poly"
	case FeatMetal1Stub:
		return "metal1-stub"
	case FeatPinVia:
		return "pin-via"
	}
	return fmt.Sprintf("feature(%d)", uint8(k))
}

// Feature is one layout feature inside a cell. Geometric attributes are in
// nanometers. Transistor / Node / Node2 tie the feature to the switch-level
// netlist so a guideline violation on the feature can be translated into a
// transistor-level defect:
//
//   - FeatDiffContact, FeatPolyContact, FeatGatePoly reference Transistor;
//   - FeatMetal1Stub references Node (the wired node) and, when another
//     node runs alongside, Node2 (the bridge partner);
//   - FeatPinVia references Node.
type Feature struct {
	Kind       FeatureKind
	Transistor int // index into Cell.Transistors, or -1
	Node       int // node index, or -1
	Node2      int // adjacent node for potential bridges, or -1
	Width      int // nm
	Space      int // nm, spacing to nearest neighbour feature
	Enclosure  int // nm, surrounding-layer enclosure
	Length     int // nm, run length (stubs, poly)
	Redundant  bool
}

// Cell is one standard cell.
type Cell struct {
	Name   string
	Inputs []string
	TT     logic.TT

	Transistors []Transistor
	NumNodes    int // total nodes including VDD, GND, Out
	Features    []Feature

	// Electrical/physical parameters (arbitrary consistent units:
	// area um^2, caps fF, delays ps, resistance ps/fF, power nW).
	Area      float64
	InputCap  []float64
	Intrinsic float64 // intrinsic pin-to-output delay
	DriveRes  float64 // added delay per fF of output load
	Leakage   float64

	// Index is the position of the cell in its Library and is assigned by
	// New; it is the stable identifier used across the code base.
	Index int
}

// NumInputs returns the number of input pins.
func (c *Cell) NumInputs() int { return len(c.Inputs) }

// Eval evaluates the cell's logic function on a full input assignment.
func (c *Cell) Eval(assignment uint) uint8 { return c.TT.Eval(assignment) }

// Library is an ordered collection of cells.
type Library struct {
	Cells  []*Cell
	byName map[string]*Cell
}

// New builds a library from the given cells, assigning indices.
func New(cells []*Cell) *Library {
	lib := &Library{Cells: cells, byName: make(map[string]*Cell, len(cells))}
	for i, c := range cells {
		c.Index = i
		if _, dup := lib.byName[c.Name]; dup {
			panic("library: duplicate cell name " + c.Name)
		}
		lib.byName[c.Name] = c
	}
	return lib
}

// ByName returns the cell with the given name, or nil.
func (l *Library) ByName(name string) *Cell { return l.byName[name] }

// Len returns the number of cells.
func (l *Library) Len() int { return len(l.Cells) }

// SortedBy returns the library's cells ordered by the given score,
// descending (ties broken by name for determinism). The resynthesis
// procedure uses this with the per-cell internal fault count, so that
// cell_0 is the cell with the most internal faults.
func (l *Library) SortedBy(score func(*Cell) float64) []*Cell {
	out := make([]*Cell, len(l.Cells))
	copy(out, l.Cells)
	sort.Slice(out, func(i, j int) bool {
		si, sj := score(out[i]), score(out[j])
		if si != sj {
			return si > sj
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// cellBuilder accumulates a cell definition.
type cellBuilder struct {
	c *Cell
}

func newCell(name string, inputs []string, eval func(uint) uint8, area, inCap, intrinsic, driveRes, leakage float64) *cellBuilder {
	caps := make([]float64, len(inputs))
	for i := range caps {
		caps[i] = inCap
	}
	return &cellBuilder{c: &Cell{
		Name:      name,
		Inputs:    inputs,
		TT:        logic.NewTT(len(inputs), eval),
		NumNodes:  3, // VDD, GND, Out
		Area:      area,
		InputCap:  caps,
		Intrinsic: intrinsic,
		DriveRes:  driveRes,
		Leakage:   leakage,
	}}
}

func (b *cellBuilder) node() int {
	n := b.c.NumNodes
	b.c.NumNodes++
	return n
}

func (b *cellBuilder) nmos(gate Signal, a, bn int) {
	b.c.Transistors = append(b.c.Transistors, Transistor{PMOS: false, Gate: gate, A: a, B: bn})
}

func (b *cellBuilder) pmos(gate Signal, a, bn int) {
	b.c.Transistors = append(b.c.Transistors, Transistor{PMOS: true, Gate: gate, A: a, B: bn})
}

// inv adds a CMOS inverter from signal s to a fresh node, returning the node.
func (b *cellBuilder) inv(s Signal) int {
	n := b.node()
	b.nmos(s, n, GND)
	b.pmos(s, n, VDD)
	return n
}

// invTo adds a CMOS inverter from signal s driving node out.
func (b *cellBuilder) invTo(s Signal, out int) {
	b.nmos(s, out, GND)
	b.pmos(s, out, VDD)
}

// tgate adds a transmission gate between nodes a and bn, conducting when the
// control signal ctl is 1 (NMOS gate ctl, PMOS gate ctlBar).
func (b *cellBuilder) tgate(ctl, ctlBar Signal, a, bn int) {
	b.nmos(ctl, a, bn)
	b.pmos(ctlBar, a, bn)
}

func (b *cellBuilder) build() *Cell {
	b.c.Features = synthesizeFeatures(b.c)
	return b.c
}

// nandN builds an n-input NAND: series NMOS stack, parallel PMOS.
func nandN(name string, n int, area, inCap, intrinsic, driveRes, leakage float64) *Cell {
	names := make([]string, n)
	for i := range names {
		names[i] = string(rune('A' + i))
	}
	b := newCell(name, names, func(a uint) uint8 {
		if a == 1<<uint(n)-1 {
			return 0
		}
		return 1
	}, area, inCap, intrinsic, driveRes, leakage)
	prev := Out
	for i := 0; i < n; i++ {
		next := GND
		if i < n-1 {
			next = b.node()
		}
		b.nmos(In(i), prev, next)
		b.pmos(In(i), Out, VDD)
		prev = next
	}
	return b.build()
}

// norN builds an n-input NOR: parallel NMOS, series PMOS stack.
func norN(name string, n int, area, inCap, intrinsic, driveRes, leakage float64) *Cell {
	names := make([]string, n)
	for i := range names {
		names[i] = string(rune('A' + i))
	}
	b := newCell(name, names, func(a uint) uint8 {
		if a == 0 {
			return 1
		}
		return 0
	}, area, inCap, intrinsic, driveRes, leakage)
	prev := VDD
	for i := 0; i < n; i++ {
		next := Out
		if i < n-1 {
			next = b.node()
		}
		b.pmos(In(i), prev, next)
		b.nmos(In(i), Out, GND)
		prev = next
	}
	return b.build()
}

func invCell(name string, area, inCap, intrinsic, driveRes, leakage float64) *Cell {
	b := newCell(name, []string{"A"}, func(a uint) uint8 { return uint8(^a & 1) },
		area, inCap, intrinsic, driveRes, leakage)
	b.invTo(In(0), Out)
	return b.build()
}

func bufCell(name string, area, inCap, intrinsic, driveRes, leakage float64) *Cell {
	b := newCell(name, []string{"A"}, func(a uint) uint8 { return uint8(a & 1) },
		area, inCap, intrinsic, driveRes, leakage)
	mid := b.inv(In(0))
	b.invTo(AtNode(mid), Out)
	return b.build()
}

func and2Cell(name string, area, inCap, intrinsic, driveRes, leakage float64) *Cell {
	b := newCell(name, []string{"A", "B"}, func(a uint) uint8 {
		if a == 3 {
			return 1
		}
		return 0
	}, area, inCap, intrinsic, driveRes, leakage)
	// NAND2 stage into internal node, then inverter to Out.
	m := b.node()
	n1 := b.node()
	b.nmos(In(0), m, n1)
	b.nmos(In(1), n1, GND)
	b.pmos(In(0), m, VDD)
	b.pmos(In(1), m, VDD)
	b.invTo(AtNode(m), Out)
	return b.build()
}

func or2Cell(name string, area, inCap, intrinsic, driveRes, leakage float64) *Cell {
	b := newCell(name, []string{"A", "B"}, func(a uint) uint8 {
		if a == 0 {
			return 0
		}
		return 1
	}, area, inCap, intrinsic, driveRes, leakage)
	m := b.node()
	p1 := b.node()
	b.pmos(In(0), VDD, p1)
	b.pmos(In(1), p1, m)
	b.nmos(In(0), m, GND)
	b.nmos(In(1), m, GND)
	b.invTo(AtNode(m), Out)
	return b.build()
}

// xorLike builds XOR2 (odd=true) or XNOR2 using input inverters plus a
// complex CMOS stage.
func xorLike(name string, xnor bool, area, inCap, intrinsic, driveRes, leakage float64) *Cell {
	b := newCell(name, []string{"A", "B"}, func(a uint) uint8 {
		v := uint8((a ^ a>>1) & 1)
		if xnor {
			v ^= 1
		}
		return v
	}, area, inCap, intrinsic, driveRes, leakage)
	an := b.inv(In(0))
	bn := b.inv(In(1))
	// For XOR: pull Out low when A==B: (A.B) + (AN.BN).
	// For XNOR: pull Out low when A!=B: (A.BN) + (AN.B).
	type sig struct{ x, y Signal }
	var branches [2]sig
	if xnor {
		branches = [2]sig{{In(0), AtNode(bn)}, {AtNode(an), In(1)}}
	} else {
		branches = [2]sig{{In(0), In(1)}, {AtNode(an), AtNode(bn)}}
	}
	for _, br := range branches {
		n := b.node()
		b.nmos(br.x, Out, n)
		b.nmos(br.y, n, GND)
	}
	// PUN: dual network — series of two parallel pairs.
	p := b.node()
	b.pmos(branches[0].x, VDD, p)
	b.pmos(branches[1].x, VDD, p)
	b.pmos(branches[0].y, p, Out)
	b.pmos(branches[1].y, p, Out)
	return b.build()
}

// aoi21 builds Y = NOT(A*B + C).
func aoi21Cell(name string, area, inCap, intrinsic, driveRes, leakage float64) *Cell {
	b := newCell(name, []string{"A", "B", "C"}, func(a uint) uint8 {
		ab := a&1 == 1 && a>>1&1 == 1
		c := a>>2&1 == 1
		if ab || c {
			return 0
		}
		return 1
	}, area, inCap, intrinsic, driveRes, leakage)
	n1 := b.node()
	b.nmos(In(0), Out, n1)
	b.nmos(In(1), n1, GND)
	b.nmos(In(2), Out, GND)
	p1 := b.node()
	b.pmos(In(0), VDD, p1)
	b.pmos(In(1), VDD, p1)
	b.pmos(In(2), p1, Out)
	return b.build()
}

// aoi22 builds Y = NOT(A*B + C*D).
func aoi22Cell(name string, area, inCap, intrinsic, driveRes, leakage float64) *Cell {
	b := newCell(name, []string{"A", "B", "C", "D"}, func(a uint) uint8 {
		ab := a&1 == 1 && a>>1&1 == 1
		cd := a>>2&1 == 1 && a>>3&1 == 1
		if ab || cd {
			return 0
		}
		return 1
	}, area, inCap, intrinsic, driveRes, leakage)
	n1 := b.node()
	b.nmos(In(0), Out, n1)
	b.nmos(In(1), n1, GND)
	n2 := b.node()
	b.nmos(In(2), Out, n2)
	b.nmos(In(3), n2, GND)
	p1 := b.node()
	b.pmos(In(0), VDD, p1)
	b.pmos(In(1), VDD, p1)
	b.pmos(In(2), p1, Out)
	b.pmos(In(3), p1, Out)
	return b.build()
}

// oai21 builds Y = NOT((A+B) * C).
func oai21Cell(name string, area, inCap, intrinsic, driveRes, leakage float64) *Cell {
	b := newCell(name, []string{"A", "B", "C"}, func(a uint) uint8 {
		ab := a&1 == 1 || a>>1&1 == 1
		c := a>>2&1 == 1
		if ab && c {
			return 0
		}
		return 1
	}, area, inCap, intrinsic, driveRes, leakage)
	n1 := b.node()
	b.nmos(In(0), Out, n1)
	b.nmos(In(1), Out, n1)
	b.nmos(In(2), n1, GND)
	p1 := b.node()
	b.pmos(In(0), VDD, p1)
	b.pmos(In(1), p1, Out)
	b.pmos(In(2), VDD, Out)
	return b.build()
}

// oai22 builds Y = NOT((A+B) * (C+D)).
func oai22Cell(name string, area, inCap, intrinsic, driveRes, leakage float64) *Cell {
	b := newCell(name, []string{"A", "B", "C", "D"}, func(a uint) uint8 {
		ab := a&1 == 1 || a>>1&1 == 1
		cd := a>>2&1 == 1 || a>>3&1 == 1
		if ab && cd {
			return 0
		}
		return 1
	}, area, inCap, intrinsic, driveRes, leakage)
	n1 := b.node()
	b.nmos(In(0), Out, n1)
	b.nmos(In(1), Out, n1)
	b.nmos(In(2), n1, GND)
	b.nmos(In(3), n1, GND)
	p1 := b.node()
	b.pmos(In(0), VDD, p1)
	b.pmos(In(1), p1, Out)
	p2 := b.node()
	b.pmos(In(2), VDD, p2)
	b.pmos(In(3), p2, Out)
	return b.build()
}

// mux2 builds Y = S ? B : A using transmission gates with input and select
// inverters (12 transistors), the structure of the OSU MUX2X1.
func mux2Cell(name string, area, inCap, intrinsic, driveRes, leakage float64) *Cell {
	b := newCell(name, []string{"A", "B", "S"}, func(a uint) uint8 {
		if a>>2&1 == 1 {
			return uint8(a >> 1 & 1)
		}
		return uint8(a & 1)
	}, area, inCap, intrinsic, driveRes, leakage)
	ia := b.inv(In(0))
	ib := b.inv(In(1))
	sb := b.inv(In(2))
	m := b.node()
	// Pass inverted A when S=0, inverted B when S=1; final inverter restores.
	b.tgate(AtNode(sb), In(2), ia, m) // conducts when S=0
	b.tgate(In(2), AtNode(sb), ib, m) // conducts when S=1
	b.invTo(AtNode(m), Out)
	return b.build()
}

// OSU018Like builds the 21-cell library. Electrical numbers follow the
// relative ordering of the OSU 0.18um library: bigger drives have lower
// drive resistance and higher input capacitance; complex cells have larger
// intrinsic delay and leakage.
func OSU018Like() *Library {
	cells := []*Cell{
		invCell("INVX1", 1.0, 1.0, 20, 8.0, 1.0),
		invCell("INVX2", 1.5, 2.0, 20, 4.0, 2.0),
		invCell("INVX4", 2.5, 4.0, 21, 2.0, 4.0),
		invCell("INVX8", 4.5, 8.0, 22, 1.0, 8.0),
		bufCell("BUFX2", 2.5, 1.2, 45, 4.0, 2.5),
		bufCell("BUFX4", 4.0, 1.4, 48, 2.0, 4.5),
		nandN("NAND2X1", 2, 2.0, 1.2, 28, 7.0, 1.8),
		nandN("NAND3X1", 3, 3.0, 1.3, 36, 7.5, 2.6),
		nandN("NAND4X1", 4, 4.0, 1.4, 46, 8.0, 3.4),
		norN("NOR2X1", 2, 2.0, 1.2, 32, 8.5, 1.8),
		norN("NOR3X1", 3, 3.0, 1.3, 44, 9.5, 2.6),
		norN("NOR4X1", 4, 4.0, 1.4, 58, 10.5, 3.4),
		and2Cell("AND2X2", 3.0, 1.1, 52, 4.0, 2.8),
		or2Cell("OR2X2", 3.0, 1.1, 55, 4.0, 2.8),
		xorLike("XOR2X1", false, 4.5, 1.8, 64, 8.0, 4.2),
		xorLike("XNOR2X1", true, 4.5, 1.8, 64, 8.0, 4.2),
		aoi21Cell("AOI21X1", 3.0, 1.3, 40, 8.5, 2.4),
		aoi22Cell("AOI22X1", 4.0, 1.4, 48, 9.0, 3.2),
		oai21Cell("OAI21X1", 3.0, 1.3, 42, 8.5, 2.4),
		oai22Cell("OAI22X1", 4.0, 1.4, 50, 9.0, 3.2),
		mux2Cell("MUX2X1", 5.0, 1.6, 58, 7.0, 4.6),
	}
	return New(cells)
}
