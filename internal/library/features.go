package library

import "hash/fnv"

// synthesizeFeatures builds the deterministic layout feature template of a
// cell from its transistor netlist. The template stands in for the real
// polygon-level cell layout the paper's flow analyzes with a commercial
// sign-off tool: each transistor contributes diffusion contacts, a gate-poly
// stripe and a poly contact; each routed internal node contributes a metal1
// stub (with an adjacent-node bridge partner when one exists); the output
// pin contributes a via stack. Geometric attributes are drawn from a small
// deterministic distribution seeded by the cell name, so every instance of
// a cell type has exactly the same internal features — and therefore the
// same internal DFM faults — matching the paper's observation that "every
// time a gate is used in the circuit, it introduces the same internal
// faults".
func synthesizeFeatures(c *Cell) []Feature {
	rng := newCellRNG(c.Name)
	var feats []Feature

	// Geometric attribute tiers, nm. The first tier of each list is
	// marginal with respect to at least one DFM guideline.
	encl := []int{12, 18, 24, 30}
	widths := []int{200, 230, 270, 320}
	spaces := []int{230, 260, 300, 360}
	lengths := []int{400, 700, 1100, 1600}

	pick := func(tiers []int) int { return tiers[rng.intn(len(tiers))] }

	for ti := range c.Transistors {
		t := &c.Transistors[ti]
		// Diffusion contacts at both channel terminals. Terminals on
		// supply rails have generous geometry (shared strapped
		// contacts); internal terminals are tighter and more often
		// marginal.
		for _, term := range []int{t.A, t.B} {
			f := Feature{
				Kind:       FeatDiffContact,
				Transistor: ti,
				Node:       term,
				Node2:      -1,
				Width:      pick(widths),
				Space:      pick(spaces),
				Enclosure:  pick(encl),
				Redundant:  rng.intn(3) != 0,
			}
			if term == VDD || term == GND {
				f.Enclosure = encl[len(encl)-1]
				f.Redundant = true
			}
			feats = append(feats, f)
		}
		// The gate poly stripe.
		feats = append(feats, Feature{
			Kind:       FeatGatePoly,
			Transistor: ti,
			Node:       -1,
			Node2:      -1,
			Width:      pick(widths[:2]),
			Space:      pick(spaces),
			Length:     pick(lengths),
		})
		// Poly contact for the gate connection.
		feats = append(feats, Feature{
			Kind:       FeatPolyContact,
			Transistor: ti,
			Node:       -1,
			Node2:      -1,
			Enclosure:  pick(encl),
			Space:      pick(spaces),
			Redundant:  rng.intn(4) != 0,
		})
	}

	// Metal1 stubs wiring each non-supply node. Adjacent internal nodes
	// (consecutive indices) run alongside each other in the template and
	// are potential bridge partners.
	for n := Out; n < c.NumNodes; n++ {
		n2 := -1
		if n+1 < c.NumNodes {
			n2 = n + 1
		}
		feats = append(feats, Feature{
			Kind:   FeatMetal1Stub,
			Node:   n,
			Node2:  n2,
			Width:  pick(widths),
			Space:  pick(spaces),
			Length: pick(lengths),
		})
	}

	// Output pin via stack.
	feats = append(feats, Feature{
		Kind:      FeatPinVia,
		Node:      Out,
		Node2:     -1,
		Enclosure: pick(encl),
		Space:     pick(spaces),
		Redundant: rng.intn(2) == 0,
	})
	// Normalize: features that do not reference a transistor use -1.
	for i := range feats {
		if feats[i].Kind == FeatMetal1Stub || feats[i].Kind == FeatPinVia {
			feats[i].Transistor = -1
		}
	}
	return feats
}

// cellRNG is a tiny deterministic generator (splitmix64) seeded from the
// cell name, so feature templates are stable across runs and platforms.
type cellRNG struct{ state uint64 }

func newCellRNG(name string) *cellRNG {
	h := fnv.New64a()
	h.Write([]byte(name))
	return &cellRNG{state: h.Sum64() | 1}
}

func (r *cellRNG) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *cellRNG) intn(n int) int { return int(r.next() % uint64(n)) }
