package faultsim

import (
	"context"

	"dfmresyn/internal/fault"
	"dfmresyn/internal/logic"
	"dfmresyn/internal/netlist"
	"dfmresyn/internal/obs"
	"dfmresyn/internal/par"
	"dfmresyn/internal/resilience"
)

// Pool shards fault simulation over per-worker engines. An Engine's scratch
// buffers make it single-threaded; the Pool keeps one Engine per worker and
// hands each worker its own, while good-circuit Blocks — which are immutable
// once built — are shared by all workers. Every Pool method is deterministic:
// detection words land in per-fault slots and all status/credit bookkeeping
// runs sequentially in fault-list order, so results are byte-identical for
// any worker count.
type Pool struct {
	c       *netlist.Circuit
	workers int
	engines []*Engine

	// Simulation-volume counters (nil when uninstrumented; nil Counters
	// no-op, so the hot path pays one pointer check).
	cBlocks  *obs.Counter
	cDetects *obs.Counter

	// ctx, when bound, cancels the pool's multi-block loops (RunAll,
	// DetectedBy) cooperatively at block boundaries. nil never cancels.
	ctx context.Context
}

// Bind attaches a cancellation context to the pool. RunAll and DetectedBy
// stop at the next 64-test block boundary once ctx is cancelled and return
// their partial bookkeeping; callers that observe cancellation must treat
// those results as a consistent prefix, not a completed pass.
func (p *Pool) Bind(ctx context.Context) { p.ctx = ctx }

// Instrument routes the pool's simulation-volume telemetry — good-circuit
// blocks simulated and per-fault detection words computed — into the
// tracer's registry. A nil tracer leaves the pool uninstrumented.
func (p *Pool) Instrument(tr *obs.Tracer) {
	p.cBlocks = tr.Counter("faultsim/sim_blocks")
	p.cDetects = tr.Counter("faultsim/detect_words")
}

// NewPool builds a pool of the given width (0 = runtime.NumCPU()). Engines
// are created lazily: a sequential caller never pays for more than one.
func NewPool(c *netlist.Circuit, workers int) *Pool {
	w := par.Count(workers)
	return &Pool{c: c, workers: w, engines: make([]*Engine, w)}
}

// Workers returns the pool width.
func (p *Pool) Workers() int { return p.workers }

// Engine returns worker w's engine, creating it on first use. Each worker
// index is owned by one goroutine at a time, so lazy creation is race-free
// under the par.Each contract.
func (p *Pool) Engine(w int) *Engine {
	if p.engines[w] == nil {
		p.engines[w] = New(p.c)
	}
	return p.engines[w]
}

// SimBlock good-simulates up to 64 tests on worker 0's engine. The returned
// Block is immutable and may be read by every worker concurrently.
func (p *Pool) SimBlock(tests []Test) *Block {
	p.cBlocks.Inc()
	return p.Engine(0).SimBlock(tests)
}

// DetectsMany computes the detection word of every fault against the block,
// sharding the fault list over the workers. det must have len(faults) slots.
func (p *Pool) DetectsMany(faults []*fault.Fault, b *Block, det []logic.Word) {
	p.cDetects.Add(int64(len(faults)))
	par.Each(len(faults), p.workers, 16, func(w, i int) {
		det[i] = p.Engine(w).Detects(faults[i], b)
	})
}

// RunAll is Engine.RunAll with the per-fault detection sharded over the
// workers: it simulates the whole test sequence against every fault not
// already Detected or Undetectable, marks newly detected faults, and returns
// how many. Statuses are written sequentially in fault-list order between
// blocks (deterministic drop accounting).
func (p *Pool) RunAll(l *fault.List, tests []Test) int {
	newly := 0
	var active []*fault.Fault
	for _, f := range l.Faults {
		if f.Status != fault.Detected && f.Status != fault.Undetectable {
			active = append(active, f)
		}
	}
	det := make([]logic.Word, len(active))
	for start := 0; start < len(tests) && len(active) > 0 && !resilience.Done(p.ctx); start += 64 {
		end := start + 64
		if end > len(tests) {
			end = len(tests)
		}
		b := p.SimBlock(tests[start:end])
		p.DetectsMany(active, b, det[:len(active)])
		next := active[:0]
		for i, f := range active {
			if det[i] != 0 {
				f.Status = fault.Detected
				newly++
			} else {
				next = append(next, f)
			}
		}
		active = next
	}
	return newly
}

// DetectedBy is Engine.DetectedBy with the per-fault detection sharded over
// the workers: for each test, how many currently-undetected faults it is the
// first to detect, simulating in order with dropping. Credit assignment runs
// sequentially in fault-list order, so the per-test counts — and therefore
// reverse-order compaction — are independent of the worker count.
func (p *Pool) DetectedBy(l *fault.List, tests []Test) []int {
	per := make([]int, len(tests))
	var active []*fault.Fault
	for _, f := range l.Faults {
		if f.Status != fault.Undetectable {
			active = append(active, f)
		}
	}
	det := make([]logic.Word, len(active))
	for start := 0; start < len(tests) && len(active) > 0 && !resilience.Done(p.ctx); start += 64 {
		end := start + 64
		if end > len(tests) {
			end = len(tests)
		}
		b := p.SimBlock(tests[start:end])
		p.DetectsMany(active, b, det[:len(active)])
		next := active[:0]
		for i, f := range active {
			d := det[i]
			if d == 0 {
				next = append(next, f)
				continue
			}
			for q := 0; q < b.N; q++ {
				if d>>uint(q)&1 == 1 {
					per[start+q]++
					break
				}
			}
		}
		active = next
	}
	return per
}
