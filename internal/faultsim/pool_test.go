package faultsim

import (
	"math/rand"
	"testing"

	"dfmresyn/internal/fault"
	"dfmresyn/internal/netlist"
)

// poolCircuit builds a few levels with reconvergent fanout so that stem,
// branch and bridge faults behave differently.
func poolCircuit() *netlist.Circuit {
	c := netlist.New("pool", lib)
	a := c.AddPI("a")
	b := c.AddPI("b")
	ci := c.AddPI("ci")
	d := c.AddPI("d")
	n1 := c.AddGate("n1", lib.ByName("NAND2X1"), a, b)
	n2 := c.AddGate("n2", lib.ByName("NOR2X1"), ci, d)
	x1 := c.AddGate("x1", lib.ByName("XOR2X1"), n1, n2)
	i1 := c.AddGate("i1", lib.ByName("INVX1"), n1)
	o1 := c.AddGate("o1", lib.ByName("OAI21X1"), x1, i1, d)
	c.MarkPO(o1)
	c.MarkPO(x1)
	return c
}

// poolFaults builds a deterministic mixed fault list over the circuit.
func poolFaults(c *netlist.Circuit) *fault.List {
	l := &fault.List{}
	for _, n := range c.Nets {
		for _, v := range []uint8{0, 1} {
			l.Add(&fault.Fault{Model: fault.StuckAt, Net: n, Value: v})
			if len(n.Fanout) > 1 {
				p := n.Fanout[0]
				l.Add(&fault.Fault{Model: fault.StuckAt, Net: n, Value: v,
					BranchGate: p.Gate, BranchPin: p.Pin})
			}
		}
		l.Add(&fault.Fault{Model: fault.Transition, Net: n, Value: 0})
	}
	l.Add(&fault.Fault{Model: fault.Bridge, Net: c.NetByName("n1_o"), Other: c.NetByName("n2_o")})
	l.Add(&fault.Fault{Model: fault.Bridge, Net: c.NetByName("n2_o"), Other: c.NetByName("n1_o")})
	return l
}

func randomTests(n, npi int, seed int64) []Test {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Test, n)
	for i := range out {
		t := Test{Vec: make([]uint8, npi)}
		for j := range t.Vec {
			t.Vec[j] = uint8(rng.Intn(2))
		}
		if i%3 == 0 {
			t.Init = make([]uint8, npi)
			for j := range t.Init {
				t.Init[j] = uint8(rng.Intn(2))
			}
		}
		out[i] = t
	}
	return out
}

func statuses(l *fault.List) []fault.Status {
	out := make([]fault.Status, len(l.Faults))
	for i, f := range l.Faults {
		out[i] = f.Status
	}
	return out
}

func TestPoolRunAllMatchesEngine(t *testing.T) {
	c := poolCircuit()
	tests := randomTests(200, len(c.PIs), 7)

	ref := poolFaults(c)
	refNew := New(c).RunAll(ref, tests)

	for _, workers := range []int{1, 4, 9} {
		l := poolFaults(c)
		got := NewPool(c, workers).RunAll(l, tests)
		if got != refNew {
			t.Errorf("workers=%d: RunAll = %d, want %d", workers, got, refNew)
		}
		rs, gs := statuses(ref), statuses(l)
		for i := range rs {
			if rs[i] != gs[i] {
				t.Fatalf("workers=%d: fault %d status %v, want %v", workers, i, gs[i], rs[i])
			}
		}
	}
}

func TestPoolDetectedByMatchesEngine(t *testing.T) {
	c := poolCircuit()
	tests := randomTests(150, len(c.PIs), 11)

	ref := poolFaults(c)
	// Pre-mark a few faults to exercise the skip conditions.
	ref.Faults[0].Status = fault.Undetectable
	ref.Faults[1].Status = fault.Detected
	refPer := New(c).DetectedBy(ref, tests)

	for _, workers := range []int{1, 4} {
		l := poolFaults(c)
		l.Faults[0].Status = fault.Undetectable
		l.Faults[1].Status = fault.Detected
		per := NewPool(c, workers).DetectedBy(l, tests)
		if len(per) != len(refPer) {
			t.Fatalf("workers=%d: len %d, want %d", workers, len(per), len(refPer))
		}
		for i := range per {
			if per[i] != refPer[i] {
				t.Fatalf("workers=%d: per[%d] = %d, want %d", workers, i, per[i], refPer[i])
			}
		}
	}
}
