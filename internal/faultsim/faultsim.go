// Package faultsim is a 64-way parallel-pattern fault simulator for the
// four fault models of the DFM fault universe (stuck-at, transition,
// bridging, cell-aware). It simulates blocks of up to 64 tests at once and
// supports fault dropping.
package faultsim

import (
	"dfmresyn/internal/fault"
	"dfmresyn/internal/logic"
	"dfmresyn/internal/netlist"
	"dfmresyn/internal/sim"
)

// Test is one test in the target test set T. Vec is the applied vector (one
// bit per PI, indexed as Circuit.PIs). Init, when non-nil, is the
// initialization vector of a two-pattern test; single-pattern tests leave
// it nil. A two-pattern test counts as one test, as in the paper's column T.
type Test struct {
	Init []uint8
	Vec  []uint8
}

// Engine simulates one circuit. It is not safe for concurrent use: the
// scratch buffers for faulty-value propagation are reused across calls.
type Engine struct {
	c     *netlist.Circuit
	sim   *sim.Simulator
	order []*netlist.Gate

	fvals []logic.Word
	dirty []bool
}

// New builds an engine for the circuit.
func New(c *netlist.Circuit) *Engine {
	s := sim.New(c)
	return &Engine{
		c:     c,
		sim:   s,
		order: s.Order(),
		fvals: make([]logic.Word, len(c.Nets)),
		dirty: make([]bool, len(c.Nets)),
	}
}

// Circuit returns the engine's circuit.
func (e *Engine) Circuit() *netlist.Circuit { return e.c }

// Block holds the good-circuit simulation of up to 64 tests.
type Block struct {
	N        int          // number of tests in the block
	Valid    logic.Word   // bit p set for p < N
	HasInit  logic.Word   // bit p set if test p is two-pattern
	InitVals []logic.Word // good values per net, initialization phase
	Vals     []logic.Word // good values per net, final phase
}

// SimBlock good-simulates up to 64 tests.
func (e *Engine) SimBlock(tests []Test) *Block {
	if len(tests) > 64 {
		panic("faultsim: block larger than 64 tests")
	}
	b := &Block{N: len(tests)}
	npi := len(e.c.PIs)
	initW := make([]logic.Word, npi)
	vecW := make([]logic.Word, npi)
	for p, t := range tests {
		b.Valid |= 1 << uint(p)
		if len(t.Vec) != npi {
			panic("faultsim: test vector length mismatch")
		}
		for i := 0; i < npi; i++ {
			if t.Vec[i]&1 == 1 {
				vecW[i] |= 1 << uint(p)
			}
		}
		if t.Init != nil {
			b.HasInit |= 1 << uint(p)
			for i := 0; i < npi; i++ {
				if t.Init[i]&1 == 1 {
					initW[i] |= 1 << uint(p)
				}
			}
		}
	}
	b.Vals = e.sim.Run(vecW)
	b.InitVals = e.sim.Run(initW)
	return b
}

// Detects returns the word of tests in the block that detect f.
func (e *Engine) Detects(f *fault.Fault, b *Block) logic.Word {
	fvals := e.fvals
	copy(fvals, b.Vals)
	dirty := e.dirty
	for i := range dirty {
		dirty[i] = false
	}

	// forced rewires gate-level evaluation for branch faults: when the
	// faulty site is a branch, only that (gate, pin) sees the forced
	// value; the stem keeps its good value.
	var forcedGate *netlist.Gate
	var forcedPin int
	var forcedWord logic.Word
	useForced := false

	broadcast := func(v uint8) logic.Word {
		if v&1 == 1 {
			return logic.AllOnes
		}
		return 0
	}
	goodInitOf := func(n *netlist.Net, v uint8) logic.Word {
		// Word of patterns where the init-phase good value of n equals v.
		if v&1 == 1 {
			return b.InitVals[n.ID]
		}
		return ^b.InitVals[n.ID]
	}

	switch f.Model {
	case fault.StuckAt:
		if f.BranchGate == nil {
			fvals[f.Net.ID] = broadcast(f.Value)
			dirty[f.Net.ID] = true
		} else {
			forcedGate, forcedPin = f.BranchGate, f.BranchPin
			forcedWord = broadcast(f.Value)
			useForced = true
		}

	case fault.Transition:
		// Launch condition: the site held Value in the init phase and
		// should move to ~Value; the slow site keeps Value.
		cond := b.HasInit & goodInitOf(f.Net, f.Value)
		if f.BranchGate == nil {
			fvals[f.Net.ID] = (b.Vals[f.Net.ID] &^ cond) | (broadcast(f.Value) & cond)
			if fvals[f.Net.ID] != b.Vals[f.Net.ID] {
				dirty[f.Net.ID] = true
			} else {
				return 0
			}
		} else {
			forcedGate, forcedPin = f.BranchGate, f.BranchPin
			forcedWord = (b.Vals[f.Net.ID] &^ cond) | (broadcast(f.Value) & cond)
			useForced = true
		}

	case fault.Bridge:
		// Dominant model: the victim assumes the aggressor's good value.
		if fvals[f.Net.ID] == b.Vals[f.Other.ID] {
			return 0
		}
		fvals[f.Net.ID] = b.Vals[f.Other.ID]
		dirty[f.Net.ID] = true

	case fault.CellAware:
		act := e.cellAwareActivation(f, b)
		if act == 0 {
			return 0
		}
		out := f.Gate.Out
		fvals[out.ID] = b.Vals[out.ID] ^ act
		dirty[out.ID] = true
	}

	// Forward propagation in topological order.
	var buf [8]logic.Word
	for _, g := range e.order {
		anyDirty := false
		for _, in := range g.Fanin {
			if dirty[in.ID] {
				anyDirty = true
				break
			}
		}
		if !anyDirty && !(useForced && g == forcedGate) {
			continue
		}
		in := buf[:len(g.Fanin)]
		for i, fn := range g.Fanin {
			in[i] = fvals[fn.ID]
		}
		if useForced && g == forcedGate {
			in[forcedPin] = forcedWord
		}
		nv := g.Type.TT.EvalWord(in)
		if nv != fvals[g.Out.ID] {
			fvals[g.Out.ID] = nv
			dirty[g.Out.ID] = true
		}
	}

	var det logic.Word
	for _, po := range e.c.POs {
		det |= fvals[po.ID] ^ b.Vals[po.ID]
	}
	// A stem stuck-at on a PO net is directly observable even without
	// downstream gates; the XOR above already covers it because fvals of
	// the PO was forced. Branch faults on PO nets are not observable at
	// the stem.
	return det & b.Valid
}

// cellAwareActivation computes the word of tests whose gate-input
// assignments activate the cell-aware fault (output flip at the final
// phase).
func (e *Engine) cellAwareActivation(f *fault.Fault, b *Block) logic.Word {
	g := f.Gate
	beh := f.Behavior
	asgFinal := sim.GateInputAssignments(g, b.Vals)
	var act logic.Word
	for p := 0; p < b.N; p++ {
		if beh.StaticMask>>asgFinal[p]&1 == 1 {
			act |= 1 << uint(p)
		}
	}
	if len(beh.PairMask) > 0 && b.HasInit != 0 {
		asgInit := sim.GateInputAssignments(g, b.InitVals)
		for p := 0; p < b.N; p++ {
			if b.HasInit>>uint(p)&1 == 0 || act>>uint(p)&1 == 1 {
				continue
			}
			if beh.PairMask[asgInit[p]]>>asgFinal[p]&1 == 1 {
				act |= 1 << uint(p)
			}
		}
	}
	return act
}

// RunAll fault-simulates the whole test sequence against every fault in l
// that is not already Detected or Undetectable, marking newly detected
// faults (fault dropping across blocks). It returns the number of faults
// newly marked Detected.
func (e *Engine) RunAll(l *fault.List, tests []Test) int {
	newly := 0
	for start := 0; start < len(tests); start += 64 {
		end := start + 64
		if end > len(tests) {
			end = len(tests)
		}
		b := e.SimBlock(tests[start:end])
		for _, f := range l.Faults {
			if f.Status == fault.Detected || f.Status == fault.Undetectable {
				continue
			}
			if e.Detects(f, b) != 0 {
				f.Status = fault.Detected
				newly++
			}
		}
	}
	return newly
}

// DetectedBy returns, for each test, how many currently-undetected faults
// it is the first to detect, simulating in order with dropping. It is used
// for reverse-order test-set compaction.
func (e *Engine) DetectedBy(l *fault.List, tests []Test) []int {
	per := make([]int, len(tests))
	dropped := make(map[*fault.Fault]bool)
	for start := 0; start < len(tests); start += 64 {
		end := start + 64
		if end > len(tests) {
			end = len(tests)
		}
		b := e.SimBlock(tests[start:end])
		for _, f := range l.Faults {
			if f.Status == fault.Undetectable || dropped[f] {
				continue
			}
			det := e.Detects(f, b)
			if det == 0 {
				continue
			}
			// Credit the first detecting test in the block.
			for p := 0; p < b.N; p++ {
				if det>>uint(p)&1 == 1 {
					per[start+p]++
					break
				}
			}
			dropped[f] = true
		}
	}
	return per
}
