package faultsim

import (
	"math/rand"
	"testing"

	"dfmresyn/internal/fault"
	"dfmresyn/internal/library"
	"dfmresyn/internal/netlist"
	"dfmresyn/internal/switchsim"
)

var lib = library.OSU018Like()

// buildChain: y = INV(NAND2(a, b))  (i.e. y = a AND b)
func buildChain(t *testing.T) *netlist.Circuit {
	t.Helper()
	c := netlist.New("chain", lib)
	a := c.AddPI("a")
	b := c.AddPI("b")
	n := c.AddGate("u_nand", lib.ByName("NAND2X1"), a, b)
	y := c.AddGate("u_inv", lib.ByName("INVX1"), n)
	c.MarkPO(y)
	return c
}

func vec(bits ...uint8) []uint8 { return bits }

func TestStuckAtStemDetection(t *testing.T) {
	c := buildChain(t)
	e := New(c)
	a := c.NetByName("a")
	// a stuck-at-0: detected only by patterns with a=1, b=1 (output flips).
	f := &fault.Fault{Model: fault.StuckAt, Net: a, Value: 0}
	tests := []Test{
		{Vec: vec(0, 0)},
		{Vec: vec(1, 0)},
		{Vec: vec(0, 1)},
		{Vec: vec(1, 1)},
	}
	b := e.SimBlock(tests)
	det := e.Detects(f, b)
	if det != 0b1000 {
		t.Errorf("sa0@a detection word = %04b, want 1000", det)
	}
	// a stuck-at-1: detected by a=0, b=1.
	f1 := &fault.Fault{Model: fault.StuckAt, Net: a, Value: 1}
	if det := e.Detects(f1, b); det != 0b0100 {
		t.Errorf("sa1@a detection word = %04b, want 0100", det)
	}
}

func TestStuckAtOnPONet(t *testing.T) {
	c := buildChain(t)
	e := New(c)
	y := c.NetByName("u_inv_o")
	f := &fault.Fault{Model: fault.StuckAt, Net: y, Value: 0}
	b := e.SimBlock([]Test{{Vec: vec(1, 1)}, {Vec: vec(0, 1)}})
	det := e.Detects(f, b)
	if det != 0b01 {
		t.Errorf("sa0@PO detection = %02b, want 01", det)
	}
}

// TestBranchVsStemStuckAt: a branch fault affects only one sink.
func TestBranchVsStemStuckAt(t *testing.T) {
	// y1 = INV(a), y2 = BUF(a): stem sa1 on a affects both; branch sa1 on
	// the INV pin affects only y1.
	c := netlist.New("fan", lib)
	a := c.AddPI("a")
	y1 := c.AddGate("u_inv", lib.ByName("INVX1"), a)
	y2 := c.AddGate("u_buf", lib.ByName("BUFX2"), a)
	c.MarkPO(y1)
	c.MarkPO(y2)
	e := New(c)
	b := e.SimBlock([]Test{{Vec: vec(0)}})

	stem := &fault.Fault{Model: fault.StuckAt, Net: a, Value: 1}
	branch := &fault.Fault{Model: fault.StuckAt, Net: a, Value: 1,
		BranchGate: y1.Driver, BranchPin: 0}

	if det := e.Detects(stem, b); det != 1 {
		t.Errorf("stem fault must be detected: %b", det)
	}
	if det := e.Detects(branch, b); det != 1 {
		t.Errorf("branch fault must be detected through INV: %b", det)
	}
	// Check isolation: with a=0, forcing only the BUF pin to 1 changes y2
	// but not y1. Build the equivalent branch fault on the BUF.
	branchBuf := &fault.Fault{Model: fault.StuckAt, Net: a, Value: 1,
		BranchGate: y2.Driver, BranchPin: 0}
	if det := e.Detects(branchBuf, b); det != 1 {
		t.Errorf("branch fault on BUF must be detected: %b", det)
	}
	// A pattern where the stem detects on both POs but a branch on one:
	// we verify the propagation separation using a circuit where the
	// non-faulty path masks. With y3 = NAND2(inv(a), buf(a)) the stem
	// fault flips both inputs and the output may stay — covered by
	// reconvergence tests in the ATPG package.
}

func TestTransitionFaultNeedsInit(t *testing.T) {
	c := buildChain(t)
	e := New(c)
	a := c.NetByName("a")
	// Slow-to-rise on a (stuck at 0 during launch).
	f := &fault.Fault{Model: fault.Transition, Net: a, Value: 0}
	// Single-pattern test cannot detect it.
	b1 := e.SimBlock([]Test{{Vec: vec(1, 1)}})
	if det := e.Detects(f, b1); det != 0 {
		t.Errorf("transition fault detected without init: %b", det)
	}
	// Proper two-pattern test: a: 0 -> 1 with b=1.
	b2 := e.SimBlock([]Test{{Init: vec(0, 1), Vec: vec(1, 1)}})
	if det := e.Detects(f, b2); det != 1 {
		t.Errorf("transition fault not detected by launch pair: %b", det)
	}
	// Initialization at the wrong value (a=1 in init) does not launch.
	b3 := e.SimBlock([]Test{{Init: vec(1, 1), Vec: vec(1, 1)}})
	if det := e.Detects(f, b3); det != 0 {
		t.Errorf("transition fault detected without a launch transition: %b", det)
	}
}

func TestBridgeDominantModel(t *testing.T) {
	// Two independent paths: y1 = INV(a), y2 = INV(b).
	c := netlist.New("br", lib)
	a := c.AddPI("a")
	b := c.AddPI("b")
	y1 := c.AddGate("u1", lib.ByName("INVX1"), a)
	y2 := c.AddGate("u2", lib.ByName("INVX1"), b)
	c.MarkPO(y1)
	c.MarkPO(y2)
	e := New(c)
	// Bridge: victim y1_src... bridge between nets a and b, a is victim.
	f := &fault.Fault{Model: fault.Bridge, Net: a, Other: b}
	blk := e.SimBlock([]Test{
		{Vec: vec(0, 0)}, // equal values: no effect
		{Vec: vec(0, 1)}, // a takes 1: y1 flips
		{Vec: vec(1, 0)}, // a takes 0: y1 flips
		{Vec: vec(1, 1)},
	})
	det := e.Detects(f, blk)
	if det != 0b0110 {
		t.Errorf("bridge detection = %04b, want 0110", det)
	}
}

func TestCellAwareStaticDetection(t *testing.T) {
	c := buildChain(t)
	e := New(c)
	nand := c.NetByName("u_nand_o").Driver
	// Fabricate a behavior: output flips when inputs are A=1,B=0 (asg 01).
	beh := &switchsim.Behavior{Inputs: 2, StaticMask: 1 << 0b01}
	f := &fault.Fault{Model: fault.CellAware, Internal: true, Gate: nand, Behavior: beh}
	b := e.SimBlock([]Test{
		{Vec: vec(1, 0)}, // activates
		{Vec: vec(0, 1)}, // no
		{Vec: vec(1, 1)}, // no
	})
	det := e.Detects(f, b)
	if det != 0b001 {
		t.Errorf("cell-aware static detection = %03b, want 001", det)
	}
}

func TestCellAwareDynamicDetection(t *testing.T) {
	c := buildChain(t)
	e := New(c)
	nand := c.NetByName("u_nand_o").Driver
	// Dynamic-only behavior: pair (asg 00 -> asg 11) flips the output.
	pm := make([]uint64, 4)
	pm[0b00] = 1 << 0b11
	beh := &switchsim.Behavior{Inputs: 2, PairMask: pm}
	f := &fault.Fault{Model: fault.CellAware, Internal: true, Gate: nand, Behavior: beh}

	good := e.SimBlock([]Test{{Init: vec(0, 0), Vec: vec(1, 1)}})
	if det := e.Detects(f, good); det != 1 {
		t.Errorf("dynamic cell-aware pair not detected: %b", det)
	}
	wrongInit := e.SimBlock([]Test{{Init: vec(1, 0), Vec: vec(1, 1)}})
	if det := e.Detects(f, wrongInit); det != 0 {
		t.Errorf("dynamic cell-aware detected with wrong init: %b", det)
	}
	noInit := e.SimBlock([]Test{{Vec: vec(1, 1)}})
	if det := e.Detects(f, noInit); det != 0 {
		t.Errorf("dynamic cell-aware detected without init: %b", det)
	}
	if !f.TwoPattern() {
		t.Error("dynamic-only cell-aware fault must report TwoPattern")
	}
}

func TestRunAllDropsFaults(t *testing.T) {
	c := buildChain(t)
	e := New(c)
	a := c.NetByName("a")
	b := c.NetByName("b")
	l := &fault.List{}
	l.Add(&fault.Fault{Model: fault.StuckAt, Net: a, Value: 0})
	l.Add(&fault.Fault{Model: fault.StuckAt, Net: a, Value: 1})
	l.Add(&fault.Fault{Model: fault.StuckAt, Net: b, Value: 0})
	undet := l.Add(&fault.Fault{Model: fault.StuckAt, Net: b, Value: 1})
	tests := []Test{
		{Vec: vec(1, 1)}, // detects both sa0
	}
	n := e.RunAll(l, tests)
	if n != 2 {
		t.Errorf("RunAll marked %d, want 2", n)
	}
	if undet.Status != fault.Untried {
		t.Errorf("b/sa1 must remain untried, got %v", undet.Status)
	}
	// Second run with the detecting pattern for sa1 faults.
	n = e.RunAll(l, []Test{{Vec: vec(0, 0)}, {Vec: vec(0, 1)}, {Vec: vec(1, 0)}})
	if n != 2 {
		t.Errorf("second RunAll marked %d, want 2", n)
	}
}

// TestRandomStuckAtConsistency: for random small circuits and random
// stuck-at faults, detection via the parallel engine must match brute-force
// comparison of good and faulty single-pattern simulation.
func TestRandomStuckAtConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cellNames := []string{"NAND2X1", "NOR2X1", "XOR2X1", "INVX1", "AND2X2", "AOI21X1"}
	for trial := 0; trial < 30; trial++ {
		c := netlist.New("rand", lib)
		var nets []*netlist.Net
		for i := 0; i < 4; i++ {
			nets = append(nets, c.AddPI(string(rune('a'+i))))
		}
		for i := 0; i < 10; i++ {
			cell := lib.ByName(cellNames[rng.Intn(len(cellNames))])
			fanin := make([]*netlist.Net, cell.NumInputs())
			for j := range fanin {
				fanin[j] = nets[rng.Intn(len(nets))]
			}
			nets = append(nets, c.AddGate("", cell, fanin...))
		}
		c.MarkPO(nets[len(nets)-1])
		c.MarkPO(nets[len(nets)-3])
		e := New(c)

		// Random fault site.
		site := nets[rng.Intn(len(nets))]
		f := &fault.Fault{Model: fault.StuckAt, Net: site, Value: uint8(rng.Intn(2))}

		// All 16 input patterns in one block.
		var tests []Test
		for p := uint(0); p < 16; p++ {
			tests = append(tests, Test{Vec: vec(uint8(p&1), uint8(p>>1&1), uint8(p>>2&1), uint8(p>>3&1))})
		}
		blk := e.SimBlock(tests)
		got := e.Detects(f, blk)

		// Brute force: resimulate a faulted clone per pattern.
		for p := 0; p < 16; p++ {
			want := bruteStuckAt(c, f, tests[p].Vec)
			if (got>>uint(p)&1 == 1) != want {
				t.Fatalf("trial %d pattern %d: engine=%v brute=%v (fault %v)",
					trial, p, got>>uint(p)&1, want, f)
			}
		}
	}
}

// bruteStuckAt simulates the faulty circuit gate-by-gate with the stem
// forced and compares POs.
func bruteStuckAt(c *netlist.Circuit, f *fault.Fault, pi []uint8) bool {
	good := make(map[*netlist.Net]uint8)
	faulty := make(map[*netlist.Net]uint8)
	for i, n := range c.PIs {
		good[n] = pi[i]
		faulty[n] = pi[i]
		if n == f.Net {
			faulty[n] = f.Value
		}
	}
	for _, g := range c.Levelize() {
		var ga, fa uint
		for i, in := range g.Fanin {
			ga |= uint(good[in]) << uint(i)
			fa |= uint(faulty[in]) << uint(i)
		}
		good[g.Out] = g.Type.Eval(ga)
		fv := g.Type.Eval(fa)
		if g.Out == f.Net {
			fv = f.Value
		}
		faulty[g.Out] = fv
	}
	for _, po := range c.POs {
		if good[po] != faulty[po] {
			return true
		}
	}
	return false
}

func TestDetectedByCreditsFirstDetection(t *testing.T) {
	c := buildChain(t)
	e := New(c)
	a := c.NetByName("a")
	l := &fault.List{}
	l.Add(&fault.Fault{Model: fault.StuckAt, Net: a, Value: 0})
	l.Add(&fault.Fault{Model: fault.StuckAt, Net: a, Value: 1})
	tests := []Test{
		{Vec: vec(1, 1)}, // detects sa0
		{Vec: vec(1, 1)}, // duplicate: no credit
		{Vec: vec(0, 1)}, // detects sa1
	}
	per := e.DetectedBy(l, tests)
	if per[0] != 1 || per[1] != 0 || per[2] != 1 {
		t.Errorf("per-test credit = %v, want [1 0 1]", per)
	}
}
