// Package bench generates the benchmark circuits of the paper's evaluation
// at reduced scale: the OpenCores designs (tv80, systemcaes, aes_core,
// wb_conmax, des_perf) and the OpenSPARC T1 logic blocks (spu, ffu, exu,
// ifu, tlu, lsu, fpu). The original RTL is not redistributable inside this
// repository and would be far too large for a single-core reproduction, so
// each generator builds *real* logic of the same character — S-box rounds,
// adders, multipliers, shifters, crossbars, decoders, control logic — with
// seeded structure and deliberate reconvergence/redundancy, which is what
// produces undetectable DFM faults and their clusters.
package bench

import (
	"fmt"
	"math/rand"

	"dfmresyn/internal/library"
	"dfmresyn/internal/logic"
	"dfmresyn/internal/netlist"
)

// B is a gate-level circuit builder over the standard library.
type B struct {
	C   *netlist.Circuit
	lib *library.Library
	rng *rand.Rand
	n   int
}

// NewB creates a builder for a named circuit.
func NewB(name string, lib *library.Library, seed int64) *B {
	return &B{C: netlist.New(name, lib), lib: lib, rng: rand.New(rand.NewSource(seed))}
}

func (b *B) name() string {
	b.n++
	return fmt.Sprintf("u%d", b.n)
}

// PI adds a primary input.
func (b *B) PI(name string) *netlist.Net { return b.C.AddPI(name) }

// PIs adds a named bus of primary inputs.
func (b *B) PIs(prefix string, n int) []*netlist.Net {
	out := make([]*netlist.Net, n)
	for i := range out {
		out[i] = b.C.AddPI(fmt.Sprintf("%s%d", prefix, i))
	}
	return out
}

// PO marks nets as primary outputs.
func (b *B) PO(nets ...*netlist.Net) {
	for _, n := range nets {
		b.C.MarkPO(n)
	}
}

func (b *B) gate(cell string, ins ...*netlist.Net) *netlist.Net {
	return b.C.AddGate(b.name(), b.lib.ByName(cell), ins...)
}

// Basic gates. The builder deliberately mixes drive strengths and complex
// cells the way a commercial synthesis run would.

// Not returns the complement.
func (b *B) Not(x *netlist.Net) *netlist.Net { return b.gate("INVX1", x) }

// Buf returns a buffered copy.
func (b *B) Buf(x *netlist.Net) *netlist.Net { return b.gate("BUFX2", x) }

// And returns x AND y.
func (b *B) And(x, y *netlist.Net) *netlist.Net { return b.gate("AND2X2", x, y) }

// Or returns x OR y.
func (b *B) Or(x, y *netlist.Net) *netlist.Net { return b.gate("OR2X2", x, y) }

// Nand returns NOT(x AND y).
func (b *B) Nand(x, y *netlist.Net) *netlist.Net { return b.gate("NAND2X1", x, y) }

// Nor returns NOT(x OR y).
func (b *B) Nor(x, y *netlist.Net) *netlist.Net { return b.gate("NOR2X1", x, y) }

// Xor returns x XOR y.
func (b *B) Xor(x, y *netlist.Net) *netlist.Net { return b.gate("XOR2X1", x, y) }

// Xnor returns NOT(x XOR y).
func (b *B) Xnor(x, y *netlist.Net) *netlist.Net { return b.gate("XNOR2X1", x, y) }

// Aoi21 returns NOT(x*y + z).
func (b *B) Aoi21(x, y, z *netlist.Net) *netlist.Net { return b.gate("AOI21X1", x, y, z) }

// Oai21 returns NOT((x+y) * z).
func (b *B) Oai21(x, y, z *netlist.Net) *netlist.Net { return b.gate("OAI21X1", x, y, z) }

// Aoi22 returns NOT(a*b + c*d).
func (b *B) Aoi22(a, bb, c, d *netlist.Net) *netlist.Net { return b.gate("AOI22X1", a, bb, c, d) }

// Mux returns s ? hi : lo.
func (b *B) Mux(lo, hi, s *netlist.Net) *netlist.Net { return b.gate("MUX2X1", lo, hi, s) }

// AndN reduces a bus with a balanced AND tree (NAND/NOR mix).
func (b *B) AndN(xs []*netlist.Net) *netlist.Net {
	return b.tree(xs, b.And)
}

// OrN reduces a bus with a balanced OR tree.
func (b *B) OrN(xs []*netlist.Net) *netlist.Net {
	return b.tree(xs, b.Or)
}

// XorN reduces a bus with a balanced XOR tree (parity).
func (b *B) XorN(xs []*netlist.Net) *netlist.Net {
	return b.tree(xs, b.Xor)
}

func (b *B) tree(xs []*netlist.Net, op func(x, y *netlist.Net) *netlist.Net) *netlist.Net {
	if len(xs) == 0 {
		panic("bench: empty reduction")
	}
	for len(xs) > 1 {
		var next []*netlist.Net
		for i := 0; i+1 < len(xs); i += 2 {
			next = append(next, op(xs[i], xs[i+1]))
		}
		if len(xs)%2 == 1 {
			next = append(next, xs[len(xs)-1])
		}
		xs = next
	}
	return xs[0]
}

// FullAdder returns (sum, carry) built from XOR/AOI cells.
func (b *B) FullAdder(x, y, cin *netlist.Net) (sum, cout *netlist.Net) {
	t := b.Xor(x, y)
	sum = b.Xor(t, cin)
	// cout = x*y + t*cin  (majority via AOI22 + INV).
	n := b.Aoi22(x, y, t, cin)
	cout = b.Not(n)
	return sum, cout
}

// Adder returns the ripple-carry sum of two equal-width buses plus carry.
func (b *B) Adder(x, y []*netlist.Net, cin *netlist.Net) (sum []*netlist.Net, cout *netlist.Net) {
	if len(x) != len(y) {
		panic("bench: adder width mismatch")
	}
	c := cin
	for i := range x {
		var s *netlist.Net
		if c == nil {
			s = b.Xor(x[i], y[i])
			c = b.And(x[i], y[i])
		} else {
			s, c = b.FullAdder(x[i], y[i], c)
		}
		sum = append(sum, s)
	}
	return sum, c
}

// Mul returns the array-multiplier product of two buses (truncated to
// len(x)+len(y) bits).
func (b *B) Mul(x, y []*netlist.Net) []*netlist.Net {
	var rows [][]*netlist.Net
	for j := range y {
		row := make([]*netlist.Net, len(x)+j)
		for i := range x {
			row[i+j] = b.And(x[i], y[j])
		}
		rows = append(rows, row)
	}
	acc := rows[0]
	for _, row := range rows[1:] {
		w := len(row)
		if len(acc) < w {
			pad := make([]*netlist.Net, w-len(acc))
			acc = append(acc, pad...)
		}
		var c *netlist.Net
		out := make([]*netlist.Net, w)
		for i := 0; i < w; i++ {
			xi, yi := acc[i], row[i]
			switch {
			case xi == nil && yi == nil:
				if c != nil {
					out[i], c = c, nil
				}
			case xi == nil:
				if c == nil {
					out[i] = yi
				} else {
					out[i] = b.Xor(yi, c)
					c = b.And(yi, c)
				}
			case yi == nil:
				if c == nil {
					out[i] = xi
				} else {
					out[i] = b.Xor(xi, c)
					c = b.And(xi, c)
				}
			default:
				if c == nil {
					out[i] = b.Xor(xi, yi)
					c = b.And(xi, yi)
				} else {
					out[i], c = b.FullAdder(xi, yi, c)
				}
			}
		}
		if c != nil {
			out = append(out, c)
		}
		acc = out
	}
	return acc
}

// MuxBus selects between two buses.
func (b *B) MuxBus(lo, hi []*netlist.Net, s *netlist.Net) []*netlist.Net {
	out := make([]*netlist.Net, len(lo))
	for i := range lo {
		out[i] = b.Mux(lo[i], hi[i], s)
	}
	return out
}

// Rotate barrel-rotates a bus left by a 2-bit (or wider) shift amount using
// mux stages.
func (b *B) Rotate(x []*netlist.Net, sh []*netlist.Net) []*netlist.Net {
	cur := x
	for k, s := range sh {
		amt := 1 << uint(k)
		rot := make([]*netlist.Net, len(cur))
		for i := range cur {
			rot[i] = cur[(i+amt)%len(cur)]
		}
		cur = b.MuxBus(cur, rot, s)
	}
	return cur
}

// FromTT builds an arbitrary function of up to 4 inputs using Shannon
// decomposition with MUX2 cells and base gates.
func (b *B) FromTT(tt logic.TT, ins []*netlist.Net) *netlist.Net {
	if len(ins) != tt.Inputs {
		panic("bench: FromTT arity mismatch")
	}
	if c, ok := tt.IsConst(); ok {
		// Constants tie through x AND NOT x; avoided by generators but
		// kept total.
		x := ins[0]
		z := b.And(x, b.Not(x))
		if c == 1 {
			return b.Not(z)
		}
		return z
	}
	if tt.Inputs == 1 {
		if tt.Eval(0) == 0 && tt.Eval(1) == 1 {
			return ins[0]
		}
		return b.Not(ins[0])
	}
	v := tt.Inputs - 1
	neg, pos := cofactorPair(tt, v)
	if neg.Bits == pos.Bits {
		return b.FromTT(logic.TT{Inputs: tt.Inputs - 1, Bits: squeeze(neg.Bits, tt.Inputs)}, ins[:v])
	}
	f0 := b.FromTT(logic.TT{Inputs: tt.Inputs - 1, Bits: squeeze(neg.Bits, tt.Inputs)}, ins[:v])
	f1 := b.FromTT(logic.TT{Inputs: tt.Inputs - 1, Bits: squeeze(pos.Bits, tt.Inputs)}, ins[:v])
	return b.Mux(f0, f1, ins[v])
}

// cofactorPair splits on the top variable, keeping full-width tables.
func cofactorPair(tt logic.TT, v int) (neg, pos logic.TT) {
	n := uint(1) << uint(tt.Inputs)
	var nb, pb uint64
	for j := uint(0); j < n; j++ {
		bit := uint64(tt.Bits >> j & 1)
		if j>>uint(v)&1 == 1 {
			pb |= bit << j
		} else {
			nb |= bit << j
		}
	}
	return logic.TT{Inputs: tt.Inputs, Bits: nb}, logic.TT{Inputs: tt.Inputs, Bits: pb}
}

// squeeze drops the top variable from a cofactor's bit layout.
func squeeze(bits uint64, inputs int) uint64 {
	half := uint(1) << uint(inputs-1)
	var out uint64
	for j := uint(0); j < half; j++ {
		out |= (bits>>j&1 | bits>>(j+half)&1) << j
	}
	return out
}

// SBox4 applies a 4-bit substitution box to a nibble.
func (b *B) SBox4(table [16]uint8, in []*netlist.Net) []*netlist.Net {
	if len(in) != 4 {
		panic("bench: SBox4 needs 4 inputs")
	}
	out := make([]*netlist.Net, 4)
	for bit := 0; bit < 4; bit++ {
		tt := logic.NewTT(4, func(a uint) uint8 { return table[a] >> uint(bit) & 1 })
		out[bit] = b.FromTT(tt, in)
	}
	return out
}

// Decoder builds a one-hot decoder of the input bus.
func (b *B) Decoder(sel []*netlist.Net) []*netlist.Net {
	inv := make([]*netlist.Net, len(sel))
	for i, s := range sel {
		inv[i] = b.Not(s)
	}
	out := make([]*netlist.Net, 1<<uint(len(sel)))
	for v := range out {
		terms := make([]*netlist.Net, len(sel))
		for i := range sel {
			if v>>uint(i)&1 == 1 {
				terms[i] = sel[i]
			} else {
				terms[i] = inv[i]
			}
		}
		out[v] = b.AndN(terms)
	}
	return out
}

// Equal compares two buses for equality.
func (b *B) Equal(x, y []*netlist.Net) *netlist.Net {
	terms := make([]*netlist.Net, len(x))
	for i := range x {
		terms[i] = b.Xnor(x[i], y[i])
	}
	return b.AndN(terms)
}

// InjectConsensus adds classic consensus-redundant cover logic:
// out = x*y + ~x*z + y*z, where the y*z term is redundant. Generators
// sprinkle these over control signals to seed realistic undetectable
// faults.
func (b *B) InjectConsensus(x, y, z *netlist.Net) *netlist.Net {
	t1 := b.And(x, y)
	t2 := b.And(b.Not(x), z)
	t3 := b.And(y, z) // redundant consensus term
	return b.Or(b.Or(t1, t2), t3)
}

// DupMerge duplicates a signal's recomputation and merges the copies —
// logic that is functionally idle but present in real synthesized netlists
// after timing fixes; it creates undetectable-fault habitat.
func (b *B) DupMerge(x, y *netlist.Net) *netlist.Net {
	a1 := b.And(x, y)
	a2 := b.Nand(x, y)
	// a1 OR NOT a2 == a1 (since NOT a2 == a1): the OR gate is redundant.
	return b.Or(a1, b.Not(a2))
}

// Pick returns a deterministic pseudo-random element of the bus.
func (b *B) Pick(nets []*netlist.Net) *netlist.Net {
	return nets[b.rng.Intn(len(nets))]
}
