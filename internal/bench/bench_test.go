package bench

import (
	"testing"

	"dfmresyn/internal/library"
	"dfmresyn/internal/logic"
	"dfmresyn/internal/sim"
)

var lib = library.OSU018Like()

func TestAllCircuitsBuildAndCheck(t *testing.T) {
	for _, name := range Names {
		c, err := Build(name, lib)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := c.Check(); err != nil {
			t.Errorf("%s: structural check: %v", name, err)
		}
		st := c.Stats()
		if st.Gates < 50 {
			t.Errorf("%s: only %d gates — too small to be a meaningful block", name, st.Gates)
		}
		if st.POs == 0 || st.PIs == 0 {
			t.Errorf("%s: missing PIs or POs", name)
		}
	}
}

func TestUnknownCircuit(t *testing.T) {
	if _, err := Build("nosuch", lib); err == nil {
		t.Fatal("unknown circuit must error")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustBuild must panic on unknown circuit")
		}
	}()
	MustBuild("nosuch", lib)
}

func TestDeterministicGeneration(t *testing.T) {
	for _, name := range Names {
		a := MustBuild(name, lib)
		b := MustBuild(name, lib)
		if len(a.Gates) != len(b.Gates) || len(a.Nets) != len(b.Nets) {
			t.Fatalf("%s: generation not deterministic", name)
		}
		for i := range a.Gates {
			if a.Gates[i].Name != b.Gates[i].Name || a.Gates[i].Type != b.Gates[i].Type {
				t.Fatalf("%s: gate %d differs between builds", name, i)
			}
		}
	}
}

func TestTableINamesSubset(t *testing.T) {
	set := map[string]bool{}
	for _, n := range Names {
		set[n] = true
	}
	for _, n := range TableINames {
		if !set[n] {
			t.Errorf("Table I circuit %s not in Names", n)
		}
	}
	if len(TableINames) != 4 {
		t.Errorf("Table I has %d circuits, want 4", len(TableINames))
	}
	if len(Names) != 12 {
		t.Errorf("Table II has %d circuits, want 12", len(Names))
	}
}

// TestTV80ALUFunction: the tv80 result bus must compute a+d / a-d / a&d /
// a^d by op code — the generator produces real logic, not noise.
func TestTV80ALUFunction(t *testing.T) {
	c := MustBuild("tv80", lib)
	s := sim.New(c)
	// PI order: a0..a7, d0..d7, op0, op1, ci.
	run := func(a, d uint8, op uint8, ci uint8) uint8 {
		pi := make([]uint8, len(c.PIs))
		for i := 0; i < 8; i++ {
			pi[i] = a >> uint(i) & 1
			pi[8+i] = d >> uint(i) & 1
		}
		pi[16] = op & 1
		pi[17] = op >> 1 & 1
		pi[18] = ci
		vals := s.RunSingle(pi)
		var res uint8
		for i := 0; i < 8; i++ {
			res |= vals[c.POs[i].ID] << uint(i)
		}
		return res
	}
	cases := []struct {
		a, d   uint8
		op, ci uint8
		want   uint8
	}{
		{10, 5, 0, 0, 15},        // add
		{10, 5, 1, 0, 10 - 5},    // sub
		{0xF0, 0x3C, 2, 0, 0x30}, // and
		{0xF0, 0x3C, 3, 0, 0xCC}, // xor
		{200, 100, 0, 1, 45},     // add with carry (wraps)
	}
	for _, tc := range cases {
		if got := run(tc.a, tc.d, tc.op, tc.ci); got != tc.want {
			t.Errorf("tv80 alu(a=%d,d=%d,op=%d,ci=%d) = %d, want %d",
				tc.a, tc.d, tc.op, tc.ci, got, tc.want)
		}
	}
}

// TestSBox4Function: the S-box builder must reproduce its table.
func TestSBox4Function(t *testing.T) {
	b := NewB("sbox", lib, 1)
	in := b.PIs("x", 4)
	out := b.SBox4(presentSBox, in)
	b.PO(out...)
	s := sim.New(b.C)
	for v := uint8(0); v < 16; v++ {
		pi := []uint8{v & 1, v >> 1 & 1, v >> 2 & 1, v >> 3 & 1}
		vals := s.RunSingle(pi)
		var got uint8
		for i := 0; i < 4; i++ {
			got |= vals[out[i].ID] << uint(i)
		}
		if got != presentSBox[v] {
			t.Errorf("sbox(%x) = %x, want %x", v, got, presentSBox[v])
		}
	}
}

// TestAdderAndMul: builder arithmetic must be correct.
func TestAdderAndMul(t *testing.T) {
	b := NewB("arith", lib, 2)
	x := b.PIs("x", 4)
	y := b.PIs("y", 4)
	sum, co := b.Adder(x, y, nil)
	prod := b.Mul(x, y)
	b.PO(sum...)
	b.PO(co)
	b.PO(prod...)
	s := sim.New(b.C)
	for xv := uint(0); xv < 16; xv++ {
		for yv := uint(0); yv < 16; yv++ {
			pi := make([]uint8, 8)
			for i := 0; i < 4; i++ {
				pi[i] = uint8(xv >> uint(i) & 1)
				pi[4+i] = uint8(yv >> uint(i) & 1)
			}
			vals := s.RunSingle(pi)
			var gotSum uint
			for i := 0; i < 4; i++ {
				gotSum |= uint(vals[sum[i].ID]) << uint(i)
			}
			gotSum |= uint(vals[co.ID]) << 4
			if gotSum != xv+yv {
				t.Fatalf("adder(%d+%d) = %d", xv, yv, gotSum)
			}
			var gotProd uint
			for i := range prod {
				gotProd |= uint(vals[prod[i].ID]) << uint(i)
			}
			if gotProd != xv*yv {
				t.Fatalf("mul(%d*%d) = %d", xv, yv, gotProd)
			}
		}
	}
}

// TestRotate: the barrel rotator must rotate left by the shift amount.
func TestRotate(t *testing.T) {
	b := NewB("rot", lib, 3)
	x := b.PIs("x", 8)
	sh := b.PIs("s", 3)
	out := b.Rotate(x, sh)
	b.PO(out...)
	s := sim.New(b.C)
	for val := uint(0); val < 256; val += 37 {
		for amt := uint(0); amt < 8; amt++ {
			pi := make([]uint8, 11)
			for i := 0; i < 8; i++ {
				pi[i] = uint8(val >> uint(i) & 1)
			}
			for i := 0; i < 3; i++ {
				pi[8+i] = uint8(amt >> uint(i) & 1)
			}
			vals := s.RunSingle(pi)
			var got uint
			for i := 0; i < 8; i++ {
				got |= uint(vals[out[i].ID]) << uint(i)
			}
			want := (val>>amt | val<<(8-amt)) & 0xFF
			if got != want {
				t.Fatalf("rotate(%02x by %d) = %02x, want %02x", val, amt, got, want)
			}
		}
	}
}

// TestInjectConsensusIsRedundant: the consensus term's function must equal
// the two-term cover (the injected gate is logically redundant).
func TestInjectConsensusIsRedundant(t *testing.T) {
	b := NewB("cons", lib, 4)
	x := b.PI("x")
	y := b.PI("y")
	z := b.PI("z")
	out := b.InjectConsensus(x, y, z)
	b.PO(out)
	s := sim.New(b.C)
	for a := uint(0); a < 8; a++ {
		vals := s.RunSingle([]uint8{uint8(a & 1), uint8(a >> 1 & 1), uint8(a >> 2 & 1)})
		xv, yv, zv := a&1, a>>1&1, a>>2&1
		want := uint8(xv&yv | (1-xv)&zv)
		if vals[out.ID] != want {
			t.Errorf("consensus(%03b) = %d, want %d", a, vals[out.ID], want)
		}
	}
}

// TestDupMergeIdentity: DupMerge(x, y) must equal x AND y.
func TestDupMergeIdentity(t *testing.T) {
	b := NewB("dup", lib, 5)
	x := b.PI("x")
	y := b.PI("y")
	out := b.DupMerge(x, y)
	b.PO(out)
	s := sim.New(b.C)
	for a := uint(0); a < 4; a++ {
		vals := s.RunSingle([]uint8{uint8(a & 1), uint8(a >> 1 & 1)})
		want := uint8(a&1) & uint8(a>>1&1)
		if vals[out.ID] != want {
			t.Errorf("dupmerge(%02b) = %d, want %d", a, vals[out.ID], want)
		}
	}
}

// TestFromTTBuilder: the gate-level Shannon builder must realize arbitrary
// 4-input functions.
func TestFromTTBuilder(t *testing.T) {
	for _, bits := range []uint64{0x8000, 0x1234, 0xFFFE, 0x6996} {
		b := NewB("tt", lib, 6)
		in := b.PIs("x", 4)
		tt := logic.TT{Inputs: 4, Bits: bits}
		out := b.FromTT(tt, in)
		b.PO(out)
		s := sim.New(b.C)
		for a := uint(0); a < 16; a++ {
			pi := []uint8{uint8(a & 1), uint8(a >> 1 & 1), uint8(a >> 2 & 1), uint8(a >> 3 & 1)}
			vals := s.RunSingle(pi)
			if vals[out.ID] != tt.Eval(a) {
				t.Fatalf("tt %x at %x: got %d want %d", bits, a, vals[out.ID], tt.Eval(a))
			}
		}
	}
}

func TestScaleCircuits(t *testing.T) {
	want := map[string]struct{ lo, hi int }{
		"synth1k":  {900, 1500},
		"synth10k": {9000, 11000},
	}
	for _, name := range ScaleNames {
		c := MustBuild(name, lib)
		if err := c.Check(); err != nil {
			t.Errorf("%s: structural check: %v", name, err)
		}
		st := c.Stats()
		w := want[name]
		if st.Gates < w.lo || st.Gates > w.hi {
			t.Errorf("%s: %d gates, want %d..%d", name, st.Gates, w.lo, w.hi)
		}
		t.Logf("%s: %d gates, %d PIs, %d POs", name, st.Gates, st.PIs, st.POs)
	}
}
