package bench

import (
	"fmt"

	"dfmresyn/internal/library"
	"dfmresyn/internal/netlist"
)

// ScaleNames lists the synthetic large-tier circuits. They are not part of
// the paper's twelve benchmarks (Names); they exist to exercise the spatial
// index at a scale where the asymptotic win is visible — the paper's
// circuits top out at a few hundred gates, where a full-die scan is cheap.
var ScaleNames = []string{"synth1k", "synth10k"}

// buildScale generates a large benchmark as independent cipher-round blocks
// of ~360 gates each: key xor, S-box substitution, a wire permutation, XOR
// spreading and a final adder, plus the consensus/duplicate redundancy the
// small generators use. The blocks share no nets, so ATPG cones stay block-
// local and total analysis time scales linearly in the block count — the
// property that makes a 10k-gate full analyze tractable in the benchmark
// flow while still giving the physical stages one big shared die.
func buildScale(name string, lib *library.Library, seed int64, blocks int) *netlist.Circuit {
	b := NewB(name, lib, seed)
	boxes := [3][16]uint8{presentSBox, desSBox, skinnySBox}
	strides := [4]int{5, 7, 11, 13} // coprime to 16: true permutations
	for k := 0; k < blocks; k++ {
		st := b.PIs(fmt.Sprintf("b%d_s", k), 16)
		key := b.PIs(fmt.Sprintf("b%d_k", k), 16)
		x := make([]*netlist.Net, 16)
		for i := range st {
			x[i] = b.Xor(st[i], key[i])
		}
		var sb []*netlist.Net
		for n := 0; n < 4; n++ {
			sb = append(sb, b.SBox4(boxes[(k+n)%3], x[4*n:4*n+4])...)
		}
		stride := strides[k%4]
		perm := make([]*netlist.Net, 16)
		for i := range sb {
			perm[i] = sb[(i*stride)%16]
		}
		mix := make([]*netlist.Net, 16)
		for i := range perm {
			mix[i] = b.Xor(perm[i], b.Xor(perm[(i+4)%16], perm[(i+8)%16]))
		}
		sum, co := b.Adder(mix[:8], mix[8:], nil)
		b.PO(sum...)
		b.PO(mix[8:]...)
		b.PO(co)
		b.PO(b.InjectConsensus(key[k%16], st[(k+3)%16], st[(k+9)%16]))
		b.PO(b.DupMerge(st[k%16], key[(k+5)%16]))
	}
	return b.C
}

func buildSynth1K(lib *library.Library) *netlist.Circuit {
	return buildScale("synth1k", lib, 92, 3)
}

func buildSynth10K(lib *library.Library) *netlist.Circuit {
	return buildScale("synth10k", lib, 93, 28)
}
