package bench

import (
	"fmt"

	"dfmresyn/internal/library"
	"dfmresyn/internal/netlist"
)

// Names lists the twelve benchmark circuits of the paper's Table II, in the
// paper's order.
var Names = []string{
	"tv80", "systemcaes", "aes_core", "wb_conmax", "des_perf",
	"sparc_spu", "sparc_ffu", "sparc_exu", "sparc_ifu", "sparc_tlu",
	"sparc_lsu", "sparc_fpu",
}

// TableINames lists the circuits of Table I.
var TableINames = []string{"aes_core", "des_perf", "sparc_exu", "sparc_fpu"}

// Build generates the named benchmark circuit over the library.
func Build(name string, lib *library.Library) (*netlist.Circuit, error) {
	switch name {
	case "tv80":
		return buildTV80(lib), nil
	case "systemcaes":
		return buildSystemCAES(lib), nil
	case "aes_core":
		return buildAESCore(lib), nil
	case "wb_conmax":
		return buildWBConmax(lib), nil
	case "des_perf":
		return buildDESPerf(lib), nil
	case "sparc_spu":
		return buildSparcSPU(lib), nil
	case "sparc_ffu":
		return buildSparcFFU(lib), nil
	case "sparc_exu":
		return buildSparcEXU(lib), nil
	case "sparc_ifu":
		return buildSparcIFU(lib), nil
	case "sparc_tlu":
		return buildSparcTLU(lib), nil
	case "sparc_lsu":
		return buildSparcLSU(lib), nil
	case "sparc_fpu":
		return buildSparcFPU(lib), nil
	case "synth1k":
		return buildSynth1K(lib), nil
	case "synth10k":
		return buildSynth10K(lib), nil
	}
	return nil, fmt.Errorf("bench: unknown circuit %q", name)
}

// MustBuild is Build, panicking on unknown names.
func MustBuild(name string, lib *library.Library) *netlist.Circuit {
	c, err := Build(name, lib)
	if err != nil {
		panic(err)
	}
	return c
}

// AES-style 4-bit S-box (the PRESENT cipher S-box: cryptographically real,
// strongly nonlinear).
var presentSBox = [16]uint8{0xC, 5, 6, 0xB, 9, 0, 0xA, 0xD, 3, 0xE, 0xF, 8, 4, 7, 1, 2}

// DES S1 S-box row 0 (4-bit slice of the real DES S1 table).
var desSBox = [16]uint8{14, 4, 13, 1, 2, 15, 11, 8, 3, 10, 6, 12, 5, 9, 0, 7}

// A third nonlinear box (Skinny-64 S-box).
var skinnySBox = [16]uint8{0xC, 6, 9, 0, 1, 0xA, 2, 0xB, 3, 8, 5, 0xD, 4, 0xE, 7, 0xF}

// buildTV80 models the tv80 (Z80) core slice: an 8-bit ALU with add/sub,
// logic ops, an op-select mux tree and flag generation.
func buildTV80(lib *library.Library) *netlist.Circuit {
	b := NewB("tv80", lib, 80)
	a := b.PIs("a", 8)
	d := b.PIs("d", 8)
	op := b.PIs("op", 2)
	ci := b.PI("ci")

	// Add and subtract (two's complement via inverted operand).
	sum, cout := b.Adder(a, d, ci)
	dn := make([]*netlist.Net, len(d))
	for i := range d {
		dn[i] = b.Not(d[i])
	}
	diff, bout := b.Adder(a, dn, b.Not(ci))

	// Logic unit.
	andv := make([]*netlist.Net, 8)
	xorv := make([]*netlist.Net, 8)
	for i := 0; i < 8; i++ {
		andv[i] = b.And(a[i], d[i])
		xorv[i] = b.Xor(a[i], d[i])
	}

	// Result mux by op.
	res := make([]*netlist.Net, 8)
	for i := 0; i < 8; i++ {
		lo := b.Mux(sum[i], diff[i], op[0])
		hi := b.Mux(andv[i], xorv[i], op[0])
		res[i] = b.Mux(lo, hi, op[1])
	}

	// Flags: zero, parity, carry-select, plus consensus-redundant
	// "documented quirk" logic as found in legacy cores.
	nz := make([]*netlist.Net, 8)
	for i := range res {
		nz[i] = b.Not(res[i])
	}
	zero := b.AndN(nz)
	parity := b.XorN(res)
	carry := b.Mux(cout, bout, op[0])
	q1 := b.InjectConsensus(op[0], carry, res[3])
	q2 := b.DupMerge(res[0], carry)

	b.PO(res...)
	b.PO(zero, parity, carry, q1, q2)
	return b.C
}

// buildSystemCAES models the systemcaes block: one scaled AES-like round
// over 16 bits: key xor, 4 S-boxes, a mix layer, and round-constant logic.
func buildSystemCAES(lib *library.Library) *netlist.Circuit {
	b := NewB("systemcaes", lib, 81)
	st := b.PIs("s", 16)
	key := b.PIs("k", 16)

	// AddRoundKey.
	x := make([]*netlist.Net, 16)
	for i := range st {
		x[i] = b.Xor(st[i], key[i])
	}
	// SubBytes: 4 nibbles through the PRESENT S-box.
	var sb []*netlist.Net
	for n := 0; n < 4; n++ {
		sb = append(sb, b.SBox4(presentSBox, x[4*n:4*n+4])...)
	}
	// ShiftRows-like wire permutation.
	perm := make([]*netlist.Net, 16)
	for i := range sb {
		perm[i] = sb[(i*5)%16]
	}
	// MixColumns-like XOR spreading.
	mix := make([]*netlist.Net, 16)
	for i := range perm {
		mix[i] = b.Xor(perm[i], b.Xor(perm[(i+4)%16], perm[(i+8)%16]))
	}
	// Key schedule fragment with deliberate redundancy.
	ks := make([]*netlist.Net, 4)
	for i := 0; i < 4; i++ {
		ks[i] = b.InjectConsensus(key[i], key[i+4], key[i+8])
	}
	b.PO(mix...)
	b.PO(ks...)
	return b.C
}

// buildAESCore models aes_core: a wider AES-like round (32-bit state, 8
// S-boxes) plus key-schedule xors.
func buildAESCore(lib *library.Library) *netlist.Circuit {
	b := NewB("aes_core", lib, 82)
	st := b.PIs("s", 32)
	key := b.PIs("k", 32)

	x := make([]*netlist.Net, 32)
	for i := range st {
		x[i] = b.Xor(st[i], key[i])
	}
	var sb []*netlist.Net
	for n := 0; n < 8; n++ {
		box := presentSBox
		if n%2 == 1 {
			box = skinnySBox
		}
		sb = append(sb, b.SBox4(box, x[4*n:4*n+4])...)
	}
	perm := make([]*netlist.Net, 32)
	for i := range sb {
		perm[i] = sb[(i*13)%32]
	}
	mix := make([]*netlist.Net, 32)
	for i := range perm {
		mix[i] = b.Xor(perm[i], b.Xor(perm[(i+8)%32], perm[(i+16)%32]))
	}
	// Key schedule: rotate + sbox + rcon.
	kr := b.Rotate(key[:8], b.PIs("rot", 2))
	ksb := b.SBox4(presentSBox, kr[:4])
	for i, k := range ksb {
		mix[i] = b.Xor(mix[i], k)
	}
	// Redundancy habitat.
	r1 := b.InjectConsensus(key[0], st[0], st[16])
	r2 := b.DupMerge(st[1], key[1])
	b.PO(mix...)
	b.PO(r1, r2)
	return b.C
}

// buildWBConmax models the wb_conmax interconnect: a 4x4 crossbar with
// priority arbiters and address decoders.
func buildWBConmax(lib *library.Library) *netlist.Circuit {
	b := NewB("wb_conmax", lib, 83)
	const masters, slaves, width = 4, 4, 6
	var mdat [][]*netlist.Net
	var mreq []*netlist.Net
	var maddr [][]*netlist.Net
	for m := 0; m < masters; m++ {
		mdat = append(mdat, b.PIs(fmt.Sprintf("m%dd", m), width))
		mreq = append(mreq, b.PI(fmt.Sprintf("m%dreq", m)))
		maddr = append(maddr, b.PIs(fmt.Sprintf("m%da", m), 2))
	}

	for s := 0; s < slaves; s++ {
		// Which masters address slave s.
		var want []*netlist.Net
		for m := 0; m < masters; m++ {
			dec := b.Decoder(maddr[m])
			want = append(want, b.And(dec[s], mreq[m]))
		}
		// Fixed-priority arbiter: grant[m] = want[m] & none before.
		grant := make([]*netlist.Net, masters)
		block := b.Not(want[0]) // "no earlier grant" chain
		grant[0] = want[0]
		for m := 1; m < masters; m++ {
			grant[m] = b.And(want[m], block)
			block = b.And(block, b.Not(want[m]))
		}
		// Data mux onto the slave bus.
		bus := mdat[0]
		for m := 1; m < masters; m++ {
			bus = b.MuxBus(bus, mdat[m], grant[m])
		}
		b.PO(bus...)
		b.PO(b.OrN(grant))
		// Arbiter corner logic with redundancy (retry/timeout paths).
		b.PO(b.InjectConsensus(grant[0], want[1], want[2]))
	}
	return b.C
}

// buildDESPerf models des_perf: the heavily pipelined DES core. Under the
// full-scan abstraction each pipeline round is bounded by scan flops, so
// the block appears as two *independent* round instances whose inputs and
// outputs are pseudo-PIs/POs — exactly how scan ATPG sees the real design.
func buildDESPerf(lib *library.Library) *netlist.Circuit {
	b := NewB("des_perf", lib, 84)
	l := b.PIs("l", 16)
	r := b.PIs("r", 16)
	k1 := b.PIs("k1", 16)
	// Pseudo-PIs of the second pipeline stage (scan-captured state).
	l2in := b.PIs("p2l", 16)
	r2in := b.PIs("p2r", 16)
	k2 := b.PIs("k2", 16)

	round := func(l, r, k []*netlist.Net) ([]*netlist.Net, []*netlist.Net) {
		// Expansion-lite: xor with rotated self, then key.
		x := make([]*netlist.Net, 16)
		for i := range r {
			x[i] = b.Xor(b.Xor(r[i], r[(i+3)%16]), k[i])
		}
		var sb []*netlist.Net
		for n := 0; n < 4; n++ {
			box := desSBox
			if n%2 == 1 {
				box = presentSBox
			}
			sb = append(sb, b.SBox4(box, x[4*n:4*n+4])...)
		}
		// P permutation.
		p := make([]*netlist.Net, 16)
		for i := range sb {
			p[i] = sb[(i*7)%16]
		}
		nl := r
		nr := make([]*netlist.Net, 16)
		for i := range l {
			nr[i] = b.Xor(l[i], p[i])
		}
		return nl, nr
	}
	l1, r1 := round(l, r, k1)
	b.PO(l1...)
	b.PO(r1...)
	l2, r2 := round(l2in, r2in, k2)
	b.PO(l2...)
	b.PO(r2...)
	b.PO(b.InjectConsensus(k1[0], k2[0], l[0]), b.DupMerge(r[2], k1[2]))
	return b.C
}

// buildSparcSPU models the stream processing unit: SHA-like mixing — modular
// adds, rotations and choice/majority functions.
func buildSparcSPU(lib *library.Library) *netlist.Circuit {
	b := NewB("sparc_spu", lib, 85)
	x := b.PIs("x", 8)
	y := b.PIs("y", 8)
	z := b.PIs("z", 8)
	w := b.PIs("w", 8)

	// Ch(x,y,z) and a nonlinear mixing function, bitwise.
	ch := make([]*netlist.Net, 8)
	maj := make([]*netlist.Net, 8)
	for i := 0; i < 8; i++ {
		ch[i] = b.Mux(z[i], y[i], x[i])
		m := b.Aoi22(x[i], y[i], x[i], z[i])
		maj[i] = b.Aoi21(y[i], z[i], m) // (xy+xz) AND NOT(yz): SHA-like mixer
	}
	s1, _ := b.Adder(ch, w, nil)
	rot := b.Rotate(maj, b.PIs("r", 2))
	s2, co := b.Adder(s1, rot, nil)
	b.PO(s2...)
	b.PO(co)
	b.PO(b.InjectConsensus(x[7], y[7], z[7]))
	return b.C
}

// buildSparcFFU models the FPU frontend: exponent compare, mantissa align
// shift and sticky logic.
func buildSparcFFU(lib *library.Library) *netlist.Circuit {
	b := NewB("sparc_ffu", lib, 86)
	ea := b.PIs("ea", 5)
	eb := b.PIs("eb", 5)
	ma := b.PIs("ma", 8)
	mb := b.PIs("mb", 8)

	// Exponent difference.
	ebn := make([]*netlist.Net, 5)
	for i := range eb {
		ebn[i] = b.Not(eb[i])
	}
	one := b.Not(b.And(ea[0], b.Not(ea[0]))) // constant 1 habitat (redundant)
	diff, aGE := b.Adder(ea, ebn, one)

	// Align the smaller mantissa by the low diff bits.
	mbs := b.Rotate(mb, diff[:3])
	sel := make([]*netlist.Net, 8)
	for i := range sel {
		sel[i] = b.Mux(ma[i], mbs[i], aGE)
	}
	// Sticky bits: OR of shifted-out positions.
	sticky := b.OrN(mbs[:4])
	sum, co := b.Adder(sel, mbs, nil)
	zero := b.Not(b.OrN(sum))
	b.PO(sum...)
	b.PO(co, sticky, zero, aGE)
	b.PO(b.DupMerge(ea[0], eb[0]))
	return b.C
}

// buildSparcEXU models the execution unit: 8-bit ALU with bypass network
// and condition codes.
func buildSparcEXU(lib *library.Library) *netlist.Circuit {
	b := NewB("sparc_exu", lib, 87)
	rs1 := b.PIs("rs1", 8)
	rs2 := b.PIs("rs2", 8)
	fwd := b.PIs("fwd", 8) // forwarded result
	sel := b.PIs("sel", 2)
	op := b.PIs("op", 2)

	// Bypass muxes.
	a := b.MuxBus(rs1, fwd, sel[0])
	d := b.MuxBus(rs2, fwd, sel[1])

	sum, cout := b.Adder(a, d, nil)
	dn := make([]*netlist.Net, 8)
	for i := range d {
		dn[i] = b.Not(d[i])
	}
	diff, _ := b.Adder(a, dn, b.Not(b.And(a[0], b.Not(a[0])))) // +1 via constant-1
	logicOut := make([]*netlist.Net, 8)
	for i := 0; i < 8; i++ {
		logicOut[i] = b.Mux(b.And(a[i], d[i]), b.Xor(a[i], d[i]), op[0])
	}
	res := make([]*netlist.Net, 8)
	for i := 0; i < 8; i++ {
		arith := b.Mux(sum[i], diff[i], op[0])
		res[i] = b.Mux(arith, logicOut[i], op[1])
	}
	// Condition codes.
	nz := make([]*netlist.Net, 8)
	for i := range res {
		nz[i] = b.Not(res[i])
	}
	ccZ := b.AndN(nz)
	ccN := b.Buf(res[7])
	ccV := b.Xor(cout, b.Xor(a[7], d[7]))
	b.PO(res...)
	b.PO(ccZ, ccN, ccV)
	b.PO(b.InjectConsensus(op[0], res[2], ccN), b.InjectConsensus(sel[0], rs1[3], fwd[3]))
	return b.C
}

// buildSparcIFU models instruction fetch: PC increment, branch target adder,
// and instruction decode PLA.
func buildSparcIFU(lib *library.Library) *netlist.Circuit {
	b := NewB("sparc_ifu", lib, 88)
	pc := b.PIs("pc", 10)
	off := b.PIs("off", 10)
	inst := b.PIs("inst", 8)
	taken := b.PI("taken")

	// PC + 1.
	oneVec := make([]*netlist.Net, 10)
	k0 := b.And(pc[0], b.Not(pc[0]))
	k1 := b.Not(k0)
	oneVec[0] = k1
	for i := 1; i < 10; i++ {
		oneVec[i] = k0
	}
	inc, _ := b.Adder(pc, oneVec, nil)
	// Branch target.
	tgt, _ := b.Adder(pc, off, nil)
	next := b.MuxBus(inc, tgt, taken)

	// Decode PLA: opcode classes from instruction bits.
	dec := b.Decoder(inst[:3])
	cls := make([]*netlist.Net, 6)
	cls[0] = b.And(dec[0], inst[3])
	cls[1] = b.Or(dec[1], dec[2])
	cls[2] = b.And(dec[3], b.Not(inst[4]))
	cls[3] = b.Aoi21(dec[4], inst[5], dec[5])
	cls[4] = b.Oai21(dec[6], inst[6], dec[7])
	cls[5] = b.InjectConsensus(inst[7], cls[1], cls[2])
	b.PO(next...)
	b.PO(cls...)
	return b.C
}

// buildSparcTLU models the trap logic unit: priority encoding of trap
// sources and trap-level comparison.
func buildSparcTLU(lib *library.Library) *netlist.Circuit {
	b := NewB("sparc_tlu", lib, 89)
	req := b.PIs("req", 16)
	lvl := b.PIs("lvl", 4)
	cur := b.PIs("cur", 4)
	en := b.PI("en")

	// Priority encoder over trap requests.
	enc := make([]*netlist.Net, 4)
	var blocked []*netlist.Net
	notBefore := b.Not(req[0])
	taken := []*netlist.Net{req[0]}
	for i := 1; i < len(req); i++ {
		t := b.And(req[i], notBefore)
		taken = append(taken, t)
		notBefore = b.And(notBefore, b.Not(req[i]))
		blocked = append(blocked, notBefore)
	}
	for bit := 0; bit < 4; bit++ {
		var terms []*netlist.Net
		for i := 0; i < len(req); i++ {
			if i>>uint(bit)&1 == 1 {
				terms = append(terms, taken[i])
			}
		}
		enc[bit] = b.OrN(terms)
	}
	// Level comparator: take trap when lvl > cur.
	lvlGT := b.greaterThan(lvl, cur)
	fire := b.And(b.And(lvlGT, en), b.OrN(req))
	b.PO(enc...)
	b.PO(fire, blocked[len(blocked)-1])
	b.PO(b.InjectConsensus(en, req[0], req[1]), b.DupMerge(lvl[0], cur[0]))
	return b.C
}

// greaterThan builds an unsigned comparator x > y.
func (b *B) greaterThan(x, y []*netlist.Net) *netlist.Net {
	// From MSB down: gt = x_i & ~y_i | (x_i == y_i) & gt_below.
	var gt *netlist.Net
	for i := len(x) - 1; i >= 0; i-- {
		here := b.And(x[i], b.Not(y[i]))
		if gt == nil {
			gt = here
			continue
		}
		eq := b.Xnor(x[i], y[i])
		gt = b.Or(here, b.And(eq, gt))
	}
	return gt
}

// buildSparcLSU models the load/store unit: address add, tag compare, byte
// alignment and mask generation.
func buildSparcLSU(lib *library.Library) *netlist.Circuit {
	b := NewB("sparc_lsu", lib, 90)
	base := b.PIs("base", 10)
	off := b.PIs("off", 10)
	tag := b.PIs("tag", 6)
	sz := b.PIs("sz", 2)
	data := b.PIs("data", 8)

	addr, _ := b.Adder(base, off, nil)
	hit := b.Equal(addr[4:10], tag)
	// Byte mask from size and low address bits.
	dec := b.Decoder(sz)
	mask := make([]*netlist.Net, 4)
	mask[0] = b.OrN([]*netlist.Net{dec[0], dec[1], dec[2], dec[3]})
	mask[1] = b.OrN([]*netlist.Net{dec[1], dec[2], dec[3]})
	mask[2] = b.Or(dec[2], dec[3])
	mask[3] = b.Buf(dec[3])
	// Alignment rotate of store data.
	rot := b.Rotate(data, addr[:2])
	out := make([]*netlist.Net, 8)
	for i := 0; i < 8; i++ {
		out[i] = b.And(rot[i], mask[i/2])
	}
	b.PO(addr...)
	b.PO(out...)
	b.PO(hit)
	b.PO(b.InjectConsensus(hit, mask[0], mask[1]))
	return b.C
}

// buildSparcFPU models the floating-point unit: a 6x6 mantissa multiplier,
// exponent adder and a normalization shifter — the largest block, as in the
// paper.
func buildSparcFPU(lib *library.Library) *netlist.Circuit {
	b := NewB("sparc_fpu", lib, 91)
	ma := b.PIs("ma", 8)
	mb := b.PIs("mb", 8)
	ea := b.PIs("ea", 6)
	eb := b.PIs("eb", 6)
	sa := b.PI("sa")
	sb := b.PI("sb")

	prod := b.Mul(ma, mb)
	esum, eco := b.Adder(ea, eb, nil)
	sign := b.Xor(sa, sb)
	// Normalize: if the top product bit is 0, shift left by one and
	// decrement the exponent.
	top := prod[len(prod)-1]
	norm := make([]*netlist.Net, len(prod))
	for i := range prod {
		lo := prod[i]
		var hi *netlist.Net
		if i == 0 {
			hi = b.And(prod[0], b.Not(prod[0])) // shift in zero
		} else {
			hi = prod[i-1]
		}
		norm[i] = b.Mux(hi, lo, top)
	}
	// Exponent select with redundancy habitat.
	edec := make([]*netlist.Net, 6)
	for i := range esum {
		edec[i] = b.Mux(b.Xor(esum[i], b.cOne(ea[0])), esum[i], top)
	}
	sticky := b.OrN(norm[:4])
	b.PO(norm...)
	b.PO(edec...)
	b.PO(sign, eco, sticky)
	b.PO(b.InjectConsensus(sa, ma[0], mb[0]), b.DupMerge(ea[1], eb[1]))
	return b.C
}

// cOne builds a constant-1 net derived from x (redundant logic habitat).
func (b *B) cOne(x *netlist.Net) *netlist.Net {
	return b.Nand(x, b.Not(x))
}
