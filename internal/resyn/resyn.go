// Package resyn implements the paper's contribution: the iterative
// two-phase logic-resynthesis procedure (Section III) that eliminates large
// clusters of undetectable DFM faults while maintaining the design
// constraints of critical-path delay, power consumption and die area.
//
// Phase one repeatedly targets the current largest cluster S_max,
// resynthesizing the subcircuit C_sub of its corresponding gates G_max with
// library cells excluded in decreasing order of their internal-fault
// counts, until the share of F inside S_max reaches p1 (1% by default).
// Phase two targets the subcircuit of all gates with undetectable faults,
// reducing the total number of undetectable faults while keeping S_max
// bounded by p2. A backtracking procedure (Section III-C) freezes gates in
// sqrt(n)-sized groups to satisfy the design constraints. The driver sweeps
// the allowed delay/power increase q from 0 to 5 percent, each run applied
// on top of the previous solution.
package resyn

import (
	"errors"
	"fmt"
	"math"
	"time"

	"dfmresyn/internal/equiv"
	"dfmresyn/internal/fault"
	"dfmresyn/internal/fcache"
	"dfmresyn/internal/flow"
	"dfmresyn/internal/geom"
	"dfmresyn/internal/library"
	"dfmresyn/internal/lint"
	"dfmresyn/internal/netlist"
	"dfmresyn/internal/obs"
	"dfmresyn/internal/resilience"
	"dfmresyn/internal/synth"
)

// Options tunes the procedure; zero values select the paper's settings.
type Options struct {
	// P1 is the phase-one termination target for |S_max|/|F| (default
	// 0.01, the paper's 1%).
	P1 float64
	// MaxQ is the largest acceptable percentage increase in delay and
	// power (default 5).
	MaxQ int
	// MaxItersPhase caps iterations per phase per q (default 40).
	MaxItersPhase int
	// RisingUStop ends a phase's cell scan after this many consecutive
	// analyzed candidates with increasing U (default 2), the paper's
	// gross-trend early termination.
	RisingUStop int
	// Mode selects the technology-mapping cost function.
	Mode synth.Mode

	// --- Ablation knobs (defaults reproduce the paper). ---

	// BacktrackGroup sets the backtracking group size: 0 selects the
	// paper's sqrt(n); a positive value fixes the group size (1 =
	// one-gate-at-a-time); -1 freezes all of G_i at once.
	BacktrackGroup int
	// CellOrder selects the exclusion order of library cells.
	CellOrder CellOrder
	// SkipPhase1 disables phase one (cluster-targeted resynthesis),
	// leaving only the whole-circuit phase two.
	SkipPhase1 bool
	// NoEarlyStop disables the rising-U early phase termination.
	NoEarlyStop bool
	// NoVerify disables the per-candidate functional equivalence check
	// (random/exhaustive simulation against the current circuit).
	NoVerify bool

	// --- Resilience knobs (not part of the checkpoint fingerprint). ---

	// Journal, when non-empty, is the path of the sweep's checkpoint
	// journal: after every accepted iteration the complete resumable sweep
	// state is written there atomically (see checkpoint.go). An
	// interrupted run resumes from it with Resume, reproducing the
	// uninterrupted run's tables byte for byte.
	Journal string
	// StopAfterCommits, when positive, stops the sweep as if the process
	// had been killed right after that many accepted iterations: the run
	// returns its partial Result with an ErrInterrupted error, and the
	// journal (if any) holds exactly those commits. It is the
	// deterministic stand-in for SIGKILL used by the chaos harness and the
	// kill-and-resume differential tests.
	StopAfterCommits int
}

// CellOrder selects how cells are ranked for exclusion.
type CellOrder int

// Cell exclusion orders: by internal-fault count (the paper), by area, or
// by name (a deliberately uninformed baseline).
const (
	OrderInternalFaults CellOrder = iota
	OrderArea
	OrderName
)

func (o Options) withDefaults() Options {
	if o.P1 == 0 {
		o.P1 = 0.01
	}
	if o.MaxQ == 0 {
		o.MaxQ = 5
	}
	if o.MaxItersPhase == 0 {
		o.MaxItersPhase = 40
	}
	if o.RisingUStop == 0 {
		o.RisingUStop = 2
	}
	return o
}

// IterationRecord traces one accepted or attempted resynthesis iteration
// (the series behind Fig. 2).
type IterationRecord struct {
	Q        int
	Phase    int
	Iter     int
	Excluded string // cell whose exclusion produced the attempt
	Accepted bool
	ViaBack  bool // accepted through the backtracking procedure
	U        int
	Smax     int
	F        int
}

// Result is the outcome of the full q-sweep.
type Result struct {
	Orig  *flow.Design
	Final *flow.Design
	// BestQ is the largest q at which an improvement was accepted —
	// the paper's "Max Inc" column.
	BestQ int
	Trace []IterationRecord
	// SynthCalls / PDCalls count Synthesize() and PDesign() invocations.
	SynthCalls int
	PDCalls    int
	// EquivFailures counts candidates rejected by the equivalence safety
	// check; it must stay zero (a nonzero value indicates a mapper bug).
	EquivFailures int
	// LintFailures counts intermediate circuits rejected by the static
	// analyzer when the environment's lint mode is warn or strict; like
	// EquivFailures it must stay zero (a nonzero value indicates a
	// rebuild or placement bug).
	LintFailures int
	// ATPGTime totals the test-generation wall time across the sweep's
	// accepted and rejected PDesign() calls.
	ATPGTime time.Duration
	// StaticProven totals the faults the static implication screen
	// classified Undetectable with zero PODEM searches across the
	// sweep's PDesign() calls (see atpg.Result.StaticProven). Static
	// proofs published to the verdict cache return as ordinary cache
	// hits on later iterations, so this counts fresh proofs only.
	StaticProven int
	// Cache snapshots the fault-verdict cache activity of this run: every
	// ATPG invocation of the q-sweep — including the pre-physical-design
	// undetectable-internal screens — shares one cache, so the hit rate
	// here is the cross-iteration reuse the resynthesis loop achieves.
	Cache fcache.Stats
	// Incr totals the incremental physical re-analysis activity across
	// the sweep's PDesign() calls.
	Incr IncrTotals
	// Iters records one telemetry row per accepted iteration, in commit
	// order — the |S_max|, |U| and backtracking-effort trajectory of the
	// sweep (the quantitative series behind Fig. 2, also exported through
	// the metrics registry as the resyn/smax_frac series).
	Iters []IterStats
	// BacktrackGroupsTried / BacktrackGroupsAccepted count sqrt(n)-group
	// freeze attempts across the whole sweep, including iterations whose
	// backtracking found no acceptable design.
	BacktrackGroupsTried    int
	BacktrackGroupsAccepted int

	// --- Resilience telemetry. ---

	// Interrupted marks a sweep stopped before its natural end (context
	// cancellation, stage deadline, or StopAfterCommits). The Result then
	// holds the consistent prefix up to and including the last accepted
	// iteration; Final is the last committed design.
	Interrupted bool
	// Resumed marks a sweep reconstructed from a checkpoint journal;
	// ReplayedCommits counts the accepted iterations replayed from it.
	// Tables and traces of a resumed run are byte-identical to the
	// uninterrupted run's; effort counters (SynthCalls, PDCalls) cover
	// only the work this process actually performed.
	Resumed         bool
	ReplayedCommits int
	// Recovered / Quarantined total the ATPG worker panics that were
	// retried successfully and the faults abandoned after a failed retry,
	// across every analysis of the sweep. Quarantined must stay zero in
	// production; the chaos harness drives it on purpose.
	Recovered   int
	Quarantined int
	// SATEscalations / SATConflicts total the CDCL escalation tier's work
	// across every analysis of the sweep (see atpg.Result): hard faults
	// whose limited PODEM search gave up and were re-solved to a
	// definitive verdict, and the solver conflicts those proofs cost.
	SATEscalations int
	SATConflicts   int64
	// Tiers totals the per-verdict provenance breakdown over every
	// PDesign() analysis of the sweep (accepted and rejected candidates
	// alike; see atpg.Result.Tiers) — which engine tier carried the
	// sweep's classification work.
	Tiers obs.TierCounts
}

// IterStats is the telemetry of one accepted resynthesis iteration.
type IterStats struct {
	Q, Phase, Iter int
	// U, Smax, F snapshot the committed design; SmaxFrac is |S_max|/|F|,
	// the quantity phase one drives to p1.
	U, Smax, F int
	SmaxFrac   float64
	// BacktrackTried / BacktrackAccepted count the group-freeze attempts
	// spent inside this iteration (0/0 for a directly accepted candidate).
	BacktrackTried    int
	BacktrackAccepted int
	// Tiers is the provenance breakdown of the committed design's analysis
	// (atpg.Result.Tiers): which engine tier decided its verdicts. On a
	// resumed run, replayed rows reflect the replay-time cache state — more
	// cache hits than the original run had at that commit — so the row-level
	// Tiers of replayed commits are informational, not identity-checked.
	Tiers obs.TierCounts
}

// IncrTotals accumulates flow.IncrStats over every AnalyzeIncremental of a
// resynthesis run.
type IncrTotals struct {
	// Analyses counts the incremental analyses that reported stats.
	Analyses int
	// NetsReused / NetsRerouted total the router's per-analysis counts.
	NetsReused   int
	NetsRerouted int
	// DFMIncremental counts analyses whose fault universe was spliced
	// from the previous scan log instead of a full die scan.
	DFMIncremental int
}

// state carries the procedure's working data.
type state struct {
	env *flow.Env
	opt Options

	orig *flow.Design // constraints reference
	cur  *flow.Design

	q       int
	gen     int // rebuild-generation counter for unique gate prefixes
	res     *Result
	ordered []*library.Cell // by internal fault count, descending

	// curUIntNet caches UndetectableInternal(cur.C); refreshed on commit.
	curUIntNet int
	uintValid  bool
	// iterBtTried / iterBtAcc count backtracking group attempts within the
	// current iteration (reset by tryCells, snapshotted by commit).
	iterBtTried, iterBtAcc int
	// committedAtQ / constraintBlocked drive the q sweep: raising q only
	// helps when some accepted candidate was blocked by constraints.
	committedAtQ      bool
	constraintBlocked bool

	// stopped, once non-nil, makes every loop unwind without further
	// synthesis work; it becomes the sweep's returned error. Set on
	// context cancellation, on StopAfterCommits, and on a failed
	// checkpoint write.
	stopped error
	// commits accumulates one record per accepted iteration — replayed
	// records first on a resumed run — and is what each checkpoint
	// journals. Only populated when opt.Journal is set.
	commits []commitRecord
}

// curUInt returns the cached undetectable-internal count of the current
// netlist.
func (s *state) curUInt() int {
	if !s.uintValid {
		s.curUIntNet = s.env.UndetectableInternal(s.cur.C)
		s.uintValid = true
	}
	return s.curUIntNet
}

// Run applies the full procedure to circuit c: original flow, then the
// incremental q sweep.
func Run(env *flow.Env, c *netlist.Circuit, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	orig, err := env.Analyze(c, geom.Rect{})
	if err != nil {
		return nil, fmt.Errorf("resyn: original flow failed: %w", err)
	}
	return RunFrom(env, orig, opt)
}

// RunFrom applies the q sweep starting from an already-analyzed original
// design. When the sweep is interrupted (cancelled context, stage deadline,
// StopAfterCommits) the partial Result — a consistent prefix ending at the
// last accepted iteration — is returned together with an error wrapping
// resilience.ErrInterrupted; with Options.Journal set, that prefix is also
// durable on disk and Resume continues it.
func RunFrom(env *flow.Env, orig *flow.Design, opt Options) (*Result, error) {
	return runSweep(env, orig, opt.withDefaults(), nil)
}

// runSweep is the sweep core shared by RunFrom and Resume: ck, when non-nil,
// is an already-validated checkpoint whose commit chain is replayed before
// the sweep continues from the journaled loop position.
func runSweep(env *flow.Env, orig *flow.Design, opt Options, ck *Checkpoint) (*Result, error) {
	// The whole q-sweep shares one fault-verdict cache: faults whose
	// support cone a rebuild leaves untouched keep their verdicts instead
	// of re-entering PODEM. A caller-installed cache is reused; otherwise
	// a fresh one lives for exactly this run (so a later baseline Analyze
	// on the same Env stays uncached).
	cacheStart := fcache.Stats{}
	if env.FaultCache == nil {
		env.FaultCache = fcache.New()
		defer func() { env.FaultCache = nil }()
	} else {
		cacheStart = env.FaultCache.Stats()
	}
	s := &state{
		env:  env,
		opt:  opt,
		orig: orig,
		cur:  orig,
		res:  &Result{Orig: orig, BestQ: -1},
	}
	switch opt.CellOrder {
	case OrderArea:
		s.ordered = env.Lib.SortedBy(func(cell *library.Cell) float64 { return cell.Area })
	case OrderName:
		s.ordered = env.Lib.SortedBy(func(*library.Cell) float64 { return 0 }) // name tie-break
	default:
		s.ordered = env.Lib.SortedBy(func(cell *library.Cell) float64 {
			return float64(env.Prof.InternalFaultCount(cell))
		})
	}
	spRun := obs.Start(env.Obs, "resyn/sweep", obs.Int("gates", len(orig.C.Gates)))
	defer spRun.End()
	// Seed the trajectory with the original design so the exported series
	// starts at the pre-resynthesis |S_max|/|F|.
	env.Obs.Series("resyn/smax_frac").Append(smaxFrac(orig))
	startQ := 0
	var rp *resumePoint
	if ck != nil {
		if err := s.replay(ck); err != nil {
			return nil, err
		}
		startQ = ck.Q
		rp = &resumePoint{phase: ck.Phase, nextIter: ck.NextIter, p2: ck.P2}
	}
	for q := startQ; q <= opt.MaxQ; q++ {
		s.q = q
		if rp != nil {
			// Mid-q resume: the per-q flags are part of the journaled
			// state, not recomputed, so the continuation sees exactly
			// what the interrupted run saw.
			s.committedAtQ = ck.CommittedAtQ
			s.constraintBlocked = ck.ConstraintBlocked
		} else {
			s.committedAtQ = false
			s.constraintBlocked = false
		}
		spQ := obs.Start(env.Obs, "resyn/q", obs.Int("q", q))
		s.runPhases(rp)
		rp = nil
		spQ.End()
		if s.stopped != nil {
			break
		}
		// Raising q only relaxes the delay/power constraints; when the
		// last pass neither improved nor hit a constraint wall, higher
		// q cannot change any outcome.
		if !s.committedAtQ && !s.constraintBlocked {
			break
		}
	}
	s.res.Final = s.cur
	if s.stopped == nil && len(s.res.Trace) > 0 {
		// Signoff: the reported final design is re-classified with the
		// verdict cache bypassed, so its test set and coverage are a pure
		// function of the final circuit rather than of the sweep's cache
		// history — the paper likewise reports Table II from a standalone
		// ATPG run on the resynthesized design. The physical results (and
		// therefore U, S_max, delay and power) are shared untouched, so
		// the row stays consistent with the acceptance decisions.
		spSign := obs.Start(env.Obs, "resyn/signoff")
		fd, err := env.VerifyFaults(s.cur)
		spSign.End()
		if err != nil {
			s.stopped = fmt.Errorf("resyn: final signoff reclassification: %w", err)
		} else {
			s.res.Final = fd
		}
	}
	end := env.FaultCache.Stats()
	s.res.Cache = fcache.Stats{
		Lookups: end.Lookups - cacheStart.Lookups,
		Hits:    end.Hits - cacheStart.Hits,
		Stores:  end.Stores - cacheStart.Stores,
		Corrupt: end.Corrupt - cacheStart.Corrupt,
		Entries: end.Entries,
	}
	if s.stopped != nil {
		s.res.Interrupted = errors.Is(s.stopped, resilience.ErrInterrupted)
		return s.res, s.stopped
	}
	return s.res, nil
}

// resumePoint positions the first runPhases call of a resumed sweep: which
// phase to re-enter, at which iteration, and — for a phase-2 resume — the
// p2 bound frozen when the interrupted run entered phase two (recomputing it
// from the replayed circuit would diverge, since phase 1 may have kept
// shrinking S_max after the journaled commit).
type resumePoint struct {
	phase    int
	nextIter int
	p2       float64
}

// constraintsOK checks delay/power against the original with slack q%, as
// well as the fixed die (checked implicitly by Analyze via PlaceInDie).
func (s *state) constraintsOK(d *flow.Design) bool {
	slack := 1 + float64(s.q)/100
	if d.Timing.CriticalDelay > s.orig.Timing.CriticalDelay*slack {
		return false
	}
	if d.Power.Total > s.orig.Power.Total*slack {
		return false
	}
	return true
}

// smaxFrac returns |S_max| / |F| of a design.
func smaxFrac(d *flow.Design) float64 {
	f := d.Faults.Len()
	if f == 0 {
		return 0
	}
	return float64(len(d.Clusters.Smax())) / float64(f)
}

// undetectable returns the total and internal undetectable counts.
func undetectable(d *flow.Design) (total, internal int) {
	c := d.Faults.Count()
	return c.Undetectable, c.UndetectableInt
}

// runPhases executes phase one and phase two at the current q. rp, non-nil
// only on the first call of a resumed sweep, re-enters the journaled phase at
// the journaled iteration: a phase-2 resume skips phase 1 entirely (it had
// already terminated in the interrupted run) and restores the frozen p2.
func (s *state) runPhases(rp *resumePoint) {
	startIter1, startIter2 := 0, 0
	skip1 := s.opt.SkipPhase1
	var p2Frozen *float64
	if rp != nil {
		switch rp.phase {
		case 1:
			startIter1 = rp.nextIter
		case 2:
			skip1 = true
			startIter2 = rp.nextIter
			p2 := rp.p2
			p2Frozen = &p2
		}
	}

	// ---- Phase one: break up the largest clusters.
	sp1 := obs.Start(s.env.Obs, "resyn/phase1")
	for iter := startIter1; !skip1 && s.stopped == nil && iter < s.opt.MaxItersPhase; iter++ {
		if smaxFrac(s.cur) <= s.opt.P1 {
			break
		}
		gmax := s.cur.Clusters.Gmax()
		if len(gmax) == 0 {
			break
		}
		improved := s.tryCells(gmax, 1, iter, 0)
		if !improved {
			break
		}
	}
	sp1.End()
	if s.stopped != nil {
		return
	}

	// ---- Phase two: reduce U everywhere, bounding S_max by p2.
	p2 := math.Max(s.opt.P1, smaxFrac(s.cur))
	if p2Frozen != nil {
		p2 = *p2Frozen
	}
	sp2 := obs.Start(s.env.Obs, "resyn/phase2")
	for iter := startIter2; s.stopped == nil && iter < s.opt.MaxItersPhase; iter++ {
		gu := s.cur.Clusters.GU
		if len(gu) == 0 {
			break
		}
		improved := s.tryCells(gu, 2, iter, p2)
		if !improved {
			break
		}
	}
	sp2.End()
}

// hostsOfUndetectableInternal returns the set of gates containing
// undetectable internal faults in the current design.
func (s *state) hostsOfUndetectableInternal() map[*netlist.Gate]bool {
	hosts := map[*netlist.Gate]bool{}
	for _, f := range s.cur.Faults.Faults {
		if f.Internal && f.Status == fault.Undetectable {
			hosts[f.Gate] = true
		}
	}
	return hosts
}

// tryCells is one iteration of a phase over subcircuit gates: it considers
// the library cells in decreasing internal-fault order and commits the
// first acceptable resynthesized design. Returns whether an improvement was
// committed.
func (s *state) tryCells(subGates []*netlist.Gate, phase, iter int, p2 float64) bool {
	sp := obs.Start(s.env.Obs, "resyn/iter",
		obs.Int("phase", phase), obs.Int("iter", iter), obs.Int("q", s.q))
	defer sp.End()
	s.iterBtTried, s.iterBtAcc = 0, 0
	// The subcircuit must be convex for the rebuild; gates on paths that
	// leave and re-enter it are pulled in (and stay frozen unless they
	// host undetectable internal faults themselves).
	region := netlist.ExtractRegion(netlist.ConvexClosure(s.cur.C, subGates))
	hosts := s.hostsOfUndetectableInternal()

	// G_zero: subcircuit gates with no undetectable internal faults.
	gzero := func(g *netlist.Gate) bool { return !hosts[g] }

	// Cell types present in C_sub with undetectable internal faults.
	typesWithU := map[*library.Cell]bool{}
	anyUnfrozen := false
	for _, g := range region.Gates {
		if hosts[g] {
			typesWithU[g.Type] = true
			anyUnfrozen = true
		}
	}
	if !anyUnfrozen {
		return false
	}

	curU, _ := undetectable(s.cur)
	curUIntNet := s.curUInt()
	curSmax := len(s.cur.Clusters.Smax())

	rising := 0
	lastU := curU
	for i, cell := range s.ordered {
		if s.stopped != nil {
			return false
		}
		// Eligibility (1) and (2): the cell is used in C_sub and at
		// least one instance of it there has undetectable internal
		// faults.
		if !typesWithU[cell] {
			continue
		}
		allowed := allowedSet(s.ordered[i+1:])

		// Area-oriented mapping first; if that satisfies the acceptance
		// criteria but breaks timing/power, retry with delay-oriented
		// mapping before resorting to the backtracking procedure — the
		// commercial Synthesize() of the paper is constraint-driven and
		// performs this trade-off internally.
		modes := []synth.Mode{s.opt.Mode}
		if s.opt.Mode == synth.Area {
			modes = append(modes, synth.Delay)
		}
		violated := false
		anyAnalyzed := false
		var lastAnalyzed *flow.Design
		for _, mode := range modes {
			newD, status := s.attempt(region, allowed, gzero, mode, curUIntNet)
			if status != attemptOK {
				continue
			}
			anyAnalyzed = true
			lastAnalyzed = newD
			accepted := s.accepts(newD, phase, p2, curU, curSmax)
			consOK := s.constraintsOK(newD)
			if accepted && consOK {
				s.commit(newD, phase, iter, p2, cell.Name, false)
				return true
			}
			if accepted && !consOK {
				violated = true
				s.constraintBlocked = true
			}
		}
		if s.stopped != nil {
			return false
		}
		if violated {
			// Acceptance criteria met but constraints broken in every
			// mode: invoke the backtracking procedure.
			if d, ok := s.backtrack(region, gzero, i, phase, p2, curU, curSmax, curUIntNet); ok {
				s.commit(d, phase, iter, p2, cell.Name, true)
				return true
			}
			return false // phase terminates
		}
		if anyAnalyzed {
			// Not accepted: track the gross U trend for early
			// termination.
			u, _ := undetectable(lastAnalyzed)
			if u > lastU {
				rising++
				if !s.opt.NoEarlyStop && rising >= s.opt.RisingUStop {
					return false
				}
			} else {
				rising = 0
			}
			lastU = u
		}
	}
	return false
}

// attemptStatus reports why an attempt stopped short of full analysis.
type attemptStatus int

const (
	attemptOK attemptStatus = iota
	attemptSynthFailed
	attemptNoUIntGain
	attemptAreaViolation
	attemptLintFailed
	// attemptInterrupted means the run's context was cancelled before or
	// during the analysis; s.stopped is set and every enclosing loop
	// unwinds. It must never set constraintBlocked — an interrupted
	// analysis says nothing about the constraint wall.
	attemptInterrupted
)

// attempt synthesizes the region with the allowed cells, screens on
// undetectable internal faults, and analyzes the result in the original
// die.
func (s *state) attempt(region *netlist.Region, allowed func(*library.Cell) bool,
	frozen func(*netlist.Gate) bool, mode synth.Mode, curUIntNet int) (*flow.Design, attemptStatus) {

	// Check cancellation before spending synthesis work: after the run is
	// interrupted every further attempt would only burn CPU on results
	// that will be discarded.
	if err := resilience.Err(s.env.Ctx); err != nil {
		s.stopped = err
		return nil, attemptInterrupted
	}
	s.gen++
	prefix := fmt.Sprintf("r%d_", s.gen)
	rs, err := synth.SynthesizeRegion(s.cur.C, region, s.env.Mapper, allowed, mode, frozen, prefix)
	if err != nil {
		return nil, attemptSynthFailed
	}
	newC, err := rs.Rebuild(s.cur.C)
	if err != nil {
		return nil, attemptSynthFailed
	}
	s.res.SynthCalls++
	s.env.Obs.Counter("resyn/synth_calls").Inc()

	// Debug/strict mode: every intermediate circuit the procedure creates
	// is linted against the pipeline contract — the rebuilt netlist must
	// be structurally sound, preserve the PI/PO interface of its parent,
	// and come from a convex region.
	if s.env.Lint != lint.ModeOff {
		fs := lint.Run(&lint.Context{Circuit: newC, Prev: s.cur.C, Region: region})
		if lint.CountAtLeast(fs, lint.Error) > 0 {
			s.res.LintFailures++
			if s.env.Lint == lint.ModeStrict {
				return nil, attemptLintFailed
			}
		}
	}

	// Safety net: the resynthesized circuit must implement the same
	// function (exhaustive for small PI counts, sampled otherwise).
	if !s.opt.NoVerify {
		eq, err := equiv.Check(s.cur.C, newC, 8, s.env.Seed)
		if err != nil || !eq.Equivalent {
			s.res.EquivFailures++
			return nil, attemptSynthFailed
		}
	}

	// PDesign() only when undetectable internal faults decrease.
	if s.env.UndetectableInternal(newC) >= curUIntNet {
		return nil, attemptNoUIntGain
	}
	newD, err := s.env.AnalyzeIncremental(newC, s.cur)
	s.res.PDCalls++
	s.env.Obs.Counter("resyn/pd_calls").Inc()
	if newD != nil {
		s.res.ATPGTime += newD.ATPGTime
		s.res.StaticProven += newD.Result.StaticProven
		s.res.Recovered += newD.Result.Recovered
		s.res.Quarantined += len(newD.Result.Quarantined)
		s.res.SATEscalations += newD.Result.SATEscalations
		s.res.SATConflicts += newD.Result.SATConflicts
		s.res.Tiers.Merge(newD.Result.Tiers)
		if newD.Incr != nil {
			s.res.Incr.Analyses++
			s.res.Incr.NetsReused += newD.Incr.RouteReused
			s.res.Incr.NetsRerouted += newD.Incr.RouteRerouted
			if newD.Incr.DFMIncremental {
				s.res.Incr.DFMIncremental++
			}
		}
	}
	if err != nil {
		if errors.Is(err, resilience.ErrInterrupted) {
			// Cancelled mid-analysis: the partial classification is
			// discarded with the candidate. Not a constraint wall.
			s.stopped = err
			return nil, attemptInterrupted
		}
		if errors.Is(err, lint.ErrFindings) {
			// A strict-mode lint failure on the analyzed design (stale
			// fault sites, illegal placement) is a pipeline bug, not an
			// area violation — count it separately and do not let it
			// masquerade as a constraint wall.
			s.res.LintFailures++
			return nil, attemptLintFailed
		}
		s.constraintBlocked = true
		return nil, attemptAreaViolation
	}
	return newD, attemptOK
}

// accepts applies the phase acceptance criteria of Section III-B.
func (s *state) accepts(d *flow.Design, phase int, p2 float64, curU, curSmax int) bool {
	u, _ := undetectable(d)
	smax := len(d.Clusters.Smax())
	if phase == 1 {
		return smax < curSmax && u <= curU
	}
	return u < curU && smaxFrac(d) <= p2
}

// commit installs an accepted design and records the trace entry plus the
// iteration's telemetry row. With a journal configured, the full resumable
// sweep state is written atomically before the commit returns — a process
// killed any time after commit resumes from exactly here. p2 is the bound
// the enclosing phase is running under, frozen into the checkpoint so a
// phase-2 resume does not recompute it.
func (s *state) commit(d *flow.Design, phase, iter int, p2 float64, cellName string, viaBack bool) {
	rec := commitRecord{
		Q:        s.q,
		Phase:    phase,
		Iter:     iter,
		Excluded: cellName,
		ViaBack:  viaBack,
		BtTried:  s.iterBtTried,
		BtAcc:    s.iterBtAcc,
	}
	if s.opt.Journal != "" {
		text, err := circuitText(d.C)
		if err != nil {
			s.stopped = fmt.Errorf("resyn: serializing committed circuit for checkpoint: %v", err)
			return
		}
		rec.Circuit = text
	}
	s.recordCommit(d, rec)
	s.committedAtQ = true
	if s.opt.Journal != "" {
		s.commits = append(s.commits, rec)
		if err := s.writeCheckpoint(phase, iter, p2); err != nil {
			// Continuing without durability would silently void the
			// resume guarantee the caller asked for; abort instead.
			s.stopped = fmt.Errorf("resyn: checkpoint write failed: %v", err)
			return
		}
		s.env.Obs.Counter("resyn/checkpoints_written").Inc()
	}
	if s.opt.StopAfterCommits > 0 && len(s.res.Trace) >= s.opt.StopAfterCommits {
		s.stopped = fmt.Errorf("resyn: stopped after %d accepted iterations (simulated kill): %w",
			len(s.res.Trace), resilience.ErrInterrupted)
	}
}

// recordCommit performs the bookkeeping shared by a live commit and a
// journal replay: install the design as current and append the trace and
// telemetry rows. The U/Smax/F columns are recomputed from the design, so a
// replayed row is identical to the original run's without journaling them.
func (s *state) recordCommit(d *flow.Design, rec commitRecord) {
	s.cur = d
	s.uintValid = false
	u, _ := undetectable(d)
	smax := len(d.Clusters.Smax())
	s.res.Trace = append(s.res.Trace, IterationRecord{
		Q:        rec.Q,
		Phase:    rec.Phase,
		Iter:     rec.Iter,
		Excluded: rec.Excluded,
		Accepted: true,
		ViaBack:  rec.ViaBack,
		U:        u,
		Smax:     smax,
		F:        d.Faults.Len(),
	})
	s.res.Iters = append(s.res.Iters, IterStats{
		Q: rec.Q, Phase: rec.Phase, Iter: rec.Iter,
		U: u, Smax: smax, F: d.Faults.Len(),
		SmaxFrac:          smaxFrac(d),
		BacktrackTried:    rec.BtTried,
		BacktrackAccepted: rec.BtAcc,
		Tiers:             d.Result.Tiers,
	})
	// One iter record per accepted iteration. Replay calls recordCommit with
	// the environment's ledger nilled, so a resumed run's ledger continues
	// exactly where the killed run's stopped.
	s.env.Ledger.Iter(obs.LedgerRecord{
		Q: rec.Q, Phase: rec.Phase, Iter: rec.Iter,
		U: u, Smax: smax, F: d.Faults.Len(),
		Tiers: d.Result.Tiers,
	})
	s.env.Obs.Counter("resyn/commits").Inc()
	s.env.Obs.Series("resyn/smax_frac").Append(smaxFrac(d))
	s.env.Obs.Gauge("resyn/undetectable").Set(float64(u))
	if rec.Q > s.res.BestQ {
		s.res.BestQ = rec.Q
	}
}

// backtrack implements Section III-C: gates of the excluded cell types are
// frozen in groups of sqrt(n) until the constraints hold; if the
// constraints hold but acceptance fails, the last group is unfrozen one
// gate at a time.
func (s *state) backtrack(region *netlist.Region, gzero func(*netlist.Gate) bool,
	cellIdx, phase int, p2 float64, curU, curSmax, curUIntNet int) (*flow.Design, bool) {

	sp := obs.Start(s.env.Obs, "resyn/backtrack", obs.Int("phase", phase))
	defer sp.End()
	excluded := map[*library.Cell]bool{}
	for _, c := range s.ordered[:cellIdx+1] {
		excluded[c] = true
	}
	allowed := allowedSet(s.ordered[cellIdx+1:])

	// G_i: replaceable gates of the excluded types, in gate-ID order.
	var gi []*netlist.Gate
	for _, g := range region.Gates {
		if excluded[g.Type] && !gzero(g) {
			gi = append(gi, g)
		}
	}
	n := len(gi)
	if n == 0 {
		return nil, false
	}
	step := int(math.Ceil(math.Sqrt(float64(n))))
	switch {
	case s.opt.BacktrackGroup > 0:
		step = s.opt.BacktrackGroup
	case s.opt.BacktrackGroup < 0:
		step = n
	}

	try := func(backCount int) (*flow.Design, bool, bool) {
		s.iterBtTried++
		s.res.BacktrackGroupsTried++
		s.env.Obs.Counter("resyn/backtrack_groups_tried").Inc()
		back := map[*netlist.Gate]bool{}
		for _, g := range gi[:backCount] {
			back[g] = true
		}
		frozen := func(g *netlist.Gate) bool { return gzero(g) || back[g] }
		d, status := s.attempt(region, allowed, frozen, s.opt.Mode, curUIntNet)
		if status != attemptOK {
			return nil, false, false
		}
		return d, s.constraintsOK(d), s.accepts(d, phase, p2, curU, curSmax)
	}
	accept := func(d *flow.Design) (*flow.Design, bool) {
		s.iterBtAcc++
		s.res.BacktrackGroupsAccepted++
		s.env.Obs.Counter("resyn/backtrack_groups_accepted").Inc()
		return d, true
	}

	for k := step; k <= n; k += step {
		if s.stopped != nil {
			return nil, false
		}
		if k > n {
			k = n
		}
		d, consOK, accOK := try(k)
		if d == nil {
			continue
		}
		if consOK && accOK {
			return accept(d)
		}
		if consOK && !accOK {
			// Unfreeze the last group one gate at a time.
			lo := k - step
			if lo < 0 {
				lo = 0
			}
			for j := k - 1; j > lo; j-- {
				if s.stopped != nil {
					return nil, false
				}
				d2, c2, a2 := try(j)
				if d2 != nil && c2 && a2 {
					return accept(d2)
				}
			}
			return nil, false
		}
	}
	return nil, false
}

// allowedSet builds the allowed-cell predicate from a slice.
func allowedSet(cells []*library.Cell) func(*library.Cell) bool {
	set := make(map[*library.Cell]bool, len(cells))
	for _, c := range cells {
		set[c] = true
	}
	return func(c *library.Cell) bool { return set[c] }
}
