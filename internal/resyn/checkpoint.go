package resyn

import (
	"fmt"
	"hash/crc32"
	"os"
	"strings"

	"dfmresyn/internal/fcache"
	"dfmresyn/internal/flow"
	"dfmresyn/internal/netlist"
	"dfmresyn/internal/obs"
	"dfmresyn/internal/resilience"
	"dfmresyn/internal/synth"
)

// Checkpoint/resume for the resynthesis sweep.
//
// After every accepted iteration, commit() journals the complete resumable
// sweep state through the resilience journal format (versioned header,
// CRC-32 over the payload, atomic temp-file + rename replacement). The
// journal carries the full commit chain — each accepted iteration's
// position plus the committed circuit in the exact-order codec — because
// everything else the continuation needs (fault verdicts, clusters, U and
// S_max columns, the RNG streams) is a deterministic function of the
// committed circuits and the run configuration: the per-fault PODEM rngs
// are derived from (seed, fault ID) per search, and the equivalence-check
// rng from the env seed per candidate, so there is no long-lived RNG
// cursor to snapshot.
//
// Resume replays the chain — re-parsing and re-analyzing each committed
// circuit incrementally from its predecessor, exactly as the original run
// analyzed it — then re-enters the sweep loops at the journaled (q, phase,
// iteration). The replayed prefix and the live continuation are therefore
// byte-identical to an uninterrupted run: same Trace and Iters rows, same
// Table II columns, same Fig. 2 series.

// checkpointKind and checkpointVersion frame the sweep journal. Bump the
// version whenever Checkpoint, commitRecord, or the exact-order circuit
// codec change shape: an old journal then fails with ErrVersion instead of
// silently resuming wrong state.
const (
	checkpointKind    = "resyn-sweep"
	checkpointVersion = 2 // v2: CacheEntries journals the fault-verdict cache
)

// commitRecord journals one accepted iteration: where in the sweep it
// happened, what the trace row needs to reproduce itself, and the
// committed circuit. The U/Smax/F columns are deliberately absent — replay
// recomputes them from the circuit, so a tampered journal can not forge a
// trajectory its circuits do not produce.
type commitRecord struct {
	Q        int    `json:"q"`
	Phase    int    `json:"phase"`
	Iter     int    `json:"iter"`
	Excluded string `json:"excluded"`
	ViaBack  bool   `json:"viaBack"`
	BtTried  int    `json:"btTried"`
	BtAcc    int    `json:"btAcc"`
	// Circuit is the committed design's netlist in the exact-order codec
	// (netlist.WriteExact); the element order is part of the resumable
	// state, since the incremental physical pipeline is order-sensitive.
	Circuit string `json:"circuit"`
}

// optPrint is the subset of Options that shapes the sweep's behaviour —
// the checkpoint fingerprint. The resilience knobs (Journal,
// StopAfterCommits) are excluded on purpose: resuming with a different
// journal path or kill schedule is exactly the intended use.
type optPrint struct {
	P1             float64    `json:"p1"`
	MaxQ           int        `json:"maxQ"`
	MaxItersPhase  int        `json:"maxItersPhase"`
	RisingUStop    int        `json:"risingUStop"`
	Mode           synth.Mode `json:"mode"`
	BacktrackGroup int        `json:"backtrackGroup"`
	CellOrder      CellOrder  `json:"cellOrder"`
	SkipPhase1     bool       `json:"skipPhase1"`
	NoEarlyStop    bool       `json:"noEarlyStop"`
	NoVerify       bool       `json:"noVerify"`
}

func fingerprint(o Options) optPrint {
	return optPrint{
		P1: o.P1, MaxQ: o.MaxQ, MaxItersPhase: o.MaxItersPhase,
		RisingUStop: o.RisingUStop, Mode: o.Mode,
		BacktrackGroup: o.BacktrackGroup, CellOrder: o.CellOrder,
		SkipPhase1: o.SkipPhase1, NoEarlyStop: o.NoEarlyStop, NoVerify: o.NoVerify,
	}
}

// Checkpoint is the journaled resumable state of a sweep, written after
// every accepted iteration and consumed by Resume.
type Checkpoint struct {
	// CircuitName, OrigCRC and Seed identify the run the journal belongs
	// to: the original circuit's name, the CRC-32 of its exact-order
	// serialization, and the environment seed. Opt fingerprints the sweep
	// configuration. Resume refuses a journal whose identity does not
	// match the run it is asked to continue.
	CircuitName string   `json:"circuitName"`
	OrigCRC     uint32   `json:"origCRC"`
	Seed        int64    `json:"seed"`
	Opt         optPrint `json:"opt"`

	// Loop position: the continuation re-enters phase Phase of q-pass Q at
	// iteration NextIter. P2 is the phase-two bound frozen when the
	// interrupted run entered phase two (meaningful only when Phase == 2).
	Q        int     `json:"q"`
	Phase    int     `json:"phase"`
	NextIter int     `json:"nextIter"`
	P2       float64 `json:"p2"`
	// CommittedAtQ / ConstraintBlocked are the q-sweep progress flags at
	// commit time; Gen is the rebuild-generation counter, whose value the
	// continuation must keep counting from so rebuilt-gate name prefixes
	// never collide with ones already committed.
	CommittedAtQ      bool `json:"committedAtQ"`
	ConstraintBlocked bool `json:"constraintBlocked"`
	Gen               int  `json:"gen"`

	// Commits is the full accepted-iteration chain, oldest first.
	Commits []commitRecord `json:"commits"`

	// CacheEntries journals the fault-verdict cache content at commit time
	// (sorted key order). Replay alone under-populates the cache — it skips
	// the rejected candidates' analyses and the internal screens the killed
	// run performed — and provenance tier attribution is cache-history-
	// dependent, so the continuation imports this before replaying: its
	// ledger records then continue the killed run's byte for byte.
	CacheEntries []fcache.ExportedEntry `json:"cacheEntries,omitempty"`
}

// circuitText serializes a circuit with the exact-order codec.
func circuitText(c *netlist.Circuit) (string, error) {
	var b strings.Builder
	if err := netlist.WriteExact(&b, c); err != nil {
		return "", err
	}
	return b.String(), nil
}

// origCRC fingerprints the original circuit of a run.
func origCRC(c *netlist.Circuit) (uint32, error) {
	text, err := circuitText(c)
	if err != nil {
		return 0, err
	}
	return crc32.ChecksumIEEE([]byte(text)), nil
}

// writeCheckpoint journals the current sweep state atomically. phase/iter
// name the commit that just happened; the journaled NextIter is iter+1,
// the iteration the uninterrupted run would execute next.
func (s *state) writeCheckpoint(phase, iter int, p2 float64) error {
	crc, err := origCRC(s.orig.C)
	if err != nil {
		return err
	}
	ck := &Checkpoint{
		CircuitName:       s.orig.C.Name,
		OrigCRC:           crc,
		Seed:              s.env.Seed,
		Opt:               fingerprint(s.opt),
		Q:                 s.q,
		Phase:             phase,
		NextIter:          iter + 1,
		P2:                p2,
		CommittedAtQ:      s.committedAtQ,
		ConstraintBlocked: s.constraintBlocked,
		Gen:               s.gen,
		Commits:           s.commits,
	}
	if s.env.FaultCache != nil {
		ck.CacheEntries = s.env.FaultCache.Export()
	}
	return resilience.WriteJournal(s.opt.Journal, checkpointKind, checkpointVersion, ck)
}

// decodeCheckpoint validates a journal's framing and its structural
// invariants. Split from the file read so the fuzz harness can drive it on
// raw bytes; every malformation errors cleanly (wrapping the resilience
// sentinels), never panics, and never yields a checkpoint that would
// silently resume wrong state.
func decodeCheckpoint(data []byte) (*Checkpoint, error) {
	ck := &Checkpoint{}
	if err := resilience.Decode(data, checkpointKind, checkpointVersion, ck); err != nil {
		return nil, err
	}
	if ck.Phase != 1 && ck.Phase != 2 {
		return nil, fmt.Errorf("%w: checkpoint phase %d", resilience.ErrCorrupt, ck.Phase)
	}
	if ck.Q < 0 || ck.Q > ck.Opt.MaxQ {
		return nil, fmt.Errorf("%w: checkpoint q %d outside sweep 0..%d", resilience.ErrCorrupt, ck.Q, ck.Opt.MaxQ)
	}
	if ck.NextIter < 1 || ck.NextIter > ck.Opt.MaxItersPhase {
		return nil, fmt.Errorf("%w: checkpoint nextIter %d outside 1..%d", resilience.ErrCorrupt, ck.NextIter, ck.Opt.MaxItersPhase)
	}
	if len(ck.Commits) == 0 {
		return nil, fmt.Errorf("%w: checkpoint has no commits (checkpoints are only written at commits)", resilience.ErrCorrupt)
	}
	if ck.Gen < len(ck.Commits) {
		return nil, fmt.Errorf("%w: checkpoint gen %d below commit count %d", resilience.ErrCorrupt, ck.Gen, len(ck.Commits))
	}
	last := ck.Commits[len(ck.Commits)-1]
	if last.Q != ck.Q || last.Phase != ck.Phase || last.Iter != ck.NextIter-1 {
		return nil, fmt.Errorf("%w: checkpoint position (q=%d phase=%d nextIter=%d) disagrees with last commit (q=%d phase=%d iter=%d)",
			resilience.ErrCorrupt, ck.Q, ck.Phase, ck.NextIter, last.Q, last.Phase, last.Iter)
	}
	for i, rec := range ck.Commits {
		if rec.Circuit == "" {
			return nil, fmt.Errorf("%w: commit %d has no circuit", resilience.ErrCorrupt, i)
		}
	}
	return ck, nil
}

// LoadCheckpoint reads and validates a sweep journal. The error
// distinguishes damage (resilience.ErrCorrupt), a foreign journal kind
// (resilience.ErrKind), and a schema mismatch (resilience.ErrVersion).
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("resyn: load checkpoint: %w", err)
	}
	ck, err := decodeCheckpoint(data)
	if err != nil {
		return nil, fmt.Errorf("resyn: load checkpoint %s: %w", path, err)
	}
	return ck, nil
}

// validateFor checks that the journal belongs to this (circuit, seed,
// options) run. A mismatch means the caller is about to resume the wrong
// run — always an error, never a silent partial resume.
func (ck *Checkpoint) validateFor(env *flow.Env, orig *flow.Design, opt Options) error {
	if ck.CircuitName != orig.C.Name {
		return fmt.Errorf("resyn: checkpoint is for circuit %q, run is %q", ck.CircuitName, orig.C.Name)
	}
	crc, err := origCRC(orig.C)
	if err != nil {
		return err
	}
	if ck.OrigCRC != crc {
		return fmt.Errorf("resyn: checkpoint original-circuit fingerprint %08x does not match this run's %08x", ck.OrigCRC, crc)
	}
	if ck.Seed != env.Seed {
		return fmt.Errorf("resyn: checkpoint seed %d does not match run seed %d", ck.Seed, env.Seed)
	}
	if ck.Opt != fingerprint(opt) {
		return fmt.Errorf("resyn: checkpoint options %+v do not match run options %+v", ck.Opt, fingerprint(opt))
	}
	return nil
}

// Resume continues an interrupted sweep from its checkpoint journal,
// producing a Result byte-identical (tables, trace, telemetry rows) to the
// uninterrupted run's. orig must be the analyzed original design of the
// same circuit, environment seed, and options the journal was written
// under; mismatches are rejected. The resumed run keeps journaling to the
// same path unless opt.Journal overrides it, so a resumed run interrupted
// again resumes again.
func Resume(env *flow.Env, orig *flow.Design, path string, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	ck, err := LoadCheckpoint(path)
	if err != nil {
		return nil, err
	}
	if err := ck.validateFor(env, orig, opt); err != nil {
		return nil, err
	}
	if opt.Journal == "" {
		opt.Journal = path
	}
	env.Obs.Counter("resyn/resumes").Inc()
	return runSweep(env, orig, opt, ck)
}

// replay reconstructs the interrupted run's committed prefix: each
// journaled circuit is parsed and re-analyzed incrementally from its
// predecessor — the same call chain the original run used — and recorded
// through the shared commit bookkeeping, so Trace/Iters rows, the metrics
// series, and BestQ come out identical. Effort counters (SynthCalls,
// PDCalls) intentionally stay at zero for the replayed prefix: no
// synthesis happens during replay, only re-analysis.
func (s *state) replay(ck *Checkpoint) error {
	sp := obs.Start(s.env.Obs, "resyn/replay", obs.Int("commits", len(ck.Commits)))
	defer sp.End()
	// Restore the killed run's verdict cache before re-analyzing anything:
	// replay's own analyses only re-derive the committed circuits' verdicts,
	// not the rejected candidates' or the internal screens', and provenance
	// tier attribution downstream depends on exactly which verdicts are
	// cached. First-write-wins Store semantics make the import idempotent.
	if s.env.FaultCache != nil && len(ck.CacheEntries) > 0 {
		n := s.env.FaultCache.Import(ck.CacheEntries)
		s.env.Obs.Counter("resyn/cache_entries_imported").Add(int64(n))
	}
	// The ledger stays silent for the whole replayed prefix: the killed
	// run already emitted those records, so the resumed run's ledger must
	// start exactly where the killed run's stopped — their concatenation
	// (timings stripped) equals the uninterrupted run's ledger.
	ledger := s.env.Ledger
	s.env.Ledger = nil
	defer func() { s.env.Ledger = ledger }()
	for i, rec := range ck.Commits {
		if err := resilience.Err(s.env.Ctx); err != nil {
			return fmt.Errorf("resyn: resume cancelled during replay of commit %d/%d: %w", i+1, len(ck.Commits), err)
		}
		c, err := netlist.ReadExact(strings.NewReader(rec.Circuit), s.env.Lib)
		if err != nil {
			return fmt.Errorf("resyn: resume: commit %d circuit: %w (%v)", i, resilience.ErrCorrupt, err)
		}
		d, err := s.env.AnalyzeIncremental(c, s.cur)
		if err != nil {
			return fmt.Errorf("resyn: resume: re-analyzing commit %d: %w", i, err)
		}
		s.res.Recovered += d.Result.Recovered
		s.res.Quarantined += len(d.Result.Quarantined)
		s.recordCommit(d, rec)
	}
	s.commits = append(s.commits, ck.Commits...)
	s.gen = ck.Gen
	s.res.Resumed = true
	s.res.ReplayedCommits = len(ck.Commits)
	s.env.Obs.Counter("resyn/replayed_commits").Add(int64(len(ck.Commits)))
	return nil
}
