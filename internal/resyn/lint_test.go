package resyn

import (
	"testing"

	"dfmresyn/internal/bench"
	"dfmresyn/internal/lint"
)

// TestStrictLintFullFlow runs the complete flow + resynthesis pipeline with
// strict lint enforcement: every intermediate circuit, placement, layout and
// fault universe must satisfy the static-analysis contract, and no candidate
// may be rejected by the linter. A nonzero LintFailures would mean a rebuild
// or placement bug that the normal run silently tolerates.
func TestStrictLintFullFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("resynthesis run is slow")
	}
	for _, name := range []string{"tv80", "sparc_spu"} {
		name := name
		t.Run(name, func(t *testing.T) {
			env := testEnv()
			env.Lint = lint.ModeStrict
			c := bench.MustBuild(name, env.Lib)
			r, err := Run(env, c, Options{MaxQ: 2, MaxItersPhase: 5})
			if err != nil {
				t.Fatalf("strict-lint run failed: %v", err)
			}
			if r.LintFailures != 0 {
				t.Errorf("LintFailures = %d, want 0", r.LintFailures)
			}
			// Warnings (dead logic in the generators) are recorded but must
			// not escalate; errors would have failed the run already.
			if n := lint.CountAtLeast(r.Final.LintFindings, lint.Error); n != 0 {
				t.Errorf("final design carries %d lint errors", n)
			}
		})
	}
}

// TestWarnModeRecordsFindings checks that warn mode annotates designs
// without failing the pipeline.
func TestWarnModeRecordsFindings(t *testing.T) {
	if testing.Short() {
		t.Skip("flow run is slow")
	}
	env := testEnv()
	env.Lint = lint.ModeWarn
	c := bench.MustBuild("sparc_ffu", env.Lib)
	r, err := Run(env, c, Options{MaxQ: 1, MaxItersPhase: 2})
	if err != nil {
		t.Fatal(err)
	}
	// sparc_ffu's generator includes dead cones: warn mode must surface
	// them on the original design while leaving the run untouched. (The
	// final design may be clean — resynthesis rebuilds can absorb the
	// dead cone.)
	if len(r.Orig.LintFindings) == 0 {
		t.Error("warn mode recorded no findings on a circuit with dead logic")
	}
	for _, d := range []int{lint.CountAtLeast(r.Orig.LintFindings, lint.Error), lint.CountAtLeast(r.Final.LintFindings, lint.Error)} {
		if d != 0 {
			t.Errorf("unexpected lint errors: %d", d)
		}
	}
}
