package resyn

import (
	"errors"
	"testing"

	"dfmresyn/internal/resilience"
)

// validCheckpoint builds a structurally consistent checkpoint for the
// decoder tests; the circuit text only has to be non-empty here (replay,
// not decode, parses it).
func validCheckpoint() *Checkpoint {
	return &Checkpoint{
		CircuitName: "test_ckt",
		OrigCRC:     0xdeadbeef,
		Seed:        1,
		Opt:         optPrint{P1: 0.01, MaxQ: 5, MaxItersPhase: 40},
		Q:           2,
		Phase:       1,
		NextIter:    4,
		Gen:         3,
		Commits: []commitRecord{
			{Q: 1, Phase: 1, Iter: 0, Circuit: "xckt a\n"},
			{Q: 2, Phase: 1, Iter: 1, Circuit: "xckt b\n"},
			{Q: 2, Phase: 1, Iter: 3, Circuit: "xckt c\n"},
		},
	}
}

func encodeCk(t *testing.T, ck *Checkpoint) []byte {
	t.Helper()
	data, err := resilience.Encode(checkpointKind, checkpointVersion, ck)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestDecodeCheckpointInvariants: a journal that frames correctly but
// violates the sweep's structural invariants is rejected as corrupt —
// resuming it would silently run wrong state.
func TestDecodeCheckpointInvariants(t *testing.T) {
	if _, err := decodeCheckpoint(encodeCk(t, validCheckpoint())); err != nil {
		t.Fatalf("valid checkpoint rejected: %v", err)
	}
	mutations := map[string]func(*Checkpoint){
		"phase zero":        func(ck *Checkpoint) { ck.Phase = 0 },
		"phase three":       func(ck *Checkpoint) { ck.Phase = 3 },
		"negative q":        func(ck *Checkpoint) { ck.Q = -1 },
		"q beyond sweep":    func(ck *Checkpoint) { ck.Q = ck.Opt.MaxQ + 1 },
		"nextIter zero":     func(ck *Checkpoint) { ck.NextIter = 0 },
		"nextIter overflow": func(ck *Checkpoint) { ck.NextIter = ck.Opt.MaxItersPhase + 1 },
		"no commits":        func(ck *Checkpoint) { ck.Commits = nil },
		"gen regressed":     func(ck *Checkpoint) { ck.Gen = len(ck.Commits) - 1 },
		"position mismatch": func(ck *Checkpoint) { ck.Commits[len(ck.Commits)-1].Iter = 9 },
		"empty circuit":     func(ck *Checkpoint) { ck.Commits[0].Circuit = "" },
	}
	for name, mutate := range mutations {
		ck := validCheckpoint()
		mutate(ck)
		if _, err := decodeCheckpoint(encodeCk(t, ck)); !errors.Is(err, resilience.ErrCorrupt) {
			t.Errorf("%s: decodeCheckpoint = %v, want ErrCorrupt", name, err)
		}
	}
}

// TestDecodeCheckpointForeignJournal: the wrong kind and the wrong schema
// version are distinguished from damage.
func TestDecodeCheckpointForeignJournal(t *testing.T) {
	other, err := resilience.Encode("other-kind", checkpointVersion, validCheckpoint())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeCheckpoint(other); !errors.Is(err, resilience.ErrKind) {
		t.Errorf("foreign kind: %v, want ErrKind", err)
	}
	future, err := resilience.Encode(checkpointKind, checkpointVersion+1, validCheckpoint())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeCheckpoint(future); !errors.Is(err, resilience.ErrVersion) {
		t.Errorf("future version: %v, want ErrVersion", err)
	}
}

// FuzzCheckpointDecode: truncations, bit flips, version bumps and arbitrary
// garbage must never panic the loader and must never yield a checkpoint
// that violates the invariants Resume depends on — a clean error every
// time, or a structurally consistent checkpoint.
func FuzzCheckpointDecode(f *testing.F) {
	good, err := resilience.Encode(checkpointKind, checkpointVersion, validCheckpoint())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add(good[:len(good)/2])
	flipped := append([]byte{}, good...)
	flipped[len(flipped)-5] ^= 0x20
	f.Add(flipped)
	f.Add([]byte("dfmresyn-journal v99 resyn-sweep 2 00000000\n{}"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		ck, err := decodeCheckpoint(data)
		if err != nil {
			if !errors.Is(err, resilience.ErrCorrupt) &&
				!errors.Is(err, resilience.ErrKind) &&
				!errors.Is(err, resilience.ErrVersion) {
				t.Fatalf("rejection without a journal sentinel: %v", err)
			}
			return
		}
		if ck.Phase != 1 && ck.Phase != 2 {
			t.Fatalf("accepted checkpoint with phase %d", ck.Phase)
		}
		if len(ck.Commits) == 0 {
			t.Fatal("accepted checkpoint with no commits")
		}
		last := ck.Commits[len(ck.Commits)-1]
		if last.Iter != ck.NextIter-1 {
			t.Fatal("accepted checkpoint whose position disagrees with its last commit")
		}
	})
}
