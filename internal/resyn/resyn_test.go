package resyn

import (
	"testing"

	"dfmresyn/internal/bench"
	"dfmresyn/internal/flow"
	"dfmresyn/internal/library"
	"dfmresyn/internal/logic"
	"dfmresyn/internal/netlist"
	"dfmresyn/internal/sim"
)

func testEnv() *flow.Env {
	e := flow.NewEnv()
	e.ATPG.RandomBlocks = 4
	e.ATPG.BacktrackLimit = 2000
	return e
}

// runOn runs the procedure on one benchmark circuit with reduced effort.
func runOn(t *testing.T, name string, opt Options) *Result {
	t.Helper()
	env := testEnv()
	c := bench.MustBuild(name, env.Lib)
	r, err := Run(env, c, opt)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return r
}

func TestReducesUndetectableFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("resynthesis run is slow")
	}
	r := runOn(t, "sparc_ifu", Options{MaxQ: 2, MaxItersPhase: 10})
	uo := r.Orig.Faults.Count().Undetectable
	uf := r.Final.Faults.Count().Undetectable
	if uf >= uo {
		t.Fatalf("U did not decrease: %d -> %d", uo, uf)
	}
	// The headline claim: a large reduction (paper: ~10x).
	if float64(uf) > 0.5*float64(uo) {
		t.Errorf("U reduction too weak: %d -> %d", uo, uf)
	}
	// Coverage improves.
	if r.Final.Faults.Coverage() <= r.Orig.Faults.Coverage() {
		t.Error("coverage did not improve")
	}
}

func TestMaintainsConstraints(t *testing.T) {
	if testing.Short() {
		t.Skip("resynthesis run is slow")
	}
	opt := Options{MaxQ: 3, MaxItersPhase: 10}
	r := runOn(t, "systemcaes", opt)
	if len(r.Trace) == 0 {
		t.Skip("no accepted iterations on this configuration")
	}
	slack := 1 + float64(opt.MaxQ)/100
	if r.Final.Timing.CriticalDelay > r.Orig.Timing.CriticalDelay*slack+1e-9 {
		t.Errorf("delay constraint violated: %.1f vs %.1f (q=%d)",
			r.Final.Timing.CriticalDelay, r.Orig.Timing.CriticalDelay, opt.MaxQ)
	}
	if r.Final.Power.Total > r.Orig.Power.Total*slack+1e-9 {
		t.Errorf("power constraint violated: %.1f vs %.1f",
			r.Final.Power.Total, r.Orig.Power.Total)
	}
	// Same die (floorplan preserved).
	if r.Final.Die != r.Orig.Die {
		t.Errorf("die changed: %+v vs %+v", r.Final.Die, r.Orig.Die)
	}
}

// TestFunctionPreserved: the resynthesized circuit must be functionally
// identical to the original on random patterns (PO-for-PO).
func TestFunctionPreserved(t *testing.T) {
	if testing.Short() {
		t.Skip("resynthesis run is slow")
	}
	r := runOn(t, "sparc_tlu", Options{MaxQ: 2, MaxItersPhase: 8})
	c1, c2 := r.Orig.C, r.Final.C
	if len(c1.PIs) != len(c2.PIs) || len(c1.POs) != len(c2.POs) {
		t.Fatal("interface changed")
	}
	s1, s2 := sim.New(c1), sim.New(c2)
	for block := 0; block < 8; block++ {
		words := make([]logic.Word, len(c1.PIs))
		rngFill(words, int64(block))
		v1 := s1.Run(words)
		v2 := s2.Run(words)
		for i := range c1.POs {
			if v1[c1.POs[i].ID] != v2[c2.POs[i].ID] {
				t.Fatalf("PO %d differs after resynthesis", i)
			}
		}
	}
}

func rngFill(w []logic.Word, seed int64) {
	x := uint64(seed)*0x9E3779B97F4A7C15 + 1
	for i := range w {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		w[i] = x
	}
}

// TestMonotoneU: along the accepted trace, U never increases (the paper's
// monotonicity requirement).
func TestMonotoneU(t *testing.T) {
	if testing.Short() {
		t.Skip("resynthesis run is slow")
	}
	r := runOn(t, "wb_conmax", Options{MaxQ: 2, MaxItersPhase: 8})
	prev := r.Orig.Faults.Count().Undetectable
	for i, tr := range r.Trace {
		if tr.U > prev {
			t.Errorf("trace %d: U rose from %d to %d", i, prev, tr.U)
		}
		prev = tr.U
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.P1 != 0.01 || o.MaxQ != 5 || o.MaxItersPhase != 40 || o.RisingUStop != 2 {
		t.Errorf("defaults wrong: %+v", o)
	}
	// Explicit values survive.
	o2 := Options{P1: 0.05, MaxQ: 3}.withDefaults()
	if o2.P1 != 0.05 || o2.MaxQ != 3 {
		t.Errorf("explicit options overridden: %+v", o2)
	}
}

func TestCellOrdering(t *testing.T) {
	env := testEnv()
	ordered := env.Lib.SortedBy(func(c *library.Cell) float64 {
		return float64(env.Prof.InternalFaultCount(c))
	})
	for i := 1; i < len(ordered); i++ {
		a := env.Prof.InternalFaultCount(ordered[i-1])
		b := env.Prof.InternalFaultCount(ordered[i])
		if a < b {
			t.Fatalf("cell order not descending at %d: %s(%d) before %s(%d)",
				i, ordered[i-1].Name, a, ordered[i].Name, b)
		}
	}
}

// TestConvexClosureInvariant: the closure of a random gate subset must be
// convex (no external gate both depends on and feeds the set).
func TestConvexClosureInvariant(t *testing.T) {
	env := testEnv()
	c := bench.MustBuild("sparc_ifu", env.Lib)
	subset := c.Gates[10:40]
	closed := netlist.ConvexClosure(c, subset)
	inSet := map[*netlist.Gate]bool{}
	for _, g := range closed {
		inSet[g] = true
	}
	// Recompute desc/anc for the closed set and verify no external gate
	// is on a set-to-set path.
	order := c.Levelize()
	desc := map[*netlist.Gate]bool{}
	for _, g := range order {
		if inSet[g] {
			desc[g] = true
			continue
		}
		for _, in := range g.Fanin {
			if in.Driver != nil && desc[in.Driver] {
				desc[g] = true
			}
		}
	}
	anc := map[*netlist.Gate]bool{}
	for i := len(order) - 1; i >= 0; i-- {
		g := order[i]
		if inSet[g] {
			anc[g] = true
			continue
		}
		for _, p := range g.Out.Fanout {
			if anc[p.Gate] {
				anc[g] = true
			}
		}
	}
	for _, g := range c.Gates {
		if !inSet[g] && desc[g] && anc[g] {
			t.Fatalf("closure not convex: %s is on a set-to-set path", g.Name)
		}
	}
}

// TestNoEquivalenceFailures: the mapper must never produce a candidate that
// fails the equivalence safety net.
func TestNoEquivalenceFailures(t *testing.T) {
	if testing.Short() {
		t.Skip("resynthesis run is slow")
	}
	r := runOn(t, "sparc_ffu", Options{MaxQ: 2, MaxItersPhase: 6})
	if r.EquivFailures != 0 {
		t.Fatalf("%d candidates failed equivalence — mapper bug", r.EquivFailures)
	}
}

// TestIterTelemetryTrajectory pins the per-iteration telemetry rows: within
// phase one of each q, the acceptance predicate (smax < curSmax, u <= curU)
// forces |S_max| strictly down and |S_max|/|F| monotone non-increasing along
// the committed trajectory. Also checks the rows stay consistent with the
// Fig. 2 trace and the backtracking totals.
func TestIterTelemetryTrajectory(t *testing.T) {
	if testing.Short() {
		t.Skip("resynthesis run is slow")
	}
	r := runOn(t, "wb_conmax", Options{MaxQ: 2, MaxItersPhase: 8})
	if len(r.Iters) == 0 {
		t.Fatal("no telemetry rows for a run with accepted iterations")
	}
	if len(r.Iters) != len(r.Trace) {
		t.Fatalf("telemetry rows (%d) != trace entries (%d)", len(r.Iters), len(r.Trace))
	}
	prevQ, prevPhase := -1, 0
	var prevSmax int
	var prevFrac float64
	for i, it := range r.Iters {
		if it.U != r.Trace[i].U || it.Smax != r.Trace[i].Smax {
			t.Errorf("row %d: telemetry (U=%d Smax=%d) disagrees with trace (U=%d Smax=%d)",
				i, it.U, it.Smax, r.Trace[i].U, r.Trace[i].Smax)
		}
		if it.F > 0 && it.SmaxFrac != float64(it.Smax)/float64(it.F) {
			t.Errorf("row %d: SmaxFrac %.6f != Smax/F %.6f", i, it.SmaxFrac, float64(it.Smax)/float64(it.F))
		}
		inPhase1Run := it.Q == prevQ && prevPhase == 1 && it.Phase == 1
		if inPhase1Run {
			if it.Smax >= prevSmax {
				t.Errorf("row %d (q=%d phase 1): Smax did not decrease: %d -> %d",
					i, it.Q, prevSmax, it.Smax)
			}
			if it.SmaxFrac > prevFrac {
				t.Errorf("row %d (q=%d phase 1): SmaxFrac rose: %.6f -> %.6f",
					i, it.Q, prevFrac, it.SmaxFrac)
			}
		}
		prevQ, prevPhase, prevSmax, prevFrac = it.Q, it.Phase, it.Smax, it.SmaxFrac
	}
	if r.BacktrackGroupsAccepted > r.BacktrackGroupsTried {
		t.Errorf("backtrack groups accepted (%d) > tried (%d)",
			r.BacktrackGroupsAccepted, r.BacktrackGroupsTried)
	}
	var sumTried, sumAcc int
	for _, it := range r.Iters {
		sumTried += it.BacktrackTried
		sumAcc += it.BacktrackAccepted
	}
	if sumAcc > r.BacktrackGroupsAccepted || sumTried > r.BacktrackGroupsTried {
		t.Errorf("per-iteration backtrack sums (%d/%d) exceed sweep totals (%d/%d)",
			sumTried, sumAcc, r.BacktrackGroupsTried, r.BacktrackGroupsAccepted)
	}
}
