package sim

import (
	"math/rand"
	"testing"

	"dfmresyn/internal/library"
	"dfmresyn/internal/logic"
	"dfmresyn/internal/netlist"
)

var lib = library.OSU018Like()

// buildMux builds y = s ? b : a out of basic gates:
// y = NAND2(NAND2(a, INV(s)), NAND2(b, s))
func buildMux(t *testing.T) *netlist.Circuit {
	t.Helper()
	c := netlist.New("mux", lib)
	a := c.AddPI("a")
	b := c.AddPI("b")
	s := c.AddPI("s")
	sn := c.AddGate("u0", lib.ByName("INVX1"), s)
	t1 := c.AddGate("u1", lib.ByName("NAND2X1"), a, sn)
	t2 := c.AddGate("u2", lib.ByName("NAND2X1"), b, s)
	y := c.AddGate("u3", lib.ByName("NAND2X1"), t1, t2)
	c.MarkPO(y)
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRunSingleMux(t *testing.T) {
	c := buildMux(t)
	s := New(c)
	y := c.NetByName("u3_o")
	for a := uint8(0); a <= 1; a++ {
		for b := uint8(0); b <= 1; b++ {
			for sel := uint8(0); sel <= 1; sel++ {
				vals := s.RunSingle([]uint8{a, b, sel})
				want := a
				if sel == 1 {
					want = b
				}
				if vals[y.ID] != want {
					t.Errorf("mux(%d,%d,s=%d) = %d, want %d", a, b, sel, vals[y.ID], want)
				}
			}
		}
	}
}

// TestParallelMatchesSingle: 64-pattern simulation must agree with 64
// single-pattern simulations.
func TestParallelMatchesSingle(t *testing.T) {
	c := buildMux(t)
	s := New(c)
	rng := rand.New(rand.NewSource(42))
	words := RandomWords(rng, len(c.PIs))
	vals := s.Run(words)
	for p := uint(0); p < 64; p++ {
		pi := make([]uint8, len(c.PIs))
		for i := range pi {
			pi[i] = uint8(words[i] >> p & 1)
		}
		single := s.RunSingle(pi)
		for _, n := range c.Nets {
			if uint8(vals[n.ID]>>p&1) != single[n.ID] {
				t.Fatalf("pattern %d net %s: parallel %d, single %d",
					p, n.Name, vals[n.ID]>>p&1, single[n.ID])
			}
		}
	}
}

func TestPatternsToWords(t *testing.T) {
	pats := [][]uint8{{1, 0, 1}, {0, 1, 1}}
	w := PatternsToWords(pats, 3)
	if w[0] != 0b01 || w[1] != 0b10 || w[2] != 0b11 {
		t.Errorf("words = %b %b %b", w[0], w[1], w[2])
	}
}

func TestGateInputAssignments(t *testing.T) {
	c := buildMux(t)
	s := New(c)
	words := PatternsToWords([][]uint8{{1, 0, 0}, {1, 1, 1}}, 3)
	vals := s.Run(words)
	// u1 = NAND2(a, sn): pattern 0: a=1, sn=1 -> assignment 0b11;
	// pattern 1: a=1, sn=0 -> 0b01.
	g := c.NetByName("u1_o").Driver
	asg := GateInputAssignments(g, vals)
	if asg[0] != 0b11 {
		t.Errorf("pattern 0 assignment = %b, want 11", asg[0])
	}
	if asg[1] != 0b01 {
		t.Errorf("pattern 1 assignment = %b, want 01", asg[1])
	}
}

func TestRunIntoReuse(t *testing.T) {
	c := buildMux(t)
	s := New(c)
	vals := make([]logic.Word, len(c.Nets))
	for i, n := range c.PIs {
		_ = i
		vals[n.ID] = logic.AllOnes
	}
	s.RunInto(vals)
	// All inputs 1: y = b = 1.
	y := c.NetByName("u3_o")
	if vals[y.ID] != logic.AllOnes {
		t.Errorf("y = %x, want all ones", vals[y.ID])
	}
}

func TestRunPanicsOnWrongPICount(t *testing.T) {
	c := buildMux(t)
	s := New(c)
	defer func() {
		if recover() == nil {
			t.Error("Run must panic on PI count mismatch")
		}
	}()
	s.Run(make([]logic.Word, 1))
}
