// Package sim provides 64-bit parallel-pattern good-circuit simulation:
// each call evaluates 64 test patterns at once, with bit p of every word
// holding the value of the signal under pattern p.
package sim

import (
	"math/rand"

	"dfmresyn/internal/logic"
	"dfmresyn/internal/netlist"
)

// Simulator evaluates a fixed circuit on 64-pattern words.
type Simulator struct {
	c     *netlist.Circuit
	order []*netlist.Gate
}

// New prepares a simulator for the circuit (levelizes once).
func New(c *netlist.Circuit) *Simulator {
	return &Simulator{c: c, order: c.Levelize()}
}

// Circuit returns the simulated circuit.
func (s *Simulator) Circuit() *netlist.Circuit { return s.c }

// Order returns the topological gate order used by the simulator.
func (s *Simulator) Order() []*netlist.Gate { return s.order }

// Run simulates the circuit on the given per-PI pattern words (indexed as
// c.PIs) and returns one word per net (indexed by net ID).
func (s *Simulator) Run(pi []logic.Word) []logic.Word {
	if len(pi) != len(s.c.PIs) {
		panic("sim: PI word count mismatch")
	}
	vals := make([]logic.Word, len(s.c.Nets))
	for i, n := range s.c.PIs {
		vals[n.ID] = pi[i]
	}
	s.RunInto(vals)
	return vals
}

// RunInto simulates using and updating the provided per-net value slice;
// PI values must already be filled in. This avoids reallocation in loops.
func (s *Simulator) RunInto(vals []logic.Word) {
	var buf [8]logic.Word
	for _, g := range s.order {
		in := buf[:len(g.Fanin)]
		for i, f := range g.Fanin {
			in[i] = vals[f.ID]
		}
		vals[g.Out.ID] = g.Type.TT.EvalWord(in)
	}
}

// RunSingle simulates one fully-specified pattern given as a bit per PI
// (indexed as c.PIs) and returns a bit per net.
func (s *Simulator) RunSingle(pi []uint8) []uint8 {
	words := make([]logic.Word, len(pi))
	for i, b := range pi {
		if b&1 == 1 {
			words[i] = 1
		}
	}
	vals := s.Run(words)
	out := make([]uint8, len(vals))
	for i, w := range vals {
		out[i] = uint8(w & 1)
	}
	return out
}

// RandomWords generates one random 64-pattern word per PI.
func RandomWords(rng *rand.Rand, numPI int) []logic.Word {
	w := make([]logic.Word, numPI)
	for i := range w {
		w[i] = rng.Uint64()
	}
	return w
}

// PatternsToWords packs up to 64 patterns (each a bit per PI) into per-PI
// words; pattern p occupies bit p.
func PatternsToWords(patterns [][]uint8, numPI int) []logic.Word {
	if len(patterns) > 64 {
		panic("sim: more than 64 patterns per word")
	}
	w := make([]logic.Word, numPI)
	for p, pat := range patterns {
		for i := 0; i < numPI; i++ {
			if pat[i]&1 == 1 {
				w[i] |= 1 << uint(p)
			}
		}
	}
	return w
}

// GateInputAssignments extracts, for each of the 64 patterns, the packed
// input assignment seen by gate g given the per-net simulation values.
func GateInputAssignments(g *netlist.Gate, vals []logic.Word) [64]uint {
	var out [64]uint
	for i, f := range g.Fanin {
		w := vals[f.ID]
		for p := 0; p < 64; p++ {
			out[p] |= uint(w>>uint(p)&1) << uint(i)
		}
	}
	return out
}
