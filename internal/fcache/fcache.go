// Package fcache caches fault-classification verdicts across resynthesis
// iterations. A verdict for a fault is a function of the fault's support
// cone only: the transitive fanin of the site (activation), the transitive
// fanout of the site, and the transitive fanins of every side input along
// that fanout (propagation). The cache keys each fault by a 128-bit
// structural hash of exactly that cone, so a rebuild that leaves a fault's
// cone untouched produces the same key and the cached verdict is reused —
// only cone-dirty faults re-enter PODEM.
//
// Reuse policy (what keeps the cache sound):
//
//   - Undetectable entries are trusted directly. Undetectability is a
//     semantic property of the labeled cone structure, not of any search
//     order, so an isomorphic cone has the same verdict (modulo a 128-bit
//     hash collision).
//   - Detected entries are never trusted by status. They carry the witness
//     vector that detected the fault, and the consumer replays that vector
//     through fault simulation on the *current* circuit. A stale or
//     colliding entry then simply fails to detect and the fault falls back
//     to PODEM — reuse of Detected verdicts is unconditionally sound.
//   - Aborted verdicts are never stored: they reflect a search budget, not
//     a property of the circuit.
package fcache

import (
	"hash/crc32"
	"sort"
	"sync"

	"dfmresyn/internal/fault"
	"dfmresyn/internal/obs"
)

// Key is a 128-bit structural cone hash. The zero Key is never produced by
// the hasher and acts as "no key".
type Key [2]uint64

// Zero reports whether the key is the reserved no-key value.
func (k Key) Zero() bool { return k[0] == 0 && k[1] == 0 }

// Entry is one cached verdict. For Detected entries, Vec (and Init for
// two-pattern tests) hold the witness vector over the circuit's primary
// inputs in PI order; Undetectable entries carry no vector.
type Entry struct {
	Status fault.Status
	Init   []uint8
	Vec    []uint8
}

// DefaultLimit bounds the number of cached entries. When the cache is full
// new stores are dropped (rather than evicting), which keeps the cache's
// content — and therefore every downstream table — a deterministic function
// of the store sequence.
const DefaultLimit = 1 << 20

// EntryVersion stamps every stored entry with the verdict-encoding schema
// of the writer. Lookup treats an entry under any other version exactly
// like a corrupt one: the entry is dropped and the lookup misses, so the
// fault re-enters PODEM instead of trusting a verdict this build cannot
// interpret.
const EntryVersion = 1

// Stats is a snapshot of the cache's counters.
type Stats struct {
	Lookups uint64
	Hits    uint64
	Stores  uint64
	// Corrupt counts entries dropped by the integrity check: a checksum
	// mismatch or an EntryVersion the reader does not speak. Each such
	// entry cost one recompute and can never have produced a verdict.
	Corrupt uint64
	// WarmHits counts the subset of Hits that landed on entries imported
	// from a persistent verdict store (ImportWarm) rather than computed by
	// this process — the cross-process amortization a shared store buys.
	WarmHits uint64
	Entries  int
}

// HitRate returns Hits/Lookups, or 0 when no lookups happened.
func (s Stats) HitRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups)
}

// slot is the stored form of an entry: the verdict plus the integrity
// metadata Lookup verifies before releasing it — the writer's schema
// version and a CRC-32 of the verdict's content.
type slot struct {
	e   Entry
	ver uint16
	sum uint32
	// warm marks an entry imported from a persistent store rather than
	// computed by this process; hits on it count into Stats.WarmHits.
	warm bool
}

// Cache is a concurrency-safe fault-verdict cache. A single Cache is meant
// to live for a whole resynthesis run and be shared by every ATPG invocation
// in the q-sweep (including the pre-physical-design screens).
type Cache struct {
	mu      sync.Mutex
	entries map[Key]slot
	limit   int

	lookups  uint64
	hits     uint64
	stores   uint64
	corrupt  uint64
	warmHits uint64

	// cCorrupt mirrors integrity drops into the run's metrics registry
	// when the cache is instrumented (nil no-ops otherwise).
	cCorrupt *obs.Counter
}

// New creates an empty cache with DefaultLimit capacity.
func New() *Cache {
	return &Cache{entries: make(map[Key]slot), limit: DefaultLimit}
}

// NewWithLimit creates an empty cache holding at most limit entries
// (limit <= 0 selects DefaultLimit).
func NewWithLimit(limit int) *Cache {
	if limit <= 0 {
		limit = DefaultLimit
	}
	return &Cache{entries: make(map[Key]slot), limit: limit}
}

// Instrument routes the cache's integrity-drop count into the tracer's
// registry as fcache/corrupt_dropped. A nil tracer uninstruments.
func (c *Cache) Instrument(tr *obs.Tracer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cCorrupt = tr.Counter("fcache/corrupt_dropped")
}

// checksum covers everything a verdict means: status, the presence and
// content of the two-pattern init vector, and the witness vector. A bit
// flip anywhere in a stored entry changes it.
func checksum(e Entry) uint32 {
	var hdr [2]byte
	hdr[0] = byte(e.Status)
	if e.Init != nil {
		hdr[1] = 1
	}
	sum := crc32.ChecksumIEEE(hdr[:])
	sum = crc32.Update(sum, crc32.IEEETable, e.Init)
	sum = crc32.Update(sum, crc32.IEEETable, e.Vec)
	return sum
}

// Lookup returns the entry for k, if present and intact. Zero keys never
// match. An entry that fails the integrity check — stored under a different
// EntryVersion, or whose content no longer matches its checksum — is
// deleted and the lookup misses: the caller recomputes the verdict, which
// is always sound, instead of trusting damaged bytes, which never is.
func (c *Cache) Lookup(k Key) (Entry, bool) {
	if k.Zero() {
		return Entry{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lookups++
	s, ok := c.entries[k]
	if !ok {
		return Entry{}, false
	}
	if s.ver != EntryVersion || s.sum != checksum(s.e) {
		delete(c.entries, k)
		c.corrupt++
		c.cCorrupt.Inc()
		return Entry{}, false
	}
	c.hits++
	if s.warm {
		c.warmHits++
	}
	return s.e, true
}

// Store records a verdict for k. The first store for a key wins — later
// stores for the same key are ignored, so the cache content is independent
// of which of several structurally identical faults stores first. Zero keys,
// Aborted/Untried statuses, and stores into a full cache are dropped.
// Witness slices are copied; the caller keeps ownership of its buffers.
func (c *Cache) Store(k Key, e Entry) {
	c.store(k, e, false)
}

// store is the shared write path of Store and ImportWarm; warm tags the
// entry as externally sourced for Stats.WarmHits accounting.
func (c *Cache) store(k Key, e Entry, warm bool) bool {
	if k.Zero() {
		return false
	}
	if e.Status != fault.Detected && e.Status != fault.Undetectable {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.entries[k]; dup {
		return false
	}
	if len(c.entries) >= c.limit {
		return false
	}
	if e.Init != nil {
		e.Init = append([]uint8(nil), e.Init...)
	}
	if e.Vec != nil {
		e.Vec = append([]uint8(nil), e.Vec...)
	}
	c.entries[k] = slot{e: e, ver: EntryVersion, sum: checksum(e), warm: warm}
	c.stores++
	return true
}

// Tamper deterministically damages a fraction of the cached entries, for
// chaos testing: entries are visited in sorted key order and a seeded hash
// selects victims, so the damaged set is a pure function of (cache content,
// seed, rate). Odd-hashed victims get one bit flipped in their stored
// verdict content (checksum mismatch); even-hashed victims get their entry
// version bumped (version mismatch). Returns how many entries were damaged.
// The integrity check must turn every one of them into a recompute.
func (c *Cache) Tamper(seed int64, rate float64) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]Key, 0, len(c.entries))
	for k := range c.entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	damaged := 0
	for _, k := range keys {
		h := mix64(uint64(seed) ^ k[0] ^ (k[1] << 1))
		if float64(h>>11)/float64(1<<53) >= rate {
			continue
		}
		s := c.entries[k]
		if h&1 == 1 {
			if len(s.e.Vec) > 0 {
				s.e.Vec[0] ^= 0x01
			} else {
				s.e.Status ^= 0x7f
			}
		} else {
			s.ver++
		}
		c.entries[k] = s
		damaged++
	}
	return damaged
}

// ExportedEntry is one cache entry in portable form, for journaling the
// cache's content into a checkpoint (tier attribution in the provenance
// ledger is cache-history-dependent, so a resumed sweep must restore the
// cache a killed run had built, not just what replay re-derives).
type ExportedEntry struct {
	Key    Key          `json:"key"`
	Status fault.Status `json:"status"`
	Init   []uint8      `json:"init,omitempty"`
	Vec    []uint8      `json:"vec,omitempty"`
}

// Export snapshots the cache's intact entries in sorted key order — a
// deterministic function of the cache content. Entries failing the
// integrity check are skipped (not deleted; the next Lookup handles that).
func (c *Cache) Export() []ExportedEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]Key, 0, len(c.entries))
	for k := range c.entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	out := make([]ExportedEntry, 0, len(keys))
	for _, k := range keys {
		s := c.entries[k]
		if s.ver != EntryVersion || s.sum != checksum(s.e) {
			continue
		}
		out = append(out, ExportedEntry{Key: k, Status: s.e.Status, Init: s.e.Init, Vec: s.e.Vec})
	}
	return out
}

// Import stores every exported entry under normal Store semantics (first
// write wins, invalid statuses and overflow dropped) and returns how many
// landed. Importing an Export of the same cache is a no-op.
func (c *Cache) Import(entries []ExportedEntry) int {
	n := 0
	for _, e := range entries {
		if c.store(e.Key, Entry{Status: e.Status, Init: e.Init, Vec: e.Vec}, false) {
			n++
		}
	}
	return n
}

// ImportWarm is Import for entries sourced from a persistent verdict store:
// identical store semantics, but hits on the imported entries are counted
// into Stats.WarmHits — the measure of how much ATPG work the shared store
// saved this process. Returns how many entries landed.
func (c *Cache) ImportWarm(entries []ExportedEntry) int {
	n := 0
	for _, e := range entries {
		if c.store(e.Key, Entry{Status: e.Status, Init: e.Init, Vec: e.Vec}, true) {
			n++
		}
	}
	return n
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{Lookups: c.lookups, Hits: c.hits, Stores: c.stores, Corrupt: c.corrupt, WarmHits: c.warmHits, Entries: len(c.entries)}
}
