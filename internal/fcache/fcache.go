// Package fcache caches fault-classification verdicts across resynthesis
// iterations. A verdict for a fault is a function of the fault's support
// cone only: the transitive fanin of the site (activation), the transitive
// fanout of the site, and the transitive fanins of every side input along
// that fanout (propagation). The cache keys each fault by a 128-bit
// structural hash of exactly that cone, so a rebuild that leaves a fault's
// cone untouched produces the same key and the cached verdict is reused —
// only cone-dirty faults re-enter PODEM.
//
// Reuse policy (what keeps the cache sound):
//
//   - Undetectable entries are trusted directly. Undetectability is a
//     semantic property of the labeled cone structure, not of any search
//     order, so an isomorphic cone has the same verdict (modulo a 128-bit
//     hash collision).
//   - Detected entries are never trusted by status. They carry the witness
//     vector that detected the fault, and the consumer replays that vector
//     through fault simulation on the *current* circuit. A stale or
//     colliding entry then simply fails to detect and the fault falls back
//     to PODEM — reuse of Detected verdicts is unconditionally sound.
//   - Aborted verdicts are never stored: they reflect a search budget, not
//     a property of the circuit.
package fcache

import (
	"sync"

	"dfmresyn/internal/fault"
)

// Key is a 128-bit structural cone hash. The zero Key is never produced by
// the hasher and acts as "no key".
type Key [2]uint64

// Zero reports whether the key is the reserved no-key value.
func (k Key) Zero() bool { return k[0] == 0 && k[1] == 0 }

// Entry is one cached verdict. For Detected entries, Vec (and Init for
// two-pattern tests) hold the witness vector over the circuit's primary
// inputs in PI order; Undetectable entries carry no vector.
type Entry struct {
	Status fault.Status
	Init   []uint8
	Vec    []uint8
}

// DefaultLimit bounds the number of cached entries. When the cache is full
// new stores are dropped (rather than evicting), which keeps the cache's
// content — and therefore every downstream table — a deterministic function
// of the store sequence.
const DefaultLimit = 1 << 20

// Stats is a snapshot of the cache's counters.
type Stats struct {
	Lookups uint64
	Hits    uint64
	Stores  uint64
	Entries int
}

// HitRate returns Hits/Lookups, or 0 when no lookups happened.
func (s Stats) HitRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups)
}

// Cache is a concurrency-safe fault-verdict cache. A single Cache is meant
// to live for a whole resynthesis run and be shared by every ATPG invocation
// in the q-sweep (including the pre-physical-design screens).
type Cache struct {
	mu      sync.Mutex
	entries map[Key]Entry
	limit   int

	lookups uint64
	hits    uint64
	stores  uint64
}

// New creates an empty cache with DefaultLimit capacity.
func New() *Cache {
	return &Cache{entries: make(map[Key]Entry), limit: DefaultLimit}
}

// NewWithLimit creates an empty cache holding at most limit entries
// (limit <= 0 selects DefaultLimit).
func NewWithLimit(limit int) *Cache {
	if limit <= 0 {
		limit = DefaultLimit
	}
	return &Cache{entries: make(map[Key]Entry), limit: limit}
}

// Lookup returns the entry for k, if present. Zero keys never match.
func (c *Cache) Lookup(k Key) (Entry, bool) {
	if k.Zero() {
		return Entry{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lookups++
	e, ok := c.entries[k]
	if ok {
		c.hits++
	}
	return e, ok
}

// Store records a verdict for k. The first store for a key wins — later
// stores for the same key are ignored, so the cache content is independent
// of which of several structurally identical faults stores first. Zero keys,
// Aborted/Untried statuses, and stores into a full cache are dropped.
// Witness slices are copied; the caller keeps ownership of its buffers.
func (c *Cache) Store(k Key, e Entry) {
	if k.Zero() {
		return
	}
	if e.Status != fault.Detected && e.Status != fault.Undetectable {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.entries[k]; dup {
		return
	}
	if len(c.entries) >= c.limit {
		return
	}
	if e.Init != nil {
		e.Init = append([]uint8(nil), e.Init...)
	}
	if e.Vec != nil {
		e.Vec = append([]uint8(nil), e.Vec...)
	}
	c.entries[k] = e
	c.stores++
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{Lookups: c.lookups, Hits: c.hits, Stores: c.stores, Entries: len(c.entries)}
}
